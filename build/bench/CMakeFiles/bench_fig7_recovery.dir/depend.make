# Empty dependencies file for bench_fig7_recovery.
# This may be replaced when dependencies are built.
