# Empty dependencies file for bench_ablation_batch_timeout.
# This may be replaced when dependencies are built.
