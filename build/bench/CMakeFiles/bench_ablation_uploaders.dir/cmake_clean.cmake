file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_uploaders.dir/bench_ablation_uploaders.cpp.o"
  "CMakeFiles/bench_ablation_uploaders.dir/bench_ablation_uploaders.cpp.o.d"
  "bench_ablation_uploaders"
  "bench_ablation_uploaders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_uploaders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
