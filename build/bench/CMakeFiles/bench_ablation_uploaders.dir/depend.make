# Empty dependencies file for bench_ablation_uploaders.
# This may be replaced when dependencies are built.
