file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_cloud_usage.dir/bench_table3_cloud_usage.cpp.o"
  "CMakeFiles/bench_table3_cloud_usage.dir/bench_table3_cloud_usage.cpp.o.d"
  "bench_table3_cloud_usage"
  "bench_table3_cloud_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_cloud_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
