file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_codec.dir/bench_fig6_codec.cpp.o"
  "CMakeFiles/bench_fig6_codec.dir/bench_fig6_codec.cpp.o.d"
  "bench_fig6_codec"
  "bench_fig6_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
