# Empty dependencies file for bench_ablation_dump_threshold.
# This may be replaced when dependencies are built.
