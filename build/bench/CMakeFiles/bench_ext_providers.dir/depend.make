# Empty dependencies file for bench_ext_providers.
# This may be replaced when dependencies are built.
