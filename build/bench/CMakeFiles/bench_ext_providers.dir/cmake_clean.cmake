file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_providers.dir/bench_ext_providers.cpp.o"
  "CMakeFiles/bench_ext_providers.dir/bench_ext_providers.cpp.o.d"
  "bench_ext_providers"
  "bench_ext_providers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_providers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
