
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cloud/http_socket_test.cpp" "tests/CMakeFiles/ginja_tests.dir/cloud/http_socket_test.cpp.o" "gcc" "tests/CMakeFiles/ginja_tests.dir/cloud/http_socket_test.cpp.o.d"
  "/root/repo/tests/cloud/s3_test.cpp" "tests/CMakeFiles/ginja_tests.dir/cloud/s3_test.cpp.o" "gcc" "tests/CMakeFiles/ginja_tests.dir/cloud/s3_test.cpp.o.d"
  "/root/repo/tests/cloud/store_test.cpp" "tests/CMakeFiles/ginja_tests.dir/cloud/store_test.cpp.o" "gcc" "tests/CMakeFiles/ginja_tests.dir/cloud/store_test.cpp.o.d"
  "/root/repo/tests/common/bytes_test.cpp" "tests/CMakeFiles/ginja_tests.dir/common/bytes_test.cpp.o" "gcc" "tests/CMakeFiles/ginja_tests.dir/common/bytes_test.cpp.o.d"
  "/root/repo/tests/common/codec_test.cpp" "tests/CMakeFiles/ginja_tests.dir/common/codec_test.cpp.o" "gcc" "tests/CMakeFiles/ginja_tests.dir/common/codec_test.cpp.o.d"
  "/root/repo/tests/common/config_test.cpp" "tests/CMakeFiles/ginja_tests.dir/common/config_test.cpp.o" "gcc" "tests/CMakeFiles/ginja_tests.dir/common/config_test.cpp.o.d"
  "/root/repo/tests/common/util_test.cpp" "tests/CMakeFiles/ginja_tests.dir/common/util_test.cpp.o" "gcc" "tests/CMakeFiles/ginja_tests.dir/common/util_test.cpp.o.d"
  "/root/repo/tests/cost/cost_model_test.cpp" "tests/CMakeFiles/ginja_tests.dir/cost/cost_model_test.cpp.o" "gcc" "tests/CMakeFiles/ginja_tests.dir/cost/cost_model_test.cpp.o.d"
  "/root/repo/tests/cost/cost_validation_test.cpp" "tests/CMakeFiles/ginja_tests.dir/cost/cost_validation_test.cpp.o" "gcc" "tests/CMakeFiles/ginja_tests.dir/cost/cost_validation_test.cpp.o.d"
  "/root/repo/tests/db/database_test.cpp" "tests/CMakeFiles/ginja_tests.dir/db/database_test.cpp.o" "gcc" "tests/CMakeFiles/ginja_tests.dir/db/database_test.cpp.o.d"
  "/root/repo/tests/db/streaming_test.cpp" "tests/CMakeFiles/ginja_tests.dir/db/streaming_test.cpp.o" "gcc" "tests/CMakeFiles/ginja_tests.dir/db/streaming_test.cpp.o.d"
  "/root/repo/tests/db/stress_test.cpp" "tests/CMakeFiles/ginja_tests.dir/db/stress_test.cpp.o" "gcc" "tests/CMakeFiles/ginja_tests.dir/db/stress_test.cpp.o.d"
  "/root/repo/tests/db/table_test.cpp" "tests/CMakeFiles/ginja_tests.dir/db/table_test.cpp.o" "gcc" "tests/CMakeFiles/ginja_tests.dir/db/table_test.cpp.o.d"
  "/root/repo/tests/db/wal_property_test.cpp" "tests/CMakeFiles/ginja_tests.dir/db/wal_property_test.cpp.o" "gcc" "tests/CMakeFiles/ginja_tests.dir/db/wal_property_test.cpp.o.d"
  "/root/repo/tests/db/wal_test.cpp" "tests/CMakeFiles/ginja_tests.dir/db/wal_test.cpp.o" "gcc" "tests/CMakeFiles/ginja_tests.dir/db/wal_test.cpp.o.d"
  "/root/repo/tests/fs/fs_test.cpp" "tests/CMakeFiles/ginja_tests.dir/fs/fs_test.cpp.o" "gcc" "tests/CMakeFiles/ginja_tests.dir/fs/fs_test.cpp.o.d"
  "/root/repo/tests/ginja/corruption_fuzz_test.cpp" "tests/CMakeFiles/ginja_tests.dir/ginja/corruption_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/ginja_tests.dir/ginja/corruption_fuzz_test.cpp.o.d"
  "/root/repo/tests/ginja/crash_fuzz_test.cpp" "tests/CMakeFiles/ginja_tests.dir/ginja/crash_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/ginja_tests.dir/ginja/crash_fuzz_test.cpp.o.d"
  "/root/repo/tests/ginja/end_to_end_test.cpp" "tests/CMakeFiles/ginja_tests.dir/ginja/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/ginja_tests.dir/ginja/end_to_end_test.cpp.o.d"
  "/root/repo/tests/ginja/failover_test.cpp" "tests/CMakeFiles/ginja_tests.dir/ginja/failover_test.cpp.o" "gcc" "tests/CMakeFiles/ginja_tests.dir/ginja/failover_test.cpp.o.d"
  "/root/repo/tests/ginja/object_id_test.cpp" "tests/CMakeFiles/ginja_tests.dir/ginja/object_id_test.cpp.o" "gcc" "tests/CMakeFiles/ginja_tests.dir/ginja/object_id_test.cpp.o.d"
  "/root/repo/tests/ginja/pipeline_test.cpp" "tests/CMakeFiles/ginja_tests.dir/ginja/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/ginja_tests.dir/ginja/pipeline_test.cpp.o.d"
  "/root/repo/tests/ginja/pitr_test.cpp" "tests/CMakeFiles/ginja_tests.dir/ginja/pitr_test.cpp.o" "gcc" "tests/CMakeFiles/ginja_tests.dir/ginja/pitr_test.cpp.o.d"
  "/root/repo/tests/ginja/processor_test.cpp" "tests/CMakeFiles/ginja_tests.dir/ginja/processor_test.cpp.o" "gcc" "tests/CMakeFiles/ginja_tests.dir/ginja/processor_test.cpp.o.d"
  "/root/repo/tests/ginja/verification_scheduler_test.cpp" "tests/CMakeFiles/ginja_tests.dir/ginja/verification_scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/ginja_tests.dir/ginja/verification_scheduler_test.cpp.o.d"
  "/root/repo/tests/workload/tpcc_test.cpp" "tests/CMakeFiles/ginja_tests.dir/workload/tpcc_test.cpp.o" "gcc" "tests/CMakeFiles/ginja_tests.dir/workload/tpcc_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ginja/CMakeFiles/ginja_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/ginja_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ginja_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/ginja_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/ginja_db.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/ginja_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ginja_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
