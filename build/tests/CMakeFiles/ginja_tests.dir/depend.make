# Empty dependencies file for ginja_tests.
# This may be replaced when dependencies are built.
