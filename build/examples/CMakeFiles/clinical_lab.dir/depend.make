# Empty dependencies file for clinical_lab.
# This may be replaced when dependencies are built.
