file(REMOVE_RECURSE
  "CMakeFiles/clinical_lab.dir/clinical_lab.cpp.o"
  "CMakeFiles/clinical_lab.dir/clinical_lab.cpp.o.d"
  "clinical_lab"
  "clinical_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clinical_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
