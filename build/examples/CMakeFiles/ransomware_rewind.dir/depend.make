# Empty dependencies file for ransomware_rewind.
# This may be replaced when dependencies are built.
