file(REMOVE_RECURSE
  "CMakeFiles/ransomware_rewind.dir/ransomware_rewind.cpp.o"
  "CMakeFiles/ransomware_rewind.dir/ransomware_rewind.cpp.o.d"
  "ransomware_rewind"
  "ransomware_rewind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ransomware_rewind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
