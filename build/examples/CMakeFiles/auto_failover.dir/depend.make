# Empty dependencies file for auto_failover.
# This may be replaced when dependencies are built.
