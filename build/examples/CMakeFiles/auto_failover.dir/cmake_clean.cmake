file(REMOVE_RECURSE
  "CMakeFiles/auto_failover.dir/auto_failover.cpp.o"
  "CMakeFiles/auto_failover.dir/auto_failover.cpp.o.d"
  "auto_failover"
  "auto_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
