# Empty compiler generated dependencies file for multi_cloud_dr.
# This may be replaced when dependencies are built.
