file(REMOVE_RECURSE
  "CMakeFiles/multi_cloud_dr.dir/multi_cloud_dr.cpp.o"
  "CMakeFiles/multi_cloud_dr.dir/multi_cloud_dr.cpp.o.d"
  "multi_cloud_dr"
  "multi_cloud_dr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_cloud_dr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
