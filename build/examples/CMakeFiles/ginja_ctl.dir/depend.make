# Empty dependencies file for ginja_ctl.
# This may be replaced when dependencies are built.
