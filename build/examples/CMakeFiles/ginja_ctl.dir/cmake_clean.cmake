file(REMOVE_RECURSE
  "CMakeFiles/ginja_ctl.dir/ginja_ctl.cpp.o"
  "CMakeFiles/ginja_ctl.dir/ginja_ctl.cpp.o.d"
  "ginja_ctl"
  "ginja_ctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ginja_ctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
