file(REMOVE_RECURSE
  "CMakeFiles/ginja_fs.dir/intercept_fs.cpp.o"
  "CMakeFiles/ginja_fs.dir/intercept_fs.cpp.o.d"
  "CMakeFiles/ginja_fs.dir/local_fs.cpp.o"
  "CMakeFiles/ginja_fs.dir/local_fs.cpp.o.d"
  "CMakeFiles/ginja_fs.dir/mem_fs.cpp.o"
  "CMakeFiles/ginja_fs.dir/mem_fs.cpp.o.d"
  "libginja_fs.a"
  "libginja_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ginja_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
