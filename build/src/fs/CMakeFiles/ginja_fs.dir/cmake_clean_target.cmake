file(REMOVE_RECURSE
  "libginja_fs.a"
)
