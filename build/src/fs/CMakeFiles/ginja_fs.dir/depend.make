# Empty dependencies file for ginja_fs.
# This may be replaced when dependencies are built.
