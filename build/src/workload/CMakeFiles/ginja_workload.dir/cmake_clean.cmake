file(REMOVE_RECURSE
  "CMakeFiles/ginja_workload.dir/driver.cpp.o"
  "CMakeFiles/ginja_workload.dir/driver.cpp.o.d"
  "CMakeFiles/ginja_workload.dir/tpcc.cpp.o"
  "CMakeFiles/ginja_workload.dir/tpcc.cpp.o.d"
  "libginja_workload.a"
  "libginja_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ginja_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
