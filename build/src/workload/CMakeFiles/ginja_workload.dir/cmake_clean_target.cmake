file(REMOVE_RECURSE
  "libginja_workload.a"
)
