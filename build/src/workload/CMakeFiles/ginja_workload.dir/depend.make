# Empty dependencies file for ginja_workload.
# This may be replaced when dependencies are built.
