file(REMOVE_RECURSE
  "CMakeFiles/ginja_cloud.dir/disk_store.cpp.o"
  "CMakeFiles/ginja_cloud.dir/disk_store.cpp.o.d"
  "CMakeFiles/ginja_cloud.dir/faulty_store.cpp.o"
  "CMakeFiles/ginja_cloud.dir/faulty_store.cpp.o.d"
  "CMakeFiles/ginja_cloud.dir/latency_model.cpp.o"
  "CMakeFiles/ginja_cloud.dir/latency_model.cpp.o.d"
  "CMakeFiles/ginja_cloud.dir/memory_store.cpp.o"
  "CMakeFiles/ginja_cloud.dir/memory_store.cpp.o.d"
  "CMakeFiles/ginja_cloud.dir/metered_store.cpp.o"
  "CMakeFiles/ginja_cloud.dir/metered_store.cpp.o.d"
  "CMakeFiles/ginja_cloud.dir/replicated_store.cpp.o"
  "CMakeFiles/ginja_cloud.dir/replicated_store.cpp.o.d"
  "CMakeFiles/ginja_cloud.dir/s3/http_socket.cpp.o"
  "CMakeFiles/ginja_cloud.dir/s3/http_socket.cpp.o.d"
  "CMakeFiles/ginja_cloud.dir/s3/s3_client.cpp.o"
  "CMakeFiles/ginja_cloud.dir/s3/s3_client.cpp.o.d"
  "CMakeFiles/ginja_cloud.dir/s3/s3_server.cpp.o"
  "CMakeFiles/ginja_cloud.dir/s3/s3_server.cpp.o.d"
  "CMakeFiles/ginja_cloud.dir/s3/sigv4.cpp.o"
  "CMakeFiles/ginja_cloud.dir/s3/sigv4.cpp.o.d"
  "CMakeFiles/ginja_cloud.dir/s3/xml.cpp.o"
  "CMakeFiles/ginja_cloud.dir/s3/xml.cpp.o.d"
  "libginja_cloud.a"
  "libginja_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ginja_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
