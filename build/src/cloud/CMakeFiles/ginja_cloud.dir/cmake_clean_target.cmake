file(REMOVE_RECURSE
  "libginja_cloud.a"
)
