
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/disk_store.cpp" "src/cloud/CMakeFiles/ginja_cloud.dir/disk_store.cpp.o" "gcc" "src/cloud/CMakeFiles/ginja_cloud.dir/disk_store.cpp.o.d"
  "/root/repo/src/cloud/faulty_store.cpp" "src/cloud/CMakeFiles/ginja_cloud.dir/faulty_store.cpp.o" "gcc" "src/cloud/CMakeFiles/ginja_cloud.dir/faulty_store.cpp.o.d"
  "/root/repo/src/cloud/latency_model.cpp" "src/cloud/CMakeFiles/ginja_cloud.dir/latency_model.cpp.o" "gcc" "src/cloud/CMakeFiles/ginja_cloud.dir/latency_model.cpp.o.d"
  "/root/repo/src/cloud/memory_store.cpp" "src/cloud/CMakeFiles/ginja_cloud.dir/memory_store.cpp.o" "gcc" "src/cloud/CMakeFiles/ginja_cloud.dir/memory_store.cpp.o.d"
  "/root/repo/src/cloud/metered_store.cpp" "src/cloud/CMakeFiles/ginja_cloud.dir/metered_store.cpp.o" "gcc" "src/cloud/CMakeFiles/ginja_cloud.dir/metered_store.cpp.o.d"
  "/root/repo/src/cloud/replicated_store.cpp" "src/cloud/CMakeFiles/ginja_cloud.dir/replicated_store.cpp.o" "gcc" "src/cloud/CMakeFiles/ginja_cloud.dir/replicated_store.cpp.o.d"
  "/root/repo/src/cloud/s3/http_socket.cpp" "src/cloud/CMakeFiles/ginja_cloud.dir/s3/http_socket.cpp.o" "gcc" "src/cloud/CMakeFiles/ginja_cloud.dir/s3/http_socket.cpp.o.d"
  "/root/repo/src/cloud/s3/s3_client.cpp" "src/cloud/CMakeFiles/ginja_cloud.dir/s3/s3_client.cpp.o" "gcc" "src/cloud/CMakeFiles/ginja_cloud.dir/s3/s3_client.cpp.o.d"
  "/root/repo/src/cloud/s3/s3_server.cpp" "src/cloud/CMakeFiles/ginja_cloud.dir/s3/s3_server.cpp.o" "gcc" "src/cloud/CMakeFiles/ginja_cloud.dir/s3/s3_server.cpp.o.d"
  "/root/repo/src/cloud/s3/sigv4.cpp" "src/cloud/CMakeFiles/ginja_cloud.dir/s3/sigv4.cpp.o" "gcc" "src/cloud/CMakeFiles/ginja_cloud.dir/s3/sigv4.cpp.o.d"
  "/root/repo/src/cloud/s3/xml.cpp" "src/cloud/CMakeFiles/ginja_cloud.dir/s3/xml.cpp.o" "gcc" "src/cloud/CMakeFiles/ginja_cloud.dir/s3/xml.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ginja_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
