# Empty compiler generated dependencies file for ginja_cloud.
# This may be replaced when dependencies are built.
