file(REMOVE_RECURSE
  "CMakeFiles/ginja_cost.dir/cost_model.cpp.o"
  "CMakeFiles/ginja_cost.dir/cost_model.cpp.o.d"
  "libginja_cost.a"
  "libginja_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ginja_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
