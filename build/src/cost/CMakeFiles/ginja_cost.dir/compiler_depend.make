# Empty compiler generated dependencies file for ginja_cost.
# This may be replaced when dependencies are built.
