file(REMOVE_RECURSE
  "libginja_cost.a"
)
