# Empty dependencies file for ginja_core.
# This may be replaced when dependencies are built.
