
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ginja/checkpoint_pipeline.cpp" "src/ginja/CMakeFiles/ginja_core.dir/checkpoint_pipeline.cpp.o" "gcc" "src/ginja/CMakeFiles/ginja_core.dir/checkpoint_pipeline.cpp.o.d"
  "/root/repo/src/ginja/cloud_view.cpp" "src/ginja/CMakeFiles/ginja_core.dir/cloud_view.cpp.o" "gcc" "src/ginja/CMakeFiles/ginja_core.dir/cloud_view.cpp.o.d"
  "/root/repo/src/ginja/commit_pipeline.cpp" "src/ginja/CMakeFiles/ginja_core.dir/commit_pipeline.cpp.o" "gcc" "src/ginja/CMakeFiles/ginja_core.dir/commit_pipeline.cpp.o.d"
  "/root/repo/src/ginja/failover.cpp" "src/ginja/CMakeFiles/ginja_core.dir/failover.cpp.o" "gcc" "src/ginja/CMakeFiles/ginja_core.dir/failover.cpp.o.d"
  "/root/repo/src/ginja/ginja.cpp" "src/ginja/CMakeFiles/ginja_core.dir/ginja.cpp.o" "gcc" "src/ginja/CMakeFiles/ginja_core.dir/ginja.cpp.o.d"
  "/root/repo/src/ginja/object_id.cpp" "src/ginja/CMakeFiles/ginja_core.dir/object_id.cpp.o" "gcc" "src/ginja/CMakeFiles/ginja_core.dir/object_id.cpp.o.d"
  "/root/repo/src/ginja/payload.cpp" "src/ginja/CMakeFiles/ginja_core.dir/payload.cpp.o" "gcc" "src/ginja/CMakeFiles/ginja_core.dir/payload.cpp.o.d"
  "/root/repo/src/ginja/pitr.cpp" "src/ginja/CMakeFiles/ginja_core.dir/pitr.cpp.o" "gcc" "src/ginja/CMakeFiles/ginja_core.dir/pitr.cpp.o.d"
  "/root/repo/src/ginja/processor.cpp" "src/ginja/CMakeFiles/ginja_core.dir/processor.cpp.o" "gcc" "src/ginja/CMakeFiles/ginja_core.dir/processor.cpp.o.d"
  "/root/repo/src/ginja/verification_scheduler.cpp" "src/ginja/CMakeFiles/ginja_core.dir/verification_scheduler.cpp.o" "gcc" "src/ginja/CMakeFiles/ginja_core.dir/verification_scheduler.cpp.o.d"
  "/root/repo/src/ginja/verifier.cpp" "src/ginja/CMakeFiles/ginja_core.dir/verifier.cpp.o" "gcc" "src/ginja/CMakeFiles/ginja_core.dir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ginja_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/ginja_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/ginja_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/ginja_db.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
