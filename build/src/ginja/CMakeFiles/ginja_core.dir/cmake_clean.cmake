file(REMOVE_RECURSE
  "CMakeFiles/ginja_core.dir/checkpoint_pipeline.cpp.o"
  "CMakeFiles/ginja_core.dir/checkpoint_pipeline.cpp.o.d"
  "CMakeFiles/ginja_core.dir/cloud_view.cpp.o"
  "CMakeFiles/ginja_core.dir/cloud_view.cpp.o.d"
  "CMakeFiles/ginja_core.dir/commit_pipeline.cpp.o"
  "CMakeFiles/ginja_core.dir/commit_pipeline.cpp.o.d"
  "CMakeFiles/ginja_core.dir/failover.cpp.o"
  "CMakeFiles/ginja_core.dir/failover.cpp.o.d"
  "CMakeFiles/ginja_core.dir/ginja.cpp.o"
  "CMakeFiles/ginja_core.dir/ginja.cpp.o.d"
  "CMakeFiles/ginja_core.dir/object_id.cpp.o"
  "CMakeFiles/ginja_core.dir/object_id.cpp.o.d"
  "CMakeFiles/ginja_core.dir/payload.cpp.o"
  "CMakeFiles/ginja_core.dir/payload.cpp.o.d"
  "CMakeFiles/ginja_core.dir/pitr.cpp.o"
  "CMakeFiles/ginja_core.dir/pitr.cpp.o.d"
  "CMakeFiles/ginja_core.dir/processor.cpp.o"
  "CMakeFiles/ginja_core.dir/processor.cpp.o.d"
  "CMakeFiles/ginja_core.dir/verification_scheduler.cpp.o"
  "CMakeFiles/ginja_core.dir/verification_scheduler.cpp.o.d"
  "CMakeFiles/ginja_core.dir/verifier.cpp.o"
  "CMakeFiles/ginja_core.dir/verifier.cpp.o.d"
  "libginja_core.a"
  "libginja_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ginja_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
