file(REMOVE_RECURSE
  "libginja_core.a"
)
