file(REMOVE_RECURSE
  "CMakeFiles/ginja_db.dir/database.cpp.o"
  "CMakeFiles/ginja_db.dir/database.cpp.o.d"
  "CMakeFiles/ginja_db.dir/layout.cpp.o"
  "CMakeFiles/ginja_db.dir/layout.cpp.o.d"
  "CMakeFiles/ginja_db.dir/streaming.cpp.o"
  "CMakeFiles/ginja_db.dir/streaming.cpp.o.d"
  "CMakeFiles/ginja_db.dir/table.cpp.o"
  "CMakeFiles/ginja_db.dir/table.cpp.o.d"
  "CMakeFiles/ginja_db.dir/wal.cpp.o"
  "CMakeFiles/ginja_db.dir/wal.cpp.o.d"
  "libginja_db.a"
  "libginja_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ginja_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
