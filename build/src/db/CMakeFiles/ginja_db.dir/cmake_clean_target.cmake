file(REMOVE_RECURSE
  "libginja_db.a"
)
