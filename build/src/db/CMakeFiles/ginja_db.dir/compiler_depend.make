# Empty compiler generated dependencies file for ginja_db.
# This may be replaced when dependencies are built.
