
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/clock.cpp" "src/common/CMakeFiles/ginja_common.dir/clock.cpp.o" "gcc" "src/common/CMakeFiles/ginja_common.dir/clock.cpp.o.d"
  "/root/repo/src/common/codec/aes128.cpp" "src/common/CMakeFiles/ginja_common.dir/codec/aes128.cpp.o" "gcc" "src/common/CMakeFiles/ginja_common.dir/codec/aes128.cpp.o.d"
  "/root/repo/src/common/codec/crc32.cpp" "src/common/CMakeFiles/ginja_common.dir/codec/crc32.cpp.o" "gcc" "src/common/CMakeFiles/ginja_common.dir/codec/crc32.cpp.o.d"
  "/root/repo/src/common/codec/envelope.cpp" "src/common/CMakeFiles/ginja_common.dir/codec/envelope.cpp.o" "gcc" "src/common/CMakeFiles/ginja_common.dir/codec/envelope.cpp.o.d"
  "/root/repo/src/common/codec/hmac.cpp" "src/common/CMakeFiles/ginja_common.dir/codec/hmac.cpp.o" "gcc" "src/common/CMakeFiles/ginja_common.dir/codec/hmac.cpp.o.d"
  "/root/repo/src/common/codec/lzss.cpp" "src/common/CMakeFiles/ginja_common.dir/codec/lzss.cpp.o" "gcc" "src/common/CMakeFiles/ginja_common.dir/codec/lzss.cpp.o.d"
  "/root/repo/src/common/codec/sha1.cpp" "src/common/CMakeFiles/ginja_common.dir/codec/sha1.cpp.o" "gcc" "src/common/CMakeFiles/ginja_common.dir/codec/sha1.cpp.o.d"
  "/root/repo/src/common/codec/sha256.cpp" "src/common/CMakeFiles/ginja_common.dir/codec/sha256.cpp.o" "gcc" "src/common/CMakeFiles/ginja_common.dir/codec/sha256.cpp.o.d"
  "/root/repo/src/common/config.cpp" "src/common/CMakeFiles/ginja_common.dir/config.cpp.o" "gcc" "src/common/CMakeFiles/ginja_common.dir/config.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/common/CMakeFiles/ginja_common.dir/rng.cpp.o" "gcc" "src/common/CMakeFiles/ginja_common.dir/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/common/CMakeFiles/ginja_common.dir/stats.cpp.o" "gcc" "src/common/CMakeFiles/ginja_common.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
