file(REMOVE_RECURSE
  "libginja_common.a"
)
