# Empty dependencies file for ginja_common.
# This may be replaced when dependencies are built.
