file(REMOVE_RECURSE
  "CMakeFiles/ginja_common.dir/clock.cpp.o"
  "CMakeFiles/ginja_common.dir/clock.cpp.o.d"
  "CMakeFiles/ginja_common.dir/codec/aes128.cpp.o"
  "CMakeFiles/ginja_common.dir/codec/aes128.cpp.o.d"
  "CMakeFiles/ginja_common.dir/codec/crc32.cpp.o"
  "CMakeFiles/ginja_common.dir/codec/crc32.cpp.o.d"
  "CMakeFiles/ginja_common.dir/codec/envelope.cpp.o"
  "CMakeFiles/ginja_common.dir/codec/envelope.cpp.o.d"
  "CMakeFiles/ginja_common.dir/codec/hmac.cpp.o"
  "CMakeFiles/ginja_common.dir/codec/hmac.cpp.o.d"
  "CMakeFiles/ginja_common.dir/codec/lzss.cpp.o"
  "CMakeFiles/ginja_common.dir/codec/lzss.cpp.o.d"
  "CMakeFiles/ginja_common.dir/codec/sha1.cpp.o"
  "CMakeFiles/ginja_common.dir/codec/sha1.cpp.o.d"
  "CMakeFiles/ginja_common.dir/codec/sha256.cpp.o"
  "CMakeFiles/ginja_common.dir/codec/sha256.cpp.o.d"
  "CMakeFiles/ginja_common.dir/config.cpp.o"
  "CMakeFiles/ginja_common.dir/config.cpp.o.d"
  "CMakeFiles/ginja_common.dir/rng.cpp.o"
  "CMakeFiles/ginja_common.dir/rng.cpp.o.d"
  "CMakeFiles/ginja_common.dir/stats.cpp.o"
  "CMakeFiles/ginja_common.dir/stats.cpp.o.d"
  "libginja_common.a"
  "libginja_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ginja_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
