// In-memory object store: the reference backend for tests and simulation.
#pragma once

#include <map>
#include <mutex>

#include "cloud/object_store.h"

namespace ginja {

class MemoryStore : public ObjectStore {
 public:
  Status Put(std::string_view name, ByteView data) override;
  Result<Bytes> Get(std::string_view name) override;
  Result<std::vector<ObjectMeta>> List(std::string_view prefix) override;
  Status Delete(std::string_view name) override;

  std::size_t ObjectCount() const;
  std::uint64_t TotalBytes() const;

  // Drops every object; used by tests simulating a fresh bucket.
  void Clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, Bytes, std::less<>> objects_;
};

}  // namespace ginja
