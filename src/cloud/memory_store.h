// In-memory object store: the reference backend for tests and simulation.
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "cloud/object_store.h"

namespace ginja {

class MemoryStore : public ObjectStore {
 public:
  Status Put(std::string_view name, ByteView data) override;
  Result<Bytes> Get(std::string_view name) override;
  Result<std::vector<ObjectMeta>> List(std::string_view prefix) override;
  // Native cursor: seeks the ordered map past `start_after` instead of
  // scanning the whole prefix range — the standby's poll loop lists in
  // O(new objects), which BM_MemoryStoreListCursor quantifies.
  Result<std::vector<ObjectMeta>> List(std::string_view prefix,
                                       std::string_view start_after) override;
  Status Delete(std::string_view name) override;

  // Streamed upload staged outside the map: parts accumulate in the
  // writer's private buffer and land with one locked insert at Finish.
  Result<ObjectWriterPtr> BeginStreaming(std::string_view staging_hint) override;

  std::size_t ObjectCount() const;
  std::uint64_t TotalBytes() const;

  // Drops every object; used by tests simulating a fresh bucket.
  void Clear();

 private:
  // Values are shared immutable blobs so Get can copy the payload outside
  // mu_ — only the map lookup serializes (mirror of the Put-side copy).
  // The value carries its own name so List can also build its ObjectMeta
  // strings outside the lock: a collected shared_ptr stays valid even if
  // the map entry (and its key string) is concurrently erased.
  struct StoredObject {
    std::string name;
    Bytes data;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const StoredObject>, std::less<>>
      objects_;
};

}  // namespace ginja
