// In-memory object store: the reference backend for tests and simulation.
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "cloud/object_store.h"

namespace ginja {

class MemoryStore : public ObjectStore {
 public:
  Status Put(std::string_view name, ByteView data) override;
  Result<Bytes> Get(std::string_view name) override;
  Result<std::vector<ObjectMeta>> List(std::string_view prefix) override;
  Status Delete(std::string_view name) override;

  // Streamed upload staged outside the map: parts accumulate in the
  // writer's private buffer and land with one locked insert at Finish.
  Result<ObjectWriterPtr> BeginStreaming(std::string_view staging_hint) override;

  std::size_t ObjectCount() const;
  std::uint64_t TotalBytes() const;

  // Drops every object; used by tests simulating a fresh bucket.
  void Clear();

 private:
  mutable std::mutex mu_;
  // Values are shared immutable blobs so Get can copy the payload outside
  // mu_ — only the map lookup serializes (mirror of the Put-side copy).
  std::map<std::string, std::shared_ptr<const Bytes>, std::less<>> objects_;
};

}  // namespace ginja
