// Cloud object-storage abstraction.
//
// Ginja deliberately assumes nothing beyond the four REST verbs every
// object store offers (paper §5): PUT, GET, LIST, DELETE. Concrete backends
// in this repo: an in-memory store, an on-disk store, and decorators that
// add latency, metering (for the cost model), fault injection, and
// multi-cloud replication. All are safe for concurrent use — Ginja uploads
// from several CommitThreads in parallel.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace ginja {

struct ObjectMeta {
  std::string name;
  std::uint64_t size = 0;
};

class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  // Creates or overwrites an object.
  virtual Status Put(std::string_view name, ByteView data) = 0;

  virtual Result<Bytes> Get(std::string_view name) = 0;

  // Lists objects whose names start with `prefix`, in lexicographic order.
  virtual Result<std::vector<ObjectMeta>> List(std::string_view prefix) = 0;

  // Deleting a missing object succeeds (S3 semantics).
  virtual Status Delete(std::string_view name) = 0;
};

using ObjectStorePtr = std::shared_ptr<ObjectStore>;

}  // namespace ginja
