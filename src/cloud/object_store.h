// Cloud object-storage abstraction.
//
// Ginja deliberately assumes nothing beyond the four REST verbs every
// object store offers (paper §5): PUT, GET, LIST, DELETE. Concrete backends
// in this repo: an in-memory store, an on-disk store, and decorators that
// add latency, metering (for the cost model), fault injection, and
// multi-cloud replication. All are safe for concurrent use — Ginja uploads
// from several CommitThreads in parallel.
//
// Streaming PUT: BeginStreaming() opens an ObjectWriter so an object's
// bytes can leave the machine part by part while the producer is still
// generating them (S3 multipart upload; the on-disk store appends to a
// temp file). The final name is supplied at Finish() — Ginja's WAL object
// names embed max_lsn, which is only known once the batch closes — and
// nothing is visible to Get/List until Finish() returns Ok. Every store
// inherits a correct buffered fallback.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace ginja {

struct ObjectMeta {
  std::string name;
  std::uint64_t size = 0;
};

// One in-progress streamed object. Parts are appended in dense index
// order (0, 1, 2, ...); re-appending an index the writer already applied
// is an idempotent no-op, so a retry loop may safely resend the last part.
// The object becomes visible atomically at Finish(name); Abort() (or
// destruction without Finish) leaves no trace a recovery could see.
// A writer is NOT thread-safe; callers serialize access per stream.
class ObjectWriter {
 public:
  virtual ~ObjectWriter() = default;

  virtual Status AppendPart(std::uint32_t index, ByteView part) = 0;

  // Publishes the accumulated parts under `name`. Retry-safe: after a
  // failed attempt Finish may be called again (with the same name), and
  // once it has returned Ok further calls are idempotent no-ops returning
  // Ok — both are required so a shared retry loop (and a replicated
  // fan-out re-driving a partial quorum) can converge. After Abort(),
  // Finish returns INVALID_ARGUMENT.
  virtual Status Finish(std::string_view name) = 0;

  // Discards the stream (best effort; also the destructor's behavior).
  virtual void Abort() = 0;
};

using ObjectWriterPtr = std::unique_ptr<ObjectWriter>;

class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  // Creates or overwrites an object.
  virtual Status Put(std::string_view name, ByteView data) = 0;

  virtual Result<Bytes> Get(std::string_view name) = 0;

  // Lists objects whose names start with `prefix`, in lexicographic order.
  virtual Result<std::vector<ObjectMeta>> List(std::string_view prefix) = 0;

  // Cursor form: only names strictly after `start_after` (lexicographic)
  // are returned — S3's ListObjectsV2 `start-after` knob. Incremental
  // consumers (the warm standby's tail poll) pass the key they have
  // already consumed up to, so a steady-state pass costs O(new objects)
  // instead of re-listing the whole bucket. The base implementation
  // filters a full List; backends with an ordered index override it to
  // seek. NOTE: WAL timestamps are encoded without zero padding, so a
  // cursor must be derived from the *next expected* key, not the last key
  // seen — "WAL/10..." sorts before "WAL/9..." (see StandbyReplica).
  virtual Result<std::vector<ObjectMeta>> List(std::string_view prefix,
                                               std::string_view start_after);

  // Deleting a missing object succeeds (S3 semantics).
  virtual Status Delete(std::string_view name) = 0;

  // Opens a streamed upload. `staging_hint` names the in-progress upload
  // for backends that stage under a temporary key (S3 multipart, disk
  // temp file); it must be unique among concurrently open streams. The
  // default implementation buffers parts in memory and issues one Put at
  // Finish — semantically identical, no overlap benefit.
  virtual Result<ObjectWriterPtr> BeginStreaming(std::string_view staging_hint);
};

using ObjectStorePtr = std::shared_ptr<ObjectStore>;

}  // namespace ginja
