#include "cloud/tenant_namespace.h"

#include <utility>

namespace ginja {

namespace {

// Finish() arrives with the tenant-relative name; republish it scoped.
class NamespacedWriter : public ObjectWriter {
 public:
  NamespacedWriter(ObjectWriterPtr inner, const std::string* prefix)
      : inner_(std::move(inner)), prefix_(prefix) {}

  Status AppendPart(std::uint32_t index, ByteView part) override {
    return inner_->AppendPart(index, part);
  }

  Status Finish(std::string_view name) override {
    return inner_->Finish(*prefix_ + std::string(name));
  }

  void Abort() override { inner_->Abort(); }

 private:
  ObjectWriterPtr inner_;
  const std::string* prefix_;  // owned by the TenantNamespace, which a
                               // writer never outlives (same store stack)
};

}  // namespace

TenantNamespace::TenantNamespace(ObjectStorePtr inner, std::string prefix)
    : inner_(std::move(inner)), prefix_(std::move(prefix)) {}

std::string TenantNamespace::Prefix(std::string_view tenant_id) {
  return "t/" + std::string(tenant_id) + "/";
}

std::string TenantNamespace::Scoped(std::string_view name) const {
  std::string scoped;
  scoped.reserve(prefix_.size() + name.size());
  scoped.append(prefix_);
  scoped.append(name);
  return scoped;
}

Status TenantNamespace::Put(std::string_view name, ByteView data) {
  return inner_->Put(Scoped(name), data);
}

Result<Bytes> TenantNamespace::Get(std::string_view name) {
  return inner_->Get(Scoped(name));
}

Result<std::vector<ObjectMeta>> TenantNamespace::List(std::string_view prefix) {
  auto inner = inner_->List(Scoped(prefix));
  if (!inner.ok()) return inner.status();
  std::vector<ObjectMeta> out;
  out.reserve(inner->size());
  for (auto& meta : *inner) {
    // Defensive: a backend could return keys outside the asked prefix;
    // never leak another tenant's (or an unscoped) name upward.
    if (meta.name.compare(0, prefix_.size(), prefix_) != 0) continue;
    out.push_back({meta.name.substr(prefix_.size()), meta.size});
  }
  return out;
}

Result<std::vector<ObjectMeta>> TenantNamespace::List(
    std::string_view prefix, std::string_view start_after) {
  if (start_after.empty()) return List(prefix);
  auto inner = inner_->List(Scoped(prefix), Scoped(start_after));
  if (!inner.ok()) return inner.status();
  std::vector<ObjectMeta> out;
  out.reserve(inner->size());
  for (auto& meta : *inner) {
    // Defensive: a backend could return keys outside the asked prefix;
    // never leak another tenant's (or an unscoped) name upward.
    if (meta.name.compare(0, prefix_.size(), prefix_) != 0) continue;
    out.push_back({meta.name.substr(prefix_.size()), meta.size});
  }
  return out;
}

Status TenantNamespace::Delete(std::string_view name) {
  return inner_->Delete(Scoped(name));
}

Result<ObjectWriterPtr> TenantNamespace::BeginStreaming(
    std::string_view staging_hint) {
  auto writer = inner_->BeginStreaming(Scoped(staging_hint));
  if (!writer.ok()) return writer.status();
  return ObjectWriterPtr(new NamespacedWriter(std::move(*writer), &prefix_));
}

}  // namespace ginja
