#include "cloud/replicated_store.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace ginja {

ReplicatedStore::ReplicatedStore(std::vector<ObjectStorePtr> replicas, int quorum)
    : replicas_(std::move(replicas)),
      quorum_(quorum <= 0 ? static_cast<int>(replicas_.size()) : quorum) {
  assert(!replicas_.empty());
  assert(quorum_ >= 1 && quorum_ <= static_cast<int>(replicas_.size()));
}

Status ReplicatedStore::Put(std::string_view name, ByteView data) {
  int acks = 0;
  Status last_error = Status::Unavailable("no replica reachable");
  for (auto& replica : replicas_) {
    Status st = replica->Put(name, data);
    if (st.ok()) {
      ++acks;
    } else {
      last_error = st;
    }
  }
  return acks >= quorum_ ? Status::Ok() : last_error;
}

Result<Bytes> ReplicatedStore::Get(std::string_view name) {
  Status last_error = Status::NotFound(std::string(name));
  for (auto& replica : replicas_) {
    Result<Bytes> r = replica->Get(name);
    if (r.ok()) return r;
    last_error = r.status();
  }
  return last_error;
}

Result<std::vector<ObjectMeta>> ReplicatedStore::List(std::string_view prefix) {
  return List(prefix, {});
}

Result<std::vector<ObjectMeta>> ReplicatedStore::List(
    std::string_view prefix, std::string_view start_after) {
  std::map<std::string, std::uint64_t> merged;
  bool any_ok = false;
  Status last_error = Status::Unavailable("no replica reachable");
  for (auto& replica : replicas_) {
    Result<std::vector<ObjectMeta>> r = replica->List(prefix, start_after);
    if (!r.ok()) {
      last_error = r.status();
      continue;
    }
    any_ok = true;
    for (auto& meta : *r) merged.emplace(meta.name, meta.size);
  }
  if (!any_ok) return last_error;
  std::vector<ObjectMeta> out;
  out.reserve(merged.size());
  for (auto& [name, size] : merged) out.push_back({name, size});
  return out;
}

Status ReplicatedStore::Delete(std::string_view name) {
  int acks = 0;
  Status last_error = Status::Unavailable("no replica reachable");
  for (auto& replica : replicas_) {
    Status st = replica->Delete(name);
    if (st.ok()) ++acks;
    else last_error = st;
  }
  return acks >= quorum_ ? Status::Ok() : last_error;
}

namespace {

class ReplicatedStoreWriter : public ObjectWriter {
 public:
  ReplicatedStoreWriter(std::vector<ObjectWriterPtr> writers, int quorum)
      : writers_(std::move(writers)), quorum_(quorum) {}

  Status AppendPart(std::uint32_t index, ByteView part) override {
    int alive = 0;
    Status last_error = Status::Unavailable("no replica reachable");
    for (auto& writer : writers_) {
      if (!writer) continue;
      Status st = writer->AppendPart(index, part);
      if (st.ok()) {
        ++alive;
      } else {
        // The replica's stream is torn — past parts can't be resent out
        // of order, so drop it from the stream entirely.
        writer->Abort();
        writer.reset();
        last_error = st;
      }
    }
    return alive >= quorum_ ? Status::Ok() : last_error;
  }

  Status Finish(std::string_view name) override {
    int acks = 0;
    Status last_error = Status::Unavailable("no replica reachable");
    for (auto& writer : writers_) {
      if (!writer) continue;
      Status st = writer->Finish(name);
      if (st.ok()) ++acks;
      else last_error = st;
    }
    return acks >= quorum_ ? Status::Ok() : last_error;
  }

  void Abort() override {
    for (auto& writer : writers_) {
      if (writer) writer->Abort();
    }
  }

 private:
  std::vector<ObjectWriterPtr> writers_;
  int quorum_;
};

}  // namespace

Result<ObjectWriterPtr> ReplicatedStore::BeginStreaming(
    std::string_view staging_hint) {
  std::vector<ObjectWriterPtr> writers;
  writers.reserve(replicas_.size());
  int alive = 0;
  Status last_error = Status::Unavailable("no replica reachable");
  for (auto& replica : replicas_) {
    auto writer = replica->BeginStreaming(staging_hint);
    if (writer.ok()) {
      writers.push_back(std::move(*writer));
      ++alive;
    } else {
      writers.push_back(nullptr);
      last_error = writer.status();
    }
  }
  if (alive < quorum_) return last_error;
  return ObjectWriterPtr(new ReplicatedStoreWriter(std::move(writers), quorum_));
}

}  // namespace ginja
