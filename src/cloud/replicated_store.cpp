#include "cloud/replicated_store.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace ginja {

ReplicatedStore::ReplicatedStore(std::vector<ObjectStorePtr> replicas, int quorum)
    : replicas_(std::move(replicas)),
      quorum_(quorum <= 0 ? static_cast<int>(replicas_.size()) : quorum) {
  assert(!replicas_.empty());
  assert(quorum_ >= 1 && quorum_ <= static_cast<int>(replicas_.size()));
}

Status ReplicatedStore::Put(std::string_view name, ByteView data) {
  int acks = 0;
  Status last_error = Status::Unavailable("no replica reachable");
  for (auto& replica : replicas_) {
    Status st = replica->Put(name, data);
    if (st.ok()) {
      ++acks;
    } else {
      last_error = st;
    }
  }
  return acks >= quorum_ ? Status::Ok() : last_error;
}

Result<Bytes> ReplicatedStore::Get(std::string_view name) {
  Status last_error = Status::NotFound(std::string(name));
  for (auto& replica : replicas_) {
    Result<Bytes> r = replica->Get(name);
    if (r.ok()) return r;
    last_error = r.status();
  }
  return last_error;
}

Result<std::vector<ObjectMeta>> ReplicatedStore::List(std::string_view prefix) {
  std::map<std::string, std::uint64_t> merged;
  bool any_ok = false;
  Status last_error = Status::Unavailable("no replica reachable");
  for (auto& replica : replicas_) {
    Result<std::vector<ObjectMeta>> r = replica->List(prefix);
    if (!r.ok()) {
      last_error = r.status();
      continue;
    }
    any_ok = true;
    for (auto& meta : *r) merged.emplace(meta.name, meta.size);
  }
  if (!any_ok) return last_error;
  std::vector<ObjectMeta> out;
  out.reserve(merged.size());
  for (auto& [name, size] : merged) out.push_back({name, size});
  return out;
}

Status ReplicatedStore::Delete(std::string_view name) {
  int acks = 0;
  Status last_error = Status::Unavailable("no replica reachable");
  for (auto& replica : replicas_) {
    Status st = replica->Delete(name);
    if (st.ok()) ++acks;
    else last_error = st;
  }
  return acks >= quorum_ ? Status::Ok() : last_error;
}

}  // namespace ginja
