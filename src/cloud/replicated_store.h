// ReplicatedStore — multi-cloud replication (DepSky-style, paper §6:
// "our system supports the replication of objects in multiple clouds, for
// tolerating provider-scale failures").
//
// Writes go to all replicas and succeed when a configurable quorum of them
// acknowledges; reads try replicas in order and return the first success;
// LIST returns the union (an object is visible if any replica has it);
// DELETE is attempted everywhere and succeeds if a quorum does.
#pragma once

#include <vector>

#include "cloud/object_store.h"

namespace ginja {

class ReplicatedStore : public ObjectStore {
 public:
  // quorum in [1, replicas.size()]; defaults to all (safest: an object is
  // durable in every cloud before the commit pipeline acknowledges it).
  explicit ReplicatedStore(std::vector<ObjectStorePtr> replicas, int quorum = 0);

  Status Put(std::string_view name, ByteView data) override;
  Result<Bytes> Get(std::string_view name) override;
  Result<std::vector<ObjectMeta>> List(std::string_view prefix) override;
  Result<std::vector<ObjectMeta>> List(std::string_view prefix,
                                       std::string_view start_after) override;
  Status Delete(std::string_view name) override;

  // Streamed PUT fans parts out to every replica's writer; a replica whose
  // append fails is dropped from the stream (its staged upload aborted),
  // and Finish succeeds when a quorum of replicas published the object —
  // the same durability rule as the buffered Put.
  Result<ObjectWriterPtr> BeginStreaming(std::string_view staging_hint) override;

  int quorum() const { return quorum_; }
  std::size_t replica_count() const { return replicas_.size(); }

 private:
  std::vector<ObjectStorePtr> replicas_;
  int quorum_;
};

}  // namespace ginja
