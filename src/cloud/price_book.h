// Cloud price books — May 2017 list prices used throughout the paper.
//
// §3: "Amazon S3 standard storage costs are $0.023 per GB/month, $0.005 per
// 1000 file uploads, and free upload bandwidth and delete operations."
// §7.3: downloads cost ~4× the monthly storage price per GB.
#pragma once

#include <cstdint>
#include <string>

namespace ginja {

struct PriceBook {
  std::string provider;
  double storage_gb_month = 0;   // $ per GB-month
  double per_put = 0;            // $ per PUT/LIST request
  double per_get = 0;            // $ per GET request
  double per_delete = 0;         // $ per DELETE (0 on S3)
  double egress_gb = 0;          // $ per GB downloaded to the internet
  double ingress_gb = 0;         // $ per GB uploaded (0 on all majors)

  static PriceBook AmazonS3May2017() {
    return {"aws-s3", 0.023, 0.005 / 1000.0, 0.0004 / 1000.0, 0.0, 0.09, 0.0};
  }
  static PriceBook AzureBlobMay2017() {
    return {"azure-blob", 0.0184, 0.0036 / 1000.0, 0.0036 / 10000.0, 0.0, 0.087, 0.0};
  }
  static PriceBook GoogleStorageMay2017() {
    return {"gcp-gcs", 0.026, 0.005 / 1000.0, 0.0004 / 1000.0, 0.0, 0.12, 0.0};
  }
};

// EC2 Pilot-Light baselines from paper Table 2 (May 2017, Linux,
// us-east-1, including VPN and EBS provisioned IOPS as the paper's
// footnote configuration).
struct VmBaseline {
  std::string name;
  double monthly_cost = 0;

  // "m3.medium + VPN + EBS 100IOS = $93.4" — small/medium DB Pilot Light.
  static VmBaseline M3MediumPilotLight() { return {"m3.medium+VPN+EBS100", 93.4}; }
  // "m3.large + VPN + EBS 500IOS = $291.5" — 1 TB hospital DB.
  static VmBaseline M3LargePilotLight() { return {"m3.large+VPN+EBS500", 291.5}; }
  // Bare m3.medium referenced in §3/§7.2: $48.24/month.
  static VmBaseline M3MediumBare() { return {"m3.medium", 48.24}; }
};

}  // namespace ginja
