// FencedStore — epoch-fencing decorator modelling S3 conditional writes.
//
// Failover correctness (see ginja/failover.h) hinges on the old primary
// never publishing another object once a standby has promoted. The
// HeartbeatWriter notices the bumped `meta/epoch` only at its next beat —
// a window in which the zombie's already-queued PUTs and half-streamed
// uploads would still land. Real object stores close that window with
// conditional requests (S3 If-None-Match / preconditioned multipart
// complete); this decorator models the same contract locally:
//
//   * a FenceToken carries the highest epoch anyone has observed — the
//     promoting standby Raise()s it as part of Promote();
//   * a FencedStore wraps the primary's store with the epoch that primary
//     believes it owns. Every mutation (Put, Delete, streamed AppendPart
//     and — critically — Finish) re-checks the token and returns ABORTED
//     once a higher epoch exists.
//
// Because Finish is checked, a stream caught mid-flight by a promotion is
// rejected *atomically*: its staged parts are never published, so the
// bucket never shows a half-written object from a fenced writer. Reads
// (Get/List) pass through — a zombie may still observe, never mutate.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "cloud/object_store.h"

namespace ginja {

// The shared fencing epoch: a monotonic maximum. Thread-safe.
class FenceToken {
 public:
  // Records `epoch` if it is higher than anything seen so far.
  void Raise(std::uint64_t epoch) {
    std::uint64_t cur = epoch_.load(std::memory_order_relaxed);
    while (cur < epoch &&
           !epoch_.compare_exchange_weak(cur, epoch,
                                         std::memory_order_acq_rel)) {
    }
  }

  std::uint64_t current() const { return epoch_.load(std::memory_order_acquire); }

 private:
  std::atomic<std::uint64_t> epoch_{0};
};

using FenceTokenPtr = std::shared_ptr<FenceToken>;

class FencedStore : public ObjectStore {
 public:
  // `writer_epoch` is the epoch the wrapped writer believes it owns;
  // mutations fail with ABORTED once token->current() exceeds it.
  FencedStore(ObjectStorePtr inner, FenceTokenPtr token,
              std::uint64_t writer_epoch);

  Status Put(std::string_view name, ByteView data) override;
  Result<Bytes> Get(std::string_view name) override;
  Result<std::vector<ObjectMeta>> List(std::string_view prefix) override;
  Result<std::vector<ObjectMeta>> List(std::string_view prefix,
                                       std::string_view start_after) override;
  Status Delete(std::string_view name) override;
  Result<ObjectWriterPtr> BeginStreaming(std::string_view staging_hint) override;

  bool fenced() const { return token_->current() > writer_epoch_; }
  std::uint64_t writer_epoch() const { return writer_epoch_; }

  // Mutations rejected because the fence was raised.
  std::uint64_t rejected_ops() const { return rejected_.load(); }

 private:
  friend class FencedStoreWriter;

  Status CheckFence();  // Ok, or ABORTED with the epochs in the message

  ObjectStorePtr inner_;
  FenceTokenPtr token_;
  std::uint64_t writer_epoch_;
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace ginja
