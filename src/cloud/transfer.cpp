#include "cloud/transfer.h"

#include <algorithm>

#include "obs/log.h"

namespace ginja {

namespace {

// Slice length for cancellable backoff sleeps (model time).
constexpr std::uint64_t kSleepSliceUs = 20'000;

}  // namespace

std::uint64_t RetryPolicy::NextBackoffUs(int attempt) {
  if (retries_) retries_->Add();
  double backoff = static_cast<double>(options_.backoff_initial_us);
  for (int i = 1; i < attempt; ++i) {
    backoff *= options_.backoff_multiplier;
    if (backoff >= static_cast<double>(options_.backoff_max_us)) break;
  }
  backoff = std::min(backoff, static_cast<double>(options_.backoff_max_us));
  if (options_.backoff_jitter > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    backoff *= 1.0 + options_.backoff_jitter * (2.0 * rng_.NextDouble() - 1.0);
  }
  return static_cast<std::uint64_t>(backoff);
}

TransferManager::TransferManager(ObjectStorePtr store, TransferOptions options,
                                 std::shared_ptr<Clock> clock)
    : store_(std::move(store)),
      options_(options),
      clock_(clock ? std::move(clock) : std::make_shared<RealClock>()),
      retry_(options, &stats_.retries) {
  options_.concurrency = std::max(1, options_.concurrency);
  options_.max_attempts = std::max(1, options_.max_attempts);
  workers_.reserve(static_cast<std::size_t>(options_.concurrency));
  for (int i = 0; i < options_.concurrency; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TransferManager::~TransferManager() {
  if (registry_) registry_->Unregister(this);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  // Fail whatever is still queued (only possible after Cancel raced new
  // submissions, or when futures were dropped mid-shutdown).
  for (auto& op : queue_) Fail(op, Status::Aborted("transfer manager destroyed"));
}

void TransferManager::RegisterMetrics(MetricsRegistry* registry,
                                      std::string component) {
  if (registry_) registry_->Unregister(this);
  registry_ = registry;
  if (!registry_) return;
  const MetricLabels labels = {{"component", std::move(component)}};
  registry_->RegisterCounter(this, "ginja_transfer_gets_total", labels,
                             &stats_.gets);
  registry_->RegisterCounter(this, "ginja_transfer_puts_total", labels,
                             &stats_.puts);
  registry_->RegisterCounter(this, "ginja_transfer_deletes_total", labels,
                             &stats_.deletes);
  registry_->RegisterCounter(this, "ginja_transfer_retries_total", labels,
                             &stats_.retries);
  registry_->RegisterCounter(this, "ginja_transfer_failed_ops_total", labels,
                             &stats_.failed_ops);
  registry_->RegisterCounter(this, "ginja_transfer_bytes_downloaded_total",
                             labels, &stats_.bytes_downloaded);
  registry_->RegisterCounter(this, "ginja_transfer_bytes_uploaded_total",
                             labels, &stats_.bytes_uploaded);
  registry_->RegisterHistogram(this, "ginja_transfer_get_latency_us", labels,
                               &stats_.get_latency_us);
  registry_->RegisterHistogram(this, "ginja_transfer_put_latency_us", labels,
                               &stats_.put_latency_us);
  registry_->RegisterHistogram(this, "ginja_transfer_delete_latency_us",
                               labels, &stats_.delete_latency_us);
  registry_->RegisterGauge(this, "ginja_transfer_inflight", labels, [this] {
    return static_cast<double>(stats_.inflight.load(std::memory_order_relaxed));
  });
  registry_->RegisterGauge(this, "ginja_transfer_peak_inflight", labels,
                           [this] {
                             return static_cast<double>(stats_.peak_inflight.load(
                                 std::memory_order_relaxed));
                           });
}

void TransferManager::Fail(Op& op, const Status& status) {
  if (op.kind == Op::Kind::kGet) {
    op.get_result.set_value(Result<Bytes>(status));
  } else {
    op.status_result.set_value(status);
  }
}

bool TransferManager::Enqueue(Op op) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!cancelled_.load(std::memory_order_acquire) && !stop_) {
      queue_.push_back(std::move(op));
      cv_.notify_one();
      return true;
    }
  }
  Fail(op, Status::Aborted("transfer manager cancelled"));
  return false;
}

std::future<Result<Bytes>> TransferManager::GetAsync(std::string name) {
  Op op;
  op.kind = Op::Kind::kGet;
  op.name = std::move(name);
  auto future = op.get_result.get_future();
  Enqueue(std::move(op));
  return future;
}

std::future<Status> TransferManager::PutAsync(std::string name, Bytes data) {
  Op op;
  op.kind = Op::Kind::kPut;
  op.name = std::move(name);
  op.data = std::move(data);
  auto future = op.status_result.get_future();
  Enqueue(std::move(op));
  return future;
}

std::future<Status> TransferManager::DeleteAsync(std::string name) {
  Op op;
  op.kind = Op::Kind::kDelete;
  op.name = std::move(name);
  auto future = op.status_result.get_future();
  Enqueue(std::move(op));
  return future;
}

std::vector<Status> TransferManager::DeleteAll(
    const std::vector<std::string>& names) {
  std::vector<std::future<Status>> futures;
  futures.reserve(names.size());
  for (const auto& name : names) futures.push_back(DeleteAsync(name));
  std::vector<Status> statuses;
  statuses.reserve(names.size());
  for (auto& f : futures) statuses.push_back(f.get());
  return statuses;
}

void TransferManager::Cancel() {
  std::deque<Op> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_.store(true, std::memory_order_release);
    orphans.swap(queue_);
  }
  cv_.notify_all();
  for (auto& op : orphans) Fail(op, Status::Aborted("transfer manager cancelled"));
}

bool TransferManager::BackoffSleep(std::uint64_t micros) {
  while (micros > 0) {
    if (cancelled_.load(std::memory_order_acquire)) return false;
    const std::uint64_t slice = std::min(micros, kSleepSliceUs);
    clock_->SleepMicros(slice);
    micros -= slice;
  }
  return !cancelled_.load(std::memory_order_acquire);
}

void TransferManager::WorkerLoop() {
  while (true) {
    Op op;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return stop_ || cancelled_.load(std::memory_order_acquire) ||
               !queue_.empty();
      });
      if (queue_.empty()) {
        if (stop_ || cancelled_.load(std::memory_order_acquire)) return;
        continue;
      }
      op = std::move(queue_.front());
      queue_.pop_front();
    }
    const int now_inflight =
        stats_.inflight.fetch_add(1, std::memory_order_relaxed) + 1;
    int peak = stats_.peak_inflight.load(std::memory_order_relaxed);
    while (peak < now_inflight &&
           !stats_.peak_inflight.compare_exchange_weak(
               peak, now_inflight, std::memory_order_relaxed)) {
    }
    Execute(op);
    stats_.inflight.fetch_sub(1, std::memory_order_relaxed);
  }
}

void TransferManager::Execute(Op& op) {
  const std::uint64_t started = clock_->NowMicros();
  Status last(ErrorCode::kUnavailable, "not attempted");
  for (int attempt = 1;; ++attempt) {
    switch (op.kind) {
      case Op::Kind::kGet: {
        auto blob = store_->Get(op.name);
        if (blob.ok()) {
          stats_.gets.Add();
          stats_.bytes_downloaded.Add(blob->size());
          stats_.get_latency_us.Record(
              static_cast<double>(clock_->NowMicros() - started));
          op.get_result.set_value(std::move(blob));
          return;
        }
        last = blob.status();
        break;
      }
      case Op::Kind::kPut: {
        Status st = store_->Put(op.name, View(op.data));
        if (st.ok()) {
          stats_.puts.Add();
          stats_.bytes_uploaded.Add(op.data.size());
          stats_.put_latency_us.Record(
              static_cast<double>(clock_->NowMicros() - started));
          op.status_result.set_value(st);
          return;
        }
        last = st;
        break;
      }
      case Op::Kind::kDelete: {
        Status st = store_->Delete(op.name);
        if (st.ok()) {
          stats_.deletes.Add();
          stats_.delete_latency_us.Record(
              static_cast<double>(clock_->NowMicros() - started));
          op.status_result.set_value(st);
          return;
        }
        last = st;
        break;
      }
    }
    if (!RetryPolicy::Retryable(last.code()) ||
        attempt >= options_.max_attempts ||
        cancelled_.load(std::memory_order_acquire)) {
      break;
    }
    if (!BackoffSleep(retry_.NextBackoffUs(attempt))) {
      last = Status::Aborted("transfer manager cancelled");
      break;
    }
  }
  stats_.failed_ops.Add();
  // Cancellation is an orderly shutdown, not an anomaly worth a record.
  if (last.code() != ErrorCode::kAborted) {
    Log(LogLevel::kWarn, "transfer", "operation permanently failed",
        {{"object", op.name}, {"status", last.ToString()}});
  }
  Fail(op, last);
}

}  // namespace ginja
