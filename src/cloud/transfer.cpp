#include "cloud/transfer.h"

#include <algorithm>

#include "obs/log.h"

namespace ginja {

namespace {

// Slice length for cancellable backoff sleeps (model time).
constexpr std::uint64_t kSleepSliceUs = 20'000;

}  // namespace

std::uint64_t RetryPolicy::NextBackoffUs(int attempt) {
  if (retries_) retries_->Add();
  double backoff = static_cast<double>(options_.backoff_initial_us);
  for (int i = 1; i < attempt; ++i) {
    backoff *= options_.backoff_multiplier;
    if (backoff >= static_cast<double>(options_.backoff_max_us)) break;
  }
  backoff = std::min(backoff, static_cast<double>(options_.backoff_max_us));
  if (options_.backoff_jitter > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    backoff *= 1.0 + options_.backoff_jitter * (2.0 * rng_.NextDouble() - 1.0);
  }
  return static_cast<std::uint64_t>(backoff);
}

TransferManager::TransferManager(ObjectStorePtr store, TransferOptions options,
                                 std::shared_ptr<Clock> clock)
    : store_(std::move(store)),
      options_(options),
      clock_(clock ? std::move(clock) : std::make_shared<RealClock>()),
      retry_(options, &stats_.retries) {
  options_.concurrency = std::max(1, options_.concurrency);
  options_.max_attempts = std::max(1, options_.max_attempts);
  workers_.reserve(static_cast<std::size_t>(options_.concurrency));
  for (int i = 0; i < options_.concurrency; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TransferManager::~TransferManager() {
  if (registry_) registry_->Unregister(this);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  // Fail whatever is still queued (only possible after Cancel raced new
  // submissions, or when futures were dropped mid-shutdown).
  for (auto& op : queue_) Fail(op, Status::Aborted("transfer manager destroyed"));
}

void TransferManager::RegisterMetrics(MetricsRegistry* registry,
                                      std::string component) {
  if (registry_) registry_->Unregister(this);
  registry_ = registry;
  if (!registry_) return;
  const MetricLabels labels = {{"component", std::move(component)}};
  registry_->RegisterCounter(this, "ginja_transfer_gets_total", labels,
                             &stats_.gets);
  registry_->RegisterCounter(this, "ginja_transfer_puts_total", labels,
                             &stats_.puts);
  registry_->RegisterCounter(this, "ginja_transfer_deletes_total", labels,
                             &stats_.deletes);
  registry_->RegisterCounter(this, "ginja_transfer_retries_total", labels,
                             &stats_.retries);
  registry_->RegisterCounter(this, "ginja_transfer_failed_ops_total", labels,
                             &stats_.failed_ops);
  registry_->RegisterCounter(this, "ginja_transfer_bytes_downloaded_total",
                             labels, &stats_.bytes_downloaded);
  registry_->RegisterCounter(this, "ginja_transfer_bytes_uploaded_total",
                             labels, &stats_.bytes_uploaded);
  registry_->RegisterCounter(this, "ginja_transfer_streams_opened_total",
                             labels, &stats_.streams_opened);
  registry_->RegisterCounter(this, "ginja_transfer_streams_finished_total",
                             labels, &stats_.streams_finished);
  registry_->RegisterCounter(this, "ginja_transfer_stream_parts_total",
                             labels, &stats_.stream_parts);
  registry_->RegisterHistogram(this, "ginja_transfer_part_put_latency_us",
                               labels, &stats_.part_put_latency_us);
  registry_->RegisterHistogram(this, "ginja_transfer_first_byte_latency_us",
                               labels, &stats_.first_byte_latency_us);
  registry_->RegisterHistogram(this, "ginja_transfer_get_latency_us", labels,
                               &stats_.get_latency_us);
  registry_->RegisterHistogram(this, "ginja_transfer_put_latency_us", labels,
                               &stats_.put_latency_us);
  registry_->RegisterHistogram(this, "ginja_transfer_delete_latency_us",
                               labels, &stats_.delete_latency_us);
  registry_->RegisterGauge(this, "ginja_transfer_inflight", labels, [this] {
    return static_cast<double>(stats_.inflight.load(std::memory_order_relaxed));
  });
  registry_->RegisterGauge(this, "ginja_transfer_peak_inflight", labels,
                           [this] {
                             return static_cast<double>(stats_.peak_inflight.load(
                                 std::memory_order_relaxed));
                           });
}

void TransferManager::Fail(Op& op, const Status& status) {
  if (op.kind == Op::Kind::kGet) {
    op.get_result.set_value(Result<Bytes>(status));
  } else {
    op.status_result.set_value(status);
  }
  if (op.done) op.done(status);
  if (op.account) op.account->OnDone(status, 0);
}

bool TransferManager::Enqueue(Op op) {
  // The account sees the op as pending from before the queue decision, so
  // WaitIdle cannot miss it; both outcomes (queued-then-executed, failed
  // here) settle it exactly once.
  if (op.account) op.account->OnEnqueue();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!cancelled_.load(std::memory_order_acquire) && !stop_) {
      queue_.push_back(std::move(op));
      cv_.notify_one();
      return true;
    }
  }
  Fail(op, Status::Aborted("transfer manager cancelled"));
  return false;
}

std::future<Result<Bytes>> TransferManager::GetAsync(TransferRoute route,
                                                     std::string name) {
  Op op;
  op.kind = Op::Kind::kGet;
  op.name = std::move(name);
  op.store = std::move(route.store);
  op.account = std::move(route.account);
  auto future = op.get_result.get_future();
  Enqueue(std::move(op));
  return future;
}

std::future<Status> TransferManager::PutAsync(TransferRoute route,
                                              std::string name, Bytes data) {
  Op op;
  op.kind = Op::Kind::kPut;
  op.name = std::move(name);
  op.data = std::move(data);
  op.store = std::move(route.store);
  op.account = std::move(route.account);
  auto future = op.status_result.get_future();
  Enqueue(std::move(op));
  return future;
}

std::future<Status> TransferManager::DeleteAsync(TransferRoute route,
                                                 std::string name) {
  Op op;
  op.kind = Op::Kind::kDelete;
  op.name = std::move(name);
  op.store = std::move(route.store);
  op.account = std::move(route.account);
  auto future = op.status_result.get_future();
  Enqueue(std::move(op));
  return future;
}

void TransferManager::PutAsyncCb(TransferRoute route, std::string name,
                                 Bytes data, std::function<void(Status)> done) {
  Op op;
  op.kind = Op::Kind::kPut;
  op.name = std::move(name);
  op.data = std::move(data);
  op.done = std::move(done);
  op.store = std::move(route.store);
  op.account = std::move(route.account);
  Enqueue(std::move(op));
}

void TransferManager::DeleteAsyncCb(TransferRoute route, std::string name,
                                    std::function<void(Status)> done) {
  Op op;
  op.kind = Op::Kind::kDelete;
  op.name = std::move(name);
  op.done = std::move(done);
  op.store = std::move(route.store);
  op.account = std::move(route.account);
  Enqueue(std::move(op));
}

std::future<Status> TransferManager::SubmitFn(TransferRoute route,
                                              std::function<Status()> fn,
                                              std::function<void(Status)> done) {
  Op op;
  op.kind = Op::Kind::kFn;
  op.name = "<fn>";
  op.fn = std::move(fn);
  op.done = std::move(done);
  op.store = std::move(route.store);
  op.account = std::move(route.account);
  auto future = op.status_result.get_future();
  Enqueue(std::move(op));
  return future;
}

StreamSessionPtr TransferManager::BeginStream(TransferRoute route,
                                              std::string staging_hint) {
  stats_.streams_opened.Add();
  return StreamSessionPtr(
      new StreamSession(this, std::move(route), std::move(staging_hint)));
}

std::vector<Status> TransferManager::DeleteAll(
    TransferRoute route, const std::vector<std::string>& names) {
  std::vector<std::future<Status>> futures;
  futures.reserve(names.size());
  for (const auto& name : names) futures.push_back(DeleteAsync(route, name));
  std::vector<Status> statuses;
  statuses.reserve(names.size());
  for (auto& f : futures) statuses.push_back(f.get());
  return statuses;
}

void TransferManager::Cancel() {
  std::deque<Op> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_.store(true, std::memory_order_release);
    orphans.swap(queue_);
  }
  cv_.notify_all();
  for (auto& op : orphans) Fail(op, Status::Aborted("transfer manager cancelled"));
}

bool TransferManager::BackoffSleep(std::uint64_t micros,
                                   const TransferAccount* account) {
  while (micros > 0) {
    if (cancelled_.load(std::memory_order_acquire)) return false;
    if (account && account->cancelled()) return false;
    const std::uint64_t slice = std::min(micros, kSleepSliceUs);
    clock_->SleepMicros(slice);
    micros -= slice;
  }
  return !cancelled_.load(std::memory_order_acquire) &&
         !(account && account->cancelled());
}

void TransferManager::WorkerLoop() {
  while (true) {
    Op op;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return stop_ || cancelled_.load(std::memory_order_acquire) ||
               !queue_.empty();
      });
      if (queue_.empty()) {
        if (stop_ || cancelled_.load(std::memory_order_acquire)) return;
        continue;
      }
      op = std::move(queue_.front());
      queue_.pop_front();
    }
    if (op.account && op.account->cancelled()) {
      Fail(op, Status::Aborted("transfer account cancelled"));
      continue;
    }
    const int now_inflight =
        stats_.inflight.fetch_add(1, std::memory_order_relaxed) + 1;
    int peak = stats_.peak_inflight.load(std::memory_order_relaxed);
    while (peak < now_inflight &&
           !stats_.peak_inflight.compare_exchange_weak(
               peak, now_inflight, std::memory_order_relaxed)) {
    }
    Execute(op);
    stats_.inflight.fetch_sub(1, std::memory_order_relaxed);
  }
}

void TransferManager::Execute(Op& op) {
  const std::uint64_t started = clock_->NowMicros();
  // The op's route may override the manager's store (a fleet tenant's
  // namespaced stack); the worker pool, retry policy, and in-flight
  // window stay shared either way.
  ObjectStore* store = op.store ? op.store.get() : store_.get();
  Status last(ErrorCode::kUnavailable, "not attempted");
  for (int attempt = 1;; ++attempt) {
    switch (op.kind) {
      case Op::Kind::kGet: {
        auto blob = store->Get(op.name);
        if (blob.ok()) {
          stats_.gets.Add();
          stats_.bytes_downloaded.Add(blob->size());
          stats_.get_latency_us.Record(
              static_cast<double>(clock_->NowMicros() - started));
          op.get_result.set_value(std::move(blob));
          if (op.done) op.done(Status::Ok());
          if (op.account) op.account->OnDone(Status::Ok(), 0);
          return;
        }
        last = blob.status();
        break;
      }
      case Op::Kind::kPut: {
        Status st = store->Put(op.name, View(op.data));
        if (st.ok()) {
          stats_.puts.Add();
          stats_.bytes_uploaded.Add(op.data.size());
          stats_.put_latency_us.Record(
              static_cast<double>(clock_->NowMicros() - started));
          op.status_result.set_value(st);
          if (op.done) op.done(st);
          if (op.account) op.account->OnDone(st, op.data.size());
          return;
        }
        last = st;
        break;
      }
      case Op::Kind::kDelete: {
        Status st = store->Delete(op.name);
        if (st.ok()) {
          stats_.deletes.Add();
          stats_.delete_latency_us.Record(
              static_cast<double>(clock_->NowMicros() - started));
          op.status_result.set_value(st);
          if (op.done) op.done(st);
          if (op.account) op.account->OnDone(st, 0);
          return;
        }
        last = st;
        break;
      }
      case Op::Kind::kFn: {
        Status st = op.fn();
        if (st.ok()) {
          op.status_result.set_value(st);
          if (op.done) op.done(st);
          if (op.account) op.account->OnDone(st, 0);
          return;
        }
        last = st;
        break;
      }
    }
    if (!RetryPolicy::Retryable(last.code()) ||
        attempt >= options_.max_attempts ||
        cancelled_.load(std::memory_order_acquire) ||
        (op.account && op.account->cancelled())) {
      break;
    }
    if (!BackoffSleep(retry_.NextBackoffUs(attempt), op.account.get())) {
      last = Status::Aborted("transfer cancelled");
      break;
    }
  }
  stats_.failed_ops.Add();
  // Cancellation is an orderly shutdown, not an anomaly worth a record.
  if (last.code() != ErrorCode::kAborted) {
    Log(LogLevel::kWarn, "transfer", "operation permanently failed",
        {{"object", op.name}, {"status", last.ToString()}});
  }
  Fail(op, last);
}

StreamSession::StreamSession(TransferManager* manager, TransferRoute route,
                             std::string staging_hint)
    : manager_(manager),
      route_(std::move(route)),
      staging_hint_(std::move(staging_hint)),
      opened_us_(manager->clock_->NowMicros()) {}

Status StreamSession::EnsureWriter() {
  // Worker-side: only the single in-flight operation touches writer_, and
  // op_inflight_ transitions under mu_ order those touches.
  if (writer_) return Status::Ok();
  ObjectStore* store =
      route_.store ? route_.store.get() : manager_->store_.get();
  auto writer = store->BeginStreaming(staging_hint_);
  if (!writer.ok()) return writer.status();
  writer_ = std::move(*writer);
  return Status::Ok();
}

void StreamSession::AppendPart(std::uint32_t index, Bytes part,
                               std::function<void(Status)> done) {
  bool dead = false;
  bool durable = false;
  Status failure;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (failed_) {
      dead = true;
      failure = failure_;
    } else if (index < next_index_) {
      durable = true;  // idempotent resubmission of a landed part
    } else {
      pending_[index] = {std::move(part), std::move(done)};
    }
  }
  if (dead) {
    if (done) done(failure);
    return;
  }
  if (durable) {
    if (done) done(Status::Ok());
    return;
  }
  Pump();
}

std::future<Status> StreamSession::Finish(std::uint32_t total_parts,
                                          std::string final_name,
                                          std::function<void(Status)> done) {
  std::future<Status> future;
  bool dead = false;
  Status failure;
  {
    std::lock_guard<std::mutex> lock(mu_);
    future = finish_promise_.get_future();
    finish_requested_ = true;
    total_parts_ = total_parts;
    final_name_ = std::move(final_name);
    if (failed_) {
      dead = true;
      failure = failure_;
      if (!finish_resolved_) {
        finish_resolved_ = true;
        finish_promise_.set_value(failure);
      }
    } else {
      finish_done_ = std::move(done);
    }
  }
  if (dead) {
    if (done) done(failure);
    return future;
  }
  Pump();
  return future;
}

void StreamSession::Abort() {
  const Status status = Status::Aborted("stream aborted");
  std::vector<std::function<void(Status)>> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    drained = FailLocked(status);
  }
  for (auto& cb : drained) cb(status);
}

std::size_t StreamSession::BacklogParts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size() + (op_inflight_ ? 1 : 0);
}

std::vector<std::function<void(Status)>> StreamSession::FailLocked(
    const Status& status) {
  std::vector<std::function<void(Status)>> cbs;
  if (failed_) return cbs;
  failed_ = true;
  failure_ = status;
  for (auto& [index, entry] : pending_) {
    if (entry.second) cbs.push_back(std::move(entry.second));
  }
  pending_.clear();
  if (finish_requested_ && !finish_resolved_) {
    finish_resolved_ = true;
    finish_promise_.set_value(status);
    if (finish_done_) cbs.push_back(std::move(finish_done_));
  }
  return cbs;
}

void StreamSession::Pump() {
  std::function<Status()> fn;
  std::function<void(Status)> done;
  auto self = shared_from_this();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (op_inflight_ || failed_) return;
    auto it = pending_.find(next_index_);
    if (it != pending_.end()) {
      const std::uint32_t index = next_index_;
      auto part = std::make_shared<Bytes>(std::move(it->second.first));
      auto part_done = std::move(it->second.second);
      pending_.erase(it);
      op_inflight_ = true;
      const std::uint64_t started = manager_->clock_->NowMicros();
      fn = [self, index, part]() -> Status {
        Status st = self->EnsureWriter();
        if (!st.ok()) return st;
        return self->writer_->AppendPart(index, View(*part));
      };
      done = [self, index, started, bytes = part->size(),
              part_done = std::move(part_done)](Status st) {
        self->OnPartDone(index, started, bytes, st, part_done);
      };
    } else if (finish_requested_ && next_index_ >= total_parts_) {
      op_inflight_ = true;
      fn = [self]() -> Status {
        Status st = self->EnsureWriter();  // a zero-part stream still opens
        if (!st.ok()) return st;
        return self->writer_->Finish(self->final_name_);
      };
      done = [self](Status st) { self->OnFinishDone(st); };
    } else {
      return;  // waiting for the next dense index (or for Finish)
    }
  }
  // Outside mu_: a synchronous failure (manager cancelled) invokes `done`
  // on this thread, which re-enters via On*Done -> Pump and returns on
  // failed_ without deadlocking. The session's route bills each writer
  // operation to the tenant's account.
  TransferRoute route;
  route.account = route_.account;
  manager_->SubmitFn(std::move(route), std::move(fn), std::move(done));
}

void StreamSession::OnPartDone(std::uint32_t index, std::uint64_t started_us,
                               std::size_t bytes, const Status& status,
                               const std::function<void(Status)>& done) {
  Status report = status;
  std::vector<std::function<void(Status)>> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    op_inflight_ = false;
    if (failed_) {
      report = failure_;  // e.g. Abort() raced the in-flight part
    } else if (status.ok()) {
      next_index_ = index + 1;
      const std::uint64_t now = manager_->clock_->NowMicros();
      manager_->stats_.stream_parts.Add();
      manager_->stats_.bytes_uploaded.Add(bytes);
      manager_->stats_.part_put_latency_us.Record(
          static_cast<double>(now - started_us));
      if (index == 0) {
        manager_->stats_.first_byte_latency_us.Record(
            static_cast<double>(now - opened_us_));
      }
    } else {
      drained = FailLocked(status);
    }
  }
  if (done) done(report);
  for (auto& cb : drained) cb(status);
  Pump();
}

void StreamSession::OnFinishDone(const Status& status) {
  Status report = status;
  std::function<void(Status)> done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    op_inflight_ = false;
    if (failed_) {
      report = failure_;
    } else if (status.ok()) {
      manager_->stats_.streams_finished.Add();
    } else {
      failed_ = true;  // later appends must not resurrect the stream
      failure_ = status;
    }
    if (!finish_resolved_) {
      finish_resolved_ = true;
      finish_promise_.set_value(report);
      done = std::move(finish_done_);
    }
  }
  if (done) done(report);
}

}  // namespace ginja
