// Latency model for the simulated cloud — calibrated against paper Table 3.
//
// Table 3 reports PUT latencies for objects of 26 kB .. 10 MB uploaded from
// the authors' Lisbon lab to S3 US-East. A linear fit latency = base +
// size × per-kB reproduces those points within ~10%:
//   PostgreSQL plain:  386 kB → 692 ms, 3018 kB → 2880 ms, 10081 kB → 7707 ms
//   fit: base ≈ 410 ms, ≈ 0.72 ms/kB  (~1.4 MB/s sustained upload)
// The `Ec2Colocated` preset models a VM in the same region as the bucket
// (paper §8.3/Fig. 7): sub-10 ms base, ~100 MB/s.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "common/clock.h"
#include "common/rng.h"

namespace ginja {

struct LatencyParams {
  double put_base_us = 0;
  double put_us_per_kb = 0;
  double get_base_us = 0;
  double get_us_per_kb = 0;
  double list_base_us = 0;
  double list_us_per_object = 0;
  double delete_base_us = 0;
  // Multiplicative jitter: each latency is scaled by a factor drawn from a
  // Gaussian(1, jitter_stddev), clamped to [0.5, 2].
  double jitter_stddev = 0.1;

  // Lisbon → S3 US-East, fitted to Table 3.
  static LatencyParams WanS3();
  // VM colocated with the bucket (same region / free fast path).
  static LatencyParams Ec2Colocated();
  // Zero latency — unit tests that only exercise logic.
  static LatencyParams Instant();
};

// Computes (and optionally sleeps for) operation latencies. Thread-safe.
class LatencyModel {
 public:
  LatencyModel(LatencyParams params, std::shared_ptr<Clock> clock,
               std::uint64_t seed = 42);

  // Returns the model latency for the op in microseconds.
  std::uint64_t PutLatencyMicros(std::uint64_t bytes);
  // Streamed-PUT decomposition: a part pays only the per-byte transfer
  // term, the finish pays the per-request base (TLS + request overhead +
  // commit). Their sum over a whole object matches PutLatencyMicros in
  // expectation — streaming moves the size term off the critical path, it
  // doesn't make bytes free.
  std::uint64_t PutPartLatencyMicros(std::uint64_t bytes);
  std::uint64_t PutFinishLatencyMicros();
  std::uint64_t GetLatencyMicros(std::uint64_t bytes);
  std::uint64_t ListLatencyMicros(std::uint64_t num_objects);
  std::uint64_t DeleteLatencyMicros();

  // Sleeps on the model's clock (which may be scaled).
  void Sleep(std::uint64_t micros) { clock_->SleepMicros(micros); }

  const LatencyParams& params() const { return params_; }
  Clock& clock() { return *clock_; }

 private:
  double Jitter();

  LatencyParams params_;
  std::shared_ptr<Clock> clock_;
  std::mutex mu_;
  SplitMix64 rng_;
};

}  // namespace ginja
