#include "cloud/s3/s3_server.h"

#include <cstdlib>
#include <sstream>

#include "cloud/s3/xml.h"
#include "common/codec/sha256.h"

namespace ginja {

namespace {

// Decodes %XX sequences in a path.
std::string UriDecode(std::string_view s) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = nibble(s[i + 1]), lo = nibble(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
        continue;
      }
    }
    out.push_back(s[i]);
  }
  return out;
}

}  // namespace

S3Server::S3Server(ObjectStorePtr backend, std::string bucket,
                   AwsCredentials credentials, std::size_t max_keys)
    : backend_(std::move(backend)),
      bucket_(std::move(bucket)),
      signer_(std::move(credentials)),
      max_keys_(max_keys) {}

HttpResponse S3Server::ErrorResponse(int status, const std::string& code,
                                     const std::string& message) {
  HttpResponse response;
  response.status = status;
  const std::string body = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
                           "<Error><Code>" + code + "</Code><Message>" +
                           XmlEscape(message) + "</Message></Error>";
  response.body = ToBytes(body);
  response.headers["content-type"] = "application/xml";
  return response;
}

Result<HttpResponse> S3Server::RoundTrip(const HttpRequest& request) {
  if (!signer_.Verify(request)) {
    rejected_.Add();
    return ErrorResponse(403, "SignatureDoesNotMatch",
                         "The request signature we calculated does not match");
  }

  // Path: "/<bucket>" (listing) or "/<bucket>/<key>".
  std::string_view path = request.path;
  if (!path.starts_with('/')) {
    return ErrorResponse(400, "InvalidURI", "path must start with /");
  }
  path.remove_prefix(1);
  const auto slash = path.find('/');
  const std::string_view bucket =
      slash == std::string_view::npos ? path : path.substr(0, slash);
  if (bucket != bucket_) {
    return ErrorResponse(404, "NoSuchBucket",
                         "The specified bucket does not exist");
  }

  if (slash == std::string_view::npos || slash + 1 == path.size()) {
    if (request.method == "GET" && request.query.count("list-type") > 0) {
      return HandleList(request);
    }
    return ErrorResponse(400, "InvalidRequest", "expected object key or list");
  }
  return HandleObject(request, UriDecode(path.substr(slash + 1)));
}

HttpResponse S3Server::HandleObject(const HttpRequest& request,
                                    const std::string& key) {
  // Multipart-upload verbs and server-side copy route before the plain
  // object verbs: they share methods (PUT/POST/DELETE) and differ only in
  // query parameters / the x-amz-copy-source header.
  if (request.query.count("uploads") > 0 || request.query.count("uploadId") > 0) {
    return HandleMultipart(request, key);
  }
  if (request.method == "PUT" &&
      request.headers.count("x-amz-copy-source") > 0) {
    return HandleCopy(request, key);
  }

  HttpResponse response;
  if (request.method == "PUT") {
    Status st = backend_->Put(key, View(request.body));
    if (!st.ok()) return ErrorResponse(500, "InternalError", st.ToString());
    response.status = 200;
    const auto etag = Sha256::Hash(View(request.body));
    response.headers["etag"] =
        "\"" + ToHex(ByteView(etag.data(), 16)) + "\"";
    return response;
  }
  if (request.method == "GET") {
    auto data = backend_->Get(key);
    if (!data.ok()) {
      if (data.status().code() == ErrorCode::kNotFound) {
        return ErrorResponse(404, "NoSuchKey",
                             "The specified key does not exist.");
      }
      return ErrorResponse(500, "InternalError", data.status().ToString());
    }
    response.status = 200;
    response.body = std::move(*data);
    return response;
  }
  if (request.method == "DELETE") {
    Status st = backend_->Delete(key);
    if (!st.ok()) return ErrorResponse(500, "InternalError", st.ToString());
    response.status = 204;
    return response;
  }
  return ErrorResponse(405, "MethodNotAllowed", request.method);
}

HttpResponse S3Server::HandleMultipart(const HttpRequest& request,
                                       const std::string& key) {
  std::lock_guard<std::mutex> lock(multipart_mu_);

  // POST ?uploads — CreateMultipartUpload.
  if (request.method == "POST" && request.query.count("uploads") > 0) {
    const std::string id = "upload-" + std::to_string(next_upload_id_++);
    uploads_[id].key = key;
    HttpResponse response;
    response.status = 200;
    response.body = ToBytes(
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
        "<InitiateMultipartUploadResult><Bucket>" + XmlEscape(bucket_) +
        "</Bucket><Key>" + XmlEscape(key) + "</Key><UploadId>" + id +
        "</UploadId></InitiateMultipartUploadResult>");
    response.headers["content-type"] = "application/xml";
    return response;
  }

  const auto id_it = request.query.find("uploadId");
  if (id_it == request.query.end()) {
    return ErrorResponse(400, "InvalidRequest", "missing uploadId");
  }
  auto upload_it = uploads_.find(id_it->second);
  if (upload_it == uploads_.end() || upload_it->second.key != key) {
    return ErrorResponse(404, "NoSuchUpload",
                         "The specified upload does not exist.");
  }
  MultipartUpload& upload = upload_it->second;

  // PUT ?partNumber=N&uploadId — UploadPart.
  if (request.method == "PUT") {
    const auto part_it = request.query.find("partNumber");
    if (part_it == request.query.end()) {
      return ErrorResponse(400, "InvalidRequest", "missing partNumber");
    }
    const int part = std::atoi(part_it->second.c_str());
    if (part < 1 || part > 10000) {  // real S3's part-number bounds
      return ErrorResponse(400, "InvalidArgument", "partNumber out of range");
    }
    upload.parts[static_cast<std::uint32_t>(part)] = request.body;
    HttpResponse response;
    response.status = 200;
    const auto etag = Sha256::Hash(View(request.body));
    response.headers["etag"] = "\"" + ToHex(ByteView(etag.data(), 16)) + "\"";
    return response;
  }

  // POST ?uploadId — CompleteMultipartUpload: concatenate parts in
  // part-number order into one backend object.
  if (request.method == "POST") {
    Bytes assembled;
    for (const auto& [number, body] : upload.parts) {
      Append(assembled, View(body));
    }
    Status st = backend_->Put(key, View(assembled));
    if (!st.ok()) return ErrorResponse(500, "InternalError", st.ToString());
    uploads_.erase(upload_it);
    HttpResponse response;
    response.status = 200;
    response.body = ToBytes(
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
        "<CompleteMultipartUploadResult><Bucket>" + XmlEscape(bucket_) +
        "</Bucket><Key>" + XmlEscape(key) +
        "</Key></CompleteMultipartUploadResult>");
    response.headers["content-type"] = "application/xml";
    return response;
  }

  // DELETE ?uploadId — AbortMultipartUpload.
  if (request.method == "DELETE") {
    uploads_.erase(upload_it);
    HttpResponse response;
    response.status = 204;
    return response;
  }
  return ErrorResponse(405, "MethodNotAllowed", request.method);
}

HttpResponse S3Server::HandleCopy(const HttpRequest& request,
                                  const std::string& key) {
  // x-amz-copy-source: "/<bucket>/<key>", URI-encoded like a path.
  const std::string source =
      UriDecode(request.headers.at("x-amz-copy-source"));
  const std::string expected_prefix = "/" + bucket_ + "/";
  if (source.compare(0, expected_prefix.size(), expected_prefix) != 0) {
    return ErrorResponse(400, "InvalidRequest", "copy source bucket mismatch");
  }
  const std::string source_key = source.substr(expected_prefix.size());
  auto data = backend_->Get(source_key);
  if (!data.ok()) {
    if (data.status().code() == ErrorCode::kNotFound) {
      return ErrorResponse(404, "NoSuchKey",
                           "The specified key does not exist.");
    }
    return ErrorResponse(500, "InternalError", data.status().ToString());
  }
  Status st = backend_->Put(key, View(*data));
  if (!st.ok()) return ErrorResponse(500, "InternalError", st.ToString());
  HttpResponse response;
  response.status = 200;
  response.body = ToBytes(
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      "<CopyObjectResult></CopyObjectResult>");
  response.headers["content-type"] = "application/xml";
  return response;
}

HttpResponse S3Server::HandleList(const HttpRequest& request) {
  std::string prefix;
  if (auto it = request.query.find("prefix"); it != request.query.end()) {
    prefix = it->second;
  }
  std::string start_after;
  if (auto it = request.query.find("start-after"); it != request.query.end()) {
    start_after = it->second;  // ListObjectsV2 cursor
  }
  if (auto it = request.query.find("continuation-token");
      it != request.query.end()) {
    // Our tokens are simply the last key served; a continuation resumes
    // from whichever cursor is further along.
    if (it->second > start_after) start_after = it->second;
  }

  auto all = backend_->List(prefix, start_after);
  if (!all.ok()) return ErrorResponse(500, "InternalError", all.status().ToString());

  std::ostringstream xml;
  xml << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      << "<ListBucketResult><Name>" << XmlEscape(bucket_) << "</Name>"
      << "<Prefix>" << XmlEscape(prefix) << "</Prefix>";

  std::size_t served = 0;
  std::string last_key;
  bool truncated = false;
  for (const auto& meta : *all) {
    if (!start_after.empty() && meta.name <= start_after) continue;
    if (served == max_keys_) {
      truncated = true;
      break;
    }
    xml << "<Contents><Key>" << XmlEscape(meta.name) << "</Key><Size>"
        << meta.size << "</Size></Contents>";
    last_key = meta.name;
    ++served;
  }
  xml << "<KeyCount>" << served << "</KeyCount>"
      << "<IsTruncated>" << (truncated ? "true" : "false") << "</IsTruncated>";
  if (truncated) {
    xml << "<NextContinuationToken>" << XmlEscape(last_key)
        << "</NextContinuationToken>";
  }
  xml << "</ListBucketResult>";

  HttpResponse response;
  response.status = 200;
  response.body = ToBytes(xml.str());
  response.headers["content-type"] = "application/xml";
  return response;
}

}  // namespace ginja
