#include "cloud/s3/s3_server.h"

#include <sstream>

#include "cloud/s3/xml.h"
#include "common/codec/sha256.h"

namespace ginja {

namespace {

// Decodes %XX sequences in a path.
std::string UriDecode(std::string_view s) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = nibble(s[i + 1]), lo = nibble(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
        continue;
      }
    }
    out.push_back(s[i]);
  }
  return out;
}

}  // namespace

S3Server::S3Server(ObjectStorePtr backend, std::string bucket,
                   AwsCredentials credentials, std::size_t max_keys)
    : backend_(std::move(backend)),
      bucket_(std::move(bucket)),
      signer_(std::move(credentials)),
      max_keys_(max_keys) {}

HttpResponse S3Server::ErrorResponse(int status, const std::string& code,
                                     const std::string& message) {
  HttpResponse response;
  response.status = status;
  const std::string body = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
                           "<Error><Code>" + code + "</Code><Message>" +
                           XmlEscape(message) + "</Message></Error>";
  response.body = ToBytes(body);
  response.headers["content-type"] = "application/xml";
  return response;
}

Result<HttpResponse> S3Server::RoundTrip(const HttpRequest& request) {
  if (!signer_.Verify(request)) {
    rejected_.Add();
    return ErrorResponse(403, "SignatureDoesNotMatch",
                         "The request signature we calculated does not match");
  }

  // Path: "/<bucket>" (listing) or "/<bucket>/<key>".
  std::string_view path = request.path;
  if (!path.starts_with('/')) {
    return ErrorResponse(400, "InvalidURI", "path must start with /");
  }
  path.remove_prefix(1);
  const auto slash = path.find('/');
  const std::string_view bucket =
      slash == std::string_view::npos ? path : path.substr(0, slash);
  if (bucket != bucket_) {
    return ErrorResponse(404, "NoSuchBucket",
                         "The specified bucket does not exist");
  }

  if (slash == std::string_view::npos || slash + 1 == path.size()) {
    if (request.method == "GET" && request.query.count("list-type") > 0) {
      return HandleList(request);
    }
    return ErrorResponse(400, "InvalidRequest", "expected object key or list");
  }
  return HandleObject(request, UriDecode(path.substr(slash + 1)));
}

HttpResponse S3Server::HandleObject(const HttpRequest& request,
                                    const std::string& key) {
  HttpResponse response;
  if (request.method == "PUT") {
    Status st = backend_->Put(key, View(request.body));
    if (!st.ok()) return ErrorResponse(500, "InternalError", st.ToString());
    response.status = 200;
    const auto etag = Sha256::Hash(View(request.body));
    response.headers["etag"] =
        "\"" + ToHex(ByteView(etag.data(), 16)) + "\"";
    return response;
  }
  if (request.method == "GET") {
    auto data = backend_->Get(key);
    if (!data.ok()) {
      if (data.status().code() == ErrorCode::kNotFound) {
        return ErrorResponse(404, "NoSuchKey",
                             "The specified key does not exist.");
      }
      return ErrorResponse(500, "InternalError", data.status().ToString());
    }
    response.status = 200;
    response.body = std::move(*data);
    return response;
  }
  if (request.method == "DELETE") {
    Status st = backend_->Delete(key);
    if (!st.ok()) return ErrorResponse(500, "InternalError", st.ToString());
    response.status = 204;
    return response;
  }
  return ErrorResponse(405, "MethodNotAllowed", request.method);
}

HttpResponse S3Server::HandleList(const HttpRequest& request) {
  std::string prefix;
  if (auto it = request.query.find("prefix"); it != request.query.end()) {
    prefix = it->second;
  }
  std::string start_after;
  if (auto it = request.query.find("continuation-token");
      it != request.query.end()) {
    start_after = it->second;  // our tokens are simply the last key served
  }

  auto all = backend_->List(prefix);
  if (!all.ok()) return ErrorResponse(500, "InternalError", all.status().ToString());

  std::ostringstream xml;
  xml << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      << "<ListBucketResult><Name>" << XmlEscape(bucket_) << "</Name>"
      << "<Prefix>" << XmlEscape(prefix) << "</Prefix>";

  std::size_t served = 0;
  std::string last_key;
  bool truncated = false;
  for (const auto& meta : *all) {
    if (!start_after.empty() && meta.name <= start_after) continue;
    if (served == max_keys_) {
      truncated = true;
      break;
    }
    xml << "<Contents><Key>" << XmlEscape(meta.name) << "</Key><Size>"
        << meta.size << "</Size></Contents>";
    last_key = meta.name;
    ++served;
  }
  xml << "<KeyCount>" << served << "</KeyCount>"
      << "<IsTruncated>" << (truncated ? "true" : "false") << "</IsTruncated>";
  if (truncated) {
    xml << "<NextContinuationToken>" << XmlEscape(last_key)
        << "</NextContinuationToken>";
  }
  xml << "</ListBucketResult>";

  HttpResponse response;
  response.status = 200;
  response.body = ToBytes(xml.str());
  response.headers["content-type"] = "application/xml";
  return response;
}

}  // namespace ginja
