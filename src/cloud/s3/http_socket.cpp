#include "cloud/s3/http_socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>

namespace ginja {

namespace {

// Reason phrases for the handful of statuses the S3 pair emits.
const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

// Reads from `fd` until the stream holds a complete HTTP message
// (empty-line header terminator plus Content-Length body bytes).
Result<std::string> ReadHttpMessage(int fd) {
  std::string buffer;
  char chunk[4096];
  std::size_t body_needed = std::string::npos;
  std::size_t header_end = std::string::npos;
  while (true) {
    if (header_end != std::string::npos &&
        buffer.size() >= header_end + 4 + body_needed) {
      return buffer;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n == 0) {
      if (header_end != std::string::npos) return buffer;  // peer done
      return Status::IoError("connection closed mid-request");
    }
    if (n < 0) return Status::IoError(std::strerror(errno));
    buffer.append(chunk, static_cast<std::size_t>(n));

    if (header_end == std::string::npos) {
      header_end = buffer.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        body_needed = 0;
        // Scan the headers for Content-Length (case-insensitive).
        std::istringstream headers(buffer.substr(0, header_end));
        std::string line;
        while (std::getline(headers, line)) {
          std::string lower = line;
          for (auto& c : lower) c = static_cast<char>(std::tolower(c));
          if (lower.rfind("content-length:", 0) == 0) {
            body_needed = std::strtoull(line.c_str() + 15, nullptr, 10);
          }
        }
      }
    }
  }
}

Status SendAll(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return Status::IoError("send failed");
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

std::string EncodeQuery(const std::map<std::string, std::string>& query) {
  std::string out;
  for (const auto& [key, value] : query) {
    out += out.empty() ? '?' : '&';
    out += UriEncode(key) + "=" + UriEncode(value);
  }
  return out;
}

std::string PercentDecode(std::string_view s) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size() && nibble(s[i + 1]) >= 0 &&
        nibble(s[i + 2]) >= 0) {
      out.push_back(static_cast<char>((nibble(s[i + 1]) << 4) | nibble(s[i + 2])));
      i += 2;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

}  // namespace

std::string SerializeHttpRequest(const HttpRequest& request) {
  std::ostringstream out;
  out << request.method << ' ' << request.path << EncodeQuery(request.query)
      << " HTTP/1.1\r\n";
  for (const auto& [name, value] : request.headers) {
    out << name << ": " << value << "\r\n";
  }
  out << "content-length: " << request.body.size() << "\r\n";
  out << "connection: close\r\n\r\n";
  out.write(reinterpret_cast<const char*>(request.body.data()),
            static_cast<std::streamsize>(request.body.size()));
  return out.str();
}

std::string SerializeHttpResponse(const HttpResponse& response) {
  std::ostringstream out;
  out << "HTTP/1.1 " << response.status << ' ' << ReasonPhrase(response.status)
      << "\r\n";
  for (const auto& [name, value] : response.headers) {
    out << name << ": " << value << "\r\n";
  }
  out << "content-length: " << response.body.size() << "\r\n";
  out << "connection: close\r\n\r\n";
  out.write(reinterpret_cast<const char*>(response.body.data()),
            static_cast<std::streamsize>(response.body.size()));
  return out.str();
}

Result<HttpRequest> ParseHttpRequest(std::string_view wire) {
  const auto header_end = wire.find("\r\n\r\n");
  if (header_end == std::string_view::npos) {
    return Status::InvalidArgument("no header terminator");
  }
  std::istringstream headers{std::string(wire.substr(0, header_end))};
  std::string request_line;
  if (!std::getline(headers, request_line)) {
    return Status::InvalidArgument("missing request line");
  }
  HttpRequest request;
  std::istringstream rl(request_line);
  std::string target, version;
  if (!(rl >> request.method >> target >> version)) {
    return Status::InvalidArgument("malformed request line");
  }
  const auto qmark = target.find('?');
  request.path = target.substr(0, qmark);
  if (qmark != std::string::npos) {
    std::string_view qs(target);
    qs.remove_prefix(qmark + 1);
    while (!qs.empty()) {
      const auto amp = qs.find('&');
      const std::string_view pair = qs.substr(0, amp);
      const auto eq = pair.find('=');
      if (eq != std::string_view::npos) {
        request.query[PercentDecode(pair.substr(0, eq))] =
            PercentDecode(pair.substr(eq + 1));
      }
      if (amp == std::string_view::npos) break;
      qs.remove_prefix(amp + 1);
    }
  }
  std::string line;
  while (std::getline(headers, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = line.substr(0, colon);
    for (auto& c : name) c = static_cast<char>(std::tolower(c));
    std::string value = line.substr(colon + 1);
    if (!value.empty() && value.front() == ' ') value.erase(0, 1);
    request.headers[name] = value;
  }
  // Transport headers are not part of the SigV4-signed set.
  request.headers.erase("content-length");
  request.headers.erase("connection");
  const std::string_view body = wire.substr(header_end + 4);
  request.body.assign(body.begin(), body.end());
  return request;
}

Result<HttpResponse> ParseHttpResponse(std::string_view wire) {
  const auto header_end = wire.find("\r\n\r\n");
  if (header_end == std::string_view::npos) {
    return Status::InvalidArgument("no header terminator");
  }
  HttpResponse response;
  std::istringstream headers{std::string(wire.substr(0, header_end))};
  std::string status_line;
  if (!std::getline(headers, status_line)) {
    return Status::InvalidArgument("missing status line");
  }
  std::istringstream sl(status_line);
  std::string version;
  if (!(sl >> version >> response.status)) {
    return Status::InvalidArgument("malformed status line");
  }
  std::string line;
  while (std::getline(headers, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = line.substr(0, colon);
    for (auto& c : name) c = static_cast<char>(std::tolower(c));
    std::string value = line.substr(colon + 1);
    if (!value.empty() && value.front() == ' ') value.erase(0, 1);
    response.headers[name] = value;
  }
  const std::string_view body = wire.substr(header_end + 4);
  response.body.assign(body.begin(), body.end());
  return response;
}

HttpSocketServer::HttpSocketServer(std::shared_ptr<HttpTransport> handler,
                                   int port)
    : handler_(std::move(handler)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    status_ = Status::IoError("socket: " + std::string(std::strerror(errno)));
    return;
  }
  const int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof reuse);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listen_fd_, 16) < 0) {
    status_ = Status::IoError("bind/listen: " + std::string(std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  status_ = Status::Ok();
  thread_ = std::thread([this] { AcceptLoop(); });
}

HttpSocketServer::~HttpSocketServer() {
  stopping_.store(true);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (thread_.joinable()) thread_.join();
}

void HttpSocketServer::AcceptLoop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      continue;
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

void HttpSocketServer::ServeConnection(int fd) {
  auto wire = ReadHttpMessage(fd);
  if (!wire.ok()) return;
  auto request = ParseHttpRequest(*wire);
  HttpResponse response;
  if (!request.ok()) {
    response.status = 400;
    response.body = ToBytes(request.status().ToString());
  } else {
    auto handled = handler_->RoundTrip(*request);
    if (handled.ok()) {
      response = std::move(*handled);
    } else {
      response.status = 500;
      response.body = ToBytes(handled.status().ToString());
    }
  }
  served_.fetch_add(1);
  (void)SendAll(fd, SerializeHttpResponse(response));
}

HttpSocketClient::HttpSocketClient(std::string host, int port)
    : host_(std::move(host)), port_(port) {}

Result<HttpResponse> HttpSocketClient::RoundTrip(const HttpRequest& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port_));
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host " + host_);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return Status::Unavailable("connect: " + std::string(std::strerror(errno)));
  }
  Status st = SendAll(fd, SerializeHttpRequest(request));
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  ::shutdown(fd, SHUT_WR);
  auto wire = ReadHttpMessage(fd);
  ::close(fd);
  if (!wire.ok()) return wire.status();
  return ParseHttpResponse(*wire);
}

}  // namespace ginja
