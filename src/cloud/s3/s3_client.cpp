#include "cloud/s3/s3_client.h"

#include <charconv>

#include "cloud/s3/xml.h"

namespace ginja {

S3Client::S3Client(std::shared_ptr<HttpTransport> transport, std::string bucket,
                   AwsCredentials credentials,
                   std::function<std::string()> amz_date_fn)
    : transport_(std::move(transport)),
      bucket_(std::move(bucket)),
      signer_(std::move(credentials)),
      amz_date_fn_(std::move(amz_date_fn)) {
  if (!amz_date_fn_) {
    amz_date_fn_ = [] { return std::string("20170515T000000Z"); };
  }
}

Result<HttpResponse> S3Client::Send(HttpRequest request) {
  signer_.Sign(request, amz_date_fn_());
  return transport_->RoundTrip(request);
}

Status S3Client::Put(std::string_view name, ByteView data) {
  HttpRequest request;
  request.method = "PUT";
  request.path = "/" + bucket_ + "/" + UriEncode(name, /*encode_slash=*/false);
  request.body.assign(data.begin(), data.end());
  auto response = Send(std::move(request));
  if (!response.ok()) return response.status();
  if (response->status != 200) {
    return Status::Unavailable("S3 PUT HTTP " + std::to_string(response->status));
  }
  return Status::Ok();
}

Result<Bytes> S3Client::Get(std::string_view name) {
  HttpRequest request;
  request.method = "GET";
  request.path = "/" + bucket_ + "/" + UriEncode(name, /*encode_slash=*/false);
  auto response = Send(std::move(request));
  if (!response.ok()) return response.status();
  if (response->status == 404) return Status::NotFound(std::string(name));
  if (response->status != 200) {
    return Status::Unavailable("S3 GET HTTP " + std::to_string(response->status));
  }
  return response->body;
}

Status S3Client::Delete(std::string_view name) {
  HttpRequest request;
  request.method = "DELETE";
  request.path = "/" + bucket_ + "/" + UriEncode(name, /*encode_slash=*/false);
  auto response = Send(std::move(request));
  if (!response.ok()) return response.status();
  // S3: deleting a missing key still answers 204.
  if (response->status != 204 && response->status != 200) {
    return Status::Unavailable("S3 DELETE HTTP " +
                               std::to_string(response->status));
  }
  return Status::Ok();
}

Result<std::vector<ObjectMeta>> S3Client::List(std::string_view prefix) {
  std::vector<ObjectMeta> out;
  std::string continuation;
  while (true) {
    HttpRequest request;
    request.method = "GET";
    request.path = "/" + bucket_;
    request.query["list-type"] = "2";
    if (!prefix.empty()) request.query["prefix"] = std::string(prefix);
    if (!continuation.empty()) request.query["continuation-token"] = continuation;
    auto response = Send(std::move(request));
    if (!response.ok()) return response.status();
    if (response->status != 200) {
      return Status::Unavailable("S3 LIST HTTP " +
                                 std::to_string(response->status));
    }
    const std::string doc(response->body.begin(), response->body.end());
    for (const auto& fragment : XmlExtractAll(doc, "Contents")) {
      ObjectMeta meta;
      auto key = XmlExtract(fragment, "Key");
      auto size = XmlExtract(fragment, "Size");
      if (!key) return Status::Corruption("ListBucketResult without Key");
      meta.name = *key;
      if (size) {
        std::from_chars(size->data(), size->data() + size->size(), meta.size);
      }
      out.push_back(std::move(meta));
    }
    const auto truncated = XmlExtract(doc, "IsTruncated");
    if (!truncated || *truncated != "true") break;
    auto token = XmlExtract(doc, "NextContinuationToken");
    if (!token) return Status::Corruption("truncated listing without token");
    continuation = *token;
  }
  return out;
}

}  // namespace ginja
