#include "cloud/s3/s3_client.h"

#include <charconv>

#include "cloud/s3/xml.h"

namespace ginja {

S3Client::S3Client(std::shared_ptr<HttpTransport> transport, std::string bucket,
                   AwsCredentials credentials,
                   std::function<std::string()> amz_date_fn)
    : transport_(std::move(transport)),
      bucket_(std::move(bucket)),
      signer_(std::move(credentials)),
      amz_date_fn_(std::move(amz_date_fn)) {
  if (!amz_date_fn_) {
    amz_date_fn_ = [] { return std::string("20170515T000000Z"); };
  }
}

Result<HttpResponse> S3Client::Send(HttpRequest request) {
  signer_.Sign(request, amz_date_fn_());
  return transport_->RoundTrip(request);
}

Status S3Client::Put(std::string_view name, ByteView data) {
  HttpRequest request;
  request.method = "PUT";
  request.path = "/" + bucket_ + "/" + UriEncode(name, /*encode_slash=*/false);
  request.body.assign(data.begin(), data.end());
  auto response = Send(std::move(request));
  if (!response.ok()) return response.status();
  if (response->status != 200) {
    return Status::Unavailable("S3 PUT HTTP " + std::to_string(response->status));
  }
  return Status::Ok();
}

Result<Bytes> S3Client::Get(std::string_view name) {
  HttpRequest request;
  request.method = "GET";
  request.path = "/" + bucket_ + "/" + UriEncode(name, /*encode_slash=*/false);
  auto response = Send(std::move(request));
  if (!response.ok()) return response.status();
  if (response->status == 404) return Status::NotFound(std::string(name));
  if (response->status != 200) {
    return Status::Unavailable("S3 GET HTTP " + std::to_string(response->status));
  }
  return response->body;
}

Status S3Client::Delete(std::string_view name) {
  HttpRequest request;
  request.method = "DELETE";
  request.path = "/" + bucket_ + "/" + UriEncode(name, /*encode_slash=*/false);
  auto response = Send(std::move(request));
  if (!response.ok()) return response.status();
  // S3: deleting a missing key still answers 204.
  if (response->status != 204 && response->status != 200) {
    return Status::Unavailable("S3 DELETE HTTP " +
                               std::to_string(response->status));
  }
  return Status::Ok();
}

// Drives the multipart wire protocol. The upload is initiated lazily on
// the first part (a stream that never appends costs no requests) and
// lands under the staging key; Finish completes it, copies it server-side
// to the final name, and deletes the staging key.
class S3StreamWriter : public ObjectWriter {
 public:
  S3StreamWriter(S3Client* client, std::string staging_key)
      : client_(client), staging_key_(std::move(staging_key)) {}

  ~S3StreamWriter() override {
    if (!finished_) Abort();
  }

  Status AppendPart(std::uint32_t index, ByteView part) override {
    if (finished_ || aborted_) {
      return Status::InvalidArgument("writer already closed");
    }
    if (index < next_) return Status::Ok();
    if (index != next_) {
      return Status::InvalidArgument("stream part out of order");
    }
    if (upload_id_.empty()) {
      GINJA_RETURN_IF_ERROR(Initiate());
    }
    HttpRequest request;
    request.method = "PUT";
    request.path = ObjectPath();
    request.query["partNumber"] = std::to_string(index + 1);  // 1-based in S3
    request.query["uploadId"] = upload_id_;
    request.body.assign(part.begin(), part.end());
    auto response = client_->Send(std::move(request));
    if (!response.ok()) return response.status();
    if (response->status != 200) {
      return Status::Unavailable("S3 UploadPart HTTP " +
                                 std::to_string(response->status));
    }
    ++next_;
    return Status::Ok();
  }

  // Resumable across retries: each wire step is recorded once it
  // succeeds, so a retried Finish resumes at the failed step instead of
  // re-driving a completed upload (whose uploadId no longer exists).
  Status Finish(std::string_view name) override {
    if (aborted_) return Status::InvalidArgument("writer aborted");
    if (finished_) return Status::Ok();  // idempotent: already published
    if (upload_id_.empty()) {
      GINJA_RETURN_IF_ERROR(client_->Put(name, {}));  // zero parts
      finished_ = true;
      return Status::Ok();
    }
    if (!completed_) {
      HttpRequest request;
      request.method = "POST";
      request.path = ObjectPath();
      request.query["uploadId"] = upload_id_;
      auto response = client_->Send(std::move(request));
      if (!response.ok()) return response.status();
      if (response->status != 200) {
        return Status::Unavailable("S3 CompleteMultipartUpload HTTP " +
                                   std::to_string(response->status));
      }
      completed_ = true;
    }
    {
      HttpRequest request;
      request.method = "PUT";
      request.path = "/" + client_->bucket_ + "/" +
                     UriEncode(name, /*encode_slash=*/false);
      request.headers["x-amz-copy-source"] = "/" + client_->bucket_ + "/" +
                                             UriEncode(staging_key_,
                                                       /*encode_slash=*/false);
      auto response = client_->Send(std::move(request));
      if (!response.ok()) return response.status();
      if (response->status != 200) {
        return Status::Unavailable("S3 CopyObject HTTP " +
                                   std::to_string(response->status));
      }
    }
    GINJA_RETURN_IF_ERROR(client_->Delete(staging_key_));
    finished_ = true;
    return Status::Ok();
  }

  void Abort() override {
    if (finished_ || aborted_) return;
    aborted_ = true;
    if (completed_) {
      // The parts were already assembled under the staging key; reap it.
      (void)client_->Delete(staging_key_);
      return;
    }
    if (upload_id_.empty()) return;
    HttpRequest request;
    request.method = "DELETE";
    request.path = ObjectPath();
    request.query["uploadId"] = upload_id_;
    (void)client_->Send(std::move(request));  // best effort
  }

 private:
  std::string ObjectPath() const {
    return "/" + client_->bucket_ + "/" +
           UriEncode(staging_key_, /*encode_slash=*/false);
  }

  Status Initiate() {
    HttpRequest request;
    request.method = "POST";
    request.path = ObjectPath();
    request.query["uploads"] = "";
    auto response = client_->Send(std::move(request));
    if (!response.ok()) return response.status();
    if (response->status != 200) {
      return Status::Unavailable("S3 CreateMultipartUpload HTTP " +
                                 std::to_string(response->status));
    }
    const std::string doc(response->body.begin(), response->body.end());
    auto id = XmlExtract(doc, "UploadId");
    if (!id || id->empty()) {
      return Status::Corruption("InitiateMultipartUploadResult without UploadId");
    }
    upload_id_ = *id;
    return Status::Ok();
  }

  S3Client* client_;
  std::string staging_key_;
  std::string upload_id_;
  std::uint32_t next_ = 0;
  bool completed_ = false;  // CompleteMultipartUpload acknowledged
  bool finished_ = false;
  bool aborted_ = false;
};

Result<ObjectWriterPtr> S3Client::BeginStreaming(std::string_view staging_hint) {
  return ObjectWriterPtr(new S3StreamWriter(this, std::string(staging_hint)));
}

Result<std::vector<ObjectMeta>> S3Client::List(std::string_view prefix) {
  return List(prefix, {});
}

Result<std::vector<ObjectMeta>> S3Client::List(std::string_view prefix,
                                               std::string_view start_after) {
  std::vector<ObjectMeta> out;
  std::string continuation;
  while (true) {
    HttpRequest request;
    request.method = "GET";
    request.path = "/" + bucket_;
    request.query["list-type"] = "2";
    if (!prefix.empty()) request.query["prefix"] = std::string(prefix);
    // ListObjectsV2 start-after: the server skips keys <= the cursor. Keys
    // are filtered again below in case a server ignores the parameter.
    if (!start_after.empty()) request.query["start-after"] = std::string(start_after);
    if (!continuation.empty()) request.query["continuation-token"] = continuation;
    auto response = Send(std::move(request));
    if (!response.ok()) return response.status();
    if (response->status != 200) {
      return Status::Unavailable("S3 LIST HTTP " +
                                 std::to_string(response->status));
    }
    const std::string doc(response->body.begin(), response->body.end());
    for (const auto& fragment : XmlExtractAll(doc, "Contents")) {
      ObjectMeta meta;
      auto key = XmlExtract(fragment, "Key");
      auto size = XmlExtract(fragment, "Size");
      if (!key) return Status::Corruption("ListBucketResult without Key");
      meta.name = *key;
      if (!start_after.empty() && meta.name <= start_after) continue;
      if (size) {
        std::from_chars(size->data(), size->data() + size->size(), meta.size);
      }
      out.push_back(std::move(meta));
    }
    const auto truncated = XmlExtract(doc, "IsTruncated");
    if (!truncated || *truncated != "true") break;
    auto token = XmlExtract(doc, "NextContinuationToken");
    if (!token) return Status::Corruption("truncated listing without token");
    continuation = *token;
  }
  return out;
}

}  // namespace ginja
