// Minimal HTTP request/response model and transport interface for the
// wire-level S3 pair. Real deployments would put a socket behind
// HttpTransport; this repo ships an in-process S3Server so the full
// request → SigV4 → REST → XML path runs offline.
#pragma once

#include <map>
#include <string>

#include "common/bytes.h"
#include "common/result.h"

namespace ginja {

struct HttpRequest {
  std::string method;                  // GET / PUT / DELETE
  std::string path;                    // "/bucket/key", URI-encoded
  std::map<std::string, std::string> query;    // decoded key -> value
  std::map<std::string, std::string> headers;  // lower-case names
  Bytes body;
};

struct HttpResponse {
  int status = 0;
  std::map<std::string, std::string> headers;
  Bytes body;
};

class HttpTransport {
 public:
  virtual ~HttpTransport() = default;
  // Delivers a request and returns the response. Transport-level failures
  // (host unreachable...) surface as an error Status; HTTP-level errors
  // come back as responses with 4xx/5xx status.
  virtual Result<HttpResponse> RoundTrip(const HttpRequest& request) = 0;
};

// RFC 3986 percent-encoding with the unreserved set AWS expects.
// `encode_slash` is false when encoding a path (S3 keeps '/' literal).
std::string UriEncode(std::string_view s, bool encode_slash = true);

}  // namespace ginja
