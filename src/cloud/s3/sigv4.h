// AWS Signature Version 4 request signing, from scratch.
//
// Implements the canonical-request / string-to-sign / signing-key chain of
// the SigV4 specification for the "s3" service with signed payloads
// (header x-amz-content-sha256). The in-process S3Server verifies
// signatures with the same code, so client and server cross-check each
// other — a request signed with the wrong secret is rejected with 403,
// exactly like real S3.
#pragma once

#include <string>

#include "cloud/s3/http.h"

namespace ginja {

struct AwsCredentials {
  std::string access_key_id = "GINJAACCESSKEY";
  std::string secret_access_key = "ginja-secret";
  std::string region = "us-east-1";
  std::string service = "s3";
};

class SigV4Signer {
 public:
  explicit SigV4Signer(AwsCredentials credentials)
      : credentials_(std::move(credentials)) {}

  // Adds host/x-amz-date/x-amz-content-sha256/Authorization headers.
  // `amz_date` format: YYYYMMDD'T'HHMMSS'Z'.
  void Sign(HttpRequest& request, const std::string& amz_date) const;

  // Recomputes the signature for a received request and compares it with
  // the Authorization header. Returns false on any mismatch or missing
  // header (the server-side check).
  bool Verify(const HttpRequest& request) const;

  // Exposed for tests: the exact canonical request and string-to-sign.
  std::string CanonicalRequest(const HttpRequest& request) const;
  std::string StringToSign(const HttpRequest& request,
                           const std::string& amz_date) const;

 private:
  std::string Signature(const HttpRequest& request,
                        const std::string& amz_date) const;

  AwsCredentials credentials_;
};

}  // namespace ginja
