// S3 REST client: an ObjectStore that talks the real wire protocol —
// SigV4-signed HTTP requests, ListObjectsV2 XML with continuation tokens —
// over any HttpTransport. Point it at the in-process S3Server for offline
// runs, or at a socket transport for a real endpoint.
#pragma once

#include <functional>
#include <memory>

#include "cloud/object_store.h"
#include "cloud/s3/http.h"
#include "cloud/s3/sigv4.h"

namespace ginja {

class S3Client : public ObjectStore {
 public:
  // `amz_date_fn` supplies the x-amz-date header; defaults to a fixed May
  // 2017 date (deterministic tests; the paper's price-book month).
  S3Client(std::shared_ptr<HttpTransport> transport, std::string bucket,
           AwsCredentials credentials = {},
           std::function<std::string()> amz_date_fn = nullptr);

  Status Put(std::string_view name, ByteView data) override;
  Result<Bytes> Get(std::string_view name) override;
  Result<std::vector<ObjectMeta>> List(std::string_view prefix) override;
  Result<std::vector<ObjectMeta>> List(std::string_view prefix,
                                       std::string_view start_after) override;
  Status Delete(std::string_view name) override;

  // Real S3 multipart upload: initiate (POST ?uploads) under the staging
  // key, one PUT ?partNumber=N per part, complete (POST ?uploadId) at
  // Finish, then a server-side copy (x-amz-copy-source) to the final name
  // — multipart can't learn its key after initiation, and Ginja only
  // knows the object name at stream close.
  Result<ObjectWriterPtr> BeginStreaming(std::string_view staging_hint) override;

 private:
  friend class S3StreamWriter;

  Result<HttpResponse> Send(HttpRequest request);

  std::shared_ptr<HttpTransport> transport_;
  std::string bucket_;
  SigV4Signer signer_;
  std::function<std::string()> amz_date_fn_;
};

}  // namespace ginja
