// In-process S3 REST server: implements the request side of the wire
// protocol (SigV4 verification, PUT/GET/DELETE object, ListObjectsV2 with
// pagination, multipart upload + server-side copy) over any ObjectStore
// backend. Paired with S3Client it gives an offline, end-to-end-authentic
// S3 path; misuse (bad signature, wrong bucket, unknown key) yields the
// same status codes and XML error bodies real S3 sends.
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "cloud/object_store.h"
#include "cloud/s3/http.h"
#include "cloud/s3/sigv4.h"
#include "common/stats.h"

namespace ginja {

class S3Server : public HttpTransport {
 public:
  S3Server(ObjectStorePtr backend, std::string bucket,
           AwsCredentials credentials = {}, std::size_t max_keys = 1000);

  Result<HttpResponse> RoundTrip(const HttpRequest& request) override;

  std::uint64_t rejected_requests() const { return rejected_.Get(); }

 private:
  // One in-progress multipart upload: parts staged by number until
  // complete (POST ?uploadId) concatenates them into the backend.
  struct MultipartUpload {
    std::string key;
    std::map<std::uint32_t, Bytes> parts;
  };

  HttpResponse HandleList(const HttpRequest& request);
  HttpResponse HandleObject(const HttpRequest& request, const std::string& key);
  HttpResponse HandleMultipart(const HttpRequest& request,
                               const std::string& key);
  HttpResponse HandleCopy(const HttpRequest& request, const std::string& key);
  static HttpResponse ErrorResponse(int status, const std::string& code,
                                    const std::string& message);

  ObjectStorePtr backend_;
  std::string bucket_;
  SigV4Signer signer_;
  std::size_t max_keys_;
  Counter rejected_;

  std::mutex multipart_mu_;
  std::map<std::string, MultipartUpload> uploads_;  // by uploadId
  std::uint64_t next_upload_id_ = 1;
};

}  // namespace ginja
