#include "cloud/s3/sigv4.h"

#include <algorithm>
#include <sstream>

#include "common/codec/sha256.h"

namespace ginja {

std::string UriEncode(std::string_view s, bool encode_slash) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const bool unreserved = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                            (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                            c == '.' || c == '~';
    if (unreserved || (c == '/' && !encode_slash)) {
      out.push_back(c);
    } else {
      out.push_back('%');
      out.push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xF]);
      out.push_back(kHex[static_cast<unsigned char>(c) & 0xF]);
    }
  }
  return out;
}

namespace {

std::string HexDigest(const Sha256::Digest& d) {
  return ToHex(ByteView(d.data(), d.size()));
}

// SigV4 signs a sorted, lower-cased subset of headers; we sign everything
// the client sets except the authorization header itself.
std::vector<std::pair<std::string, std::string>> SignedHeaders(
    const HttpRequest& request) {
  std::vector<std::pair<std::string, std::string>> headers;
  for (const auto& [name, value] : request.headers) {
    if (name == "authorization") continue;
    headers.emplace_back(name, value);
  }
  std::sort(headers.begin(), headers.end());
  return headers;
}

std::string SignedHeaderNames(const HttpRequest& request) {
  std::string out;
  for (const auto& [name, value] : SignedHeaders(request)) {
    if (!out.empty()) out += ';';
    out += name;
  }
  return out;
}

std::string DateStamp(const std::string& amz_date) {
  return amz_date.substr(0, 8);  // YYYYMMDD
}

}  // namespace

std::string SigV4Signer::CanonicalRequest(const HttpRequest& request) const {
  std::ostringstream canonical;
  canonical << request.method << '\n';
  canonical << UriEncode(request.path, /*encode_slash=*/false) << '\n';

  // Canonical query string: keys sorted, both sides URI-encoded.
  bool first = true;
  for (const auto& [key, value] : request.query) {  // std::map: sorted
    if (!first) canonical << '&';
    first = false;
    canonical << UriEncode(key) << '=' << UriEncode(value);
  }
  canonical << '\n';

  for (const auto& [name, value] : SignedHeaders(request)) {
    canonical << name << ':' << value << '\n';
  }
  canonical << '\n' << SignedHeaderNames(request) << '\n';

  auto it = request.headers.find("x-amz-content-sha256");
  canonical << (it != request.headers.end()
                    ? it->second
                    : HexDigest(Sha256::Hash(View(request.body))));
  return canonical.str();
}

std::string SigV4Signer::StringToSign(const HttpRequest& request,
                                      const std::string& amz_date) const {
  const std::string scope = DateStamp(amz_date) + "/" + credentials_.region +
                            "/" + credentials_.service + "/aws4_request";
  std::ostringstream sts;
  sts << "AWS4-HMAC-SHA256\n"
      << amz_date << '\n'
      << scope << '\n'
      << HexDigest(Sha256::Hash(View(ToBytes(CanonicalRequest(request)))));
  return sts.str();
}

std::string SigV4Signer::Signature(const HttpRequest& request,
                                   const std::string& amz_date) const {
  // Signing key chain: kSecret -> kDate -> kRegion -> kService -> kSigning.
  const Bytes k_secret = ToBytes("AWS4" + credentials_.secret_access_key);
  const auto k_date = HmacSha256(View(k_secret), View(ToBytes(DateStamp(amz_date))));
  const auto k_region = HmacSha256(ByteView(k_date.data(), k_date.size()),
                                   View(ToBytes(credentials_.region)));
  const auto k_service = HmacSha256(ByteView(k_region.data(), k_region.size()),
                                    View(ToBytes(credentials_.service)));
  const auto k_signing = HmacSha256(ByteView(k_service.data(), k_service.size()),
                                    View(ToBytes("aws4_request")));
  const auto signature =
      HmacSha256(ByteView(k_signing.data(), k_signing.size()),
                 View(ToBytes(StringToSign(request, amz_date))));
  return ToHex(ByteView(signature.data(), signature.size()));
}

void SigV4Signer::Sign(HttpRequest& request, const std::string& amz_date) const {
  if (request.headers.count("host") == 0) {
    request.headers["host"] = "s3." + credentials_.region + ".amazonaws.com";
  }
  request.headers["x-amz-date"] = amz_date;
  request.headers["x-amz-content-sha256"] =
      ToHex(ByteView(Sha256::Hash(View(request.body)).data(), 32));

  const std::string scope = DateStamp(amz_date) + "/" + credentials_.region +
                            "/" + credentials_.service + "/aws4_request";
  request.headers["authorization"] =
      "AWS4-HMAC-SHA256 Credential=" + credentials_.access_key_id + "/" +
      scope + ", SignedHeaders=" + SignedHeaderNames(request) +
      ", Signature=" + Signature(request, amz_date);
}

bool SigV4Signer::Verify(const HttpRequest& request) const {
  const auto auth = request.headers.find("authorization");
  const auto date = request.headers.find("x-amz-date");
  const auto content = request.headers.find("x-amz-content-sha256");
  if (auth == request.headers.end() || date == request.headers.end() ||
      content == request.headers.end()) {
    return false;
  }
  // The declared payload hash must match the actual body...
  if (content->second !=
      ToHex(ByteView(Sha256::Hash(View(request.body)).data(), 32))) {
    return false;
  }
  // ...and the recomputed signature must match the presented one.
  const auto sig_pos = auth->second.find("Signature=");
  if (sig_pos == std::string::npos) return false;
  const std::string presented = auth->second.substr(sig_pos + 10);
  const std::string expected = Signature(request, date->second);
  if (presented.size() != expected.size()) return false;
  unsigned char diff = 0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    diff |= static_cast<unsigned char>(presented[i] ^ expected[i]);
  }
  return diff == 0;
}

}  // namespace ginja
