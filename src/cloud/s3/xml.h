// Tiny XML helpers — just enough for S3's ListObjectsV2 documents and
// error bodies. Not a general XML parser: no attributes-on-extract, no
// namespaces — deliberately matching the narrow shapes S3 emits.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ginja {

// Escapes &, <, >, " for element content.
std::string XmlEscape(std::string_view s);
std::string XmlUnescape(std::string_view s);

// Content of the first <tag>...</tag> in `doc` (unescaped), if present.
std::optional<std::string> XmlExtract(std::string_view doc, std::string_view tag);

// Contents of every <tag>...</tag>, in document order (raw, not unescaped —
// callers extract nested tags from the fragments).
std::vector<std::string> XmlExtractAll(std::string_view doc, std::string_view tag);

}  // namespace ginja
