// HTTP/1.1 over real TCP sockets (localhost or otherwise) for the S3 pair.
//
// `HttpSocketServer` accepts connections and forwards each request to any
// HttpTransport handler — normally an S3Server — so the full stack can run
// over an actual network socket:
//
//   S3Client → HttpSocketClient ──TCP──▶ HttpSocketServer → S3Server → store
//
// The implementation speaks a deliberately small HTTP/1.1 subset:
// Content-Length framing (no chunked encoding), one request per
// connection (Connection: close), percent-encoded query strings.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "cloud/s3/http.h"

namespace ginja {

// -- wire (de)serialization, exposed for tests --------------------------------

std::string SerializeHttpRequest(const HttpRequest& request);
std::string SerializeHttpResponse(const HttpResponse& response);
// Parses a complete request/response octet stream (headers + full body).
Result<HttpRequest> ParseHttpRequest(std::string_view wire);
Result<HttpResponse> ParseHttpResponse(std::string_view wire);

// -- server ---------------------------------------------------------------------

class HttpSocketServer {
 public:
  // Binds 127.0.0.1:`port` (0 = ephemeral) and serves on a background
  // thread until destruction. `handler` processes each parsed request.
  HttpSocketServer(std::shared_ptr<HttpTransport> handler, int port = 0);
  ~HttpSocketServer();

  // OK when listening; the bound port is then available via port().
  Status status() const { return status_; }
  int port() const { return port_; }

  std::uint64_t requests_served() const { return served_.load(); }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  std::shared_ptr<HttpTransport> handler_;
  Status status_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> served_{0};
};

// -- client ----------------------------------------------------------------------

class HttpSocketClient : public HttpTransport {
 public:
  HttpSocketClient(std::string host, int port);

  Result<HttpResponse> RoundTrip(const HttpRequest& request) override;

 private:
  std::string host_;
  int port_;
};

}  // namespace ginja
