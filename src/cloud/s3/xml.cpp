#include "cloud/s3/xml.h"

namespace ginja {

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string XmlUnescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '&') {
      out.push_back(s[i]);
      continue;
    }
    const std::string_view rest = s.substr(i);
    if (rest.starts_with("&amp;")) {
      out.push_back('&');
      i += 4;
    } else if (rest.starts_with("&lt;")) {
      out.push_back('<');
      i += 3;
    } else if (rest.starts_with("&gt;")) {
      out.push_back('>');
      i += 3;
    } else if (rest.starts_with("&quot;")) {
      out.push_back('"');
      i += 5;
    } else {
      out.push_back('&');
    }
  }
  return out;
}

std::optional<std::string> XmlExtract(std::string_view doc,
                                      std::string_view tag) {
  const std::string open = "<" + std::string(tag) + ">";
  const std::string close = "</" + std::string(tag) + ">";
  const auto start = doc.find(open);
  if (start == std::string_view::npos) return std::nullopt;
  const auto content_start = start + open.size();
  const auto end = doc.find(close, content_start);
  if (end == std::string_view::npos) return std::nullopt;
  return XmlUnescape(doc.substr(content_start, end - content_start));
}

std::vector<std::string> XmlExtractAll(std::string_view doc,
                                       std::string_view tag) {
  const std::string open = "<" + std::string(tag) + ">";
  const std::string close = "</" + std::string(tag) + ">";
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (true) {
    const auto start = doc.find(open, pos);
    if (start == std::string_view::npos) break;
    const auto content_start = start + open.size();
    const auto end = doc.find(close, content_start);
    if (end == std::string_view::npos) break;
    out.emplace_back(doc.substr(content_start, end - content_start));
    pos = end + close.size();
  }
  return out;
}

}  // namespace ginja
