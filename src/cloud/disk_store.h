// Object store backed by a local directory — persists objects across runs
// so the examples can demonstrate real crash-and-recover flows. Object
// names map to file paths ('/' in names becomes a subdirectory).
#pragma once

#include <filesystem>
#include <mutex>

#include "cloud/object_store.h"

namespace ginja {

class DiskStore : public ObjectStore {
 public:
  // Creates `root` if needed.
  explicit DiskStore(std::filesystem::path root);

  Status Put(std::string_view name, ByteView data) override;
  Result<Bytes> Get(std::string_view name) override;
  Result<std::vector<ObjectMeta>> List(std::string_view prefix) override;
  Result<std::vector<ObjectMeta>> List(std::string_view prefix,
                                       std::string_view start_after) override;
  Status Delete(std::string_view name) override;

  // Streamed PUT: parts append to "<staging_hint>.tmp" (List skips *.tmp,
  // so the stream stays invisible), Finish renames it into place.
  Result<ObjectWriterPtr> BeginStreaming(std::string_view staging_hint) override;

  const std::filesystem::path& root() const { return root_; }

 private:
  friend class DiskStoreWriter;

  std::filesystem::path PathFor(std::string_view name) const;

  std::filesystem::path root_;
  mutable std::mutex mu_;
};

}  // namespace ginja
