// TransferManager — bounded-concurrency async transfers to an ObjectStore.
//
// Every serial consumer of the store pays one full round-trip per call
// against services whose latency is dominated by a per-request base —
// exactly the request-level parallelism S3-style stores are built to
// absorb. TransferManager owns a small worker pool that keeps up to
// `concurrency` operations in flight and applies one shared retry policy
// (jittered exponential backoff on transient errors) so retry behaviour
// lives in a single place instead of per-call-site loops.
//
// Consumers in this repo:
//   * Ginja::Recover keeps a window of K GETs in flight (prefetch);
//   * CheckpointPipeline PUTs the parts of a dump/checkpoint concurrently;
//   * garbage collection fans DELETEs out through DeleteAll();
//   * CommitPipeline streams WAL objects part-by-part via BeginStream().
//
// Every *Async call returns a std::future fulfilled by a worker thread.
// Dropping a future is safe: the operation still runs to completion (or is
// failed by Cancel()). Cancel() is terminal — queued operations fail with
// ABORTED, backoff sleeps are interrupted, and later submissions fail
// immediately; it is the crash-simulation (Kill) path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cloud/object_store.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/stats.h"
#include "obs/metrics.h"

namespace ginja {

struct TransferOptions {
  // Worker threads == maximum operations in flight.
  int concurrency = 8;
  // Total attempts per operation (first try included).
  int max_attempts = 5;
  // Backoff before retry r is initial * multiplier^(r-1), capped at max,
  // scaled by a uniform jitter factor in [1 - jitter, 1 + jitter].
  std::uint64_t backoff_initial_us = 100'000;
  double backoff_multiplier = 2.0;
  std::uint64_t backoff_max_us = 5'000'000;
  double backoff_jitter = 0.2;
  std::uint64_t seed = 0x6a09'e667'f3bc'c908ull;
};

// The shared retry schedule: jittered exponential backoff on transient
// errors. Extracted from TransferManager so every retry loop in the repo —
// the manager's workers and the commit pipeline's uploaders — draws delays
// from one policy instead of re-implementing its own. Thread-safe: any
// number of threads may call NextBackoffUs concurrently.
class RetryPolicy {
 public:
  // `retries` (optional) is bumped once per NextBackoffUs call, i.e. once
  // per failed attempt that will be retried.
  explicit RetryPolicy(const TransferOptions& options,
                       Counter* retries = nullptr)
      : options_(options), rng_(options.seed), retries_(retries) {}

  int max_attempts() const { return options_.max_attempts < 1 ? 1 : options_.max_attempts; }

  // Transient errors worth retrying; NOT_FOUND and CORRUPTION are answers,
  // not failures, and retrying them would only hide real damage.
  static bool Retryable(ErrorCode code) {
    return code == ErrorCode::kUnavailable || code == ErrorCode::kIoError;
  }

  // Backoff before the retry that follows failed attempt `attempt`
  // (1-based): initial * multiplier^(attempt-1), capped at backoff_max_us,
  // scaled by a uniform jitter factor in [1 - jitter, 1 + jitter].
  std::uint64_t NextBackoffUs(int attempt);

 private:
  TransferOptions options_;
  std::mutex mu_;  // guards rng_
  SplitMix64 rng_;
  Counter* retries_;
};

// Per-tenant scope for operations submitted to a *shared* TransferManager.
// A fleet runs one manager (one worker pool, one global in-flight window)
// for all tenants; each tenant tags its operations with an account so that
//   * usage is attributed (ops/bytes per tenant),
//   * one tenant can be cancelled (its queued ops fail with ABORTED, its
//     backoff sleeps are interrupted) without touching the others — the
//     per-tenant analogue of TransferManager::Cancel(), and
//   * a tenant's shutdown can WaitIdle() until none of its operations are
//     queued or executing, without draining the whole pool.
class TransferAccount {
 public:
  explicit TransferAccount(std::string id) : id_(std::move(id)) {}

  const std::string& id() const { return id_; }

  // Terminal for this account only: queued operations fail with ABORTED
  // when a worker picks them up, in-flight retries stop at the next
  // backoff check. Other accounts are unaffected.
  void Cancel() {
    cancelled_.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lock(mu_);
    cv_.notify_all();
  }
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  // Blocks until no operation of this account is queued or executing.
  void WaitIdle() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return pending_ == 0; });
  }

  std::uint64_t ops_completed() const {
    return completed_.load(std::memory_order_relaxed);
  }
  std::uint64_t ops_failed() const {
    return failed_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_uploaded() const {
    return bytes_uploaded_.load(std::memory_order_relaxed);
  }

 private:
  friend class TransferManager;

  void OnEnqueue() {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  void OnDone(const Status& status, std::size_t uploaded) {
    if (status.ok()) {
      completed_.fetch_add(1, std::memory_order_relaxed);
      bytes_uploaded_.fetch_add(uploaded, std::memory_order_relaxed);
    } else {
      failed_.fetch_add(1, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (--pending_ == 0) cv_.notify_all();
  }

  std::string id_;
  std::atomic<bool> cancelled_{false};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> bytes_uploaded_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  int pending_ = 0;  // queued or executing operations (guarded by mu_)
};

using TransferAccountPtr = std::shared_ptr<TransferAccount>;

// Routing for one submission on a shared manager: which store the
// operation runs against (null = the manager's own store; a fleet tenant
// passes its TenantNamespace-wrapped stack) and which account it bills
// to (null = unaccounted). Default-constructed == the classic
// single-tenant behaviour.
struct TransferRoute {
  ObjectStorePtr store;
  TransferAccountPtr account;
};

struct TransferStats {
  Counter gets;              // successful operations
  Counter puts;
  Counter deletes;
  Counter retries;           // failed attempts that were retried
  Counter failed_ops;        // operations that returned an error
  Counter bytes_downloaded;
  Counter bytes_uploaded;
  // Streamed uploads (StreamSession).
  Counter streams_opened;
  Counter streams_finished;  // streams whose Finish published the object
  Counter stream_parts;      // parts durably staged
  // Model-time latency of successful operations, retries included.
  Histogram get_latency_us;
  Histogram put_latency_us;
  Histogram delete_latency_us;
  // Per-part latency (submit -> part durable) and the stream's first-byte
  // latency (stream open -> part 0 durable).
  Histogram part_put_latency_us;
  Histogram first_byte_latency_us;
  // Operations currently executing, and the high-water mark.
  std::atomic<int> inflight{0};
  std::atomic<int> peak_inflight{0};
};

class TransferManager;

// One streamed object upload driven through a TransferManager's workers.
//
// AppendPart is thread-safe and non-blocking: parts are staged under the
// session lock and fed to the backend's ObjectWriter strictly one at a
// time in dense index order (ObjectWriter is not thread-safe, and parts
// must land in order), reordering out-of-order submissions. Each writer
// call runs as one pool operation under the shared retry policy, so a
// transient store error retries with the same jittered backoff as every
// other transfer. Finish(total_parts, name) publishes the object once all
// parts < total_parts are durable; the supplied callback (and returned
// future) fire with the publish status.
//
// A permanent part failure kills the session: every staged and subsequent
// callback fires with that failure and Finish resolves with it. Abort()
// does the same with ABORTED; the underlying writer is reaped (backend
// abort) when the session is destroyed. Obtain sessions only from
// TransferManager::BeginStream, and drop them before the manager.
class StreamSession : public std::enable_shared_from_this<StreamSession> {
 public:
  // Stages part `index` (dense from 0). `done` fires exactly once, from a
  // worker thread, with the part's durability status. An index at or
  // below the durable frontier completes immediately with Ok.
  void AppendPart(std::uint32_t index, Bytes part,
                  std::function<void(Status)> done = nullptr);

  // Declares the stream complete at `total_parts` parts and publishes it
  // under `final_name` once they are all durable. Call at most once.
  std::future<Status> Finish(std::uint32_t total_parts, std::string final_name,
                             std::function<void(Status)> done = nullptr);

  // Fails everything still pending with ABORTED. Idempotent.
  void Abort();

  // Parts staged or in flight, i.e. accepted but not yet durable — the
  // producer-side backpressure signal.
  std::size_t BacklogParts() const;

 private:
  friend class TransferManager;

  StreamSession(TransferManager* manager, TransferRoute route,
                std::string staging_hint);

  // Submits the next runnable writer operation, if any. At most one is in
  // flight per session; completion re-enters Pump from the worker.
  void Pump();
  Status EnsureWriter();  // worker-side, lazy BeginStreaming
  void OnPartDone(std::uint32_t index, std::uint64_t started_us,
                  std::size_t bytes, const Status& status,
                  const std::function<void(Status)>& done);
  void OnFinishDone(const Status& status);
  // Marks the session dead and returns every callback owed the failure;
  // the caller invokes them outside mu_.
  std::vector<std::function<void(Status)>> FailLocked(const Status& status);

  TransferManager* manager_;
  TransferRoute route_;
  std::string staging_hint_;
  std::uint64_t opened_us_;
  ObjectWriterPtr writer_;  // touched only by the single in-flight op

  mutable std::mutex mu_;
  std::map<std::uint32_t, std::pair<Bytes, std::function<void(Status)>>>
      pending_;
  std::uint32_t next_index_ = 0;  // durable frontier: parts < this landed
  bool op_inflight_ = false;
  bool failed_ = false;
  Status failure_ = Status::Ok();
  bool finish_requested_ = false;
  bool finish_resolved_ = false;
  std::uint32_t total_parts_ = 0;
  std::string final_name_;
  std::function<void(Status)> finish_done_;
  std::promise<Status> finish_promise_;
};

using StreamSessionPtr = std::shared_ptr<StreamSession>;

class TransferManager {
 public:
  // `clock` supplies backoff sleeps and latency timestamps (model time);
  // when null a RealClock is used.
  TransferManager(ObjectStorePtr store, TransferOptions options,
                  std::shared_ptr<Clock> clock = nullptr);
  ~TransferManager();

  TransferManager(const TransferManager&) = delete;
  TransferManager& operator=(const TransferManager&) = delete;

  std::future<Result<Bytes>> GetAsync(std::string name) {
    return GetAsync({}, std::move(name));
  }
  std::future<Status> PutAsync(std::string name, Bytes data) {
    return PutAsync({}, std::move(name), std::move(data));
  }
  std::future<Status> DeleteAsync(std::string name) {
    return DeleteAsync({}, std::move(name));
  }

  // Routed variants: the operation runs against `route.store` (the
  // manager's own store when null) and is attributed to `route.account`.
  // This is how N namespaced tenants share one pool and one in-flight
  // window.
  std::future<Result<Bytes>> GetAsync(TransferRoute route, std::string name);
  std::future<Status> PutAsync(TransferRoute route, std::string name,
                               Bytes data);
  std::future<Status> DeleteAsync(TransferRoute route, std::string name);

  // Callback variants: `done` fires exactly once from a worker thread
  // with the final status (after retries), sparing callers a future they
  // would only poll. The callback must not block for long — it runs on
  // the pool and stalls a worker while it does.
  void PutAsyncCb(std::string name, Bytes data,
                  std::function<void(Status)> done) {
    PutAsyncCb({}, std::move(name), std::move(data), std::move(done));
  }
  void DeleteAsyncCb(std::string name, std::function<void(Status)> done) {
    DeleteAsyncCb({}, std::move(name), std::move(done));
  }
  void PutAsyncCb(TransferRoute route, std::string name, Bytes data,
                  std::function<void(Status)> done);
  void DeleteAsyncCb(TransferRoute route, std::string name,
                     std::function<void(Status)> done);

  // Runs an arbitrary store-touching closure on the pool under the shared
  // retry policy (`fn` is re-invoked on retryable errors, so it must be
  // retry-safe). Building block for StreamSession's writer operations.
  std::future<Status> SubmitFn(std::function<Status()> fn,
                               std::function<void(Status)> done = nullptr) {
    return SubmitFn({}, std::move(fn), std::move(done));
  }
  std::future<Status> SubmitFn(TransferRoute route, std::function<Status()> fn,
                               std::function<void(Status)> done = nullptr);

  // Opens a streamed object upload (see StreamSession above).
  // `staging_hint` names the backend's in-progress upload and must be
  // unique among concurrently open streams (a TenantNamespace store makes
  // it so across tenants by scoping the hint).
  StreamSessionPtr BeginStream(std::string staging_hint) {
    return BeginStream({}, std::move(staging_hint));
  }
  StreamSessionPtr BeginStream(TransferRoute route, std::string staging_hint);

  // Blocking conveniences.
  Result<Bytes> Get(std::string name) { return GetAsync(std::move(name)).get(); }
  Status Put(std::string name, Bytes data) {
    return PutAsync(std::move(name), std::move(data)).get();
  }
  // Fans the deletes out across the pool and waits for all of them.
  // Returns one status per name, index-aligned.
  std::vector<Status> DeleteAll(const std::vector<std::string>& names) {
    return DeleteAll({}, names);
  }
  std::vector<Status> DeleteAll(TransferRoute route,
                                const std::vector<std::string>& names);

  // Terminal: fails queued operations with ABORTED, interrupts backoff
  // sleeps, and makes subsequent submissions fail immediately.
  void Cancel();
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  const TransferStats& stats() const { return stats_; }
  const TransferOptions& options() const { return options_; }

  // Registers the manager's stats as ginja_transfer_*{component=...}.
  // The registration is undone automatically by the destructor (or by an
  // explicit second call with a different registry, which re-homes it).
  void RegisterMetrics(MetricsRegistry* registry, std::string component);

 private:
  friend class StreamSession;

  struct Op {
    enum class Kind { kGet, kPut, kDelete, kFn } kind = Kind::kGet;
    std::string name;
    Bytes data;                               // PUT payload, owned by the op
    std::function<Status()> fn;               // body for kFn
    std::promise<Result<Bytes>> get_result;   // fulfilled for kGet
    std::promise<Status> status_result;       // fulfilled otherwise
    // Optional completion hook, any kind; invoked after the promise.
    std::function<void(Status)> done;
    // Per-op routing: store override + billing account (see TransferRoute).
    ObjectStorePtr store;
    TransferAccountPtr account;
  };

  void WorkerLoop();
  void Execute(Op& op);
  // Fails the op and settles its account (exactly one of Fail/Execute
  // completes each enqueued op).
  static void Fail(Op& op, const Status& status);
  // Sleeps `micros` of model time in small slices; false when the manager
  // (or the op's account) is cancelled.
  bool BackoffSleep(std::uint64_t micros, const TransferAccount* account);
  bool Enqueue(Op op);  // false (op already failed) when cancelled

  ObjectStorePtr store_;
  TransferOptions options_;
  std::shared_ptr<Clock> clock_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Op> queue_;
  bool stop_ = false;
  std::atomic<bool> cancelled_{false};

  std::vector<std::thread> workers_;
  TransferStats stats_;
  RetryPolicy retry_;  // declared after stats_: it feeds stats_.retries
  MetricsRegistry* registry_ = nullptr;  // set by RegisterMetrics
};

}  // namespace ginja
