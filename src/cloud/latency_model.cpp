#include "cloud/latency_model.h"

#include <algorithm>

namespace ginja {

LatencyParams LatencyParams::WanS3() {
  LatencyParams p;
  p.put_base_us = 410'000;    // ~410 ms request overhead + TLS + first byte
  p.put_us_per_kb = 720;      // ~1.4 MB/s sustained upload
  p.get_base_us = 150'000;    // downloads were ~4x faster in 2017 practice
  p.get_us_per_kb = 180;
  p.list_base_us = 120'000;
  p.list_us_per_object = 50;
  p.delete_base_us = 80'000;
  p.jitter_stddev = 0.10;
  return p;
}

LatencyParams LatencyParams::Ec2Colocated() {
  LatencyParams p;
  p.put_base_us = 8'000;
  p.put_us_per_kb = 12;       // ~85 MB/s
  p.get_base_us = 6'000;
  p.get_us_per_kb = 50;       // ~20 MB/s effective, per the paper's Fig. 7 gap
  p.list_base_us = 10'000;
  p.list_us_per_object = 10;
  p.delete_base_us = 5'000;
  p.jitter_stddev = 0.05;
  return p;
}

LatencyParams LatencyParams::Instant() { return LatencyParams{}; }

LatencyModel::LatencyModel(LatencyParams params, std::shared_ptr<Clock> clock,
                           std::uint64_t seed)
    : params_(params), clock_(std::move(clock)), rng_(seed) {}

double LatencyModel::Jitter() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::clamp(rng_.NextGaussian(1.0, params_.jitter_stddev), 0.5, 2.0);
}

std::uint64_t LatencyModel::PutLatencyMicros(std::uint64_t bytes) {
  const double kb = static_cast<double>(bytes) / 1024.0;
  return static_cast<std::uint64_t>(
      (params_.put_base_us + kb * params_.put_us_per_kb) * Jitter());
}

std::uint64_t LatencyModel::PutPartLatencyMicros(std::uint64_t bytes) {
  const double kb = static_cast<double>(bytes) / 1024.0;
  return static_cast<std::uint64_t>(kb * params_.put_us_per_kb * Jitter());
}

std::uint64_t LatencyModel::PutFinishLatencyMicros() {
  return static_cast<std::uint64_t>(params_.put_base_us * Jitter());
}

std::uint64_t LatencyModel::GetLatencyMicros(std::uint64_t bytes) {
  const double kb = static_cast<double>(bytes) / 1024.0;
  return static_cast<std::uint64_t>(
      (params_.get_base_us + kb * params_.get_us_per_kb) * Jitter());
}

std::uint64_t LatencyModel::ListLatencyMicros(std::uint64_t num_objects) {
  return static_cast<std::uint64_t>(
      (params_.list_base_us +
       static_cast<double>(num_objects) * params_.list_us_per_object) *
      Jitter());
}

std::uint64_t LatencyModel::DeleteLatencyMicros() {
  return static_cast<std::uint64_t>(params_.delete_base_us * Jitter());
}

}  // namespace ginja
