#include "cloud/disk_store.h"

#include <algorithm>
#include <fstream>

namespace ginja {

namespace fs = std::filesystem;

DiskStore::DiskStore(fs::path root) : root_(std::move(root)) {
  fs::create_directories(root_);
}

fs::path DiskStore::PathFor(std::string_view name) const {
  return root_ / fs::path(name);
}

Status DiskStore::Put(std::string_view name, ByteView data) {
  std::lock_guard<std::mutex> lock(mu_);
  const fs::path path = PathFor(name);
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  // Write to a temp file and rename, so a crashed Put never leaves a
  // half-written object visible (object stores are atomic per PUT).
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open " + tmp.string());
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    if (!out) return Status::IoError("short write to " + tmp.string());
  }
  fs::rename(tmp, path, ec);
  if (ec) return Status::IoError("rename failed: " + ec.message());
  return Status::Ok();
}

Result<Bytes> DiskStore::Get(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const fs::path path = PathFor(name);
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::NotFound(std::string(name));
  const auto size = in.tellg();
  in.seekg(0);
  Bytes data(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()), size);
  if (!in) return Status::IoError("short read from " + path.string());
  return data;
}

Result<std::vector<ObjectMeta>> DiskStore::List(std::string_view prefix) {
  return List(prefix, {});
}

Result<std::vector<ObjectMeta>> DiskStore::List(std::string_view prefix,
                                                std::string_view start_after) {
  // The directory walk is unavoidable (no ordered index on disk), but the
  // cursor still prunes the sort + ObjectMeta construction to new names.
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ObjectMeta> out;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(root_, ec);
       it != fs::recursive_directory_iterator(); ++it) {
    if (!it->is_regular_file()) continue;
    std::string name = fs::relative(it->path(), root_).generic_string();
    if (name.size() >= 4 && name.ends_with(".tmp")) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (!start_after.empty() && name <= start_after) continue;
    out.push_back({std::move(name), it->file_size()});
  }
  if (ec) return Status::IoError(ec.message());
  std::sort(out.begin(), out.end(),
            [](const ObjectMeta& a, const ObjectMeta& b) { return a.name < b.name; });
  return out;
}

Status DiskStore::Delete(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  fs::remove(PathFor(name), ec);
  return Status::Ok();  // S3 semantics: deleting a missing object succeeds
}

// Streams into "<staging_hint>.tmp" — invisible to List/Get (the .tmp
// filter) — and renames into place at Finish, the same atomic-publish
// pattern as the buffered Put.
class DiskStoreWriter : public ObjectWriter {
 public:
  DiskStoreWriter(DiskStore* store, fs::path tmp)
      : store_(store), tmp_(std::move(tmp)) {}

  ~DiskStoreWriter() override {
    if (!finished_ && !aborted_) Abort();
  }

  Status AppendPart(std::uint32_t index, ByteView part) override {
    if (finished_ || aborted_) {
      return Status::InvalidArgument("writer already closed");
    }
    if (index < next_) return Status::Ok();
    if (index != next_) {
      return Status::InvalidArgument("stream part out of order");
    }
    std::lock_guard<std::mutex> lock(store_->mu_);
    if (next_ == 0) {
      std::error_code ec;
      fs::create_directories(tmp_.parent_path(), ec);
    }
    std::ofstream out(tmp_, std::ios::binary | std::ios::app);
    if (!out) return Status::IoError("cannot open " + tmp_.string());
    out.write(reinterpret_cast<const char*>(part.data()),
              static_cast<std::streamsize>(part.size()));
    if (!out) return Status::IoError("short write to " + tmp_.string());
    ++next_;
    return Status::Ok();
  }

  Status Finish(std::string_view name) override {
    if (aborted_) return Status::InvalidArgument("writer aborted");
    if (finished_) return Status::Ok();  // idempotent: already published
    std::lock_guard<std::mutex> lock(store_->mu_);
    const fs::path path = store_->PathFor(name);
    std::error_code ec;
    fs::create_directories(path.parent_path(), ec);
    if (next_ == 0) {
      // Zero-part stream: publish an empty object.
      std::ofstream out(tmp_, std::ios::binary | std::ios::trunc);
      if (!out) return Status::IoError("cannot open " + tmp_.string());
    }
    fs::rename(tmp_, path, ec);
    // A failed rename leaves the temp file for a retried Finish.
    if (ec) return Status::IoError("rename failed: " + ec.message());
    finished_ = true;
    return Status::Ok();
  }

  void Abort() override {
    if (finished_ || aborted_) return;
    aborted_ = true;
    std::lock_guard<std::mutex> lock(store_->mu_);
    std::error_code ec;
    fs::remove(tmp_, ec);
  }

 private:
  DiskStore* store_;
  fs::path tmp_;
  std::uint32_t next_ = 0;
  bool finished_ = false;
  bool aborted_ = false;
};

Result<ObjectWriterPtr> DiskStore::BeginStreaming(
    std::string_view staging_hint) {
  const fs::path tmp = PathFor(staging_hint).string() + ".tmp";
  return ObjectWriterPtr(new DiskStoreWriter(this, tmp));
}

}  // namespace ginja
