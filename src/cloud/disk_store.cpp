#include "cloud/disk_store.h"

#include <algorithm>
#include <fstream>

namespace ginja {

namespace fs = std::filesystem;

DiskStore::DiskStore(fs::path root) : root_(std::move(root)) {
  fs::create_directories(root_);
}

fs::path DiskStore::PathFor(std::string_view name) const {
  return root_ / fs::path(name);
}

Status DiskStore::Put(std::string_view name, ByteView data) {
  std::lock_guard<std::mutex> lock(mu_);
  const fs::path path = PathFor(name);
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  // Write to a temp file and rename, so a crashed Put never leaves a
  // half-written object visible (object stores are atomic per PUT).
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open " + tmp.string());
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    if (!out) return Status::IoError("short write to " + tmp.string());
  }
  fs::rename(tmp, path, ec);
  if (ec) return Status::IoError("rename failed: " + ec.message());
  return Status::Ok();
}

Result<Bytes> DiskStore::Get(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const fs::path path = PathFor(name);
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::NotFound(std::string(name));
  const auto size = in.tellg();
  in.seekg(0);
  Bytes data(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()), size);
  if (!in) return Status::IoError("short read from " + path.string());
  return data;
}

Result<std::vector<ObjectMeta>> DiskStore::List(std::string_view prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ObjectMeta> out;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(root_, ec);
       it != fs::recursive_directory_iterator(); ++it) {
    if (!it->is_regular_file()) continue;
    std::string name = fs::relative(it->path(), root_).generic_string();
    if (name.size() >= 4 && name.ends_with(".tmp")) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    out.push_back({std::move(name), it->file_size()});
  }
  if (ec) return Status::IoError(ec.message());
  std::sort(out.begin(), out.end(),
            [](const ObjectMeta& a, const ObjectMeta& b) { return a.name < b.name; });
  return out;
}

Status DiskStore::Delete(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  fs::remove(PathFor(name), ec);
  return Status::Ok();  // S3 semantics: deleting a missing object succeeds
}

}  // namespace ginja
