// TenantNamespace — scopes one tenant's keys inside a shared bucket.
//
// A fleet of Ginja tenants shares one object store (one bucket, one
// price book, one TransferManager). Each tenant's WAL/CKPT/WALTAIL/meta
// objects live under a per-tenant prefix ("t/<id>/") so that CloudView
// rebuilds, GC sweeps, and recovery LISTs see exactly one tenant's
// objects and the flat `object_id.*` naming scheme keeps working
// unchanged: the prefix is added on the way out and stripped on the way
// back in, so WalObjectId::Decode() et al. never see it.
#pragma once

#include <string>
#include <string_view>

#include "cloud/object_store.h"

namespace ginja {

class TenantNamespace : public ObjectStore {
 public:
  // `prefix` is prepended verbatim to every key; use Prefix(tenant_id)
  // for the canonical "t/<id>/" layout.
  TenantNamespace(ObjectStorePtr inner, std::string prefix);

  // Canonical per-tenant key prefix: "t/<tenant_id>/".
  static std::string Prefix(std::string_view tenant_id);

  Status Put(std::string_view name, ByteView data) override;
  Result<Bytes> Get(std::string_view name) override;
  // Lists inner objects under prefix+`prefix` with the tenant prefix
  // stripped from every returned name. Objects of other tenants are
  // invisible by construction.
  Result<std::vector<ObjectMeta>> List(std::string_view prefix) override;
  // Cursor form: both the prefix and the cursor are scoped, so a tenant's
  // incremental tail poll seeks within its own namespace only.
  Result<std::vector<ObjectMeta>> List(std::string_view prefix,
                                       std::string_view start_after) override;
  Status Delete(std::string_view name) override;

  // Streams stage under the namespaced hint (unique across tenants
  // sharing a backend) and Finish publishes under the namespaced name.
  Result<ObjectWriterPtr> BeginStreaming(std::string_view staging_hint) override;

  const std::string& prefix() const { return prefix_; }
  const ObjectStorePtr& inner() const { return inner_; }

 private:
  std::string Scoped(std::string_view name) const;

  ObjectStorePtr inner_;
  std::string prefix_;
};

}  // namespace ginja
