#include "cloud/metered_store.h"

#include <algorithm>

namespace ginja {

namespace {
constexpr double kMicrosPerMonth = 30.0 * 24 * 60 * 60 * 1e6;
constexpr double kBytesPerGb = 1024.0 * 1024 * 1024;
}  // namespace

MeteredStore::MeteredStore(ObjectStorePtr inner, std::shared_ptr<Clock> clock,
                           std::shared_ptr<LatencyModel> latency)
    : inner_(std::move(inner)),
      clock_(std::move(clock)),
      latency_(std::move(latency)),
      last_accrual_micros_(clock_->NowMicros()),
      start_micros_(last_accrual_micros_) {}

void MeteredStore::AccrueStorageLocked(std::uint64_t now) {
  if (now > last_accrual_micros_) {
    const double gb = static_cast<double>(usage_.current_storage_bytes) / kBytesPerGb;
    usage_.gb_micros += gb * static_cast<double>(now - last_accrual_micros_);
    last_accrual_micros_ = now;
  }
}

Status MeteredStore::Put(std::string_view name, ByteView data) {
  std::uint64_t latency_us = 0;
  if (latency_) {
    latency_us = latency_->PutLatencyMicros(data.size());
    latency_->Sleep(latency_us);
  }
  Status st = inner_->Put(name, data);
  if (st.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    AccrueStorageLocked(clock_->NowMicros());
    ++usage_.puts;
    usage_.bytes_uploaded += data.size();
    auto [it, inserted] = object_sizes_.try_emplace(std::string(name), data.size());
    if (!inserted) {
      usage_.current_storage_bytes -= it->second;
      it->second = data.size();
    }
    usage_.current_storage_bytes += data.size();
    put_latency_.Record(static_cast<double>(latency_us));
    put_object_size_.Record(static_cast<double>(data.size()));
  }
  return st;
}

Result<Bytes> MeteredStore::Get(std::string_view name) {
  Result<Bytes> r = inner_->Get(name);
  std::uint64_t latency_us = 0;
  if (latency_) {
    latency_us = latency_->GetLatencyMicros(r.ok() ? r->size() : 0);
    latency_->Sleep(latency_us);
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++usage_.gets;
  if (r.ok()) usage_.bytes_downloaded += r->size();
  get_latency_.Record(static_cast<double>(latency_us));
  return r;
}

Result<std::vector<ObjectMeta>> MeteredStore::List(std::string_view prefix) {
  return List(prefix, {});
}

Result<std::vector<ObjectMeta>> MeteredStore::List(std::string_view prefix,
                                                   std::string_view start_after) {
  // A cursor pass is still one LIST request on the bill, but its latency
  // scales with the (usually tiny) result count, which is the point.
  Result<std::vector<ObjectMeta>> r = inner_->List(prefix, start_after);
  if (latency_) {
    latency_->Sleep(latency_->ListLatencyMicros(r.ok() ? r->size() : 0));
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++usage_.lists;
  return r;
}

Status MeteredStore::Delete(std::string_view name) {
  if (latency_) latency_->Sleep(latency_->DeleteLatencyMicros());
  Status st = inner_->Delete(name);
  if (st.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    AccrueStorageLocked(clock_->NowMicros());
    ++usage_.deletes;
    auto it = object_sizes_.find(name);
    if (it != object_sizes_.end()) {
      usage_.current_storage_bytes -= it->second;
      object_sizes_.erase(it);
    }
  }
  return st;
}

// Streamed-PUT accounting: parts sleep the transfer term as they arrive,
// Finish sleeps the request base and books the whole object as one PUT.
class MeteredStoreWriter : public ObjectWriter {
 public:
  MeteredStoreWriter(MeteredStore* store, ObjectWriterPtr inner)
      : store_(store), inner_(std::move(inner)) {}

  Status AppendPart(std::uint32_t index, ByteView part) override {
    if (index < next_) return Status::Ok();  // idempotent retry, no re-billing
    if (store_->latency_) {
      const std::uint64_t us =
          store_->latency_->PutPartLatencyMicros(part.size());
      store_->latency_->Sleep(us);
      slept_us_ += us;
    }
    Status st = inner_->AppendPart(index, part);
    if (st.ok()) {
      next_ = index + 1;
      total_bytes_ += part.size();
    }
    return st;
  }

  Status Finish(std::string_view name) override {
    if (finished_) return Status::Ok();  // idempotent: already billed
    if (store_->latency_) {
      const std::uint64_t us = store_->latency_->PutFinishLatencyMicros();
      store_->latency_->Sleep(us);
      slept_us_ += us;
    }
    Status st = inner_->Finish(name);
    if (st.ok()) {
      finished_ = true;
      std::lock_guard<std::mutex> lock(store_->mu_);
      store_->AccrueStorageLocked(store_->clock_->NowMicros());
      ++store_->usage_.puts;
      store_->usage_.bytes_uploaded += total_bytes_;
      auto [it, inserted] =
          store_->object_sizes_.try_emplace(std::string(name), total_bytes_);
      if (!inserted) {
        store_->usage_.current_storage_bytes -= it->second;
        it->second = total_bytes_;
      }
      store_->usage_.current_storage_bytes += total_bytes_;
      store_->put_latency_.Record(static_cast<double>(slept_us_));
      store_->put_object_size_.Record(static_cast<double>(total_bytes_));
    }
    return st;
  }

  void Abort() override { inner_->Abort(); }

 private:
  MeteredStore* store_;
  ObjectWriterPtr inner_;
  std::uint32_t next_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t slept_us_ = 0;
  bool finished_ = false;
};

Result<ObjectWriterPtr> MeteredStore::BeginStreaming(
    std::string_view staging_hint) {
  auto inner = inner_->BeginStreaming(staging_hint);
  if (!inner.ok()) return inner.status();
  return ObjectWriterPtr(new MeteredStoreWriter(this, std::move(*inner)));
}

UsageReport MeteredStore::Usage() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto* self = const_cast<MeteredStore*>(this);
  self->AccrueStorageLocked(clock_->NowMicros());
  return usage_;
}

MeteredStore::~MeteredStore() {
  if (registry_) registry_->Unregister(this);
}

double MeteredStore::AccruedCost(const PriceBook& prices) const {
  const UsageReport u = Usage();
  const double request_cost = static_cast<double>(u.puts) * prices.per_put +
                              static_cast<double>(u.gets) * prices.per_get +
                              static_cast<double>(u.lists) * prices.per_put +
                              static_cast<double>(u.deletes) * prices.per_delete;
  const double egress_cost =
      static_cast<double>(u.bytes_downloaded) / kBytesPerGb * prices.egress_gb;
  const double ingress_cost =
      static_cast<double>(u.bytes_uploaded) / kBytesPerGb * prices.ingress_gb;
  // gb_micros / kMicrosPerMonth is GB-months actually held so far.
  const double storage_cost =
      u.gb_micros / kMicrosPerMonth * prices.storage_gb_month;
  return request_cost + egress_cost + ingress_cost + storage_cost;
}

void MeteredStore::RegisterMetrics(MetricsRegistry* registry,
                                   const PriceBook& prices,
                                   MetricLabels labels) {
  if (registry_) registry_->Unregister(this);
  registry_ = registry;
  if (!registry_) return;
  registry_->RegisterGauge(this, "ginja_cloud_puts", labels, [this] {
    return static_cast<double>(Usage().puts);
  });
  registry_->RegisterGauge(this, "ginja_cloud_gets", labels, [this] {
    return static_cast<double>(Usage().gets);
  });
  registry_->RegisterGauge(this, "ginja_cloud_deletes", labels, [this] {
    return static_cast<double>(Usage().deletes);
  });
  registry_->RegisterGauge(this, "ginja_cloud_bytes_uploaded", labels, [this] {
    return static_cast<double>(Usage().bytes_uploaded);
  });
  registry_->RegisterGauge(this, "ginja_cloud_bytes_downloaded", labels,
                           [this] {
                             return static_cast<double>(
                                 Usage().bytes_downloaded);
                           });
  registry_->RegisterGauge(this, "ginja_cloud_storage_bytes", labels, [this] {
    return static_cast<double>(Usage().current_storage_bytes);
  });
  MetricLabels cost_labels = labels;
  cost_labels.emplace_back("provider", prices.provider);
  std::sort(cost_labels.begin(), cost_labels.end());
  registry_->RegisterGauge(this, "ginja_cost_accrued_dollars",
                           std::move(cost_labels),
                           [this, prices] { return AccruedCost(prices); });
}

double MeteredStore::MonthlyCost(const PriceBook& prices,
                                 double window_micros) const {
  const UsageReport u = Usage();
  if (window_micros <= 0) return 0;
  const double months = window_micros / kMicrosPerMonth;
  // Requests and egress observed in the window, extrapolated to one month;
  // storage billed at average occupancy.
  const double request_cost = static_cast<double>(u.puts) * prices.per_put +
                              static_cast<double>(u.gets) * prices.per_get +
                              static_cast<double>(u.lists) * prices.per_put +
                              static_cast<double>(u.deletes) * prices.per_delete;
  const double egress_cost =
      static_cast<double>(u.bytes_downloaded) / kBytesPerGb * prices.egress_gb;
  const double storage_cost = u.AverageGb(window_micros) * prices.storage_gb_month;
  return (request_cost + egress_cost) / months + storage_cost;
}

}  // namespace ginja
