// FaultyStore — failure-injection decorator for resilience tests.
//
// Supports (1) a per-operation transient failure probability, (2) a hard
// outage switch that makes every call return UNAVAILABLE (models a cloud
// outage, paper §2/§9 motivation), and (3) "fail the next N ops" for
// deterministic tests of retry and blocking paths.
#pragma once

#include <atomic>
#include <mutex>

#include "cloud/object_store.h"
#include "common/rng.h"
#include "obs/metrics.h"

namespace ginja {

class FaultyStore : public ObjectStore {
 public:
  explicit FaultyStore(ObjectStorePtr inner, std::uint64_t seed = 7);

  Status Put(std::string_view name, ByteView data) override;
  Result<Bytes> Get(std::string_view name) override;
  Result<std::vector<ObjectMeta>> List(std::string_view prefix) override;
  Result<std::vector<ObjectMeta>> List(std::string_view prefix,
                                       std::string_view start_after) override;
  Status Delete(std::string_view name) override;

  // Streamed PUT with per-part injection: each AppendPart/Finish rolls
  // the same failure dice as a whole operation, so retry loops around
  // individual parts get exercised.
  Result<ObjectWriterPtr> BeginStreaming(std::string_view staging_hint) override;

  void SetFailureProbability(double p) { failure_probability_ = p; }
  void SetAvailable(bool available) { available_ = available; }
  void FailNextOps(int n) { fail_next_ = n; }

  std::uint64_t injected_failures() const { return injected_failures_; }

  // Outage/backoff state gauges (ginja_cloud_outage = 1 during a hard
  // outage, injected-failure count, current failure probability); undone
  // automatically by the destructor.
  void RegisterMetrics(MetricsRegistry* registry);

  ~FaultyStore() override;

 private:
  friend class FaultyStoreWriter;

  // Returns true if this op should fail.
  bool ShouldFail();

  ObjectStorePtr inner_;
  std::atomic<double> failure_probability_{0.0};
  std::atomic<bool> available_{true};
  std::atomic<int> fail_next_{0};
  std::atomic<std::uint64_t> injected_failures_{0};
  std::mutex rng_mu_;
  SplitMix64 rng_;
  MetricsRegistry* registry_ = nullptr;  // set by RegisterMetrics
};

}  // namespace ginja
