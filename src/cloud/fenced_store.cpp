#include "cloud/fenced_store.h"

#include <string>

namespace ginja {

FencedStore::FencedStore(ObjectStorePtr inner, FenceTokenPtr token,
                         std::uint64_t writer_epoch)
    : inner_(std::move(inner)),
      token_(std::move(token)),
      writer_epoch_(writer_epoch) {}

Status FencedStore::CheckFence() {
  const std::uint64_t current = token_->current();
  if (current <= writer_epoch_) return Status::Ok();
  ++rejected_;
  return Status::Aborted("fenced: writer epoch " +
                         std::to_string(writer_epoch_) +
                         " superseded by epoch " + std::to_string(current));
}

Status FencedStore::Put(std::string_view name, ByteView data) {
  GINJA_RETURN_IF_ERROR(CheckFence());
  return inner_->Put(name, data);
}

Result<Bytes> FencedStore::Get(std::string_view name) {
  return inner_->Get(name);
}

Result<std::vector<ObjectMeta>> FencedStore::List(std::string_view prefix) {
  return inner_->List(prefix);
}

Result<std::vector<ObjectMeta>> FencedStore::List(std::string_view prefix,
                                                  std::string_view start_after) {
  return inner_->List(prefix, start_after);
}

Status FencedStore::Delete(std::string_view name) {
  GINJA_RETURN_IF_ERROR(CheckFence());
  return inner_->Delete(name);
}

// Streamed uploads re-check the fence at every part and at Finish. The
// Finish check is what makes fencing atomic: parts staged before the
// promotion can never be published afterwards.
class FencedStoreWriter : public ObjectWriter {
 public:
  FencedStoreWriter(FencedStore* store, ObjectWriterPtr inner)
      : store_(store), inner_(std::move(inner)) {}

  Status AppendPart(std::uint32_t index, ByteView part) override {
    GINJA_RETURN_IF_ERROR(store_->CheckFence());
    return inner_->AppendPart(index, part);
  }

  Status Finish(std::string_view name) override {
    GINJA_RETURN_IF_ERROR(store_->CheckFence());
    return inner_->Finish(name);
  }

  void Abort() override { inner_->Abort(); }

 private:
  FencedStore* store_;
  ObjectWriterPtr inner_;
};

Result<ObjectWriterPtr> FencedStore::BeginStreaming(
    std::string_view staging_hint) {
  GINJA_RETURN_IF_ERROR(CheckFence());
  auto inner = inner_->BeginStreaming(staging_hint);
  if (!inner.ok()) return inner.status();
  return ObjectWriterPtr(new FencedStoreWriter(this, std::move(*inner)));
}

}  // namespace ginja
