#include "cloud/object_store.h"

namespace ginja {

namespace {

// Fallback writer: accumulates parts in memory and issues one ordinary
// Put at Finish. Decorator stores that don't reimplement streaming (and
// plain stores where parts buy nothing, like MemoryStore's map insert)
// get correct atomic-publish semantics from this.
class BufferedObjectWriter : public ObjectWriter {
 public:
  explicit BufferedObjectWriter(ObjectStore* store) : store_(store) {}

  Status AppendPart(std::uint32_t index, ByteView part) override {
    if (finished_ || aborted_) {
      return Status::InvalidArgument("writer already closed");
    }
    if (index < next_) return Status::Ok();  // idempotent retry of an old part
    if (index != next_) {
      return Status::InvalidArgument("stream part out of order");
    }
    Append(buffer_, part);
    ++next_;
    return Status::Ok();
  }

  Status Finish(std::string_view name) override {
    if (aborted_) return Status::InvalidArgument("writer aborted");
    if (finished_) return Status::Ok();  // idempotent: already published
    Status st = store_->Put(name, View(buffer_));
    if (st.ok()) finished_ = true;  // a failed Finish may be retried
    return st;
  }

  void Abort() override { aborted_ = true; }

 private:
  ObjectStore* store_;
  Bytes buffer_;
  std::uint32_t next_ = 0;
  bool finished_ = false;
  bool aborted_ = false;
};

}  // namespace

Result<ObjectWriterPtr> ObjectStore::BeginStreaming(
    std::string_view /*staging_hint*/) {
  return ObjectWriterPtr(new BufferedObjectWriter(this));
}

Result<std::vector<ObjectMeta>> ObjectStore::List(std::string_view prefix,
                                                  std::string_view start_after) {
  auto all = List(prefix);
  if (!all.ok() || start_after.empty()) return all;
  std::vector<ObjectMeta> out;
  out.reserve(all->size());
  for (auto& meta : *all) {
    if (meta.name > start_after) out.push_back(std::move(meta));
  }
  return out;
}

}  // namespace ginja
