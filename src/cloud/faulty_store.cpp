#include "cloud/faulty_store.h"

namespace ginja {

FaultyStore::FaultyStore(ObjectStorePtr inner, std::uint64_t seed)
    : inner_(std::move(inner)), rng_(seed) {}

FaultyStore::~FaultyStore() {
  if (registry_) registry_->Unregister(this);
}

void FaultyStore::RegisterMetrics(MetricsRegistry* registry) {
  if (registry_) registry_->Unregister(this);
  registry_ = registry;
  if (!registry_) return;
  registry_->RegisterGauge(this, "ginja_cloud_outage", {}, [this] {
    return available_.load() ? 0.0 : 1.0;
  });
  registry_->RegisterGauge(this, "ginja_cloud_injected_failures", {}, [this] {
    return static_cast<double>(injected_failures_.load());
  });
  registry_->RegisterGauge(this, "ginja_cloud_failure_probability", {},
                           [this] { return failure_probability_.load(); });
}

bool FaultyStore::ShouldFail() {
  if (!available_.load()) {
    ++injected_failures_;
    return true;
  }
  int n = fail_next_.load();
  while (n > 0) {
    if (fail_next_.compare_exchange_weak(n, n - 1)) {
      ++injected_failures_;
      return true;
    }
  }
  const double p = failure_probability_.load();
  if (p > 0) {
    std::lock_guard<std::mutex> lock(rng_mu_);
    if (rng_.NextDouble() < p) {
      ++injected_failures_;
      return true;
    }
  }
  return false;
}

Status FaultyStore::Put(std::string_view name, ByteView data) {
  if (ShouldFail()) return Status::Unavailable("injected PUT failure");
  return inner_->Put(name, data);
}

Result<Bytes> FaultyStore::Get(std::string_view name) {
  if (ShouldFail()) return Status::Unavailable("injected GET failure");
  return inner_->Get(name);
}

Result<std::vector<ObjectMeta>> FaultyStore::List(std::string_view prefix) {
  if (ShouldFail()) return Status::Unavailable("injected LIST failure");
  return inner_->List(prefix);
}

Result<std::vector<ObjectMeta>> FaultyStore::List(std::string_view prefix,
                                                  std::string_view start_after) {
  if (ShouldFail()) return Status::Unavailable("injected LIST failure");
  return inner_->List(prefix, start_after);
}

Status FaultyStore::Delete(std::string_view name) {
  if (ShouldFail()) return Status::Unavailable("injected DELETE failure");
  return inner_->Delete(name);
}

class FaultyStoreWriter : public ObjectWriter {
 public:
  FaultyStoreWriter(FaultyStore* store, ObjectWriterPtr inner)
      : store_(store), inner_(std::move(inner)) {}

  Status AppendPart(std::uint32_t index, ByteView part) override {
    if (store_->ShouldFail()) {
      return Status::Unavailable("injected stream-part failure");
    }
    return inner_->AppendPart(index, part);
  }

  Status Finish(std::string_view name) override {
    if (store_->ShouldFail()) {
      return Status::Unavailable("injected stream-finish failure");
    }
    return inner_->Finish(name);
  }

  void Abort() override { inner_->Abort(); }

 private:
  FaultyStore* store_;
  ObjectWriterPtr inner_;
};

Result<ObjectWriterPtr> FaultyStore::BeginStreaming(
    std::string_view staging_hint) {
  if (ShouldFail()) return Status::Unavailable("injected stream-open failure");
  auto inner = inner_->BeginStreaming(staging_hint);
  if (!inner.ok()) return inner.status();
  return ObjectWriterPtr(new FaultyStoreWriter(this, std::move(*inner)));
}

}  // namespace ginja
