#include "cloud/memory_store.h"

namespace ginja {

Status MemoryStore::Put(std::string_view name, ByteView data) {
  // Copy the payload (the expensive part for multi-MB objects) before
  // taking the map lock, so K concurrent PUTs — latency benches with the
  // Instant profile especially — serialize only on the map insert, not on
  // the memcpy.
  Bytes copy(data.begin(), data.end());
  std::string key(name);
  std::lock_guard<std::mutex> lock(mu_);
  objects_.insert_or_assign(std::move(key), std::move(copy));
  return Status::Ok();
}

Result<Bytes> MemoryStore::Get(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(name);
  if (it == objects_.end()) {
    return Status::NotFound(std::string(name));
  }
  return it->second;
}

Result<std::vector<ObjectMeta>> MemoryStore::List(std::string_view prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ObjectMeta> out;
  for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back({it->first, it->second.size()});
  }
  return out;
}

Status MemoryStore::Delete(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  objects_.erase(std::string(name));
  return Status::Ok();
}

std::size_t MemoryStore::ObjectCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return objects_.size();
}

std::uint64_t MemoryStore::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [name, data] : objects_) total += data.size();
  return total;
}

void MemoryStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  objects_.clear();
}

}  // namespace ginja
