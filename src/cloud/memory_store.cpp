#include "cloud/memory_store.h"

namespace ginja {

namespace {

// Accumulates parts privately; Finish is one ordinary Put. The insert
// moves a shared_ptr, so even multi-MB streamed objects publish with a
// constant-time critical section.
class MemoryStoreWriter : public ObjectWriter {
 public:
  explicit MemoryStoreWriter(MemoryStore* store) : store_(store) {}

  Status AppendPart(std::uint32_t index, ByteView part) override {
    if (finished_ || aborted_) {
      return Status::InvalidArgument("writer already closed");
    }
    if (index < next_) return Status::Ok();
    if (index != next_) {
      return Status::InvalidArgument("stream part out of order");
    }
    Append(buffer_, part);
    ++next_;
    return Status::Ok();
  }

  Status Finish(std::string_view name) override {
    if (aborted_) return Status::InvalidArgument("writer aborted");
    if (finished_) return Status::Ok();  // idempotent: already published
    Status st = store_->Put(name, View(buffer_));
    if (st.ok()) finished_ = true;  // a failed Finish may be retried
    return st;
  }

  void Abort() override { aborted_ = true; }

 private:
  MemoryStore* store_;
  Bytes buffer_;
  std::uint32_t next_ = 0;
  bool finished_ = false;
  bool aborted_ = false;
};

}  // namespace

Status MemoryStore::Put(std::string_view name, ByteView data) {
  // Copy the payload (the expensive part for multi-MB objects) before
  // taking the map lock, so K concurrent PUTs — latency benches with the
  // Instant profile especially — serialize only on the map insert, not on
  // the memcpy.
  auto copy = std::make_shared<const StoredObject>(
      StoredObject{std::string(name), Bytes(data.begin(), data.end())});
  std::lock_guard<std::mutex> lock(mu_);
  objects_.insert_or_assign(copy->name, std::move(copy));
  return Status::Ok();
}

Result<Bytes> MemoryStore::Get(std::string_view name) {
  // Same asymmetry as Put: grab a reference under the lock, copy the
  // payload after releasing it. Values are immutable once inserted, so
  // the copy reads a stable blob even if the name is concurrently
  // overwritten or deleted.
  std::shared_ptr<const StoredObject> blob;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = objects_.find(name);
    if (it == objects_.end()) {
      return Status::NotFound(std::string(name));
    }
    blob = it->second;
  }
  return blob->data;
}

Result<std::vector<ObjectMeta>> MemoryStore::List(std::string_view prefix) {
  // Collect the matching range as shared_ptrs under the lock; build the
  // ObjectMeta name strings (one allocation + copy per object — the
  // expensive part of a fleet-wide recovery or GC LIST) after releasing
  // it. Each StoredObject carries its own name, so this stays correct even
  // if entries are concurrently deleted or overwritten.
  std::vector<std::shared_ptr<const StoredObject>> matched;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
      if (it->first.compare(0, prefix.size(), prefix) != 0) break;
      matched.push_back(it->second);
    }
  }
  std::vector<ObjectMeta> out;
  out.reserve(matched.size());
  for (const auto& object : matched) {
    out.push_back({object->name, object->data.size()});
  }
  return out;
}

Result<std::vector<ObjectMeta>> MemoryStore::List(std::string_view prefix,
                                                  std::string_view start_after) {
  // Same off-lock name building as the full List, but the scan starts at
  // upper_bound(start_after) — past every key the caller already consumed —
  // when the cursor is ahead of the prefix start.
  std::vector<std::shared_ptr<const StoredObject>> matched;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = start_after.compare(prefix) >= 0 ? objects_.upper_bound(start_after)
                                               : objects_.lower_bound(prefix);
    for (; it != objects_.end(); ++it) {
      if (it->first.compare(0, prefix.size(), prefix) != 0) break;
      if (!start_after.empty() && it->first <= start_after) continue;
      matched.push_back(it->second);
    }
  }
  std::vector<ObjectMeta> out;
  out.reserve(matched.size());
  for (const auto& object : matched) {
    out.push_back({object->name, object->data.size()});
  }
  return out;
}

Status MemoryStore::Delete(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  objects_.erase(std::string(name));
  return Status::Ok();
}

Result<ObjectWriterPtr> MemoryStore::BeginStreaming(
    std::string_view /*staging_hint*/) {
  return ObjectWriterPtr(new MemoryStoreWriter(this));
}

std::size_t MemoryStore::ObjectCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return objects_.size();
}

std::uint64_t MemoryStore::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [name, object] : objects_) total += object->data.size();
  return total;
}

void MemoryStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  objects_.clear();
}

}  // namespace ginja
