// MeteredStore — decorator that accounts every operation and byte so a run
// can be priced with a PriceBook. Also integrates storage occupancy over
// model time (GB-months) the way S3 bills it.
#pragma once

#include <map>
#include <mutex>

#include "cloud/latency_model.h"
#include "cloud/object_store.h"
#include "cloud/price_book.h"
#include "common/stats.h"
#include "obs/metrics.h"

namespace ginja {

struct UsageReport {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t lists = 0;
  std::uint64_t deletes = 0;
  std::uint64_t bytes_uploaded = 0;
  std::uint64_t bytes_downloaded = 0;
  std::uint64_t current_storage_bytes = 0;
  double gb_micros = 0;  // ∫ storage dt, in GB·µs of model time

  // Average GB held over the observation window.
  double AverageGb(double window_micros) const {
    return window_micros <= 0 ? 0 : gb_micros / window_micros;
  }
};

class MeteredStore : public ObjectStore {
 public:
  // `clock` supplies the model time base for the storage integral;
  // `latency` (optional) makes each operation sleep for its modeled
  // duration and records it into the latency histograms.
  MeteredStore(ObjectStorePtr inner, std::shared_ptr<Clock> clock,
               std::shared_ptr<LatencyModel> latency = nullptr);

  Status Put(std::string_view name, ByteView data) override;
  Result<Bytes> Get(std::string_view name) override;
  Result<std::vector<ObjectMeta>> List(std::string_view prefix) override;
  Result<std::vector<ObjectMeta>> List(std::string_view prefix,
                                       std::string_view start_after) override;
  Status Delete(std::string_view name) override;

  // Streamed PUT: each part sleeps only the per-byte transfer term,
  // Finish sleeps the per-request base — same total as a buffered Put of
  // the whole object, but the size term overlaps the producer. Usage is
  // accounted once, at Finish (a torn stream never billed as a PUT).
  Result<ObjectWriterPtr> BeginStreaming(std::string_view staging_hint) override;

  UsageReport Usage() const;

  // Prices the usage so far. `window_micros` is the observation window in
  // model time; storage is billed at its average occupancy over that window
  // extrapolated to a month.
  double MonthlyCost(const PriceBook& prices, double window_micros) const;

  // Dollars actually accrued so far — the bill-to-date, NOT extrapolated:
  // requests + egress at list price plus the storage integral's GB-month
  // fraction. This is what the ginja_cost_accrued_dollars gauge exposes.
  double AccruedCost(const PriceBook& prices) const;

  // Registers usage gauges (requests, bytes, storage, accrued dollars under
  // `prices`) into `registry`; undone automatically by the destructor.
  // `labels` is attached to every series (e.g. {tenant=<id>} for a fleet
  // member's per-tenant cost gauges).
  void RegisterMetrics(MetricsRegistry* registry, const PriceBook& prices,
                       MetricLabels labels = {});

  ~MeteredStore() override;

  const Histogram& put_latency() const { return put_latency_; }
  const Histogram& get_latency() const { return get_latency_; }
  const Meter& put_object_size() const { return put_object_size_; }

  // Model-time at construction; subtract from clock().NowMicros() for the
  // observation window.
  std::uint64_t start_micros() const { return start_micros_; }
  Clock& clock() { return *clock_; }

 private:
  friend class MeteredStoreWriter;

  void AccrueStorageLocked(std::uint64_t now);

  ObjectStorePtr inner_;
  std::shared_ptr<Clock> clock_;
  std::shared_ptr<LatencyModel> latency_;

  mutable std::mutex mu_;
  UsageReport usage_;
  std::map<std::string, std::uint64_t, std::less<>> object_sizes_;
  std::uint64_t last_accrual_micros_;
  std::uint64_t start_micros_;

  Histogram put_latency_;
  Histogram get_latency_;
  Meter put_object_size_;
  MetricsRegistry* registry_ = nullptr;  // set by RegisterMetrics
};

}  // namespace ginja
