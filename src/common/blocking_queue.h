// Bounded blocking queue used by the Ginja pipelines (Fig. 3 of the paper).
//
// The paper's CommitQueue has two unusual semantics which this template
// supports directly:
//   * Peek-without-remove of the next batch (the Aggregator reads B elements
//     "without removing them"; the Unlocker removes them only after the
//     upload is acknowledged).
//   * A capacity bound of S elements where a full Put() blocks — that block
//     *is* Ginja's Safety mechanism.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace ginja {

template <typename T>
class BlockingQueue {
 public:
  // capacity == 0 means unbounded.
  explicit BlockingQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  // Blocks while the queue is full. Returns false if the queue was closed.
  bool Put(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || !Full(); });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking put that ignores the capacity bound (used for priority
  // control messages). Returns false if closed.
  bool ForcePut(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an element is available; nullopt when closed and drained.
  std::optional<T> Take() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // Blocks up to `micros`; nullopt on timeout or closed-and-drained.
  std::optional<T> TakeFor(std::uint64_t micros) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_for(lock, std::chrono::microseconds(micros),
                        [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // Copies up to `n` elements from the head without removing them, blocking
  // until at least one is available (or closed). Paper: Aggregator semantics.
  std::vector<T> PeekBatch(std::size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    std::vector<T> out;
    for (std::size_t i = 0; i < items_.size() && i < n; ++i) out.push_back(items_[i]);
    return out;
  }

  // Removes `n` elements from the head. Paper: Unlocker semantics.
  void PopN(std::size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < n && !items_.empty(); ++i) items_.pop_front();
    not_full_.notify_all();
  }

  std::size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool Empty() const { return Size() == 0; }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool Closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  // Blocks until the queue is empty (all elements consumed) or closed.
  void WaitEmpty() {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.empty(); });
  }

 private:
  bool Full() const { return capacity_ != 0 && items_.size() >= capacity_; }

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace ginja
