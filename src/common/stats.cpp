#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace ginja {

namespace detail {

std::size_t ThisThreadStripe() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed);
  return stripe;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Meter

Meter::Meter()
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void Meter::Record(double v) {
  Stripe& s = stripes_[detail::ThisThreadStripe() % kStripes];
  s.count.fetch_add(1, std::memory_order_relaxed);
  detail::AtomicAddDouble(s.sum, v);
  detail::AtomicMinDouble(min_, v);
  detail::AtomicMaxDouble(max_, v);
}

std::uint64_t Meter::Count() const {
  std::uint64_t total = 0;
  for (const Stripe& s : stripes_) {
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Meter::Sum() const {
  double total = 0;
  for (const Stripe& s : stripes_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

double Meter::Mean() const {
  const std::uint64_t n = Count();
  return n == 0 ? 0 : Sum() / static_cast<double>(n);
}

double Meter::Min() const {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isinf(v) ? 0 : v;
}

double Meter::Max() const {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isinf(v) ? 0 : v;
}

void Meter::Reset() {
  for (Stripe& s : stripes_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
  }
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

int Histogram::BucketFor(double v) {
  if (v < 1.0) return 0;
  // Geometric: bucket i covers [1.4^i, 1.4^(i+1)).
  int b = static_cast<int>(std::log(v) / std::log(1.4));
  return std::clamp(b, 0, kBuckets - 1);
}

double Histogram::BucketUpper(int b) { return std::pow(1.4, b + 1); }

void Histogram::Record(double v) {
  counts_[BucketFor(v)].fetch_add(1, std::memory_order_relaxed);
  detail::AtomicAddDouble(sums_[detail::ThisThreadStripe() % kStripes].sum, v);
  detail::AtomicMaxDouble(max_, v);
}

std::uint64_t Histogram::Count() const {
  std::uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

double Histogram::Mean() const {
  const std::uint64_t n = Count();
  if (n == 0) return 0;
  double sum = 0;
  for (const Stripe& s : sums_) sum += s.sum.load(std::memory_order_relaxed);
  return sum / static_cast<double>(n);
}

double Histogram::Quantile(double q) const {
  // One-quantile convenience; Snapshot() when reporting several.
  std::uint64_t counts[kBuckets];
  std::uint64_t total = 0;
  for (int b = 0; b < kBuckets; ++b) {
    counts[b] = counts_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  if (total == 0) return 0;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += counts[b];
    if (seen > target) return BucketUpper(b);
  }
  return max_.load(std::memory_order_relaxed);
}

double Histogram::Max() const { return max_.load(std::memory_order_relaxed); }

HistogramSnapshot Histogram::Snapshot() const {
  // Read the buckets once; every quantile below is derived from this one
  // view, so the snapshot is internally consistent even while concurrent
  // Records land (they are simply either in or out of this view).
  std::uint64_t counts[kBuckets];
  std::uint64_t total = 0;
  for (int b = 0; b < kBuckets; ++b) {
    counts[b] = counts_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  double sum = 0;
  for (const Stripe& s : sums_) sum += s.sum.load(std::memory_order_relaxed);

  HistogramSnapshot snap;
  snap.count = total;
  snap.mean = total == 0 ? 0 : sum / static_cast<double>(total);
  snap.max = max_.load(std::memory_order_relaxed);
  if (total == 0) return snap;
  auto quantile = [&](double q) {
    const auto target =
        static_cast<std::uint64_t>(q * static_cast<double>(total));
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += counts[b];
      if (seen > target) return BucketUpper(b);
    }
    return snap.max;
  };
  snap.p50 = quantile(0.50);
  snap.p95 = quantile(0.95);
  snap.p99 = quantile(0.99);
  return snap;
}

void Histogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  for (Stripe& s : sums_) s.sum.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::string HumanCount(double n) {
  char buf[32];
  if (n >= 1e9) std::snprintf(buf, sizeof buf, "%.2fG", n / 1e9);
  else if (n >= 1e6) std::snprintf(buf, sizeof buf, "%.2fM", n / 1e6);
  else if (n >= 1e3) std::snprintf(buf, sizeof buf, "%.2fk", n / 1e3);
  else std::snprintf(buf, sizeof buf, "%.0f", n);
  return buf;
}

std::string HumanBytes(double n) {
  char buf[32];
  if (n >= 1024.0 * 1024 * 1024) std::snprintf(buf, sizeof buf, "%.2fGB", n / (1024.0 * 1024 * 1024));
  else if (n >= 1024.0 * 1024) std::snprintf(buf, sizeof buf, "%.2fMB", n / (1024.0 * 1024));
  else if (n >= 1024.0) std::snprintf(buf, sizeof buf, "%.1fkB", n / 1024.0);
  else std::snprintf(buf, sizeof buf, "%.0fB", n);
  return buf;
}

}  // namespace ginja
