#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ginja {

void Meter::Record(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

std::uint64_t Meter::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Meter::Sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Meter::Mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
}

double Meter::Min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Meter::Max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

void Meter::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  count_ = 0;
  sum_ = min_ = max_ = 0;
}

Histogram::Histogram() = default;

int Histogram::BucketFor(double v) {
  if (v < 1.0) return 0;
  // Geometric: bucket i covers [1.4^i, 1.4^(i+1)).
  int b = static_cast<int>(std::log(v) / std::log(1.4));
  return std::clamp(b, 0, kBuckets - 1);
}

double Histogram::BucketUpper(int b) { return std::pow(1.4, b + 1); }

void Histogram::Record(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  counts_[BucketFor(v)]++;
  ++total_;
  sum_ += v;
  max_ = std::max(max_, v);
}

std::uint64_t Histogram::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

double Histogram::Mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ == 0 ? 0 : sum_ / static_cast<double>(total_);
}

double Histogram::Quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (total_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += counts_[b];
    if (seen > target) return BucketUpper(b);
  }
  return max_;
}

double Histogram::Max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

HistogramSnapshot Histogram::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSnapshot snap;
  snap.count = total_;
  snap.mean = total_ == 0 ? 0 : sum_ / static_cast<double>(total_);
  snap.max = max_;
  if (total_ == 0) return snap;
  auto quantile = [&](double q) {
    const auto target =
        static_cast<std::uint64_t>(q * static_cast<double>(total_));
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += counts_[b];
      if (seen > target) return BucketUpper(b);
    }
    return max_;
  };
  snap.p50 = quantile(0.50);
  snap.p95 = quantile(0.95);
  snap.p99 = quantile(0.99);
  return snap;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(std::begin(counts_), std::end(counts_), 0);
  total_ = 0;
  sum_ = 0;
  max_ = 0;
}

std::string HumanCount(double n) {
  char buf[32];
  if (n >= 1e9) std::snprintf(buf, sizeof buf, "%.2fG", n / 1e9);
  else if (n >= 1e6) std::snprintf(buf, sizeof buf, "%.2fM", n / 1e6);
  else if (n >= 1e3) std::snprintf(buf, sizeof buf, "%.2fk", n / 1e3);
  else std::snprintf(buf, sizeof buf, "%.0f", n);
  return buf;
}

std::string HumanBytes(double n) {
  char buf[32];
  if (n >= 1024.0 * 1024 * 1024) std::snprintf(buf, sizeof buf, "%.2fGB", n / (1024.0 * 1024 * 1024));
  else if (n >= 1024.0 * 1024) std::snprintf(buf, sizeof buf, "%.2fMB", n / (1024.0 * 1024));
  else if (n >= 1024.0) std::snprintf(buf, sizeof buf, "%.1fkB", n / 1024.0);
  else std::snprintf(buf, sizeof buf, "%.0fB", n);
  return buf;
}

}  // namespace ginja
