// Time abstraction.
//
// The Ginja pipelines use real threads but all *simulated* delays (cloud
// round-trips, FUSE overhead, disk fsync) are expressed as model
// microseconds and realised through a Clock. A `ScaledClock` divides sleeps
// by a configurable factor so five paper-minutes of TPC-C collapse into a
// few wall-seconds while preserving relative timing; a `ManualClock` gives
// tests fully deterministic time.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>

namespace ginja {

class Clock {
 public:
  virtual ~Clock() = default;

  // Monotonic microseconds since an arbitrary epoch, in *model* time.
  virtual std::uint64_t NowMicros() = 0;

  // Blocks the calling thread for `micros` of model time.
  virtual void SleepMicros(std::uint64_t micros) = 0;
};

// Wall-clock time, 1:1.
class RealClock : public Clock {
 public:
  std::uint64_t NowMicros() override;
  void SleepMicros(std::uint64_t micros) override;
};

// Model time = wall time * scale. scale > 1 makes simulated latencies cheap:
// with scale 50, a 10 ms simulated PUT costs 200 us of wall time.
class ScaledClock : public Clock {
 public:
  explicit ScaledClock(double scale = 1.0) : scale_(scale <= 0 ? 1.0 : scale) {}

  std::uint64_t NowMicros() override;
  void SleepMicros(std::uint64_t micros) override;

  double scale() const { return scale_; }

 private:
  double scale_;
};

// Fully deterministic manual clock for unit tests. Sleeping threads wake when
// Advance() moves time past their deadline.
class ManualClock : public Clock {
 public:
  std::uint64_t NowMicros() override {
    std::lock_guard<std::mutex> lock(mu_);
    return now_;
  }

  void SleepMicros(std::uint64_t micros) override {
    std::unique_lock<std::mutex> lock(mu_);
    const std::uint64_t deadline = now_ + micros;
    cv_.wait(lock, [&] { return now_ >= deadline; });
  }

  void Advance(std::uint64_t micros) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      now_ += micros;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t now_ = 0;
};

}  // namespace ginja
