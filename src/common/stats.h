// Metrics primitives: counters, gauges, and a log-bucketed histogram.
//
// Benchmarks report the same quantities the paper tables do (PUT counts,
// object sizes, latencies, Tpm-C / Tpm-Total), all collected through this
// header so collection is thread-safe and allocation-free on hot paths.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ginja {

class Counter {
 public:
  void Add(std::uint64_t v = 1) { value_.fetch_add(v, std::memory_order_relaxed); }
  std::uint64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Running mean/min/max/sum with exact totals; thread-safe.
class Meter {
 public:
  void Record(double v);

  std::uint64_t Count() const;
  double Sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// One consistent view of a Histogram, taken under a single lock — use this
// when reporting several quantiles of a live histogram (separate Quantile()
// calls could straddle concurrent Records).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
};

// Histogram with geometric buckets; supports approximate quantiles. Bounds
// cover 1 us .. ~1200 s of latency when values are in microseconds.
class Histogram {
 public:
  Histogram();

  void Record(double v);
  std::uint64_t Count() const;
  double Mean() const;
  // q in [0,1]; returns an approximate value at that quantile.
  double Quantile(double q) const;
  double Max() const;
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  static constexpr int kBuckets = 64;
  static int BucketFor(double v);
  static double BucketUpper(int b);

  mutable std::mutex mu_;
  std::uint64_t counts_[kBuckets] = {};
  std::uint64_t total_ = 0;
  double sum_ = 0;
  double max_ = 0;
};

// Formats n as "1.23k"/"4.5M" style for table output.
std::string HumanCount(double n);
// Formats a byte count as "386kB"/"10.1MB".
std::string HumanBytes(double n);

}  // namespace ginja
