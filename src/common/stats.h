// Metrics primitives: counters, gauges, and a log-bucketed histogram.
//
// Benchmarks report the same quantities the paper tables do (PUT counts,
// object sizes, latencies, Tpm-C / Tpm-Total), all collected through this
// header so collection is thread-safe and allocation-free on hot paths.
//
// Record() is lock-free on Meter and Histogram: bucket counts are relaxed
// atomics and sums are striped across cache-line-sized slots (a thread
// writes the stripe assigned to it round-robin at first use), so the
// tracing layer can hammer these from every pipeline thread without a
// mutex. Readers (Count/Mean/Quantile/Snapshot) fold the stripes; a read
// concurrent with writes sees some prefix of them — each returned snapshot
// is internally consistent (quantiles are computed from exactly the bucket
// counts the snapshot read). Reset() is NOT atomic against concurrent
// Record(); interval readers must serialize resets externally (the
// MetricsRegistry routes ResetAll() through one mutex and a generation
// number for exactly this).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace ginja {

namespace detail {

// Stripe index for the calling thread: assigned round-robin at first use,
// so up to kSumStripes concurrent writers never share a sum slot.
std::size_t ThisThreadStripe();

inline void AtomicAddDouble(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

inline void AtomicMinDouble(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

inline void AtomicMaxDouble(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

class Counter {
 public:
  void Add(std::uint64_t v = 1) { value_.fetch_add(v, std::memory_order_relaxed); }
  std::uint64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Running mean/min/max/sum with exact totals; thread-safe, lock-free
// Record (striped count/sum, CAS min/max).
class Meter {
 public:
  Meter();

  void Record(double v);

  std::uint64_t Count() const;
  double Sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;
  void Reset();  // racy against concurrent Record; see header comment

 private:
  static constexpr int kStripes = 8;
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0};
  };
  Stripe stripes_[kStripes];
  // Sentinels (+inf / -inf) mean "no records"; accessors report 0 then,
  // matching the old mutex-based behaviour.
  std::atomic<double> min_;
  std::atomic<double> max_;
};

// One consistent view of a Histogram: all quantiles are derived from the
// same set of bucket counts, read once — use this when reporting several
// quantiles of a live histogram (separate Quantile() calls could straddle
// concurrent Records).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
};

// Histogram with geometric buckets; supports approximate quantiles. Bounds
// cover 1 us .. ~1200 s of latency when values are in microseconds.
// Record is lock-free: one relaxed fetch_add on the bucket, one striped
// sum add, one CAS max.
class Histogram {
 public:
  Histogram();

  void Record(double v);
  std::uint64_t Count() const;
  double Mean() const;
  // q in [0,1]; returns an approximate value at that quantile.
  double Quantile(double q) const;
  double Max() const;
  HistogramSnapshot Snapshot() const;
  void Reset();  // racy against concurrent Record; see header comment

 private:
  static constexpr int kBuckets = 64;
  static constexpr int kStripes = 8;
  static int BucketFor(double v);
  static double BucketUpper(int b);

  struct alignas(64) Stripe {
    std::atomic<double> sum{0};
  };
  std::atomic<std::uint64_t> counts_[kBuckets];
  Stripe sums_[kStripes];
  std::atomic<double> max_{0};
};

// Formats n as "1.23k"/"4.5M" style for table output.
std::string HumanCount(double n);
// Formats a byte count as "386kB"/"10.1MB".
std::string HumanBytes(double n);

}  // namespace ginja
