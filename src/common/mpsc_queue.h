// Bounded lock-free multi-producer ring (Vyukov-style), used for the
// commit pipeline's sharded submit path.
//
// Each cell carries an atomic sequence number: producers claim a slot with
// one fetch_add on the tail and publish by bumping the cell sequence, so
// concurrent producers never share a cache line beyond the tail counter —
// and with one ring per shard, not even that. The consumer (the pipeline's
// Aggregator) drains with plain TryPop; nothing ever blocks inside the
// queue, so a full ring surfaces as TryPush == false and the caller decides
// how to wait (the submit path yields: a full ring means the consumer is
// already behind, which is exactly the condition Ginja's Safety bound is
// about to convert into back-pressure anyway).
//
// The algorithm is MPMC-safe; we only rely on the MPSC subset.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>

namespace ginja {

template <typename T>
class MpscRing {
 public:
  // `capacity` is rounded up to a power of two (minimum 4).
  explicit MpscRing(std::size_t capacity) {
    std::size_t cap = 4;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  // Moves from `item` only on success; false when the ring is full.
  bool TryPush(T& item) {
    Cell* cell;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->item = std::move(item);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  // Single-consumer pop; false when empty (or when the head slot's producer
  // has claimed but not yet published — the caller simply retries later).
  bool TryPop(T& out) {
    Cell* cell = &cells_[head_ & mask_];
    const std::size_t seq = cell->seq.load(std::memory_order_acquire);
    if (static_cast<std::intptr_t>(seq) -
            static_cast<std::intptr_t>(head_ + 1) !=
        0) {
      return false;
    }
    out = std::move(cell->item);
    cell->seq.store(head_ + mask_ + 1, std::memory_order_release);
    ++head_;
    return true;
  }

  // Approximate occupancy (producers may be mid-publish).
  std::size_t SizeApprox() const {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    return tail >= head_ ? tail - head_ : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T item;
  };

  static constexpr std::size_t kCacheLine = 64;

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};  // producers
  alignas(kCacheLine) std::size_t head_ = 0;              // consumer only
};

}  // namespace ginja
