#include "common/codec/aes128.h"

#include <algorithm>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <emmintrin.h>
#include <wmmintrin.h>
#define GINJA_AESNI_CAPABLE 1
#endif

namespace ginja {

namespace {

bool HasAesNi() {
#ifdef GINJA_AESNI_CAPABLE
  static const bool has = __builtin_cpu_supports("aes");
  return has;
#else
  return false;
#endif
}

// XORs `n` keystream bytes over `data` a uint64 word at a time.
inline void XorWords(std::uint8_t* data, const std::uint8_t* ks, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t d, k;
    std::memcpy(&d, data + i, 8);
    std::memcpy(&k, ks + i, 8);
    d ^= k;
    std::memcpy(data + i, &d, 8);
  }
  for (; i < n; ++i) data[i] ^= ks[i];
}

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr std::uint8_t kRcon[11] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1b, 0x36};

inline std::uint8_t XTime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

}  // namespace

Aes128::Aes128(const Key& key) {
  std::memcpy(round_keys_.data(), key.data(), 16);
  for (int i = 4; i < 44; ++i) {
    std::uint8_t t[4];
    std::memcpy(t, round_keys_.data() + (i - 1) * 4, 4);
    if (i % 4 == 0) {
      // RotWord + SubWord + Rcon
      const std::uint8_t tmp = t[0];
      t[0] = static_cast<std::uint8_t>(kSbox[t[1]] ^ kRcon[i / 4]);
      t[1] = kSbox[t[2]];
      t[2] = kSbox[t[3]];
      t[3] = kSbox[tmp];
    }
    for (int j = 0; j < 4; ++j) {
      round_keys_[i * 4 + j] =
          round_keys_[(i - 4) * 4 + j] ^ t[j];
    }
  }
}

void Aes128::EncryptBlock(std::uint8_t s[16]) const {
  auto add_round_key = [&](int round) {
    for (int i = 0; i < 16; ++i) s[i] ^= round_keys_[round * 16 + i];
  };
  auto sub_bytes = [&] {
    for (int i = 0; i < 16; ++i) s[i] = kSbox[s[i]];
  };
  auto shift_rows = [&] {
    // State is column-major: s[col*4 + row].
    std::uint8_t t;
    // row 1: rotate left by 1
    t = s[1]; s[1] = s[5]; s[5] = s[9]; s[9] = s[13]; s[13] = t;
    // row 2: rotate left by 2
    std::swap(s[2], s[10]);
    std::swap(s[6], s[14]);
    // row 3: rotate left by 3
    t = s[15]; s[15] = s[11]; s[11] = s[7]; s[7] = s[3]; s[3] = t;
  };
  auto mix_columns = [&] {
    for (int c = 0; c < 4; ++c) {
      std::uint8_t* col = s + c * 4;
      const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      const std::uint8_t all = a0 ^ a1 ^ a2 ^ a3;
      col[0] = static_cast<std::uint8_t>(a0 ^ all ^ XTime(static_cast<std::uint8_t>(a0 ^ a1)));
      col[1] = static_cast<std::uint8_t>(a1 ^ all ^ XTime(static_cast<std::uint8_t>(a1 ^ a2)));
      col[2] = static_cast<std::uint8_t>(a2 ^ all ^ XTime(static_cast<std::uint8_t>(a2 ^ a3)));
      col[3] = static_cast<std::uint8_t>(a3 ^ all ^ XTime(static_cast<std::uint8_t>(a3 ^ a0)));
    }
  };

  add_round_key(0);
  for (int round = 1; round < 10; ++round) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(10);
}

Bytes Aes128::Ctr(ByteView data, std::uint64_t nonce) const {
  Bytes out(data.begin(), data.end());
  CtrInPlace(out.data(), out.size(), nonce, 0);
  return out;
}

void Aes128::CtrInPlace(std::uint8_t* data, std::size_t len,
                        std::uint64_t nonce, std::uint64_t counter) const {
#ifdef GINJA_AESNI_CAPABLE
  if (HasAesNi()) {
    CtrInPlaceAesni(data, len, nonce, counter);
    return;
  }
#endif
  CtrInPlacePortable(data, len, nonce, counter);
}

void Aes128::CtrInPlacePortable(std::uint8_t* data, std::size_t len,
                                std::uint64_t nonce,
                                std::uint64_t counter) const {
  // Generate the keystream in batches so the counter-block setup and the XOR
  // both run over long contiguous runs instead of per 16-byte block.
  constexpr std::size_t kBatchBlocks = 64;
  alignas(16) std::uint8_t ks[kBatchBlocks * 16];
  std::size_t offset = 0;
  while (offset < len) {
    const std::size_t blocks =
        std::min(kBatchBlocks, (len - offset + 15) / 16);
    for (std::size_t b = 0; b < blocks; ++b, ++counter) {
      std::uint8_t* block = ks + b * 16;
      for (int i = 0; i < 8; ++i) {
        block[i] = static_cast<std::uint8_t>(nonce >> (8 * i));
        block[8 + i] = static_cast<std::uint8_t>(counter >> (8 * i));
      }
      EncryptBlock(block);
    }
    const std::size_t n = std::min(len - offset, blocks * 16);
    XorWords(data + offset, ks, n);
    offset += n;
  }
}

#ifdef GINJA_AESNI_CAPABLE

namespace {
// Free function rather than a lambda: GCC lambdas do not inherit the
// enclosing function's target("aes") attribute.
__attribute__((target("aes,sse2"))) inline __m128i AesniEncrypt(
    __m128i b, const __m128i rk[11]) {
  b = _mm_xor_si128(b, rk[0]);
  for (int r = 1; r < 10; ++r) b = _mm_aesenc_si128(b, rk[r]);
  return _mm_aesenclast_si128(b, rk[10]);
}
}  // namespace

__attribute__((target("aes,sse2"))) void Aes128::CtrInPlaceAesni(
    std::uint8_t* data, std::size_t len, std::uint64_t nonce,
    std::uint64_t counter) const {
  __m128i rk[11];
  for (int r = 0; r < 11; ++r) {
    rk[r] = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(round_keys_.data() + r * 16));
  }
  auto make_counter = [&](std::uint64_t c) {
    return _mm_set_epi64x(static_cast<long long>(c),
                          static_cast<long long>(nonce));
  };

  std::size_t offset = 0;
  // Four independent counter blocks per pass keep the AES units pipelined.
  while (offset + 64 <= len) {
    __m128i k0 = _mm_xor_si128(make_counter(counter + 0), rk[0]);
    __m128i k1 = _mm_xor_si128(make_counter(counter + 1), rk[0]);
    __m128i k2 = _mm_xor_si128(make_counter(counter + 2), rk[0]);
    __m128i k3 = _mm_xor_si128(make_counter(counter + 3), rk[0]);
    for (int r = 1; r < 10; ++r) {
      k0 = _mm_aesenc_si128(k0, rk[r]);
      k1 = _mm_aesenc_si128(k1, rk[r]);
      k2 = _mm_aesenc_si128(k2, rk[r]);
      k3 = _mm_aesenc_si128(k3, rk[r]);
    }
    k0 = _mm_aesenclast_si128(k0, rk[10]);
    k1 = _mm_aesenclast_si128(k1, rk[10]);
    k2 = _mm_aesenclast_si128(k2, rk[10]);
    k3 = _mm_aesenclast_si128(k3, rk[10]);
    __m128i* p = reinterpret_cast<__m128i*>(data + offset);
    _mm_storeu_si128(p + 0, _mm_xor_si128(_mm_loadu_si128(p + 0), k0));
    _mm_storeu_si128(p + 1, _mm_xor_si128(_mm_loadu_si128(p + 1), k1));
    _mm_storeu_si128(p + 2, _mm_xor_si128(_mm_loadu_si128(p + 2), k2));
    _mm_storeu_si128(p + 3, _mm_xor_si128(_mm_loadu_si128(p + 3), k3));
    counter += 4;
    offset += 64;
  }
  while (offset < len) {
    alignas(16) std::uint8_t ks[16];
    _mm_store_si128(reinterpret_cast<__m128i*>(ks),
                    AesniEncrypt(make_counter(counter++), rk));
    const std::size_t n = std::min<std::size_t>(16, len - offset);
    XorWords(data + offset, ks, n);
    offset += n;
  }
}

#endif  // GINJA_AESNI_CAPABLE

}  // namespace ginja
