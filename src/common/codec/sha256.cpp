#include "common/codec/sha256.h"

#include <cstring>

namespace ginja {

namespace {

constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline std::uint32_t Rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

}  // namespace

Sha256::Sha256() { Reset(); }

void Sha256::Reset() {
  h_[0] = 0x6a09e667;
  h_[1] = 0xbb67ae85;
  h_[2] = 0x3c6ef372;
  h_[3] = 0xa54ff53a;
  h_[4] = 0x510e527f;
  h_[5] = 0x9b05688c;
  h_[6] = 0x1f83d9ab;
  h_[7] = 0x5be0cd19;
  buffered_ = 0;
  total_bytes_ = 0;
}

void Sha256::ProcessBlock(const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int t = 0; t < 16; ++t) {
    w[t] = (static_cast<std::uint32_t>(block[t * 4]) << 24) |
           (static_cast<std::uint32_t>(block[t * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[t * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[t * 4 + 3]);
  }
  for (int t = 16; t < 64; ++t) {
    const std::uint32_t s0 =
        Rotr(w[t - 15], 7) ^ Rotr(w[t - 15], 18) ^ (w[t - 15] >> 3);
    const std::uint32_t s1 =
        Rotr(w[t - 2], 17) ^ Rotr(w[t - 2], 19) ^ (w[t - 2] >> 10);
    w[t] = w[t - 16] + s0 + w[t - 7] + s1;
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];
  std::uint32_t e = h_[4], f = h_[5], g = h_[6], h = h_[7];
  for (int t = 0; t < 64; ++t) {
    const std::uint32_t sigma1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ ((~e) & g);
    const std::uint32_t temp1 = h + sigma1 + ch + kK[t] + w[t];
    const std::uint32_t sigma0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t temp2 = sigma0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
  h_[5] += f;
  h_[6] += g;
  h_[7] += h;
}

void Sha256::Update(ByteView data) {
  total_bytes_ += data.size();
  std::size_t pos = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(64 - buffered_, data.size());
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    pos = take;
    if (buffered_ == 64) {
      ProcessBlock(buffer_);
      buffered_ = 0;
    }
  }
  while (pos + 64 <= data.size()) {
    ProcessBlock(data.data() + pos);
    pos += 64;
  }
  if (pos < data.size()) {
    std::memcpy(buffer_, data.data() + pos, data.size() - pos);
    buffered_ = data.size() - pos;
  }
}

Sha256::Digest Sha256::Finish() {
  const std::uint64_t bit_len = total_bytes_ * 8;
  const std::uint8_t pad = 0x80;
  Update(ByteView(&pad, 1));
  const std::uint8_t zero = 0;
  while (buffered_ != 56) Update(ByteView(&zero, 1));
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
  }
  Update(ByteView(len_be, 8));

  Digest out{};
  for (int i = 0; i < 8; ++i) {
    out[i * 4] = static_cast<std::uint8_t>(h_[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return out;
}

Sha256::Digest HmacSha256(ByteView key, ByteView data) {
  constexpr std::size_t kBlock = 64;
  std::uint8_t key_block[kBlock] = {};
  if (key.size() > kBlock) {
    const auto d = Sha256::Hash(key);
    std::memcpy(key_block, d.data(), d.size());
  } else {
    std::memcpy(key_block, key.data(), key.size());
  }
  std::uint8_t ipad[kBlock], opad[kBlock];
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5C;
  }
  Sha256 inner;
  inner.Update(ByteView(ipad, kBlock));
  inner.Update(data);
  const auto inner_digest = inner.Finish();
  Sha256 outer;
  outer.Update(ByteView(opad, kBlock));
  outer.Update(ByteView(inner_digest.data(), inner_digest.size()));
  return outer.Finish();
}

}  // namespace ginja
