// AES-128 (FIPS 197) implemented from scratch, with CTR-mode streaming.
//
// The paper's prototype encrypts cloud objects "using AES with 128-bit
// keys" (§6). CTR mode keeps ciphertext length equal to plaintext length
// (important for the cost model: encryption must not inflate storage) and
// makes encryption and decryption the same operation. The key is held only
// in memory, mirroring the paper's key-handling discussion (§5.4).
//
// The CTR hot path XORs the keystream over the data in place: the keystream
// is generated in multi-block batches per key-schedule pass and applied with
// uint64 word XORs, and on x86 with AES-NI the batch is produced four blocks
// at a time in hardware (runtime-detected; the portable path stays as the
// fallback). CTR is seekable: a `counter` start lets independent chunks of
// one object be encrypted concurrently without keystream overlap.
//
// Validated against the FIPS-197 Appendix C vector in the codec tests.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace ginja {

class Aes128 {
 public:
  using Key = std::array<std::uint8_t, 16>;
  using Block = std::array<std::uint8_t, 16>;

  explicit Aes128(const Key& key);

  // Encrypts one 16-byte block in place (the raw cipher; ECB primitive).
  void EncryptBlock(std::uint8_t block[16]) const;

  // CTR mode: XORs `data` with the keystream generated from `nonce`.
  // Encrypt and decrypt are identical. nonce occupies the first 8 bytes of
  // the counter block; the block counter the last 8.
  Bytes Ctr(ByteView data, std::uint64_t nonce) const;

  // In-place CTR starting at block counter `counter`: equivalent to XORing
  // with keystream blocks [counter, counter + ceil(len/16)). The allocation-
  // free form used on the envelope hot path; `counter` offsets give chunked
  // objects disjoint keystream ranges.
  void CtrInPlace(std::uint8_t* data, std::size_t len, std::uint64_t nonce,
                  std::uint64_t counter = 0) const;

 private:
  void CtrInPlacePortable(std::uint8_t* data, std::size_t len,
                          std::uint64_t nonce, std::uint64_t counter) const;
#if defined(__x86_64__) || defined(__i386__)
  void CtrInPlaceAesni(std::uint8_t* data, std::size_t len,
                       std::uint64_t nonce, std::uint64_t counter) const;
#endif

  // 11 round keys of 16 bytes each.
  std::array<std::uint8_t, 176> round_keys_;
};

}  // namespace ginja
