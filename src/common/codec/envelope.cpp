#include "common/codec/envelope.h"

#include <cstring>

#include "common/codec/lzss.h"

namespace ginja {

namespace {
constexpr std::uint32_t kMagic = 0x314A4E47u;  // "GNJ1" little-endian
constexpr std::uint8_t kFlagCompressed = 0x01;
constexpr std::uint8_t kFlagEncrypted = 0x02;
}  // namespace

Envelope::Envelope(EnvelopeOptions options)
    : options_(std::move(options)),
      enc_key_(DeriveKey(options_.password, "ginja-enc")),
      mac_key_(DeriveKey(options_.password, "ginja-mac")) {}

Bytes Envelope::Encode(ByteView payload, std::uint64_t nonce) const {
  Bytes processed;
  std::uint8_t flags = 0;

  if (options_.compress) {
    stats_.bytes_compressed.Add(payload.size());
    processed = Lzss::Compress(payload);
    // Incompressible payloads can expand; store raw in that case so the
    // envelope never costs more storage than the plaintext would.
    if (processed.size() < payload.size()) {
      flags |= kFlagCompressed;
    } else {
      processed.assign(payload.begin(), payload.end());
    }
  } else {
    processed.assign(payload.begin(), payload.end());
  }

  if (options_.encrypt) {
    stats_.bytes_encrypted.Add(processed.size());
    Aes128 aes(enc_key_);
    processed = aes.Ctr(View(processed), nonce);
    flags |= kFlagEncrypted;
  }

  stats_.bytes_macced.Add(processed.size());
  const MacTag mac = HmacSha1(ByteView(mac_key_.data(), mac_key_.size()),
                              View(processed));

  Bytes out;
  out.reserve(kHeaderSize + processed.size());
  PutU32(out, kMagic);
  out.push_back(flags);
  PutU64(out, options_.encrypt ? nonce : 0);
  Append(out, ByteView(mac.data(), mac.size()));
  Append(out, View(processed));
  return out;
}

Result<Bytes> Envelope::Decode(ByteView enveloped) const {
  if (enveloped.size() < kHeaderSize) {
    return Status::Corruption("envelope shorter than header");
  }
  if (GetU32(enveloped.data()) != kMagic) {
    return Status::Corruption("bad envelope magic");
  }
  const std::uint8_t flags = enveloped[4];
  const std::uint64_t nonce = GetU64(enveloped.data() + 5);

  MacTag stored_mac;
  std::memcpy(stored_mac.data(), enveloped.data() + 13, stored_mac.size());
  const ByteView payload = enveloped.subspan(kHeaderSize);

  stats_.bytes_macced.Add(payload.size());
  const MacTag actual = HmacSha1(ByteView(mac_key_.data(), mac_key_.size()), payload);
  if (!MacEqual(stored_mac, actual)) {
    return Status::Corruption("object MAC mismatch");
  }

  Bytes processed(payload.begin(), payload.end());
  if (flags & kFlagEncrypted) {
    stats_.bytes_encrypted.Add(processed.size());
    Aes128 aes(enc_key_);
    processed = aes.Ctr(View(processed), nonce);
  }
  if (flags & kFlagCompressed) {
    auto plain = Lzss::Decompress(View(processed));
    if (!plain) return Status::Corruption("LZSS stream corrupt");
    stats_.bytes_decompressed.Add(plain->size());
    return std::move(*plain);
  }
  return processed;
}

}  // namespace ginja
