#include "common/codec/envelope.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "common/codec/codec_pool.h"
#include "common/codec/lzss.h"

namespace ginja {

namespace {
constexpr std::uint32_t kMagicV1 = 0x314A4E47u;  // "GNJ1" little-endian
constexpr std::uint32_t kMagicV2 = 0x324A4E47u;  // "GNJ2" little-endian
constexpr std::uint32_t kMagicV3 = 0x334A4E47u;  // "GNJ3" little-endian
constexpr std::uint8_t kFlagCompressed = 0x01;
constexpr std::uint8_t kFlagEncrypted = 0x02;

// CTR blocks reserved per v2 chunk: chunk i starts its keystream at counter
// i * BlocksPerChunk. enc_len never exceeds chunk_bytes (raw-store
// fallback), so chunk keystream ranges cannot overlap.
inline std::uint64_t BlocksPerChunk(std::size_t chunk_bytes) {
  return (static_cast<std::uint64_t>(chunk_bytes) + 15) / 16;
}
}  // namespace

Envelope::Envelope(EnvelopeOptions options)
    : options_(std::move(options)),
      enc_key_(DeriveKey(options_.password, "ginja-enc")),
      mac_key_(DeriveKey(options_.password, "ginja-mac")),
      enc_aes_(enc_key_) {}

Bytes Envelope::Encode(ByteView payload, std::uint64_t nonce) const {
  Bytes out;
  EncodeInto(OnePiece(payload), nonce, out);
  return out;
}

void Envelope::EncodeInto(const PayloadView& payload, std::uint64_t nonce,
                          Bytes& out) const {
  EncodeIntoWith(payload, nonce, enc_aes_, out);
}

void Envelope::EncodeIntoWith(const PayloadView& payload, std::uint64_t nonce,
                              const Aes128& aes, Bytes& out) const {
  if (payload.size() > options_.parallel_encode_threshold) {
    EncodeV2Into(payload, nonce, aes, out);
  } else {
    EncodeV1Into(payload, nonce, aes, out);
  }
}

Aes128 Envelope::DeriveObjectAes(ByteView key_tweak) const {
  const MacTag prf =
      HmacSha1(ByteView(enc_key_.data(), enc_key_.size()), key_tweak);
  Aes128::Key key;
  std::memcpy(key.data(), prf.data(), key.size());
  return Aes128(key);
}

Bytes Envelope::EncodeDerived(ByteView payload, std::uint64_t nonce,
                              ByteView key_tweak) const {
  if (!options_.encrypt) return Encode(payload, nonce);
  Bytes out;
  EncodeIntoWith(OnePiece(payload), nonce, DeriveObjectAes(key_tweak), out);
  return out;
}

Result<Bytes> Envelope::DecodeDerived(ByteView enveloped,
                                      ByteView key_tweak) const {
  if (!options_.encrypt) return Decode(enveloped);
  if (enveloped.size() >= kStreamPrologueSize &&
      GetU32(enveloped.data()) == kMagicV3) {
    // Chunks are never stream containers; recursing with a derived key
    // would mix key domains across segments.
    return Status::Corruption("derived-key object cannot be a v3 stream");
  }
  return DecodeWith(enveloped, DeriveObjectAes(key_tweak));
}

ByteView Envelope::GatherRange(const PayloadView& payload, std::size_t begin,
                               std::size_t len, Bytes& scratch) const {
  if (len == 0) return ByteView();
  std::size_t off = 0;
  std::size_t first = 0;
  for (; first < payload.pieces.size(); ++first) {
    const ByteView piece = payload.pieces[first];
    if (begin < off + piece.size()) {
      const std::size_t within = begin - off;
      if (piece.size() - within >= len) {
        return piece.subspan(within, len);  // whole range in one piece
      }
      break;
    }
    off += piece.size();
  }

  scratch.clear();
  scratch.reserve(len);
  stats_.bytes_copied.Add(len);
  std::size_t remaining = len;
  std::size_t pos = begin;
  for (std::size_t i = first; i < payload.pieces.size() && remaining > 0; ++i) {
    const ByteView piece = payload.pieces[i];
    if (pos >= off + piece.size()) {
      off += piece.size();
      continue;
    }
    const std::size_t within = pos - off;
    const std::size_t take = std::min(piece.size() - within, remaining);
    Append(scratch, piece.subspan(within, take));
    pos += take;
    remaining -= take;
    off += piece.size();
  }
  return View(scratch);
}

void Envelope::SealHeader(std::uint32_t magic, std::uint8_t flags,
                          std::uint64_t nonce, Bytes& out) const {
  const ByteView body = ByteView(out).subspan(kHeaderSize);
  stats_.bytes_macced.Add(body.size());
  const MacTag mac =
      HmacSha1(ByteView(mac_key_.data(), mac_key_.size()), body);

  std::uint8_t* h = out.data();
  for (int i = 0; i < 4; ++i) h[i] = static_cast<std::uint8_t>(magic >> (8 * i));
  h[4] = flags;
  for (int i = 0; i < 8; ++i) h[5 + i] = static_cast<std::uint8_t>(nonce >> (8 * i));
  std::memcpy(h + 13, mac.data(), mac.size());
}

void Envelope::EncodeV1Into(const PayloadView& payload, std::uint64_t nonce,
                            const Aes128& aes, Bytes& out) const {
  out.clear();
  out.reserve(kHeaderSize + payload.size() + 16);
  out.resize(kHeaderSize);  // header patched last, once the body is final

  std::uint8_t flags = 0;
  if (options_.compress) {
    stats_.bytes_compressed.Add(payload.size());
    Bytes scratch;
    const ByteView whole = GatherRange(payload, 0, payload.size(), scratch);
    Lzss::CompressAppend(whole, out);
    if (out.size() - kHeaderSize < payload.size()) {
      flags |= kFlagCompressed;
    } else {
      // Incompressible: store raw so the envelope never costs more storage
      // than the plaintext would.
      out.resize(kHeaderSize);
      Append(out, whole);
    }
  } else {
    for (ByteView piece : payload.pieces) Append(out, piece);
  }

  if (options_.encrypt) {
    stats_.bytes_encrypted.Add(out.size() - kHeaderSize);
    aes.CtrInPlace(out.data() + kHeaderSize, out.size() - kHeaderSize, nonce);
    flags |= kFlagEncrypted;
  }

  SealHeader(kMagicV1, flags, options_.encrypt ? nonce : 0, out);
}

void Envelope::EncodeV2Into(const PayloadView& payload, std::uint64_t nonce,
                            const Aes128& aes, Bytes& out) const {
  const std::size_t chunk_bytes = options_.encode_chunk_bytes;
  const std::size_t total = payload.size();
  const std::size_t nchunks = (total + chunk_bytes - 1) / chunk_bytes;
  const std::uint64_t blocks_per_chunk = BlocksPerChunk(chunk_bytes);

  std::uint8_t flags = 0;
  if (options_.compress) flags |= kFlagCompressed;
  if (options_.encrypt) flags |= kFlagEncrypted;

  out.clear();
  out.reserve(kHeaderSize + 24 + total + nchunks * 8);
  out.resize(kHeaderSize);
  PutVarint(out, total);
  PutVarint(out, chunk_bytes);

  if (options_.compress) stats_.bytes_compressed.Add(total);
  if (options_.encrypt) stats_.bytes_encrypted.Add(total);

  // Encodes logical chunk i (compress + encrypt) appending to `dst`, whose
  // current tail must start at the chunk body position. Returns the token.
  auto encode_chunk = [&](std::size_t i, Bytes& dst, Bytes& scratch) {
    const std::size_t begin = i * chunk_bytes;
    const std::size_t len = std::min(chunk_bytes, total - begin);
    const ByteView chunk = GatherRange(payload, begin, len, scratch);
    const std::size_t body_pos = dst.size();

    bool compressed = false;
    if (options_.compress) {
      Lzss::CompressAppend(chunk, dst);
      if (dst.size() - body_pos < len) {
        compressed = true;
      } else {
        dst.resize(body_pos);  // raw-store: keeps enc_len <= chunk_bytes
      }
    }
    if (!compressed) Append(dst, chunk);

    const std::size_t enc_len = dst.size() - body_pos;
    if (options_.encrypt) {
      aes.CtrInPlace(dst.data() + body_pos, enc_len, nonce,
                     static_cast<std::uint64_t>(i) * blocks_per_chunk);
    }
    return static_cast<std::uint32_t>((enc_len << 1) |
                                      (compressed ? 1u : 0u));
  };

  const bool parallel = pool_ && pool_->threads() > 1 && nchunks > 1;
  if (!parallel) {
    Bytes scratch;
    for (std::size_t i = 0; i < nchunks; ++i) {
      const std::size_t tok_pos = out.size();
      out.resize(tok_pos + 4);  // token patched once enc_len is known
      const std::uint32_t token = encode_chunk(i, out, scratch);
      for (int b = 0; b < 4; ++b) {
        out[tok_pos + b] = static_cast<std::uint8_t>(token >> (8 * b));
      }
    }
  } else {
    // Chunks encode concurrently into per-chunk buffers, then concatenate.
    // Identical bytes to the serial path: each chunk's LZSS stream and CTR
    // counter range depend only on (payload, chunk index).
    std::vector<Bytes> bodies(nchunks);
    std::vector<std::uint32_t> tokens(nchunks);
    pool_->ParallelFor(nchunks, [&](std::size_t i) {
      Bytes scratch;
      tokens[i] = encode_chunk(i, bodies[i], scratch);
    });
    for (std::size_t i = 0; i < nchunks; ++i) {
      PutU32(out, tokens[i]);
      Append(out, View(bodies[i]));
    }
  }

  SealHeader(kMagicV2, flags, options_.encrypt ? nonce : 0, out);
}

Bytes Envelope::StreamPrologue() {
  Bytes out;
  out.reserve(kStreamPrologueSize);
  PutU32(out, kMagicV3);
  out.push_back(0);  // flags, reserved
  return out;
}

void Envelope::AppendStreamSegment(Bytes& out, ByteView enveloped_segment) {
  PutU32(out, static_cast<std::uint32_t>(enveloped_segment.size()));
  Append(out, enveloped_segment);
}

Result<Bytes> Envelope::Decode(ByteView enveloped) const {
  // The v3 container has no header MAC of its own — integrity lives in the
  // per-segment envelopes — so it branches off before the MAC logic.
  if (enveloped.size() >= kStreamPrologueSize &&
      GetU32(enveloped.data()) == kMagicV3) {
    return DecodeV3(enveloped);
  }
  return DecodeWith(enveloped, enc_aes_);
}

Result<Bytes> Envelope::DecodeWith(ByteView enveloped,
                                   const Aes128& aes) const {
  if (enveloped.size() < kHeaderSize) {
    return Status::Corruption("envelope shorter than header");
  }
  const std::uint32_t magic = GetU32(enveloped.data());
  if (magic != kMagicV1 && magic != kMagicV2) {
    return Status::Corruption("bad envelope magic");
  }
  const std::uint8_t flags = enveloped[4];
  const std::uint64_t nonce = GetU64(enveloped.data() + 5);

  MacTag stored_mac;
  std::memcpy(stored_mac.data(), enveloped.data() + 13, stored_mac.size());
  const ByteView body = enveloped.subspan(kHeaderSize);

  stats_.bytes_macced.Add(body.size());
  const MacTag actual =
      HmacSha1(ByteView(mac_key_.data(), mac_key_.size()), body);
  if (!MacEqual(stored_mac, actual)) {
    return Status::Corruption("object MAC mismatch");
  }

  return magic == kMagicV1 ? DecodeV1(flags, nonce, aes, body)
                           : DecodeV2(flags, nonce, aes, body);
}

Result<Bytes> Envelope::DecodeV3(ByteView enveloped) const {
  // A torn stream — the final segment's frame or bytes cut short — is
  // Corruption: recovery treats the object like any other undecodable WAL
  // tail (truncate there). Every complete segment still MAC-verifies on
  // its own, so corruption inside an earlier segment is caught too.
  std::size_t pos = kStreamPrologueSize;
  Bytes out;
  while (pos < enveloped.size()) {
    if (pos + 4 > enveloped.size()) {
      return Status::Corruption("v3 segment frame truncated");
    }
    const std::uint32_t seg_len = GetU32(enveloped.data() + pos);
    pos += 4;
    if (seg_len == 0 || pos + seg_len > enveloped.size()) {
      return Status::Corruption("v3 segment truncated");
    }
    auto payload = Decode(enveloped.subspan(pos, seg_len));
    if (!payload.ok()) return payload.status();
    Append(out, View(*payload));
    pos += seg_len;
  }
  return out;
}

Result<Bytes> Envelope::DecodeV1(std::uint8_t flags, std::uint64_t nonce,
                                 const Aes128& aes, ByteView body) const {
  Bytes work;
  if (flags & kFlagEncrypted) {
    work.assign(body.begin(), body.end());
    stats_.bytes_encrypted.Add(work.size());
    aes.CtrInPlace(work.data(), work.size(), nonce);  // decrypt in place
    body = View(work);
  }
  if (flags & kFlagCompressed) {
    auto plain = Lzss::Decompress(body);
    if (!plain) return Status::Corruption("LZSS stream corrupt");
    stats_.bytes_decompressed.Add(plain->size());
    return std::move(*plain);
  }
  if (flags & kFlagEncrypted) return work;
  return Bytes(body.begin(), body.end());  // the single copy: plain payload
}

Result<Bytes> Envelope::DecodeV2(std::uint8_t flags, std::uint64_t nonce,
                                 const Aes128& aes, ByteView body) const {
  std::size_t pos = 0;
  const auto total = GetVarint(body, pos);
  const auto chunk_bytes = GetVarint(body, pos);
  if (!total || !chunk_bytes || *chunk_bytes == 0) {
    return Status::Corruption("v2 envelope header truncated");
  }
  const std::uint64_t blocks_per_chunk = BlocksPerChunk(*chunk_bytes);

  // One working copy of the chunk stream so decryption runs in place.
  Bytes work(body.begin() + static_cast<std::ptrdiff_t>(pos), body.end());
  std::size_t wpos = 0;

  if (!pool_ || pool_->threads() <= 1) {
    Bytes out;
    out.reserve(*total);
    std::size_t chunk = 0;
    while (out.size() < *total) {
      if (wpos + 4 > work.size()) {
        return Status::Corruption("v2 chunk token truncated");
      }
      const std::uint32_t token = GetU32(work.data() + wpos);
      wpos += 4;
      const std::size_t enc_len = token >> 1;
      const bool compressed = (token & 1u) != 0;
      const std::size_t expect =
          std::min<std::size_t>(*chunk_bytes, *total - out.size());
      if (enc_len > *chunk_bytes || wpos + enc_len > work.size()) {
        return Status::Corruption("v2 chunk length out of range");
      }

      std::uint8_t* chunk_data = work.data() + wpos;
      if (flags & kFlagEncrypted) {
        stats_.bytes_encrypted.Add(enc_len);
        aes.CtrInPlace(chunk_data, enc_len, nonce,
                       static_cast<std::uint64_t>(chunk) * blocks_per_chunk);
      }
      const std::size_t before = out.size();
      if (compressed) {
        if (!Lzss::DecompressAppend(ByteView(chunk_data, enc_len), out)) {
          return Status::Corruption("v2 chunk LZSS stream corrupt");
        }
        stats_.bytes_decompressed.Add(out.size() - before);
      } else {
        Append(out, ByteView(chunk_data, enc_len));
      }
      if (out.size() - before != expect) {
        return Status::Corruption("v2 chunk size mismatch");
      }
      wpos += enc_len;
      ++chunk;
    }
    if (wpos != work.size() || out.size() != *total) {
      return Status::Corruption("v2 envelope trailing garbage");
    }
    return out;
  }

  // Parallel path: the token table is scanned serially (it is a few bytes
  // per chunk and each token's position depends on the previous chunk's
  // enc_len), then chunks decrypt/decompress concurrently, each writing its
  // fixed [i*chunk_bytes, i*chunk_bytes+expect) slice of the output —
  // disjoint slices, disjoint CTR counter ranges, no coordination needed.
  struct ChunkRef {
    std::size_t body_off = 0;
    std::size_t enc_len = 0;
    bool compressed = false;
  };
  std::vector<ChunkRef> chunks;
  std::size_t logical = 0;
  std::size_t enc_total = 0;
  while (logical < *total) {
    if (wpos + 4 > work.size()) {
      return Status::Corruption("v2 chunk token truncated");
    }
    const std::uint32_t token = GetU32(work.data() + wpos);
    wpos += 4;
    const std::size_t enc_len = token >> 1;
    if (enc_len > *chunk_bytes || wpos + enc_len > work.size()) {
      return Status::Corruption("v2 chunk length out of range");
    }
    chunks.push_back({wpos, enc_len, (token & 1u) != 0});
    wpos += enc_len;
    enc_total += enc_len;
    logical += std::min<std::size_t>(*chunk_bytes, *total - logical);
  }
  if (wpos != work.size()) {
    return Status::Corruption("v2 envelope trailing garbage");
  }
  if (flags & kFlagEncrypted) stats_.bytes_encrypted.Add(enc_total);

  Bytes out(*total);
  enum : int { kOk = 0, kLzssCorrupt = 1, kSizeMismatch = 2 };
  std::atomic<int> error{kOk};
  std::atomic<std::uint64_t> decompressed{0};
  pool_->ParallelFor(chunks.size(), [&](std::size_t i) {
    if (error.load(std::memory_order_relaxed) != kOk) return;
    const ChunkRef& c = chunks[i];
    const std::size_t begin = i * *chunk_bytes;
    const std::size_t expect =
        std::min<std::size_t>(*chunk_bytes, *total - begin);
    std::uint8_t* chunk_data = work.data() + c.body_off;
    if (flags & kFlagEncrypted) {
      aes.CtrInPlace(chunk_data, c.enc_len, nonce,
                     static_cast<std::uint64_t>(i) * blocks_per_chunk);
    }
    if (c.compressed) {
      Bytes plain;
      plain.reserve(expect);
      if (!Lzss::DecompressAppend(ByteView(chunk_data, c.enc_len), plain)) {
        error.store(kLzssCorrupt, std::memory_order_relaxed);
        return;
      }
      if (plain.size() != expect) {
        error.store(kSizeMismatch, std::memory_order_relaxed);
        return;
      }
      decompressed.fetch_add(expect, std::memory_order_relaxed);
      std::memcpy(out.data() + begin, plain.data(), expect);
    } else {
      if (c.enc_len != expect) {
        error.store(kSizeMismatch, std::memory_order_relaxed);
        return;
      }
      std::memcpy(out.data() + begin, chunk_data, expect);
    }
  });
  stats_.bytes_decompressed.Add(decompressed.load(std::memory_order_relaxed));
  switch (error.load(std::memory_order_relaxed)) {
    case kLzssCorrupt:
      return Status::Corruption("v2 chunk LZSS stream corrupt");
    case kSizeMismatch:
      return Status::Corruption("v2 chunk size mismatch");
    default:
      return out;
  }
}

}  // namespace ginja
