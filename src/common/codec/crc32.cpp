#include "common/codec/crc32.h"

#include <array>

namespace ginja {

namespace {
std::array<std::uint32_t, 256> BuildTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}
}  // namespace

std::uint32_t Crc32(ByteView data, std::uint32_t seed) {
  static const auto kTable = BuildTable();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::uint8_t b : data) {
    c = kTable[(c ^ b) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace ginja
