// HMAC-SHA1 (RFC 2104) built on the from-scratch SHA-1.
//
// Ginja stores a MAC with every cloud object (§5.4). The MAC key is derived
// from a user password when encryption is enabled, otherwise from a default
// configuration string — both reproduced here via a PBKDF-like iterated
// hash in DeriveKey().
#pragma once

#include <array>
#include <string_view>

#include "common/bytes.h"
#include "common/codec/sha1.h"

namespace ginja {

using MacTag = Sha1::Digest;  // 20 bytes

// Computes HMAC-SHA1(key, data).
MacTag HmacSha1(ByteView key, ByteView data);

// Constant-time tag comparison.
bool MacEqual(const MacTag& a, const MacTag& b);

// Derives a fixed-size key from a password/config string by iterated
// salted hashing (stand-in for a real KDF; shape-preserving per DESIGN.md).
std::array<std::uint8_t, 16> DeriveKey(std::string_view password,
                                       std::string_view salt,
                                       int iterations = 4096);

}  // namespace ginja
