#include "common/codec/codec_pool.h"

#include <algorithm>

namespace ginja {

CodecPool::CodecPool(int threads) {
  const int spawn = std::max(0, threads - 1);
  workers_.reserve(static_cast<std::size_t>(spawn));
  for (int i = 0; i < spawn; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

CodecPool::~CodecPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void CodecPool::ParallelFor(std::size_t n,
                            const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::lock_guard<std::mutex> job_lock(job_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    job_n_ = n;
    next_.store(0, std::memory_order_relaxed);
    ++job_seq_;
  }
  work_cv_.notify_all();

  // The caller is a full participant: it drains indices alongside the
  // workers, then waits for any worker still inside its last index.
  RunIndices();

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return active_ == 0; });
  fn_ = nullptr;
  job_n_ = 0;
}

void CodecPool::WorkerLoop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (fn_ != nullptr && job_seq_ != seen);
      });
      if (stop_) return;
      seen = job_seq_;
      ++active_;
    }
    RunIndices();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (active_ == 0) done_cv_.notify_all();
    }
  }
}

void CodecPool::RunIndices() {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= job_n_) return;
    (*fn_)(i);
  }
}

}  // namespace ginja
