// LZSS compression implemented from scratch.
//
// Stand-in for the paper's "ZLIB configured for fastest operation" (§6):
// a greedy LZ77 variant with a hash-chain match finder, emitting
// (literal | back-reference) tokens with varint lengths. On WAL pages full
// of TPC-C rows it achieves roughly the paper's compression rate (~1.4×).
//
// Format: [varint original_size] then a token stream. Each control byte
// holds 8 flags (LSB first); flag=0 → literal byte, flag=1 → match:
// varint distance (>=1), varint length (>= kMinMatch).
#pragma once

#include <optional>

#include "common/bytes.h"

namespace ginja {

class Lzss {
 public:
  static constexpr std::size_t kMinMatch = 4;
  static constexpr std::size_t kMaxMatch = 255 + kMinMatch;
  static constexpr std::size_t kWindow = 1 << 16;

  static Bytes Compress(ByteView input);

  // Appends the compressed stream to `out` without allocating an output
  // buffer of its own — the envelope encoder compresses straight into the
  // upload buffer it has already reserved.
  static void CompressAppend(ByteView input, Bytes& out);

  // Returns nullopt if the stream is malformed/truncated.
  static std::optional<Bytes> Decompress(ByteView input);

  // Appends the decompressed payload to `out`; returns false on a
  // malformed/truncated stream (out may then hold a partial suffix). Match
  // back-references may not reach before the append start.
  static bool DecompressAppend(ByteView input, Bytes& out);
};

}  // namespace ginja
