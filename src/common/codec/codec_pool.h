// Shared worker pool for chunk-parallel codec work.
//
// Large envelopes are split into fixed-size chunks that compress and encrypt
// independently (CTR seekability gives each chunk a disjoint keystream
// range). One pool is shared by the commit and checkpoint pipelines so the
// codec concurrency budget is a single knob (`codec_threads`), not a
// per-pipeline thread explosion.
//
// ParallelFor(n, fn) runs fn(0..n-1) across the workers *and* the calling
// thread, returning when every index completed. Calls are serialized: the
// pool runs one job at a time, which matches the encoder's use (one object
// encoded at a time per uploader, chunks fanned out within it).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ginja {

class CodecPool {
 public:
  // `threads` is the total codec concurrency including the calling thread,
  // so the pool spawns threads-1 workers. threads <= 1 spawns none and
  // ParallelFor degenerates to a serial loop on the caller.
  explicit CodecPool(int threads);
  ~CodecPool();

  CodecPool(const CodecPool&) = delete;
  CodecPool& operator=(const CodecPool&) = delete;

  // Runs fn(i) for i in [0, n) across workers + caller; blocks until done.
  // fn must be safe to invoke concurrently for distinct indices.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  int threads() const { return static_cast<int>(workers_.size()) + 1; }

 private:
  void WorkerLoop();
  // Claims indices from next_ until the job is exhausted.
  void RunIndices();

  std::mutex job_mu_;  // serializes ParallelFor callers

  std::mutex mu_;
  std::condition_variable work_cv_;  // job posted or stop
  std::condition_variable done_cv_;  // all indices finished
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t job_n_ = 0;
  std::uint64_t job_seq_ = 0;  // bumps per job so workers never re-run one
  std::atomic<std::size_t> next_{0};
  int active_ = 0;  // workers currently inside the job
  bool stop_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace ginja
