// CRC-32 (IEEE 802.3 polynomial, reflected) — used to detect torn WAL
// records during crash recovery, mirroring what PostgreSQL and InnoDB do
// with per-record/page checksums.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace ginja {

std::uint32_t Crc32(ByteView data, std::uint32_t seed = 0);

}  // namespace ginja
