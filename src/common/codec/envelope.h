// Object envelope: the on-cloud byte format of every Ginja object.
//
// Encoding applies, in order: LZSS compression (optional) → AES-128-CTR
// encryption (optional) → HMAC-SHA1 over the processed payload (always,
// §5.4: "basic integrity protection by storing a MAC of each object
// together with it"). Decoding verifies the MAC before doing anything
// else and reverses the pipeline.
//
// Layout:
//   magic   u32   'GNJ1'
//   flags   u8    bit0 = compressed, bit1 = encrypted
//   nonce   u64   CTR nonce (0 when not encrypted)
//   mac     20B   HMAC-SHA1(key, payload)
//   payload ...
#pragma once

#include <array>
#include <string>

#include "common/bytes.h"
#include "common/codec/aes128.h"
#include "common/codec/hmac.h"
#include "common/result.h"
#include "common/stats.h"

namespace ginja {

struct EnvelopeOptions {
  bool compress = false;
  bool encrypt = false;
  // Password for key derivation. When encryption is off, only the MAC key is
  // derived from it (paper: a default configuration string).
  std::string password = "ginja-default-mac-key";
};

// Cumulative work counters, consumed by the Table-4 resource-usage model.
struct CodecStats {
  Counter bytes_compressed;    // plaintext bytes through the compressor
  Counter bytes_decompressed;
  Counter bytes_encrypted;     // bytes through AES-CTR (either direction)
  Counter bytes_macced;        // bytes through HMAC
};

class Envelope {
 public:
  explicit Envelope(EnvelopeOptions options);

  // Encodes a payload for upload. Nonce must be unique per object; Ginja
  // uses the object timestamp.
  Bytes Encode(ByteView payload, std::uint64_t nonce) const;

  // Verifies the MAC and reverses compression/encryption.
  Result<Bytes> Decode(ByteView enveloped) const;

  const EnvelopeOptions& options() const { return options_; }
  const CodecStats& stats() const { return stats_; }

  static constexpr std::size_t kHeaderSize = 4 + 1 + 8 + 20;

 private:
  EnvelopeOptions options_;
  std::array<std::uint8_t, 16> enc_key_;
  std::array<std::uint8_t, 16> mac_key_;
  mutable CodecStats stats_;
};

}  // namespace ginja
