// Object envelope: the on-cloud byte format of every Ginja object.
//
// Encoding applies, in order: LZSS compression (optional) → AES-128-CTR
// encryption (optional) → HMAC-SHA1 over the processed payload (always,
// §5.4: "basic integrity protection by storing a MAC of each object
// together with it"). Decoding verifies the MAC before doing anything
// else and reverses the pipeline.
//
// Two wire versions share a 33-byte header (magic u32, flags u8, nonce u64,
// mac 20B):
//
//   v1 'GNJ1' — payload is a single stream:
//     payload ...            (LZSS stream if bit0, AES-CTR'd if bit1)
//
//   v2 'GNJ2' — chunked layout used above parallel_encode_threshold:
//     varint total_size      logical payload bytes
//     varint chunk_bytes     logical bytes per chunk (last may be short)
//     per chunk: u32 token = (enc_len << 1) | compressed, enc_len bytes
//
// v2 chunks hold independent LZSS streams and use CTR counter offset
// chunk_index * blocks_per_chunk, so chunks encode concurrently with
// disjoint keystream ranges and byte-identical output regardless of the
// thread count. Incompressible chunks store raw (compressed bit 0), which
// bounds enc_len <= chunk_bytes and keeps keystream ranges disjoint. The
// MAC always covers everything after the header.
//
// A third wire version carries *streamed* objects — uploads whose bytes
// leave the machine before the object is complete, so nothing can be
// patched retroactively (v1/v2 seal their header MAC last, which forbids
// streaming them):
//
//   v3 'GNJ3' — segment container, no header MAC:
//     u32 magic, u8 flags (reserved, 0)           the 5-byte prologue
//     per segment: u32 seg_len, seg_len bytes     a complete v1/v2 envelope
//
// Each segment is a self-contained envelope with its own MAC and its own
// nonce (the commit pipeline tags stream-segment nonces into a dedicated
// subspace), so integrity is per segment and a torn tail — a final
// segment whose bytes never all landed — decodes as Corruption while
// every preceding segment stays verifiable. Decoding concatenates the
// segment payloads in order.
//
// The hot path is EncodeInto: it consumes a scatter-gather PayloadView,
// reserves the output once, compresses straight into it, encrypts in place
// (CTR XORs the keystream over the written bytes), and patches the MAC into
// the reserved header slot — no intermediate full-payload buffers.
#pragma once

#include <array>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/codec/aes128.h"
#include "common/codec/hmac.h"
#include "common/result.h"
#include "common/stats.h"

namespace ginja {

class CodecPool;

struct EnvelopeOptions {
  bool compress = false;
  bool encrypt = false;
  // Password for key derivation. When encryption is off, only the MAC key is
  // derived from it (paper: a default configuration string).
  std::string password = "ginja-default-mac-key";
  // Payloads strictly larger than this encode as chunked v2 objects; at or
  // below, as v1. The format depends only on this threshold (never on
  // whether a codec pool is attached), so serial and parallel encodes of
  // the same payload are byte-identical.
  std::size_t parallel_encode_threshold = 256 * 1024;
  // Logical bytes per v2 chunk.
  std::size_t encode_chunk_bytes = 256 * 1024;
};

// Cumulative work counters, consumed by the Table-4 resource-usage model.
struct CodecStats {
  Counter bytes_compressed;    // plaintext bytes through the compressor
  Counter bytes_decompressed;
  Counter bytes_encrypted;     // bytes through AES-CTR (either direction)
  Counter bytes_macced;        // bytes through HMAC
  Counter bytes_copied;        // payload bytes gathered into scratch buffers
                               // on the encode path (the copy-counting hook:
                               // zero-copy encodes keep this at ~0)
};

class Envelope {
 public:
  explicit Envelope(EnvelopeOptions options);

  // Optional worker pool for chunk-parallel v2 encoding. Without one (or
  // with a single-threaded pool) chunks encode serially — same bytes out.
  void SetCodecPool(std::shared_ptr<CodecPool> pool) { pool_ = std::move(pool); }
  // The attached pool (may be null). The checkpoint pipeline borrows it to
  // fan delta-dump chunk hashing across the same codec budget.
  const std::shared_ptr<CodecPool>& codec_pool() const { return pool_; }

  // Encodes a payload for upload. Nonce must be unique per object; Ginja
  // uses the object timestamp.
  Bytes Encode(ByteView payload, std::uint64_t nonce) const;

  // Zero-copy encode: consumes the payload as scatter-gather pieces and
  // replaces `out` (clearing it first, reusing its capacity) with the
  // enveloped object.
  void EncodeInto(const PayloadView& payload, std::uint64_t nonce,
                  Bytes& out) const;

  // Derived-key variants for content-addressed objects (delta-dump
  // chunks). The AES key is derived per object — HMAC-SHA1(master enc
  // key, key_tweak) truncated to 16 bytes — so keystream is reused across
  // two objects only if their *entire* tweak collides. Ginja passes the
  // chunk's full 160-bit content digest, which removes the two-time-pad
  // risk of a truncated-nonce collision while keeping the encoding
  // deterministic in (payload, tweak, nonce): identical chunks still
  // produce identical ciphertext, so convergent dedup keeps working. The
  // MAC key and wire format are unchanged. Decoding with a wrong tweak
  // MAC-verifies but yields wrong bytes (or Corruption when compressed) —
  // content-addressed callers must verify the decoded bytes' digest,
  // which the chunk fetch path already does. When encryption is off these
  // are exactly Encode/Decode.
  Bytes EncodeDerived(ByteView payload, std::uint64_t nonce,
                      ByteView key_tweak) const;
  Result<Bytes> DecodeDerived(ByteView enveloped, ByteView key_tweak) const;

  // Verifies the MAC and reverses compression/encryption. Accepts all
  // three wire versions (v3 decodes each segment recursively and
  // concatenates the payloads).
  Result<Bytes> Decode(ByteView enveloped) const;

  // -- v3 streamed container helpers ----------------------------------------
  // The producer builds a stream as: StreamPrologue() once, then one
  // AppendStreamSegment per enveloped segment. Any byte-concatenation of
  // those parts in order is a valid (possibly torn) v3 object.
  static Bytes StreamPrologue();
  static void AppendStreamSegment(Bytes& out, ByteView enveloped_segment);

  const EnvelopeOptions& options() const { return options_; }
  const CodecStats& stats() const { return stats_; }

  static constexpr std::size_t kHeaderSize = 4 + 1 + 8 + 20;
  static constexpr std::size_t kStreamPrologueSize = 4 + 1;

 private:
  // Resolves logical range [begin, begin+len) of the payload: a direct
  // subspan when it lies within one piece, else a gather into `scratch`
  // (counted in stats_.bytes_copied).
  ByteView GatherRange(const PayloadView& payload, std::size_t begin,
                       std::size_t len, Bytes& scratch) const;

  // Expands the per-object AES schedule for a derived-key encode/decode
  // (HMAC-SHA1(enc_key_, key_tweak) truncated to the AES key size).
  Aes128 DeriveObjectAes(ByteView key_tweak) const;

  // The encode/decode cores, parameterized on the AES schedule so the
  // derived-key entry points share every byte of the format logic.
  void EncodeIntoWith(const PayloadView& payload, std::uint64_t nonce,
                      const Aes128& aes, Bytes& out) const;
  Result<Bytes> DecodeWith(ByteView enveloped, const Aes128& aes) const;

  void EncodeV1Into(const PayloadView& payload, std::uint64_t nonce,
                    const Aes128& aes, Bytes& out) const;
  void EncodeV2Into(const PayloadView& payload, std::uint64_t nonce,
                    const Aes128& aes, Bytes& out) const;
  // Writes the 33-byte header over out[0..kHeaderSize): magic, flags,
  // nonce, and the MAC of out[kHeaderSize..].
  void SealHeader(std::uint32_t magic, std::uint8_t flags, std::uint64_t nonce,
                  Bytes& out) const;

  Result<Bytes> DecodeV1(std::uint8_t flags, std::uint64_t nonce,
                         const Aes128& aes, ByteView body) const;
  Result<Bytes> DecodeV2(std::uint8_t flags, std::uint64_t nonce,
                         const Aes128& aes, ByteView body) const;
  Result<Bytes> DecodeV3(ByteView enveloped) const;

  EnvelopeOptions options_;
  std::array<std::uint8_t, 16> enc_key_;
  std::array<std::uint8_t, 16> mac_key_;
  Aes128 enc_aes_;  // key schedule expanded once, shared by every encode
  std::shared_ptr<CodecPool> pool_;
  mutable CodecStats stats_;
};

}  // namespace ginja
