// SHA-256 (FIPS 180-4) implemented from scratch.
//
// Required by the AWS Signature Version 4 request signing that the
// wire-level S3 client/server pair uses (src/cloud/s3). Validated against
// the FIPS vectors and RFC 4231 HMAC vectors in the codec tests.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace ginja {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256();

  void Update(ByteView data);
  Digest Finish();
  void Reset();

  static Digest Hash(ByteView data) {
    Sha256 h;
    h.Update(data);
    return h.Finish();
  }

 private:
  void ProcessBlock(const std::uint8_t* block);

  std::uint32_t h_[8];
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

// HMAC-SHA256 (RFC 2104 over SHA-256) — the SigV4 key-derivation primitive.
Sha256::Digest HmacSha256(ByteView key, ByteView data);

}  // namespace ginja
