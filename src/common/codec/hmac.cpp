#include "common/codec/hmac.h"

#include <cstring>

namespace ginja {

MacTag HmacSha1(ByteView key, ByteView data) {
  constexpr std::size_t kBlock = 64;
  std::uint8_t key_block[kBlock] = {};
  if (key.size() > kBlock) {
    const auto d = Sha1::Hash(key);
    std::memcpy(key_block, d.data(), d.size());
  } else {
    std::memcpy(key_block, key.data(), key.size());
  }

  std::uint8_t ipad[kBlock], opad[kBlock];
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5C;
  }

  Sha1 inner;
  inner.Update(ByteView(ipad, kBlock));
  inner.Update(data);
  const auto inner_digest = inner.Finish();

  Sha1 outer;
  outer.Update(ByteView(opad, kBlock));
  outer.Update(ByteView(inner_digest.data(), inner_digest.size()));
  return outer.Finish();
}

bool MacEqual(const MacTag& a, const MacTag& b) {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

std::array<std::uint8_t, 16> DeriveKey(std::string_view password,
                                       std::string_view salt, int iterations) {
  Bytes seed = ToBytes(password);
  Append(seed, View(ToBytes(salt)));
  Sha1::Digest d = Sha1::Hash(View(seed));
  for (int i = 1; i < iterations; ++i) {
    Sha1 h;
    h.Update(ByteView(d.data(), d.size()));
    h.Update(View(seed));
    d = h.Finish();
  }
  std::array<std::uint8_t, 16> key{};
  std::memcpy(key.data(), d.data(), key.size());
  return key;
}

}  // namespace ginja
