#include "common/codec/lzss.h"

#include <cstring>
#include <vector>

namespace ginja {

namespace {

constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = 1u << kHashBits;
constexpr int kMaxChainProbes = 16;  // "fastest" profile: few probes

inline std::uint32_t HashAt(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

Bytes Lzss::Compress(ByteView input) {
  Bytes out;
  out.reserve(input.size() / 2 + 16);
  PutVarint(out, input.size());
  if (input.empty()) return out;

  // Hash chains: head[h] = most recent position with hash h; prev[i] = the
  // previous position with the same hash as i.
  std::vector<std::int32_t> head(kHashSize, -1);
  std::vector<std::int32_t> prev(input.size(), -1);

  Bytes pending;          // token payload bytes for the current flag group
  std::uint8_t flags = 0; // bit i set => token i is a match
  int flag_count = 0;
  std::size_t flag_pos = out.size();
  out.push_back(0);  // placeholder for first control byte

  auto flush_group = [&](bool start_new) {
    out[flag_pos] = flags;
    Append(out, View(pending));
    pending.clear();
    flags = 0;
    flag_count = 0;
    if (start_new) {
      flag_pos = out.size();
      out.push_back(0);
    }
  };

  std::size_t pos = 0;
  while (pos < input.size()) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (pos + kMinMatch <= input.size()) {
      const std::uint32_t h = HashAt(input.data() + pos);
      std::int32_t cand = head[h];
      const std::size_t max_len = std::min(kMaxMatch, input.size() - pos);
      for (int probes = 0; cand >= 0 && probes < kMaxChainProbes; ++probes) {
        const std::size_t dist = pos - static_cast<std::size_t>(cand);
        if (dist > kWindow) break;
        std::size_t len = 0;
        const std::uint8_t* a = input.data() + cand;
        const std::uint8_t* b = input.data() + pos;
        while (len < max_len && a[len] == b[len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = dist;
          if (len == max_len) break;
        }
        cand = prev[cand];
      }
    }

    if (best_len >= kMinMatch) {
      flags |= static_cast<std::uint8_t>(1u << flag_count);
      PutVarint(pending, best_dist);
      PutVarint(pending, best_len - kMinMatch);
      // Insert hash entries for every covered position (cheap, improves
      // later matches on page-structured data).
      const std::size_t end = pos + best_len;
      for (; pos < end && pos + kMinMatch <= input.size(); ++pos) {
        const std::uint32_t h = HashAt(input.data() + pos);
        prev[pos] = head[h];
        head[h] = static_cast<std::int32_t>(pos);
      }
      pos = end;
    } else {
      pending.push_back(input[pos]);
      if (pos + kMinMatch <= input.size()) {
        const std::uint32_t h = HashAt(input.data() + pos);
        prev[pos] = head[h];
        head[h] = static_cast<std::int32_t>(pos);
      }
      ++pos;
    }

    if (++flag_count == 8) flush_group(pos < input.size());
  }
  if (flag_count > 0) flush_group(false);
  return out;
}

std::optional<Bytes> Lzss::Decompress(ByteView input) {
  std::size_t pos = 0;
  const auto orig_size = GetVarint(input, pos);
  if (!orig_size) return std::nullopt;
  Bytes out;
  out.reserve(*orig_size);

  while (out.size() < *orig_size) {
    if (pos >= input.size()) return std::nullopt;
    const std::uint8_t flags = input[pos++];
    for (int bit = 0; bit < 8 && out.size() < *orig_size; ++bit) {
      if (flags & (1u << bit)) {
        const auto dist = GetVarint(input, pos);
        const auto len_enc = GetVarint(input, pos);
        if (!dist || !len_enc || *dist == 0 || *dist > out.size()) {
          return std::nullopt;
        }
        const std::size_t len = *len_enc + Lzss::kMinMatch;
        const std::size_t start = out.size() - *dist;
        for (std::size_t i = 0; i < len; ++i) out.push_back(out[start + i]);
      } else {
        if (pos >= input.size()) return std::nullopt;
        out.push_back(input[pos++]);
      }
    }
  }
  if (out.size() != *orig_size) return std::nullopt;
  return out;
}

}  // namespace ginja
