#include "common/codec/lzss.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace ginja {

namespace {

constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = 1u << kHashBits;
constexpr int kMaxChainProbes = 16;  // "fastest" profile: few probes

inline std::uint32_t HashAt(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

// Length of the common prefix of a and b, capped at max_len. Compares a word
// at a time; the XOR of two words pinpoints the first differing byte.
inline std::size_t MatchLength(const std::uint8_t* a, const std::uint8_t* b,
                               std::size_t max_len) {
  std::size_t len = 0;
#if defined(__GNUC__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  while (len + 8 <= max_len) {
    std::uint64_t x, y;
    std::memcpy(&x, a + len, 8);
    std::memcpy(&y, b + len, 8);
    const std::uint64_t diff = x ^ y;
    if (diff != 0) {
      return len + static_cast<std::size_t>(__builtin_ctzll(diff) >> 3);
    }
    len += 8;
  }
#endif
  while (len < max_len && a[len] == b[len]) ++len;
  return len;
}

}  // namespace

Bytes Lzss::Compress(ByteView input) {
  Bytes out;
  out.reserve(input.size() / 2 + 16);
  CompressAppend(input, out);
  return out;
}

void Lzss::CompressAppend(ByteView input, Bytes& out) {
  PutVarint(out, input.size());
  if (input.empty()) return;

  // Hash chains: head[h] = most recent position with hash h; prev[i] = the
  // previous position with the same hash as i. The scratch vectors are
  // thread-local so repeated calls (and the per-chunk parallel encoders)
  // skip the allocation; `head` must be reset every call, but `prev` needs
  // no initialisation — a chain only reaches entries inserted this call,
  // and insertion writes prev[i] before linking i into its chain.
  thread_local std::vector<std::int32_t> head;
  thread_local std::vector<std::int32_t> prev;
  head.assign(kHashSize, -1);
  if (prev.size() < input.size()) prev.resize(input.size());

  Bytes pending;          // token payload bytes for the current flag group
  std::uint8_t flags = 0; // bit i set => token i is a match
  int flag_count = 0;
  std::size_t flag_pos = out.size();
  out.push_back(0);  // placeholder for first control byte

  auto flush_group = [&](bool start_new) {
    out[flag_pos] = flags;
    Append(out, View(pending));
    pending.clear();
    flags = 0;
    flag_count = 0;
    if (start_new) {
      flag_pos = out.size();
      out.push_back(0);
    }
  };

  std::size_t pos = 0;
  while (pos < input.size()) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (pos + kMinMatch <= input.size()) {
      const std::uint32_t h = HashAt(input.data() + pos);
      std::int32_t cand = head[h];
      const std::size_t max_len = std::min(kMaxMatch, input.size() - pos);
      for (int probes = 0; cand >= 0 && probes < kMaxChainProbes; ++probes) {
        const std::size_t dist = pos - static_cast<std::size_t>(cand);
        if (dist > kWindow) break;
        const std::uint8_t* a = input.data() + cand;
        const std::uint8_t* b = input.data() + pos;
        // A candidate can only beat best_len if it also matches at that
        // offset, so reject most losers with one byte compare.
        if (best_len > 0 && a[best_len] != b[best_len]) {
          cand = prev[cand];
          continue;
        }
        const std::size_t len = MatchLength(a, b, max_len);
        if (len > best_len) {
          best_len = len;
          best_dist = dist;
          if (len == max_len) break;
        }
        cand = prev[cand];
      }
    }

    if (best_len >= kMinMatch) {
      flags |= static_cast<std::uint8_t>(1u << flag_count);
      PutVarint(pending, best_dist);
      PutVarint(pending, best_len - kMinMatch);
      // Insert hash entries for every covered position (cheap, improves
      // later matches on page-structured data).
      const std::size_t end = pos + best_len;
      for (; pos < end && pos + kMinMatch <= input.size(); ++pos) {
        const std::uint32_t h = HashAt(input.data() + pos);
        prev[pos] = head[h];
        head[h] = static_cast<std::int32_t>(pos);
      }
      pos = end;
    } else {
      pending.push_back(input[pos]);
      if (pos + kMinMatch <= input.size()) {
        const std::uint32_t h = HashAt(input.data() + pos);
        prev[pos] = head[h];
        head[h] = static_cast<std::int32_t>(pos);
      }
      ++pos;
    }

    if (++flag_count == 8) flush_group(pos < input.size());
  }
  if (flag_count > 0) flush_group(false);
}

std::optional<Bytes> Lzss::Decompress(ByteView input) {
  Bytes out;
  if (!DecompressAppend(input, out)) return std::nullopt;
  return out;
}

bool Lzss::DecompressAppend(ByteView input, Bytes& out) {
  std::size_t pos = 0;
  const auto orig_size = GetVarint(input, pos);
  if (!orig_size) return false;
  const std::size_t base = out.size();
  const std::size_t target = base + *orig_size;
  out.reserve(target);

  while (out.size() < target) {
    if (pos >= input.size()) return false;
    const std::uint8_t flags = input[pos++];
    for (int bit = 0; bit < 8 && out.size() < target; ++bit) {
      if (flags & (1u << bit)) {
        const auto dist = GetVarint(input, pos);
        const auto len_enc = GetVarint(input, pos);
        if (!dist || !len_enc || *dist == 0 || *dist > out.size() - base) {
          return false;
        }
        const std::size_t len =
            std::min<std::size_t>(*len_enc + Lzss::kMinMatch, target - out.size());
        if (len != *len_enc + Lzss::kMinMatch) return false;  // overruns size
        const std::size_t src = out.size() - *dist;
        out.resize(out.size() + len);
        std::uint8_t* dst = out.data() + out.size() - len;
        if (*dist >= len) {
          std::memcpy(dst, out.data() + src, len);
        } else {
          // Overlapping run: seed with the `dist`-byte period, then double
          // the copied region until the match is filled.
          std::memcpy(dst, out.data() + src, *dist);
          std::size_t copied = *dist;
          while (copied < len) {
            const std::size_t n = std::min(copied, len - copied);
            std::memcpy(dst + copied, dst, n);
            copied += n;
          }
        }
      } else {
        // Literal run: consume every consecutive 0-flag in this group with
        // one block copy instead of a byte-at-a-time loop.
        int run = 1;
        while (bit + run < 8 && !(flags & (1u << (bit + run)))) ++run;
        const std::size_t take = std::min<std::size_t>(
            {static_cast<std::size_t>(run), target - out.size(),
             input.size() - pos});
        if (take == 0) return false;
        Append(out, input.subspan(pos, take));
        pos += take;
        bit += static_cast<int>(take) - 1;
      }
    }
  }
  return out.size() == target;
}

}  // namespace ginja
