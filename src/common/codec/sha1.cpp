#include "common/codec/sha1.h"

#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#define GINJA_SHANI_CAPABLE 1
#include <immintrin.h>
#endif

namespace ginja {

namespace {
inline std::uint32_t Rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

#ifdef GINJA_SHANI_CAPABLE

bool HasShaNi() {
  static const bool has = __builtin_cpu_supports("sha") &&
                          __builtin_cpu_supports("ssse3") &&
                          __builtin_cpu_supports("sse4.1");
  return has;
}

// SHA-NI compression function over a run of 64-byte blocks. The working state
// stays in registers across the whole run, so Update() should hand us the
// largest run it can. Free function (not a member/lambda) because GCC applies
// target attributes per-function and lambdas do not inherit them.
__attribute__((target("sha,ssse3,sse4.1"))) void ShaniProcessBlocks(
    std::uint32_t h[5], const std::uint8_t* data, std::size_t blocks) {
  const __m128i kFlip =
      _mm_set_epi64x(0x0001020304050607ull, 0x08090a0b0c0d0e0full);
  __m128i abcd = _mm_loadu_si128(reinterpret_cast<const __m128i*>(h));
  abcd = _mm_shuffle_epi32(abcd, 0x1B);  // a in the high lane
  __m128i e0 = _mm_set_epi32(static_cast<int>(h[4]), 0, 0, 0);
  __m128i e1;

  while (blocks-- > 0) {
    const __m128i abcd_save = abcd;
    const __m128i e0_save = e0;

    // Rounds 0-3
    __m128i msg0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0));
    msg0 = _mm_shuffle_epi8(msg0, kFlip);
    e0 = _mm_add_epi32(e0, msg0);
    e1 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);

    // Rounds 4-7
    __m128i msg1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16));
    msg1 = _mm_shuffle_epi8(msg1, kFlip);
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);

    // Rounds 8-11
    __m128i msg2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32));
    msg2 = _mm_shuffle_epi8(msg2, kFlip);
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);

    // Rounds 12-15
    __m128i msg3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48));
    msg3 = _mm_shuffle_epi8(msg3, kFlip);
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);

    // Rounds 16-19
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);

    // Rounds 20-23
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    msg3 = _mm_xor_si128(msg3, msg1);

    // Rounds 24-27
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 1);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);

    // Rounds 28-31
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);

    // Rounds 32-35
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 1);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);

    // Rounds 36-39
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    msg3 = _mm_xor_si128(msg3, msg1);

    // Rounds 40-43
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);

    // Rounds 44-47
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 2);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);

    // Rounds 48-51
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);

    // Rounds 52-55
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 2);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    msg3 = _mm_xor_si128(msg3, msg1);

    // Rounds 56-59
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);

    // Rounds 60-63
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);

    // Rounds 64-67
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 3);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);

    // Rounds 68-71
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);
    msg3 = _mm_xor_si128(msg3, msg1);

    // Rounds 72-75
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 3);

    // Rounds 76-79
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);

    e0 = _mm_sha1nexte_epu32(e0, e0_save);
    abcd = _mm_add_epi32(abcd, abcd_save);
    data += 64;
  }

  abcd = _mm_shuffle_epi32(abcd, 0x1B);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(h), abcd);
  h[4] = static_cast<std::uint32_t>(_mm_extract_epi32(e0, 3));
}

#endif  // GINJA_SHANI_CAPABLE
}  // namespace

Sha1::Sha1() { Reset(); }

void Sha1::Reset() {
  h_[0] = 0x67452301u;
  h_[1] = 0xEFCDAB89u;
  h_[2] = 0x98BADCFEu;
  h_[3] = 0x10325476u;
  h_[4] = 0xC3D2E1F0u;
  buffered_ = 0;
  total_bytes_ = 0;
}

void Sha1::ProcessBlock(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int t = 0; t < 16; ++t) {
    w[t] = (static_cast<std::uint32_t>(block[t * 4]) << 24) |
           (static_cast<std::uint32_t>(block[t * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[t * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[t * 4 + 3]);
  }
  for (int t = 16; t < 80; ++t) {
    w[t] = Rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int t = 0; t < 80; ++t) {
    std::uint32_t f, k;
    if (t < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999u;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t tmp = Rotl(a, 5) + f + e + k + w[t];
    e = d;
    d = c;
    c = Rotl(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::ProcessBlocks(const std::uint8_t* data, std::size_t blocks) {
#ifdef GINJA_SHANI_CAPABLE
  if (HasShaNi()) {
    ShaniProcessBlocks(h_, data, blocks);
    return;
  }
#endif
  for (std::size_t i = 0; i < blocks; ++i) {
    ProcessBlock(data + i * 64);
  }
}

void Sha1::Update(ByteView data) {
  total_bytes_ += data.size();
  std::size_t pos = 0;
  if (buffered_ > 0) {
    const std::size_t need = 64 - buffered_;
    const std::size_t take = std::min(need, data.size());
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    pos = take;
    if (buffered_ == 64) {
      ProcessBlocks(buffer_, 1);
      buffered_ = 0;
    }
  }
  if (pos + 64 <= data.size()) {
    const std::size_t blocks = (data.size() - pos) / 64;
    ProcessBlocks(data.data() + pos, blocks);
    pos += blocks * 64;
  }
  if (pos < data.size()) {
    std::memcpy(buffer_, data.data() + pos, data.size() - pos);
    buffered_ = data.size() - pos;
  }
}

Sha1::Digest Sha1::Finish() {
  const std::uint64_t bit_len = total_bytes_ * 8;
  const std::uint8_t pad_byte = 0x80;
  Update(ByteView(&pad_byte, 1));
  const std::uint8_t zero = 0;
  while (buffered_ != 56) Update(ByteView(&zero, 1));
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
  }
  Update(ByteView(len_be, 8));

  Digest out{};
  for (int i = 0; i < 5; ++i) {
    out[i * 4] = static_cast<std::uint8_t>(h_[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return out;
}

}  // namespace ginja
