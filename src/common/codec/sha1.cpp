#include "common/codec/sha1.h"

#include <cstring>

namespace ginja {

namespace {
inline std::uint32_t Rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}
}  // namespace

Sha1::Sha1() { Reset(); }

void Sha1::Reset() {
  h_[0] = 0x67452301u;
  h_[1] = 0xEFCDAB89u;
  h_[2] = 0x98BADCFEu;
  h_[3] = 0x10325476u;
  h_[4] = 0xC3D2E1F0u;
  buffered_ = 0;
  total_bytes_ = 0;
}

void Sha1::ProcessBlock(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int t = 0; t < 16; ++t) {
    w[t] = (static_cast<std::uint32_t>(block[t * 4]) << 24) |
           (static_cast<std::uint32_t>(block[t * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[t * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[t * 4 + 3]);
  }
  for (int t = 16; t < 80; ++t) {
    w[t] = Rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int t = 0; t < 80; ++t) {
    std::uint32_t f, k;
    if (t < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999u;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t tmp = Rotl(a, 5) + f + e + k + w[t];
    e = d;
    d = c;
    c = Rotl(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::Update(ByteView data) {
  total_bytes_ += data.size();
  std::size_t pos = 0;
  if (buffered_ > 0) {
    const std::size_t need = 64 - buffered_;
    const std::size_t take = std::min(need, data.size());
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    pos = take;
    if (buffered_ == 64) {
      ProcessBlock(buffer_);
      buffered_ = 0;
    }
  }
  while (pos + 64 <= data.size()) {
    ProcessBlock(data.data() + pos);
    pos += 64;
  }
  if (pos < data.size()) {
    std::memcpy(buffer_, data.data() + pos, data.size() - pos);
    buffered_ = data.size() - pos;
  }
}

Sha1::Digest Sha1::Finish() {
  const std::uint64_t bit_len = total_bytes_ * 8;
  const std::uint8_t pad_byte = 0x80;
  Update(ByteView(&pad_byte, 1));
  const std::uint8_t zero = 0;
  while (buffered_ != 56) Update(ByteView(&zero, 1));
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
  }
  Update(ByteView(len_be, 8));

  Digest out{};
  for (int i = 0; i < 5; ++i) {
    out[i * 4] = static_cast<std::uint8_t>(h_[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return out;
}

}  // namespace ginja
