// SHA-1 (FIPS 180-4) implemented from scratch.
//
// The paper's prototype "implements ... MACs using SHA-1" (§6). SHA-1 is no
// longer collision-resistant, but as a MAC primitive under HMAC it is still
// sound — and we reproduce the paper's exact choice. Validated against the
// FIPS/RFC 3174 test vectors in tests/common/codec_test.cpp.
//
// Bulk input is hashed in multi-block runs; on x86 with the SHA extensions
// the compression function runs in hardware (runtime-detected, with the
// portable implementation as fallback). MACs sit on the envelope encode hot
// path, so this matters for upload throughput.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace ginja {

class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha1();

  void Update(ByteView data);
  Digest Finish();  // one-shot: object unusable afterwards until Reset()
  void Reset();

  static Digest Hash(ByteView data) {
    Sha1 h;
    h.Update(data);
    return h.Finish();
  }

 private:
  void ProcessBlock(const std::uint8_t* block);
  void ProcessBlocks(const std::uint8_t* data, std::size_t blocks);

  std::uint32_t h_[5];
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace ginja
