// Lightweight Status / Result<T> error propagation.
//
// Cloud and file-system operations fail for reasons the caller must handle
// (object not found, injected outage, I/O error), so those APIs return
// `Result<T>` instead of throwing. Programming errors still assert.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace ginja {

enum class ErrorCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kUnavailable,    // transient: cloud outage, injected fault
  kCorruption,     // MAC mismatch, bad envelope, torn record
  kInvalidArgument,
  kAborted,        // queue closed, system shutting down
  kIoError,
};

inline const char* ErrorCodeName(ErrorCode c) {
  switch (c) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kCorruption: return "CORRUPTION";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kAborted: return "ABORTED";
    case ErrorCode::kIoError: return "IO_ERROR";
  }
  return "UNKNOWN";
}

class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m = "") { return {ErrorCode::kNotFound, std::move(m)}; }
  static Status AlreadyExists(std::string m = "") { return {ErrorCode::kAlreadyExists, std::move(m)}; }
  static Status Unavailable(std::string m = "") { return {ErrorCode::kUnavailable, std::move(m)}; }
  static Status Corruption(std::string m = "") { return {ErrorCode::kCorruption, std::move(m)}; }
  static Status InvalidArgument(std::string m = "") { return {ErrorCode::kInvalidArgument, std::move(m)}; }
  static Status Aborted(std::string m = "") { return {ErrorCode::kAborted, std::move(m)}; }
  static Status IoError(std::string m = "") { return {ErrorCode::kIoError, std::move(m)}; }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string s = ErrorCodeName(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}        // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) { // NOLINT: implicit by design
    assert(!status_.ok() && "Result from status requires an error");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define GINJA_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::ginja::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace ginja
