#include "common/config.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

namespace ginja {

namespace {

std::string Trim(std::string_view s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string_view::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return std::string(s.substr(begin, end - begin + 1));
}

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

Result<ConfigFile> ConfigFile::Parse(std::string_view text) {
  ConfigFile config;
  std::string section;
  int line_number = 0;
  std::istringstream lines{std::string(text)};
  std::string line;
  while (std::getline(lines, line)) {
    ++line_number;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#' || trimmed[0] == ';') continue;
    if (trimmed.front() == '[') {
      if (trimmed.back() != ']' || trimmed.size() < 3) {
        return Status::InvalidArgument("malformed section at line " +
                                       std::to_string(line_number));
      }
      section = Lower(Trim(trimmed.substr(1, trimmed.size() - 2)));
      continue;
    }
    const auto eq = trimmed.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("expected key=value at line " +
                                     std::to_string(line_number));
    }
    const std::string key = Lower(Trim(trimmed.substr(0, eq)));
    if (key.empty()) {
      return Status::InvalidArgument("empty key at line " +
                                     std::to_string(line_number));
    }
    config.values_[section.empty() ? key : section + "." + key] =
        Trim(trimmed.substr(eq + 1));
  }
  return config;
}

Result<ConfigFile> ConfigFile::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str());
}

std::optional<std::string> ConfigFile::GetString(const std::string& key) const {
  auto it = values_.find(Lower(key));
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::int64_t> ConfigFile::GetInt(const std::string& key) const {
  auto value = GetString(key);
  if (!value) return std::nullopt;
  std::int64_t out = 0;
  auto [ptr, ec] =
      std::from_chars(value->data(), value->data() + value->size(), out);
  if (ec != std::errc() || ptr != value->data() + value->size()) {
    return std::nullopt;
  }
  return out;
}

std::optional<double> ConfigFile::GetDouble(const std::string& key) const {
  auto value = GetString(key);
  if (!value) return std::nullopt;
  try {
    std::size_t consumed = 0;
    const double out = std::stod(*value, &consumed);
    if (consumed != value->size()) return std::nullopt;
    return out;
  } catch (...) {
    return std::nullopt;
  }
}

std::optional<bool> ConfigFile::GetBool(const std::string& key) const {
  auto value = GetString(key);
  if (!value) return std::nullopt;
  const std::string v = Lower(*value);
  if (v == "true" || v == "yes" || v == "on" || v == "1") return true;
  if (v == "false" || v == "no" || v == "off" || v == "0") return false;
  return std::nullopt;
}

std::string ConfigFile::GetStringOr(const std::string& key,
                                    std::string fallback) const {
  return GetString(key).value_or(std::move(fallback));
}

std::int64_t ConfigFile::GetIntOr(const std::string& key,
                                  std::int64_t fallback) const {
  return GetInt(key).value_or(fallback);
}

double ConfigFile::GetDoubleOr(const std::string& key, double fallback) const {
  return GetDouble(key).value_or(fallback);
}

bool ConfigFile::GetBoolOr(const std::string& key, bool fallback) const {
  return GetBool(key).value_or(fallback);
}

}  // namespace ginja
