// Byte-buffer utilities shared by every module.
//
// Ginja moves opaque byte ranges between the DBMS, the interception file
// system, the codec stack, and the cloud store. Everything is expressed in
// terms of `Bytes` (an owned buffer) and `std::span<const std::uint8_t>`
// (a borrowed view), plus little-endian fixed-width and varint encoders used
// by the WAL record format and the object envelope.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ginja {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

inline Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline std::string ToString(ByteView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

inline ByteView View(const Bytes& b) { return ByteView(b.data(), b.size()); }

// -- fixed-width little-endian ------------------------------------------------

inline void PutU16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

inline void PutU32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline void PutU64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline std::uint16_t GetU16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

inline std::uint32_t GetU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline std::uint64_t GetU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

// -- LEB128 varint (used by WAL records and LZSS headers) ---------------------

inline void PutVarint(Bytes& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

// Decodes a varint at `pos`, advancing it. Returns nullopt on truncation.
inline std::optional<std::uint64_t> GetVarint(ByteView in, std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  while (pos < in.size() && shift < 64) {
    std::uint8_t byte = in[pos++];
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
  return std::nullopt;
}

// -- hex ----------------------------------------------------------------------

inline std::string ToHex(ByteView b) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t c : b) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xF]);
  }
  return out;
}

inline std::optional<Bytes> FromHex(std::string_view s) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  if (s.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(s.size() / 2);
  for (std::size_t i = 0; i < s.size(); i += 2) {
    int hi = nibble(s[i]), lo = nibble(s[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

inline void Append(Bytes& out, ByteView in) {
  out.insert(out.end(), in.begin(), in.end());
}

// -- scatter-gather payloads --------------------------------------------------

// An ordered list of borrowed byte ranges that together form one logical
// buffer. Producers (entry framing, checkpoint part-splitting) emit views
// over existing buffers instead of copies; the envelope encoder consumes the
// pieces directly. The referenced storage must outlive the view.
struct PayloadView {
  std::vector<ByteView> pieces;
  std::size_t total = 0;

  void Add(ByteView piece) {
    if (piece.empty()) return;
    pieces.push_back(piece);
    total += piece.size();
  }

  std::size_t size() const { return total; }
  bool empty() const { return total == 0; }

  Bytes Flatten() const {
    Bytes out;
    out.reserve(total);
    for (ByteView p : pieces) Append(out, p);
    return out;
  }
};

inline PayloadView OnePiece(ByteView v) {
  PayloadView p;
  p.Add(v);
  return p;
}

}  // namespace ginja
