#include "common/clock.h"

#include <thread>

namespace ginja {

namespace {
std::uint64_t WallMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

std::uint64_t RealClock::NowMicros() { return WallMicros(); }

void RealClock::SleepMicros(std::uint64_t micros) {
  if (micros == 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

std::uint64_t ScaledClock::NowMicros() {
  return static_cast<std::uint64_t>(static_cast<double>(WallMicros()) * scale_);
}

void ScaledClock::SleepMicros(std::uint64_t micros) {
  const double wall = static_cast<double>(micros) / scale_;
  if (wall < 0.05) return;  // below timing resolution: treat as free
  // OS sleep granularity (~50 us) would distort short scaled delays, so
  // sub-200 us waits spin on the monotonic clock instead.
  if (wall < 200.0) {
    const std::uint64_t deadline =
        WallMicros() + static_cast<std::uint64_t>(wall);
    while (WallMicros() < deadline) {
      // spin
    }
    return;
  }
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<std::uint64_t>(wall)));
}

}  // namespace ginja
