#include "common/rng.h"

#include <cmath>

namespace ginja {

double SplitMix64::NextGaussian(double mean, double stddev) {
  // Box–Muller; avoid log(0) by nudging u1 away from zero.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-12) u1 = 1e-12;
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * 3.14159265358979323846 * u2);
}

std::int64_t NuRand(SplitMix64& rng, std::int64_t a, std::int64_t x, std::int64_t y,
                    std::int64_t c_const) {
  const std::int64_t r1 = rng.NextInRange(0, a);
  const std::int64_t r2 = rng.NextInRange(x, y);
  return (((r1 | r2) + c_const) % (y - x + 1)) + x;
}

}  // namespace ginja
