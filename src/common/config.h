// INI-style configuration files for the operator tooling (ginja_ctl).
//
//   # comment
//   [ginja]
//   batch = 100
//   safety = 1000
//   compress = true
//
// Sections group keys; lookups use "section.key". Values are strings with
// typed accessors; parse errors carry line numbers.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"

namespace ginja {

class ConfigFile {
 public:
  static Result<ConfigFile> Parse(std::string_view text);
  static Result<ConfigFile> Load(const std::string& path);

  // "section.key" lookups; keys outside any section use "" as section.
  std::optional<std::string> GetString(const std::string& key) const;
  std::optional<std::int64_t> GetInt(const std::string& key) const;
  std::optional<double> GetDouble(const std::string& key) const;
  // Accepts true/false, yes/no, on/off, 1/0 (case-insensitive).
  std::optional<bool> GetBool(const std::string& key) const;

  std::string GetStringOr(const std::string& key, std::string fallback) const;
  std::int64_t GetIntOr(const std::string& key, std::int64_t fallback) const;
  double GetDoubleOr(const std::string& key, double fallback) const;
  bool GetBoolOr(const std::string& key, bool fallback) const;

  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  std::size_t size() const { return values_.size(); }

 private:
  std::map<std::string, std::string> values_;  // "section.key" -> value
};

}  // namespace ginja
