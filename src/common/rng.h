// Deterministic seedable random-number generation.
//
// All stochastic behaviour in the repo (latency jitter, TPC-C keys, failure
// injection) flows through these generators so that every test and benchmark
// is reproducible from a seed.
#pragma once

#include <cstdint>

namespace ginja {

// SplitMix64 — tiny, fast, and good enough for simulation/jitter purposes.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound) { return Next() % bound; }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(NextBelow(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Gaussian via Box–Muller (cheap enough for jitter).
  double NextGaussian(double mean, double stddev);

 private:
  std::uint64_t state_;
};

// TPC-C's NURand non-uniform distribution (clause 2.1.6).
// A is 255 for C_LAST, 1023 for C_ID, 8191 for OL_I_ID.
std::int64_t NuRand(SplitMix64& rng, std::int64_t a, std::int64_t x, std::int64_t y,
                    std::int64_t c_const);

}  // namespace ginja
