// A tiny runtime endpoint over the repo's own HTTP socket layer:
//
//   GET /metrics       Prometheus text exposition
//   GET /metrics.json  one-line JSON snapshot
//   GET /trace         recent trace spans (flight-recorder text); ?n=N
//   GET /healthz       "ok"
//
// ObsHttpHandler is an HttpTransport, so it plugs straight into
// HttpSocketServer — the same machinery the wire-level S3 pair uses —
// and is unit-testable without a socket. ObsHttpServer is the one-liner
// that binds it to 127.0.0.1:<port>.
#pragma once

#include <memory>

#include "cloud/s3/http_socket.h"
#include "obs/obs.h"

namespace ginja {

class ObsHttpHandler : public HttpTransport {
 public:
  explicit ObsHttpHandler(ObservabilityPtr obs) : obs_(std::move(obs)) {}

  Result<HttpResponse> RoundTrip(const HttpRequest& request) override;

 private:
  ObservabilityPtr obs_;
};

class ObsHttpServer {
 public:
  // port 0 binds an ephemeral port, available via port() when status() ok.
  explicit ObsHttpServer(ObservabilityPtr obs, int port = 0)
      : server_(std::make_shared<ObsHttpHandler>(std::move(obs)), port) {}

  Status status() const { return server_.status(); }
  int port() const { return server_.port(); }

 private:
  HttpSocketServer server_;
};

}  // namespace ginja
