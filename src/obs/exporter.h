// SnapshotFlusher — the periodic background exporter: every interval it
// takes one MetricsSnapshot and hands it to a caller-supplied callback
// (write to a file, append a JSON line to a bench log, push somewhere).
// Stop() flushes once more so the final partial interval is never lost.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "obs/metrics.h"

namespace ginja {

class SnapshotFlusher {
 public:
  using Callback = std::function<void(const MetricsSnapshot&)>;

  SnapshotFlusher(MetricsRegistry* registry, std::uint64_t interval_ms,
                  Callback on_flush);
  ~SnapshotFlusher();

  SnapshotFlusher(const SnapshotFlusher&) = delete;
  SnapshotFlusher& operator=(const SnapshotFlusher&) = delete;

  void Start();
  // Idempotent; joins the thread, then emits one final snapshot.
  void Stop();

  // Takes and delivers a snapshot immediately (also used by Stop()).
  void FlushOnce();

  std::uint64_t flushes() const {
    return flushes_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();

  MetricsRegistry* registry_;
  const std::uint64_t interval_ms_;
  Callback on_flush_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;
  bool stop_ = false;
  std::atomic<std::uint64_t> flushes_{0};
};

}  // namespace ginja
