#include "obs/exporter.h"

#include "obs/log.h"

namespace ginja {

SnapshotFlusher::SnapshotFlusher(MetricsRegistry* registry,
                                 std::uint64_t interval_ms, Callback on_flush)
    : registry_(registry),
      interval_ms_(interval_ms < 1 ? 1 : interval_ms),
      on_flush_(std::move(on_flush)) {}

SnapshotFlusher::~SnapshotFlusher() { Stop(); }

void SnapshotFlusher::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void SnapshotFlusher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
  }
  FlushOnce();  // final snapshot so the last interval is never lost
}

void SnapshotFlusher::FlushOnce() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  const auto now_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now).count());
  on_flush_(registry_->Snapshot(now_us));
  flushes_.fetch_add(1, std::memory_order_relaxed);
}

void SnapshotFlusher::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                     [&] { return stop_; })) {
      return;
    }
    lock.unlock();
    FlushOnce();
    lock.lock();
  }
}

}  // namespace ginja
