// The observability bundle every pipeline shares: one MetricsRegistry and
// one WriteTracer (the structured logger is process-global; see log.h).
//
// GinjaConfig carries a shared_ptr to one of these. Ginja creates a
// private bundle when the config has none, so gauges and stage histograms
// are always available through Ginja::observability(); standalone
// pipelines constructed without one simply run unobserved.
#pragma once

#include <memory>
#include <string_view>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ginja {

struct Observability {
  Observability() : Observability(TraceOptions{}) {}
  explicit Observability(const TraceOptions& trace_options)
      : tracer(trace_options) {
    tracer.RegisterMetrics(registry, &tracer);
  }

  MetricsRegistry registry;
  WriteTracer tracer;

  // Dumps the flight recorder — recent trace spans plus the logger's
  // recent lines — through the structured logger at kWarn. `reason` is
  // "kill" / "fault" / "recovery"-style context.
  void DumpFlightRecorder(std::string_view reason);
};

using ObservabilityPtr = std::shared_ptr<Observability>;

}  // namespace ginja
