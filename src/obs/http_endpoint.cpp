#include "obs/http_endpoint.h"

#include <chrono>
#include <cstdlib>

namespace ginja {

namespace {

HttpResponse TextResponse(int status, std::string body,
                          const std::string& content_type) {
  HttpResponse response;
  response.status = status;
  response.headers["content-type"] = content_type;
  response.body = ToBytes(body);
  return response;
}

std::uint64_t WallMicros() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now).count());
}

}  // namespace

Result<HttpResponse> ObsHttpHandler::RoundTrip(const HttpRequest& request) {
  if (request.method != "GET") {
    return TextResponse(405, "method not allowed\n", "text/plain");
  }
  if (request.path == "/metrics") {
    return TextResponse(200, obs_->registry.Snapshot(WallMicros()).ToPrometheus(),
                        "text/plain; version=0.0.4");
  }
  if (request.path == "/metrics.json") {
    return TextResponse(200, obs_->registry.Snapshot(WallMicros()).ToJson() + "\n",
                        "application/json");
  }
  if (request.path == "/trace") {
    std::size_t n = 128;
    const auto it = request.query.find("n");
    if (it != request.query.end()) {
      const long parsed = std::strtol(it->second.c_str(), nullptr, 10);
      if (parsed > 0) n = static_cast<std::size_t>(parsed);
    }
    return TextResponse(200, obs_->tracer.FlightRecorderDump(n), "text/plain");
  }
  if (request.path == "/healthz") {
    return TextResponse(200, "ok\n", "text/plain");
  }
  return TextResponse(404, "not found\n", "text/plain");
}

}  // namespace ginja
