// MetricsRegistry — one place where every stats struct in the repo
// registers its counters/gauges/histograms under stable, labeled names.
//
// Registration is non-owning: a component registers pointers to its live
// Counter/Histogram/Meter members (or a gauge callback) tagged with an
// `owner` key, and calls Unregister(owner) from its destructor before the
// members die. Snapshot() reads every registered metric under the registry
// mutex and serializes to a one-line JSON object or Prometheus text
// exposition — the two formats the bench smoke job and the /metrics
// endpoint emit.
//
// ResetAll() zeroes every registered resettable metric and bumps a
// generation number, all under the same mutex Snapshot() takes: a snapshot
// can never observe half of an interval reset, and its `generation` field
// tells interval readers whether a reset happened between two reads (the
// Counter::Reset/snapshot race the per-struct design had).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace ginja {

enum class MetricKind { kCounter, kGauge, kHistogram, kMeter };

const char* MetricKindName(MetricKind kind);

// Sorted-by-key (k, v) pairs; kept tiny (0–2 labels in practice).
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

struct MeterSnapshotValue {
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
};

struct MetricSample {
  std::string name;
  MetricLabels labels;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t counter = 0;      // kCounter
  double gauge = 0;               // kGauge
  HistogramSnapshot hist;         // kHistogram
  MeterSnapshotValue meter;       // kMeter
};

struct MetricsSnapshot {
  std::uint64_t generation = 0;
  std::uint64_t time_us = 0;  // caller-supplied (model or wall time)
  std::vector<MetricSample> samples;  // sorted by (name, labels)

  // One JSON object on a single line:
  //   {"generation":0,"time_us":1,"metrics":[{"name":...,"kind":...},...]}
  std::string ToJson() const;
  // Prometheus text exposition (histograms/meters as summaries).
  std::string ToPrometheus() const;

  // First sample with this name (and label subset, if given), or null.
  const MetricSample* Find(std::string_view name,
                           const MetricLabels& labels = {}) const;
};

class MetricsRegistry {
 public:
  void RegisterCounter(const void* owner, std::string name,
                       MetricLabels labels, Counter* counter);
  void RegisterGauge(const void* owner, std::string name, MetricLabels labels,
                     std::function<double()> fn);
  void RegisterHistogram(const void* owner, std::string name,
                         MetricLabels labels, Histogram* histogram);
  void RegisterMeter(const void* owner, std::string name, MetricLabels labels,
                     Meter* meter);

  // Removes every metric registered with this owner key. Components call
  // this from their destructors, before the registered members die.
  void Unregister(const void* owner);

  MetricsSnapshot Snapshot(std::uint64_t now_us = 0) const;

  // Zeroes every counter/histogram/meter (gauges are computed, not stored)
  // and bumps the generation; serialized against Snapshot() by the
  // registry mutex. Returns the new generation.
  std::uint64_t ResetAll();

  std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }
  std::size_t size() const;

 private:
  struct Entry {
    const void* owner = nullptr;
    std::string name;
    MetricLabels labels;
    MetricKind kind = MetricKind::kCounter;
    Counter* counter = nullptr;
    std::function<double()> gauge;
    Histogram* histogram = nullptr;
    Meter* meter = nullptr;
  };

  void Add(Entry entry);

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace ginja
