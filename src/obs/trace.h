// Write-lifecycle tracing: allocation-free span events in per-shard rings.
//
// A sampled write is followed through the commit pipeline — submit →
// staged → batch-close → encode-queue → encode → PUT → ack — plus the
// checkpoint part-upload and recovery fetch/apply paths. Each stage
// records a fixed-size SpanEvent into a bounded ring (no allocation after
// construction) and feeds a per-stage lock-free Histogram, which is what
// the latency-decomposition report ("where did my commit's 9 ms go") is
// built from.
//
// Sampling is deterministic in (seed, id): SplitMix64-style finalizer of
// seed^id modulo the sample period. The same seed and id stream always
// picks the same writes, so traces are reproducible across runs — all
// repo determinism flows through common/rng idioms.
//
// The rings double as a flight recorder: on Kill(), a fault-injection
// trip, or recovery, the last N spans (merged across shards, time-sorted)
// are dumped through the structured logger together with its own recent
// lines.
//
// Disabled cost: Record() and Sampled() are gated on one relaxed atomic
// load; pipelines additionally skip their timestamp plumbing entirely
// when the tracer is off, so compiled-in-but-disabled tracing is free.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.h"

namespace ginja {

class MetricsRegistry;

enum class TraceStage : std::uint8_t {
  kSubmit = 0,       // write enqueued (duration 0, marks trace start)
  kStaged,           // submit → staged by the aggregator
  kBatchClose,       // staged → batch closed
  kEncodeQueue,      // batch closed → uploader picked the object up
  kEncode,           // envelope encoding
  kPut,              // first PUT attempt → success (retries included)
  kAck,              // PUT done → unlocker retired the ack
  kFrontier,         // recoverable WAL frontier advanced (duration 0)
  kCheckpointPart,   // checkpoint/dump part: PUT issued → reaped
  kRecoveryFetch,    // recovery object: GET issued → blob consumed
  kRecoveryApply,    // recovery object: decode + apply to the target VFS
  kPutFirstByte,     // stream open → first data segment durable
  kPartPut,          // segment sealed → its part durable (streaming)
  kTailPut,          // segment sealed → replica-0 tail object durable
  kTailFetch,        // standby tail object: GET issued → blob consumed
  kTailApply,        // standby tail object: decode + apply into the image
  kChunkHash,        // delta dump: image chunked + SHA-1 hashed (per dump)
};
inline constexpr int kTraceStageCount = 17;

const char* TraceStageName(TraceStage stage);

struct SpanEvent {
  std::uint64_t trace_id = 0;     // write seq / part key / plan index
  std::uint64_t start_us = 0;     // model time
  std::uint64_t duration_us = 0;  // model time
  TraceStage stage = TraceStage::kSubmit;
};

struct TraceOptions {
  bool enabled = false;
  // Record 1 in `sample_period` trace ids (1 = every write).
  std::uint32_t sample_period = 64;
  // Per-shard ring capacity in events (rounded up to a power of two).
  std::size_t ring_size = 4096;
  // Rings; recording threads spread across them round-robin.
  int shards = 4;
  std::uint64_t seed = 0x0b5e77ab1e5eed01ull;
};

class WriteTracer {
 public:
  explicit WriteTracer(TraceOptions options = {});

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  const TraceOptions& options() const { return options_; }

  // Deterministic in (options.seed, id); false whenever disabled.
  bool Sampled(std::uint64_t id) const;

  // Records a span event (no-op when disabled). Also feeds the stage's
  // latency histogram unless the duration is a 0-length marker event.
  void Record(TraceStage stage, std::uint64_t trace_id, std::uint64_t start_us,
              std::uint64_t duration_us);

  const Histogram& stage_histogram(TraceStage stage) const {
    return stage_hist_[static_cast<int>(stage)];
  }
  std::uint64_t events_recorded() const { return events_.Get(); }

  // The most recent `max_events` spans across all rings, start-time order.
  std::vector<SpanEvent> RecentSpans(std::size_t max_events) const;

  // Human-readable flight-recorder text (recent spans, newest last).
  std::string FlightRecorderDump(std::size_t max_events = 128) const;

  // Registers the per-stage histograms as ginja_stage_latency_us{stage=...}
  // and the event counter; `owner` keys later Unregister().
  void RegisterMetrics(MetricsRegistry& registry, const void* owner);

 private:
  struct Ring {
    std::mutex mu;  // taken only for *sampled* events — rare by design
    std::vector<SpanEvent> events;  // fixed capacity, allocated up front
    std::size_t next = 0;
    std::uint64_t total = 0;
  };

  TraceOptions options_;
  std::uint32_t sample_period_;
  std::atomic<bool> enabled_;
  std::vector<std::unique_ptr<Ring>> rings_;
  Histogram stage_hist_[kTraceStageCount];
  Counter events_;
};

}  // namespace ginja
