// Small leveled structured logger: component + severity + key=value fields.
//
// Replaces the repo's ad-hoc "silently drop the error" paths (failed GC
// deletes, incomplete checkpoint part uploads, permanently failed PUTs,
// heartbeat misses) with one sink. Records go to stderr by default —
// swappable for tests — and the most recent ones are kept in a bounded
// in-memory ring that the observability flight recorder dumps alongside
// the trace spans.
//
// The default minimum level is kWarn so tests and benches stay quiet;
// error paths are rare, so the logger optimizes for "cheap when disabled"
// (one relaxed atomic load) rather than for throughput.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ginja {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* LogLevelName(LogLevel level);  // "DEBUG" / "INFO" / "WARN" / "ERROR"

struct LogField {
  std::string key;
  std::string value;

  LogField(std::string k, std::string v) : key(std::move(k)), value(std::move(v)) {}
  LogField(std::string k, std::string_view v) : key(std::move(k)), value(v) {}
  LogField(std::string k, const char* v) : key(std::move(k)), value(v) {}
  LogField(std::string k, std::uint64_t v)
      : key(std::move(k)), value(std::to_string(v)) {}
  LogField(std::string k, std::int64_t v)
      : key(std::move(k)), value(std::to_string(v)) {}
  LogField(std::string k, int v) : key(std::move(k)), value(std::to_string(v)) {}
  LogField(std::string k, double v)
      : key(std::move(k)), value(std::to_string(v)) {}
};

struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  std::string component;
  std::string message;
  std::vector<LogField> fields;
  std::uint64_t wall_us = 0;  // wall-clock stamp (CLOCK_REALTIME, us)
};

// "W [commit] upload failed object=wal/000123 code=UNAVAILABLE"
std::string FormatLogRecord(const LogRecord& record);

class Logger {
 public:
  using Sink = std::function<void(const LogRecord&)>;

  void Log(LogLevel level, std::string_view component,
           std::string_view message,
           std::initializer_list<LogField> fields = {});

  void SetMinLevel(LogLevel level) {
    min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel min_level() const {
    return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed));
  }
  // Check before building expensive fields for sub-Warn messages.
  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >= min_level_.load(std::memory_order_relaxed);
  }

  // Null restores the stderr sink.
  void SetSink(Sink sink);

  // Formatted recent records, oldest first, for the flight recorder.
  std::vector<std::string> RecentLines(std::size_t max = 64) const;

  std::uint64_t records_logged() const { return records_logged_.load(std::memory_order_relaxed); }

 private:
  static constexpr std::size_t kRingCapacity = 256;

  std::atomic<int> min_level_{static_cast<int>(LogLevel::kWarn)};
  std::atomic<std::uint64_t> records_logged_{0};
  mutable std::mutex mu_;  // guards sink_ and ring_
  Sink sink_;              // null = stderr
  std::deque<LogRecord> ring_;
};

// Process-wide logger; every component in src/ logs through it.
Logger& GlobalLog();

// Convenience: GlobalLog().Log(...).
void Log(LogLevel level, std::string_view component, std::string_view message,
         std::initializer_list<LogField> fields = {});

}  // namespace ginja
