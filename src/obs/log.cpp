#include "obs/log.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace ginja {

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

std::string FormatLogRecord(const LogRecord& record) {
  std::string out;
  out.reserve(64 + record.message.size());
  out += LogLevelName(record.level)[0];
  out += " [";
  out += record.component;
  out += "] ";
  out += record.message;
  for (const auto& field : record.fields) {
    out += ' ';
    out += field.key;
    out += '=';
    out += field.value;
  }
  return out;
}

void Logger::Log(LogLevel level, std::string_view component,
                 std::string_view message,
                 std::initializer_list<LogField> fields) {
  if (!Enabled(level)) return;
  LogRecord record;
  record.level = level;
  record.component = std::string(component);
  record.message = std::string(message);
  record.fields.assign(fields.begin(), fields.end());
  record.wall_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  records_logged_.fetch_add(1, std::memory_order_relaxed);

  Sink sink;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ring_.push_back(record);
    if (ring_.size() > kRingCapacity) ring_.pop_front();
    sink = sink_;
  }
  if (sink) {
    sink(record);
  } else {
    const std::string line = FormatLogRecord(record);
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

void Logger::SetSink(Sink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

std::vector<std::string> Logger::RecentLines(std::size_t max) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = std::min(max, ring_.size());
  std::vector<std::string> lines;
  lines.reserve(n);
  for (std::size_t i = ring_.size() - n; i < ring_.size(); ++i) {
    lines.push_back(FormatLogRecord(ring_[i]));
  }
  return lines;
}

Logger& GlobalLog() {
  static Logger* logger = new Logger();  // leaked: outlives static dtors
  return *logger;
}

void Log(LogLevel level, std::string_view component, std::string_view message,
         std::initializer_list<LogField> fields) {
  GlobalLog().Log(level, component, message, fields);
}

}  // namespace ginja
