#include "obs/obs.h"

namespace ginja {

void Observability::DumpFlightRecorder(std::string_view reason) {
  Logger& log = GlobalLog();
  log.Log(LogLevel::kWarn, "obs", "flight recorder dump",
          {{"reason", reason}});
  const std::string spans = tracer.FlightRecorderDump();
  log.Log(LogLevel::kWarn, "obs", spans, {});
  std::string lines = "recent log lines:\n";
  for (const std::string& line : log.RecentLines()) {
    lines += "  ";
    lines += line;
    lines += '\n';
  }
  log.Log(LogLevel::kWarn, "obs", lines, {});
}

}  // namespace ginja
