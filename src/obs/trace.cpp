#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.h"

namespace ginja {

namespace {

// SplitMix64 finalizer (same mixer common/rng builds on): a well-mixed
// hash of (seed ^ id) makes sampling uniform over arbitrary id streams
// while staying a pure function of the two.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kSubmit: return "submit";
    case TraceStage::kStaged: return "staged";
    case TraceStage::kBatchClose: return "batch_close";
    case TraceStage::kEncodeQueue: return "encode_queue";
    case TraceStage::kEncode: return "encode";
    case TraceStage::kPut: return "put";
    case TraceStage::kAck: return "ack";
    case TraceStage::kFrontier: return "frontier";
    case TraceStage::kCheckpointPart: return "checkpoint_part";
    case TraceStage::kRecoveryFetch: return "recovery_fetch";
    case TraceStage::kRecoveryApply: return "recovery_apply";
    case TraceStage::kPutFirstByte: return "put_first_byte";
    case TraceStage::kPartPut: return "part_put";
    case TraceStage::kTailPut: return "tail_put";
    case TraceStage::kTailFetch: return "tail_fetch";
    case TraceStage::kTailApply: return "tail_apply";
    case TraceStage::kChunkHash: return "chunk_hash";
  }
  return "?";
}

WriteTracer::WriteTracer(TraceOptions options)
    : options_(options),
      sample_period_(options.sample_period < 1 ? 1 : options.sample_period),
      enabled_(options.enabled) {
  const int shard_count = std::max(1, options_.shards);
  const std::size_t capacity =
      RoundUpPow2(std::max<std::size_t>(options_.ring_size, 8));
  rings_.reserve(static_cast<std::size_t>(shard_count));
  for (int i = 0; i < shard_count; ++i) {
    auto ring = std::make_unique<Ring>();
    ring->events.resize(capacity);
    rings_.push_back(std::move(ring));
  }
}

bool WriteTracer::Sampled(std::uint64_t id) const {
  if (!enabled()) return false;
  if (sample_period_ <= 1) return true;
  return Mix(options_.seed ^ id) % sample_period_ == 0;
}

void WriteTracer::Record(TraceStage stage, std::uint64_t trace_id,
                         std::uint64_t start_us, std::uint64_t duration_us) {
  if (!enabled()) return;
  const int stage_index = static_cast<int>(stage);
  // Marker stages (trace start / frontier advance) carry no duration; the
  // others always feed their histogram, even at 0 us — coarse model clocks
  // legitimately measure sub-tick stages as 0 and the count still matters.
  if (stage != TraceStage::kSubmit && stage != TraceStage::kFrontier) {
    stage_hist_[stage_index].Record(static_cast<double>(duration_us));
  }
  events_.Add();

  Ring& ring = *rings_[detail::ThisThreadStripe() % rings_.size()];
  std::lock_guard<std::mutex> lock(ring.mu);
  SpanEvent& slot = ring.events[ring.next];
  slot.trace_id = trace_id;
  slot.start_us = start_us;
  slot.duration_us = duration_us;
  slot.stage = stage;
  ring.next = (ring.next + 1) & (ring.events.size() - 1);
  ++ring.total;
}

std::vector<SpanEvent> WriteTracer::RecentSpans(std::size_t max_events) const {
  std::vector<SpanEvent> spans;
  for (const auto& ring_ptr : rings_) {
    Ring& ring = *ring_ptr;
    std::lock_guard<std::mutex> lock(ring.mu);
    const std::size_t capacity = ring.events.size();
    const std::size_t stored = std::min<std::uint64_t>(ring.total, capacity);
    // Oldest stored event first: the ring wrapped iff total > capacity.
    std::size_t idx = ring.total > capacity ? ring.next : 0;
    for (std::size_t i = 0; i < stored; ++i) {
      spans.push_back(ring.events[idx]);
      idx = (idx + 1) & (capacity - 1);
    }
  }
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     return a.start_us < b.start_us;
                   });
  if (spans.size() > max_events) {
    spans.erase(spans.begin(),
                spans.end() - static_cast<std::ptrdiff_t>(max_events));
  }
  return spans;
}

std::string WriteTracer::FlightRecorderDump(std::size_t max_events) const {
  const std::vector<SpanEvent> spans = RecentSpans(max_events);
  std::string out = "trace flight recorder: ";
  out += std::to_string(spans.size());
  out += " spans\n";
  char line[128];
  for (const SpanEvent& span : spans) {
    std::snprintf(line, sizeof line,
                  "  t=%llu stage=%s id=%llu dur_us=%llu\n",
                  static_cast<unsigned long long>(span.start_us),
                  TraceStageName(span.stage),
                  static_cast<unsigned long long>(span.trace_id),
                  static_cast<unsigned long long>(span.duration_us));
    out += line;
  }
  return out;
}

void WriteTracer::RegisterMetrics(MetricsRegistry& registry,
                                  const void* owner) {
  for (int i = 0; i < kTraceStageCount; ++i) {
    registry.RegisterHistogram(
        owner, "ginja_stage_latency_us",
        {{"stage", TraceStageName(static_cast<TraceStage>(i))}},
        &stage_hist_[i]);
  }
  registry.RegisterCounter(owner, "ginja_trace_events_total", {}, &events_);
}

}  // namespace ginja
