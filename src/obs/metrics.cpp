#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace ginja {

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendNumber(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

void AppendU64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

// Prometheus label set: {a="x",b="y"} (empty string when no labels).
std::string PromLabels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    for (char c : v) {
      if (c == '\\' || c == '"') out += '\\';
      if (c == '\n') { out += "\\n"; continue; }
      out += c;
    }
    out += '"';
  }
  out += '}';
  return out;
}

// Same, but with an extra label appended (for quantile series).
std::string PromLabelsPlus(const MetricLabels& labels, const char* key,
                           const char* value) {
  MetricLabels extended = labels;
  extended.emplace_back(key, value);
  return PromLabels(extended);
}

}  // namespace

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
    case MetricKind::kMeter: return "meter";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// MetricsSnapshot serialization

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"generation\":";
  AppendU64(out, generation);
  out += ",\"time_us\":";
  AppendU64(out, time_us);
  out += ",\"metrics\":[";
  bool first = true;
  for (const auto& sample : samples) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += JsonEscape(sample.name);
    out += '"';
    // "labels" is always present, even when empty, so consumers can index
    // into it without existence checks (stable schema).
    out += ",\"labels\":{";
    bool first_label = true;
    for (const auto& [k, v] : sample.labels) {
      if (!first_label) out += ',';
      first_label = false;
      out += '"';
      out += JsonEscape(k);
      out += "\":\"";
      out += JsonEscape(v);
      out += '"';
    }
    out += '}';
    out += ",\"kind\":\"";
    out += MetricKindName(sample.kind);
    out += '"';
    switch (sample.kind) {
      case MetricKind::kCounter:
        out += ",\"value\":";
        AppendU64(out, sample.counter);
        break;
      case MetricKind::kGauge:
        out += ",\"value\":";
        AppendNumber(out, sample.gauge);
        break;
      case MetricKind::kHistogram:
        out += ",\"count\":";
        AppendU64(out, sample.hist.count);
        out += ",\"mean\":";
        AppendNumber(out, sample.hist.mean);
        out += ",\"p50\":";
        AppendNumber(out, sample.hist.p50);
        out += ",\"p95\":";
        AppendNumber(out, sample.hist.p95);
        out += ",\"p99\":";
        AppendNumber(out, sample.hist.p99);
        out += ",\"max\":";
        AppendNumber(out, sample.hist.max);
        break;
      case MetricKind::kMeter:
        out += ",\"count\":";
        AppendU64(out, sample.meter.count);
        out += ",\"sum\":";
        AppendNumber(out, sample.meter.sum);
        out += ",\"min\":";
        AppendNumber(out, sample.meter.min);
        out += ",\"max\":";
        AppendNumber(out, sample.meter.max);
        break;
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string MetricsSnapshot::ToPrometheus() const {
  std::string out;
  std::string last_family;
  for (const auto& sample : samples) {
    if (sample.name != last_family) {
      last_family = sample.name;
      out += "# TYPE ";
      out += sample.name;
      switch (sample.kind) {
        case MetricKind::kCounter: out += " counter\n"; break;
        case MetricKind::kGauge: out += " gauge\n"; break;
        case MetricKind::kHistogram:
        case MetricKind::kMeter: out += " summary\n"; break;
      }
    }
    const std::string labels = PromLabels(sample.labels);
    switch (sample.kind) {
      case MetricKind::kCounter:
        out += sample.name;
        out += labels;
        out += ' ';
        AppendU64(out, sample.counter);
        out += '\n';
        break;
      case MetricKind::kGauge:
        out += sample.name;
        out += labels;
        out += ' ';
        AppendNumber(out, sample.gauge);
        out += '\n';
        break;
      case MetricKind::kHistogram: {
        const std::pair<const char*, double> quantiles[] = {
            {"0.5", sample.hist.p50},
            {"0.95", sample.hist.p95},
            {"0.99", sample.hist.p99},
        };
        for (const auto& [q, v] : quantiles) {
          out += sample.name;
          out += PromLabelsPlus(sample.labels, "quantile", q);
          out += ' ';
          AppendNumber(out, v);
          out += '\n';
        }
        out += sample.name;
        out += "_sum";
        out += labels;
        out += ' ';
        AppendNumber(out, sample.hist.mean * static_cast<double>(sample.hist.count));
        out += '\n';
        out += sample.name;
        out += "_count";
        out += labels;
        out += ' ';
        AppendU64(out, sample.hist.count);
        out += '\n';
        break;
      }
      case MetricKind::kMeter:
        out += sample.name;
        out += "_sum";
        out += labels;
        out += ' ';
        AppendNumber(out, sample.meter.sum);
        out += '\n';
        out += sample.name;
        out += "_count";
        out += labels;
        out += ' ';
        AppendU64(out, sample.meter.count);
        out += '\n';
        out += sample.name;
        out += "_min";
        out += labels;
        out += ' ';
        AppendNumber(out, sample.meter.min);
        out += '\n';
        out += sample.name;
        out += "_max";
        out += labels;
        out += ' ';
        AppendNumber(out, sample.meter.max);
        out += '\n';
        break;
    }
  }
  return out;
}

const MetricSample* MetricsSnapshot::Find(std::string_view name,
                                          const MetricLabels& labels) const {
  for (const auto& sample : samples) {
    if (sample.name != name) continue;
    bool match = true;
    for (const auto& want : labels) {
      if (std::find(sample.labels.begin(), sample.labels.end(), want) ==
          sample.labels.end()) {
        match = false;
        break;
      }
    }
    if (match) return &sample;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

void MetricsRegistry::Add(Entry entry) {
  std::sort(entry.labels.begin(), entry.labels.end());
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(std::move(entry));
}

void MetricsRegistry::RegisterCounter(const void* owner, std::string name,
                                      MetricLabels labels, Counter* counter) {
  Entry e;
  e.owner = owner;
  e.name = std::move(name);
  e.labels = std::move(labels);
  e.kind = MetricKind::kCounter;
  e.counter = counter;
  Add(std::move(e));
}

void MetricsRegistry::RegisterGauge(const void* owner, std::string name,
                                    MetricLabels labels,
                                    std::function<double()> fn) {
  Entry e;
  e.owner = owner;
  e.name = std::move(name);
  e.labels = std::move(labels);
  e.kind = MetricKind::kGauge;
  e.gauge = std::move(fn);
  Add(std::move(e));
}

void MetricsRegistry::RegisterHistogram(const void* owner, std::string name,
                                        MetricLabels labels,
                                        Histogram* histogram) {
  Entry e;
  e.owner = owner;
  e.name = std::move(name);
  e.labels = std::move(labels);
  e.kind = MetricKind::kHistogram;
  e.histogram = histogram;
  Add(std::move(e));
}

void MetricsRegistry::RegisterMeter(const void* owner, std::string name,
                                    MetricLabels labels, Meter* meter) {
  Entry e;
  e.owner = owner;
  e.name = std::move(name);
  e.labels = std::move(labels);
  e.kind = MetricKind::kMeter;
  e.meter = meter;
  Add(std::move(e));
}

void MetricsRegistry::Unregister(const void* owner) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [owner](const Entry& e) {
                                  return e.owner == owner;
                                }),
                 entries_.end());
}

MetricsSnapshot MetricsRegistry::Snapshot(std::uint64_t now_us) const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.generation = generation_.load(std::memory_order_acquire);
  snap.time_us = now_us;
  snap.samples.reserve(entries_.size());
  for (const Entry& e : entries_) {
    MetricSample sample;
    sample.name = e.name;
    sample.labels = e.labels;
    sample.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        sample.counter = e.counter->Get();
        break;
      case MetricKind::kGauge:
        sample.gauge = e.gauge ? e.gauge() : 0;
        break;
      case MetricKind::kHistogram:
        sample.hist = e.histogram->Snapshot();
        break;
      case MetricKind::kMeter:
        sample.meter.count = e.meter->Count();
        sample.meter.sum = e.meter->Sum();
        sample.meter.min = e.meter->Min();
        sample.meter.max = e.meter->Max();
        break;
    }
    snap.samples.push_back(std::move(sample));
  }
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return snap;
}

std::uint64_t MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : entries_) {
    switch (e.kind) {
      case MetricKind::kCounter: e.counter->Reset(); break;
      case MetricKind::kGauge: break;  // computed, nothing stored
      case MetricKind::kHistogram: e.histogram->Reset(); break;
      case MetricKind::kMeter: e.meter->Reset(); break;
    }
  }
  return generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace ginja
