#include "db/table.h"

#include <cassert>
#include <functional>

#include "common/codec/crc32.h"

namespace ginja {

namespace {

// Page header: crc32 over the rest, used bytes, flush LSN.
constexpr std::size_t kPageHeaderSize = 4 + 4 + 8;

std::uint64_t HashKey(const std::string& key) {
  // FNV-1a: stable across platforms (std::hash is not guaranteed stable).
  std::uint64_t h = 1469598103934665603ull;
  for (char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

Table::Table(std::string name, std::uint32_t buckets, std::size_t page_size)
    : name_(std::move(name)), page_size_(page_size) {
  assert(buckets > 0);
  buckets_.resize(buckets);
}

std::uint32_t Table::BucketOf(const std::string& key) const {
  return static_cast<std::uint32_t>(HashKey(key) % buckets_.size());
}

void Table::Put(const std::string& key, Bytes value, Lsn lsn) {
  const std::uint32_t b = BucketOf(key);
  auto& bucket = buckets_[b];
  auto it = bucket.find(key);
  if (it == bucket.end()) {
    approx_bytes_ += key.size() + value.size();
    ++row_count_;
    bucket.emplace(key, std::move(value));
  } else {
    approx_bytes_ += value.size();
    approx_bytes_ -= it->second.size();
    it->second = std::move(value);
  }
  dirty_.try_emplace(b, lsn);
  MaybeSplit();
}

bool Table::Delete(const std::string& key, Lsn lsn) {
  const std::uint32_t b = BucketOf(key);
  auto& bucket = buckets_[b];
  auto it = bucket.find(key);
  if (it == bucket.end()) return false;
  approx_bytes_ -= key.size() + it->second.size();
  --row_count_;
  bucket.erase(it);
  dirty_.try_emplace(b, lsn);
  return true;
}

std::optional<Bytes> Table::Get(const std::string& key) const {
  const auto& bucket = buckets_[BucketOf(key)];
  auto it = bucket.find(key);
  if (it == bucket.end()) return std::nullopt;
  return it->second;
}

std::vector<Table::DirtyPage> Table::DirtyPages() const {
  std::vector<DirtyPage> out;
  out.reserve(dirty_.size());
  for (const auto& [bucket, lsn] : dirty_) out.push_back({bucket, lsn});
  std::sort(out.begin(), out.end(), [](const DirtyPage& a, const DirtyPage& b) {
    return a.first_dirty_lsn < b.first_dirty_lsn;
  });
  return out;
}

std::optional<Lsn> Table::OldestDirtyLsn() const {
  std::optional<Lsn> oldest;
  for (const auto& [bucket, lsn] : dirty_) {
    if (!oldest || lsn < *oldest) oldest = lsn;
  }
  return oldest;
}

Bytes Table::SerializeBucket(std::uint32_t b, Lsn flush_lsn) {
  assert(b < buckets_.size());
  Bytes rows;
  for (const auto& [key, value] : buckets_[b]) {
    PutVarint(rows, key.size());
    Append(rows, View(ToBytes(key)));
    PutVarint(rows, value.size());
    Append(rows, View(value));
  }
  assert(kPageHeaderSize + rows.size() <= page_size_ &&
         "bucket overflow must have been split before serialization");

  Bytes page;
  page.reserve(page_size_);
  PutU32(page, 0);  // crc placeholder
  PutU32(page, static_cast<std::uint32_t>(rows.size()));
  PutU64(page, flush_lsn);
  Append(page, View(rows));
  page.resize(page_size_, 0);
  const std::uint32_t crc = Crc32(ByteView(page.data() + 4, page.size() - 4));
  page[0] = static_cast<std::uint8_t>(crc);
  page[1] = static_cast<std::uint8_t>(crc >> 8);
  page[2] = static_cast<std::uint8_t>(crc >> 16);
  page[3] = static_cast<std::uint8_t>(crc >> 24);
  return page;
}

void Table::MarkClean(std::uint32_t b) { dirty_.erase(b); }

void Table::MaybeSplit() {
  // Estimate the worst-case serialized bucket size cheaply: if average
  // bytes-per-bucket crosses half the page payload, double the buckets.
  // Individual hot buckets are checked exactly at serialization time via
  // the assert; the conservative threshold keeps that assert unreachable
  // under uniform-ish hashing.
  const std::size_t payload = page_size_ - kPageHeaderSize;
  if (approx_bytes_ + row_count_ * 10 < buckets_.size() * payload / 4) return;

  std::vector<std::map<std::string, Bytes>> next(buckets_.size() * 2);
  for (auto& bucket : buckets_) {
    for (auto& [key, value] : bucket) {
      next[HashKey(key) % next.size()].emplace(key, std::move(value));
    }
  }
  buckets_ = std::move(next);
  // Everything is dirty after redistribution: the next checkpoint rewrites
  // the whole file. LSN 0 forces these pages to flush first.
  dirty_.clear();
  for (std::uint32_t b = 0; b < buckets_.size(); ++b) dirty_.emplace(b, 0);
}

Result<std::vector<Table::LoadedRow>> Table::ParseFile(ByteView file_bytes,
                                                       std::size_t page_size) {
  std::vector<LoadedRow> rows;
  std::map<std::string, std::size_t> best;  // key -> index in rows
  for (std::size_t off = 0; off + page_size <= file_bytes.size();
       off += page_size) {
    const std::uint8_t* page = file_bytes.data() + off;
    const std::uint32_t stored_crc = GetU32(page);
    const std::uint32_t used = GetU32(page + 4);
    const Lsn flush_lsn = GetU64(page + 8);
    if (used == 0 && stored_crc == 0) continue;  // never-written page
    if (used > page_size - kPageHeaderSize) {
      return Status::Corruption("table page used-count overflow");
    }
    if (Crc32(ByteView(page + 4, page_size - 4)) != stored_crc) {
      return Status::Corruption("table page crc mismatch");
    }
    const ByteView payload(page + kPageHeaderSize, used);
    std::size_t pos = 0;
    while (pos < payload.size()) {
      auto klen = GetVarint(payload, pos);
      if (!klen || pos + *klen > payload.size()) {
        return Status::Corruption("table row key truncated");
      }
      std::string key(reinterpret_cast<const char*>(payload.data() + pos), *klen);
      pos += *klen;
      auto vlen = GetVarint(payload, pos);
      if (!vlen || pos + *vlen > payload.size()) {
        return Status::Corruption("table row value truncated");
      }
      Bytes value(payload.begin() + static_cast<long>(pos),
                  payload.begin() + static_cast<long>(pos + *vlen));
      pos += *vlen;

      auto it = best.find(key);
      if (it == best.end()) {
        best.emplace(key, rows.size());
        rows.push_back({std::move(key), std::move(value), flush_lsn});
      } else if (rows[it->second].src_lsn < flush_lsn) {
        rows[it->second].value = std::move(value);
        rows[it->second].src_lsn = flush_lsn;
      }
    }
  }
  return rows;
}

void Table::InstallLoaded(const std::string& key, Bytes value) {
  auto& bucket = buckets_[BucketOf(key)];
  auto existing = bucket.find(key);
  if (existing == bucket.end()) {
    ++row_count_;
    approx_bytes_ += key.size() + value.size();
    bucket.emplace(key, std::move(value));
  } else {
    approx_bytes_ += value.size();
    approx_bytes_ -= existing->second.size();
    existing->second = std::move(value);
  }
  MaybeSplit();
}

}  // namespace ginja
