// Transactional storage engine with PostgreSQL / MySQL I/O personalities.
//
// A deliberately small ACID engine whose *file I/O* reproduces what the
// paper's Table 1 describes, because that I/O is Ginja's entire interface
// to the DBMS:
//   * commits do synchronous page-granular WAL writes (rewriting the
//     current partial page — the pattern Ginja's aggregation coalesces);
//   * PostgreSQL-personality checkpoints are periodic and full: sync write
//     to pg_clog (begin), dirty data pages, catalog, then a sync write to
//     global/pg_control (end), then old pg_xlog segments are removed;
//   * MySQL-personality checkpoints are fuzzy: small batches of sync data-
//     page writes at arbitrary times (begin), a checkpoint block at offset
//     512/1536 of ib_logfile0 (end), with the circular log forcing a flush
//     when it is about to wrap over un-checkpointed pages.
//
// Crash recovery follows ARIES-lite redo: load table pages, read the
// control block, replay committed WAL records after the checkpoint LSN,
// skipping records already reflected in a page (per-page flush LSNs).
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "db/layout.h"
#include "db/table.h"
#include "db/wal.h"
#include "fs/vfs.h"

namespace ginja {

struct DbOptions {
  std::uint32_t default_buckets = 64;
  // A full/fuzzy checkpoint is triggered from the commit path when this
  // many WAL bytes accumulate since the last one (0 = manual only).
  std::uint64_t auto_checkpoint_wal_bytes = 0;
  // MySQL personality: dirty pages flushed per fuzzy batch.
  std::size_t fuzzy_batch_pages = 32;
};

class Database {
 public:
  Database(VfsPtr vfs, DbLayout layout, DbOptions options = {});
  ~Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Initialises a fresh database directory (catalog + control block).
  Status Create();

  // Opens an existing directory: loads the catalog and table files, then
  // redoes the WAL from the checkpoint recorded in the control block.
  // This is both the clean-restart and the crash-recovery path.
  Status Open();

  // Must be called before the workload starts (catalog writes are not
  // WAL-logged; see DESIGN.md).
  Status CreateTable(const std::string& name, std::uint32_t buckets = 0);
  bool HasTable(const std::string& name) const;

  class Transaction {
   public:
    bool active() const { return active_; }

   private:
    friend class Database;
    std::vector<WalRecord> ops_;
    bool active_ = false;
  };

  Transaction Begin();
  // Buffers a row write/delete in the transaction (applied at Commit).
  Status Put(Transaction& txn, const std::string& table, const std::string& key,
             Bytes value);
  Status Delete(Transaction& txn, const std::string& table,
                const std::string& key);
  // Applies the writeset and durably appends it (plus a commit record) to
  // the WAL in one synchronous write sequence. Read-only txns are free.
  Status Commit(Transaction& txn);

  std::optional<Bytes> Get(const std::string& table,
                           const std::string& key) const;

  // Full checkpoint (PostgreSQL style; also used for clean shutdown and
  // for the forced flush when the circular log wraps).
  Status Checkpoint();
  // One fuzzy-checkpoint step (MySQL style): flush a batch of the oldest
  // dirty pages, then advance the checkpoint header.
  Status FuzzyFlush();

  Status CleanShutdown() { return Checkpoint(); }

  // -- introspection ----------------------------------------------------------
  Lsn WalEndLsn() const;
  Lsn CheckpointLsn() const;
  std::uint64_t CommittedTxns() const { return committed_txns_.Get(); }
  std::uint64_t ApproxDataBytes() const;
  std::vector<std::string> TableNames() const;
  std::uint64_t RowCount(const std::string& table) const;
  const DbLayout& layout() const { return layout_; }

 private:
  Status CheckpointLocked();
  Status FuzzyFlushLocked();
  Status WriteControlLocked(Lsn checkpoint_lsn);
  Status WriteCatalogLocked();
  Status WriteClogLocked();
  Result<ControlBlock> ReadControl();

  VfsPtr vfs_;
  DbLayout layout_;
  DbOptions options_;

  mutable std::mutex mu_;
  std::map<std::string, Table> tables_;
  std::unique_ptr<WalWriter> wal_;
  Lsn checkpoint_lsn_ = 0;
  std::uint64_t next_txn_id_ = 1;
  std::uint64_t control_counter_ = 0;
  std::uint64_t wal_bytes_since_checkpoint_ = 0;
  bool in_commit_path_checkpoint_ = false;
  Counter committed_txns_;
};

}  // namespace ginja
