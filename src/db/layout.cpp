#include "db/layout.h"

#include <cassert>
#include <cstdio>
#include <cstring>

#include "common/bytes.h"
#include "common/codec/crc32.h"

namespace ginja {

DbLayout DbLayout::Postgres() {
  DbLayout l;
  l.flavor = DbFlavor::kPostgres;
  l.wal_page_size = 8192;
  l.wal_segment_size = 16 * 1024 * 1024;
  l.data_page_size = 8192;
  l.circular_wal = false;
  l.wal_file_count = 1;
  l.wal_header_pages = 0;
  return l;
}

DbLayout DbLayout::MySql() {
  DbLayout l;
  l.flavor = DbFlavor::kMySql;
  l.wal_page_size = 512;
  l.wal_segment_size = 48 * 1024 * 1024;
  l.data_page_size = 16384;
  l.circular_wal = true;
  l.wal_file_count = 2;
  l.wal_header_pages = 4;  // ib_logfile0 offsets 0, 512, 1024, 1536
  return l;
}

DbLayout::WalLocation DbLayout::LocateWalPage(std::uint64_t logical_page) const {
  if (!circular_wal) {
    const std::uint64_t segment = logical_page / PagesPerSegment();
    const std::uint64_t page_in_segment = logical_page % PagesPerSegment();
    return {WalFileName(segment), page_in_segment * wal_page_size};
  }
  // Circular: slot rotates over the usable pages of the file group; the
  // first `wal_header_pages` pages of file 0 are reserved for the header.
  const std::uint64_t slot = logical_page % CircularSlots();
  const std::uint64_t file0_usable = PagesPerSegment() - wal_header_pages;
  if (slot < file0_usable) {
    return {WalFileName(0), (slot + wal_header_pages) * wal_page_size};
  }
  const std::uint64_t rest = slot - file0_usable;
  const std::uint64_t file_index = 1 + rest / PagesPerSegment();
  return {WalFileName(file_index), (rest % PagesPerSegment()) * wal_page_size};
}

std::string DbLayout::WalFileName(std::uint64_t file_index) const {
  if (flavor == DbFlavor::kPostgres) {
    // PostgreSQL segment naming: timeline 1, 24 hex digits.
    char buf[64];
    std::snprintf(buf, sizeof buf, "pg_xlog/%08X%08X%08X", 1u,
                  static_cast<unsigned>(file_index >> 8),
                  static_cast<unsigned>(file_index & 0xFF) + 1);
    return buf;
  }
  return "ib_logfile" + std::to_string(file_index);
}

std::string DbLayout::TableFileName(std::string_view table) const {
  if (flavor == DbFlavor::kPostgres) {
    return "base/16384/" + std::string(table);
  }
  return std::string(table) + ".ibd";
}

std::string DbLayout::CatalogFileName() const {
  return flavor == DbFlavor::kPostgres ? "global/pg_filenode.map" : "ibdata0";
}

std::string DbLayout::ControlFileName() const {
  return flavor == DbFlavor::kPostgres ? "global/pg_control" : "ib_logfile0";
}

std::uint64_t DbLayout::ControlOffset(int slot) const {
  if (flavor == DbFlavor::kPostgres) return 0;
  return slot == 0 ? 512 : 1536;  // InnoDB's two checkpoint header slots
}

FileKind DbLayout::Classify(std::string_view path, std::uint64_t offset) const {
  if (flavor == DbFlavor::kPostgres) {
    if (path.starts_with("pg_xlog/")) return FileKind::kWalSegment;
    if (path.starts_with("pg_clog/")) return FileKind::kClog;
    if (path == "global/pg_control") return FileKind::kControl;
    if (path == "global/pg_filenode.map") return FileKind::kCatalog;
    if (path.starts_with("base/")) return FileKind::kTableData;
    return FileKind::kOther;
  }
  if (path.starts_with("ib_logfile")) {
    // The first 2048 bytes of ib_logfile0 are the header region; everything
    // else in the log files is WAL data. Table 1: checkpoint end is a sync
    // write at offset 512 and/or 1536 of ib_logfile0.
    if (path == "ib_logfile0" && offset < wal_header_pages * wal_page_size) {
      return FileKind::kControl;
    }
    return FileKind::kWalSegment;
  }
  if (path == "ibdata0") return FileKind::kCatalog;
  if (path.ends_with(".ibd") || path.starts_with("ibdata")) {
    return FileKind::kTableData;
  }
  if (path.ends_with(".frm")) return FileKind::kTableData;
  return FileKind::kOther;
}

namespace {
constexpr std::uint32_t kControlMagic = 0x43544C47u;  // "GLTC"
}  // namespace

void ControlBlock::EncodeTo(std::uint8_t out[kEncodedSize]) const {
  Bytes buf;
  buf.reserve(kEncodedSize);
  PutU32(buf, kControlMagic);
  PutU32(buf, 0);  // crc placeholder
  PutU64(buf, checkpoint_lsn);
  PutU64(buf, wal_end_hint);
  PutU64(buf, counter);
  const std::uint32_t crc = Crc32(ByteView(buf.data() + 8, buf.size() - 8));
  buf[4] = static_cast<std::uint8_t>(crc);
  buf[5] = static_cast<std::uint8_t>(crc >> 8);
  buf[6] = static_cast<std::uint8_t>(crc >> 16);
  buf[7] = static_cast<std::uint8_t>(crc >> 24);
  std::memcpy(out, buf.data(), kEncodedSize);
}

bool ControlBlock::Decode(const std::uint8_t* in, std::size_t len,
                          ControlBlock* out) {
  if (len < kEncodedSize) return false;
  if (GetU32(in) != kControlMagic) return false;
  const std::uint32_t stored_crc = GetU32(in + 4);
  if (Crc32(ByteView(in + 8, kEncodedSize - 8)) != stored_crc) return false;
  out->checkpoint_lsn = GetU64(in + 8);
  out->wal_end_hint = GetU64(in + 16);
  out->counter = GetU64(in + 24);
  return true;
}

}  // namespace ginja
