// Database I/O personalities (paper §4, Table 1).
//
// The engine in database.h is one transactional storage engine with two
// on-disk *personalities* that reproduce how PostgreSQL 9.3 and
// MySQL 5.7/InnoDB lay out and touch their files — because that I/O shape
// (file names, page sizes, sync-write markers) is the only thing Ginja
// observes:
//
//                      PostgreSQL                MySQL/InnoDB
//   WAL page           8 kB                      512 B log block
//   WAL files          16 MB pg_xlog segments    2 × 48 MB circular ib_logfile
//   data page          8 kB                      16 kB
//   ckpt begin event   sync write to pg_clog     sync write to a data file
//   ckpt end event     sync write to pg_control  sync write at offset 512/1536
//                                                of ib_logfile0
//   checkpoint style   periodic, full            fuzzy (small batches anytime)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ginja {

using Lsn = std::uint64_t;  // logical byte offset in the WAL record stream

enum class DbFlavor { kPostgres, kMySql };

enum class FileKind {
  kWalSegment,  // pg_xlog/* or ib_logfile* data region
  kTableData,   // base/* or *.ibd / ibdata*
  kClog,        // pg_clog/* (PostgreSQL only; checkpoint-begin marker)
  kControl,     // global/pg_control, or the ib_logfile0 header region
  kCatalog,     // table catalog (global/pg_filenode.map or ibdata0 region)
  kOther,
};

struct DbLayout {
  DbFlavor flavor = DbFlavor::kPostgres;
  std::size_t wal_page_size = 8192;
  std::size_t wal_segment_size = 16 * 1024 * 1024;
  std::size_t data_page_size = 8192;
  bool circular_wal = false;
  int wal_file_count = 1;        // files live concurrently (MySQL: 2)
  std::size_t wal_header_pages = 0;  // reserved header pages in first WAL file

  // Page header: crc32 + used + logical page number.
  static constexpr std::size_t kWalPageHeaderSize = 4 + 2 + 8;
  std::size_t WalPayloadSize() const { return wal_page_size - kWalPageHeaderSize; }
  std::size_t PagesPerSegment() const { return wal_segment_size / wal_page_size; }

  // Usable (non-header) WAL page slots across the circular group; for the
  // append-only PostgreSQL layout this is per-segment and unbounded overall.
  std::size_t CircularSlots() const {
    return static_cast<std::size_t>(wal_file_count) * PagesPerSegment() -
           wal_header_pages;
  }

  // Maps a logical WAL page number to its file and byte offset.
  struct WalLocation {
    std::string file;
    std::uint64_t offset;
  };
  WalLocation LocateWalPage(std::uint64_t logical_page) const;

  std::string WalFileName(std::uint64_t file_index) const;
  std::string TableFileName(std::string_view table) const;
  std::string CatalogFileName() const;
  std::string ControlFileName() const;  // MySQL: ib_logfile0 (header region)
  std::string ClogFileName() const;     // PostgreSQL only

  // Byte offsets within ControlFileName() where the control block may live.
  // PostgreSQL: {0}. MySQL: {512, 1536} (InnoDB's two alternating slots).
  std::uint64_t ControlOffset(int slot) const;
  int ControlSlotCount() const { return flavor == DbFlavor::kMySql ? 2 : 1; }

  // Classifies a path (and offset — needed to split the MySQL log header
  // region from its log data region) the same way a Ginja processor must.
  FileKind Classify(std::string_view path, std::uint64_t offset) const;

  static DbLayout Postgres();
  static DbLayout MySql();
  const char* Name() const {
    return flavor == DbFlavor::kPostgres ? "postgresql" : "mysql";
  }
};

// The control block: what pg_control (or InnoDB's log header checkpoint
// slots) durably records — where redo must start.
struct ControlBlock {
  Lsn checkpoint_lsn = 0;
  Lsn wal_end_hint = 0;   // advisory; recovery still scans to the true end
  std::uint64_t counter = 0;  // monotonically increasing write counter

  static constexpr std::size_t kEncodedSize = 4 + 4 + 8 + 8 + 8;
  void EncodeTo(std::uint8_t out[kEncodedSize]) const;
  // Returns false if magic/crc do not validate.
  static bool Decode(const std::uint8_t* in, std::size_t len, ControlBlock* out);
};

}  // namespace ginja
