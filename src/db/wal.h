// Write-ahead log: record format, page-buffered writer, recovery reader.
//
// The WAL is a logical byte stream of records chopped into fixed-size pages
// (8 kB PostgreSQL / 512 B InnoDB), each page carrying a CRC, a used-byte
// count, and its logical page number (so circular reuse is detectable).
// An LSN is the record's byte offset in the logical stream, which makes the
// LSN ↔ (file, offset) mapping purely arithmetic via DbLayout.
//
// Commit behaviour matches what Ginja observes on real systems: a commit
// serialises its writeset plus a commit record, appends them to the current
// page buffer, and rewrites every touched page in place — so the *same*
// (file, offset) is written repeatedly as a page fills. That rewrite
// pattern is exactly what makes Ginja's aggregation (Alg. 2) pay off.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "db/layout.h"
#include "fs/vfs.h"

namespace ginja {

enum class WalRecordType : std::uint8_t {
  kPut = 1,
  kDelete = 2,
  kCommit = 3,
};

struct WalRecord {
  WalRecordType type = WalRecordType::kPut;
  std::uint64_t txn_id = 0;
  std::string table;  // empty for kCommit
  std::string key;
  Bytes value;        // empty for kDelete/kCommit
  Lsn lsn = 0;        // filled by the reader

  Bytes Serialize() const;
};

class WalWriter {
 public:
  // `start_lsn` is the end of the valid stream (0 for a fresh database).
  // `on_wrap_needed(oldest_needed_page)` is invoked when the circular log
  // is about to overwrite a page still required for recovery; the callee
  // (the engine) must advance the checkpoint before returning — InnoDB's
  // "log free space" forced flush.
  WalWriter(VfsPtr vfs, DbLayout layout, Lsn start_lsn,
            std::function<void()> on_wrap_needed = nullptr);

  // Appends the records and durably writes every touched WAL page (the
  // final page write carries sync=true: the paper's "update commit" event).
  // Returns the LSN just past the appended records.
  Result<Lsn> AppendAndSync(const std::vector<WalRecord>& records);

  Lsn EndLsn() const;

  // Oldest logical page that must be preserved for redo from `lsn`.
  std::uint64_t PageOfLsn(Lsn lsn) const { return lsn / layout_.WalPayloadSize(); }

  // Lets the engine garbage-collect whole segments below the checkpoint
  // (PostgreSQL recycling). Returns removed file names.
  std::vector<std::string> RemoveSegmentsBelow(Lsn checkpoint_lsn);

  // Informs the writer of the current checkpoint so the circular-wrap guard
  // knows which pages are still needed.
  void SetCheckpointLsn(Lsn lsn);

 private:
  Status FlushPage(std::uint64_t logical_page, bool sync);
  void EnsureWrapSafe(std::uint64_t logical_page);

  VfsPtr vfs_;
  DbLayout layout_;
  std::function<void()> on_wrap_needed_;

  mutable std::mutex mu_;
  Lsn end_lsn_;
  std::atomic<Lsn> checkpoint_lsn_{0};
  std::uint64_t current_page_;   // logical page holding end_lsn_
  Bytes current_payload_;        // payload bytes of the current page
};

class WalReader {
 public:
  WalReader(VfsPtr vfs, DbLayout layout);

  // Scans committed transactions starting at `from_lsn`, invoking
  // `on_record` for each kPut/kDelete of a *committed* transaction, in
  // commit order. Records of transactions whose kCommit never made it to
  // disk are discarded (atomicity). Returns the end of the valid stream.
  Result<Lsn> Replay(Lsn from_lsn,
                     const std::function<void(const WalRecord&)>& on_record);

 private:
  // Reads the payload of a logical page; nullopt when the page is missing,
  // corrupt, or belongs to an older wrap cycle.
  std::optional<Bytes> ReadPagePayload(std::uint64_t logical_page);

  VfsPtr vfs_;
  DbLayout layout_;
};

}  // namespace ginja
