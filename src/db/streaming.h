// Streaming replication — the Pilot-Light baseline Ginja is compared
// against (paper §2, §9: PostgreSQL Streaming Replication / MySQL
// primary-backup replication to a warm VM in the cloud).
//
// The primary intercepts its WAL writes (same FileEventListener seam Ginja
// uses) and ships them over a simulated WAN link to a warm standby that
// mirrors the WAL files. In synchronous mode every commit waits for the
// standby's acknowledgement (zero RPO, WAN round-trip on the commit path);
// in asynchronous mode commits return immediately and the replication lag
// is the RPO. Failover opens the standby's database — fast, because the
// standby is warm and its base backup plus shipped WAL are already local.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "common/blocking_queue.h"
#include "common/clock.h"
#include "common/stats.h"
#include "db/database.h"
#include "fs/intercept_fs.h"
#include "fs/mem_fs.h"

namespace ginja {

struct ReplicationConfig {
  bool synchronous = false;
  // One-way link latency (model time); the paper's Lisbon↔us-east RTT is
  // ~90-100 ms, so ~45'000 us one-way.
  std::uint64_t link_latency_us = 45'000;
  // Link throughput for shipped WAL bytes.
  double us_per_kb = 100.0;  // ~10 MB/s
};

// The warm backup: receives WAL file writes into its own file system
// (seeded with a base backup of the primary) and can fail over by running
// normal DBMS crash recovery on what it has.
class StandbyServer {
 public:
  StandbyServer(std::shared_ptr<MemFs> base_backup, DbLayout layout);

  void ApplyWalWrite(const std::string& file, std::uint64_t offset,
                     const Bytes& data);

  // Promotes the standby: opens the database on the mirrored files.
  // Returns the warm database, ready to serve.
  Result<std::unique_ptr<Database>> Failover();

  std::uint64_t writes_received() const { return writes_received_.Get(); }

 private:
  std::shared_ptr<MemFs> fs_;
  DbLayout layout_;
  Counter writes_received_;
};

// Primary-side shipper. Listens to the interception FS; forwards WAL
// writes over the simulated link; blocks the commit in synchronous mode.
class StreamingPrimary : public FileEventListener {
 public:
  StreamingPrimary(std::shared_ptr<StandbyServer> standby, DbLayout layout,
                   std::shared_ptr<Clock> clock, ReplicationConfig config);
  ~StreamingPrimary() override;

  void OnFileEvent(const FileEvent& event) override;

  // Blocks until every shipped write reached the standby.
  void Drain();
  // Severs the link (disaster on the primary). Unshipped writes are lost —
  // that loss is the asynchronous mode's RPO.
  void Kill();

  std::uint64_t writes_shipped() const { return shipped_.Get(); }
  std::uint64_t writes_dropped() const { return dropped_.Get(); }

 private:
  struct Shipment {
    std::string file;
    std::uint64_t offset;
    Bytes data;
  };
  void LinkLoop();
  std::uint64_t TransferMicros(std::size_t bytes) const;

  std::shared_ptr<StandbyServer> standby_;
  DbLayout layout_;
  std::shared_ptr<Clock> clock_;
  ReplicationConfig config_;

  BlockingQueue<Shipment> link_queue_;
  std::thread link_thread_;
  std::mutex mu_;
  std::condition_variable ack_cv_;
  std::uint64_t sent_ = 0;
  std::uint64_t acked_ = 0;
  bool killed_ = false;

  Counter shipped_;
  Counter dropped_;
};

}  // namespace ginja
