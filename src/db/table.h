// Hash-bucketed heap tables with page-granular dirty tracking.
//
// Rows live in hash buckets; each bucket serialises into exactly one data
// page (8 kB PostgreSQL / 16 kB InnoDB) written at offset bucket×page_size
// of the table's file. When a bucket outgrows its page the table doubles
// its bucket count and redistributes (marking everything dirty — the next
// checkpoint rewrites the file). Every page header carries the flush LSN so
// a loader can resolve the duplicates a crash mid-redistribution can leave
// behind, and so redo can skip records already reflected in a page.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "db/layout.h"
#include "fs/vfs.h"

namespace ginja {

class Table {
 public:
  Table(std::string name, std::uint32_t buckets, std::size_t page_size);

  const std::string& name() const { return name_; }
  std::uint32_t bucket_count() const { return static_cast<std::uint32_t>(buckets_.size()); }
  std::uint64_t row_count() const { return row_count_; }

  // Mutations record the LSN that caused them for fuzzy-checkpoint
  // accounting (first-dirty LSN per bucket).
  void Put(const std::string& key, Bytes value, Lsn lsn);
  bool Delete(const std::string& key, Lsn lsn);
  std::optional<Bytes> Get(const std::string& key) const;

  struct DirtyPage {
    std::uint32_t bucket;
    Lsn first_dirty_lsn;
  };
  // Dirty buckets, oldest first (InnoDB flush-list order).
  std::vector<DirtyPage> DirtyPages() const;
  bool IsDirty() const { return !dirty_.empty(); }
  // Smallest first-dirty LSN over dirty buckets, or nullopt when clean.
  std::optional<Lsn> OldestDirtyLsn() const;

  // Serialises bucket `b` as one page stamped with `flush_lsn` and clears
  // its dirty mark. The caller writes the page at PageOffset(b).
  Bytes SerializeBucket(std::uint32_t b, Lsn flush_lsn);
  void MarkClean(std::uint32_t b);
  std::uint64_t PageOffset(std::uint32_t b) const { return static_cast<std::uint64_t>(b) * page_size_; }

  // Estimated bytes of live row data (keys+values) — used for the dump
  // threshold and the examples' size reporting.
  std::uint64_t ApproxDataBytes() const { return approx_bytes_; }

  // -- load path ------------------------------------------------------------

  // A row parsed from a page, with the flush LSN of the page it came from.
  struct LoadedRow {
    std::string key;
    Bytes value;
    Lsn src_lsn;
  };
  // Parses every row of every valid page in `file_bytes`. Duplicate keys
  // (possible after a crash mid-redistribution) are resolved by keeping the
  // row from the page with the larger flush LSN.
  static Result<std::vector<LoadedRow>> ParseFile(ByteView file_bytes,
                                                  std::size_t page_size);

  // Installs a loaded row without dirtying anything.
  void InstallLoaded(const std::string& key, Bytes value);

 private:
  std::uint32_t BucketOf(const std::string& key) const;
  void MaybeSplit();

  std::string name_;
  std::size_t page_size_;
  std::vector<std::map<std::string, Bytes>> buckets_;
  // bucket -> first-dirty LSN
  std::map<std::uint32_t, Lsn> dirty_;
  std::uint64_t row_count_ = 0;
  std::uint64_t approx_bytes_ = 0;
};

}  // namespace ginja
