#include "db/database.h"

#include <algorithm>
#include <cassert>

#include "common/codec/crc32.h"

namespace ginja {

namespace {

constexpr std::uint32_t kCatalogMagic = 0x47544143u;  // "CATG"

Bytes EncodeCatalog(const std::map<std::string, Table>& tables) {
  Bytes body;
  PutVarint(body, tables.size());
  for (const auto& [name, table] : tables) {
    PutVarint(body, name.size());
    Append(body, View(ToBytes(name)));
    PutU32(body, table.bucket_count());
  }
  Bytes out;
  PutU32(out, kCatalogMagic);
  PutU32(out, Crc32(View(body)));
  PutU32(out, static_cast<std::uint32_t>(body.size()));
  Append(out, View(body));
  return out;
}

Result<std::vector<std::pair<std::string, std::uint32_t>>> DecodeCatalog(
    ByteView bytes) {
  if (bytes.size() < 12 || GetU32(bytes.data()) != kCatalogMagic) {
    return Status::Corruption("bad catalog magic");
  }
  const std::uint32_t crc = GetU32(bytes.data() + 4);
  const std::uint32_t len = GetU32(bytes.data() + 8);
  if (bytes.size() < 12 + len) return Status::Corruption("catalog truncated");
  const ByteView body(bytes.data() + 12, len);
  if (Crc32(body) != crc) return Status::Corruption("catalog crc mismatch");

  std::size_t pos = 0;
  auto count = GetVarint(body, pos);
  if (!count) return Status::Corruption("catalog count");
  std::vector<std::pair<std::string, std::uint32_t>> out;
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto name_len = GetVarint(body, pos);
    if (!name_len || pos + *name_len + 4 > body.size()) {
      return Status::Corruption("catalog entry truncated");
    }
    std::string name(reinterpret_cast<const char*>(body.data() + pos), *name_len);
    pos += *name_len;
    const std::uint32_t buckets = GetU32(body.data() + pos);
    pos += 4;
    out.emplace_back(std::move(name), buckets);
  }
  return out;
}

}  // namespace

Database::Database(VfsPtr vfs, DbLayout layout, DbOptions options)
    : vfs_(std::move(vfs)), layout_(layout), options_(options) {
  if (options_.default_buckets == 0) options_.default_buckets = 64;
}

Status Database::Create() {
  std::lock_guard<std::mutex> lock(mu_);
  tables_.clear();
  checkpoint_lsn_ = 0;
  next_txn_id_ = 1;
  GINJA_RETURN_IF_ERROR(WriteCatalogLocked());
  GINJA_RETURN_IF_ERROR(WriteControlLocked(0));
  // The forced-flush callback runs while the commit path already holds mu_.
  wal_ = std::make_unique<WalWriter>(vfs_, layout_, /*start_lsn=*/0,
                                     [this] { (void)CheckpointLocked(); });
  wal_->SetCheckpointLsn(0);
  return Status::Ok();
}

Result<ControlBlock> Database::ReadControl() {
  ControlBlock best;
  bool found = false;
  for (int slot = 0; slot < layout_.ControlSlotCount(); ++slot) {
    auto bytes = vfs_->Read(layout_.ControlFileName(),
                            layout_.ControlOffset(slot),
                            ControlBlock::kEncodedSize);
    if (!bytes.ok()) continue;
    ControlBlock block;
    if (!ControlBlock::Decode(bytes->data(), bytes->size(), &block)) continue;
    if (!found || block.counter > best.counter) {
      best = block;
      found = true;
    }
  }
  if (!found) return Status::Corruption("no valid control block");
  return best;
}

Status Database::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  tables_.clear();

  auto catalog_bytes = vfs_->ReadAll(layout_.CatalogFileName());
  if (!catalog_bytes.ok()) return catalog_bytes.status();
  auto catalog = DecodeCatalog(View(*catalog_bytes));
  if (!catalog.ok()) return catalog.status();

  auto control = ReadControl();
  if (!control.ok()) return control.status();
  checkpoint_lsn_ = control->checkpoint_lsn;
  control_counter_ = control->counter;

  for (const auto& [name, buckets] : *catalog) {
    Table table(name, buckets, layout_.data_page_size);
    auto file = vfs_->ReadAll(layout_.TableFileName(name));
    if (file.ok()) {
      auto rows = Table::ParseFile(View(*file), layout_.data_page_size);
      if (!rows.ok()) return rows.status();
      for (auto& row : *rows) table.InstallLoaded(row.key, std::move(row.value));
    }
    tables_.emplace(name, std::move(table));
  }

  // Redo: replay committed transactions past the checkpoint. Logical,
  // ordered, idempotent row operations need no per-page LSN gate.
  WalReader reader(vfs_, layout_);
  auto end = reader.Replay(checkpoint_lsn_, [this](const WalRecord& r) {
    auto it = tables_.find(r.table);
    if (it == tables_.end()) return;  // table dropped/unknown: skip
    if (r.type == WalRecordType::kPut) {
      it->second.Put(r.key, r.value, r.lsn);
    } else {
      it->second.Delete(r.key, r.lsn);
    }
  });
  if (!end.ok()) return end.status();

  wal_ = std::make_unique<WalWriter>(vfs_, layout_, *end,
                                     [this] { (void)CheckpointLocked(); });
  wal_->SetCheckpointLsn(checkpoint_lsn_);
  next_txn_id_ = *end + 1;  // strictly larger than any replayed txn id
  wal_bytes_since_checkpoint_ = *end - checkpoint_lsn_;
  return Status::Ok();
}

Status Database::CreateTable(const std::string& name, std::uint32_t buckets) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.count(name) > 0) return Status::AlreadyExists(name);
  tables_.emplace(name, Table(name, buckets == 0 ? options_.default_buckets : buckets,
                              layout_.data_page_size));
  return WriteCatalogLocked();
}

bool Database::HasTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.count(name) > 0;
}

Database::Transaction Database::Begin() {
  Transaction txn;
  txn.active_ = true;
  return txn;
}

Status Database::Put(Transaction& txn, const std::string& table,
                     const std::string& key, Bytes value) {
  if (!txn.active_) return Status::InvalidArgument("transaction not active");
  // A row must fit one data page (bucket pages are the I/O unit); 16 bytes
  // of page header plus varint row framing. Real engines TOAST/overflow
  // such rows; this one rejects them up front.
  if (key.size() + value.size() + 36 > layout_.data_page_size) {
    return Status::InvalidArgument("row larger than a data page");
  }
  WalRecord r;
  r.type = WalRecordType::kPut;
  r.table = table;
  r.key = key;
  r.value = std::move(value);
  txn.ops_.push_back(std::move(r));
  return Status::Ok();
}

Status Database::Delete(Transaction& txn, const std::string& table,
                        const std::string& key) {
  if (!txn.active_) return Status::InvalidArgument("transaction not active");
  WalRecord r;
  r.type = WalRecordType::kDelete;
  r.table = table;
  r.key = key;
  txn.ops_.push_back(std::move(r));
  return Status::Ok();
}

Status Database::Commit(Transaction& txn) {
  if (!txn.active_) return Status::InvalidArgument("transaction not active");
  txn.active_ = false;
  if (txn.ops_.empty()) return Status::Ok();  // read-only

  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t txn_id = next_txn_id_++;
  const Lsn lsn_base = wal_ ? wal_->EndLsn() : 0;

  for (auto& op : txn.ops_) {
    op.txn_id = txn_id;
    auto it = tables_.find(op.table);
    if (it == tables_.end()) return Status::NotFound("table " + op.table);
    if (op.type == WalRecordType::kPut) {
      it->second.Put(op.key, op.value, lsn_base);
    } else {
      it->second.Delete(op.key, lsn_base);
    }
  }

  WalRecord commit;
  commit.type = WalRecordType::kCommit;
  commit.txn_id = txn_id;
  txn.ops_.push_back(std::move(commit));

  auto end = wal_->AppendAndSync(txn.ops_);
  if (!end.ok()) return end.status();
  wal_bytes_since_checkpoint_ = *end - checkpoint_lsn_;
  committed_txns_.Add();

  if (options_.auto_checkpoint_wal_bytes > 0 &&
      wal_bytes_since_checkpoint_ >= options_.auto_checkpoint_wal_bytes) {
    return layout_.flavor == DbFlavor::kMySql ? FuzzyFlushLocked()
                                              : CheckpointLocked();
  }
  return Status::Ok();
}

std::optional<Bytes> Database::Get(const std::string& table,
                                   const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return std::nullopt;
  return it->second.Get(key);
}

Status Database::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  return CheckpointLocked();
}

Status Database::FuzzyFlush() {
  std::lock_guard<std::mutex> lock(mu_);
  return FuzzyFlushLocked();
}

Status Database::WriteClogLocked() {
  // PostgreSQL's commit-status log: its sync write is the paper's
  // checkpoint-begin event (Table 1). Content is a status page whose exact
  // bytes are irrelevant to recovery in this engine.
  Bytes page;
  PutU64(page, control_counter_);
  page.resize(layout_.data_page_size, 0);
  return vfs_->Write("pg_clog/0000", 0, View(page), /*sync=*/true);
}

Status Database::CheckpointLocked() {
  if (in_commit_path_checkpoint_) return Status::Ok();  // re-entrant guard
  in_commit_path_checkpoint_ = true;
  auto finally = [&](Status st) {
    in_commit_path_checkpoint_ = false;
    return st;
  };

  if (layout_.flavor == DbFlavor::kPostgres) {
    Status st = WriteClogLocked();
    if (!st.ok()) return finally(st);
  }

  // Redo point: everything applied so far is about to be flushed. All
  // applied records have lsn_base <= this value.
  const Lsn redo_lsn = wal_ ? wal_bytes_since_checkpoint_ + checkpoint_lsn_ : 0;

  // MySQL's fuzzy flushes use sync data writes (checkpoint-begin per
  // Table 1); PostgreSQL writes data pages without sync, the clog sync
  // write above being its begin marker.
  const bool sync_data = layout_.flavor == DbFlavor::kMySql;
  for (auto& [name, table] : tables_) {
    const std::string file = layout_.TableFileName(name);
    for (const auto& dirty : table.DirtyPages()) {
      const Bytes page = table.SerializeBucket(dirty.bucket, redo_lsn);
      Status st = vfs_->Write(file, table.PageOffset(dirty.bucket), View(page),
                              sync_data);
      if (!st.ok()) return finally(st);
      table.MarkClean(dirty.bucket);
    }
  }

  Status st = WriteCatalogLocked();
  if (!st.ok()) return finally(st);
  st = WriteControlLocked(redo_lsn);
  if (!st.ok()) return finally(st);

  checkpoint_lsn_ = redo_lsn;
  wal_bytes_since_checkpoint_ = 0;
  if (wal_) {
    wal_->SetCheckpointLsn(redo_lsn);
    wal_->RemoveSegmentsBelow(redo_lsn);
  }
  return finally(Status::Ok());
}

Status Database::FuzzyFlushLocked() {
  // Collect dirty pages across tables, oldest-first (InnoDB flush list),
  // and flush at most one batch.
  struct Entry {
    Table* table;
    std::uint32_t bucket;
    Lsn first_dirty;
  };
  std::vector<Entry> entries;
  for (auto& [name, table] : tables_) {
    for (const auto& d : table.DirtyPages()) {
      entries.push_back({&table, d.bucket, d.first_dirty_lsn});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.first_dirty < b.first_dirty; });
  if (entries.size() > options_.fuzzy_batch_pages) {
    entries.resize(options_.fuzzy_batch_pages);
  }

  const Lsn wal_end = checkpoint_lsn_ + wal_bytes_since_checkpoint_;
  for (const auto& e : entries) {
    const Bytes page = e.table->SerializeBucket(e.bucket, wal_end);
    GINJA_RETURN_IF_ERROR(vfs_->Write(layout_.TableFileName(e.table->name()),
                                      e.table->PageOffset(e.bucket), View(page),
                                      /*sync=*/true));
    e.table->MarkClean(e.bucket);
  }

  // New checkpoint LSN = oldest change still not flushed (or WAL end when
  // everything is clean). Monotone by construction.
  Lsn new_checkpoint = wal_end;
  for (auto& [name, table] : tables_) {
    if (auto oldest = table.OldestDirtyLsn()) {
      new_checkpoint = std::min(new_checkpoint, *oldest);
    }
  }
  new_checkpoint = std::max(new_checkpoint, checkpoint_lsn_);

  GINJA_RETURN_IF_ERROR(WriteCatalogLocked());
  GINJA_RETURN_IF_ERROR(WriteControlLocked(new_checkpoint));
  checkpoint_lsn_ = new_checkpoint;
  wal_bytes_since_checkpoint_ = wal_end - new_checkpoint;
  if (wal_) wal_->SetCheckpointLsn(new_checkpoint);
  return Status::Ok();
}

Status Database::WriteControlLocked(Lsn checkpoint_lsn) {
  ControlBlock block;
  block.checkpoint_lsn = checkpoint_lsn;
  block.wal_end_hint = checkpoint_lsn + wal_bytes_since_checkpoint_;
  block.counter = ++control_counter_;
  std::uint8_t encoded[ControlBlock::kEncodedSize];
  block.EncodeTo(encoded);
  // MySQL alternates between the two InnoDB header slots; PostgreSQL
  // rewrites pg_control in place.
  const int slot = layout_.ControlSlotCount() == 1
                       ? 0
                       : static_cast<int>(control_counter_ % 2);
  return vfs_->Write(layout_.ControlFileName(), layout_.ControlOffset(slot),
                     ByteView(encoded, sizeof encoded), /*sync=*/true);
}

Status Database::WriteCatalogLocked() {
  const Bytes encoded = EncodeCatalog(tables_);
  return vfs_->Write(layout_.CatalogFileName(), 0, View(encoded), /*sync=*/true);
}

Lsn Database::WalEndLsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_ ? wal_->EndLsn() : 0;
}

Lsn Database::CheckpointLsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checkpoint_lsn_;
}

std::uint64_t Database::ApproxDataBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [name, table] : tables_) total += table.ApproxDataBytes();
  return total;
}

std::vector<std::string> Database::TableNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) out.push_back(name);
  return out;
}

std::uint64_t Database::RowCount(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(table);
  return it == tables_.end() ? 0 : it->second.row_count();
}

}  // namespace ginja
