#include "db/wal.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "common/codec/crc32.h"

namespace ginja {

namespace {

constexpr std::uint8_t kRecordMagic = 0xA7;
constexpr std::size_t kRecordHeaderSize = 1 + 1 + 4 + 4;  // magic, type, len, crc
constexpr std::size_t kMaxRecordBody = 16 * 1024 * 1024;

Bytes SerializeBody(const WalRecord& r) {
  Bytes body;
  PutVarint(body, r.txn_id);
  if (r.type != WalRecordType::kCommit) {
    PutVarint(body, r.table.size());
    Append(body, View(ToBytes(r.table)));
    PutVarint(body, r.key.size());
    Append(body, View(ToBytes(r.key)));
    if (r.type == WalRecordType::kPut) {
      PutVarint(body, r.value.size());
      Append(body, View(r.value));
    }
  }
  return body;
}

// Parses one record from `buf` at `pos`. Returns false when the buffer does
// not hold a complete, valid record (caller decides whether more pages can
// be appended or the stream ends here).
bool ParseRecord(const Bytes& buf, std::size_t& pos, WalRecord* out, bool* corrupt) {
  *corrupt = false;
  if (pos + kRecordHeaderSize > buf.size()) return false;
  if (buf[pos] != kRecordMagic) {
    *corrupt = true;
    return false;
  }
  const auto type = static_cast<WalRecordType>(buf[pos + 1]);
  if (type != WalRecordType::kPut && type != WalRecordType::kDelete &&
      type != WalRecordType::kCommit) {
    *corrupt = true;
    return false;
  }
  const std::uint32_t body_len = GetU32(buf.data() + pos + 2);
  const std::uint32_t body_crc = GetU32(buf.data() + pos + 6);
  if (body_len > kMaxRecordBody) {
    *corrupt = true;
    return false;
  }
  if (pos + kRecordHeaderSize + body_len > buf.size()) return false;
  const ByteView body(buf.data() + pos + kRecordHeaderSize, body_len);
  if (Crc32(body) != body_crc) {
    *corrupt = true;
    return false;
  }

  std::size_t p = 0;
  auto txn = GetVarint(body, p);
  if (!txn) {
    *corrupt = true;
    return false;
  }
  out->type = type;
  out->txn_id = *txn;
  out->table.clear();
  out->key.clear();
  out->value.clear();
  if (type != WalRecordType::kCommit) {
    auto read_str = [&](std::string* s) {
      auto len = GetVarint(body, p);
      if (!len || p + *len > body.size()) return false;
      s->assign(reinterpret_cast<const char*>(body.data() + p), *len);
      p += *len;
      return true;
    };
    if (!read_str(&out->table) || !read_str(&out->key)) {
      *corrupt = true;
      return false;
    }
    if (type == WalRecordType::kPut) {
      auto len = GetVarint(body, p);
      if (!len || p + *len > body.size()) {
        *corrupt = true;
        return false;
      }
      out->value.assign(body.begin() + static_cast<long>(p),
                        body.begin() + static_cast<long>(p + *len));
      p += *len;
    }
  }
  pos += kRecordHeaderSize + body_len;
  return true;
}

}  // namespace

Bytes WalRecord::Serialize() const {
  const Bytes body = SerializeBody(*this);
  Bytes out;
  out.reserve(kRecordHeaderSize + body.size());
  out.push_back(kRecordMagic);
  out.push_back(static_cast<std::uint8_t>(type));
  PutU32(out, static_cast<std::uint32_t>(body.size()));
  PutU32(out, Crc32(View(body)));
  Append(out, View(body));
  return out;
}

WalWriter::WalWriter(VfsPtr vfs, DbLayout layout, Lsn start_lsn,
                     std::function<void()> on_wrap_needed)
    : vfs_(std::move(vfs)),
      layout_(layout),
      on_wrap_needed_(std::move(on_wrap_needed)),
      end_lsn_(start_lsn),
      current_page_(start_lsn / layout.WalPayloadSize()) {
  // Rehydrate the partially-filled tail page after a reboot/recovery.
  const std::size_t fill = start_lsn % layout_.WalPayloadSize();
  if (fill > 0) {
    const auto loc = layout_.LocateWalPage(current_page_);
    auto page = vfs_->Read(loc.file, loc.offset + DbLayout::kWalPageHeaderSize,
                           fill);
    if (page.ok() && page->size() == fill) {
      current_payload_ = std::move(*page);
    } else {
      current_payload_.assign(fill, 0);  // unreadable tail: zero-filled
    }
  }
}

Lsn WalWriter::EndLsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return end_lsn_;
}

void WalWriter::SetCheckpointLsn(Lsn lsn) {
  checkpoint_lsn_.store(lsn, std::memory_order_relaxed);
}

void WalWriter::EnsureWrapSafe(std::uint64_t logical_page) {
  if (!layout_.circular_wal) return;
  const std::uint64_t slots = layout_.CircularSlots();
  // Writing `logical_page` recycles the slot previously holding page
  // (logical_page - slots); that page must already be below the checkpoint.
  for (int attempts = 0; attempts < 3; ++attempts) {
    if (logical_page < slots) return;
    const std::uint64_t recycled = logical_page - slots;
    const std::uint64_t oldest_needed =
        PageOfLsn(checkpoint_lsn_.load(std::memory_order_relaxed));
    if (recycled < oldest_needed) return;
    if (!on_wrap_needed_) break;
    on_wrap_needed_();  // engine must flush + advance the checkpoint
  }
  assert(false && "circular WAL wrapped over un-checkpointed pages");
}

Status WalWriter::FlushPage(std::uint64_t logical_page, bool sync) {
  EnsureWrapSafe(logical_page);
  const std::size_t payload_size = layout_.WalPayloadSize();
  Bytes page;
  page.reserve(layout_.wal_page_size);
  // Header: crc (filled below), used, logical page number.
  PutU32(page, 0);
  PutU16(page, static_cast<std::uint16_t>(current_payload_.size()));
  PutU64(page, logical_page);
  Append(page, View(current_payload_));
  page.resize(layout_.wal_page_size, 0);
  const std::uint32_t crc = Crc32(ByteView(page.data() + 4, page.size() - 4));
  page[0] = static_cast<std::uint8_t>(crc);
  page[1] = static_cast<std::uint8_t>(crc >> 8);
  page[2] = static_cast<std::uint8_t>(crc >> 16);
  page[3] = static_cast<std::uint8_t>(crc >> 24);
  (void)payload_size;

  const auto loc = layout_.LocateWalPage(logical_page);
  return vfs_->Write(loc.file, loc.offset, View(page), sync);
}

Result<Lsn> WalWriter::AppendAndSync(const std::vector<WalRecord>& records) {
  Bytes blob;
  for (const auto& r : records) Append(blob, View(r.Serialize()));

  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t payload_size = layout_.WalPayloadSize();
  std::size_t pos = 0;
  while (pos < blob.size()) {
    const std::size_t room = payload_size - current_payload_.size();
    const std::size_t take = std::min(room, blob.size() - pos);
    current_payload_.insert(current_payload_.end(),
                            blob.begin() + static_cast<long>(pos),
                            blob.begin() + static_cast<long>(pos + take));
    pos += take;
    const bool page_full = current_payload_.size() == payload_size;
    const bool last_write = pos == blob.size();
    // Intermediate full pages are plain writes; the final write of the
    // commit is synchronous — the "update commit" event of Table 1.
    GINJA_RETURN_IF_ERROR(FlushPage(current_page_, last_write));
    if (page_full) {
      ++current_page_;
      current_payload_.clear();
    }
  }
  end_lsn_ += blob.size();
  return end_lsn_;
}

std::vector<std::string> WalWriter::RemoveSegmentsBelow(Lsn checkpoint_lsn) {
  std::vector<std::string> removed;
  // Circular logs recycle in place. Checked before locking: the forced-
  // checkpoint callback runs while AppendAndSync holds mu_.
  if (layout_.circular_wal) return removed;
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t needed_page = PageOfLsn(checkpoint_lsn);
  const std::uint64_t needed_segment = needed_page / layout_.PagesPerSegment();
  auto files = vfs_->ListFiles("pg_xlog/");
  if (!files.ok()) return removed;
  // Segment index is recoverable by matching generated names.
  for (std::uint64_t seg = 0; seg < needed_segment; ++seg) {
    const std::string name = layout_.WalFileName(seg);
    if (vfs_->Exists(name)) {
      if (vfs_->Remove(name).ok()) removed.push_back(name);
    }
  }
  return removed;
}

WalReader::WalReader(VfsPtr vfs, DbLayout layout)
    : vfs_(std::move(vfs)), layout_(layout) {}

std::optional<Bytes> WalReader::ReadPagePayload(std::uint64_t logical_page) {
  const auto loc = layout_.LocateWalPage(logical_page);
  auto page = vfs_->Read(loc.file, loc.offset, layout_.wal_page_size);
  if (!page.ok() || page->size() < DbLayout::kWalPageHeaderSize) {
    return std::nullopt;
  }
  // Short page (recovered tail): pad to full size for uniform handling.
  if (page->size() < layout_.wal_page_size) {
    page->resize(layout_.wal_page_size, 0);
  }
  const std::uint32_t stored_crc = GetU32(page->data());
  if (Crc32(ByteView(page->data() + 4, page->size() - 4)) != stored_crc) {
    return std::nullopt;
  }
  const std::uint16_t used = GetU16(page->data() + 4);
  const std::uint64_t page_number = GetU64(page->data() + 6);
  if (page_number != logical_page) return std::nullopt;  // older wrap cycle
  if (used > layout_.WalPayloadSize()) return std::nullopt;
  return Bytes(page->begin() + DbLayout::kWalPageHeaderSize,
               page->begin() + DbLayout::kWalPageHeaderSize + used);
}

Result<Lsn> WalReader::Replay(
    Lsn from_lsn, const std::function<void(const WalRecord&)>& on_record) {
  const std::size_t payload_size = layout_.WalPayloadSize();
  std::uint64_t page = from_lsn / payload_size;
  const std::size_t skip = from_lsn % payload_size;

  // Transactions buffer until their commit record proves atomicity.
  std::map<std::uint64_t, std::vector<WalRecord>> pending;

  Bytes buf;
  Lsn buf_start_lsn = from_lsn;
  std::size_t consumed = 0;
  bool last_page_full = false;

  {
    auto payload = ReadPagePayload(page);
    if (!payload) return from_lsn;  // nothing beyond the checkpoint
    if (payload->size() < skip) return from_lsn;
    buf.assign(payload->begin() + static_cast<long>(skip), payload->end());
    last_page_full = payload->size() == payload_size;
  }

  while (true) {
    WalRecord record;
    bool corrupt = false;
    std::size_t pos = consumed;
    if (ParseRecord(buf, pos, &record, &corrupt)) {
      record.lsn = buf_start_lsn + consumed;
      consumed = pos;
      if (record.type == WalRecordType::kCommit) {
        auto it = pending.find(record.txn_id);
        if (it != pending.end()) {
          for (const auto& r : it->second) on_record(r);
          pending.erase(it);
        }
      } else {
        pending[record.txn_id].push_back(record);
      }
      continue;
    }
    if (corrupt) break;
    // Incomplete record: only continue if the current page was full, i.e.
    // the stream provably continues on the next page.
    if (!last_page_full) break;
    ++page;
    auto payload = ReadPagePayload(page);
    if (!payload) break;
    last_page_full = payload->size() == payload_size;
    Append(buf, View(*payload));
  }

  return buf_start_lsn + consumed;
}

}  // namespace ginja
