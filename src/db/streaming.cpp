#include "db/streaming.h"

namespace ginja {

StandbyServer::StandbyServer(std::shared_ptr<MemFs> base_backup, DbLayout layout)
    : fs_(std::move(base_backup)), layout_(layout) {}

void StandbyServer::ApplyWalWrite(const std::string& file, std::uint64_t offset,
                                  const Bytes& data) {
  (void)fs_->Write(file, offset, View(data), /*sync=*/true);
  writes_received_.Add();
}

Result<std::unique_ptr<Database>> StandbyServer::Failover() {
  auto db = std::make_unique<Database>(fs_, layout_);
  Status st = db->Open();
  if (!st.ok()) return st;
  return db;
}

StreamingPrimary::StreamingPrimary(std::shared_ptr<StandbyServer> standby,
                                   DbLayout layout,
                                   std::shared_ptr<Clock> clock,
                                   ReplicationConfig config)
    : standby_(std::move(standby)),
      layout_(layout),
      clock_(std::move(clock)),
      config_(config) {
  link_thread_ = std::thread([this] { LinkLoop(); });
}

StreamingPrimary::~StreamingPrimary() { Kill(); }

std::uint64_t StreamingPrimary::TransferMicros(std::size_t bytes) const {
  return config_.link_latency_us +
         static_cast<std::uint64_t>(static_cast<double>(bytes) / 1024.0 *
                                    config_.us_per_kb);
}

void StreamingPrimary::OnFileEvent(const FileEvent& event) {
  if (event.kind != FileEvent::Kind::kWrite) return;
  if (layout_.Classify(event.path, event.offset) != FileKind::kWalSegment) {
    // Data/control files are not shipped: the standby rebuilds them from
    // the replayed WAL, exactly like PostgreSQL streaming replication.
    return;
  }
  std::uint64_t my_seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (killed_) {
      dropped_.Add();
      return;
    }
    my_seq = ++sent_;
  }
  link_queue_.Put({event.path, event.offset, event.data});

  if (config_.synchronous) {
    // Eager replication: the commit waits for the standby's ack (one WAN
    // round trip — the paper's "loses performance" case).
    std::unique_lock<std::mutex> lock(mu_);
    ack_cv_.wait(lock, [&] { return killed_ || acked_ >= my_seq; });
  }
}

void StreamingPrimary::LinkLoop() {
  while (auto shipment = link_queue_.Take()) {
    clock_->SleepMicros(TransferMicros(shipment->data.size()));
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (killed_) break;
    }
    standby_->ApplyWalWrite(shipment->file, shipment->offset, shipment->data);
    shipped_.Add();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++acked_;
    }
    ack_cv_.notify_all();
  }
  // Anything left in the queue after a kill never reached the standby.
  std::lock_guard<std::mutex> lock(mu_);
  dropped_.Add(sent_ - acked_);
}

void StreamingPrimary::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  ack_cv_.wait(lock, [&] { return killed_ || acked_ >= sent_; });
}

void StreamingPrimary::Kill() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (killed_) return;
    killed_ = true;
  }
  link_queue_.Close();
  ack_cv_.notify_all();
  if (link_thread_.joinable()) link_thread_.join();
}

}  // namespace ginja
