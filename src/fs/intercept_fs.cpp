#include "fs/intercept_fs.h"

namespace ginja {

InterceptFs::InterceptFs(VfsPtr inner, std::shared_ptr<Clock> clock,
                         std::uint64_t per_op_overhead_us)
    : inner_(std::move(inner)),
      clock_(std::move(clock)),
      per_op_overhead_us_(per_op_overhead_us) {}

void InterceptFs::Overhead() {
  if (per_op_overhead_us_ > 0) clock_->SleepMicros(per_op_overhead_us_);
}

Status InterceptFs::Write(std::string_view path, std::uint64_t offset,
                          ByteView data, bool sync) {
  Overhead();
  Status st = inner_->Write(path, offset, data, sync);
  if (!st.ok()) return st;
  intercepted_writes_.Add();
  if (FileEventListener* l = listener_.load()) {
    FileEvent event;
    event.kind = FileEvent::Kind::kWrite;
    event.path = std::string(path);
    event.offset = offset;
    event.data.assign(data.begin(), data.end());
    event.sync = sync;
    l->OnFileEvent(event);  // may block: this is Ginja's Safety stall
  }
  return st;
}

Result<Bytes> InterceptFs::Read(std::string_view path, std::uint64_t offset,
                                std::uint64_t size) {
  Overhead();
  return inner_->Read(path, offset, size);
}

Result<Bytes> InterceptFs::ReadAll(std::string_view path) {
  Overhead();
  return inner_->ReadAll(path);
}

Result<std::uint64_t> InterceptFs::FileSize(std::string_view path) {
  return inner_->FileSize(path);
}

bool InterceptFs::Exists(std::string_view path) { return inner_->Exists(path); }

Status InterceptFs::Truncate(std::string_view path, std::uint64_t size) {
  Overhead();
  Status st = inner_->Truncate(path, size);
  if (!st.ok()) return st;
  if (FileEventListener* l = listener_.load()) {
    FileEvent event;
    event.kind = FileEvent::Kind::kTruncate;
    event.path = std::string(path);
    event.size = size;
    l->OnFileEvent(event);
  }
  return st;
}

Status InterceptFs::Remove(std::string_view path) {
  Overhead();
  Status st = inner_->Remove(path);
  if (!st.ok()) return st;
  if (FileEventListener* l = listener_.load()) {
    FileEvent event;
    event.kind = FileEvent::Kind::kRemove;
    event.path = std::string(path);
    l->OnFileEvent(event);
  }
  return st;
}

Result<std::vector<std::string>> InterceptFs::ListFiles(std::string_view prefix) {
  return inner_->ListFiles(prefix);
}

}  // namespace ginja
