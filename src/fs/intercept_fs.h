// InterceptFs — the repo's FUSE layer (paper Fig. 3, "FS Interpreter").
//
// Wraps an inner Vfs and, for every write/remove/truncate, (1) performs the
// operation locally, then (2) delivers a FileEvent to the registered
// listener. The listener — a Ginja database processor — may *block* inside
// the callback; that block is exactly how Ginja's Safety limit stalls the
// DBMS (the DBMS is stuck in its write syscall, paper Alg. 2 line 7).
//
// A per-operation overhead models the user-space FUSE hop. The paper
// measures FUSE alone at a 7% (PostgreSQL) / 12% (MySQL) throughput cost;
// the default overheads are chosen to land in that range for the simulated
// engine.
#pragma once

#include <atomic>
#include <functional>
#include <memory>

#include "common/clock.h"
#include "common/stats.h"
#include "fs/vfs.h"

namespace ginja {

struct FileEvent {
  enum class Kind { kWrite, kRemove, kTruncate };
  Kind kind = Kind::kWrite;
  std::string path;
  std::uint64_t offset = 0;
  Bytes data;        // write payload (empty for remove/truncate)
  std::uint64_t size = 0;  // new size for truncate
  bool sync = false; // write+fsync (the durability signal Table 1 keys on)
};

class FileEventListener {
 public:
  virtual ~FileEventListener() = default;
  // Called after the local operation succeeded. May block the caller.
  virtual void OnFileEvent(const FileEvent& event) = 0;
};

class InterceptFs : public Vfs {
 public:
  // `per_op_overhead_us` is added (as a clock sleep) to every intercepted
  // operation, modeling the kernel↔user-space FUSE round trip.
  InterceptFs(VfsPtr inner, std::shared_ptr<Clock> clock,
              std::uint64_t per_op_overhead_us = 0);

  void SetListener(FileEventListener* listener) { listener_ = listener; }

  Status Write(std::string_view path, std::uint64_t offset, ByteView data,
               bool sync) override;
  Result<Bytes> Read(std::string_view path, std::uint64_t offset,
                     std::uint64_t size) override;
  Result<Bytes> ReadAll(std::string_view path) override;
  Result<std::uint64_t> FileSize(std::string_view path) override;
  bool Exists(std::string_view path) override;
  Status Truncate(std::string_view path, std::uint64_t size) override;
  Status Remove(std::string_view path) override;
  Result<std::vector<std::string>> ListFiles(std::string_view prefix) override;

  Vfs& inner() { return *inner_; }
  const Counter& intercepted_writes() const { return intercepted_writes_; }

 private:
  void Overhead();

  VfsPtr inner_;
  std::shared_ptr<Clock> clock_;
  std::uint64_t per_op_overhead_us_;
  std::atomic<FileEventListener*> listener_{nullptr};
  Counter intercepted_writes_;
};

}  // namespace ginja
