#include "fs/local_fs.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace ginja {

namespace fs = std::filesystem;

LocalFs::LocalFs(fs::path root) : root_(std::move(root)) {
  fs::create_directories(root_);
}

fs::path LocalFs::PathFor(std::string_view path) const {
  return root_ / fs::path(path);
}

Status LocalFs::Write(std::string_view path, std::uint64_t offset,
                      ByteView data, bool sync) {
  std::lock_guard<std::mutex> lock(mu_);
  const fs::path full = PathFor(path);
  std::error_code ec;
  fs::create_directories(full.parent_path(), ec);
  const int fd = ::open(full.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) return Status::IoError("open " + full.string() + ": " + std::strerror(errno));
  Status st = Status::Ok();
  const auto written = ::pwrite(fd, data.data(), data.size(),
                                static_cast<off_t>(offset));
  if (written != static_cast<ssize_t>(data.size())) {
    st = Status::IoError("pwrite " + full.string());
  } else if (sync && ::fdatasync(fd) != 0) {
    st = Status::IoError("fdatasync " + full.string());
  }
  ::close(fd);
  return st;
}

Result<Bytes> LocalFs::Read(std::string_view path, std::uint64_t offset,
                            std::uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  const fs::path full = PathFor(path);
  const int fd = ::open(full.c_str(), O_RDONLY);
  if (fd < 0) return Status::NotFound(std::string(path));
  Bytes out(size);
  const auto n = ::pread(fd, out.data(), size, static_cast<off_t>(offset));
  ::close(fd);
  if (n < 0) return Status::IoError("pread " + full.string());
  out.resize(static_cast<std::size_t>(n));
  return out;
}

Result<Bytes> LocalFs::ReadAll(std::string_view path) {
  auto size = FileSize(path);
  if (!size.ok()) return size.status();
  return Read(path, 0, *size);
}

Result<std::uint64_t> LocalFs::FileSize(std::string_view path) {
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  const auto size = fs::file_size(PathFor(path), ec);
  if (ec) return Status::NotFound(std::string(path));
  return static_cast<std::uint64_t>(size);
}

bool LocalFs::Exists(std::string_view path) {
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  return fs::is_regular_file(PathFor(path), ec);
}

Status LocalFs::Truncate(std::string_view path, std::uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  fs::resize_file(PathFor(path), size, ec);
  if (ec) return Status::IoError(ec.message());
  return Status::Ok();
}

Status LocalFs::Remove(std::string_view path) {
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  fs::remove(PathFor(path), ec);
  return Status::Ok();
}

Result<std::vector<std::string>> LocalFs::ListFiles(std::string_view prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(root_, ec);
       it != fs::recursive_directory_iterator(); ++it) {
    if (!it->is_regular_file()) continue;
    std::string name = fs::relative(it->path(), root_).generic_string();
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    out.push_back(std::move(name));
  }
  if (ec) return Status::IoError(ec.message());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ginja
