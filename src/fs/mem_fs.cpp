#include "fs/mem_fs.h"

#include <algorithm>

namespace ginja {

Status MemFs::Write(std::string_view path, std::uint64_t offset, ByteView data,
                    bool /*sync*/) {
  std::lock_guard<std::mutex> lock(mu_);
  Bytes& file = files_[std::string(path)];
  if (file.size() < offset + data.size()) file.resize(offset + data.size(), 0);
  std::copy(data.begin(), data.end(), file.begin() + static_cast<long>(offset));
  return Status::Ok();
}

Result<Bytes> MemFs::Read(std::string_view path, std::uint64_t offset,
                          std::uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(std::string(path));
  const Bytes& file = it->second;
  if (offset >= file.size()) return Bytes{};
  const std::uint64_t n = std::min(size, file.size() - offset);
  return Bytes(file.begin() + static_cast<long>(offset),
               file.begin() + static_cast<long>(offset + n));
}

Result<Bytes> MemFs::ReadAll(std::string_view path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(std::string(path));
  return it->second;
}

Result<std::uint64_t> MemFs::FileSize(std::string_view path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(std::string(path));
  return static_cast<std::uint64_t>(it->second.size());
}

bool MemFs::Exists(std::string_view path) {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.find(path) != files_.end();
}

Status MemFs::Truncate(std::string_view path, std::uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(std::string(path));
  it->second.resize(size, 0);
  return Status::Ok();
}

Status MemFs::Remove(std::string_view path) {
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(std::string(path));
  return Status::Ok();
}

Result<std::vector<std::string>> MemFs::ListFiles(std::string_view prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

std::shared_ptr<MemFs> MemFs::Clone() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto copy = std::make_shared<MemFs>();
  copy->files_ = files_;
  return copy;
}

std::uint64_t MemFs::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [path, data] : files_) total += data.size();
  return total;
}

}  // namespace ginja
