// Vfs backed by a real directory, used by the runnable examples so a
// database directory actually appears on disk (and survives process
// restarts, enabling genuine crash/recover demonstrations).
#pragma once

#include <filesystem>
#include <mutex>

#include "fs/vfs.h"

namespace ginja {

class LocalFs : public Vfs {
 public:
  explicit LocalFs(std::filesystem::path root);

  Status Write(std::string_view path, std::uint64_t offset, ByteView data,
               bool sync) override;
  Result<Bytes> Read(std::string_view path, std::uint64_t offset,
                     std::uint64_t size) override;
  Result<Bytes> ReadAll(std::string_view path) override;
  Result<std::uint64_t> FileSize(std::string_view path) override;
  bool Exists(std::string_view path) override;
  Status Truncate(std::string_view path, std::uint64_t size) override;
  Status Remove(std::string_view path) override;
  Result<std::vector<std::string>> ListFiles(std::string_view prefix) override;

  const std::filesystem::path& root() const { return root_; }

 private:
  std::filesystem::path PathFor(std::string_view path) const;

  std::filesystem::path root_;
  std::mutex mu_;
};

}  // namespace ginja
