// Virtual file system — the repo's stand-in for the kernel VFS + FUSE hop.
//
// The DBMS engine performs *all* of its file I/O through this interface.
// `InterceptFs` (intercept_fs.h) decorates any Vfs with the event hooks
// Ginja needs, exactly like the paper's FUSE-J layer sits between the DBMS
// and the local disk (Fig. 3). Paths are relative, '/'-separated (they name
// files inside the database directory, e.g. "pg_xlog/000000010000000000000003").
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace ginja {

class Vfs {
 public:
  virtual ~Vfs() = default;

  // Writes `data` at `offset`, extending the file as needed (creates the
  // file if missing). `sync` models write+fsync — a durable write; every
  // DBMS commit and control-file update uses sync=true.
  virtual Status Write(std::string_view path, std::uint64_t offset,
                       ByteView data, bool sync) = 0;

  // Reads up to `size` bytes at `offset`; short reads at EOF return fewer.
  virtual Result<Bytes> Read(std::string_view path, std::uint64_t offset,
                             std::uint64_t size) = 0;

  virtual Result<Bytes> ReadAll(std::string_view path) = 0;

  virtual Result<std::uint64_t> FileSize(std::string_view path) = 0;

  virtual bool Exists(std::string_view path) = 0;

  virtual Status Truncate(std::string_view path, std::uint64_t size) = 0;

  virtual Status Remove(std::string_view path) = 0;

  // All file paths, sorted, optionally restricted to a prefix.
  virtual Result<std::vector<std::string>> ListFiles(std::string_view prefix) = 0;
};

using VfsPtr = std::shared_ptr<Vfs>;

}  // namespace ginja
