// In-memory Vfs: deterministic, fast, and trivially "crashable" — tests
// simulate a machine crash by simply abandoning the engine object; the
// MemFs then holds exactly the bytes that were written before the crash.
#pragma once

#include <map>
#include <mutex>

#include "fs/vfs.h"

namespace ginja {

class MemFs : public Vfs {
 public:
  Status Write(std::string_view path, std::uint64_t offset, ByteView data,
               bool sync) override;
  Result<Bytes> Read(std::string_view path, std::uint64_t offset,
                     std::uint64_t size) override;
  Result<Bytes> ReadAll(std::string_view path) override;
  Result<std::uint64_t> FileSize(std::string_view path) override;
  bool Exists(std::string_view path) override;
  Status Truncate(std::string_view path, std::uint64_t size) override;
  Status Remove(std::string_view path) override;
  Result<std::vector<std::string>> ListFiles(std::string_view prefix) override;

  // Deep copy, e.g. to snapshot pre-crash state in tests.
  std::shared_ptr<MemFs> Clone() const;

  std::uint64_t TotalBytes() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Bytes, std::less<>> files_;
};

}  // namespace ginja
