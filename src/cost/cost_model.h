// Ginja's monetary cost model — a faithful implementation of paper §7.
//
//   C_Total = C_DB_Storage + C_DB_PUT + C_WAL_Storage + C_WAL_PUT
//
// with the four components computed exactly as in the paper's equations,
// plus the recovery-cost approximation of §7.3 and the Figure-1 budget
// inversion (max synchronisations/hour for a given database size and
// monthly budget).
#pragma once

#include <cstdint>

#include "cloud/price_book.h"

namespace ginja {

struct CostModelParams {
  double db_size_gb = 10.0;
  double updates_per_minute = 100.0;  // W
  double checkpoint_period_min = 60.0;
  // CkptTime in the WAL-storage equation: period + duration + upload time.
  double checkpoint_duration_min = 20.0;
  double wal_page_bytes = 8192.0;
  double records_per_page = 75.0;     // RecPerPage
  double compression_rate = 1.0;      // CR (1.43 in Fig. 4: 1 MB -> 700 kB)
  double batch = 100.0;               // B: updates per cloud synchronization
  double max_object_mb = 20.0;        // objects split at this size (§5.2 fn.3)
  double avg_checkpoint_size_mb = 20.0;  // CkptSize
  PriceBook prices = PriceBook::AmazonS3May2017();
};

struct CostBreakdown {
  double db_storage = 0;
  double db_put = 0;
  double wal_storage = 0;
  double wal_put = 0;
  double Total() const { return db_storage + db_put + wal_storage + wal_put; }
};

class CostModel {
 public:
  explicit CostModel(CostModelParams params) : p_(params) {}

  // Monthly cost in dollars, per the four §7.1 equations.
  CostBreakdown Monthly() const;

  // §7.3: recovery ≈ 4 × (C_DB_Storage + C_WAL_Storage) — i.e. egress at
  // ~4× the monthly storage price — plus (negligible) GET costs.
  // Zero when recovering into a VM colocated with the bucket.
  double RecoveryCost(bool colocated_vm = false) const;

  const CostModelParams& params() const { return p_; }

 private:
  CostModelParams p_;
};

// One dump's upload bill, monolithic vs content-addressed delta
// (dedup_dumps). A monolithic dump re-uploads the whole image split at
// max_object_mb; a delta dump uploads one manifest plus only the chunks
// whose content changed since the previous dump. `churn_fraction` is the
// fraction of chunks dirtied between dumps (0 = nothing changed, 1 = a
// cold first dump — every chunk plus the manifest).
struct DumpUploadCost {
  double bytes_uploaded = 0;  // plaintext bytes sent to the store
  double put_requests = 0;    // PUT count (chunks/parts + manifest)
  double dollars = 0;         // put_requests × per_put
};

DumpUploadCost MonolithicDumpCost(double db_size_gb, double max_object_mb,
                                  const PriceBook& prices);
DumpUploadCost DeltaDumpCost(double db_size_gb, double churn_fraction,
                             double chunk_bytes, const PriceBook& prices);

// Figure 1: for a database of `db_size_gb`, the maximum number of cloud
// synchronizations per hour that keeps the monthly cost under `budget`.
// Uses the paper's Figure-1 simplification: cost = storage (size × price)
// + PUT cost of the synchronizations; returns 0 when storage alone
// exceeds the budget.
double MaxSyncsPerHourForBudget(double db_size_gb, double budget_dollars,
                                const PriceBook& prices);

// The inverse: largest database (GB) affordable at `syncs_per_hour`.
double MaxDbSizeForBudget(double syncs_per_hour, double budget_dollars,
                          const PriceBook& prices);

}  // namespace ginja
