// The paper's real-application scenarios (Table 2): a clinical laboratory
// and a hospital running the MaxData clinical-analysis database.
//
// "one hospital with a 1TB database and a workload of 630 transactions per
//  minute, and a clinical laboratory with a 10GB database that processes 30
//  transactions per minute. Among these transactions, only 20% are updates."
#pragma once

#include <algorithm>

#include "cost/cost_model.h"

namespace ginja {

struct Scenario {
  const char* name;
  CostModelParams params;
  VmBaseline vm_baseline;
};

// `syncs_per_minute`: 1 → RPO ≈ 1 min; 6 → RPO ≈ 10 s (Table 2 rows).
inline Scenario LaboratoryScenario(double syncs_per_minute) {
  CostModelParams p;
  p.db_size_gb = 10.0;
  p.updates_per_minute = 30.0 * 0.20;  // 30 tpm, 20% updates => 6 up/min
  // Batch expressed through syncs/min: B = W / syncs_per_minute.
  p.batch = std::max(1.0, p.updates_per_minute / syncs_per_minute);
  p.checkpoint_period_min = 60.0;
  p.checkpoint_duration_min = 20.0;
  p.compression_rate = 1.43;
  p.avg_checkpoint_size_mb = 20.0;
  return {"Laboratory (10GB, 6 up/min)", p, VmBaseline::M3MediumPilotLight()};
}

inline Scenario HospitalScenario(double syncs_per_minute) {
  CostModelParams p;
  p.db_size_gb = 1024.0;
  p.updates_per_minute = 630.0 * 0.20 * 1.1;  // ≈ 138 up/min (Table 2)
  p.batch = std::max(1.0, p.updates_per_minute / syncs_per_minute);
  p.checkpoint_period_min = 60.0;
  p.checkpoint_duration_min = 20.0;
  p.compression_rate = 1.43;
  p.avg_checkpoint_size_mb = 200.0;  // bigger DB, bigger checkpoints
  return {"Hospital (1TB, 138 up/min)", p, VmBaseline::M3LargePilotLight()};
}

}  // namespace ginja
