#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>

namespace ginja {

namespace {
constexpr double kMinutesPerMonth = 30.0 * 24 * 60;
}  // namespace

CostBreakdown CostModel::Monthly() const {
  CostBreakdown out;

  // C_DB_Storage = DBSize × 1.25 / CR × CStorage — the 150% dump threshold
  // makes the average cloud DB footprint 25% above the local size.
  out.db_storage = p_.db_size_gb * 1.25 / p_.compression_rate *
                   p_.prices.storage_gb_month;

  // C_DB_PUT = (minutes-per-month / CkptPeriod) × (CkptSize / 20MB) × CPUT
  const double checkpoints_per_month = kMinutesPerMonth / p_.checkpoint_period_min;
  const double puts_per_checkpoint =
      std::ceil(p_.avg_checkpoint_size_mb / p_.max_object_mb);
  out.db_put = checkpoints_per_month * puts_per_checkpoint * p_.prices.per_put;

  // C_WAL_Storage = (W × CkptTime / RecPerPage + 1) × PageSize/CR × CStorage
  const double ckpt_time_min =
      p_.checkpoint_period_min + p_.checkpoint_duration_min;
  const double wal_pages =
      p_.updates_per_minute * ckpt_time_min / p_.records_per_page + 1.0;
  const double page_gb = p_.wal_page_bytes / (1024.0 * 1024.0 * 1024.0);
  out.wal_storage =
      wal_pages * page_gb / p_.compression_rate * p_.prices.storage_gb_month;

  // C_WAL_PUT = (W × minutes-per-month / B) × CPUT
  out.wal_put =
      p_.updates_per_minute * kMinutesPerMonth / p_.batch * p_.prices.per_put;

  return out;
}

double CostModel::RecoveryCost(bool colocated_vm) const {
  if (colocated_vm) return 0.0;  // same-region S3→EC2 transfers are free
  const CostBreakdown monthly = Monthly();
  return 4.0 * (monthly.db_storage + monthly.wal_storage);
}

DumpUploadCost MonolithicDumpCost(double db_size_gb, double max_object_mb,
                                  const PriceBook& prices) {
  DumpUploadCost out;
  out.bytes_uploaded = db_size_gb * 1024.0 * 1024.0 * 1024.0;
  out.put_requests =
      std::ceil(db_size_gb * 1024.0 / std::max(1e-9, max_object_mb));
  out.dollars = out.put_requests * prices.per_put;
  return out;
}

DumpUploadCost DeltaDumpCost(double db_size_gb, double churn_fraction,
                             double chunk_bytes, const PriceBook& prices) {
  DumpUploadCost out;
  const double db_bytes = db_size_gb * 1024.0 * 1024.0 * 1024.0;
  const double chunks = std::ceil(db_bytes / std::max(1.0, chunk_bytes));
  const double dirty = std::ceil(chunks * std::clamp(churn_fraction, 0.0, 1.0));
  // Per-chunk PUTs for the dirty set, plus the manifest object (~44 bytes
  // per chunk reference — path, offset, length, 20-byte digest).
  out.bytes_uploaded = dirty * chunk_bytes + chunks * 44.0;
  out.put_requests = dirty + 1.0;
  out.dollars = out.put_requests * prices.per_put;
  return out;
}

double MaxSyncsPerHourForBudget(double db_size_gb, double budget_dollars,
                                const PriceBook& prices) {
  const double storage = db_size_gb * prices.storage_gb_month;
  const double remaining = budget_dollars - storage;
  if (remaining <= 0) return 0;
  const double puts = remaining / prices.per_put;  // affordable PUTs/month
  return puts / (30.0 * 24.0);
}

double MaxDbSizeForBudget(double syncs_per_hour, double budget_dollars,
                          const PriceBook& prices) {
  const double put_cost = syncs_per_hour * 30.0 * 24.0 * prices.per_put;
  const double remaining = budget_dollars - put_cost;
  return std::max(0.0, remaining / prices.storage_gb_month);
}

}  // namespace ginja
