#include "ginja/failover.h"

#include "obs/log.h"

namespace ginja {

namespace {

Bytes EncodeU64Pair(std::uint64_t a, std::uint64_t b) {
  Bytes out;
  PutU64(out, a);
  PutU64(out, b);
  return out;
}

}  // namespace

Result<std::uint64_t> ReadEpoch(ObjectStore& store, const Envelope& envelope) {
  auto blob = store.Get(kEpochObject);
  if (!blob.ok()) {
    if (blob.status().code() == ErrorCode::kNotFound) return std::uint64_t{0};
    return blob.status();
  }
  auto payload = envelope.Decode(View(*blob));
  if (!payload.ok()) return payload.status();
  if (payload->size() < 8) return Status::Corruption("epoch object truncated");
  return GetU64(payload->data());
}

Result<std::uint64_t> Promote(ObjectStore& store, const Envelope& envelope) {
  auto current = ReadEpoch(store, envelope);
  if (!current.ok()) return current.status();
  const std::uint64_t next = *current + 1;
  Bytes payload;
  PutU64(payload, next);
  const Bytes enveloped =
      envelope.Encode(View(payload), MetaEpochNonce(next));
  GINJA_RETURN_IF_ERROR(store.Put(kEpochObject, View(enveloped)));
  return next;
}

HeartbeatWriter::HeartbeatWriter(ObjectStorePtr store,
                                 std::shared_ptr<Clock> clock,
                                 const GinjaConfig& ginja_config,
                                 FailoverConfig config, std::uint64_t epoch,
                                 std::function<void()> on_fenced)
    : store_(std::move(store)),
      clock_(std::move(clock)),
      config_(config),
      envelope_(ginja_config.envelope),
      epoch_(epoch),
      on_fenced_(std::move(on_fenced)) {}

HeartbeatWriter::~HeartbeatWriter() { Stop(); }

void HeartbeatWriter::Start() {
  stop_.store(false);
  thread_ = std::thread([this] { Loop(); });
}

void HeartbeatWriter::Stop() {
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
}

bool HeartbeatWriter::BeatOnce() {
  // Fencing check first: a higher epoch means another site took over.
  auto cloud_epoch = ReadEpoch(*store_, envelope_);
  if (cloud_epoch.ok() && *cloud_epoch > epoch_) {
    fenced_.store(true);
    Log(LogLevel::kError, "failover", "fenced by a higher epoch",
        {{"own_epoch", epoch_}, {"cloud_epoch", *cloud_epoch}});
    if (on_fenced_) on_fenced_();
    return false;
  }
  const Bytes payload = EncodeU64Pair(epoch_, ++sequence_);
  const Bytes enveloped =
      envelope_.Encode(View(payload), MetaHeartbeatNonce(sequence_));
  const Status st = store_->Put(kHeartbeatObject, View(enveloped));
  if (st.ok()) {
    beats_.Add();
  } else {
    // A missed beat looks like a dead primary to the standby's monitor —
    // the silent drop this replaces hid exactly the event that matters.
    Log(LogLevel::kWarn, "failover", "heartbeat put failed",
        {{"sequence", sequence_}, {"status", st.ToString()}});
  }
  return true;
}

void HeartbeatWriter::Loop() {
  while (!stop_.load()) {
    if (!BeatOnce()) return;  // fenced: stop beating forever
    // Sleep in small slices so Stop() is responsive under scaled clocks.
    std::uint64_t remaining = config_.heartbeat_interval_us;
    while (remaining > 0 && !stop_.load()) {
      const std::uint64_t slice = std::min<std::uint64_t>(remaining, 20'000);
      clock_->SleepMicros(slice);
      remaining -= slice;
    }
  }
}

FailureDetector::FailureDetector(ObjectStorePtr store,
                                 std::shared_ptr<Clock> clock,
                                 const GinjaConfig& ginja_config,
                                 FailoverConfig config)
    : store_(std::move(store)),
      clock_(std::move(clock)),
      config_(config),
      envelope_(ginja_config.envelope) {}

std::optional<FailureDetector::Beat> FailureDetector::ReadBeat() {
  auto blob = store_->Get(kHeartbeatObject);
  if (!blob.ok()) return std::nullopt;
  auto payload = envelope_.Decode(View(*blob));
  if (!payload.ok() || payload->size() < 16) return std::nullopt;
  Beat beat;
  beat.epoch = GetU64(payload->data());
  beat.sequence = GetU64(payload->data() + 8);
  return beat;
}

bool FailureDetector::WaitForPrimaryFailure(std::uint64_t give_up_after_us) {
  const std::uint64_t start = clock_->NowMicros();
  std::optional<Beat> last_beat = ReadBeat();
  std::uint64_t last_change = start;

  while (clock_->NowMicros() - start < give_up_after_us) {
    clock_->SleepMicros(config_.poll_interval_us);
    const auto beat = ReadBeat();
    const std::uint64_t now = clock_->NowMicros();
    const bool advanced =
        beat && (!last_beat || beat->sequence != last_beat->sequence ||
                 beat->epoch != last_beat->epoch);
    if (advanced) {
      last_beat = beat;
      last_change = now;
      continue;
    }
    if (now - last_change >= config_.failure_timeout_us) return true;
  }
  return false;
}

}  // namespace ginja
