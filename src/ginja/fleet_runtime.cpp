#include "ginja/fleet_runtime.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ginja {

UploadScheduler::UploadScheduler(Options options) : options_(options) {
  options_.threads = std::max(1, options_.threads);
  options_.quantum_bytes = std::max<std::size_t>(1, options_.quantum_bytes);
  workers_.reserve(static_cast<std::size_t>(options_.threads));
  for (int i = 0; i < options_.threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

UploadScheduler::~UploadScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Tenants are expected to Deregister before the runtime dies; anything
  // still queued here is dropped unrun, like a cancelled transfer.
}

UploadScheduler::Tenant* UploadScheduler::Register(std::string id) {
  auto tenant = std::unique_ptr<Tenant>(new Tenant(std::move(id)));
  Tenant* handle = tenant.get();
  std::lock_guard<std::mutex> lock(mu_);
  tenants_.push_back(std::move(tenant));
  return handle;
}

void UploadScheduler::Deregister(Tenant* tenant, bool discard_queued) {
  std::unique_lock<std::mutex> lock(mu_);
  if (discard_queued) {
    tenant->discarding_ = true;
    tenant->queue_.clear();
    if (tenant->in_active_) {
      auto it = std::find(active_.begin(), active_.end(), tenant);
      if (it != active_.end()) {
        if (static_cast<std::size_t>(it - active_.begin()) < cursor_) {
          --cursor_;
        }
        active_.erase(it);
      }
      tenant->in_active_ = false;
    }
  }
  // Clean path: the queue drains through the workers; Kill path: only the
  // jobs already running finish.
  idle_cv_.wait(lock, [&] {
    return tenant->queue_.empty() && tenant->running_ == 0;
  });
  tenant->discarding_ = true;  // a late Enqueue after this is dropped
  auto it = std::find_if(
      tenants_.begin(), tenants_.end(),
      [&](const std::unique_ptr<Tenant>& t) { return t.get() == tenant; });
  if (it != tenants_.end()) tenants_.erase(it);
}

void UploadScheduler::Enqueue(Tenant* tenant, std::size_t cost_bytes,
                              std::function<void(UploadScratch&)> run) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_ || tenant->discarding_) return;  // dropped, like a cancelled op
  Job job;
  job.cost = std::max<std::size_t>(1, cost_bytes);
  job.run = std::move(run);
  tenant->queue_.push_back(std::move(job));
  if (!tenant->in_active_) {
    tenant->in_active_ = true;
    active_.push_back(tenant);
  }
  work_cv_.notify_one();
}

std::size_t UploadScheduler::Backlog(const Tenant* tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenant->queue_.size() +
         static_cast<std::size_t>(tenant->running_);
}

std::uint64_t UploadScheduler::JobsRun(const Tenant* tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenant->jobs_run_;
}

std::uint64_t UploadScheduler::BytesScheduled(const Tenant* tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenant->bytes_scheduled_;
}

UploadScheduler::Tenant* UploadScheduler::PickLocked(Job* out) {
  // Each pass either serves a funded head job, funds an underfunded one
  // (deficit grows by a quantum, so it is funded within cost/quantum
  // visits), or skips a tenant at its slot cap. Only when *every* active
  // tenant is capped is there nothing to do.
  std::size_t capped_streak = 0;
  while (!active_.empty()) {
    if (cursor_ >= active_.size()) cursor_ = 0;
    Tenant* t = active_[cursor_];
    // Ceiling split keeps every worker busy when the pool does not divide
    // evenly (8 threads / 3 tenants -> cap 3, not 2 with two idle).
    const int active_count = static_cast<int>(active_.size());
    const int cap = (options_.threads + active_count - 1) / active_count;
    if (t->running_ >= cap) {
      ++cursor_;
      if (++capped_streak >= active_.size()) return nullptr;
      continue;
    }
    if (t->deficit_ < t->queue_.front().cost) {
      t->deficit_ += options_.quantum_bytes;
      capped_streak = 0;
      if (t->deficit_ < t->queue_.front().cost) {
        ++cursor_;
        continue;
      }
    }
    *out = std::move(t->queue_.front());
    t->queue_.pop_front();
    t->bytes_scheduled_ += out->cost;
    if (t->queue_.empty()) {
      // An idle tenant carries no credit into its next burst (classic DRR).
      t->deficit_ = 0;
      t->in_active_ = false;
      active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(cursor_));
    } else {
      t->deficit_ -= out->cost;
      if (t->deficit_ < t->queue_.front().cost) {
        // Burst exhausted: rotate. Without this the cursor parks on one
        // backlogged tenant, re-funding it a quantum per visit while every
        // other tenant waits for its queue to drain.
        ++cursor_;
      }
    }
    ++t->running_;
    return t;
  }
  return nullptr;
}

void UploadScheduler::WorkerLoop() {
  UploadScratch scratch;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    Job job;
    Tenant* tenant = nullptr;
    work_cv_.wait(lock, [&] {
      if (stop_) return true;
      tenant = PickLocked(&job);
      return tenant != nullptr;
    });
    if (tenant == nullptr) return;  // stopping with nothing picked
    lock.unlock();
    job.run(scratch);
    lock.lock();
    --tenant->running_;
    ++tenant->jobs_run_;
    if (tenant->queue_.empty() && tenant->running_ == 0) {
      idle_cv_.notify_all();
    }
    // The freed slot may make this tenant schedulable for parked workers.
    work_cv_.notify_one();
  }
}

namespace {

TransferOptions FleetTransferOptions(const FleetRuntime::Options& options) {
  TransferOptions t = options.transfer;
  t.concurrency = std::max(1, options.transfer_concurrency);
  return t;
}

}  // namespace

FleetRuntime::FleetRuntime(ObjectStorePtr base_store,
                           std::shared_ptr<Clock> clock, Options options,
                           std::shared_ptr<Observability> obs)
    : options_(options),
      base_store_(std::move(base_store)),
      clock_(clock ? std::move(clock) : std::make_shared<RealClock>()),
      obs_(obs ? std::move(obs) : std::make_shared<Observability>()),
      codec_pool_(options_.codec_threads > 1
                      ? std::make_shared<CodecPool>(options_.codec_threads)
                      : nullptr),
      transfers_(std::make_shared<TransferManager>(
          base_store_, FleetTransferOptions(options_), clock_)),
      scheduler_(UploadScheduler::Options{
          options_.uploader_threads, options_.drr_quantum_bytes}) {
  assert(base_store_ != nullptr);
  transfers_->RegisterMetrics(&obs_->registry, "fleet");
}

FleetRuntime::FleetRuntime(ObjectStorePtr base_store,
                           std::shared_ptr<Clock> clock)
    : FleetRuntime(std::move(base_store), std::move(clock), Options{}) {}

FleetRuntime::~FleetRuntime() = default;

}  // namespace ginja
