// The commit pipeline — paper Algorithm 2 / Figure 3.
//
// Intercepted WAL writes enter the CommitQueue; the Aggregator coalesces
// batches of up to B writes into WAL objects (page rewrites to the same
// offset collapse — the key cost optimisation); Uploader threads PUT the
// objects in parallel; the Unlocker removes batches from the queue head
// *in timestamp order* as their uploads are acknowledged, which is what
// bounds data loss to S even with out-of-order parallel uploads.
//
// A write blocks (stalling the DBMS inside its intercepted syscall) while
// more than S writes are unconfirmed, or while the oldest unconfirmed
// write has been pending longer than TS.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cloud/object_store.h"
#include "common/blocking_queue.h"
#include "common/clock.h"
#include "common/codec/envelope.h"
#include "common/stats.h"
#include "db/layout.h"
#include "ginja/cloud_view.h"
#include "ginja/config.h"
#include "ginja/payload.h"

namespace ginja {

// One intercepted WAL write, annotated by the processor with the WAL-stream
// range it covers (used for fuzzy-checkpoint-safe garbage collection).
struct WalWrite {
  std::string file;
  std::uint64_t offset = 0;
  Bytes data;
  std::uint64_t max_lsn = 0;  // exclusive end of the covered stream range
};

struct CommitPipelineStats {
  Counter writes_submitted;
  Counter batches_uploaded;
  Counter objects_uploaded;
  Counter bytes_uploaded;          // enveloped bytes
  Counter blocked_waits;           // times a Submit had to block
  Counter upload_retries;
  Meter object_logical_bytes;      // pre-envelope object sizes
};

class CommitPipeline {
 public:
  CommitPipeline(ObjectStorePtr store, std::shared_ptr<CloudView> view,
                 std::shared_ptr<Clock> clock, const GinjaConfig& config,
                 std::shared_ptr<Envelope> envelope);
  ~CommitPipeline();

  CommitPipeline(const CommitPipeline&) = delete;
  CommitPipeline& operator=(const CommitPipeline&) = delete;

  void Start();
  // Blocks until every pending write is uploaded, then joins the threads.
  void Stop();
  // Abandons pending writes (simulates a primary-site crash).
  void Kill();

  // Called from the DBMS thread (via the processor). Implements Alg. 2
  // lines 4–7: enqueue, then block while S/TS would be violated.
  void Submit(WalWrite write);

  // Blocks until the queue is empty (all writes confirmed).
  void Drain();

  std::size_t PendingWrites() const;

  // Exclusive end of the WAL-stream range that is durably recoverable from
  // the cloud: advanced by the Unlocker as *consecutive* batches are
  // acknowledged. The checkpoint pipeline withholds DB objects until this
  // frontier covers their page contents (see DESIGN.md, "prefix window").
  Lsn UploadedWalFrontier() const {
    return frontier_lsn_.load(std::memory_order_acquire);
  }

  // Invoked (off-lock, from the Unlocker thread) every time the frontier
  // advances; the checkpoint pipeline hooks this to wake its WAL-coverage
  // wait instead of polling UploadedWalFrontier(). Set before Start().
  void SetFrontierListener(std::function<void()> fn) {
    frontier_listener_ = std::move(fn);
  }

  const CommitPipelineStats& stats() const { return stats_; }

 private:
  struct Batch {
    std::uint64_t seq = 0;
    std::size_t item_count = 0;       // queue entries covered
    std::size_t objects_total = 0;
    std::size_t objects_acked = 0;
    Lsn max_lsn = 0;                  // frontier value once fully acked
  };
  struct UploadJob {
    std::uint64_t batch_seq = 0;
    std::string name;
    // Entries travel unencoded: the uploader frames them as a scatter-gather
    // view and envelopes straight from the entry buffers — the aggregator
    // never materialises a flat payload copy.
    std::vector<FileEntry> entries;
    std::uint64_t nonce = 0;
  };

  void AggregatorLoop();
  void UploaderLoop();
  void UnlockerLoop();
  bool ShouldBlockLocked(std::uint64_t now_us) const;

  ObjectStorePtr store_;
  std::shared_ptr<CloudView> view_;
  std::shared_ptr<Clock> clock_;
  GinjaConfig config_;
  std::shared_ptr<Envelope> envelope_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;    // woken on enqueue (aggregator waits)
  std::condition_variable unblock_cv_;  // woken on batch completion (Submit waits)
  std::deque<std::pair<WalWrite, std::uint64_t>> queue_;  // write, enqueue time
  std::size_t aggregated_ = 0;         // queue prefix already aggregated
  std::uint64_t last_agg_time_us_ = 0;
  std::uint64_t next_batch_seq_ = 0;
  std::deque<Batch> batches_;          // in seq order
  bool stopping_ = false;
  bool killed_ = false;

  BlockingQueue<UploadJob> upload_queue_;
  struct Ack {
    std::uint64_t batch_seq = 0;
    bool uploaded = false;
  };
  BlockingQueue<Ack> ack_queue_;

  std::vector<std::thread> threads_;
  std::atomic<Lsn> frontier_lsn_{0};
  // Set once an upload permanently fails (only possible at shutdown/kill):
  // the frontier must never advance past the resulting gap.
  std::atomic<bool> frontier_broken_{false};
  std::function<void()> frontier_listener_;
  CommitPipelineStats stats_;
};

}  // namespace ginja
