// The commit pipeline — paper Algorithm 2 / Figure 3.
//
// Intercepted WAL writes enter through Submit; the Aggregator coalesces
// batches of up to B writes into WAL objects (page rewrites to the same
// offset collapse — the key cost optimisation); Uploader threads PUT the
// objects in parallel; the Unlocker removes batches from the pending
// window *in timestamp order* as their uploads are acknowledged, which is
// what bounds data loss to S even with out-of-order parallel uploads.
//
// A write blocks (stalling the DBMS inside its intercepted syscall) while
// more than S writes are unconfirmed, or while the oldest unconfirmed
// write has been pending longer than TS.
//
// Ingestion front end (DESIGN.md "Sharded commit ingestion"): Submit is
// lock-free — a global sequencer (one fetch_add) stamps the submit order,
// the write lands in a per-shard MPSC ring chosen by (file, page), and the
// S/TS predicate reads three atomics. The Aggregator drains the shards and
// restores sequencer order through a dense reorder window, so batches are
// formed from exactly the same global write order as the old single-mutex
// queue — byte-for-byte the same objects regardless of shard count. With
// submit_shards == 1 the sequencing + enqueue step is serialized under a
// mutex instead, reproducing the single-lock baseline for comparison.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cloud/object_store.h"
#include "cloud/transfer.h"
#include "common/blocking_queue.h"
#include "common/clock.h"
#include "common/codec/envelope.h"
#include "common/mpsc_queue.h"
#include "common/stats.h"
#include "db/layout.h"
#include "ginja/cloud_view.h"
#include "ginja/coalesce.h"
#include "ginja/config.h"
#include "ginja/fleet_runtime.h"
#include "ginja/payload.h"
#include "obs/obs.h"

namespace ginja {

// One intercepted WAL write, annotated by the processor with the WAL-stream
// range it covers (used for fuzzy-checkpoint-safe garbage collection).
struct WalWrite {
  std::string file;
  std::uint64_t offset = 0;
  Bytes data;
  std::uint64_t max_lsn = 0;  // exclusive end of the covered stream range
};

struct CommitPipelineStats {
  Counter writes_submitted;
  Counter batches_uploaded;
  Counter objects_uploaded;
  Counter bytes_uploaded;          // enveloped bytes
  Counter blocked_waits;           // times a Submit had to block
  Counter upload_retries;
  Counter batches_closed_full;     // batches closed because B writes were ready
  Counter batches_closed_deadline; // batches closed by TB / adaptive deadline
  // Streaming commit path (all zero when streaming_commit is off).
  Counter streams_opened;          // streamed WAL objects begun
  Counter parts_uploaded;          // stream segments durably appended
  Counter tail_objects_uploaded;   // early-ack WALTAIL/ PUTs (all replicas)
  Counter tail_objects_deleted;    // tails deleted after their object folded
  Counter writes_early_acked;      // writes acknowledged via tails
  Meter object_logical_bytes;      // pre-envelope object sizes
  // Stream open to the first data segment being durable (model-time us):
  // how long until the first byte of a batch is recoverable.
  Histogram put_first_byte_us;
  // Per-write commit latency in model-time microseconds: Submit enqueue to
  // the write's batch being fully acknowledged by the cloud. Quantiles via
  // commit_latency_us.Snapshot().
  Histogram commit_latency_us;
};

// Chooses the batch-close deadline for adaptive group commit. The fixed TB
// poll pays worst-case latency at every load level; following BtrLog's
// observation that commit latency under group commit is dominated by batch
// timing, this controller tracks the PUT round-trip R and the write arrival
// rate λ (both EWMA) and closes batches to minimise expected commit latency
// subject to the B cap:
//
//   * λ·R/K <= 1 (K uploaders keep up with singleton batches): deadline 0 —
//     ship every write as soon as the aggregator sees it;
//   * λ·R/K > 1 (uploads would queue): a batch must carry ~λ·R/K writes to
//     sustain the arrival rate, which takes ~R/K to gather — so the
//     deadline is R/K, capped at B writes and at the configured TB.
//
// TB remains a hard upper bound in all regimes. Thread-safe.
class AdaptiveBatchController {
 public:
  AdaptiveBatchController(std::size_t batch_cap, std::uint64_t tb_us,
                          int uploader_threads);

  // Round-trip of one successful PUT (model-time us), from the uploaders.
  void RecordPutRtt(std::uint64_t rtt_us);
  // Writes drained by the aggregator this round; call with count == 0 too,
  // so the rate estimate decays while the pipeline idles.
  void RecordArrivals(std::size_t count, std::uint64_t now_us);
  // Upload-pipe state, sampled by the aggregator each pass: PUTs (or stream
  // parts) currently in flight and, for the streaming path, how full the
  // part window is (backlog / window, >= 1.0 means the uploader is stalled
  // on backpressure). An idle pipe closes immediately; a saturated window
  // stretches the deadline so segments grow instead of queueing. Never
  // calling this (sentinel -1) preserves the original deadline rule.
  void NoteUploadState(int inflight_puts, double window_occupancy);

  // Micros since the last batch closed after which a partial batch ships;
  // always <= TB. 0 = close as soon as anything is pending (also the cold
  // start, before the first PUT round-trip is known).
  std::uint64_t CloseDeadlineUs() const;
  // The batch size the controller is currently steering toward, in [1, B].
  std::size_t TargetBatch() const;

 private:
  double TargetLocked() const;  // λ·R/K, unclamped; mu_ held

  const std::size_t batch_cap_;
  const std::uint64_t tb_us_;
  const double uploaders_;

  mutable std::mutex mu_;
  double rtt_ewma_us_ = 0;
  bool have_rtt_ = false;
  double rate_ewma_ = 0;  // writes per microsecond
  bool have_rate_ = false;
  std::uint64_t last_arrival_us_ = 0;
  std::size_t arrival_carry_ = 0;  // same-timestamp arrivals, folded forward

  // Fed by NoteUploadState; -1 until the pipeline first reports.
  std::atomic<int> inflight_{-1};
  std::atomic<double> occupancy_{0.0};
};

class CommitPipeline {
 public:
  CommitPipeline(ObjectStorePtr store, std::shared_ptr<CloudView> view,
                 std::shared_ptr<Clock> clock, const GinjaConfig& config,
                 std::shared_ptr<Envelope> envelope);
  ~CommitPipeline();

  CommitPipeline(const CommitPipeline&) = delete;
  CommitPipeline& operator=(const CommitPipeline&) = delete;

  void Start();
  // Blocks until every pending write is uploaded, then joins the threads.
  void Stop();
  // Abandons pending writes (simulates a primary-site crash).
  void Kill();

  // Called from the DBMS thread (via the processor). Implements Alg. 2
  // lines 4–7: enqueue, then block while S/TS would be violated. Safe to
  // call from any number of threads concurrently.
  void Submit(WalWrite write);

  // Blocks until the queue is empty (all writes confirmed).
  void Drain();

  std::size_t PendingWrites() const;

  // Exclusive end of the WAL-stream range that is durably recoverable from
  // the cloud: advanced by the Unlocker as *consecutive* batches are
  // acknowledged. The checkpoint pipeline withholds DB objects until this
  // frontier covers their page contents (see DESIGN.md, "prefix window").
  Lsn UploadedWalFrontier() const {
    return frontier_lsn_.load(std::memory_order_acquire);
  }

  // Invoked (off-lock, from the Unlocker thread) every time the frontier
  // advances; the checkpoint pipeline hooks this to wake its WAL-coverage
  // wait instead of polling UploadedWalFrontier(). Set before Start().
  void SetFrontierListener(std::function<void()> fn) {
    frontier_listener_ = std::move(fn);
  }

  const CommitPipelineStats& stats() const { return stats_; }

 private:
  static constexpr std::uint64_t kNoTrace = ~std::uint64_t{0};

  // A submitted write plus its sequencer stamp and enqueue time.
  struct Slot {
    std::uint64_t seq = 0;
    std::uint64_t enqueue_us = 0;
    // When the write was staged by the aggregator; set (with traced) only
    // for writes the tracer sampled, so the submit hot path never pays.
    std::uint64_t staged_us = 0;
    bool traced = false;
    WalWrite write;
  };
  struct Batch {
    std::uint64_t seq = 0;
    std::size_t item_count = 0;       // writes covered (grows while open)
    std::size_t objects_total = 0;
    std::size_t objects_acked = 0;
    Lsn max_lsn = 0;                  // frontier value once fully acked
    // Streaming fields (window_mu_). A streamed batch is `open` from stream
    // open to stream close: the unlocker must not retire it while open even
    // if every object so far has acked. Each sealed segment appends one
    // entry to seg_writes (writes it carries) and seg_max_lsn (cumulative
    // max over segments 0..i); seg_tail_acked marks segments whose tail
    // objects all landed. tail_prefix is the dense acked-segment prefix,
    // writes_completed the writes already retired early through it.
    bool open = false;
    std::size_t writes_completed = 0;
    std::vector<std::uint32_t> seg_writes;
    std::vector<Lsn> seg_max_lsn;
    std::vector<char> seg_tail_acked;
    std::uint32_t tail_prefix = 0;
  };
  struct UploadJob {
    // kObject is the buffered path: envelope + one blocking PUT. A streamed
    // batch instead emits one kStreamSegment job per sealed segment
    // (envelope + AppendPart, plus tail PUTs under early_ack) and a final
    // kStreamFinish job that publishes the object under its name.
    enum class Kind { kObject, kStreamSegment, kStreamFinish };
    Kind kind = Kind::kObject;
    std::uint64_t batch_seq = 0;
    std::string name;
    // Entries travel unencoded and borrowed: each ref points at one of the
    // `data` buffers (heap allocations moved, never copied, out of the
    // submitted writes) and at a pipeline-lifetime interned file name. The
    // uploader frames them as a scatter-gather view and envelopes straight
    // from these buffers.
    std::vector<FileEntryRef> entries;
    std::vector<Bytes> data;
    std::uint64_t nonce = 0;
    // Trace id of the batch's first sampled write (kNoTrace when none) and
    // the batch-close time, the kEncodeQueue span's start.
    std::uint64_t trace_seq = kNoTrace;
    std::uint64_t close_us = 0;
    // Streaming jobs only.
    StreamSessionPtr session;
    std::uint32_t seg_index = 0;     // kStreamSegment: 0-based segment
    std::uint32_t total_parts = 0;   // kStreamFinish: prologue + segments
    std::uint64_t ts = 0;            // the WAL object's timestamp
    Lsn seg_max_lsn = 0;             // cumulative max over segments 0..seg
    std::uint64_t stream_open_us = 0;
  };
  struct Ack {
    // kTailSeg acknowledges one segment's tail objects (early ack);
    // kObject acknowledges a whole uploaded object.
    enum class Kind { kObject, kTailSeg };
    Kind kind = Kind::kObject;
    std::uint64_t batch_seq = 0;
    std::uint32_t seg_index = 0;   // kTailSeg only
    bool uploaded = false;
    std::uint64_t trace_seq = kNoTrace;
    std::uint64_t put_end_us = 0;  // kAck span start
  };

  void AggregatorLoop();
  void UploaderLoop(int index);
  void UnlockerLoop();

  // Hands a formed job to the upload path: the private upload_queue_ when
  // standalone, the fleet runtime's DRR scheduler (under this tenant's
  // queue, weighted by the job's logical bytes) when config_.runtime is
  // set.
  void EnqueueUpload(UploadJob job);
  // One upload job end to end (encode → PUT/stream op → ack); the body the
  // standalone UploaderLoop runs per job and the fleet scheduler runs on a
  // shared worker. `retry` must be thread-safe when shared across workers.
  void ExecuteUploadJob(UploadJob job, RetryPolicy& retry, Bytes& framing,
                        Bytes& enveloped);
  // Route for operations on the (possibly shared) stream transfer manager:
  // always this pipeline's store, billed to account_ in fleet mode.
  TransferRoute StreamRoute() const { return {store_, account_}; }

  // Alg. 2's blocking predicate over the sequencer counters (lock-free).
  bool ShouldBlock(std::uint64_t now_us) const;
  std::uint64_t Unconfirmed() const;
  std::size_t ShardOf(const WalWrite& write) const;

  // Aggregator internals. DrainShards returns the number of writes newly
  // staged in submit order.
  std::size_t DrainShards();
  void PlaceInReorder(Slot slot);
  void GrowReorder(std::uint64_t seq);
  void FormBatch(std::size_t take, std::uint64_t now_us, bool closed_full);
  // Streaming aggregator: seals ready segments into upload jobs, opening
  // and closing streams as the B / size / deadline rules dictate.
  void StreamPass(std::uint64_t now_us, bool stop_flush);
  void OpenStream(std::uint64_t now_us);
  void SealSegment(std::size_t take, std::uint64_t now_us);
  void CloseStream(std::uint64_t now_us, bool closed_full);
  // Uploader-side handlers for the streaming job kinds.
  void UploadStreamSegment(UploadJob job, Bytes& framing, Bytes& enveloped);
  void FinishStream(UploadJob job);
  // Sleeps model-time micros in slices, aborting on Kill(); false if killed.
  bool SleepInterruptible(std::uint64_t micros);

  // Registers stats + DR-exposure gauges into config_.obs (no-op when the
  // config carries no observability bundle).
  void RegisterMetrics();
  // Per-tenant label set for every registered series: {tenant=<id>} for a
  // fleet member, empty standalone — so a shared fleet registry keeps each
  // tenant's RPO/latency series distinct.
  MetricLabels Labels() const {
    return config_.tenant_id.empty()
               ? MetricLabels{}
               : MetricLabels{{"tenant", config_.tenant_id}};
  }
  bool Tracing() const { return tracer_ != nullptr && tracer_->enabled(); }

  static constexpr std::uint64_t kNoOldest = ~std::uint64_t{0};

  ObjectStorePtr store_;
  std::shared_ptr<CloudView> view_;
  std::shared_ptr<Clock> clock_;
  GinjaConfig config_;
  std::shared_ptr<Envelope> envelope_;

  // -- submit path (DBMS threads) --------------------------------------------
  // Sequencer: seq of the next Submit == count of writes ever submitted.
  std::atomic<std::uint64_t> submit_seq_{0};
  // Submit calls that have *returned* to the DBMS. The RPO-exposure gauge
  // is returned - completed: writes the database believes are committed but
  // the cloud has not yet confirmed — the writes a disaster would lose.
  // During an outage with continuous submits it reaches exactly S and holds
  // (Alg. 2 blocks the S+1'th returner).
  std::atomic<std::uint64_t> returned_count_{0};
  // Writes whose batch has been fully acknowledged (consecutive prefix).
  std::atomic<std::uint64_t> completed_count_{0};
  // Enqueue time of the oldest drained-but-unacknowledged write, or
  // kNoOldest. Writes still inside the shard rings are invisible here for
  // at most ~one aggregator poll (1 ms) — negligible against TS.
  std::atomic<std::uint64_t> oldest_pending_us_{kNoOldest};
  // Writes consumed into batches; published so Submit can cheaply decide
  // whether a full batch is pending and the aggregator needs a wakeup.
  std::atomic<std::uint64_t> batched_count_{0};
  // Clock sampled by the background threads (aggregator each pass, unlocker
  // each ack), used for enqueue stamps on the sharded submit path instead
  // of a per-Submit clock read. At most ~one poll interval stale, and never
  // ahead of the real clock, so commit latencies stay non-negative and TS
  // ages err toward blocking earlier. The shards == 1 baseline still reads
  // the clock per Submit, as the old design did.
  std::atomic<std::uint64_t> coarse_now_us_{0};

  std::vector<std::unique_ptr<MpscRing<Slot>>> shards_;
  std::mutex legacy_mu_;  // serializes sequencing+enqueue when shards == 1

  std::atomic<bool> stopping_{false};
  std::atomic<bool> killed_{false};
  // Set when Stop() ran to completion: the destructor then lets the stream
  // transfer pool drain its queued folded-tail deletes instead of Kill()
  // cancelling them.
  std::atomic<bool> stopped_clean_{false};

  std::mutex block_mu_;                 // protects nothing: CV discipline only
  std::condition_variable unblock_cv_;  // woken on batch completion / kill

  std::mutex agg_mu_;
  std::condition_variable agg_cv_;      // woken when a full batch is pending
  // True only while the aggregator is parked in wait_for. Submitters check
  // it before touching agg_mu_, so a sustained burst (backlog >= B the whole
  // time) pays at most one notify per aggregator sleep instead of taking a
  // global mutex on every Submit — which would re-serialize the sharded
  // path. A missed wake (flag read just before the store) costs at most one
  // poll interval.
  std::atomic<bool> agg_idle_{false};

  // -- aggregator-private (no locks) -----------------------------------------
  std::vector<Slot> reorder_;           // dense window indexed by seq
  std::vector<char> reorder_filled_;
  std::uint64_t reorder_base_ = 0;      // seq of the next write to stage
  std::deque<Slot> staged_;             // dense prefix awaiting batch formation
  CoalesceTable coalesce_;
  NameInterner names_;
  struct SurvivorRef {
    std::string_view file;
    std::uint64_t offset = 0;
    std::uint32_t index = 0;  // into staged_
  };
  std::vector<SurvivorRef> survivors_;  // reused across batches
  std::uint64_t last_agg_time_us_ = 0;
  std::uint64_t next_batch_seq_ = 0;
  std::unique_ptr<AdaptiveBatchController> adaptive_;  // null unless enabled

  // The stream currently filling (streaming_commit only; aggregator-private).
  // One stream == one batch == one WAL object; closed streams keep uploading
  // through their session while the next stream fills.
  struct OpenStreamState {
    StreamSessionPtr session;
    std::uint64_t ts = 0;
    std::uint64_t batch_seq = 0;
    std::uint32_t next_seg = 0;     // segments sealed so far
    std::size_t writes = 0;         // writes sealed into segments
    std::size_t logical_bytes = 0;  // pre-envelope payload bytes so far
    std::string first_file;         // name fields of the eventual WAL object
    std::uint64_t first_offset = 0;
    Lsn max_lsn = 0;                // cumulative over sealed segments
    std::uint64_t opened_us = 0;
    std::uint64_t trace_seq = kNoTrace;  // first sampled write in the stream
  };
  std::unique_ptr<OpenStreamState> open_stream_;

  // -- pending window (aggregator registers, unlocker retires) ---------------
  mutable std::mutex window_mu_;
  std::deque<Batch> batches_;                 // in seq order
  std::deque<std::uint64_t> pending_times_;   // enqueue times, seq order
  // Mirrors batches_.size() so Stop() can wait for every batch's object to
  // publish (early acks retire *writes* before the object lands) without
  // taking window_mu_ under block_mu_.
  std::atomic<std::size_t> batches_inflight_{0};

  BlockingQueue<UploadJob> upload_queue_;
  BlockingQueue<Ack> ack_queue_;

  std::vector<std::thread> threads_;
  std::atomic<Lsn> frontier_lsn_{0};
  // Set once an upload permanently fails (only possible at shutdown/kill):
  // the frontier must never advance past the resulting gap.
  std::atomic<bool> frontier_broken_{false};
  std::function<void()> frontier_listener_;
  CommitPipelineStats stats_;
  // Borrowed from config_.obs (which co-owns the bundle); null when the
  // pipeline runs unobserved.
  WriteTracer* tracer_ = nullptr;

  // Buffered-path PUTs currently inside the retry loop, feeding
  // AdaptiveBatchController::NoteUploadState.
  std::atomic<int> buffered_inflight_puts_{0};

  // -- fleet mode (config_.runtime set) --------------------------------------
  // This tenant's queue in the shared DRR upload scheduler; null when
  // standalone (private uploader threads) or after deregistration.
  UploadScheduler::Tenant* sched_tenant_ = nullptr;
  // Billing/cancellation scope for this pipeline's operations on the
  // shared TransferManager: Kill() cancels the account (not the manager,
  // which serves other tenants), the destructor WaitIdle()s it so no
  // callback referencing this pipeline survives destruction.
  TransferAccountPtr account_;
  // Shared retry schedule for fleet upload jobs (thread-safe); standalone
  // uploaders keep their per-thread decorrelated policies.
  std::unique_ptr<RetryPolicy> fleet_retry_;

  // Drives streamed part appends, tail PUTs, and superseded-tail deletes
  // (streaming_commit only, else null). Standalone it is privately owned
  // and declared LAST: destroyed first, its destructor joining the workers
  // before anything its callbacks reference goes away; Stop() lets it
  // drain, Kill() cancels it. In fleet mode it aliases the runtime's
  // shared manager — the destructor instead quiesces via
  // account_->WaitIdle(), and Kill() cancels only the account.
  std::shared_ptr<TransferManager> stream_transfers_;
};

}  // namespace ginja
