#include "ginja/fleet.h"

#include <utility>

#include "cloud/tenant_namespace.h"

namespace ginja {

GinjaFleet::GinjaFleet(std::shared_ptr<FleetRuntime> runtime)
    : runtime_(std::move(runtime)) {}

GinjaFleet::~GinjaFleet() {
  // Tenants destroy in reverse insertion order; each Ginja's destructor
  // kills-if-running and quiesces its scheduler queue and transfer account
  // against the (still alive) runtime_.
  tenants_.clear();
}

Result<Ginja*> GinjaFleet::AddTenant(TenantSpec spec) {
  if (spec.id.empty()) {
    return Status::InvalidArgument("tenant id must be non-empty");
  }
  if (spec.id.find('/') != std::string::npos) {
    // '/' would nest inside another tenant's namespace ("a" vs "a/b").
    return Status::InvalidArgument("tenant id must not contain '/'");
  }
  for (const auto& t : tenants_) {
    if (t->id == spec.id) {
      return Status::AlreadyExists("tenant '" + spec.id + "' already added");
    }
  }

  auto tenant = std::make_unique<Tenant>();
  tenant->id = spec.id;
  tenant->store = std::make_shared<TenantNamespace>(
      runtime_->base_store(), TenantNamespace::Prefix(spec.id));
  if (spec.store_decorator) {
    tenant->store = spec.store_decorator(tenant->store);
    if (!tenant->store) {
      return Status::InvalidArgument("store decorator returned null");
    }
  }

  GinjaConfig config = std::move(spec.config);
  config.runtime = runtime_;
  config.tenant_id = spec.id;
  if (!config.obs) config.obs = runtime_->obs();
  tenant->ginja =
      std::make_unique<Ginja>(std::move(spec.local_vfs), tenant->store,
                              runtime_->clock(), spec.layout, std::move(config));

  Ginja* handle = tenant->ginja.get();
  tenants_.push_back(std::move(tenant));
  return handle;
}

Ginja* GinjaFleet::Find(const std::string& id) {
  for (const auto& t : tenants_) {
    if (t->id == id) return t->ginja.get();
  }
  return nullptr;
}

ObjectStorePtr GinjaFleet::TenantStore(const std::string& id) {
  for (const auto& t : tenants_) {
    if (t->id == id) return t->store;
  }
  return nullptr;
}

std::vector<std::string> GinjaFleet::TenantIds() const {
  std::vector<std::string> ids;
  ids.reserve(tenants_.size());
  for (const auto& t : tenants_) ids.push_back(t->id);
  return ids;
}

bool GinjaFleet::RemoveTenant(const std::string& id, bool kill) {
  for (auto it = tenants_.begin(); it != tenants_.end(); ++it) {
    if ((*it)->id != id) continue;
    if (kill) {
      (*it)->ginja->Kill();
    } else {
      (*it)->ginja->Stop();
    }
    tenants_.erase(it);
    return true;
  }
  return false;
}

void GinjaFleet::StopAll() {
  for (const auto& t : tenants_) t->ginja->Stop();
}

void GinjaFleet::KillAll() {
  for (const auto& t : tenants_) t->ginja->Kill();
}

void GinjaFleet::DrainAll() {
  for (const auto& t : tenants_) t->ginja->Drain();
}

}  // namespace ginja
