// GinjaFleet — N protected databases on one host's shared resources.
//
// The facade that turns the per-instance Ginja into a multi-tenant DR
// service: one FleetRuntime (uploader pool + DRR scheduler, one
// TransferManager, one CodecPool, one metrics registry) serves every
// tenant, while each tenant keeps its own personality — B/S/TB knobs,
// CloudView, pending window — and a private key namespace ("t/<id>/")
// inside the shared bucket. AddTenant does the wiring: it wraps the
// runtime's base store in the tenant's TenantNamespace (optionally
// stacking a per-tenant decorator such as a MeteredStore), injects the
// runtime, tenant id, and shared observability into the config, and
// constructs the Ginja. The caller then Boot()s or Reboot()s it as usual.
//
// Per-tenant S/TS blocking semantics are untouched by the sharing: each
// tenant's commit pipeline counts its own unconfirmed writes, and the DRR
// scheduler guarantees a hot tenant cannot starve another tenant's upload
// path (see UploadScheduler).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cloud/object_store.h"
#include "common/result.h"
#include "db/layout.h"
#include "fs/vfs.h"
#include "ginja/fleet_runtime.h"
#include "ginja/ginja.h"

namespace ginja {

class GinjaFleet {
 public:
  struct TenantSpec {
    // Non-empty, unique within the fleet; becomes the key prefix "t/<id>/"
    // and the `tenant` metric label.
    std::string id;
    VfsPtr local_vfs;
    DbLayout layout;
    // The tenant's personality (B/S/TB, streaming, envelope, ...). The
    // fleet overwrites `runtime`, `tenant_id`, and (when unset) `obs`.
    GinjaConfig config;
    // Optional per-tenant store stack on top of the namespaced view —
    // e.g. metering or fault injection scoped to this tenant. Receives
    // the TenantNamespace wrapper, returns the store the tenant uses.
    std::function<ObjectStorePtr(ObjectStorePtr)> store_decorator;
  };

  explicit GinjaFleet(std::shared_ptr<FleetRuntime> runtime);
  ~GinjaFleet();

  GinjaFleet(const GinjaFleet&) = delete;
  GinjaFleet& operator=(const GinjaFleet&) = delete;

  // Constructs (but does not Boot) the tenant. The returned pointer stays
  // valid until the tenant is removed or the fleet is destroyed.
  Result<Ginja*> AddTenant(TenantSpec spec);

  // Null when the id is unknown.
  Ginja* Find(const std::string& id);
  // The store view AddTenant built for the tenant (namespace + decorator);
  // null when the id is unknown.
  ObjectStorePtr TenantStore(const std::string& id);
  std::vector<std::string> TenantIds() const;
  std::size_t size() const { return tenants_.size(); }

  // Stops (kill=false) or kills (kill=true) the tenant and destroys it.
  // False when the id is unknown.
  bool RemoveTenant(const std::string& id, bool kill = false);

  // Fleet-wide lifecycle, in tenant insertion order.
  void StopAll();
  void KillAll();
  void DrainAll();

  FleetRuntime& runtime() { return *runtime_; }
  const std::shared_ptr<FleetRuntime>& runtime_ptr() const { return runtime_; }

 private:
  struct Tenant {
    std::string id;
    ObjectStorePtr store;  // the namespaced (and decorated) view
    std::unique_ptr<Ginja> ginja;
  };

  std::shared_ptr<FleetRuntime> runtime_;
  std::vector<std::unique_ptr<Tenant>> tenants_;  // insertion order
};

}  // namespace ginja
