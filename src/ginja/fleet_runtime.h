// FleetRuntime — the shared resource pool behind a multi-tenant fleet.
//
// One Ginja instance per protected database does not scale to a DR
// service: N tenants would mean N uploader pools, N transfer managers,
// and N codec pools on one host. The runtime pools the expensive
// resources once (Taurus/LogBase-style shared services) and hands each
// tenant a scoped view:
//
//   * UploadScheduler — one pool of uploader threads executing WAL-object
//     upload jobs for every tenant, scheduled by deficit round robin over
//     per-tenant FIFO queues so a hot tenant cannot monopolize the PUT
//     path and starve another tenant's S bound;
//   * TransferManager — one worker pool / one global in-flight window for
//     stream parts, checkpoint parts, recovery GETs, and GC DELETEs, with
//     per-tenant TransferAccounts for attribution and scoped cancel;
//   * CodecPool — one set of codec workers for envelope encoding;
//   * Observability — one registry; tenants label their series tenant=<id>.
//
// Per-tenant state (B/S/TB knobs, pending window, CloudView, namespaced
// store) stays inside each Ginja; only execution resources are shared, so
// S/TS blocking semantics remain per-tenant exact.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cloud/object_store.h"
#include "cloud/transfer.h"
#include "common/bytes.h"
#include "common/clock.h"
#include "common/codec/codec_pool.h"
#include "common/stats.h"
#include "obs/obs.h"

namespace ginja {

// Per-worker reusable buffers handed to each upload job, replacing the
// per-uploader-thread framing/envelope buffers of the standalone
// pipeline. Capacity amortizes across jobs from every tenant.
struct UploadScratch {
  Bytes framing;
  Bytes enveloped;
};

// Deficit-round-robin scheduler over per-tenant upload queues.
//
// Each registered tenant owns a FIFO of jobs; a job carries its byte cost
// (the logical object size). Workers visit tenants with non-empty queues
// in round-robin order, topping the visited tenant's deficit up by one
// quantum per visit and running its head job once the deficit covers the
// job's cost — so over time each backlogged tenant gets an equal *byte*
// share of the upload path regardless of how fast it enqueues. Two
// fairness mechanisms compose:
//
//   * byte fairness (the deficit): a hot tenant with 20 MB objects cannot
//     drain ahead of a cold tenant's 4 KB objects by sheer queue depth;
//   * slot fairness: with A tenants backlogged, one tenant may occupy at
//     most ceil(threads / A) workers at once, so a single tenant can
//     never hold every worker while another has work ready. With one
//     active tenant the cap is the whole pool — a 1-tenant fleet behaves
//     exactly like the standalone uploader pool.
//
// Jobs of one tenant start in FIFO order (they may complete out of order
// across workers, exactly like the standalone pipeline's N uploaders).
class UploadScheduler {
 public:
  struct Options {
    int threads = 8;
    // Deficit added per round-robin visit. Smaller quanta interleave
    // tenants more finely at the price of more scheduling passes per
    // large object.
    std::size_t quantum_bytes = 256 * 1024;
  };

  // Opaque per-tenant handle; owned by the scheduler, valid from
  // Register until Deregister returns.
  class Tenant;

  explicit UploadScheduler(Options options);
  ~UploadScheduler();

  UploadScheduler(const UploadScheduler&) = delete;
  UploadScheduler& operator=(const UploadScheduler&) = delete;

  // Registers a tenant queue. `id` is informational (stats, logs).
  Tenant* Register(std::string id);

  // Removes the tenant: waits until none of its jobs are queued or
  // running. With `discard_queued`, queued jobs are dropped unrun (the
  // Kill path); otherwise the queue drains normally first (clean Stop).
  // The handle is invalid once this returns.
  void Deregister(Tenant* tenant, bool discard_queued);

  // Appends a job to the tenant's queue. `cost_bytes` is the job's
  // scheduling weight (use the logical object size; 0 is treated as 1).
  void Enqueue(Tenant* tenant, std::size_t cost_bytes,
               std::function<void(UploadScratch&)> run);

  // Jobs queued or running for this tenant (its upload backlog).
  std::size_t Backlog(const Tenant* tenant) const;

  // Lifetime jobs executed for this tenant, and bytes of cost scheduled.
  std::uint64_t JobsRun(const Tenant* tenant) const;
  std::uint64_t BytesScheduled(const Tenant* tenant) const;

  int threads() const { return options_.threads; }

 private:
  struct Job {
    std::size_t cost = 1;
    std::function<void(UploadScratch&)> run;
  };

  void WorkerLoop();
  // Picks the next runnable job under mu_; null when nothing is eligible
  // (queues empty, or every backlogged tenant is at its slot cap).
  Tenant* PickLocked(Job* out);

  Options options_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: new job / slot freed
  std::condition_variable idle_cv_;   // Deregister: tenant went idle
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::vector<Tenant*> active_;       // tenants with non-empty queues
  std::size_t cursor_ = 0;            // round-robin position in active_
  bool stop_ = false;

  std::vector<std::thread> workers_;
};

class UploadScheduler::Tenant {
 public:
  const std::string& id() const { return id_; }

 private:
  friend class UploadScheduler;

  explicit Tenant(std::string id) : id_(std::move(id)) {}

  std::string id_;
  // All mutable state is guarded by the scheduler's mu_.
  std::deque<Job> queue_;
  std::size_t deficit_ = 0;
  int running_ = 0;
  bool in_active_ = false;
  bool discarding_ = false;
  std::uint64_t jobs_run_ = 0;
  std::uint64_t bytes_scheduled_ = 0;
};

// Bundles the shared pools. Construct once per host, then pass (via
// GinjaConfig::runtime, normally through GinjaFleet) to every tenant.
class FleetRuntime {
 public:
  struct Options {
    // Uploader threads shared by all tenants' commit pipelines.
    int uploader_threads = 8;
    std::size_t drr_quantum_bytes = 256 * 1024;
    // Shared TransferManager concurrency (stream parts, checkpoint parts,
    // GC deletes, recovery GETs — the global in-flight window).
    int transfer_concurrency = 16;
    // Retry schedule for the shared manager.
    TransferOptions transfer;
    // Codec workers for chunk-parallel envelope encoding; <= 1 disables
    // the shared pool (tenants encode serially).
    int codec_threads = 4;
  };

  // `base_store` is the fleet's shared bucket: the store that per-tenant
  // TenantNamespace wrappers scope into. The shared TransferManager binds
  // to it, but every tenant op overrides the store via its TransferRoute,
  // so decorators (metering, faults) stay per-tenant.
  FleetRuntime(ObjectStorePtr base_store, std::shared_ptr<Clock> clock,
               Options options, std::shared_ptr<Observability> obs = nullptr);
  // Default Options. (A `= {}` default argument trips GCC's deferred
  // parsing of the nested aggregate's member initializers.)
  FleetRuntime(ObjectStorePtr base_store, std::shared_ptr<Clock> clock);
  ~FleetRuntime();

  FleetRuntime(const FleetRuntime&) = delete;
  FleetRuntime& operator=(const FleetRuntime&) = delete;

  UploadScheduler& scheduler() { return scheduler_; }
  const std::shared_ptr<TransferManager>& transfers() const {
    return transfers_;
  }
  const std::shared_ptr<CodecPool>& codec_pool() const { return codec_pool_; }
  const std::shared_ptr<Observability>& obs() const { return obs_; }
  const std::shared_ptr<Clock>& clock() const { return clock_; }
  const ObjectStorePtr& base_store() const { return base_store_; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  ObjectStorePtr base_store_;
  std::shared_ptr<Clock> clock_;
  std::shared_ptr<Observability> obs_;
  std::shared_ptr<CodecPool> codec_pool_;
  std::shared_ptr<TransferManager> transfers_;
  UploadScheduler scheduler_;
};

}  // namespace ginja
