// Failure detection and failover coordination — the piece the paper leaves
// out of scope (§5: "our system does not consider the detection of a
// failure on the primary infrastructure and the switching to a backup")
// and points at SecondSite [40] for. Implemented here as an extension,
// using only the object store itself as the coordination medium (no extra
// service, keeping the paper's zero-VM economics):
//
//   * the primary's HeartbeatWriter PUTs a monotonically increasing beat
//     (epoch, sequence) to `meta/heartbeat` every interval;
//   * a FailureDetector anywhere in the world polls it and declares the
//     primary dead once the beat stalls for the failure timeout;
//   * Promote() fences the old primary by bumping `meta/epoch` *before*
//     recovery begins; a zombie primary notices the higher epoch on its
//     next beat, stops replicating, and reports itself fenced — the
//     split-brain guard.
//
// Heartbeat and epoch objects go through the same MAC'd envelope as data
// objects, so a tampered beat is indistinguishable from a missing one.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <thread>

#include "cloud/object_store.h"
#include "common/clock.h"
#include "common/codec/envelope.h"
#include "common/stats.h"
#include "ginja/config.h"

namespace ginja {

struct FailoverConfig {
  std::uint64_t heartbeat_interval_us = 1'000'000;
  // Detector declares failure after this much silence (model time).
  std::uint64_t failure_timeout_us = 5'000'000;
  std::uint64_t poll_interval_us = 500'000;
};

inline constexpr const char* kHeartbeatObject = "meta/heartbeat";
inline constexpr const char* kEpochObject = "meta/epoch";

// Meta objects use the 0xF0F0 nonce prefix — disjoint from WAL-ts nonces
// (small integers) and DB-part nonces (high bit set). Within that prefix,
// each meta object gets its own 40-bit counter subspace selected by a tag
// in bits 40–47. Both must never collide: AES-CTR reuses the keystream for
// equal nonces, so epoch object N and heartbeat sequence N sharing a nonce
// would leak the XOR of their plaintexts to anyone reading the bucket.
inline constexpr std::uint64_t kMetaNonceBase = 0xF0F0'0000'0000'0000ull;
inline constexpr std::uint64_t kMetaNonceValueMask = (1ull << 40) - 1;

inline constexpr std::uint64_t MetaEpochNonce(std::uint64_t epoch) {
  return kMetaNonceBase | (1ull << 40) | (epoch & kMetaNonceValueMask);
}

inline constexpr std::uint64_t MetaHeartbeatNonce(std::uint64_t sequence) {
  return kMetaNonceBase | (2ull << 40) | (sequence & kMetaNonceValueMask);
}

// Reads the fencing epoch (0 when the object does not exist yet).
Result<std::uint64_t> ReadEpoch(ObjectStore& store, const Envelope& envelope);

// Fences every primary of an older epoch and returns the new epoch the
// caller now owns. The first step of any takeover, *before* recovery.
Result<std::uint64_t> Promote(ObjectStore& store, const Envelope& envelope);

class HeartbeatWriter {
 public:
  // `epoch` is the epoch this primary believes it owns (from Promote, or 0
  // for the initial primary). `on_fenced` fires (once, from the heartbeat
  // thread) when a higher epoch appears — the callee must stop accepting
  // writes (e.g. Ginja::Stop + refuse commits).
  HeartbeatWriter(ObjectStorePtr store, std::shared_ptr<Clock> clock,
                  const GinjaConfig& ginja_config, FailoverConfig config,
                  std::uint64_t epoch, std::function<void()> on_fenced = nullptr);
  ~HeartbeatWriter();

  void Start();
  void Stop();

  bool fenced() const { return fenced_.load(); }
  std::uint64_t beats_sent() const { return beats_.Get(); }
  std::uint64_t epoch() const { return epoch_; }

 private:
  void Loop();
  bool BeatOnce();

  ObjectStorePtr store_;
  std::shared_ptr<Clock> clock_;
  FailoverConfig config_;
  Envelope envelope_;
  std::uint64_t epoch_;
  std::function<void()> on_fenced_;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> fenced_{false};
  std::uint64_t sequence_ = 0;
  Counter beats_;
};

class FailureDetector {
 public:
  FailureDetector(ObjectStorePtr store, std::shared_ptr<Clock> clock,
                  const GinjaConfig& ginja_config, FailoverConfig config);

  // Polls until the heartbeat stalls for failure_timeout (returns true:
  // the primary is considered dead) or `give_up_after_us` elapses
  // (returns false). A missing heartbeat object counts as silence.
  bool WaitForPrimaryFailure(std::uint64_t give_up_after_us);

  // One poll: returns the latest observed (epoch, sequence), if readable.
  struct Beat {
    std::uint64_t epoch = 0;
    std::uint64_t sequence = 0;
  };
  std::optional<Beat> ReadBeat();

 private:
  ObjectStorePtr store_;
  std::shared_ptr<Clock> clock_;
  FailoverConfig config_;
  Envelope envelope_;
};

}  // namespace ginja
