// Batch-formation scratch structures for the commit pipeline's aggregator.
//
// Coalescing a batch (paper Alg. 2 lines 12-13: last write wins per
// (file, offset)) used to build a fresh std::map per batch — one
// red-black-tree node allocation per write on the hot path. CoalesceTable
// is the replacement: a reusable open-addressed hash table cleared by
// bumping an epoch tag, so steady-state aggregation does zero allocation.
// NameInterner backs the string_views handed to uploaders: WAL file names
// are copied once into chunked storage that never moves, so every
// FileEntryRef can borrow them for the pipeline's whole lifetime.
//
// Both are single-writer structures (the aggregator thread); readers of the
// interned names synchronize through the upload queue hand-off.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

namespace ginja {

// Interns file names into an arena of fixed chunks; returned views stay
// valid until destruction. Lookup is a linear scan — a database has a
// handful of live WAL segment names, so a hash index would cost more than
// it saves.
class NameInterner {
 public:
  std::string_view Intern(std::string_view name) {
    for (const auto& known : names_) {
      if (known == name) return known;
    }
    const std::size_t need = name.size();
    if (chunks_.empty() || used_ + need > chunks_.back()->size()) {
      chunks_.push_back(std::make_unique<std::vector<char>>(
          need > kChunkBytes ? need : kChunkBytes));
      used_ = 0;
    }
    char* dst = chunks_.back()->data() + used_;
    std::memcpy(dst, name.data(), need);
    used_ += need;
    names_.emplace_back(dst, need);
    return names_.back();
  }

  std::size_t size() const { return names_.size(); }

 private:
  static constexpr std::size_t kChunkBytes = 4096;
  std::vector<std::unique_ptr<std::vector<char>>> chunks_;
  std::size_t used_ = 0;
  std::vector<std::string_view> names_;
};

// Open-addressed (file, offset) -> value map with last-write-wins upserts.
// Begin() readies it for a batch of `expected` inserts; slots from earlier
// batches are invalidated by the epoch bump, not by clearing memory. The
// keyed string_views must stay alive until the next Begin().
class CoalesceTable {
 public:
  void Begin(std::size_t expected) {
    std::size_t want = 16;
    while (want < expected * 2) want <<= 1;
    if (want > slots_.size()) {
      slots_.assign(want, Slot{});
      epoch_ = 0;
    }
    ++epoch_;
    used_.clear();
  }

  void Upsert(std::string_view file, std::uint64_t offset,
              std::uint32_t value) {
    if ((used_.size() + 1) * 2 > slots_.size()) Grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = Hash(file, offset) & mask;
    for (;;) {
      Slot& s = slots_[i];
      if (s.epoch != epoch_) {
        s.file = file;
        s.offset = offset;
        s.value = value;
        s.epoch = epoch_;
        used_.push_back(static_cast<std::uint32_t>(i));
        return;
      }
      if (s.offset == offset && s.file == file) {
        s.value = value;  // last write wins
        return;
      }
      i = (i + 1) & mask;
    }
  }

  // Visits survivors in first-insertion order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const std::uint32_t i : used_) {
      const Slot& s = slots_[i];
      fn(s.file, s.offset, s.value);
    }
  }

  std::size_t Size() const { return used_.size(); }

 private:
  struct Slot {
    std::string_view file;
    std::uint64_t offset = 0;
    std::uint32_t value = 0;
    std::uint64_t epoch = 0;
  };

  static std::size_t Hash(std::string_view file, std::uint64_t offset) {
    std::size_t h = std::hash<std::string_view>{}(file);
    h ^= (offset + 0x9E3779B97F4A7C15ull) + (h << 6) + (h >> 2);
    return h;
  }

  void Grow() {
    std::vector<Slot> old;
    old.swap(slots_);
    std::vector<std::uint32_t> live;
    live.swap(used_);
    slots_.assign(old.empty() ? 16 : old.size() * 2, Slot{});
    const std::uint64_t src_epoch = epoch_;
    ++epoch_;
    for (const std::uint32_t i : live) {
      Slot& s = old[i];
      if (s.epoch == src_epoch) Upsert(s.file, s.offset, s.value);
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> used_;
  std::uint64_t epoch_ = 0;
};

}  // namespace ginja
