// StandbyReplica — a warm replica that tails the bucket continuously so
// failover costs milliseconds instead of a full re-download.
//
// Ginja's cold path (Ginja::Recover) rebuilds the database from scratch at
// disaster time: RTO grows with database size. The warm path keeps a live
// materialized image on a standby machine by *tailing* the same objects
// recovery would read, as they appear:
//
//   * bootstrap: one full LIST → BuildTailPlan → ApplyTailPlan, exactly a
//     recovery into an empty image;
//   * steady state: a poll loop LISTs `WAL/` with a start-after cursor (an
//     S3 ListObjectsV2 `start-after`), so each pass costs O(new objects),
//     applies the new consecutive-ts run, and — when the primary streams
//     with early acks — applies the acked `WALTAIL/` segment prefix of the
//     in-progress object too, keeping lag below one batch;
//   * promotion: fence the old primary (epoch bump via ginja::Promote +
//     an optional local FenceToken mirroring S3 conditional writes), drain
//     the residual tail, serve. RTO is O(lag), independent of DB size.
//
// Cursor caveat: WAL timestamps are encoded unpadded, so lexicographic
// order diverges from numeric order across digit-length changes
// ("WAL/10..." < "WAL/9..."). The cursor is therefore derived from the
// *next expected* ts — "WAL/<next_ts>" — never from the last key seen;
// names with ts >= next_ts and the same digit count sort after it, and the
// one unreachable case (a digit rollover whose boundary object was GC'd)
// is caught by the periodic full-prefix scan + resync fallback.
//
// Consistency: the standby applies only what recovery would apply —
// complete part-sets, consecutive-ts WAL runs, dense acked tail prefixes —
// so its image is at every moment *some* correct recovery point. A torn
// checkpoint upload or a GC racing the tail can only delay it (triggering
// a full resync into a fresh image), never corrupt it.
//
// Time travel: `open_at_ts` caps tailing at an arbitrary frontier, which
// turns the standby into an incrementally-maintained point-in-time
// restore — PITR is just a tail opened somewhere other than "now".
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cloud/fenced_store.h"
#include "cloud/object_store.h"
#include "cloud/transfer.h"
#include "common/clock.h"
#include "common/codec/envelope.h"
#include "common/stats.h"
#include "fs/mem_fs.h"
#include "ginja/config.h"
#include "ginja/tail_apply.h"

namespace ginja {

struct StandbyOptions {
  // Tail poll cadence (model time).
  std::uint64_t poll_interval_us = 10'000;
  // Every Nth empty poll re-LISTs the whole WAL/ prefix instead of the
  // cursor view — the safety net for the unpadded-ts digit rollover and
  // for GC racing far ahead of the cursor.
  int full_list_every_polls = 16;
  // A cursor gap (objects visible past the frontier, frontier object
  // missing) tolerated for this many consecutive polls before a full
  // resync. Gaps are usually transient — parallel uploaders land ts N+1
  // before ts N — so this must comfortably exceed one upload round-trip's
  // worth of polls; a *permanent* gap means GC collected the frontier.
  int resync_after_gap_polls = 8;
  // Cap tailing at this WAL ts (inclusive): the time-travel knob.
  std::optional<std::uint64_t> open_at_ts;
  // Raised to the new epoch during Promote(); share it with a FencedStore
  // wrapped around the old primary's stack to reject its in-flight
  // mutations the instant promotion happens (S3 conditional writes).
  FenceTokenPtr fence;
  // Component label for the owned TransferManager's metrics.
  std::string component = "standby";
};

struct PromotionReport {
  std::uint64_t epoch = 0;          // the fencing epoch now owned
  std::uint64_t rto_micros = 0;     // Promote() entry → image serveable
  // Objects the residual drain applied after fencing (the actual lag paid
  // at promotion time).
  std::uint64_t residual_wal_objects = 0;
  std::uint64_t residual_tail_segments = 0;
  bool resynced = false;            // the drain fell back to a full re-list
  std::uint64_t recovered_to_ts = 0;
  bool gap_detected = false;        // tail truncated: bounded S-write loss
};

class StandbyReplica {
 public:
  // `store` is the bucket the primary replicates into (a fleet tenant
  // passes its namespaced stack). The config supplies envelope keys, codec
  // threads, prefetch window, retry policy, obs bundle, and fleet routing —
  // the same knobs Recover reads.
  StandbyReplica(ObjectStorePtr store, GinjaConfig config,
                 std::shared_ptr<Clock> clock, StandbyOptions options = {});
  ~StandbyReplica();

  StandbyReplica(const StandbyReplica&) = delete;
  StandbyReplica& operator=(const StandbyReplica&) = delete;

  // Bootstraps the image (one full recovery pass) and starts the tail
  // thread. Returns only after the bootstrap applied.
  Status Start();

  // Stops tailing (idempotent). The image stays readable.
  void Stop();

  // Takeover: stops the tail, bumps `meta/epoch` (fencing any primary of
  // an older epoch at its next heartbeat), raises the local fence token
  // (rejecting the old primary's in-flight mutations immediately), drains
  // the residual tail, and returns. After this the image is the recovered
  // database — hand it to a DBMS and serve. O(lag), not O(DB size).
  Result<PromotionReport> Promote();

  // The live materialized image. Swapped atomically on resync; callers
  // hold their own shared_ptr. After Promote() it is the authoritative
  // recovered state.
  std::shared_ptr<MemFs> image() const;

  // Cumulative apply counters across bootstrap, tailing, and resyncs.
  RecoveryReport report() const;

  // Objects visible in the bucket but not yet applied (0 = caught up),
  // and how long the standby has continuously been behind.
  std::uint64_t lag_objects() const;
  std::uint64_t lag_micros() const;
  std::uint64_t peak_lag_objects() const {
    return peak_lag_objects_.load(std::memory_order_relaxed);
  }

  std::uint64_t resyncs() const { return resyncs_.Get(); }
  std::uint64_t objects_applied() const { return objects_applied_.Get(); }
  // Next WAL ts the tail expects (the applied frontier + 1).
  std::uint64_t next_ts() const {
    return next_ts_.load(std::memory_order_acquire);
  }
  bool promoted() const { return promoted_.load(std::memory_order_acquire); }

  ObservabilityPtr observability() const { return obs_; }

 private:
  void TailLoop();
  // One poll: cursor-list new WAL objects, apply the consecutive run, then
  // (early-ack) the acked tail-segment prefix of the frontier ts.
  // `progressed` counts plan items applied this pass.
  Status PollOnce(std::size_t* progressed);
  // Fetch+apply `items` into the current image, advancing the frontier
  // over the applied prefix; flags resync_needed_ on a GC'd frontier.
  Status ApplyItems(const std::vector<TailPlanItem>& items,
                    std::size_t* progressed);
  // Full re-list into a FRESH image, swapped in only once complete — a
  // reader never sees a half-rebuilt image. `bootstrap` skips the resync
  // counter (Start's first build is not a resync).
  Status Rebuild(bool bootstrap);
  // True when a *complete* DB object set in the bucket folded WAL
  // timestamps at or past our frontier: the primary checkpointed writes we
  // never applied and GC may already have deleted their WAL objects — the
  // one way the bucket gets ahead of the image without any visible WAL
  // (lag reads 0). Answers false on listing errors (the caller retries).
  bool CheckpointAheadOfFrontier();
  TailApplyContext MakeContext(const std::shared_ptr<MemFs>& target,
                               std::size_t items);
  void UpdateLag();

  ObjectStorePtr store_;
  GinjaConfig config_;
  std::shared_ptr<Clock> clock_;
  StandbyOptions options_;
  ObservabilityPtr obs_;

  Envelope envelope_;
  std::shared_ptr<CodecPool> codec_pool_;
  std::shared_ptr<TransferManager> owned_transfers_;
  TransferManager* transfers_ = nullptr;  // owned, or the fleet's shared one
  TransferRoute route_;

  mutable std::mutex mu_;  // guards image_ swap + report_
  std::shared_ptr<MemFs> image_;
  RecoveryReport report_;

  // Tail-thread state (read by accessors/gauges, written by the tail
  // thread — and by Promote()'s drain after the thread has joined).
  std::atomic<std::uint64_t> next_ts_{0};  // WAL ts are assigned from 0
  std::uint32_t tail_seg_cursor_ = 0;  // next unapplied WALTAIL seg of next_ts_
  // Newest WAL ts seen in any listing, stored as ts+1 (0 = none seen yet —
  // ts 0 itself is a valid timestamp).
  std::atomic<std::uint64_t> newest_seen_{0};
  std::atomic<std::uint64_t> behind_since_us_{0};
  std::atomic<std::uint64_t> peak_lag_objects_{0};
  bool resync_needed_ = false;
  int gap_polls_ = 0;
  std::uint64_t polls_ = 0;
  std::uint64_t trace_seq_ = 0;  // span-id base for tail_fetch/tail_apply

  Counter objects_applied_;
  Counter resyncs_;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> promoted_{false};
};

}  // namespace ginja
