// Payload format shared by WAL and DB objects: a list of file-write
// entries (path, offset, content). A WAL object holds the aggregated
// segment writes of one batch; a DB object holds the file writes of one
// checkpoint, or entire files for a dump. Recovery applies entries in
// order with plain positional writes.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace ginja {

struct FileEntry {
  std::string path;
  std::uint64_t offset = 0;
  Bytes data;
};

// Borrowed form of FileEntry used on the encode hot path: the referenced
// path/data storage must outlive the ref (and any PayloadView built on it).
struct FileEntryRef {
  std::string_view path;
  std::uint64_t offset = 0;
  ByteView data;
};

std::vector<FileEntryRef> MakeEntryRefs(const std::vector<FileEntry>& entries);

Bytes EncodeEntries(const std::vector<FileEntry>& entries);

// Zero-copy form of EncodeEntries: writes only the per-entry framing
// (varints + paths) into `framing` and returns a scatter-gather view that
// interleaves framing slices with the entries' own data buffers — byte
// identical to EncodeEntries without copying entry data. `framing` is
// cleared and must outlive the returned view.
PayloadView EncodeEntriesView(const std::vector<FileEntryRef>& entries,
                              Bytes& framing);

// Accepts one count-prefixed entry list, or several back to back: a
// streamed (GNJ3) WAL object decodes to its segments' payloads
// concatenated, each a self-contained list. Entries are returned in
// byte order, so later segments' rewrites stay last-write-wins.
Result<std::vector<FileEntry>> DecodeEntries(ByteView payload);

}  // namespace ginja
