// Payload format shared by WAL and DB objects: a list of file-write
// entries (path, offset, content). A WAL object holds the aggregated
// segment writes of one batch; a DB object holds the file writes of one
// checkpoint, or entire files for a dump. Recovery applies entries in
// order with plain positional writes.
#pragma once

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace ginja {

struct FileEntry {
  std::string path;
  std::uint64_t offset = 0;
  Bytes data;
};

Bytes EncodeEntries(const std::vector<FileEntry>& entries);
Result<std::vector<FileEntry>> DecodeEntries(ByteView payload);

}  // namespace ginja
