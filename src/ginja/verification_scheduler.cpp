#include "ginja/verification_scheduler.h"

namespace ginja {

VerificationScheduler::VerificationScheduler(
    ObjectStorePtr store, GinjaConfig config, DbLayout layout,
    std::shared_ptr<Clock> clock, std::uint64_t interval_us,
    std::function<bool(Database&)> service_checks,
    std::function<void(const VerificationOutcome&)> on_result)
    : store_(std::move(store)),
      config_(std::move(config)),
      layout_(layout),
      clock_(std::move(clock)),
      interval_us_(interval_us),
      service_checks_(std::move(service_checks)),
      on_result_(std::move(on_result)) {}

VerificationScheduler::~VerificationScheduler() { Stop(); }

void VerificationScheduler::Start() {
  if (!stop_.exchange(false)) return;  // already running
  thread_ = std::thread([this] { Loop(); });
}

void VerificationScheduler::Stop() {
  if (stop_.exchange(true)) return;
  if (thread_.joinable()) thread_.join();
}

VerificationOutcome VerificationScheduler::RunOnce() {
  const VerificationReport report =
      VerifyBackup(store_, config_, layout_, service_checks_);
  VerificationOutcome outcome;
  outcome.at_micros = clock_->NowMicros();
  outcome.ok = report.Ok();
  outcome.detail = report.detail;
  {
    std::lock_guard<std::mutex> lock(mu_);
    history_.push_back(outcome);
  }
  runs_.Add();
  if (!outcome.ok) failures_.Add();
  if (on_result_) on_result_(outcome);
  return outcome;
}

void VerificationScheduler::Loop() {
  while (!stop_.load()) {
    (void)RunOnce();
    // Sleep in slices so Stop() stays responsive under any clock scale.
    std::uint64_t remaining = interval_us_;
    while (remaining > 0 && !stop_.load()) {
      const std::uint64_t slice = std::min<std::uint64_t>(remaining, 20'000);
      clock_->SleepMicros(slice);
      remaining -= slice;
    }
  }
}

std::vector<VerificationOutcome> VerificationScheduler::History() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_;
}

}  // namespace ginja
