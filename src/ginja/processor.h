// Database I/O processors — the paper's PG/MySQL "Processor" boxes (Fig. 3).
//
// A processor turns the raw file events delivered by InterceptFs into the
// three semantic events of Table 1 and routes the data:
//
//                     PostgreSQL                 MySQL/InnoDB
//   update commit     write to pg_xlog/*         write to ib_logfile* data
//                     -> CommitPipeline          region -> CommitPipeline
//   checkpoint begin  sync write to pg_clog/*    sync write to a data file
//   checkpoint end    sync write to pg_control   sync write at offset
//                                                512/1536 of ib_logfile0
//
// Both personalities share the mechanics; the DbLayout carries the
// classification rules, so each concrete processor is the thin module the
// paper describes ("around 200 lines of code each", §6).
//
// The processor also annotates each WAL write with the WAL-stream range it
// covers (from the page header), and parses the redo LSN out of the
// control-block write — the two pieces of metadata the LSN-safe garbage
// collector needs (see object_id.h).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>

#include "db/layout.h"
#include "fs/intercept_fs.h"
#include "ginja/checkpoint_pipeline.h"
#include "ginja/commit_pipeline.h"

namespace ginja {

class DbIoProcessor : public FileEventListener {
 public:
  DbIoProcessor(DbLayout layout, CommitPipeline* commits,
                CheckpointPipeline* checkpoints);

  void OnFileEvent(const FileEvent& event) override;

  // Number of events that could not be attributed (unknown paths).
  std::uint64_t unclassified_events() const { return unclassified_.Get(); }

 private:
  void OnWalWrite(const FileEvent& event);
  void OnDataWrite(const FileEvent& event);
  void OnControlWrite(const FileEvent& event);

  // Logical WAL page for a (file, offset) write; tracks wrap epochs for the
  // circular MySQL log.
  std::uint64_t LogicalWalPage(const std::string& path, std::uint64_t offset);

  DbLayout layout_;
  CommitPipeline* commits_;
  CheckpointPipeline* checkpoints_;

  // Only the circular-log wrap-epoch bookkeeping needs a mutex; the
  // Postgres WAL path never takes it, so concurrent client threads reach
  // the commit pipeline's sharded Submit without serializing here.
  std::mutex wrap_mu_;
  std::uint64_t last_slot_ = 0;
  std::uint64_t epoch_ = 0;
  bool any_wal_write_ = false;
  // Highest WAL-stream position seen; checkpoint pages cannot contain
  // newer data, so this gates the DB-object upload (prefix guarantee).
  // CAS-max updated by WAL writers, read by the control-write path.
  std::atomic<Lsn> last_wal_frontier_{0};
  Counter unclassified_;
};

// Factory helpers matching the paper's per-DBMS processors.
std::unique_ptr<DbIoProcessor> MakePostgresProcessor(
    CommitPipeline* commits, CheckpointPipeline* checkpoints);
std::unique_ptr<DbIoProcessor> MakeMySqlProcessor(
    CommitPipeline* commits, CheckpointPipeline* checkpoints);

}  // namespace ginja
