#include "ginja/ginja.h"

#include <algorithm>
#include <deque>
#include <future>
#include <map>

#include "common/codec/codec_pool.h"
#include "ginja/fleet_runtime.h"
#include "ginja/payload.h"
#include "obs/log.h"

namespace ginja {

Ginja::Ginja(VfsPtr local_vfs, ObjectStorePtr store,
             std::shared_ptr<Clock> clock, DbLayout layout, GinjaConfig config)
    : local_vfs_(std::move(local_vfs)),
      store_(std::move(store)),
      clock_(std::move(clock)),
      layout_(layout),
      config_(config),
      view_(std::make_shared<CloudView>()),
      retention_(std::make_shared<RetentionPolicy>()),
      chunk_index_(std::make_shared<ChunkIndex>()),
      envelope_(std::make_shared<Envelope>(config.envelope)) {
  // Every Ginja carries an observability bundle: metrics gauges and stage
  // histograms are always reachable via observability(), with the tracer
  // enabled only when the caller's TraceOptions say so. A fleet member
  // defaults to the runtime's shared bundle (one registry for the fleet,
  // per-tenant series split by the tenant label).
  if (!config_.obs) {
    config_.obs = config_.runtime ? config_.runtime->obs()
                                  : std::make_shared<Observability>(config_.trace);
  }
  if (config_.runtime && config_.runtime->codec_pool()) {
    codec_pool_ = config_.runtime->codec_pool();  // one pool for the fleet
    envelope_->SetCodecPool(codec_pool_);
  } else if (config_.codec_threads > 1) {
    codec_pool_ = std::make_shared<CodecPool>(config_.codec_threads);
    envelope_->SetCodecPool(codec_pool_);
  }
  commits_ = std::make_unique<CommitPipeline>(store_, view_, clock_, config_,
                                              envelope_);
  checkpoints_ = std::make_unique<CheckpointPipeline>(
      store_, view_, clock_, config_, envelope_, local_vfs_, layout_);
  checkpoints_->SetRetentionPolicy(retention_);
  checkpoints_->SetChunkIndex(chunk_index_);
  checkpoints_->SetWalFrontierFn(
      [this] { return commits_->UploadedWalFrontier(); });
  // Frontier advances wake the checkpointer's WAL-coverage wait directly
  // instead of the old 1 ms poll.
  commits_->SetFrontierListener([this] { checkpoints_->NotifyFrontier(); });
  processor_ = std::make_unique<DbIoProcessor>(layout_, commits_.get(),
                                               checkpoints_.get());
  MetricLabels labels;
  if (!config_.tenant_id.empty()) labels = {{"tenant", config_.tenant_id}};
  config_.obs->registry.RegisterGauge(
      this, "ginja_unclassified_events", std::move(labels),
      [this] { return static_cast<double>(processor_->unclassified_events()); });
}

Ginja::~Ginja() {
  config_.obs->registry.Unregister(this);
  if (started_ && !stopped_) Kill();
}

Status Ginja::Boot() {
  // A config whose zero knobs would hang the pipelines is rejected here,
  // before any pipeline thread starts.
  GINJA_RETURN_IF_ERROR(ValidateGinjaConfig(config_));
  // One WAL object per local WAL segment, in segment order (Alg. 1 l. 9–13).
  auto files = local_vfs_->ListFiles("");
  if (!files.ok()) return files.status();

  // Read the control block (if any) for a conservative max-LSN bound on the
  // circular-log segments, whose internal LSN ranges Boot cannot cheaply
  // order. PostgreSQL segments get precise per-segment bounds.
  Lsn wal_end_hint = 0;
  for (int slot = 0; slot < layout_.ControlSlotCount(); ++slot) {
    auto bytes = local_vfs_->Read(layout_.ControlFileName(),
                                  layout_.ControlOffset(slot),
                                  ControlBlock::kEncodedSize);
    if (!bytes.ok()) continue;
    ControlBlock block;
    if (ControlBlock::Decode(bytes->data(), bytes->size(), &block)) {
      wal_end_hint = std::max(wal_end_hint, block.wal_end_hint);
    }
  }

  std::vector<std::string> wal_files;
  for (const auto& path : *files) {
    if (layout_.Classify(path, layout_.wal_header_pages * layout_.wal_page_size) ==
        FileKind::kWalSegment) {
      wal_files.push_back(path);
    }
  }
  std::sort(wal_files.begin(), wal_files.end());

  for (const auto& path : wal_files) {
    auto content = local_vfs_->ReadAll(path);
    if (!content.ok()) return content.status();

    WalObjectId id;
    id.ts = view_->NextWalTs();
    id.filename = path;
    id.offset = 0;
    id.max_lsn = wal_end_hint;
    if (layout_.flavor == DbFlavor::kPostgres) {
      // Precise bound: segment i covers stream bytes < (i+1) pages' worth.
      // Segment order is lexicographic order for our generated names.
      const std::uint64_t seg_index =
          static_cast<std::uint64_t>(&path - wal_files.data());
      id.max_lsn = (seg_index + 1) * layout_.PagesPerSegment() *
                   layout_.WalPayloadSize();
    }

    std::vector<FileEntry> entries;
    entries.push_back({path, 0, std::move(*content)});
    const Bytes payload = EncodeEntries(entries);
    const Bytes enveloped = envelope_->Encode(View(payload), id.ts);
    GINJA_RETURN_IF_ERROR(store_->Put(id.Encode(), View(enveloped)));
    view_->AddWal(id);
  }

  // One dump DB object (Alg. 1 lines 14–18) — split at the size limit.
  checkpoints_->OnCheckpointBegin();
  checkpoints_->OnCheckpointEnd(/*redo_lsn=*/0);
  checkpoints_->Start();
  checkpoints_->Drain();  // the dump is durable before the DBMS may start
  commits_->Start();
  started_ = true;
  return Status::Ok();
}

Status Ginja::Reboot() {
  GINJA_RETURN_IF_ERROR(ValidateGinjaConfig(config_));
  auto objects = store_->List("");
  if (!objects.ok()) return objects.status();
  view_->Clear();
  for (const auto& meta : *objects) view_->AddFromName(meta.name);
  // Delta dumps: the chunk inventory (presence from CHUNK/ names,
  // references from the visible manifests) must be rebuilt before the
  // first dump decides what to skip — otherwise everything re-uploads.
  if (config_.dedup_dumps) {
    GINJA_RETURN_IF_ERROR(
        RebuildChunkIndex(*store_, *envelope_, *objects, chunk_index_.get()));
  }
  checkpoints_->Start();
  commits_->Start();
  started_ = true;
  return Status::Ok();
}

void Ginja::OnFileEvent(const FileEvent& event) {
  if (!started_ || stopped_) return;
  processor_->OnFileEvent(event);
}

void Ginja::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  commits_->Stop();
  checkpoints_->Stop();
}

void Ginja::Kill() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  commits_->Kill();
  checkpoints_->Kill();
}

void Ginja::Drain() {
  commits_->Drain();
  checkpoints_->Drain();
}

std::optional<std::uint64_t> Ginja::ProtectCurrentState() {
  Drain();  // the point must be fully durable in the cloud
  const auto ts = view_->LastAssignedWalTs();
  if (ts) retention_->Protect(*ts);
  return ts;
}

Status Ginja::Recover(ObjectStorePtr store, const GinjaConfig& config,
                      const DbLayout& layout, VfsPtr target,
                      RecoveryReport* report,
                      std::optional<std::uint64_t> up_to_ts,
                      std::shared_ptr<Clock> clock) {
  (void)layout;
  RecoveryReport local_report;
  RecoveryReport& r = report ? *report : local_report;
  const std::uint64_t started_at = clock ? clock->NowMicros() : 0;

  Envelope envelope(config.envelope);
  std::shared_ptr<CodecPool> codec_pool;
  if (config.codec_threads > 1) {
    codec_pool = std::make_shared<CodecPool>(config.codec_threads);
    envelope.SetCodecPool(codec_pool);
  }

  auto objects = store->List("");
  if (!objects.ok()) return objects.status();

  // The whole download schedule is computable before the first GET: DB
  // object names carry their redo LSN and part counts, WAL names their ts
  // and covered range. That is what makes windowed prefetch safe — the
  // plan is exactly the serial loop's visit order, so a K-deep window
  // changes *when* bytes arrive but never *what* is applied. The plan
  // builder and the windowed apply loop live in tail_apply.* and are
  // shared with the warm StandbyReplica (tailing) and the point-in-time
  // path (`up_to_ts` opens the same plan at an arbitrary frontier).
  TailPlan plan = BuildTailPlan(*objects, up_to_ts);
  r.found_dump = plan.found_dump;

  std::shared_ptr<TransferManager> owned_transfers;
  TransferRoute route;
  if (config.runtime) {
    // Fleet recovery reuses the shared worker pool: GETs route to this
    // tenant's (namespaced) store and bill a per-recovery account, so N
    // concurrent recoveries share one global in-flight window.
    route.store = store;
    route.account = std::make_shared<TransferAccount>(
        config.tenant_id.empty() ? "recovery" : config.tenant_id);
  } else {
    owned_transfers = std::make_shared<TransferManager>(
        store, MakeTransferOptions(config, config.recovery_prefetch), clock);
    if (config.obs) {
      owned_transfers->RegisterMetrics(&config.obs->registry, "recovery");
    }
  }
  TailApplyContext ctx;
  ctx.transfers =
      config.runtime ? config.runtime->transfers().get() : owned_transfers.get();
  ctx.route = route;
  ctx.envelope = &envelope;
  ctx.target = target;
  // Fetch/apply spans need timestamps; without a clock recovery runs
  // untraced (the registry gauges above still work).
  ctx.clock = clock;
  ctx.tracer = config.obs ? &config.obs->tracer : nullptr;
  ctx.window = static_cast<std::size_t>(std::max(1, config.recovery_prefetch));
  TailApplyResult applied = ApplyTailPlan(plan.items, ctx, &r);
  if (!applied.db_failure.ok()) return applied.db_failure;
  if (plan.gap_after_plan && !applied.wal_truncated) r.gap_detected = true;

  if (clock) r.duration_micros = clock->NowMicros() - started_at;
  if (r.gap_detected) {
    // Recovery still succeeded, but the tail past the gap is lost — that's
    // the bounded S-write loss made concrete, so it gets a record.
    Log(LogLevel::kWarn, "recovery", "WAL tail truncated at a ts gap",
        {{"recovered_to_ts", r.recovered_to_ts},
         {"wal_objects_applied", r.wal_objects_applied}});
  }
  Log(LogLevel::kInfo, "recovery", "recovery complete",
      {{"objects", r.objects_downloaded},
       {"bytes", r.bytes_downloaded},
       {"wal_applied", r.wal_objects_applied},
       {"db_applied", r.db_objects_applied},
       {"duration_us", r.duration_micros}});
  return Status::Ok();
}

}  // namespace ginja
