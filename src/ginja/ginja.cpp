#include "ginja/ginja.h"

#include <algorithm>
#include <deque>
#include <future>
#include <map>

#include "common/codec/codec_pool.h"
#include "ginja/fleet_runtime.h"
#include "ginja/payload.h"
#include "obs/log.h"

namespace ginja {

Ginja::Ginja(VfsPtr local_vfs, ObjectStorePtr store,
             std::shared_ptr<Clock> clock, DbLayout layout, GinjaConfig config)
    : local_vfs_(std::move(local_vfs)),
      store_(std::move(store)),
      clock_(std::move(clock)),
      layout_(layout),
      config_(config),
      view_(std::make_shared<CloudView>()),
      retention_(std::make_shared<RetentionPolicy>()),
      envelope_(std::make_shared<Envelope>(config.envelope)) {
  // Every Ginja carries an observability bundle: metrics gauges and stage
  // histograms are always reachable via observability(), with the tracer
  // enabled only when the caller's TraceOptions say so. A fleet member
  // defaults to the runtime's shared bundle (one registry for the fleet,
  // per-tenant series split by the tenant label).
  if (!config_.obs) {
    config_.obs = config_.runtime ? config_.runtime->obs()
                                  : std::make_shared<Observability>(config_.trace);
  }
  if (config_.runtime && config_.runtime->codec_pool()) {
    codec_pool_ = config_.runtime->codec_pool();  // one pool for the fleet
    envelope_->SetCodecPool(codec_pool_);
  } else if (config_.codec_threads > 1) {
    codec_pool_ = std::make_shared<CodecPool>(config_.codec_threads);
    envelope_->SetCodecPool(codec_pool_);
  }
  commits_ = std::make_unique<CommitPipeline>(store_, view_, clock_, config_,
                                              envelope_);
  checkpoints_ = std::make_unique<CheckpointPipeline>(
      store_, view_, clock_, config_, envelope_, local_vfs_, layout_);
  checkpoints_->SetRetentionPolicy(retention_);
  checkpoints_->SetWalFrontierFn(
      [this] { return commits_->UploadedWalFrontier(); });
  // Frontier advances wake the checkpointer's WAL-coverage wait directly
  // instead of the old 1 ms poll.
  commits_->SetFrontierListener([this] { checkpoints_->NotifyFrontier(); });
  processor_ = std::make_unique<DbIoProcessor>(layout_, commits_.get(),
                                               checkpoints_.get());
  MetricLabels labels;
  if (!config_.tenant_id.empty()) labels = {{"tenant", config_.tenant_id}};
  config_.obs->registry.RegisterGauge(
      this, "ginja_unclassified_events", std::move(labels),
      [this] { return static_cast<double>(processor_->unclassified_events()); });
}

Ginja::~Ginja() {
  config_.obs->registry.Unregister(this);
  if (started_ && !stopped_) Kill();
}

Status Ginja::Boot() {
  // A config whose zero knobs would hang the pipelines is rejected here,
  // before any pipeline thread starts.
  GINJA_RETURN_IF_ERROR(ValidateGinjaConfig(config_));
  // One WAL object per local WAL segment, in segment order (Alg. 1 l. 9–13).
  auto files = local_vfs_->ListFiles("");
  if (!files.ok()) return files.status();

  // Read the control block (if any) for a conservative max-LSN bound on the
  // circular-log segments, whose internal LSN ranges Boot cannot cheaply
  // order. PostgreSQL segments get precise per-segment bounds.
  Lsn wal_end_hint = 0;
  for (int slot = 0; slot < layout_.ControlSlotCount(); ++slot) {
    auto bytes = local_vfs_->Read(layout_.ControlFileName(),
                                  layout_.ControlOffset(slot),
                                  ControlBlock::kEncodedSize);
    if (!bytes.ok()) continue;
    ControlBlock block;
    if (ControlBlock::Decode(bytes->data(), bytes->size(), &block)) {
      wal_end_hint = std::max(wal_end_hint, block.wal_end_hint);
    }
  }

  std::vector<std::string> wal_files;
  for (const auto& path : *files) {
    if (layout_.Classify(path, layout_.wal_header_pages * layout_.wal_page_size) ==
        FileKind::kWalSegment) {
      wal_files.push_back(path);
    }
  }
  std::sort(wal_files.begin(), wal_files.end());

  for (const auto& path : wal_files) {
    auto content = local_vfs_->ReadAll(path);
    if (!content.ok()) return content.status();

    WalObjectId id;
    id.ts = view_->NextWalTs();
    id.filename = path;
    id.offset = 0;
    id.max_lsn = wal_end_hint;
    if (layout_.flavor == DbFlavor::kPostgres) {
      // Precise bound: segment i covers stream bytes < (i+1) pages' worth.
      // Segment order is lexicographic order for our generated names.
      const std::uint64_t seg_index =
          static_cast<std::uint64_t>(&path - wal_files.data());
      id.max_lsn = (seg_index + 1) * layout_.PagesPerSegment() *
                   layout_.WalPayloadSize();
    }

    std::vector<FileEntry> entries;
    entries.push_back({path, 0, std::move(*content)});
    const Bytes payload = EncodeEntries(entries);
    const Bytes enveloped = envelope_->Encode(View(payload), id.ts);
    GINJA_RETURN_IF_ERROR(store_->Put(id.Encode(), View(enveloped)));
    view_->AddWal(id);
  }

  // One dump DB object (Alg. 1 lines 14–18) — split at the size limit.
  checkpoints_->OnCheckpointBegin();
  checkpoints_->OnCheckpointEnd(/*redo_lsn=*/0);
  checkpoints_->Start();
  checkpoints_->Drain();  // the dump is durable before the DBMS may start
  commits_->Start();
  started_ = true;
  return Status::Ok();
}

Status Ginja::Reboot() {
  GINJA_RETURN_IF_ERROR(ValidateGinjaConfig(config_));
  auto objects = store_->List("");
  if (!objects.ok()) return objects.status();
  view_->Clear();
  for (const auto& meta : *objects) view_->AddFromName(meta.name);
  checkpoints_->Start();
  commits_->Start();
  started_ = true;
  return Status::Ok();
}

void Ginja::OnFileEvent(const FileEvent& event) {
  if (!started_ || stopped_) return;
  processor_->OnFileEvent(event);
}

void Ginja::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  commits_->Stop();
  checkpoints_->Stop();
}

void Ginja::Kill() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  commits_->Kill();
  checkpoints_->Kill();
}

void Ginja::Drain() {
  commits_->Drain();
  checkpoints_->Drain();
}

std::optional<std::uint64_t> Ginja::ProtectCurrentState() {
  Drain();  // the point must be fully durable in the cloud
  const auto ts = view_->LastAssignedWalTs();
  if (ts) retention_->Protect(*ts);
  return ts;
}

Status Ginja::Recover(ObjectStorePtr store, const GinjaConfig& config,
                      const DbLayout& layout, VfsPtr target,
                      RecoveryReport* report,
                      std::optional<std::uint64_t> up_to_ts,
                      std::shared_ptr<Clock> clock) {
  (void)layout;
  RecoveryReport local_report;
  RecoveryReport& r = report ? *report : local_report;
  const std::uint64_t started_at = clock ? clock->NowMicros() : 0;

  Envelope envelope(config.envelope);
  std::shared_ptr<CodecPool> codec_pool;
  if (config.codec_threads > 1) {
    codec_pool = std::make_shared<CodecPool>(config.codec_threads);
    envelope.SetCodecPool(codec_pool);
  }

  auto objects = store->List("");
  if (!objects.ok()) return objects.status();

  std::vector<WalObjectId> wal_objects;
  // ts -> seg -> replicas of that segment's tail object (streaming early
  // acks; see CommitPipeline). Only tails of a ts with *no* full WAL
  // object matter — the finished object supersedes its tails.
  std::map<std::uint64_t, std::map<std::uint32_t, std::vector<TailObjectId>>>
      tails_by_ts;
  std::map<std::uint64_t, std::vector<DbObjectId>> db_by_seq;
  for (const auto& meta : *objects) {
    if (auto wal = WalObjectId::Decode(meta.name)) {
      if (!up_to_ts || wal->ts <= *up_to_ts) wal_objects.push_back(*wal);
      continue;
    }
    if (auto tail = TailObjectId::Decode(meta.name)) {
      if (!up_to_ts || tail->ts <= *up_to_ts) {
        tails_by_ts[tail->ts][tail->seg].push_back(*tail);
      }
      continue;
    }
    if (auto db = DbObjectId::Decode(meta.name)) {
      if (!up_to_ts || db->ts <= *up_to_ts) db_by_seq[db->seq].push_back(*db);
    }
  }
  for (const auto& id : wal_objects) tails_by_ts.erase(id.ts);
  std::sort(wal_objects.begin(), wal_objects.end(),
            [](const WalObjectId& a, const WalObjectId& b) { return a.ts < b.ts; });

  // The whole download schedule is computable before the first GET: DB
  // object names carry their redo LSN and part counts, WAL names their ts
  // and covered range. That is what makes windowed prefetch safe — the
  // plan below is exactly the serial loop's visit order, so a K-deep
  // window changes *when* bytes arrive but never *what* is applied.
  struct FetchPlanItem {
    std::string name;
    bool is_wal = false;
    bool is_tail = false;       // WALTAIL/ segment of an unfinished object
    std::uint64_t wal_ts = 0;
    // Replica tails holding the same segment bytes, tried in order when
    // the primary fails; empty for everything else.
    std::vector<std::string> fallbacks;
  };
  std::vector<FetchPlanItem> plan;

  // 1. Most recent *complete* dump (all parts present) — Alg. 1 lines 27–29.
  Lsn last_redo_lsn = 0;
  std::optional<std::uint64_t> dump_seq;
  for (const auto& [seq, parts] : db_by_seq) {
    if (parts.empty() || parts[0].type != DbObjectType::kDump) continue;
    if (parts.size() == parts[0].total_parts) dump_seq = seq;
  }
  auto plan_parts = [&](std::vector<DbObjectId> parts) {
    std::sort(parts.begin(), parts.end(),
              [](const DbObjectId& a, const DbObjectId& b) { return a.part < b.part; });
    for (const auto& id : parts) {
      plan.push_back({id.Encode(), /*is_wal=*/false, 0});
      last_redo_lsn = std::max(last_redo_lsn, id.redo_lsn);
    }
  };
  if (dump_seq) {
    r.found_dump = true;
    plan_parts(db_by_seq[*dump_seq]);
  }

  // 2. Incremental checkpoints newer than the dump, ascending — lines 30–36.
  for (const auto& [seq, parts] : db_by_seq) {
    if (dump_seq && seq <= *dump_seq) continue;
    if (parts.empty() || parts[0].type != DbObjectType::kCheckpoint) continue;
    if (parts.size() != parts[0].total_parts) continue;  // incomplete upload
    plan_parts(parts);
  }

  // 3. WAL objects the redo still needs (covered range past the planned
  // checkpoints' redo LSN — the LSN-safe form of the paper's
  // newerThan(maxCkptTs)), in ts order, truncated at the first gap: the
  // consecutive-timestamp rule that bounds loss to S (lines 37–40). The
  // gap position depends only on the name-derived ts sequence, so the
  // prefetcher never fetches past it.
  bool gap_after_plan = false;
  {
    std::optional<std::uint64_t> previous_ts;
    for (const auto& id : wal_objects) {
      if (id.max_lsn <= last_redo_lsn) continue;  // already in the pages
      if (previous_ts && id.ts != *previous_ts + 1) {
        gap_after_plan = true;
        break;
      }
      plan.push_back({id.Encode(), /*is_wal=*/true, /*is_tail=*/false, id.ts,
                      {}});
      previous_ts = id.ts;
    }

    // 3b. Tail objects of the next unfinished streamed WAL object (early
    // acks): its acked segment prefix is recoverable even though the
    // object itself never finished. The candidate ts must keep timestamps
    // consecutive — previous_ts + 1, or the earliest un-covered tail ts
    // when no full WAL object was planned. Within the ts, GC only ever
    // deletes a seg-*prefix* of tails (the cumulative max_lsn is monotone
    // in seg), so the dense run starting at the lowest surviving segment
    // is applied, in order, and the plan always ends there: what followed
    // the run was never acknowledged, losing it is within the S bound.
    std::optional<std::uint64_t> tail_ts;
    for (const auto& [ts, segs] : tails_by_ts) {
      Lsn ts_max = 0;
      for (const auto& [seg, replicas] : segs) {
        for (const auto& t : replicas) ts_max = std::max(ts_max, t.max_lsn);
      }
      if (ts_max <= last_redo_lsn) continue;  // fully covered by the pages
      if (previous_ts && ts != *previous_ts + 1) continue;
      if (!previous_ts && gap_after_plan) continue;
      tail_ts = ts;
      break;
    }
    if (tail_ts) {
      const auto& segs = tails_by_ts[*tail_ts];
      std::uint32_t expected = segs.begin()->first;
      for (const auto& [seg, replicas] : segs) {
        if (seg != expected) break;  // a hole ends the acked prefix
        ++expected;
        std::vector<TailObjectId> sorted = replicas;
        std::sort(sorted.begin(), sorted.end(),
                  [](const TailObjectId& a, const TailObjectId& b) {
                    return a.replica < b.replica;
                  });
        FetchPlanItem item;
        item.name = sorted.front().Encode();
        item.is_wal = true;
        item.is_tail = true;
        item.wal_ts = *tail_ts;
        for (std::size_t k = 1; k < sorted.size(); ++k) {
          item.fallbacks.push_back(sorted[k].Encode());
        }
        plan.push_back(std::move(item));
      }
      // A tails-only ts is by construction an incomplete object: the plan
      // stops here and the truncation is reported.
      gap_after_plan = true;
    }
  }

  // Windowed fetch/apply: a TransferManager keeps up to K GETs in flight;
  // decode/decompress runs on this thread (fanning chunks across the codec
  // pool) overlapped with the in-flight downloads; applies stay strictly
  // in plan order. Counters advance only as objects are *consumed*, so the
  // report is identical for every K — prefetched-but-unapplied blobs past
  // a corrupt object are discarded uncounted, exactly as if never fetched.
  std::shared_ptr<TransferManager> owned_transfers;
  TransferRoute route;
  if (config.runtime) {
    // Fleet recovery reuses the shared worker pool: GETs route to this
    // tenant's (namespaced) store and bill a per-recovery account, so N
    // concurrent recoveries share one global in-flight window.
    route.store = store;
    route.account = std::make_shared<TransferAccount>(
        config.tenant_id.empty() ? "recovery" : config.tenant_id);
  } else {
    owned_transfers = std::make_shared<TransferManager>(
        store, MakeTransferOptions(config, config.recovery_prefetch), clock);
    if (config.obs) {
      owned_transfers->RegisterMetrics(&config.obs->registry, "recovery");
    }
  }
  TransferManager& transfers =
      config.runtime ? *config.runtime->transfers() : *owned_transfers;
  // Fetch/apply spans need timestamps; without a clock recovery runs
  // untraced (the registry gauges above still work).
  WriteTracer* tracer = config.obs ? &config.obs->tracer : nullptr;
  const bool tracing = tracer != nullptr && tracer->enabled() && clock != nullptr;
  const std::size_t window =
      static_cast<std::size_t>(std::max(1, config.recovery_prefetch));
  std::deque<std::future<Result<Bytes>>> inflight;
  std::deque<std::uint64_t> issue_times;  // parallel to inflight, tracing only
  std::size_t next_issue = 0;

  auto apply_blob = [&](Result<Bytes> blob) -> Status {
    if (!blob.ok()) return blob.status();
    ++r.objects_downloaded;
    r.bytes_downloaded += blob->size();
    auto payload = envelope.Decode(View(*blob));
    if (!payload.ok()) return payload.status();
    auto entries = DecodeEntries(View(*payload));
    if (!entries.ok()) return entries.status();
    for (const auto& e : *entries) {
      GINJA_RETURN_IF_ERROR(target->Write(e.path, e.offset, View(e.data),
                                          /*sync=*/false));
      ++r.files_written;
    }
    return Status::Ok();
  };

  bool wal_tail_truncated = false;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    while (next_issue < plan.size() && inflight.size() < window) {
      if (tracing) issue_times.push_back(clock->NowMicros());
      inflight.push_back(transfers.GetAsync(route, plan[next_issue++].name));
    }
    auto blob = std::move(inflight.front());
    inflight.pop_front();
    Result<Bytes> fetched = blob.get();
    std::uint64_t t_fetched = 0;
    if (tracing) {
      const std::uint64_t issued = issue_times.front();
      issue_times.pop_front();
      t_fetched = clock->NowMicros();
      // GET issued → blob in hand; overlap with other in-flight GETs means
      // the sum across objects can exceed the recovery wall time.
      tracer->Record(TraceStage::kRecoveryFetch, i, issued,
                     t_fetched >= issued ? t_fetched - issued : 0);
    }
    Status st = apply_blob(std::move(fetched));
    if (!st.ok() && !plan[i].fallbacks.empty()) {
      // Replica tails hold byte-identical segments; any one of them will do.
      for (const auto& alt : plan[i].fallbacks) {
        st = apply_blob(transfers.GetAsync(route, alt).get());
        if (st.ok()) break;
      }
    }
    if (tracing) {
      const std::uint64_t t_applied = clock->NowMicros();
      tracer->Record(TraceStage::kRecoveryApply, i, t_fetched,
                     t_applied - t_fetched);
    }
    if (!plan[i].is_wal) {
      // A failed dump/checkpoint part fails the whole recovery (the DB
      // page state would be incomplete) — as in the serial path.
      GINJA_RETURN_IF_ERROR(st);
      ++r.db_objects_applied;
    } else if (!st.ok()) {
      // A corrupt/missing WAL object truncates the recoverable tail, the
      // same as a gap; everything before it is still consistent.
      r.gap_detected = true;
      wal_tail_truncated = true;
      break;
    } else {
      if (plan[i].is_tail) {
        ++r.tail_segments_applied;
      } else {
        ++r.wal_objects_applied;
      }
      r.recovered_to_ts = plan[i].wal_ts;
    }
  }
  if (gap_after_plan && !wal_tail_truncated) r.gap_detected = true;

  if (clock) r.duration_micros = clock->NowMicros() - started_at;
  if (r.gap_detected) {
    // Recovery still succeeded, but the tail past the gap is lost — that's
    // the bounded S-write loss made concrete, so it gets a record.
    Log(LogLevel::kWarn, "recovery", "WAL tail truncated at a ts gap",
        {{"recovered_to_ts", r.recovered_to_ts},
         {"wal_objects_applied", r.wal_objects_applied}});
  }
  Log(LogLevel::kInfo, "recovery", "recovery complete",
      {{"objects", r.objects_downloaded},
       {"bytes", r.bytes_downloaded},
       {"wal_applied", r.wal_objects_applied},
       {"db_applied", r.db_objects_applied},
       {"duration_us", r.duration_micros}});
  return Status::Ok();
}

}  // namespace ginja
