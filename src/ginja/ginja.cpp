#include "ginja/ginja.h"

#include <algorithm>
#include <map>

#include "common/codec/codec_pool.h"
#include "ginja/payload.h"

namespace ginja {

Ginja::Ginja(VfsPtr local_vfs, ObjectStorePtr store,
             std::shared_ptr<Clock> clock, DbLayout layout, GinjaConfig config)
    : local_vfs_(std::move(local_vfs)),
      store_(std::move(store)),
      clock_(std::move(clock)),
      layout_(layout),
      config_(config),
      view_(std::make_shared<CloudView>()),
      retention_(std::make_shared<RetentionPolicy>()),
      envelope_(std::make_shared<Envelope>(config.envelope)) {
  if (config_.codec_threads > 1) {
    codec_pool_ = std::make_shared<CodecPool>(config_.codec_threads);
    envelope_->SetCodecPool(codec_pool_);
  }
  commits_ = std::make_unique<CommitPipeline>(store_, view_, clock_, config_,
                                              envelope_);
  checkpoints_ = std::make_unique<CheckpointPipeline>(
      store_, view_, clock_, config_, envelope_, local_vfs_, layout_);
  checkpoints_->SetRetentionPolicy(retention_);
  checkpoints_->SetWalFrontierFn(
      [this] { return commits_->UploadedWalFrontier(); });
  // Frontier advances wake the checkpointer's WAL-coverage wait directly
  // instead of the old 1 ms poll.
  commits_->SetFrontierListener([this] { checkpoints_->NotifyFrontier(); });
  processor_ = std::make_unique<DbIoProcessor>(layout_, commits_.get(),
                                               checkpoints_.get());
}

Ginja::~Ginja() {
  if (started_ && !stopped_) Kill();
}

Status Ginja::Boot() {
  // One WAL object per local WAL segment, in segment order (Alg. 1 l. 9–13).
  auto files = local_vfs_->ListFiles("");
  if (!files.ok()) return files.status();

  // Read the control block (if any) for a conservative max-LSN bound on the
  // circular-log segments, whose internal LSN ranges Boot cannot cheaply
  // order. PostgreSQL segments get precise per-segment bounds.
  Lsn wal_end_hint = 0;
  for (int slot = 0; slot < layout_.ControlSlotCount(); ++slot) {
    auto bytes = local_vfs_->Read(layout_.ControlFileName(),
                                  layout_.ControlOffset(slot),
                                  ControlBlock::kEncodedSize);
    if (!bytes.ok()) continue;
    ControlBlock block;
    if (ControlBlock::Decode(bytes->data(), bytes->size(), &block)) {
      wal_end_hint = std::max(wal_end_hint, block.wal_end_hint);
    }
  }

  std::vector<std::string> wal_files;
  for (const auto& path : *files) {
    if (layout_.Classify(path, layout_.wal_header_pages * layout_.wal_page_size) ==
        FileKind::kWalSegment) {
      wal_files.push_back(path);
    }
  }
  std::sort(wal_files.begin(), wal_files.end());

  for (const auto& path : wal_files) {
    auto content = local_vfs_->ReadAll(path);
    if (!content.ok()) return content.status();

    WalObjectId id;
    id.ts = view_->NextWalTs();
    id.filename = path;
    id.offset = 0;
    id.max_lsn = wal_end_hint;
    if (layout_.flavor == DbFlavor::kPostgres) {
      // Precise bound: segment i covers stream bytes < (i+1) pages' worth.
      // Segment order is lexicographic order for our generated names.
      const std::uint64_t seg_index =
          static_cast<std::uint64_t>(&path - wal_files.data());
      id.max_lsn = (seg_index + 1) * layout_.PagesPerSegment() *
                   layout_.WalPayloadSize();
    }

    std::vector<FileEntry> entries;
    entries.push_back({path, 0, std::move(*content)});
    const Bytes payload = EncodeEntries(entries);
    const Bytes enveloped = envelope_->Encode(View(payload), id.ts);
    GINJA_RETURN_IF_ERROR(store_->Put(id.Encode(), View(enveloped)));
    view_->AddWal(id);
  }

  // One dump DB object (Alg. 1 lines 14–18) — split at the size limit.
  checkpoints_->OnCheckpointBegin();
  checkpoints_->OnCheckpointEnd(/*redo_lsn=*/0);
  checkpoints_->Start();
  checkpoints_->Drain();  // the dump is durable before the DBMS may start
  commits_->Start();
  started_ = true;
  return Status::Ok();
}

Status Ginja::Reboot() {
  auto objects = store_->List("");
  if (!objects.ok()) return objects.status();
  view_->Clear();
  for (const auto& meta : *objects) view_->AddFromName(meta.name);
  checkpoints_->Start();
  commits_->Start();
  started_ = true;
  return Status::Ok();
}

void Ginja::OnFileEvent(const FileEvent& event) {
  if (!started_ || stopped_) return;
  processor_->OnFileEvent(event);
}

void Ginja::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  commits_->Stop();
  checkpoints_->Stop();
}

void Ginja::Kill() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  commits_->Kill();
  checkpoints_->Kill();
}

void Ginja::Drain() {
  commits_->Drain();
  checkpoints_->Drain();
}

std::optional<std::uint64_t> Ginja::ProtectCurrentState() {
  Drain();  // the point must be fully durable in the cloud
  const auto ts = view_->LastAssignedWalTs();
  if (ts) retention_->Protect(*ts);
  return ts;
}

Status Ginja::Recover(ObjectStorePtr store, const GinjaConfig& config,
                      const DbLayout& layout, VfsPtr target,
                      RecoveryReport* report,
                      std::optional<std::uint64_t> up_to_ts,
                      std::shared_ptr<Clock> clock) {
  (void)layout;
  RecoveryReport local_report;
  RecoveryReport& r = report ? *report : local_report;
  const std::uint64_t started_at = clock ? clock->NowMicros() : 0;

  Envelope envelope(config.envelope);

  auto objects = store->List("");
  if (!objects.ok()) return objects.status();

  std::vector<WalObjectId> wal_objects;
  std::map<std::uint64_t, std::vector<DbObjectId>> db_by_seq;
  for (const auto& meta : *objects) {
    if (auto wal = WalObjectId::Decode(meta.name)) {
      if (!up_to_ts || wal->ts <= *up_to_ts) wal_objects.push_back(*wal);
      continue;
    }
    if (auto db = DbObjectId::Decode(meta.name)) {
      if (!up_to_ts || db->ts <= *up_to_ts) db_by_seq[db->seq].push_back(*db);
    }
  }
  std::sort(wal_objects.begin(), wal_objects.end(),
            [](const WalObjectId& a, const WalObjectId& b) { return a.ts < b.ts; });

  auto fetch_and_apply = [&](const std::string& name,
                             std::uint64_t nonce_hint) -> Status {
    (void)nonce_hint;
    auto blob = store->Get(name);
    if (!blob.ok()) return blob.status();
    ++r.objects_downloaded;
    r.bytes_downloaded += blob->size();
    auto payload = envelope.Decode(View(*blob));
    if (!payload.ok()) return payload.status();
    auto entries = DecodeEntries(View(*payload));
    if (!entries.ok()) return entries.status();
    for (const auto& e : *entries) {
      GINJA_RETURN_IF_ERROR(target->Write(e.path, e.offset, View(e.data),
                                          /*sync=*/false));
      ++r.files_written;
    }
    return Status::Ok();
  };

  // 1. Most recent *complete* dump (all parts present) — Alg. 1 lines 27–29.
  Lsn last_redo_lsn = 0;
  std::optional<std::uint64_t> dump_seq;
  for (const auto& [seq, parts] : db_by_seq) {
    if (parts.empty() || parts[0].type != DbObjectType::kDump) continue;
    if (parts.size() == parts[0].total_parts) dump_seq = seq;
  }
  if (dump_seq) {
    r.found_dump = true;
    auto parts = db_by_seq[*dump_seq];
    std::sort(parts.begin(), parts.end(),
              [](const DbObjectId& a, const DbObjectId& b) { return a.part < b.part; });
    for (const auto& id : parts) {
      GINJA_RETURN_IF_ERROR(fetch_and_apply(id.Encode(), id.seq));
      ++r.db_objects_applied;
      last_redo_lsn = std::max(last_redo_lsn, id.redo_lsn);
    }
  }

  // 2. Incremental checkpoints newer than the dump, ascending — lines 30–36.
  for (const auto& [seq, parts_const] : db_by_seq) {
    if (dump_seq && seq <= *dump_seq) continue;
    auto parts = parts_const;
    if (parts.empty() || parts[0].type != DbObjectType::kCheckpoint) continue;
    if (parts.size() != parts[0].total_parts) continue;  // incomplete upload
    std::sort(parts.begin(), parts.end(),
              [](const DbObjectId& a, const DbObjectId& b) { return a.part < b.part; });
    for (const auto& id : parts) {
      GINJA_RETURN_IF_ERROR(fetch_and_apply(id.Encode(), id.seq));
      ++r.db_objects_applied;
      last_redo_lsn = std::max(last_redo_lsn, id.redo_lsn);
    }
  }

  // 3. WAL objects the redo still needs (covered range past the applied
  // checkpoints' redo LSN — the LSN-safe form of the paper's
  // newerThan(maxCkptTs)), in ts order, stopping at the first gap: the
  // consecutive-timestamp rule that bounds loss to S (lines 37–40).
  std::optional<std::uint64_t> previous_ts;
  for (const auto& id : wal_objects) {
    if (id.max_lsn <= last_redo_lsn) continue;  // already in the pages
    if (previous_ts && id.ts != *previous_ts + 1) {
      r.gap_detected = true;
      break;
    }
    Status st = fetch_and_apply(id.Encode(), id.ts);
    if (!st.ok()) {
      // A corrupt/missing WAL object truncates the recoverable tail, the
      // same as a gap; everything before it is still consistent.
      r.gap_detected = true;
      break;
    }
    ++r.wal_objects_applied;
    r.recovered_to_ts = id.ts;
    previous_ts = id.ts;
  }

  if (clock) r.duration_micros = clock->NowMicros() - started_at;
  return Status::Ok();
}

}  // namespace ginja
