#include "ginja/dedup.h"

#include <algorithm>
#include <limits>

#include "common/codec/codec_pool.h"
#include "ginja/object_id.h"
#include "obs/log.h"

namespace ginja {

namespace {

constexpr std::uint32_t kManifestMagic = 0x31464D47;  // "GMF1" little-endian
constexpr std::size_t kHexDigestLen = Sha1::kDigestSize * 2;
// Sanity bound on a manifest ref's path: generous for any real database
// file name, small enough that a corrupt length can't drive a huge
// allocation before the trailing-bytes check would catch it.
constexpr std::uint64_t kMaxManifestPathLen = 4096;

}  // namespace

std::string ChunkObjectId::Encode() const {
  return "CHUNK/" + ToHex(ByteView(digest.data(), digest.size())) + "_" +
         std::to_string(size);
}

std::optional<ChunkObjectId> ChunkObjectId::Decode(std::string_view name) {
  if (!name.starts_with("CHUNK/")) return std::nullopt;
  name.remove_prefix(6);
  if (name.size() < kHexDigestLen + 2 || name[kHexDigestLen] != '_') {
    return std::nullopt;
  }
  const auto raw = FromHex(name.substr(0, kHexDigestLen));
  if (!raw) return std::nullopt;
  std::uint64_t size = 0;
  std::string_view size_field = name.substr(kHexDigestLen + 1);
  for (char c : size_field) {
    if (c < '0' || c > '9') return std::nullopt;
    size = size * 10 + static_cast<std::uint64_t>(c - '0');
  }
  ChunkObjectId out;
  std::copy(raw->begin(), raw->end(), out.digest.begin());
  out.size = size;
  return out;
}

std::uint64_t ChunkNonce(const Sha1::Digest& digest) {
  // Top byte 0x51 tags the chunk subspace; the remaining 56 bits come from
  // the digest prefix, so identical content yields an identical nonce
  // (convergent encryption). Distinct chunks collide on this truncation at
  // the ~2^28 birthday bound, which would be a real two-time pad under a
  // shared key at fleet scale — chunks therefore also encrypt under a
  // per-chunk AES key derived from the *full* digest (the EncodeDerived
  // tweak), so a nonce collision reuses no keystream.
  std::uint64_t v = 0x51ull << 56;
  for (int i = 0; i < 7; ++i) {
    v |= static_cast<std::uint64_t>(digest[i]) << (8 * (6 - i));
  }
  return v;
}

std::vector<ChunkRef> ChunkDumpEntries(const std::vector<FileEntry>& entries,
                                       std::size_t chunk_bytes,
                                       CodecPool* pool) {
  const std::size_t step = std::max<std::size_t>(1, chunk_bytes);
  std::vector<ChunkRef> refs;
  std::vector<ByteView> slices;
  for (const auto& entry : entries) {
    const ByteView data = View(entry.data);
    std::size_t pos = 0;
    do {
      const std::size_t len = std::min(step, data.size() - pos);
      ChunkRef ref;
      ref.path = entry.path;
      ref.offset = entry.offset + pos;
      ref.length = static_cast<std::uint32_t>(len);
      refs.push_back(std::move(ref));
      slices.push_back(data.subspan(pos, len));
      pos += len;
    } while (pos < data.size());
  }
  // Hashing dominates delta-dump build time for a large image; fan it
  // across the shared codec pool (SHA-NI per worker where available).
  auto hash_one = [&](std::size_t i) { refs[i].digest = Sha1::Hash(slices[i]); };
  if (pool != nullptr && pool->threads() > 1) {
    pool->ParallelFor(refs.size(), hash_one);
  } else {
    for (std::size_t i = 0; i < refs.size(); ++i) hash_one(i);
  }
  return refs;
}

Bytes EncodeManifest(const std::vector<ChunkRef>& refs) {
  Bytes out;
  PutU32(out, kManifestMagic);
  PutVarint(out, refs.size());
  for (const auto& ref : refs) {
    PutVarint(out, ref.path.size());
    Append(out, ByteView(reinterpret_cast<const std::uint8_t*>(ref.path.data()),
                         ref.path.size()));
    PutVarint(out, ref.offset);
    PutVarint(out, ref.length);
    Append(out, ByteView(ref.digest.data(), ref.digest.size()));
  }
  return out;
}

Result<std::vector<ChunkRef>> DecodeManifest(ByteView payload) {
  if (payload.size() < 4 || GetU32(payload.data()) != kManifestMagic) {
    return Status::Corruption("manifest: bad magic");
  }
  std::size_t pos = 4;
  const auto count = GetVarint(payload, pos);
  if (!count) return Status::Corruption("manifest: truncated count");
  std::vector<ChunkRef> refs;
  refs.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    const auto path_len = GetVarint(payload, pos);
    // Overflow-safe bound: pos <= payload.size() after a successful
    // GetVarint, so the subtraction cannot wrap, whereas `pos + *path_len`
    // could for a crafted 64-bit length — letting the check pass and the
    // assign below read far out of bounds.
    if (!path_len || *path_len > kMaxManifestPathLen ||
        *path_len > payload.size() - pos) {
      return Status::Corruption("manifest: truncated path");
    }
    ChunkRef ref;
    ref.path.assign(reinterpret_cast<const char*>(payload.data() + pos),
                    static_cast<std::size_t>(*path_len));
    pos += static_cast<std::size_t>(*path_len);
    const auto offset = GetVarint(payload, pos);
    const auto length = GetVarint(payload, pos);
    if (!offset || !length ||
        *length > std::numeric_limits<std::uint32_t>::max() ||
        Sha1::kDigestSize > payload.size() - pos) {
      return Status::Corruption("manifest: truncated ref");
    }
    ref.offset = *offset;
    ref.length = static_cast<std::uint32_t>(*length);
    std::copy(payload.begin() + pos, payload.begin() + pos + Sha1::kDigestSize,
              ref.digest.begin());
    pos += Sha1::kDigestSize;
    refs.push_back(std::move(ref));
  }
  if (pos != payload.size()) return Status::Corruption("manifest: trailing bytes");
  return refs;
}

bool ChunkIndex::Contains(const Sha1::Digest& digest) const {
  std::lock_guard<std::mutex> lock(mu_);
  return chunks_.count(digest) > 0;
}

void ChunkIndex::MarkPresent(const Sha1::Digest& digest, std::uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  chunks_[digest].size = size;
}

void ChunkIndex::RegisterManifest(std::uint64_t seq,
                                  const std::vector<ChunkRef>& refs) {
  std::lock_guard<std::mutex> lock(mu_);
  if (manifests_.count(seq) > 0) return;
  std::set<Sha1::Digest> unique;
  for (const auto& ref : refs) unique.insert(ref.digest);
  auto& digests = manifests_[seq];
  digests.reserve(unique.size());
  for (const auto& d : unique) {
    auto& entry = chunks_[d];  // presence is implied by the reference
    ++entry.refs;
    digests.push_back(d);
  }
}

void ChunkIndex::ReleaseManifest(std::uint64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = manifests_.find(seq);
  if (it == manifests_.end()) return;
  for (const auto& d : it->second) {
    auto chunk = chunks_.find(d);
    if (chunk != chunks_.end() && chunk->second.refs > 0) {
      --chunk->second.refs;
    }
  }
  manifests_.erase(it);
}

std::vector<ChunkObjectId> ChunkIndex::ZeroRefChunks() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Quarantined: some visible manifest's references are unknown, so no
  // chunk can be proven unreferenced (header comment).
  if (quarantined_) return {};
  std::vector<ChunkObjectId> out;
  for (const auto& [digest, entry] : chunks_) {
    if (entry.refs == 0) out.push_back({digest, entry.size});
  }
  return out;
}

void ChunkIndex::SetQuarantined() {
  std::lock_guard<std::mutex> lock(mu_);
  quarantined_ = true;
}

bool ChunkIndex::quarantined() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantined_;
}

void ChunkIndex::RemoveChunk(const Sha1::Digest& digest) {
  std::lock_guard<std::mutex> lock(mu_);
  chunks_.erase(digest);
}

std::size_t ChunkIndex::ChunkCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return chunks_.size();
}

std::uint64_t ChunkIndex::TotalChunkBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [digest, entry] : chunks_) total += entry.size;
  return total;
}

std::uint64_t ChunkIndex::RefCount(const Sha1::Digest& digest) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = chunks_.find(digest);
  return it == chunks_.end() ? 0 : it->second.refs;
}

void ChunkIndex::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  quarantined_ = false;
  chunks_.clear();
  manifests_.clear();
}

Status RebuildChunkIndex(ObjectStore& store, const Envelope& envelope,
                         const std::vector<ObjectMeta>& objects,
                         ChunkIndex* index) {
  index->Clear();
  std::vector<DbObjectId> manifests;
  for (const auto& meta : objects) {
    if (auto chunk = ChunkObjectId::Decode(meta.name)) {
      index->MarkPresent(chunk->digest, chunk->size);
      continue;
    }
    if (auto db = DbObjectId::Decode(meta.name)) {
      if (db->type == DbObjectType::kManifest) manifests.push_back(*db);
    }
  }
  for (const auto& id : manifests) {
    auto blob = store.Get(id.Encode());
    if (!blob.ok()) {
      // Vanished between LIST and GET: really gone, nothing to register.
      if (blob.status().code() == ErrorCode::kNotFound) continue;
      // Possibly transient (outage, throttling): fail the rebuild. If the
      // manifest were treated as absent, its chunks would rebuild at
      // refcount zero and — because the manifest itself stays visible and
      // may be the newest dump — the next zero-ref sweep would delete
      // chunks recovery still needs. See header comment.
      return blob.status();
    }
    auto payload = envelope.Decode(View(*blob));
    auto refs = payload.ok()
                    ? DecodeManifest(View(*payload))
                    : Result<std::vector<ChunkRef>>(payload.status());
    if (!refs.ok()) {
      // Genuinely corrupt (the envelope MAC rules out a bad fetch):
      // recovery would reject this manifest too, so the reboot proceeds —
      // but with the zero-ref sweep quarantined, since the corrupt
      // manifest's references are unknowable (header comment).
      Log(LogLevel::kWarn, "dedup",
          "corrupt manifest: chunk GC quarantined",
          {{"name", id.Encode()}, {"status", refs.status().ToString()}});
      index->SetQuarantined();
      continue;
    }
    index->RegisterManifest(id.seq, *refs);
  }
  return Status::Ok();
}

Result<ChunkAudit> AuditChunks(ObjectStore& store, const Envelope& envelope) {
  auto objects = store.List("");
  if (!objects.ok()) return objects.status();
  ChunkAudit audit;
  std::map<Sha1::Digest, std::uint64_t> present;  // digest -> named size
  std::vector<DbObjectId> manifests;
  for (const auto& meta : *objects) {
    if (auto chunk = ChunkObjectId::Decode(meta.name)) {
      present[chunk->digest] = chunk->size;
      ++audit.chunks;
      continue;
    }
    if (auto db = DbObjectId::Decode(meta.name)) {
      if (db->type == DbObjectType::kManifest) manifests.push_back(*db);
    }
  }
  std::set<Sha1::Digest> referenced;
  for (const auto& id : manifests) {
    ++audit.manifests;
    auto blob = store.Get(id.Encode());
    if (!blob.ok()) return blob.status();
    auto payload = envelope.Decode(View(*blob));
    if (!payload.ok()) return payload.status();
    auto refs = DecodeManifest(View(*payload));
    if (!refs.ok()) return refs.status();
    for (const auto& ref : *refs) {
      referenced.insert(ref.digest);
      if (present.count(ref.digest) == 0) {
        audit.missing.push_back(ChunkObjectId{ref.digest, ref.length}.Encode());
      }
    }
  }
  // Report orphans under their *actual* object names — the size suffix is
  // part of the name, so a report built with a dummy size would name
  // objects that do not exist and could not be GET/DELETEd.
  for (const auto& [d, size] : present) {
    if (referenced.count(d) == 0) {
      audit.orphans.push_back(ChunkObjectId{d, size}.Encode());
    }
  }
  return audit;
}

}  // namespace ginja
