#include "ginja/tail_apply.h"

#include <algorithm>
#include <deque>
#include <future>

#include "common/codec/sha1.h"
#include "ginja/dedup.h"
#include "ginja/payload.h"

namespace ginja {

TailPlan BuildTailPlan(const std::vector<ObjectMeta>& objects,
                       std::optional<std::uint64_t> up_to_ts) {
  TailPlan plan;

  std::vector<WalObjectId> wal_objects;
  // ts -> seg -> replicas of that segment's tail object (streaming early
  // acks; see CommitPipeline). Only tails of a ts with *no* full WAL
  // object matter — the finished object supersedes its tails.
  std::map<std::uint64_t, std::map<std::uint32_t, std::vector<TailObjectId>>>
      tails_by_ts;
  std::map<std::uint64_t, std::vector<DbObjectId>> db_by_seq;
  for (const auto& meta : objects) {
    if (auto wal = WalObjectId::Decode(meta.name)) {
      if (!up_to_ts || wal->ts <= *up_to_ts) wal_objects.push_back(*wal);
      continue;
    }
    if (auto tail = TailObjectId::Decode(meta.name)) {
      if (!up_to_ts || tail->ts <= *up_to_ts) {
        tails_by_ts[tail->ts][tail->seg].push_back(*tail);
      }
      continue;
    }
    if (auto db = DbObjectId::Decode(meta.name)) {
      if (!up_to_ts || db->ts <= *up_to_ts) db_by_seq[db->seq].push_back(*db);
    }
  }
  for (const auto& id : wal_objects) tails_by_ts.erase(id.ts);
  std::sort(wal_objects.begin(), wal_objects.end(),
            [](const WalObjectId& a, const WalObjectId& b) { return a.ts < b.ts; });
  if (!wal_objects.empty()) plan.newest_wal_ts = wal_objects.back().ts;

  // 1. Most recent *complete* dump (all parts present) — Alg. 1 lines
  // 27–29. A delta-dump manifest is a single-part dump: "all parts
  // present" degenerates to "the manifest is visible", and chunk
  // durability is implied (the manifest is PUT strictly after its chunks).
  std::optional<std::uint64_t> dump_seq;
  for (const auto& [seq, parts] : db_by_seq) {
    if (parts.empty() || (parts[0].type != DbObjectType::kDump &&
                          parts[0].type != DbObjectType::kManifest)) {
      continue;
    }
    if (parts.size() == parts[0].total_parts) dump_seq = seq;
  }
  // Highest WAL ts folded into a planned DB object: GC may have deleted
  // every WAL object up to here, so tailing must resume past it even when
  // no WAL object is visible at all.
  std::optional<std::uint64_t> folded_through_ts;
  auto plan_parts = [&](std::vector<DbObjectId> parts) {
    std::sort(parts.begin(), parts.end(),
              [](const DbObjectId& a, const DbObjectId& b) { return a.part < b.part; });
    for (const auto& id : parts) {
      plan.items.push_back({id.Encode(), /*is_wal=*/false, /*is_tail=*/false,
                            0, {},
                            /*is_manifest=*/id.type == DbObjectType::kManifest});
      plan.last_redo_lsn = std::max(plan.last_redo_lsn, id.redo_lsn);
      folded_through_ts =
          std::max(folded_through_ts.value_or(0), id.ts);
    }
  };
  if (dump_seq) {
    plan.found_dump = true;
    plan_parts(db_by_seq[*dump_seq]);
  }

  // 2. Incremental checkpoints newer than the dump, ascending — lines 30–36.
  // An incomplete part set (torn upload: the checkpointer died mid-PUT) is
  // skipped entirely; its parts are invisible until all of them land.
  for (const auto& [seq, parts] : db_by_seq) {
    if (dump_seq && seq <= *dump_seq) continue;
    if (parts.empty() || parts[0].type != DbObjectType::kCheckpoint) continue;
    if (parts.size() != parts[0].total_parts) continue;  // incomplete upload
    plan_parts(parts);
  }

  // 3. WAL objects the redo still needs (covered range past the planned
  // checkpoints' redo LSN — the LSN-safe form of the paper's
  // newerThan(maxCkptTs)), in ts order, truncated at the first gap: the
  // consecutive-timestamp rule that bounds loss to S (lines 37–40). The
  // gap position depends only on the name-derived ts sequence, so the
  // prefetcher never fetches past it.
  std::optional<std::uint64_t> previous_ts;
  for (const auto& id : wal_objects) {
    if (id.max_lsn <= plan.last_redo_lsn) continue;  // already in the pages
    if (previous_ts && id.ts != *previous_ts + 1) {
      plan.gap_after_plan = true;
      break;
    }
    plan.items.push_back({id.Encode(), /*is_wal=*/true, /*is_tail=*/false,
                          id.ts, {}});
    previous_ts = id.ts;
  }
  // Tailing resumes after the last consecutive full object considered: the
  // planned run's end, or — when every visible object is already covered by
  // the planned pages — after the newest visible one.
  if (previous_ts) {
    plan.resume_ts = *previous_ts + 1;
  } else if (!plan.gap_after_plan && plan.newest_wal_ts) {
    plan.resume_ts = *plan.newest_wal_ts + 1;
  }
  // A checkpoint that began after WAL ts k folded the stream through k;
  // the objects it covered may already be garbage-collected (possibly all
  // of them, when the checkpoint is the newest thing in the bucket), so
  // the resume point must clear the fold boundary regardless of what WAL
  // is still visible. ts 0 is ambiguous (a DB object uploaded before any
  // WAL existed also encodes 0) and is left to the gap→resync path.
  if (folded_through_ts && *folded_through_ts > 0) {
    plan.resume_ts = std::max(plan.resume_ts, *folded_through_ts + 1);
  }

  // 3b. Tail objects of the next unfinished streamed WAL object (early
  // acks): its acked segment prefix is recoverable even though the object
  // itself never finished. The candidate ts must keep timestamps
  // consecutive — previous_ts + 1, or the earliest un-covered tail ts when
  // no full WAL object was planned.
  std::optional<std::uint64_t> tail_ts;
  for (const auto& [ts, segs] : tails_by_ts) {
    Lsn ts_max = 0;
    for (const auto& [seg, replicas] : segs) {
      for (const auto& t : replicas) ts_max = std::max(ts_max, t.max_lsn);
    }
    if (ts_max <= plan.last_redo_lsn) continue;  // fully covered by the pages
    if (previous_ts && ts != *previous_ts + 1) continue;
    if (!previous_ts && plan.gap_after_plan) continue;
    tail_ts = ts;
    break;
  }
  if (tail_ts) {
    auto tail_items = BuildTailSegmentItems(tails_by_ts[*tail_ts], *tail_ts,
                                            /*from_seg=*/0);
    plan.resume_ts = *tail_ts;
    if (!tail_items.empty()) {
      if (auto last = TailObjectId::Decode(tail_items.back().name)) {
        plan.resume_tail_segs = last->seg + 1;
      }
    }
    for (auto& item : tail_items) plan.items.push_back(std::move(item));
    // A tails-only ts is by construction an incomplete object: the plan
    // stops here and the truncation is reported.
    plan.gap_after_plan = true;
  }

  return plan;
}

std::vector<TailPlanItem> ContinueWalPlan(
    const std::vector<ObjectMeta>& objects, std::uint64_t next_ts,
    std::optional<std::uint64_t> up_to_ts,
    std::optional<std::uint64_t>* newest_ts) {
  std::vector<WalObjectId> wal_objects;
  for (const auto& meta : objects) {
    auto wal = WalObjectId::Decode(meta.name);
    if (!wal) continue;  // a cursor listing may overlap WALTAIL/ etc.
    if (newest_ts && (!*newest_ts || wal->ts > **newest_ts)) *newest_ts = wal->ts;
    if (wal->ts < next_ts) continue;  // unpadded ts: old names can trail the cursor
    if (up_to_ts && wal->ts > *up_to_ts) continue;
    wal_objects.push_back(*wal);
  }
  std::sort(wal_objects.begin(), wal_objects.end(),
            [](const WalObjectId& a, const WalObjectId& b) { return a.ts < b.ts; });
  std::vector<TailPlanItem> items;
  std::uint64_t expected = next_ts;
  for (const auto& id : wal_objects) {
    if (id.ts != expected) break;  // the run must stay consecutive
    items.push_back({id.Encode(), /*is_wal=*/true, /*is_tail=*/false, id.ts, {}});
    ++expected;
  }
  return items;
}

std::vector<TailPlanItem> BuildTailSegmentItems(
    const std::map<std::uint32_t, std::vector<TailObjectId>>& segs,
    std::uint64_t ts, std::uint32_t from_seg) {
  std::vector<TailPlanItem> items;
  // GC only ever deletes a seg-*prefix* of tails (the cumulative max_lsn is
  // monotone in seg), so the dense run starting at the lowest surviving
  // segment >= from_seg is the acked prefix still worth applying; a hole
  // ends it — what followed was never acknowledged.
  std::optional<std::uint32_t> expected;
  for (const auto& [seg, replicas] : segs) {
    if (seg < from_seg) continue;
    if (!expected) expected = seg;
    if (seg != *expected) break;
    ++*expected;
    std::vector<TailObjectId> sorted = replicas;
    std::sort(sorted.begin(), sorted.end(),
              [](const TailObjectId& a, const TailObjectId& b) {
                return a.replica < b.replica;
              });
    TailPlanItem item;
    item.name = sorted.front().Encode();
    item.is_wal = true;
    item.is_tail = true;
    item.wal_ts = ts;
    for (std::size_t k = 1; k < sorted.size(); ++k) {
      item.fallbacks.push_back(sorted[k].Encode());
    }
    items.push_back(std::move(item));
  }
  return items;
}

TailApplyResult ApplyTailPlan(const std::vector<TailPlanItem>& plan,
                              const TailApplyContext& ctx, RecoveryReport* r) {
  TailApplyResult result;
  TransferManager& transfers = *ctx.transfers;
  const bool tracing =
      ctx.tracer != nullptr && ctx.tracer->enabled() && ctx.clock != nullptr;
  const std::size_t window = std::max<std::size_t>(1, ctx.window);
  std::deque<std::future<Result<Bytes>>> inflight;
  std::deque<std::uint64_t> issue_times;  // parallel to inflight, tracing only
  std::size_t next_issue = 0;

  auto apply_blob = [&](Result<Bytes> blob) -> Status {
    if (!blob.ok()) return blob.status();
    ++r->objects_downloaded;
    r->bytes_downloaded += blob->size();
    auto payload = ctx.envelope->Decode(View(*blob));
    if (!payload.ok()) return payload.status();
    auto entries = DecodeEntries(View(*payload));
    if (!entries.ok()) return entries.status();
    for (const auto& e : *entries) {
      GINJA_RETURN_IF_ERROR(ctx.target->Write(e.path, e.offset, View(e.data),
                                              /*sync=*/false));
      ++r->files_written;
    }
    return Status::Ok();
  };

  // A delta-dump manifest expands into chunk fetches: every ref is first
  // offered to ctx.chunk_source (hash-verified local reuse — the warm
  // standby's previous image), and the rest GET with the same K-deep
  // window, verified against their content digest before being written.
  // Any chunk failure fails the manifest, exactly like a missing dump part.
  auto apply_manifest = [&](Result<Bytes> blob) -> Status {
    if (!blob.ok()) return blob.status();
    ++r->objects_downloaded;
    r->bytes_downloaded += blob->size();
    auto payload = ctx.envelope->Decode(View(*blob));
    if (!payload.ok()) return payload.status();
    auto refs = DecodeManifest(View(*payload));
    if (!refs.ok()) return refs.status();

    std::vector<std::size_t> to_fetch;
    for (std::size_t k = 0; k < refs->size(); ++k) {
      const ChunkRef& ref = (*refs)[k];
      if (ctx.chunk_source != nullptr) {
        auto local = ctx.chunk_source->Read(ref.path, ref.offset, ref.length);
        if (local.ok() && local->size() == ref.length &&
            Sha1::Hash(View(*local)) == ref.digest) {
          GINJA_RETURN_IF_ERROR(ctx.target->Write(ref.path, ref.offset,
                                                  View(*local),
                                                  /*sync=*/false));
          ++r->files_written;
          ++r->chunks_reused;
          continue;
        }
      }
      to_fetch.push_back(k);
    }

    std::deque<std::future<Result<Bytes>>> chunk_inflight;
    std::size_t chunk_issue = 0;
    for (std::size_t k = 0; k < to_fetch.size(); ++k) {
      while (chunk_issue < to_fetch.size() && chunk_inflight.size() < window) {
        const ChunkRef& f = (*refs)[to_fetch[chunk_issue++]];
        chunk_inflight.push_back(transfers.GetAsync(
            ctx.route, ChunkObjectId{f.digest, f.length}.Encode()));
      }
      const ChunkRef& ref = (*refs)[to_fetch[k]];
      Result<Bytes> fetched_chunk = chunk_inflight.front().get();
      chunk_inflight.pop_front();
      if (!fetched_chunk.ok()) return fetched_chunk.status();
      ++r->objects_downloaded;
      r->bytes_downloaded += fetched_chunk->size();
      // Chunks are enveloped under a per-chunk derived key (tweak = the
      // manifest's content digest); the digest check below catches a
      // wrong-key decode along with every other mismatch.
      auto chunk = ctx.envelope->DecodeDerived(
          View(*fetched_chunk), ByteView(ref.digest.data(), ref.digest.size()));
      if (!chunk.ok()) return chunk.status();
      if (chunk->size() != ref.length ||
          Sha1::Hash(View(*chunk)) != ref.digest) {
        return Status::Corruption("chunk bytes do not match the manifest digest");
      }
      GINJA_RETURN_IF_ERROR(ctx.target->Write(ref.path, ref.offset,
                                              View(*chunk), /*sync=*/false));
      ++r->files_written;
      ++r->chunks_downloaded;
    }
    return Status::Ok();
  };

  for (std::size_t i = 0; i < plan.size(); ++i) {
    while (next_issue < plan.size() && inflight.size() < window) {
      if (tracing) issue_times.push_back(ctx.clock->NowMicros());
      inflight.push_back(transfers.GetAsync(ctx.route, plan[next_issue++].name));
    }
    auto blob = std::move(inflight.front());
    inflight.pop_front();
    Result<Bytes> fetched = blob.get();
    Status fetch_status = fetched.ok() ? Status::Ok() : fetched.status();
    std::uint64_t t_fetched = 0;
    if (tracing) {
      const std::uint64_t issued = issue_times.front();
      issue_times.pop_front();
      t_fetched = ctx.clock->NowMicros();
      // GET issued → blob in hand; overlap with other in-flight GETs means
      // the sum across objects can exceed the recovery wall time.
      ctx.tracer->Record(ctx.fetch_stage, ctx.trace_id_base + i, issued,
                         t_fetched >= issued ? t_fetched - issued : 0);
    }
    Status st = plan[i].is_manifest ? apply_manifest(std::move(fetched))
                                    : apply_blob(std::move(fetched));
    if (!st.ok() && !plan[i].fallbacks.empty()) {
      // Replica tails hold byte-identical segments; any one of them will do.
      for (const auto& alt : plan[i].fallbacks) {
        Result<Bytes> alt_blob = transfers.GetAsync(ctx.route, alt).get();
        if (!alt_blob.ok()) fetch_status = alt_blob.status();
        st = apply_blob(std::move(alt_blob));
        if (st.ok()) break;
      }
    }
    if (tracing) {
      const std::uint64_t t_applied = ctx.clock->NowMicros();
      ctx.tracer->Record(ctx.apply_stage, ctx.trace_id_base + i, t_fetched,
                         t_applied - t_fetched);
    }
    if (!plan[i].is_wal) {
      // A failed dump/checkpoint part fails the whole recovery (the DB
      // page state would be incomplete) — as in the serial path.
      if (!st.ok()) {
        result.db_failure = st;
        return result;
      }
      ++r->db_objects_applied;
    } else if (!st.ok()) {
      // A corrupt/missing WAL object truncates the recoverable tail, the
      // same as a gap; everything before it is still consistent.
      r->gap_detected = true;
      result.wal_truncated = true;
      // Prefer the fetch-layer status (NOT_FOUND tells a standby the object
      // was GC'd under it and a resync is due) over a decode error.
      result.wal_failure = fetch_status.ok() ? st : fetch_status;
      return result;
    } else {
      if (plan[i].is_tail) {
        ++r->tail_segments_applied;
      } else {
        ++r->wal_objects_applied;
      }
      r->recovered_to_ts = plan[i].wal_ts;
    }
    ++result.items_applied;
  }
  return result;
}

}  // namespace ginja
