// Cloud object naming — the paper's data model (§5.2) plus two additions.
//
// Paper format:
//   WAL/<ts>_<filename>_<offset>   (ts totally orders WAL objects)
//   DB/<ts>_<type>_<size>          (type ∈ {dump, checkpoint})
//
// This implementation extends the names with recovery-safety metadata that
// the paper keeps implicit (documented in DESIGN.md):
//   * WAL objects carry `maxlsn`, the exclusive end of the WAL-stream range
//     they cover. Garbage collection deletes a WAL object only when the
//     uploaded checkpoint's redo LSN has passed `maxlsn` — required for
//     soundness with InnoDB-style *fuzzy* checkpoints, where the redo point
//     can lag the checkpoint-begin timestamp. Because maxlsn is monotone in
//     ts, this still always deletes a prefix (no gaps are created).
//   * DB objects carry a sequence number (breaking ts ties between
//     checkpoints with no intervening commits) and a part index, since
//     objects are split at the 20 MB limit (§5.2 footnote 3).
//
//   WAL/<ts>_<escaped-filename>_<offset>_<maxlsn>
//   DB/<ts>_<type>_<size>_s<seq>_l<redolsn>_p<part>of<total>
//
// DB objects also carry their checkpoint's redo LSN (`redolsn`), which
// lets the point-in-time retention policy (§5.4) compute exactly which
// WAL objects each kept snapshot still needs — even after a reboot, when
// only the names survive.
//
// '/' in file names is escaped as '|' so names stay flat object keys.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ginja {

struct WalObjectId {
  std::uint64_t ts = 0;
  std::string filename;       // local WAL segment path (unescaped)
  std::uint64_t offset = 0;   // position of the content in the segment
  std::uint64_t max_lsn = 0;  // exclusive end of covered WAL-stream range

  std::string Encode() const;
  static std::optional<WalObjectId> Decode(std::string_view name);
};

// Early-ack tail object (streaming commit path): one already-enveloped
// stream segment of an in-progress WAL object, PUT per replica as soon as
// the segment seals so its writes can acknowledge before the enclosing
// object finishes. `max_lsn` is the exclusive end of the WAL-stream range
// covered by segments 0..seg of that batch (cumulative, so monotone in
// seg), which makes GC of superseded tails a seg-prefix — recovery can
// rely on the surviving tails of a ts being a dense suffix-run.
//
//   WALTAIL/<ts>_<seg>_<replica>_<maxlsn>
struct TailObjectId {
  std::uint64_t ts = 0;       // the enclosing WAL object's ts
  std::uint32_t seg = 0;      // 0-based segment index within the stream
  std::uint32_t replica = 0;  // 0-based tail replica
  std::uint64_t max_lsn = 0;  // exclusive end covered by segments 0..seg

  std::string Encode() const;
  static std::optional<TailObjectId> Decode(std::string_view name);
};

// kManifest is the delta-dump form of kDump (see ginja/dedup.h): a
// single-part DB object whose payload lists CHUNK/ references instead of
// file contents. Its `size` field carries the *logical* database bytes the
// manifest covers, so the 150% dump rule's TotalDbBytes sum keeps its
// meaning regardless of representation.
enum class DbObjectType { kDump, kCheckpoint, kManifest };

struct DbObjectId {
  std::uint64_t ts = 0;  // last WAL-object ts before the checkpoint began
  DbObjectType type = DbObjectType::kCheckpoint;
  std::uint64_t size = 0;     // logical payload bytes (pre-envelope)
  std::uint64_t seq = 0;      // global checkpoint sequence number
  std::uint64_t redo_lsn = 0; // the checkpoint's redo point (WAL-stream pos)
  std::uint32_t part = 0;     // 0-based part index
  std::uint32_t total_parts = 1;

  std::string Encode() const;
  static std::optional<DbObjectId> Decode(std::string_view name);
};

std::string EscapePath(std::string_view path);
std::string UnescapePath(std::string_view escaped);

}  // namespace ginja
