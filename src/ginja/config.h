// Ginja configuration — the paper's control knobs (§5.1, §5.4, §6).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "cloud/transfer.h"
#include "common/codec/envelope.h"
#include "obs/obs.h"

namespace ginja {

class FleetRuntime;

struct GinjaConfig {
  // -- Batch / Safety model (§5.1) -------------------------------------------
  // B: maximum database updates (intercepted WAL writes) per cloud
  // synchronization. TB: a batch is also sent when this much model time has
  // passed since the last synchronization and updates are pending.
  std::size_t batch = 100;
  std::uint64_t batch_timeout_us = 1'000'000;

  // S: maximum updates that may be unconfirmed by the cloud before the
  // DBMS is blocked — the maximum data loss in a disaster. TS: writes also
  // block when the oldest unconfirmed update is older than this.
  std::size_t safety = 1000;
  std::uint64_t safety_timeout_us = 10'000'000;

  // -- pipeline ----------------------------------------------------------------
  // Parallel Uploader threads; the paper's evaluation fixes 5 (§8).
  int uploader_threads = 5;
  // Per-shard MPSC submit queues feeding the commit pipeline's aggregator.
  // Concurrent DBMS threads contend only within a shard (writes hash by
  // (file, page)); a global sequencer keeps batch formation identical
  // across shard counts. 1 serializes sequencing+enqueue under a mutex —
  // the single-lock baseline.
  int submit_shards = 4;
  // When true, the commit pipeline replaces the fixed TB batch-close poll
  // with an adaptive deadline steered by the observed PUT round-trip and
  // write arrival rate (see AdaptiveBatchController); TB stays the hard
  // upper bound, so S/TS guarantees are unchanged.
  bool adaptive_batching = false;
  // Objects are split at this size to optimise upload latency (§5.2 fn. 3).
  std::size_t max_object_bytes = 20 * 1024 * 1024;
  // Streaming commit path: WAL objects leave the machine part by part
  // while the batch is still filling (store-side streamed PUT), instead of
  // one buffered PUT at batch close. Encoding and upload overlap, so the
  // close-to-ack tail is roughly one finish round-trip instead of a full
  // object PUT. Off by default; the buffered path is byte-identical to
  // previous releases.
  bool streaming_commit = false;
  // Writes per streamed segment: the aggregator seals and uploads a
  // segment once this many staged writes accumulate (a deadline or stop
  // flushes a partial segment). Smaller segments start the upload sooner
  // but cost more per-part requests.
  std::size_t stream_segment_writes = 16;
  // Max parts staged-or-in-flight per stream before the uploader waits —
  // bounds producer run-ahead and the memory pinned per open stream.
  std::size_t stream_part_window = 8;
  // Early acks (streaming only): each uploaded segment is also PUT as a
  // small replicated tail object (WALTAIL/...), and its writes are
  // acknowledged as soon as the tails land — before the enclosing WAL
  // object finishes. Tails are folded into the WAL object at stream close
  // and deleted. Consecutive-ack semantics are preserved: a segment acks
  // only when all earlier segments of the batch have acked.
  bool early_ack = false;
  // Tail-object replicas per segment when early_ack is on. >1 emulates
  // the BtrLog-style replicated small-write path; every replica must land
  // before the segment acks.
  int tail_replicas = 1;
  // Retry policy (model time) for failed cloud operations: jittered
  // exponential backoff starting at retry_backoff_us, multiplied per
  // attempt up to retry_backoff_max_us. One RetryPolicy schedule is shared
  // by every TransferManager consumer and the commit pipeline's uploaders
  // (each uploader derives a decorrelated jitter seed from its index).
  std::uint64_t retry_backoff_us = 200'000;
  int max_retries = 100;
  double retry_backoff_multiplier = 2.0;
  std::uint64_t retry_backoff_max_us = 5'000'000;
  double retry_jitter = 0.2;

  // -- cloud transfer concurrency ---------------------------------------------
  // K: GETs kept in flight by the windowed recovery prefetcher (Alg. 1).
  // 1 reproduces the paper's serial download loop exactly.
  int recovery_prefetch = 8;
  // In-flight cap for checkpoint/dump part PUTs and GC DELETE fan-out.
  int transfer_concurrency = 8;

  // -- checkpoints ---------------------------------------------------------------
  // A dump replaces incremental checkpoints when cloud DB objects reach
  // this multiple of the local database size (§5.3: 150%).
  double dump_threshold = 1.5;
  // Content-addressed delta dumps (see ginja/dedup.h): a dump uploads a
  // small manifest referencing CHUNK/<sha1> objects, PUTting only chunks
  // not already in the cloud — O(changed pages) instead of O(DB). Off by
  // default; the monolithic path stays byte-identical to prior releases.
  bool dedup_dumps = false;
  // Chunk size for delta dumps. Must be a multiple of 4 KiB so boundaries
  // stay page-aligned for both DB flavors. The default balances dedup
  // granularity against per-chunk request latency on WAN-class stores:
  // smaller chunks dedup finer but make recovery base-latency-bound.
  std::size_t dedup_chunk_bytes = 256 * 1024;

  // -- object encoding (§5.4) -----------------------------------------------------
  EnvelopeOptions envelope;
  // Codec concurrency (including the encoding thread itself) for
  // chunk-parallel envelope encoding of large objects; one CodecPool is
  // shared by the commit and checkpoint pipelines. <= 1 encodes serially.
  int codec_threads = 4;

  // -- observability ---------------------------------------------------------------
  // Shared metrics registry + write tracer. When null, Ginja creates a
  // private bundle from `trace` below, so gauges and stage histograms are
  // always reachable via Ginja::observability(). Standalone pipelines
  // (constructed directly, outside Ginja) run unobserved when this is null.
  std::shared_ptr<Observability> obs;
  // Tracer options used only when `obs` is null and Ginja builds its own.
  TraceOptions trace;

  // -- fleet ------------------------------------------------------------------------
  // Shared fleet resources (uploader pool with DRR scheduling, one
  // TransferManager, one CodecPool, one obs bundle). When set, this
  // instance spawns no uploader or transfer threads of its own: upload
  // jobs go to the runtime's deficit-round-robin scheduler under
  // `tenant_id`, and checkpoint/stream/GC transfers run on the shared
  // manager billed to a per-tenant TransferAccount. B/S/TB semantics stay
  // per-instance. Normally injected by GinjaFleet::AddTenant, which also
  // wraps the store in a TenantNamespace.
  std::shared_ptr<FleetRuntime> runtime;
  // Label for per-tenant metric series (tenant=<id>) and the scheduler
  // queue; empty means a standalone (non-fleet) instance.
  std::string tenant_id;

  // -- point-in-time recovery (§5.4) ----------------------------------------------
  // When true, garbage collection keeps superseded objects so the database
  // can be restored to any earlier checkpoint/WAL timestamp.
  bool keep_history = false;

  static GinjaConfig NoLoss() {  // paper's S = B = 1 synchronous mode
    GinjaConfig c;
    c.batch = 1;
    c.safety = 1;
    return c;
  }
};

// Sanity-checks the knobs whose zero values would make the pipelines hang
// rather than fail: no uploader ever drains the queue, no shard ever
// accepts a write, or the streaming aggregator never seals a segment.
// Called by Ginja::Boot/Reboot before any thread starts, so a bad config
// is a clear error instead of a stuck database.
inline Status ValidateGinjaConfig(const GinjaConfig& config) {
  if (config.uploader_threads <= 0) {
    return Status::InvalidArgument(
        "uploader_threads must be >= 1 (0 uploads nothing and blocks every "
        "write at the S bound)");
  }
  if (config.submit_shards <= 0) {
    return Status::InvalidArgument(
        "submit_shards must be >= 1 (there would be no queue to submit to)");
  }
  if (config.stream_segment_writes == 0) {
    return Status::InvalidArgument(
        "stream_segment_writes must be >= 1 (a segment that never fills "
        "never uploads, hanging the streaming path)");
  }
  if (config.dedup_dumps &&
      (config.dedup_chunk_bytes == 0 || config.dedup_chunk_bytes % 4096 != 0)) {
    return Status::InvalidArgument(
        "dedup_chunk_bytes must be a non-zero multiple of 4096 (chunk "
        "boundaries must stay page-aligned or churn detection degrades)");
  }
  return Status::Ok();
}

// Maps the config's retry knobs onto a TransferManager's options with the
// given in-flight cap, so recovery, checkpoints, and GC share one policy.
inline TransferOptions MakeTransferOptions(const GinjaConfig& config,
                                           int concurrency) {
  TransferOptions o;
  o.concurrency = std::max(1, concurrency);
  o.max_attempts = std::max(1, config.max_retries);
  o.backoff_initial_us = config.retry_backoff_us;
  o.backoff_multiplier = config.retry_backoff_multiplier;
  o.backoff_max_us = config.retry_backoff_max_us;
  o.backoff_jitter = config.retry_jitter;
  return o;
}

}  // namespace ginja
