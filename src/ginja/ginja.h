// Ginja — the disaster-recovery middleware facade (paper §5).
//
// Typical use:
//
//   auto fs    = std::make_shared<MemFs>();             // or LocalFs
//   auto icept = std::make_shared<InterceptFs>(fs, clock);
//   Database db(icept, DbLayout::Postgres());
//   db.Create(); ... create tables ...
//
//   Ginja ginja(fs, cloud, clock, DbLayout::Postgres(), config);
//   ginja.Boot();            // initial dump + WAL objects to the cloud
//   icept->SetListener(&ginja);   // from here every DBMS write is protected
//   ... run the workload; commits replicate per B/S ...
//   ginja.Stop();            // drain and detach (clean shutdown)
//
// After a disaster:
//
//   Ginja::Recover(cloud, config, layout, fresh_fs, &report);
//   Database db(fresh_fs_intercepted, layout); db.Open();  // DBMS redo
//
// Reboot() replaces Boot() when the cloud already mirrors the local files
// (clean restart). Recovery honours an optional timestamp limit when the
// config kept history (point-in-time recovery, §5.4).
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>

#include "cloud/object_store.h"
#include "common/clock.h"
#include "db/layout.h"
#include "fs/intercept_fs.h"
#include "ginja/checkpoint_pipeline.h"
#include "ginja/cloud_view.h"
#include "ginja/commit_pipeline.h"
#include "ginja/config.h"
#include "ginja/pitr.h"
#include "ginja/processor.h"
#include "ginja/tail_apply.h"  // RecoveryReport + the shared apply loop

namespace ginja {

class Ginja : public FileEventListener {
 public:
  // `local_vfs` must be the *inner* file system (not the InterceptFs), so
  // Ginja's own reads do not re-enter interception.
  Ginja(VfsPtr local_vfs, ObjectStorePtr store, std::shared_ptr<Clock> clock,
        DbLayout layout, GinjaConfig config);
  ~Ginja() override;

  // Mode Boot (Alg. 1 lines 7–18): uploads one WAL object per local WAL
  // segment and a full dump, synchronously. Only after this returns may the
  // DBMS run on top.
  Status Boot();

  // Mode Reboot (Alg. 1 lines 19–22): rebuilds the cloudView by LIST; the
  // cloud is assumed to be in sync with the local files (clean stop).
  Status Reboot();

  // Mode Recovery (Alg. 1 lines 23–40): rebuilds the database files from
  // the cloud into `target` (normally an empty directory). With
  // `up_to_ts`, only objects with ts <= limit are used (point-in-time
  // recovery; requires a config that kept history).
  static Status Recover(ObjectStorePtr store, const GinjaConfig& config,
                        const DbLayout& layout, VfsPtr target,
                        RecoveryReport* report = nullptr,
                        std::optional<std::uint64_t> up_to_ts = std::nullopt,
                        std::shared_ptr<Clock> clock = nullptr);

  // FileEventListener: entry point for InterceptFs.
  void OnFileEvent(const FileEvent& event) override;

  // Clean shutdown: drains both pipelines and joins every thread.
  void Stop();
  // Crash simulation: abandons pending uploads.
  void Kill();
  // Blocks until the commit queue is empty (everything acknowledged).
  void Drain();

  // -- point-in-time recovery (§5.4) -----------------------------------------

  // Waits for pending commits to reach the cloud, then protects the
  // current state as a restore point. Returns its WAL timestamp (pass it
  // to Recover's `up_to_ts` later), or nullopt if nothing was ever
  // uploaded. GC will keep exactly the objects this point needs.
  std::optional<std::uint64_t> ProtectCurrentState();
  RetentionPolicy& retention() { return *retention_; }
  std::vector<RestorePoint> RestorePoints() const {
    return ListRestorePoints(*view_, retention_.get());
  }

  // The metrics/tracing bundle: the one the config supplied, or the private
  // bundle Ginja created when the config carried none. Never null.
  ObservabilityPtr observability() const { return config_.obs; }

  const CommitPipelineStats& commit_stats() const { return commits_->stats(); }
  const CheckpointPipelineStats& checkpoint_stats() const {
    return checkpoints_->stats();
  }
  const CloudView& cloud_view() const { return *view_; }
  const Envelope& envelope() const { return *envelope_; }
  // Delta-dump chunk inventory (dedup_dumps); rebuilt from the bucket on
  // Reboot, populated by the checkpoint pipeline while running.
  const ChunkIndex& chunk_index() const { return *chunk_index_; }
  std::size_t PendingWrites() const { return commits_->PendingWrites(); }

 private:
  VfsPtr local_vfs_;
  ObjectStorePtr store_;
  std::shared_ptr<Clock> clock_;
  DbLayout layout_;
  GinjaConfig config_;

  std::shared_ptr<CloudView> view_;
  std::shared_ptr<RetentionPolicy> retention_;
  std::shared_ptr<ChunkIndex> chunk_index_;
  std::shared_ptr<Envelope> envelope_;
  std::shared_ptr<CodecPool> codec_pool_;  // shared by both pipelines
  std::unique_ptr<CommitPipeline> commits_;
  std::unique_ptr<CheckpointPipeline> checkpoints_;
  std::unique_ptr<DbIoProcessor> processor_;
  // Atomic: OnFileEvent reads these from DBMS threads while Stop/Kill
  // write them from the control thread.
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
};

}  // namespace ginja
