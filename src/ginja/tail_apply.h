// Shared tail-apply machinery — the one place the "fetch cloud objects in
// order, decode, write into a DB image" loop lives.
//
// Three consumers drive it:
//   * Ginja::Recover — disaster recovery: full LIST → bootstrap plan →
//     windowed apply into an empty target (paper Alg. 1 lines 23–40);
//   * point-in-time recovery — the same plan opened at an arbitrary
//     frontier (`up_to_ts`), which is all time travel is;
//   * StandbyReplica — warm tailing: the bootstrap plan once, then
//     ContinueWalPlan() increments against an incremental LIST cursor,
//     applied into a live image so promotion is O(lag), not O(DB).
//
// The plan is computable before the first GET because object names carry
// their recovery metadata (ts, redo LSN, part counts): a K-deep prefetch
// window changes *when* bytes arrive but never *what* is applied, and
// report counters advance at apply time so reports are K-invariant.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cloud/object_store.h"
#include "cloud/transfer.h"
#include "common/clock.h"
#include "common/codec/envelope.h"
#include "db/layout.h"
#include "fs/vfs.h"
#include "ginja/object_id.h"
#include "obs/trace.h"

namespace ginja {

struct RecoveryReport {
  std::uint64_t objects_downloaded = 0;
  std::uint64_t bytes_downloaded = 0;   // enveloped bytes
  std::uint64_t wal_objects_applied = 0;
  // Early-ack tail segments (WALTAIL/) applied from an unfinished streamed
  // WAL object — the acked prefix of the batch that was in flight.
  std::uint64_t tail_segments_applied = 0;
  std::uint64_t db_objects_applied = 0;
  std::uint64_t files_written = 0;
  // Delta-dump manifests (ginja/dedup.h): chunks fetched from the cloud vs
  // chunks satisfied from ctx.chunk_source by local hash verification.
  std::uint64_t chunks_downloaded = 0;
  std::uint64_t chunks_reused = 0;
  std::uint64_t recovered_to_ts = 0;    // highest WAL-object ts applied
  bool found_dump = false;
  bool gap_detected = false;            // WAL tail truncated at a ts gap
  std::uint64_t duration_micros = 0;    // model time
};

// One object to fetch and apply, in plan order.
struct TailPlanItem {
  std::string name;
  bool is_wal = false;
  bool is_tail = false;       // WALTAIL/ segment of an unfinished object
  std::uint64_t wal_ts = 0;
  // Replica tails holding the same segment bytes, tried in order when
  // the primary fails; empty for everything else.
  std::vector<std::string> fallbacks;
  // Delta-dump manifest: the payload lists CHUNK/ references which the
  // apply loop expands into windowed chunk fetches.
  bool is_manifest = false;
};

struct TailPlan {
  std::vector<TailPlanItem> items;
  bool found_dump = false;
  // True when the visible WAL tail is truncated: a ts gap past the planned
  // run, or a tails-only (unfinished) object ending the plan.
  bool gap_after_plan = false;
  Lsn last_redo_lsn = 0;      // redo point of the planned DB objects
  // Newest WAL-object ts visible in the listing (planned or not); feeds
  // the standby's lag gauge.
  std::optional<std::uint64_t> newest_wal_ts;
  // Where tailing continues after this plan: the ts after the last
  // consecutive full WAL object considered — or the unfinished streamed ts
  // itself when the plan ends in its tail segments (more segments, or the
  // folded object, may yet appear).
  std::uint64_t resume_ts = 0;
  // Next unapplied tail segment index of `resume_ts` (the standby resumes
  // its per-ts segment cursor here); 0 when the plan has no tail items.
  std::uint32_t resume_tail_segs = 0;
};

// Builds the bootstrap fetch plan from a full bucket listing: the latest
// *complete* dump, complete checkpoints newer than it, WAL objects past the
// planned redo LSN in consecutive-ts order, and the dense acked
// tail-segment prefix of at most one unfinished streamed object. With
// `up_to_ts`, only objects with ts <= the limit participate (PITR).
TailPlan BuildTailPlan(const std::vector<ObjectMeta>& objects,
                       std::optional<std::uint64_t> up_to_ts);

// Incremental continuation for a tailing standby: full WAL objects with
// ts >= next_ts out of a (cursor-)listing, in consecutive order starting
// exactly at next_ts; stops before the first gap. `newest_ts` (optional
// out) reports the newest WAL ts seen, applied or not, for lag tracking.
std::vector<TailPlanItem> ContinueWalPlan(
    const std::vector<ObjectMeta>& objects, std::uint64_t next_ts,
    std::optional<std::uint64_t> up_to_ts,
    std::optional<std::uint64_t>* newest_ts);

// The dense acked segment run of one streamed ts, as plan items with
// replica fallbacks. Segments below `from_seg` are skipped (already
// applied); the run starts at from_seg or at the lowest surviving segment
// beyond it (GC only ever deletes a seg-prefix) and ends at the first
// hole — what followed the hole was never acknowledged.
std::vector<TailPlanItem> BuildTailSegmentItems(
    const std::map<std::uint32_t, std::vector<TailObjectId>>& segs,
    std::uint64_t ts, std::uint32_t from_seg);

// Everything ApplyTailPlan needs, parameterized so recovery and the warm
// standby share one loop but trace into their own stages.
struct TailApplyContext {
  TransferManager* transfers = nullptr;
  TransferRoute route;                  // default: the manager's own store
  const Envelope* envelope = nullptr;
  VfsPtr target;
  std::shared_ptr<Clock> clock;         // null => untraced
  WriteTracer* tracer = nullptr;        // null => untraced
  std::size_t window = 1;               // K GETs kept in flight
  TraceStage fetch_stage = TraceStage::kRecoveryFetch;
  TraceStage apply_stage = TraceStage::kRecoveryApply;
  std::uint64_t trace_id_base = 0;      // plan index offset for span ids
  // Optional local chunk donor for delta-dump manifests: a ref whose
  // (path, offset, length) bytes here hash to the ref's digest is copied
  // locally instead of fetched — the warm standby passes its previous
  // image so a resync downloads only the chunks that actually changed.
  VfsPtr chunk_source;
};

struct TailApplyResult {
  // Non-OK when a dump/checkpoint part failed — the page state would be
  // incomplete, so the whole recovery fails.
  Status db_failure = Status::Ok();
  // A WAL object/tail failure truncates the recoverable tail (same as a
  // gap); everything applied before it is still consistent.
  bool wal_truncated = false;
  Status wal_failure = Status::Ok();    // the status that truncated it
  std::size_t items_applied = 0;        // plan items consumed successfully
};

// Windowed ordered apply: up to `window` GETs in flight, decode on the
// calling thread (fanning chunks across the envelope's codec pool),
// applies strictly in plan order. Counters in `r` advance only as objects
// are consumed, so the report is identical for every window size.
TailApplyResult ApplyTailPlan(const std::vector<TailPlanItem>& plan,
                              const TailApplyContext& ctx, RecoveryReport* r);

}  // namespace ginja
