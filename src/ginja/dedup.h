// Content-addressed delta dumps — the dedup representation of a full dump.
//
// A monolithic dump re-uploads every database byte each time the 150% rule
// fires, so steady-state upload cost scales with DB size rather than with
// the change rate. The dedup representation splits the dump image into
// fixed-size, page-aligned chunks, names each chunk by the SHA-1 of its
// *plaintext* content —
//
//   CHUNK/<40-hex-digest>_<size>
//
// — and publishes the dump itself as a small *manifest* DB object
// (DB/<ts>_manifest_..., a single-part DbObjectId) whose payload lists
// (path, offset, length, digest) references. A second dump after partial
// churn uploads only the chunks whose content changed: O(changed pages),
// not O(DB).
//
// Torn-upload invisibility mirrors the multi-part dump rule: chunks are PUT
// first, the manifest strictly last. A crash mid-upload leaves orphan
// chunks (harmless — they are resumable dedup hits for the next dump and
// are swept by refcount GC) but never a visible inconsistent dump, because
// recovery only trusts manifests, and a manifest is only visible once all
// of its chunks are durable.
//
// Convergent encryption: a chunk's envelope AES key is derived from its
// *full* 160-bit content digest (Envelope::EncodeDerived) and its nonce
// from the digest prefix (ChunkNonce), so identical plaintext chunks
// produce identical ciphertext and dedup works across encrypted uploads.
// Deriving the key from the whole digest matters: a truncated-nonce
// collision alone (the ~2^28 birthday bound on ChunkNonce's 56 digest
// bits) reuses no keystream, because the colliding chunks encrypt under
// different keys — breaking confidentiality requires a full SHA-1
// collision. The usual convergent caveat still applies — an observer of
// the bucket can confirm a *guessed* plaintext chunk by hash equality;
// acceptable for database page images under a secret per-deployment key,
// and exactly the trade every content-addressed encrypted store makes.
//
// The ChunkIndex is the cloud-side chunk inventory plus manifest→chunk
// refcounts. GC invariant ordering (see CheckpointPipeline::GarbageCollect):
// a new manifest's chunks are Ref'd *before* any old manifest is released,
// so a chunk shared by consecutive dumps never transiently reaches
// refcount 0; zero-ref chunks are deleted only in a second wave after the
// manifest DELETEs were confirmed.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "cloud/object_store.h"
#include "common/codec/envelope.h"
#include "common/codec/sha1.h"
#include "common/result.h"
#include "ginja/payload.h"

namespace ginja {

class CodecPool;

// One chunk of a delta dump: `length` bytes of file `path` at `offset`,
// stored in the cloud as the object named by `digest`.
struct ChunkRef {
  std::string path;
  std::uint64_t offset = 0;
  std::uint32_t length = 0;
  Sha1::Digest digest{};
};

// CHUNK/<40-hex-digest>_<size>. `size` is the plaintext chunk length —
// recorded in the name so the chunk inventory (and the cost model's
// storage-bytes sum) rebuilds from a LIST without any GETs.
struct ChunkObjectId {
  Sha1::Digest digest{};
  std::uint64_t size = 0;

  std::string Encode() const;
  static std::optional<ChunkObjectId> Decode(std::string_view name);
};

// Envelope nonce for a chunk object, derived from the content digest
// (convergent encryption; header comment). Tagged with top byte 0x51 —
// bit 63 clear — which is disjoint from every other nonce subspace: WAL
// objects use their (small) ts, DB parts (1<<63)|(seq<<16)|part, stream
// segments 0xE5<<56, and the failover meta space 0xF0F0<<48. Nonce
// collisions between distinct chunks are harmless because each chunk also
// gets its own derived AES key (header comment); the nonce only needs to
// keep the *shared-key* subspaces apart.
std::uint64_t ChunkNonce(const Sha1::Digest& digest);

// Splits dump entries into `chunk_bytes`-sized pieces on boundaries
// aligned to the entry's own offsets (dump entries start at 0, so chunk
// boundaries are page-aligned for any page size dividing chunk_bytes) and
// hashes every chunk — fanned across `pool` when non-null, serial
// otherwise. Refs are returned in entry order, chunk order within.
std::vector<ChunkRef> ChunkDumpEntries(const std::vector<FileEntry>& entries,
                                       std::size_t chunk_bytes,
                                       CodecPool* pool);

// Manifest payload codec. Wire format:
//   "GMF1"  u32 magic
//   varint  ref count
//   per ref: varint path_len, path bytes, varint offset, varint length,
//            20-byte digest
Bytes EncodeManifest(const std::vector<ChunkRef>& refs);
Result<std::vector<ChunkRef>> DecodeManifest(ByteView payload);

// Thread-safe inventory of cloud-side chunks and the manifest→chunk
// reference counts that drive GC.
class ChunkIndex {
 public:
  // The chunk exists in the cloud (uploaded by us or found by LIST),
  // possibly with zero references (a resumable orphan).
  bool Contains(const Sha1::Digest& digest) const;
  void MarkPresent(const Sha1::Digest& digest, std::uint64_t size);

  // Records manifest `seq` as referencing `refs` (duplicates within one
  // manifest count once) and bumps each chunk's refcount. Idempotent per
  // seq: re-registering an already-known manifest is a no-op.
  void RegisterManifest(std::uint64_t seq, const std::vector<ChunkRef>& refs);

  // Drops manifest `seq`'s references. Chunks whose refcount reaches zero
  // stay *present* (they are still in the cloud) until RemoveChunk.
  void ReleaseManifest(std::uint64_t seq);

  // Present chunks no surviving manifest references — GC's delete set.
  std::vector<ChunkObjectId> ZeroRefChunks() const;

  // Forgets a chunk whose cloud DELETE was confirmed.
  void RemoveChunk(const Sha1::Digest& digest);

  // A visible manifest could not be decoded during a rebuild, so its chunk
  // references are unknowable. While quarantined, ZeroRefChunks() returns
  // empty — the zero-ref sweep must not run against an index that may be
  // missing references held by a still-visible manifest. Cleared by
  // Clear() (the next full rebuild decides afresh).
  void SetQuarantined();
  bool quarantined() const;

  std::size_t ChunkCount() const;
  std::uint64_t TotalChunkBytes() const;
  std::uint64_t RefCount(const Sha1::Digest& digest) const;
  void Clear();

 private:
  struct Entry {
    std::uint64_t size = 0;
    std::uint64_t refs = 0;
  };
  mutable std::mutex mu_;
  bool quarantined_ = false;
  std::map<Sha1::Digest, Entry> chunks_;
  std::map<std::uint64_t, std::vector<Sha1::Digest>> manifests_;  // by seq
};

// Rebuilds the index from the bucket (Reboot path): chunk presence comes
// from CHUNK/ names alone; references come from decoding every *visible*
// manifest (each is a single-part object, so any listed manifest is
// complete). Failure handling is deliberately asymmetric, because a
// manifest that stays visible but loses its references would have its
// chunks swept as orphans — permanent data loss:
//   * GET NotFound — the manifest vanished between LIST and GET: really
//     gone, skipped.
//   * any other GET failure — possibly transient: the rebuild FAILS (the
//     caller retries the Reboot) rather than mistaking the manifest for
//     absent.
//   * decode failure — genuinely corrupt (the MAC rules out a bad fetch):
//     the manifest is skipped, matching recovery's rejection, but the
//     index is quarantined so the zero-ref sweep cannot delete chunks the
//     undecodable manifest may still reference.
Status RebuildChunkIndex(ObjectStore& store, const Envelope& envelope,
                         const std::vector<ObjectMeta>& objects,
                         ChunkIndex* index);

// Test/GC audit: cross-checks the bucket against its own manifests.
// `missing` — digests referenced by a visible manifest with no CHUNK/
// object backing them (would fail recovery: must always be empty);
// `orphans` — CHUNK/ objects no visible manifest references (a permanent
// leak if GC ran with nothing in flight).
struct ChunkAudit {
  std::vector<std::string> missing;
  std::vector<std::string> orphans;
  std::size_t manifests = 0;
  std::size_t chunks = 0;
};
Result<ChunkAudit> AuditChunks(ObjectStore& store, const Envelope& envelope);

}  // namespace ginja
