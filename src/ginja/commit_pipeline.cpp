#include "ginja/commit_pipeline.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace ginja {

namespace {
// Poll interval for time-based predicates (TB/TS); wall time, so it works
// with any Clock scale.
constexpr auto kPollInterval = std::chrono::milliseconds(1);
}  // namespace

CommitPipeline::CommitPipeline(ObjectStorePtr store,
                               std::shared_ptr<CloudView> view,
                               std::shared_ptr<Clock> clock,
                               const GinjaConfig& config,
                               std::shared_ptr<Envelope> envelope)
    : store_(std::move(store)),
      view_(std::move(view)),
      clock_(std::move(clock)),
      config_(config),
      envelope_(std::move(envelope)) {
  last_agg_time_us_ = clock_->NowMicros();
}

CommitPipeline::~CommitPipeline() { Kill(); }

void CommitPipeline::Start() {
  threads_.emplace_back([this] { AggregatorLoop(); });
  for (int i = 0; i < config_.uploader_threads; ++i) {
    threads_.emplace_back([this] { UploaderLoop(); });
  }
  threads_.emplace_back([this] { UnlockerLoop(); });
}

void CommitPipeline::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  Drain();
  upload_queue_.Close();
  ack_queue_.Close();
  unblock_cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void CommitPipeline::Kill() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (killed_) return;
    killed_ = true;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  unblock_cv_.notify_all();
  upload_queue_.Close();
  ack_queue_.Close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

bool CommitPipeline::ShouldBlockLocked(std::uint64_t now_us) const {
  if (queue_.size() > config_.safety) return true;
  if (!queue_.empty() &&
      now_us - queue_.front().second >= config_.safety_timeout_us) {
    return true;
  }
  return false;
}

void CommitPipeline::Submit(WalWrite write) {
  std::unique_lock<std::mutex> lock(mu_);
  if (killed_) return;
  queue_.emplace_back(std::move(write), clock_->NowMicros());
  stats_.writes_submitted.Add();
  // Wake the Aggregator only when a full batch is ready; partial batches
  // are picked up by its TB poll. Avoids a wakeup per commit.
  if (queue_.size() - aggregated_ >= config_.batch) queue_cv_.notify_one();

  // Event-driven block (no polling): while blocked, ShouldBlock can only
  // flip to false through an Unlocker pop, and every pop signals
  // unblock_cv_. Time passing alone never unblocks (it only *ages* the
  // front entry toward the TS limit), so waiting without a timeout is safe.
  bool blocked = false;
  while (!killed_ && ShouldBlockLocked(clock_->NowMicros())) {
    if (!blocked) {
      blocked = true;
      stats_.blocked_waits.Add();  // counted on entry: observable mid-stall
    }
    unblock_cv_.wait(lock);
  }
}

void CommitPipeline::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  unblock_cv_.wait(lock, [&] { return killed_ || queue_.empty(); });
}

std::size_t CommitPipeline::PendingWrites() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void CommitPipeline::AggregatorLoop() {
  while (true) {
    struct Group {
      std::string file;
      std::vector<FileEntry> entries;
      std::uint64_t max_lsn = 0;
      std::uint64_t first_offset = 0;
    };
    std::map<std::string, Group> groups;
    std::size_t batch_items = 0;
    std::uint64_t batch_seq = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait_for(lock, kPollInterval, [&] {
        return stopping_ || queue_.size() - aggregated_ >= config_.batch;
      });
      if (killed_) return;
      const std::size_t unaggregated = queue_.size() - aggregated_;
      if (unaggregated == 0) {
        if (stopping_) return;
        continue;
      }
      const std::uint64_t now = clock_->NowMicros();
      const bool timeout =
          now - last_agg_time_us_ >= config_.batch_timeout_us;
      if (unaggregated < config_.batch && !timeout && !stopping_) continue;

      const std::size_t take = std::min(config_.batch, unaggregated);

      // Aggregate (Alg. 2 lines 12–13) while holding the lock: coalesce
      // rewrites of the same page — last write wins — so only the surviving
      // pages are copied out (a B=1000 batch usually collapses to a
      // handful of pages).
      std::map<std::pair<std::string_view, std::uint64_t>, const WalWrite*>
          coalesced;
      for (std::size_t i = 0; i < take; ++i) {
        const WalWrite& w = queue_[aggregated_ + i].first;
        coalesced[{w.file, w.offset}] = &w;
      }
      for (const auto& [key, w] : coalesced) {
        Group& g = groups[w->file];
        if (g.entries.empty()) {
          g.file = w->file;
          g.first_offset = w->offset;
        }
        g.entries.push_back({w->file, w->offset, w->data});
        g.max_lsn = std::max(g.max_lsn, w->max_lsn);
      }

      batch_items = take;
      aggregated_ += take;
      batch_seq = next_batch_seq_++;
      last_agg_time_us_ = now;
    }

    // Split oversized groups at the object-size limit, then order all
    // resulting objects by the WAL-stream range they cover so timestamps
    // stay monotone in LSN (the prefix-GC invariant).
    struct PendingObject {
      std::vector<FileEntry> entries;
      std::string file;
      std::uint64_t first_offset;
      std::uint64_t max_lsn;
    };
    std::vector<PendingObject> objects;
    for (auto& [file, group] : groups) {
      std::vector<FileEntry> current;
      std::size_t bytes = 0;
      std::uint64_t first_offset = group.first_offset;
      for (auto& entry : group.entries) {
        if (!current.empty() &&
            bytes + entry.data.size() > config_.max_object_bytes) {
          objects.push_back({std::move(current), file, first_offset, group.max_lsn});
          current.clear();
          bytes = 0;
          first_offset = entry.offset;
        }
        bytes += entry.data.size();
        current.push_back(std::move(entry));
      }
      if (!current.empty()) {
        objects.push_back({std::move(current), file, first_offset, group.max_lsn});
      }
    }
    std::stable_sort(objects.begin(), objects.end(),
                     [](const PendingObject& a, const PendingObject& b) {
                       return a.max_lsn < b.max_lsn;
                     });

    {
      std::lock_guard<std::mutex> lock(mu_);
      Batch batch;
      batch.seq = batch_seq;
      batch.item_count = batch_items;
      batch.objects_total = objects.size();
      for (const auto& obj : objects) {
        batch.max_lsn = std::max(batch.max_lsn, obj.max_lsn);
      }
      batches_.push_back(batch);
    }

    for (auto& obj : objects) {
      WalObjectId id;
      id.ts = view_->NextWalTs();
      id.filename = obj.file;
      id.offset = obj.first_offset;
      id.max_lsn = obj.max_lsn;

      UploadJob job;
      job.batch_seq = batch_seq;
      job.name = id.Encode();
      job.entries = std::move(obj.entries);
      job.nonce = id.ts;
      upload_queue_.Put(std::move(job));
    }
  }
}

void CommitPipeline::UploaderLoop() {
  // Framing and envelope buffers are reused across jobs: EncodeInto clears
  // them but keeps their capacity, so a steady-state uploader stops
  // allocating altogether.
  Bytes framing;
  Bytes enveloped;
  while (auto job = upload_queue_.Take()) {
    const PayloadView payload =
        EncodeEntriesView(MakeEntryRefs(job->entries), framing);
    stats_.object_logical_bytes.Record(static_cast<double>(payload.size()));
    envelope_->EncodeInto(payload, job->nonce, enveloped);
    int attempts = 0;
    bool uploaded = false;
    while (attempts < config_.max_retries) {
      Status st = store_->Put(job->name, View(enveloped));
      if (st.ok()) {
        uploaded = true;
        break;
      }
      stats_.upload_retries.Add();
      ++attempts;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (killed_) break;
      }
      clock_->SleepMicros(config_.retry_backoff_us);
    }
    if (uploaded) {
      stats_.objects_uploaded.Add();
      stats_.bytes_uploaded.Add(enveloped.size());
      if (auto id = WalObjectId::Decode(job->name)) view_->AddWal(*id);
    }
    // Acknowledge even on permanent failure so Stop() can complete — but a
    // failed ack freezes the recoverable frontier (UnlockerLoop), so no
    // checkpoint can ever claim WAL coverage across the gap.
    ack_queue_.ForcePut({job->batch_seq, uploaded});
  }
}

void CommitPipeline::UnlockerLoop() {
  while (auto ack = ack_queue_.Take()) {
    bool advanced = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!ack->uploaded) frontier_broken_.store(true);
      for (auto& batch : batches_) {
        if (batch.seq == ack->batch_seq) {
          ++batch.objects_acked;
          break;
        }
      }
      // Remove completed batches from the head only — this is the
      // consecutive-timestamp rule that bounds loss to S despite parallel
      // out-of-order uploads (Alg. 2 lines 19–22).
      while (!batches_.empty() &&
             batches_.front().objects_acked >= batches_.front().objects_total) {
        const std::size_t n = batches_.front().item_count;
        assert(queue_.size() >= n && aggregated_ >= n);
        for (std::size_t i = 0; i < n; ++i) queue_.pop_front();
        aggregated_ -= n;
        // The recoverable WAL frontier advances only with the consecutive
        // prefix of *successfully* acknowledged batches.
        if (!frontier_broken_.load() &&
            batches_.front().max_lsn > frontier_lsn_.load()) {
          frontier_lsn_.store(batches_.front().max_lsn,
                              std::memory_order_release);
          advanced = true;
        }
        batches_.pop_front();
        stats_.batches_uploaded.Add();
      }
      unblock_cv_.notify_all();
    }
    // Off-lock: the listener takes the checkpoint pipeline's mutex.
    if (advanced && frontier_listener_) frontier_listener_();
  }
}

}  // namespace ginja
