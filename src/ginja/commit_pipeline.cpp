#include "ginja/commit_pipeline.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

#include "obs/log.h"

namespace ginja {

namespace {
// Poll interval for time-based predicates (TB/TS); wall time, so it works
// with any Clock scale.
constexpr auto kPollInterval = std::chrono::milliseconds(1);
// EWMA weight for the adaptive controller's RTT / arrival-rate estimates.
constexpr double kEwmaAlpha = 0.2;
// Slice length for kill-interruptible backoff sleeps (model time).
constexpr std::uint64_t kSleepSliceUs = 20'000;
// Decorrelates the uploaders' jitter streams (golden-ratio increment).
constexpr std::uint64_t kSeedStride = 0x9E3779B97F4A7C15ull;
// Stream-segment nonces live in their own subspace, disjoint from WAL
// object nonces (the raw ts) and DB part nonces (bit 63 | seq | part):
// tag | ts << 16 | seg. A tail object reuses its segment's envelope bytes
// verbatim — same nonce, same ciphertext — so the fold needs no re-encode
// and never reuses a CTR keystream on different plaintext.
constexpr std::uint64_t kStreamNonceTag = 0xE5ull << 56;
// Poll slice while an uploader waits for stream-part-window space.
constexpr std::uint64_t kWindowPollUs = 500;
}  // namespace

// ---------------------------------------------------------------------------
// AdaptiveBatchController

AdaptiveBatchController::AdaptiveBatchController(std::size_t batch_cap,
                                                std::uint64_t tb_us,
                                                int uploader_threads)
    : batch_cap_(batch_cap < 1 ? 1 : batch_cap),
      tb_us_(tb_us),
      uploaders_(uploader_threads < 1 ? 1.0
                                      : static_cast<double>(uploader_threads)) {}

void AdaptiveBatchController::RecordPutRtt(std::uint64_t rtt_us) {
  std::lock_guard<std::mutex> lock(mu_);
  const double sample = static_cast<double>(rtt_us);
  if (!have_rtt_) {
    rtt_ewma_us_ = sample;
    have_rtt_ = true;
  } else {
    rtt_ewma_us_ = kEwmaAlpha * sample + (1.0 - kEwmaAlpha) * rtt_ewma_us_;
  }
}

void AdaptiveBatchController::RecordArrivals(std::size_t count,
                                             std::uint64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  if (last_arrival_us_ == 0) {
    last_arrival_us_ = now_us;
    arrival_carry_ += count;
    return;
  }
  const std::uint64_t dt = now_us - last_arrival_us_;
  if (dt == 0) {
    // Same observation instant (coarse clocks): fold into the next sample.
    arrival_carry_ += count;
    return;
  }
  const double sample =
      static_cast<double>(count + arrival_carry_) / static_cast<double>(dt);
  arrival_carry_ = 0;
  last_arrival_us_ = now_us;
  if (!have_rate_) {
    rate_ewma_ = sample;
    have_rate_ = true;
  } else {
    rate_ewma_ = kEwmaAlpha * sample + (1.0 - kEwmaAlpha) * rate_ewma_;
  }
}

void AdaptiveBatchController::NoteUploadState(int inflight_puts,
                                              double window_occupancy) {
  inflight_.store(inflight_puts, std::memory_order_relaxed);
  occupancy_.store(window_occupancy, std::memory_order_relaxed);
}

double AdaptiveBatchController::TargetLocked() const {
  return rate_ewma_ * rtt_ewma_us_ / uploaders_;
}

std::uint64_t AdaptiveBatchController::CloseDeadlineUs() const {
  // An idle upload pipe means waiting buys nothing: whatever is pending
  // ships now. (Sentinel -1 = the pipeline never reported; fall through.)
  if (inflight_.load(std::memory_order_relaxed) == 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  if (!have_rtt_ || !have_rate_) return 0;
  if (TargetLocked() <= 1.0) return 0;
  double deadline = rtt_ewma_us_ / uploaders_;
  // A saturated part window means upload bandwidth, not batch timing, is
  // the bottleneck: stretch the deadline so segments grow instead of
  // queueing more parts. TB stays the hard cap.
  const double occ = occupancy_.load(std::memory_order_relaxed);
  if (occ >= 1.0) deadline *= 1.0 + occ;
  return static_cast<std::uint64_t>(
      std::min(deadline, static_cast<double>(tb_us_)));
}

std::size_t AdaptiveBatchController::TargetBatch() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!have_rtt_ || !have_rate_) return 1;
  const double target = TargetLocked();
  if (target <= 1.0) return 1;
  if (target >= static_cast<double>(batch_cap_)) return batch_cap_;
  return static_cast<std::size_t>(target);
}

// ---------------------------------------------------------------------------
// CommitPipeline

CommitPipeline::CommitPipeline(ObjectStorePtr store,
                               std::shared_ptr<CloudView> view,
                               std::shared_ptr<Clock> clock,
                               const GinjaConfig& config,
                               std::shared_ptr<Envelope> envelope)
    : store_(std::move(store)),
      view_(std::move(view)),
      clock_(std::move(clock)),
      config_(config),
      envelope_(std::move(envelope)) {
  const int shard_count = std::max(1, config_.submit_shards);
  // Each ring must absorb a full S backlog plus a batch in flight; beyond
  // that Submit backpressures by spinning, which S-blocking normally
  // prevents from ever happening.
  const std::size_t ring_capacity = std::min<std::size_t>(
      std::max<std::size_t>(config_.safety + config_.batch + 64, 64), 65536);
  shards_.reserve(static_cast<std::size_t>(shard_count));
  for (int i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<MpscRing<Slot>>(ring_capacity));
  }
  reorder_.resize(1024);
  reorder_filled_.assign(1024, 0);
  if (config_.adaptive_batching) {
    adaptive_ = std::make_unique<AdaptiveBatchController>(
        config_.batch, config_.batch_timeout_us,
        std::max(1, config_.uploader_threads));
  }
  last_agg_time_us_ = clock_->NowMicros();
  coarse_now_us_.store(last_agg_time_us_, std::memory_order_release);
  if (config_.obs) {
    tracer_ = &config_.obs->tracer;
    RegisterMetrics();
  }
  if (config_.runtime) {
    // Fleet mode: no private pools. Upload jobs go to the runtime's DRR
    // scheduler (registered at Start), transfers run on the shared manager
    // billed to this account, and one thread-safe retry policy serves every
    // shared worker that picks up this tenant's jobs.
    account_ = std::make_shared<TransferAccount>(config_.tenant_id);
    fleet_retry_ = std::make_unique<RetryPolicy>(MakeTransferOptions(config_, 1),
                                                 &stats_.upload_retries);
    if (config_.streaming_commit) {
      stream_transfers_ = config_.runtime->transfers();
    }
  } else if (config_.streaming_commit) {
    stream_transfers_ = std::make_shared<TransferManager>(
        store_,
        MakeTransferOptions(
            config_,
            std::max(config_.uploader_threads, config_.transfer_concurrency)),
        clock_);
    if (config_.obs) {
      stream_transfers_->RegisterMetrics(&config_.obs->registry,
                                         "commit_stream");
    }
  }
}

CommitPipeline::~CommitPipeline() {
  if (config_.obs) config_.obs->registry.Unregister(this);
  // After a clean Stop() the only remaining work is background folded-tail
  // deletes queued on the stream transfer pool; destroying the members
  // drains them. Kill() here would cancel them for no benefit.
  if (!stopped_clean_.load(std::memory_order_acquire)) Kill();
  // Fleet mode: the shared manager and scheduler outlive this pipeline, so
  // quiesce everything that could call back into it. Stop()/Kill() already
  // deregistered the scheduler queue; WaitIdle covers operations still on
  // the shared pool (a clean stop's folded-tail deletes drain here, the
  // standalone analogue of destroying the private manager).
  if (sched_tenant_ != nullptr) {
    config_.runtime->scheduler().Deregister(sched_tenant_,
                                            /*discard_queued=*/true);
    sched_tenant_ = nullptr;
  }
  if (account_) account_->WaitIdle();
}

void CommitPipeline::RegisterMetrics() {
  MetricsRegistry& r = config_.obs->registry;
  r.RegisterCounter(this, "ginja_commit_writes_submitted_total", Labels(),
                    &stats_.writes_submitted);
  r.RegisterCounter(this, "ginja_commit_batches_uploaded_total", Labels(),
                    &stats_.batches_uploaded);
  r.RegisterCounter(this, "ginja_commit_objects_uploaded_total", Labels(),
                    &stats_.objects_uploaded);
  r.RegisterCounter(this, "ginja_commit_bytes_uploaded_total", Labels(),
                    &stats_.bytes_uploaded);
  r.RegisterCounter(this, "ginja_commit_blocked_waits_total", Labels(),
                    &stats_.blocked_waits);
  r.RegisterCounter(this, "ginja_commit_upload_retries_total", Labels(),
                    &stats_.upload_retries);
  r.RegisterCounter(this, "ginja_commit_batches_closed_full_total", Labels(),
                    &stats_.batches_closed_full);
  r.RegisterCounter(this, "ginja_commit_batches_closed_deadline_total", Labels(),
                    &stats_.batches_closed_deadline);
  r.RegisterCounter(this, "ginja_commit_streams_opened_total", Labels(),
                    &stats_.streams_opened);
  r.RegisterCounter(this, "ginja_commit_parts_uploaded_total", Labels(),
                    &stats_.parts_uploaded);
  r.RegisterCounter(this, "ginja_commit_tail_objects_uploaded_total", Labels(),
                    &stats_.tail_objects_uploaded);
  r.RegisterCounter(this, "ginja_commit_tail_objects_deleted_total", Labels(),
                    &stats_.tail_objects_deleted);
  r.RegisterCounter(this, "ginja_commit_writes_early_acked_total", Labels(),
                    &stats_.writes_early_acked);
  r.RegisterMeter(this, "ginja_commit_object_logical_bytes", Labels(),
                  &stats_.object_logical_bytes);
  r.RegisterHistogram(this, "ginja_commit_latency_us", Labels(),
                      &stats_.commit_latency_us);
  r.RegisterHistogram(this, "ginja_commit_put_first_byte_us", Labels(),
                      &stats_.put_first_byte_us);
  // -- DR exposure gauges (the paper's loss bound, live) ---------------------
  r.RegisterGauge(this, "ginja_rpo_exposure_writes", Labels(), [this] {
    const std::uint64_t completed =
        completed_count_.load(std::memory_order_acquire);
    const std::uint64_t returned =
        returned_count_.load(std::memory_order_acquire);
    // completed can transiently lead returned: a write may be acknowledged
    // before its own Submit call has returned.
    return completed >= returned ? 0.0
                                 : static_cast<double>(returned - completed);
  });
  r.RegisterGauge(this, "ginja_rpo_limit_writes", Labels(), [this] {
    return static_cast<double>(config_.safety);
  });
  r.RegisterGauge(this, "ginja_unconfirmed_writes", Labels(), [this] {
    return static_cast<double>(Unconfirmed());
  });
  r.RegisterGauge(this, "ginja_oldest_unacked_age_us", Labels(), [this] {
    const std::uint64_t oldest =
        oldest_pending_us_.load(std::memory_order_acquire);
    if (oldest == kNoOldest) return 0.0;
    const std::uint64_t now = coarse_now_us_.load(std::memory_order_acquire);
    return now > oldest ? static_cast<double>(now - oldest) : 0.0;
  });
  r.RegisterGauge(this, "ginja_wal_frontier_lsn", Labels(), [this] {
    return static_cast<double>(frontier_lsn_.load(std::memory_order_acquire));
  });
}

void CommitPipeline::Start() {
  threads_.emplace_back([this] { AggregatorLoop(); });
  if (config_.runtime) {
    // Fleet mode: uploads run on the runtime's shared worker pool, DRR-
    // scheduled across tenants; only the per-tenant control threads
    // (aggregator, unlocker) are private.
    sched_tenant_ = config_.runtime->scheduler().Register(config_.tenant_id);
  } else {
    for (int i = 0; i < config_.uploader_threads; ++i) {
      threads_.emplace_back([this, i] { UploaderLoop(i); });
    }
  }
  threads_.emplace_back([this] { UnlockerLoop(); });
}

void CommitPipeline::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lock(agg_mu_);
  }
  agg_cv_.notify_all();
  Drain();
  // Drain() returns at the ack frontier, but an early-acked batch is
  // acknowledged from its tail objects while the WAL object's Finish (and
  // the folded tails' deletes) are still in flight. A clean shutdown also
  // waits for every batch to retire — its object published — so no stream
  // is torn by the queue close below.
  {
    std::unique_lock<std::mutex> lock(block_mu_);
    unblock_cv_.wait(lock, [&] {
      return killed_.load(std::memory_order_acquire) ||
             batches_inflight_.load(std::memory_order_acquire) == 0;
    });
  }
  upload_queue_.Close();
  ack_queue_.Close();
  {
    std::lock_guard<std::mutex> lock(block_mu_);
  }
  unblock_cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  // Fleet: every batch retired means the scheduler queue is empty; a clean
  // deregistration just waits out any job still finishing on a shared
  // worker. After the aggregator joined, nothing can enqueue again.
  if (sched_tenant_ != nullptr) {
    config_.runtime->scheduler().Deregister(sched_tenant_,
                                            /*discard_queued=*/false);
    sched_tenant_ = nullptr;
  }
  stopped_clean_.store(true, std::memory_order_release);
}

void CommitPipeline::Kill() {
  if (killed_.exchange(true, std::memory_order_acq_rel)) return;
  // A kill with unconfirmed writes is the disaster the tracer's flight
  // recorder exists for: dump the last spans before abandoning them.
  if (Tracing() && Unconfirmed() > 0 && config_.obs) {
    config_.obs->DumpFlightRecorder("commit_kill");
  }
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(agg_mu_);
  }
  agg_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(block_mu_);
  }
  unblock_cv_.notify_all();
  upload_queue_.Close();
  ack_queue_.Close();
  // Abandon in-flight stream parts / tail PUTs; their callbacks fire with
  // ABORTED against the already-closed ack queue. Stop() deliberately does
  // NOT cancel — it drains. Fleet mode cancels only this tenant's account:
  // the shared manager keeps serving the other tenants.
  if (account_) {
    account_->Cancel();
  } else if (stream_transfers_) {
    stream_transfers_->Cancel();
  }
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  // Drop queued upload jobs unrun (the crash abandons them) and wait out
  // the ones a shared worker is already executing — they observe killed_
  // and bail at their next check. Must follow the aggregator join: a live
  // aggregator could enqueue into a deregistered (freed) tenant handle.
  if (sched_tenant_ != nullptr) {
    config_.runtime->scheduler().Deregister(sched_tenant_,
                                            /*discard_queued=*/true);
    sched_tenant_ = nullptr;
  }
}

std::uint64_t CommitPipeline::Unconfirmed() const {
  // Read completed first: between the two loads both counters can only
  // grow, so a stale completed count makes the estimate *larger* — the S
  // bound errs toward blocking, never toward extra loss.
  const std::uint64_t completed =
      completed_count_.load(std::memory_order_acquire);
  const std::uint64_t submitted = submit_seq_.load(std::memory_order_acquire);
  return submitted - completed;
}

bool CommitPipeline::ShouldBlock(std::uint64_t now_us) const {
  if (Unconfirmed() > config_.safety) return true;
  const std::uint64_t oldest = oldest_pending_us_.load(std::memory_order_acquire);
  return oldest != kNoOldest && now_us - oldest >= config_.safety_timeout_us;
}

std::size_t CommitPipeline::ShardOf(const WalWrite& write) const {
  // Same (file, page) always lands on the same shard, so per-page rewrite
  // streams stay FIFO within a shard; the sequencer provides the global
  // order anyway, this only spreads contention. Any mapping is correct, so
  // instead of hashing the whole file name we sample the bytes that vary
  // between WAL segments (length, tail, middle) — a handful of loads on
  // the submit hot path instead of a full string hash.
  std::size_t h = write.file.size();
  if (!write.file.empty()) {
    h = h * 131 + static_cast<unsigned char>(write.file.back());
    h = h * 131 + static_cast<unsigned char>(write.file[write.file.size() / 2]);
  }
  h ^= (write.offset >> 12) + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h % shards_.size();
}

void CommitPipeline::Submit(WalWrite write) {
  if (killed_.load(std::memory_order_acquire)) return;
  Slot slot;
  slot.write = std::move(write);
  std::uint64_t seq;
  bool block_fast;
  if (shards_.size() == 1) {
    // Single-lock baseline, reproducing the contention profile of the old
    // global-deque design line by line: one mutex covers the entire submit
    // body — the enqueue-time clock read, sequencing, enqueue, stats, the
    // aggregator wakeup, and the S/TS fast-path check with its own clock
    // read — and the aggregator holds the same mutex while it drains and
    // coalesces a batch, so submitters stall behind aggregation exactly as
    // they did behind the old locked std::map build.
    std::unique_lock<std::mutex> lock(legacy_mu_);
    slot.enqueue_us = clock_->NowMicros();
    seq = submit_seq_.fetch_add(1, std::memory_order_acq_rel);
    slot.seq = seq;
    while (!shards_[0]->TryPush(slot)) {
      if (killed_.load(std::memory_order_acquire)) return;
      // Drop the lock while yielding: draining the ring needs legacy_mu_,
      // so spinning with it held would deadlock when backlog > capacity.
      lock.unlock();
      std::this_thread::yield();
      lock.lock();
    }
    stats_.writes_submitted.Add();
    // Old behavior: notify under the lock on every over-threshold submit.
    if (seq + 1 - batched_count_.load(std::memory_order_relaxed) >=
        config_.batch) {
      agg_cv_.notify_one();
    }
    block_fast = ShouldBlock(clock_->NowMicros());
  } else {
    // Coarse enqueue stamp: see coarse_now_us_. Saves a clock read per
    // Submit; the error is bounded by one aggregator poll and biased old,
    // which only over-ages writes against the seconds-scale TS bound.
    slot.enqueue_us = coarse_now_us_.load(std::memory_order_relaxed);
    const std::size_t shard = ShardOf(slot.write);
    seq = submit_seq_.fetch_add(1, std::memory_order_acq_rel);
    slot.seq = seq;
    // Ring full = S-sized backlog on this shard; spin as backpressure. The
    // aggregator cannot stage past this seq until the push lands, so the
    // write is never lost, only delayed.
    while (!shards_[shard]->TryPush(slot)) {
      if (killed_.load(std::memory_order_acquire)) return;
      std::this_thread::yield();
    }
    stats_.writes_submitted.Add();

    // Wake the Aggregator only when a full batch is pending AND it is
    // parked; partial batches are picked up by its TB/adaptive poll.
    // Skipping the notify while it is awake keeps agg_mu_ off the submit
    // hot path — under a burst every thread would otherwise serialize on
    // it here.
    if (seq + 1 - batched_count_.load(std::memory_order_relaxed) >=
            config_.batch &&
        agg_idle_.load(std::memory_order_acquire)) {
      {
        std::lock_guard<std::mutex> lock(agg_mu_);
      }
      agg_cv_.notify_one();
    }
    // Alg. 2 lines 5-7 fast path, lock-free and reusing the enqueue
    // timestamp (TS is seconds-scale, the push is microseconds).
    block_fast = ShouldBlock(slot.enqueue_us);
  }

  // Block while S/TS would be violated. The slow path is event-driven (no
  // polling): while blocked, ShouldBlock can only flip to false through an
  // Unlocker completion, and every completion updates the counters *before*
  // signalling unblock_cv_ (with an empty block_mu_ critical section
  // ordering the two), so waiting without a timeout is safe. Time passing
  // alone never unblocks — it only ages the oldest write toward the TS
  // limit.
  if (block_fast) {
    std::unique_lock<std::mutex> lock(block_mu_);
    bool blocked = false;
    while (!killed_.load(std::memory_order_acquire) &&
           ShouldBlock(clock_->NowMicros())) {
      if (!blocked) {
        blocked = true;
        stats_.blocked_waits.Add();  // counted on entry: observable mid-stall
      }
      unblock_cv_.wait(lock);
    }
  }
  // The write is now "committed" as far as the DBMS can tell — this is the
  // instant it joins the RPO-exposure window (see ginja_rpo_exposure_writes).
  returned_count_.fetch_add(1, std::memory_order_release);
}

void CommitPipeline::Drain() {
  std::unique_lock<std::mutex> lock(block_mu_);
  unblock_cv_.wait(lock, [&] {
    return killed_.load(std::memory_order_acquire) || Unconfirmed() == 0;
  });
}

std::size_t CommitPipeline::PendingWrites() const {
  return static_cast<std::size_t>(Unconfirmed());
}

void CommitPipeline::PlaceInReorder(Slot slot) {
  if (slot.seq - reorder_base_ >= reorder_.size()) GrowReorder(slot.seq);
  const std::size_t idx = slot.seq & (reorder_.size() - 1);
  reorder_[idx] = std::move(slot);
  reorder_filled_[idx] = 1;
}

void CommitPipeline::GrowReorder(std::uint64_t seq) {
  std::size_t want = reorder_.size() * 2;
  while (want < seq - reorder_base_ + 1) want <<= 1;
  std::vector<Slot> old = std::move(reorder_);
  std::vector<char> old_filled = std::move(reorder_filled_);
  reorder_ = std::vector<Slot>(want);
  reorder_filled_.assign(want, 0);
  for (std::size_t i = 0; i < old.size(); ++i) {
    if (!old_filled[i]) continue;
    const std::size_t idx = old[i].seq & (want - 1);
    reorder_[idx] = std::move(old[i]);
    reorder_filled_[idx] = 1;
  }
}

std::size_t CommitPipeline::DrainShards() {
  Slot slot;
  for (auto& shard : shards_) {
    while (shard->TryPop(slot)) PlaceInReorder(std::move(slot));
  }
  // Stage the dense seq prefix: batch formation must see writes in global
  // submit order (byte-for-byte batch equivalence with the single queue),
  // so a write drained out of order parks in the window until the gap
  // before it fills.
  std::size_t newly = 0;
  while (true) {
    const std::size_t idx = reorder_base_ & (reorder_.size() - 1);
    if (!reorder_filled_[idx]) break;
    staged_.push_back(std::move(reorder_[idx]));
    reorder_filled_[idx] = 0;
    ++reorder_base_;
    ++newly;
  }
  if (newly > 0) {
    if (Tracing()) {
      // One clock read per drain, and only with the tracer on: the submit
      // hot path carries zero tracing cost, sampled writes get stamped here.
      const std::uint64_t now = clock_->NowMicros();
      for (std::size_t i = staged_.size() - newly; i < staged_.size(); ++i) {
        Slot& slot = staged_[i];
        if (!tracer_->Sampled(slot.seq)) continue;
        slot.traced = true;
        slot.staged_us = now;
        tracer_->Record(TraceStage::kSubmit, slot.seq, slot.enqueue_us, 0);
        tracer_->Record(TraceStage::kStaged, slot.seq, slot.enqueue_us,
                        now >= slot.enqueue_us ? now - slot.enqueue_us : 0);
      }
    }
    // Newly staged writes become TS-visible: publish the oldest pending
    // enqueue time. Writes still inside the rings are invisible to TS for
    // at most ~one poll interval, negligible against TS >= milliseconds.
    std::lock_guard<std::mutex> lock(window_mu_);
    for (std::size_t i = staged_.size() - newly; i < staged_.size(); ++i) {
      pending_times_.push_back(staged_[i].enqueue_us);
    }
    oldest_pending_us_.store(pending_times_.front(),
                             std::memory_order_release);
  }
  return newly;
}

void CommitPipeline::AggregatorLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(agg_mu_);
      agg_idle_.store(true, std::memory_order_release);
      agg_cv_.wait_for(lock, kPollInterval, [&] {
        return stopping_.load(std::memory_order_acquire) ||
               submit_seq_.load(std::memory_order_acquire) -
                       batched_count_.load(std::memory_order_relaxed) >=
                   config_.batch;
      });
      agg_idle_.store(false, std::memory_order_release);
    }
    if (killed_.load(std::memory_order_acquire)) return;
    // Single-lock baseline: the old design coalesced under the global
    // submit mutex, stalling every Submit for the duration of batch
    // formation. Reproduce that by holding legacy_mu_ across the drain and
    // the FormBatch calls. Sharded mode takes no submit-path lock here.
    std::unique_lock<std::mutex> legacy_lock(legacy_mu_, std::defer_lock);
    if (shards_.size() == 1) legacy_lock.lock();
    const std::size_t newly = DrainShards();
    const std::uint64_t now = clock_->NowMicros();
    coarse_now_us_.store(now, std::memory_order_release);
    if (adaptive_) {
      adaptive_->RecordArrivals(newly, now);
      if (config_.streaming_commit) {
        const std::size_t backlog =
            open_stream_ ? open_stream_->session->BacklogParts() : 0;
        adaptive_->NoteUploadState(
            static_cast<int>(backlog),
            static_cast<double>(backlog) /
                static_cast<double>(
                    std::max<std::size_t>(1, config_.stream_part_window)));
      } else {
        adaptive_->NoteUploadState(
            buffered_inflight_puts_.load(std::memory_order_relaxed), 0.0);
      }
    }
    if (config_.streaming_commit) {
      const bool stop_flush = stopping_.load(std::memory_order_acquire);
      // As in the buffered stop path: pick up writes that raced the stop
      // so the final flush sees everything submitted before it.
      if (stop_flush) DrainShards();
      StreamPass(now, stop_flush);
      if (stop_flush && staged_.empty() && !open_stream_) return;
      continue;
    }
    if (staged_.empty()) {
      if (stopping_.load(std::memory_order_acquire)) return;
      continue;
    }
    while (staged_.size() >= config_.batch) {
      FormBatch(config_.batch, now, /*closed_full=*/true);
    }
    if (!staged_.empty()) {
      const std::uint64_t deadline =
          adaptive_ ? adaptive_->CloseDeadlineUs() : config_.batch_timeout_us;
      const bool stop_flush = stopping_.load(std::memory_order_acquire);
      if (stop_flush) {
        // Stop() can land mid-pass: writes submitted before the stop but
        // after this pass's DrainShards are still in the shard queues.
        // Pick them up before the final flush so shutdown forms the same
        // full batches a quiescent stop would — batch formation stays
        // identical across shard counts even when Stop races this loop.
        DrainShards();
        while (staged_.size() >= config_.batch) {
          FormBatch(config_.batch, now, /*closed_full=*/true);
        }
      }
      if ((stop_flush || now - last_agg_time_us_ >= deadline) &&
          !staged_.empty()) {
        FormBatch(staged_.size(), now, /*closed_full=*/false);
      }
    }
  }
}

void CommitPipeline::FormBatch(std::size_t take, std::uint64_t now_us,
                               bool closed_full) {
  // Aggregate (Alg. 2 lines 12-13): coalesce rewrites of the same page —
  // last write wins — so only surviving pages are encoded (a B=1000 batch
  // usually collapses to a handful of pages). The reusable table replaces
  // a per-batch std::map: zero allocation at steady state.
  coalesce_.Begin(take);
  for (std::size_t i = 0; i < take; ++i) {
    const WalWrite& w = staged_[i].write;
    coalesce_.Upsert(w.file, w.offset, static_cast<std::uint32_t>(i));
  }
  survivors_.clear();
  coalesce_.ForEach(
      [&](std::string_view file, std::uint64_t offset, std::uint32_t index) {
        survivors_.push_back({file, offset, index});
      });
  // (file, offset) order reproduces the old sorted-map iteration exactly,
  // keeping object contents byte-identical to the previous design.
  std::sort(survivors_.begin(), survivors_.end(),
            [](const SurvivorRef& a, const SurvivorRef& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.offset < b.offset;
            });

  // Per-file runs become objects, split at the object-size limit. Entry
  // refs borrow the submitted writes' own buffers (moved, never copied)
  // and pipeline-lifetime interned names; the uploader encodes straight
  // from them.
  struct PendingObject {
    std::vector<FileEntryRef> entries;
    std::vector<Bytes> data;
    std::string_view file;
    std::uint64_t first_offset = 0;
    std::uint64_t max_lsn = 0;
  };
  std::vector<PendingObject> objects;
  std::size_t i = 0;
  while (i < survivors_.size()) {
    std::size_t j = i;
    std::uint64_t run_max_lsn = 0;
    while (j < survivors_.size() && survivors_[j].file == survivors_[i].file) {
      run_max_lsn = std::max(run_max_lsn,
                             staged_[survivors_[j].index].write.max_lsn);
      ++j;
    }
    const std::string_view file = names_.Intern(survivors_[i].file);
    objects.emplace_back();
    PendingObject* current = &objects.back();
    current->file = file;
    current->first_offset = survivors_[i].offset;
    current->max_lsn = run_max_lsn;  // splits cover the same WAL range
    std::size_t bytes = 0;
    for (std::size_t k = i; k < j; ++k) {
      Slot& slot = staged_[survivors_[k].index];
      if (!current->entries.empty() &&
          bytes + slot.write.data.size() > config_.max_object_bytes) {
        objects.emplace_back();
        current = &objects.back();
        current->file = file;
        current->first_offset = slot.write.offset;
        current->max_lsn = run_max_lsn;
        bytes = 0;
      }
      bytes += slot.write.data.size();
      current->entries.push_back(
          {file, slot.write.offset, View(slot.write.data)});
      current->data.push_back(std::move(slot.write.data));
    }
    i = j;
  }
  // Order objects by the WAL-stream range they cover so timestamps stay
  // monotone in LSN (the prefix-GC invariant).
  std::stable_sort(objects.begin(), objects.end(),
                   [](const PendingObject& a, const PendingObject& b) {
                     return a.max_lsn < b.max_lsn;
                   });

  // The batch's trace id is its first sampled write; every object of the
  // batch carries it, so the decomposition sees each object's PUT.
  std::uint64_t trace_seq = kNoTrace;
  if (Tracing()) {
    for (std::size_t k = 0; k < take; ++k) {
      if (!staged_[k].traced) continue;
      tracer_->Record(TraceStage::kBatchClose, staged_[k].seq,
                      staged_[k].staged_us,
                      now_us >= staged_[k].staged_us
                          ? now_us - staged_[k].staged_us
                          : 0);
      if (trace_seq == kNoTrace) trace_seq = staged_[k].seq;
    }
  }

  Batch batch;
  batch.seq = next_batch_seq_++;
  batch.item_count = take;
  batch.objects_total = objects.size();
  for (const auto& obj : objects) {
    batch.max_lsn = std::max(batch.max_lsn, obj.max_lsn);
  }
  {
    std::lock_guard<std::mutex> lock(window_mu_);
    batches_.push_back(batch);
  }
  batches_inflight_.fetch_add(1, std::memory_order_release);
  batched_count_.fetch_add(take, std::memory_order_release);
  (closed_full ? stats_.batches_closed_full : stats_.batches_closed_deadline)
      .Add();

  for (auto& obj : objects) {
    WalObjectId id;
    id.ts = view_->NextWalTs();
    id.filename = std::string(obj.file);
    id.offset = obj.first_offset;
    id.max_lsn = obj.max_lsn;

    UploadJob job;
    job.batch_seq = batch.seq;
    job.name = id.Encode();
    job.entries = std::move(obj.entries);
    job.data = std::move(obj.data);
    job.nonce = id.ts;
    job.trace_seq = trace_seq;
    job.close_us = now_us;
    EnqueueUpload(std::move(job));
  }
  staged_.erase(staged_.begin(),
                staged_.begin() + static_cast<std::ptrdiff_t>(take));
  last_agg_time_us_ = now_us;
}

void CommitPipeline::StreamPass(std::uint64_t now_us, bool stop_flush) {
  // One stream == one batch == one WAL object, filled segment by segment.
  // A full stream_segment_writes' worth of staged writes seals a segment
  // immediately (capped at the B remaining in the batch); the TB/adaptive
  // deadline or a stop flushes a partial one. The stream closes — its
  // object gets its final name and publishes — at B writes, at the object
  // size limit, or on deadline/stop; leftover staged writes then start the
  // next stream on the following loop iteration.
  const std::size_t seg_writes =
      std::max<std::size_t>(1, config_.stream_segment_writes);
  const std::uint64_t deadline =
      adaptive_ ? adaptive_->CloseDeadlineUs() : config_.batch_timeout_us;
  const bool deadline_hit = now_us - last_agg_time_us_ >= deadline;
  while (true) {
    const std::size_t batch_remaining =
        config_.batch - (open_stream_ ? open_stream_->writes : 0);
    const std::size_t seg_target = std::min(seg_writes, batch_remaining);
    if (staged_.size() >= seg_target) {
      if (!open_stream_) OpenStream(now_us);
      SealSegment(seg_target, now_us);
    } else if (!staged_.empty() && (stop_flush || deadline_hit)) {
      if (!open_stream_) OpenStream(now_us);
      SealSegment(std::min(staged_.size(), batch_remaining), now_us);
    } else {
      if (open_stream_ && (stop_flush || deadline_hit)) {
        CloseStream(now_us, /*closed_full=*/false);
      }
      return;
    }
    if (open_stream_ && (open_stream_->writes >= config_.batch ||
                         open_stream_->logical_bytes >= config_.max_object_bytes)) {
      CloseStream(now_us, /*closed_full=*/true);
    }
  }
}

void CommitPipeline::OpenStream(std::uint64_t now_us) {
  open_stream_ = std::make_unique<OpenStreamState>();
  open_stream_->ts = view_->NextWalTs();
  open_stream_->batch_seq = next_batch_seq_++;
  open_stream_->opened_us = now_us;
  open_stream_->session = stream_transfers_->BeginStream(
      StreamRoute(), "WALSTREAM/" + std::to_string(open_stream_->ts));
  // Part 0 is the GNJ3 prologue: every prefix of the stream is a valid
  // (possibly torn) container from the first bytes on.
  open_stream_->session->AppendPart(0, Envelope::StreamPrologue());
  Batch batch;
  batch.seq = open_stream_->batch_seq;
  batch.objects_total = 1;
  batch.open = true;
  {
    std::lock_guard<std::mutex> lock(window_mu_);
    batches_.push_back(std::move(batch));
  }
  batches_inflight_.fetch_add(1, std::memory_order_release);
  stats_.streams_opened.Add();
}

void CommitPipeline::SealSegment(std::size_t take, std::uint64_t now_us) {
  // Coalesce within the segment only (last write to a page wins, as in
  // FormBatch); a page rewritten in a *later* segment of the same stream
  // survives twice, and recovery's in-order apply makes the later copy
  // win — same end state, slightly more bytes.
  coalesce_.Begin(take);
  for (std::size_t i = 0; i < take; ++i) {
    const WalWrite& w = staged_[i].write;
    coalesce_.Upsert(w.file, w.offset, static_cast<std::uint32_t>(i));
  }
  survivors_.clear();
  coalesce_.ForEach(
      [&](std::string_view file, std::uint64_t offset, std::uint32_t index) {
        survivors_.push_back({file, offset, index});
      });
  std::sort(survivors_.begin(), survivors_.end(),
            [](const SurvivorRef& a, const SurvivorRef& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.offset < b.offset;
            });

  UploadJob job;
  job.kind = UploadJob::Kind::kStreamSegment;
  job.batch_seq = open_stream_->batch_seq;
  job.session = open_stream_->session;
  job.seg_index = open_stream_->next_seg;
  job.nonce =
      kStreamNonceTag | (open_stream_->ts << 16) | open_stream_->next_seg;
  job.ts = open_stream_->ts;
  job.stream_open_us = open_stream_->opened_us;
  job.close_us = now_us;

  Lsn seg_lsn = 0;
  for (const SurvivorRef& s : survivors_) {
    Slot& slot = staged_[s.index];
    const std::string_view file = names_.Intern(s.file);
    seg_lsn = std::max(seg_lsn, slot.write.max_lsn);
    open_stream_->logical_bytes += slot.write.data.size();
    job.entries.push_back({file, slot.write.offset, View(slot.write.data)});
    job.data.push_back(std::move(slot.write.data));
  }
  if (open_stream_->next_seg == 0) {
    open_stream_->first_file = std::string(survivors_.front().file);
    open_stream_->first_offset = survivors_.front().offset;
  }
  open_stream_->max_lsn = std::max(open_stream_->max_lsn, seg_lsn);
  job.seg_max_lsn = open_stream_->max_lsn;  // cumulative: monotone in seg

  if (Tracing()) {
    for (std::size_t k = 0; k < take; ++k) {
      if (!staged_[k].traced) continue;
      tracer_->Record(TraceStage::kBatchClose, staged_[k].seq,
                      staged_[k].staged_us,
                      now_us >= staged_[k].staged_us
                          ? now_us - staged_[k].staged_us
                          : 0);
      if (open_stream_->trace_seq == kNoTrace) {
        open_stream_->trace_seq = staged_[k].seq;
      }
    }
  }
  job.trace_seq = open_stream_->trace_seq;

  {
    std::lock_guard<std::mutex> lock(window_mu_);
    for (auto it = batches_.rbegin(); it != batches_.rend(); ++it) {
      if (it->seq != open_stream_->batch_seq) continue;
      it->item_count += take;
      it->seg_writes.push_back(static_cast<std::uint32_t>(take));
      it->seg_max_lsn.push_back(job.seg_max_lsn);
      it->seg_tail_acked.push_back(0);
      break;
    }
  }
  batched_count_.fetch_add(take, std::memory_order_release);
  open_stream_->writes += take;
  ++open_stream_->next_seg;
  EnqueueUpload(std::move(job));
  staged_.erase(staged_.begin(),
                staged_.begin() + static_cast<std::ptrdiff_t>(take));
}

void CommitPipeline::CloseStream(std::uint64_t now_us, bool closed_full) {
  // Only now is max_lsn final, so only now can the object be named; the
  // session publishes under it once every part is durable.
  WalObjectId id;
  id.ts = open_stream_->ts;
  id.filename = open_stream_->first_file;
  id.offset = open_stream_->first_offset;
  id.max_lsn = open_stream_->max_lsn;

  UploadJob job;
  job.kind = UploadJob::Kind::kStreamFinish;
  job.batch_seq = open_stream_->batch_seq;
  job.session = open_stream_->session;
  job.name = id.Encode();
  job.total_parts = open_stream_->next_seg + 1;  // + the prologue part
  job.ts = open_stream_->ts;
  job.seg_max_lsn = open_stream_->max_lsn;
  job.trace_seq = open_stream_->trace_seq;
  job.close_us = now_us;
  job.stream_open_us = open_stream_->opened_us;
  {
    std::lock_guard<std::mutex> lock(window_mu_);
    for (auto it = batches_.rbegin(); it != batches_.rend(); ++it) {
      if (it->seq != open_stream_->batch_seq) continue;
      it->open = false;
      it->max_lsn = open_stream_->max_lsn;
      break;
    }
  }
  (closed_full ? stats_.batches_closed_full : stats_.batches_closed_deadline)
      .Add();
  EnqueueUpload(std::move(job));
  open_stream_.reset();
  last_agg_time_us_ = now_us;
}

bool CommitPipeline::SleepInterruptible(std::uint64_t micros) {
  while (micros > 0) {
    if (killed_.load(std::memory_order_acquire)) return false;
    const std::uint64_t slice = std::min(micros, kSleepSliceUs);
    clock_->SleepMicros(slice);
    micros -= slice;
  }
  return !killed_.load(std::memory_order_acquire);
}

void CommitPipeline::UploaderLoop(int index) {
  // Each uploader draws backoffs from the shared RetryPolicy schedule with
  // its own decorrelated jitter stream, and reuses its framing/envelope
  // buffers across jobs (EncodeInto clears but keeps capacity), so a
  // steady-state uploader stops allocating altogether.
  TransferOptions retry_options = MakeTransferOptions(config_, 1);
  retry_options.seed += kSeedStride * static_cast<std::uint64_t>(index + 1);
  RetryPolicy retry(retry_options, &stats_.upload_retries);
  Bytes framing;
  Bytes enveloped;
  while (auto job = upload_queue_.Take()) {
    ExecuteUploadJob(std::move(*job), retry, framing, enveloped);
  }
}

void CommitPipeline::EnqueueUpload(UploadJob job) {
  if (sched_tenant_ == nullptr) {
    upload_queue_.Put(std::move(job));
    return;
  }
  // Fleet: the DRR cost is the job's logical payload bytes — what the PUT
  // path actually pays for. Stream-finish jobs carry no payload and weigh
  // the minimum. Boxed because std::function requires a copyable target
  // and the job owns the write buffers (moved, never copied).
  std::size_t cost = 0;
  for (const Bytes& d : job.data) cost += d.size();
  auto boxed = std::make_shared<UploadJob>(std::move(job));
  config_.runtime->scheduler().Enqueue(
      sched_tenant_, cost, [this, boxed](UploadScratch& scratch) {
        ExecuteUploadJob(std::move(*boxed), *fleet_retry_, scratch.framing,
                         scratch.enveloped);
      });
}

void CommitPipeline::ExecuteUploadJob(UploadJob job, RetryPolicy& retry,
                                      Bytes& framing, Bytes& enveloped) {
  if (job.kind == UploadJob::Kind::kStreamSegment) {
    UploadStreamSegment(std::move(job), framing, enveloped);
    return;
  }
  if (job.kind == UploadJob::Kind::kStreamFinish) {
    FinishStream(std::move(job));
    return;
  }
  const bool traced = job.trace_seq != kNoTrace && Tracing();
  std::uint64_t t_encode = 0;
  if (traced) {
    t_encode = clock_->NowMicros();
    tracer_->Record(TraceStage::kEncodeQueue, job.trace_seq, job.close_us,
                    t_encode >= job.close_us ? t_encode - job.close_us : 0);
  }
  const PayloadView payload = EncodeEntriesView(job.entries, framing);
  stats_.object_logical_bytes.Record(static_cast<double>(payload.size()));
  envelope_->EncodeInto(payload, job.nonce, enveloped);
  if (traced) {
    const std::uint64_t t_done = clock_->NowMicros();
    tracer_->Record(TraceStage::kEncode, job.trace_seq, t_encode,
                    t_done - t_encode);
  }
  bool uploaded = false;
  std::uint64_t first_attempt_us = 0;
  std::uint64_t put_end_us = 0;
  Status last_status = Status::Ok();
  buffered_inflight_puts_.fetch_add(1, std::memory_order_relaxed);
  for (int attempt = 1; attempt <= retry.max_attempts(); ++attempt) {
    const std::uint64_t started = clock_->NowMicros();
    if (attempt == 1) first_attempt_us = started;
    Status st = store_->Put(job.name, View(enveloped));
    if (st.ok()) {
      if (adaptive_ || traced) put_end_us = clock_->NowMicros();
      if (adaptive_) adaptive_->RecordPutRtt(put_end_us - started);
      uploaded = true;
      break;
    }
    last_status = st;
    if (killed_.load(std::memory_order_acquire) ||
        attempt >= retry.max_attempts() ||
        !RetryPolicy::Retryable(st.code())) {
      break;
    }
    if (!SleepInterruptible(retry.NextBackoffUs(attempt))) break;
  }
  buffered_inflight_puts_.fetch_sub(1, std::memory_order_relaxed);
  if (uploaded) {
    stats_.objects_uploaded.Add();
    stats_.bytes_uploaded.Add(enveloped.size());
    if (auto id = WalObjectId::Decode(job.name)) view_->AddWal(*id);
    // kPut covers first attempt → success, retries and backoff included:
    // it decomposes outage pain, not just the happy-path round-trip.
    if (traced) {
      tracer_->Record(TraceStage::kPut, job.trace_seq, first_attempt_us,
                      put_end_us - first_attempt_us);
    }
  } else if (!killed_.load(std::memory_order_acquire)) {
    // A permanently failed upload outside a kill breaks the recoverable
    // frontier for good — worth a structured record, not a silent drop.
    Log(LogLevel::kError, "commit", "upload permanently failed",
        {{"object", job.name}, {"status", last_status.ToString()}});
  }
  // Acknowledge even on permanent failure so Stop() can complete — but a
  // failed ack freezes the recoverable frontier (UnlockerLoop), so no
  // checkpoint can ever claim WAL coverage across the gap.
  Ack ack;
  ack.batch_seq = job.batch_seq;
  ack.uploaded = uploaded;
  // kAck only makes sense off a successful PUT's end time.
  ack.trace_seq = (traced && uploaded) ? job.trace_seq : kNoTrace;
  ack.put_end_us = put_end_us;
  ack_queue_.ForcePut(std::move(ack));
}

void CommitPipeline::UploadStreamSegment(UploadJob job, Bytes& framing,
                                         Bytes& enveloped) {
  const bool traced = job.trace_seq != kNoTrace && Tracing();
  std::uint64_t t_encode = 0;
  if (traced) {
    t_encode = clock_->NowMicros();
    tracer_->Record(TraceStage::kEncodeQueue, job.trace_seq, job.close_us,
                    t_encode >= job.close_us ? t_encode - job.close_us : 0);
  }
  const PayloadView payload = EncodeEntriesView(job.entries, framing);
  stats_.object_logical_bytes.Record(static_cast<double>(payload.size()));
  envelope_->EncodeInto(payload, job.nonce, enveloped);
  if (traced) {
    const std::uint64_t t_done = clock_->NowMicros();
    tracer_->Record(TraceStage::kEncode, job.trace_seq, t_encode,
                    t_done - t_encode);
  }

  // Bounded run-ahead: wait while the stream already has a full window of
  // parts staged or in flight. Progress comes from stream_transfers_'
  // workers, so polling here cannot deadlock; a failed session drains its
  // backlog, which also releases this wait.
  while (job.session->BacklogParts() >= config_.stream_part_window) {
    if (killed_.load(std::memory_order_acquire)) return;
    clock_->SleepMicros(kWindowPollUs);
  }

  // Early acks: PUT the segment's envelope as replicated tail objects. The
  // segment's writes acknowledge once every replica lands (the unlocker
  // still enforces the consecutive-segment rule); any failed tail simply
  // leaves the writes to ack with the finished object instead.
  if (config_.early_ack) {
    const int replicas = std::max(1, config_.tail_replicas);
    auto remaining = std::make_shared<std::atomic<int>>(replicas);
    auto failed = std::make_shared<std::atomic<bool>>(false);
    for (int r = 0; r < replicas; ++r) {
      TailObjectId tid;
      tid.ts = job.ts;
      tid.seg = job.seg_index;
      tid.replica = static_cast<std::uint32_t>(r);
      tid.max_lsn = job.seg_max_lsn;
      stream_transfers_->PutAsyncCb(
          StreamRoute(), tid.Encode(), Bytes(enveloped),
          [this, tid, remaining, failed, seq = job.batch_seq, traced,
           trace_seq = job.trace_seq, close_us = job.close_us](Status st) {
            if (st.ok()) {
              view_->AddTail(tid);
              stats_.tail_objects_uploaded.Add();
              if (tid.replica == 0 && traced && Tracing()) {
                const std::uint64_t now = clock_->NowMicros();
                tracer_->Record(TraceStage::kTailPut, trace_seq, close_us,
                                now >= close_us ? now - close_us : 0);
              }
            } else {
              failed->store(true, std::memory_order_release);
            }
            if (remaining->fetch_sub(1, std::memory_order_acq_rel) == 1 &&
                !failed->load(std::memory_order_acquire)) {
              Ack ack;
              ack.kind = Ack::Kind::kTailSeg;
              ack.batch_seq = seq;
              ack.seg_index = tid.seg;
              ack_queue_.ForcePut(std::move(ack));
            }
          });
    }
  }

  Bytes part;
  Envelope::AppendStreamSegment(part, View(enveloped));
  const std::uint32_t part_bytes = static_cast<std::uint32_t>(part.size());
  const std::uint64_t submit_us = clock_->NowMicros();
  job.session->AppendPart(
      job.seg_index + 1, std::move(part),
      [this, seg = job.seg_index, traced, trace_seq = job.trace_seq,
       close_us = job.close_us, open_us = job.stream_open_us, submit_us,
       part_bytes](Status st) {
        // A failure here permanently fails the session; the finish
        // callback reports it through the object ack.
        if (!st.ok()) return;
        const std::uint64_t now = clock_->NowMicros();
        stats_.parts_uploaded.Add();
        stats_.bytes_uploaded.Add(part_bytes);
        if (adaptive_) adaptive_->RecordPutRtt(now - submit_us);
        if (seg == 0) {
          stats_.put_first_byte_us.Record(
              static_cast<double>(now >= open_us ? now - open_us : 0));
        }
        if (traced && Tracing()) {
          tracer_->Record(TraceStage::kPartPut, trace_seq, close_us,
                          now >= close_us ? now - close_us : 0);
          if (seg == 0) {
            tracer_->Record(TraceStage::kPutFirstByte, trace_seq, open_us,
                            now >= open_us ? now - open_us : 0);
          }
        }
      });
}

void CommitPipeline::FinishStream(UploadJob job) {
  const bool traced = job.trace_seq != kNoTrace && Tracing();
  auto session = job.session;
  auto done = [this, name = job.name, seq = job.batch_seq, ts = job.ts,
               traced, trace_seq = job.trace_seq,
               close_us = job.close_us](Status st) {
    const std::uint64_t now = clock_->NowMicros();
    if (st.ok()) {
      stats_.objects_uploaded.Add();
      if (auto id = WalObjectId::Decode(name)) view_->AddWal(*id);
      // kPut for a streamed object covers close -> published: the part
      // uploads overlapped the batch fill, only the tail is exposed.
      if (traced && Tracing()) {
        tracer_->Record(TraceStage::kPut, trace_seq, close_us,
                        now >= close_us ? now - close_us : 0);
      }
      // The folded object supersedes this ts's tails; delete them in the
      // background. A missed delete is re-swept by checkpoint GC.
      for (const TailObjectId& tail : view_->TailsForTs(ts)) {
        stream_transfers_->DeleteAsyncCb(StreamRoute(), tail.Encode(),
                                         [this, tail](Status dst) {
                                           if (!dst.ok()) return;
                                           view_->RemoveTail(tail);
                                           stats_.tail_objects_deleted.Add();
                                         });
      }
    } else if (!killed_.load(std::memory_order_acquire)) {
      Log(LogLevel::kError, "commit", "stream upload permanently failed",
          {{"object", name}, {"status", st.ToString()}});
    }
    // Acknowledge even on failure so Stop() can complete; a failed ack
    // freezes the recoverable frontier exactly like the buffered path.
    Ack ack;
    ack.batch_seq = seq;
    ack.uploaded = st.ok();
    ack.trace_seq = (traced && st.ok()) ? trace_seq : kNoTrace;
    ack.put_end_us = now;
    ack_queue_.ForcePut(std::move(ack));
  };
  session->Finish(job.total_parts, std::move(job.name), std::move(done));
}

void CommitPipeline::UnlockerLoop() {
  while (auto ack = ack_queue_.Take()) {
    const std::uint64_t now = clock_->NowMicros();
    coarse_now_us_.store(now, std::memory_order_release);
    bool advanced = false;
    std::uint64_t completed = 0;
    {
      std::lock_guard<std::mutex> lock(window_mu_);
      if (ack->kind == Ack::Kind::kObject) {
        if (!ack->uploaded) frontier_broken_.store(true);
        for (auto& batch : batches_) {
          if (batch.seq == ack->batch_seq) {
            ++batch.objects_acked;
            break;
          }
        }
      } else {
        // kTailSeg: the segment's tail objects all landed. A tail ack for
        // an already-retired batch (its object finished first) finds
        // nothing and is dropped.
        for (auto& batch : batches_) {
          if (batch.seq == ack->batch_seq) {
            if (ack->seg_index < batch.seg_tail_acked.size()) {
              batch.seg_tail_acked[ack->seg_index] = 1;
            }
            break;
          }
        }
      }
      // Remove completed batches from the head only — this is the
      // consecutive-timestamp rule that bounds loss to S despite parallel
      // out-of-order uploads (Alg. 2 lines 19-22). A streamed batch never
      // retires while its stream is still open.
      while (!batches_.empty() && !batches_.front().open &&
             batches_.front().objects_acked >= batches_.front().objects_total) {
        const std::size_t n =
            batches_.front().item_count - batches_.front().writes_completed;
        assert(pending_times_.size() >= n);
        for (std::size_t i = 0; i < n; ++i) {
          stats_.commit_latency_us.Record(
              static_cast<double>(now - pending_times_.front()));
          pending_times_.pop_front();
        }
        completed += n;
        // The recoverable WAL frontier advances only with the consecutive
        // prefix of *successfully* acknowledged batches.
        if (!frontier_broken_.load() &&
            batches_.front().max_lsn > frontier_lsn_.load()) {
          frontier_lsn_.store(batches_.front().max_lsn,
                              std::memory_order_release);
          advanced = true;
        }
        batches_.pop_front();
        batches_inflight_.fetch_sub(1, std::memory_order_release);
        stats_.batches_uploaded.Add();
      }
      // Early acks retire the *head* batch's dense acked-segment prefix
      // before its object finishes. Head-only and prefix-only, so this is
      // still the consecutive rule — the loss bound S is untouched, acks
      // just arrive a finish round-trip sooner. The frontier may advance
      // to the prefix's cumulative max_lsn: those segments are recoverable
      // from their tail objects.
      if (config_.early_ack && !batches_.empty()) {
        Batch& head = batches_.front();
        while (head.tail_prefix < head.seg_tail_acked.size() &&
               head.seg_tail_acked[head.tail_prefix]) {
          ++head.tail_prefix;
        }
        std::size_t prefix_writes = 0;
        for (std::uint32_t s = 0; s < head.tail_prefix; ++s) {
          prefix_writes += head.seg_writes[s];
        }
        if (prefix_writes > head.writes_completed) {
          const std::size_t n = prefix_writes - head.writes_completed;
          assert(pending_times_.size() >= n);
          for (std::size_t i = 0; i < n; ++i) {
            stats_.commit_latency_us.Record(
                static_cast<double>(now - pending_times_.front()));
            pending_times_.pop_front();
          }
          head.writes_completed = prefix_writes;
          completed += n;
          stats_.writes_early_acked.Add(n);
          if (!frontier_broken_.load() &&
              head.seg_max_lsn[head.tail_prefix - 1] > frontier_lsn_.load()) {
            frontier_lsn_.store(head.seg_max_lsn[head.tail_prefix - 1],
                                std::memory_order_release);
            advanced = true;
          }
        }
      }
      oldest_pending_us_.store(
          pending_times_.empty() ? kNoOldest : pending_times_.front(),
          std::memory_order_release);
    }
    if (completed > 0) {
      completed_count_.fetch_add(completed, std::memory_order_release);
    }
    if (ack->trace_seq != kNoTrace && Tracing()) {
      tracer_->Record(TraceStage::kAck, ack->trace_seq, ack->put_end_us,
                      now >= ack->put_end_us ? now - ack->put_end_us : 0);
      if (advanced) {
        tracer_->Record(TraceStage::kFrontier, ack->trace_seq, now, 0);
      }
    }
    // Empty critical section: orders the counter updates above before the
    // notify, so a Submit that just evaluated ShouldBlock under block_mu_
    // cannot miss this wakeup.
    {
      std::lock_guard<std::mutex> lock(block_mu_);
    }
    unblock_cv_.notify_all();
    // Off-lock: the listener takes the checkpoint pipeline's mutex.
    if (advanced && frontier_listener_) frontier_listener_();
  }
}

}  // namespace ginja
