#include "ginja/checkpoint_pipeline.h"

#include <algorithm>
#include <deque>
#include <future>
#include <map>
#include <utility>

#include "ginja/fleet_runtime.h"
#include "obs/log.h"

namespace ginja {

CheckpointPipeline::CheckpointPipeline(ObjectStorePtr store,
                                       std::shared_ptr<CloudView> view,
                                       std::shared_ptr<Clock> clock,
                                       const GinjaConfig& config,
                                       std::shared_ptr<Envelope> envelope,
                                       VfsPtr local_vfs, DbLayout layout)
    : store_(std::move(store)),
      view_(std::move(view)),
      clock_(std::move(clock)),
      config_(config),
      envelope_(std::move(envelope)),
      local_vfs_(std::move(local_vfs)),
      layout_(layout) {
  if (config_.runtime) {
    // Fleet mode: part PUTs and GC deletes run on the runtime's shared
    // manager (which carries its own "fleet" metrics), billed to this
    // tenant's account.
    transfer_ = config_.runtime->transfers();
    account_ = std::make_shared<TransferAccount>(config_.tenant_id);
  } else {
    transfer_ = std::make_shared<TransferManager>(
        store_, MakeTransferOptions(config_, config_.transfer_concurrency),
        clock_);
    if (config_.obs) {
      transfer_->RegisterMetrics(&config_.obs->registry, "checkpoint");
    }
  }
  if (config_.obs) {
    tracer_ = &config_.obs->tracer;
    RegisterMetrics();
  }
}

CheckpointPipeline::~CheckpointPipeline() {
  if (config_.obs) config_.obs->registry.Unregister(this);
  Kill();
  // Fleet: the shared manager outlives this pipeline; wait out any of this
  // account's operations still on the pool (Kill cancelled them, so queued
  // ones fail fast) before members they reference are destroyed.
  if (account_) account_->WaitIdle();
}

void CheckpointPipeline::RegisterMetrics() {
  MetricsRegistry& r = config_.obs->registry;
  r.RegisterCounter(this, "ginja_checkpoint_checkpoints_uploaded_total", Labels(),
                    &stats_.checkpoints_uploaded);
  r.RegisterCounter(this, "ginja_checkpoint_dumps_uploaded_total", Labels(),
                    &stats_.dumps_uploaded);
  r.RegisterCounter(this, "ginja_checkpoint_db_objects_uploaded_total", Labels(),
                    &stats_.db_objects_uploaded);
  r.RegisterCounter(this, "ginja_checkpoint_bytes_uploaded_total", Labels(),
                    &stats_.bytes_uploaded);
  r.RegisterCounter(this, "ginja_gc_wal_objects_deleted_total", Labels(),
                    &stats_.wal_objects_deleted);
  r.RegisterCounter(this, "ginja_gc_wal_tails_deleted_total", Labels(),
                    &stats_.wal_tails_deleted);
  r.RegisterCounter(this, "ginja_gc_db_objects_deleted_total", Labels(),
                    &stats_.db_objects_deleted);
  r.RegisterGauge(this, "ginja_checkpoint_inflight_jobs", Labels(), [this] {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<double>(inflight_jobs_);
  });
}

void CheckpointPipeline::Start() {
  thread_ = std::thread([this] { CheckpointerLoop(); });
}

void CheckpointPipeline::Stop() {
  queue_.WaitEmpty();
  queue_.Close();
  if (thread_.joinable()) thread_.join();
}

void CheckpointPipeline::Kill() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    killed_ = true;
  }
  idle_cv_.notify_all();
  frontier_cv_.notify_all();
  // Abort queued/retrying transfers so the checkpointer's future waits
  // resolve and the thread can observe killed_. On a shared fleet manager
  // only this tenant's account is cancelled; other tenants keep running.
  if (account_) {
    account_->Cancel();
  } else {
    transfer_->Cancel();
  }
  queue_.Close();
  if (thread_.joinable()) thread_.join();
}

void CheckpointPipeline::NotifyFrontier() {
  // Empty critical section: fences against the checkpointer evaluating its
  // wait predicate, so an advance between "predicate false" and "wait"
  // cannot lose the wakeup.
  { std::lock_guard<std::mutex> lock(mu_); }
  frontier_cv_.notify_all();
}

void CheckpointPipeline::OnCheckpointBegin() {
  std::lock_guard<std::mutex> lock(mu_);
  if (in_checkpoint_) return;
  in_checkpoint_ = true;
  collected_.clear();
  // Alg. 3 line 5: the DB object's timestamp is the last WAL-object ts
  // assigned before the checkpoint began.
  checkpoint_ts_ = view_->LastAssignedWalTs().value_or(0);
}

bool CheckpointPipeline::InCheckpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_checkpoint_;
}

void CheckpointPipeline::AddWrite(FileEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  collected_.push_back(std::move(entry));
}

std::uint64_t CheckpointPipeline::LocalDbSizeBytes() const {
  auto files = local_vfs_->ListFiles("");
  if (!files.ok()) return 0;
  std::uint64_t total = 0;
  for (const auto& path : *files) {
    if (layout_.Classify(path, 0) == FileKind::kWalSegment &&
        layout_.flavor == DbFlavor::kPostgres) {
      continue;  // pg_xlog segments are not database files
    }
    if (layout_.flavor == DbFlavor::kMySql && path.starts_with("ib_logfile")) {
      continue;  // the redo log (header aside) is not database data
    }
    auto size = local_vfs_->FileSize(path);
    if (size.ok()) total += *size;
  }
  return total;
}

std::vector<FileEntry> CheckpointPipeline::BuildDumpEntries() const {
  // Paper §5.3: dumps contain every relevant database file except the WAL
  // segments. For MySQL the checkpoint header lives inside ib_logfile0, so
  // its header region is added explicitly.
  std::vector<FileEntry> entries;
  auto files = local_vfs_->ListFiles("");
  if (!files.ok()) return entries;
  for (const auto& path : *files) {
    if (layout_.flavor == DbFlavor::kPostgres && path.starts_with("pg_xlog/")) {
      continue;
    }
    if (layout_.flavor == DbFlavor::kMySql && path.starts_with("ib_logfile")) {
      if (path == "ib_logfile0") {
        auto header = local_vfs_->Read(
            path, 0, layout_.wal_header_pages * layout_.wal_page_size);
        if (header.ok() && !header->empty()) {
          entries.push_back({path, 0, std::move(*header)});
        }
      }
      continue;
    }
    auto content = local_vfs_->ReadAll(path);
    if (content.ok()) entries.push_back({path, 0, std::move(*content)});
  }
  return entries;
}

void CheckpointPipeline::OnCheckpointEnd(Lsn redo_lsn, Lsn wal_frontier) {
  DbObjectJob job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!in_checkpoint_) return;
    in_checkpoint_ = false;
    job.ts = checkpoint_ts_;
    job.redo_lsn = redo_lsn;
    job.wal_frontier = wal_frontier;
    job.entries = std::move(collected_);
    collected_.clear();
  }

  // Dump decision (Alg. 3 lines 9–13): when the DB objects in the cloud
  // reach `dump_threshold` × the local database size, replace them all.
  const std::uint64_t local_size = LocalDbSizeBytes();
  const bool need_dump =
      local_size > 0 &&
      static_cast<double>(view_->TotalDbBytes()) >=
          config_.dump_threshold * static_cast<double>(local_size);
  if (need_dump || view_->DbObjects().empty()) {
    // Building the dump happens synchronously on the DBMS thread, which is
    // what guarantees no local DB write races the dump snapshot (§5.3).
    job.type = DbObjectType::kDump;
    job.entries = BuildDumpEntries();
  } else {
    job.type = DbObjectType::kCheckpoint;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++inflight_jobs_;
  }
  queue_.Put(std::move(job));
}

void CheckpointPipeline::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return killed_ || inflight_jobs_ == 0; });
}

void CheckpointPipeline::CheckpointerLoop() {
  while (auto job = queue_.Take()) {
    // Mark the job done (and wake Drain) no matter how processing exits.
    struct JobGuard {
      CheckpointPipeline* self;
      ~JobGuard() {
        std::lock_guard<std::mutex> lock(self->mu_);
        --self->inflight_jobs_;
        self->idle_cv_.notify_all();
      }
    } guard{this};

    // Withhold the DB object until the acknowledged cloud WAL covers the
    // data its pages may contain; otherwise a disaster in this window
    // would recover pages "from the future" of the recoverable WAL,
    // breaking the transaction-history-prefix guarantee.
    if (wal_frontier_fn_ && job->wal_frontier > 0) {
      // Event-driven wait: the commit pipeline's Unlocker calls
      // NotifyFrontier() (via Ginja's listener wiring) on every frontier
      // advance, so no polling is needed; Kill() also signals.
      bool aborted = false;
      {
        std::unique_lock<std::mutex> lock(mu_);
        frontier_cv_.wait(lock, [&] {
          return killed_ || wal_frontier_fn_() >= job->wal_frontier;
        });
        aborted = killed_;
      }
      if (aborted) continue;

      // Re-derive the DB object's timestamp from the first WAL object
      // whose covered range reaches the checkpoint's content frontier.
      // The begin-time timestamp (Alg. 3 line 5) can lag the page
      // contents when aggregation races the checkpoint; using the
      // covering object keeps point-in-time inclusion exact ("this
      // checkpoint's data is part of the state as of ts").
      for (const auto& wal : view_->WalObjects()) {  // ascending ts
        if (wal.max_lsn >= job->wal_frontier) {
          job->ts = wal.ts;
          break;
        }
      }
    }
    // Split the entries into parts at the object-size limit; large single
    // entries (e.g. a dumped multi-GB table file) are chunked. Parts hold
    // subspan refs into job->entries — no data is copied; the job outlives
    // every upload below.
    std::vector<std::vector<FileEntryRef>> parts;
    std::vector<FileEntryRef> current;
    std::size_t bytes = 0;
    auto flush_part = [&] {
      if (!current.empty()) {
        parts.push_back(std::move(current));
        current.clear();
        bytes = 0;
      }
    };
    for (const auto& entry : job->entries) {
      std::size_t pos = 0;
      do {
        const std::size_t chunk =
            std::min(config_.max_object_bytes, entry.data.size() - pos);
        if (bytes + chunk > config_.max_object_bytes) flush_part();
        current.push_back(
            {entry.path, entry.offset + pos, View(entry.data).subspan(pos, chunk)});
        bytes += chunk;
        pos += chunk;
      } while (pos < entry.data.size());
    }
    flush_part();
    if (parts.empty()) parts.push_back({});  // degenerate empty checkpoint

    const std::uint64_t seq = view_->NextCheckpointSeq();
    bool all_uploaded = true;
    std::vector<DbObjectId> ids;
    Bytes framing;  // reused per part; EncodeEntriesView keeps its capacity

    // Parts upload concurrently through the TransferManager: envelope
    // encoding stays on this thread (the enveloped buffer is moved into
    // the op, so `framing` can be reused immediately), while up to
    // `transfer_concurrency` PUTs are in flight. The object is acked into
    // the view only when *every* part has landed — a partial upload is
    // invisible to recovery (total_parts mismatch) and harmless.
    struct InflightPart {
      std::future<Status> status;
      std::size_t size = 0;
      std::uint64_t submit_us = 0;  // kCheckpointPart span start
      std::uint64_t trace_id = 0;
    };
    std::deque<InflightPart> inflight;
    const std::size_t window =
        static_cast<std::size_t>(std::max(1, config_.transfer_concurrency));
    auto reap_one = [&] {
      InflightPart p = std::move(inflight.front());
      inflight.pop_front();
      const Status st = p.status.get();
      if (st.ok()) {
        stats_.db_objects_uploaded.Add();
        stats_.bytes_uploaded.Add(p.size);
        if (Tracing()) {
          const std::uint64_t now = clock_->NowMicros();
          tracer_->Record(TraceStage::kCheckpointPart, p.trace_id, p.submit_us,
                          now >= p.submit_us ? now - p.submit_us : 0);
        }
      } else {
        all_uploaded = false;
        if (st.code() != ErrorCode::kAborted) {
          Log(LogLevel::kWarn, "checkpoint", "part upload failed",
              {{"status", st.ToString()}});
        }
      }
    };
    for (std::uint32_t part = 0; part < parts.size() && all_uploaded;
         ++part) {
      const PayloadView payload = EncodeEntriesView(parts[part], framing);
      DbObjectId id;
      id.ts = job->ts;
      id.type = job->type;
      id.size = payload.size();
      id.seq = seq;
      id.redo_lsn = job->redo_lsn;
      id.part = part;
      id.total_parts = static_cast<std::uint32_t>(parts.size());
      // Nonce: unique per DB object part (seq/part disjoint from WAL ts
      // space by the high bit).
      const std::uint64_t nonce = (1ull << 63) | (seq << 16) | part;
      Bytes enveloped;
      envelope_->EncodeInto(payload, nonce, enveloped);
      const std::size_t enveloped_size = enveloped.size();
      while (inflight.size() >= window && all_uploaded) reap_one();
      if (!all_uploaded) break;
      InflightPart p;
      p.size = enveloped_size;
      p.submit_us = Tracing() ? clock_->NowMicros() : 0;
      p.trace_id = (seq << 16) | part;
      p.status = transfer_->PutAsync(Route(), id.Encode(), std::move(enveloped));
      inflight.push_back(std::move(p));
      ids.push_back(id);
    }
    while (!inflight.empty()) reap_one();
    if (!all_uploaded) {
      bool killed;
      {
        std::lock_guard<std::mutex> lock(mu_);
        killed = killed_;
      }
      // The object stays invisible to recovery (total_parts mismatch); the
      // next checkpoint retries naturally — but the skip must not be silent
      // (a kill abandons it on purpose, no record needed).
      if (!killed) {
        Log(LogLevel::kWarn, "checkpoint", "incomplete upload, object skipped",
            {{"seq", seq},
             {"parts", static_cast<std::uint64_t>(parts.size())}});
      }
      continue;  // leave old state; retry naturally later
    }

    for (const auto& id : ids) view_->AddDb(id);
    if (job->type == DbObjectType::kDump) {
      stats_.dumps_uploaded.Add();
    } else {
      stats_.checkpoints_uploaded.Add();
    }

    if (!config_.keep_history) GarbageCollect(*job, seq);
  }
}

void CheckpointPipeline::GarbageCollect(const DbObjectJob& job,
                                        std::uint64_t uploaded_seq) {
  // Point-in-time retention (§5.4): objects a protected snapshot still
  // needs are exempt from deletion.
  std::set<std::string> keep;
  if (retention_ != nullptr && !retention_->Empty()) {
    keep = retention_->KeepSet(view_->WalObjects(), view_->DbObjects());
  }

  // WAL objects fully below the checkpoint's redo point are unreachable by
  // any future (non-PITR) recovery (Alg. 3 lines 23–25, LSN-safe variant).
  // A dump also supersedes every older DB object (Alg. 3 lines 26–29).
  // All victims are collected first and the DELETEs fanned out through the
  // TransferManager in one wave; the view drops only the objects whose
  // DELETE succeeded, so a failed delete is retried by the next GC pass.
  std::vector<WalObjectId> wal_victims;
  std::vector<TailObjectId> tail_victims;
  std::vector<DbObjectId> db_victims;
  std::vector<std::string> names;
  for (const auto& wal : view_->WalObjectsCoveredBy(job.redo_lsn)) {
    if (keep.count(wal.Encode()) > 0) continue;
    wal_victims.push_back(wal);
    names.push_back(wal.Encode());
  }
  // Early-ack tails (streaming commit) die when the checkpoint covers
  // their cumulative range or their object's fold landed. Because the
  // cumulative max_lsn is monotone in seg, this always deletes a
  // seg-prefix per ts — the invariant recovery's dense-suffix rule needs.
  for (const auto& tail : view_->TailGarbage(job.redo_lsn)) {
    tail_victims.push_back(tail);
    names.push_back(tail.Encode());
  }
  if (job.type == DbObjectType::kDump) {
    for (const auto& db : view_->DbObjects()) {
      if (db.seq >= uploaded_seq) continue;
      if (keep.count(db.Encode()) > 0) continue;
      db_victims.push_back(db);
      names.push_back(db.Encode());
    }
  }
  if (names.empty()) return;

  const std::vector<Status> statuses = transfer_->DeleteAll(Route(), names);
  std::size_t i = 0;
  std::size_t failed = 0;
  for (const auto& wal : wal_victims) {
    if (statuses[i++].ok()) {
      view_->RemoveWal(wal.ts);
      stats_.wal_objects_deleted.Add();
    } else {
      ++failed;
    }
  }
  for (const auto& tail : tail_victims) {
    if (statuses[i++].ok()) {
      view_->RemoveTail(tail);
      stats_.wal_tails_deleted.Add();
    } else {
      ++failed;
    }
  }
  for (const auto& db : db_victims) {
    if (statuses[i++].ok()) {
      view_->RemoveDb(db);
      stats_.db_objects_deleted.Add();
    } else {
      ++failed;
    }
  }
  // Failed deletes stay in the view and are retried by the next GC pass —
  // they cost storage dollars in the meantime, so leave a trace.
  if (failed > 0 && !Cancelled()) {
    Log(LogLevel::kWarn, "checkpoint", "garbage collection incomplete",
        {{"failed_deletes", static_cast<std::uint64_t>(failed)},
         {"victims", static_cast<std::uint64_t>(names.size())}});
  }
}

}  // namespace ginja
