#include "ginja/checkpoint_pipeline.h"

#include <algorithm>
#include <deque>
#include <future>
#include <map>
#include <set>
#include <utility>

#include "ginja/fleet_runtime.h"
#include "obs/log.h"

namespace ginja {

CheckpointPipeline::CheckpointPipeline(ObjectStorePtr store,
                                       std::shared_ptr<CloudView> view,
                                       std::shared_ptr<Clock> clock,
                                       const GinjaConfig& config,
                                       std::shared_ptr<Envelope> envelope,
                                       VfsPtr local_vfs, DbLayout layout)
    : store_(std::move(store)),
      view_(std::move(view)),
      clock_(std::move(clock)),
      config_(config),
      envelope_(std::move(envelope)),
      local_vfs_(std::move(local_vfs)),
      layout_(layout),
      chunk_index_(std::make_shared<ChunkIndex>()) {
  if (config_.runtime) {
    // Fleet mode: part PUTs and GC deletes run on the runtime's shared
    // manager (which carries its own "fleet" metrics), billed to this
    // tenant's account.
    transfer_ = config_.runtime->transfers();
    account_ = std::make_shared<TransferAccount>(config_.tenant_id);
  } else {
    transfer_ = std::make_shared<TransferManager>(
        store_, MakeTransferOptions(config_, config_.transfer_concurrency),
        clock_);
    if (config_.obs) {
      transfer_->RegisterMetrics(&config_.obs->registry, "checkpoint");
    }
  }
  if (config_.obs) {
    tracer_ = &config_.obs->tracer;
    RegisterMetrics();
  }
}

CheckpointPipeline::~CheckpointPipeline() {
  if (config_.obs) config_.obs->registry.Unregister(this);
  Kill();
  // Fleet: the shared manager outlives this pipeline; wait out any of this
  // account's operations still on the pool (Kill cancelled them, so queued
  // ones fail fast) before members they reference are destroyed.
  if (account_) account_->WaitIdle();
}

void CheckpointPipeline::RegisterMetrics() {
  MetricsRegistry& r = config_.obs->registry;
  r.RegisterCounter(this, "ginja_checkpoint_checkpoints_uploaded_total", Labels(),
                    &stats_.checkpoints_uploaded);
  r.RegisterCounter(this, "ginja_checkpoint_dumps_uploaded_total", Labels(),
                    &stats_.dumps_uploaded);
  r.RegisterCounter(this, "ginja_checkpoint_db_objects_uploaded_total", Labels(),
                    &stats_.db_objects_uploaded);
  r.RegisterCounter(this, "ginja_checkpoint_bytes_uploaded_total", Labels(),
                    &stats_.bytes_uploaded);
  r.RegisterCounter(this, "ginja_gc_wal_objects_deleted_total", Labels(),
                    &stats_.wal_objects_deleted);
  r.RegisterCounter(this, "ginja_gc_wal_tails_deleted_total", Labels(),
                    &stats_.wal_tails_deleted);
  r.RegisterCounter(this, "ginja_gc_db_objects_deleted_total", Labels(),
                    &stats_.db_objects_deleted);
  r.RegisterCounter(this, "ginja_dedup_hit_bytes_total", Labels(),
                    &stats_.dedup_hit_bytes);
  r.RegisterCounter(this, "ginja_dedup_miss_bytes_total", Labels(),
                    &stats_.dedup_miss_bytes);
  r.RegisterCounter(this, "ginja_chunks_uploaded_total", Labels(),
                    &stats_.chunks_uploaded);
  r.RegisterCounter(this, "ginja_chunks_deleted_total", Labels(),
                    &stats_.chunks_deleted);
  r.RegisterGauge(this, "ginja_checkpoint_inflight_jobs", Labels(), [this] {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<double>(inflight_jobs_);
  });
}

void CheckpointPipeline::Start() {
  thread_ = std::thread([this] { CheckpointerLoop(); });
}

void CheckpointPipeline::Stop() {
  queue_.WaitEmpty();
  queue_.Close();
  if (thread_.joinable()) thread_.join();
}

void CheckpointPipeline::Kill() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    killed_ = true;
  }
  idle_cv_.notify_all();
  frontier_cv_.notify_all();
  // Abort queued/retrying transfers so the checkpointer's future waits
  // resolve and the thread can observe killed_. On a shared fleet manager
  // only this tenant's account is cancelled; other tenants keep running.
  if (account_) {
    account_->Cancel();
  } else {
    transfer_->Cancel();
  }
  queue_.Close();
  if (thread_.joinable()) thread_.join();
}

void CheckpointPipeline::NotifyFrontier() {
  // Empty critical section: fences against the checkpointer evaluating its
  // wait predicate, so an advance between "predicate false" and "wait"
  // cannot lose the wakeup.
  { std::lock_guard<std::mutex> lock(mu_); }
  frontier_cv_.notify_all();
}

void CheckpointPipeline::OnCheckpointBegin() {
  std::lock_guard<std::mutex> lock(mu_);
  if (in_checkpoint_) return;
  in_checkpoint_ = true;
  collected_.clear();
  // Alg. 3 line 5: the DB object's timestamp is the last WAL-object ts
  // assigned before the checkpoint began.
  checkpoint_ts_ = view_->LastAssignedWalTs().value_or(0);
}

bool CheckpointPipeline::InCheckpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_checkpoint_;
}

void CheckpointPipeline::AddWrite(FileEntry entry) {
  // Keep the size cache exact instead of invalidating: an in-place page
  // rewrite changes nothing, an extending (or file-creating) write adds
  // exactly the bytes past the known end.
  {
    std::lock_guard<std::mutex> lock(size_mu_);
    if (size_valid_ && CountsTowardDbSize(entry.path)) {
      const std::uint64_t end = entry.offset + entry.data.size();
      std::uint64_t& known = size_file_end_[entry.path];
      if (end > known) {
        size_cached_ += end - known;
        known = end;
      }
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  collected_.push_back(std::move(entry));
}

bool CheckpointPipeline::CountsTowardDbSize(const std::string& path) const {
  if (layout_.flavor == DbFlavor::kPostgres &&
      layout_.Classify(path, 0) == FileKind::kWalSegment) {
    return false;  // pg_xlog segments are not database files
  }
  if (layout_.flavor == DbFlavor::kMySql && path.starts_with("ib_logfile")) {
    return false;  // the redo log (header aside) is not database data
  }
  return true;
}

std::uint64_t CheckpointPipeline::LocalDbSizeBytes() const {
  std::lock_guard<std::mutex> lock(size_mu_);
  if (size_valid_) return size_cached_;
  auto files = local_vfs_->ListFiles("");
  if (!files.ok()) return 0;  // transient: leave the cache invalid
  std::uint64_t total = 0;
  size_file_end_.clear();
  for (const auto& path : *files) {
    if (!CountsTowardDbSize(path)) continue;
    auto size = local_vfs_->FileSize(path);
    if (size.ok()) {
      total += *size;
      size_file_end_[path] = *size;
    }
  }
  size_cached_ = total;
  size_valid_ = true;
  return total;
}

void CheckpointPipeline::InvalidateLocalDbSizeCache() {
  std::lock_guard<std::mutex> lock(size_mu_);
  size_valid_ = false;
  size_file_end_.clear();
}

std::vector<FileEntry> CheckpointPipeline::BuildDumpEntries() const {
  // Paper §5.3: dumps contain every relevant database file except the WAL
  // segments. For MySQL the checkpoint header lives inside ib_logfile0, so
  // its header region is added explicitly.
  std::vector<FileEntry> entries;
  auto files = local_vfs_->ListFiles("");
  if (!files.ok()) return entries;
  for (const auto& path : *files) {
    if (layout_.flavor == DbFlavor::kPostgres && path.starts_with("pg_xlog/")) {
      continue;
    }
    if (layout_.flavor == DbFlavor::kMySql && path.starts_with("ib_logfile")) {
      if (path == "ib_logfile0") {
        auto header = local_vfs_->Read(
            path, 0, layout_.wal_header_pages * layout_.wal_page_size);
        if (header.ok() && !header->empty()) {
          entries.push_back({path, 0, std::move(*header)});
        }
      }
      continue;
    }
    auto content = local_vfs_->ReadAll(path);
    if (content.ok()) entries.push_back({path, 0, std::move(*content)});
  }
  return entries;
}

void CheckpointPipeline::OnCheckpointEnd(Lsn redo_lsn, Lsn wal_frontier) {
  DbObjectJob job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!in_checkpoint_) return;
    in_checkpoint_ = false;
    job.ts = checkpoint_ts_;
    job.redo_lsn = redo_lsn;
    job.wal_frontier = wal_frontier;
    job.entries = std::move(collected_);
    collected_.clear();
  }

  // Dump decision (Alg. 3 lines 9–13): when the DB objects in the cloud
  // reach `dump_threshold` × the local database size, replace them all.
  const std::uint64_t local_size = LocalDbSizeBytes();
  const bool need_dump =
      local_size > 0 &&
      static_cast<double>(view_->TotalDbBytes()) >=
          config_.dump_threshold * static_cast<double>(local_size);
  if (need_dump || view_->DbObjects().empty()) {
    // Building the dump happens synchronously on the DBMS thread, which is
    // what guarantees no local DB write races the dump snapshot (§5.3).
    job.type = DbObjectType::kDump;
    job.entries = BuildDumpEntries();
  } else {
    job.type = DbObjectType::kCheckpoint;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++inflight_jobs_;
  }
  queue_.Put(std::move(job));
}

void CheckpointPipeline::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return killed_ || inflight_jobs_ == 0; });
}

void CheckpointPipeline::CheckpointerLoop() {
  while (auto job = queue_.Take()) {
    // Mark the job done (and wake Drain) no matter how processing exits.
    struct JobGuard {
      CheckpointPipeline* self;
      ~JobGuard() {
        std::lock_guard<std::mutex> lock(self->mu_);
        --self->inflight_jobs_;
        self->idle_cv_.notify_all();
      }
    } guard{this};

    // Withhold the DB object until the acknowledged cloud WAL covers the
    // data its pages may contain; otherwise a disaster in this window
    // would recover pages "from the future" of the recoverable WAL,
    // breaking the transaction-history-prefix guarantee.
    if (wal_frontier_fn_ && job->wal_frontier > 0) {
      // Event-driven wait: the commit pipeline's Unlocker calls
      // NotifyFrontier() (via Ginja's listener wiring) on every frontier
      // advance, so no polling is needed; Kill() also signals.
      bool aborted = false;
      {
        std::unique_lock<std::mutex> lock(mu_);
        frontier_cv_.wait(lock, [&] {
          return killed_ || wal_frontier_fn_() >= job->wal_frontier;
        });
        aborted = killed_;
      }
      if (aborted) continue;

      // Re-derive the DB object's timestamp from the first WAL object
      // whose covered range reaches the checkpoint's content frontier.
      // The begin-time timestamp (Alg. 3 line 5) can lag the page
      // contents when aggregation races the checkpoint; using the
      // covering object keeps point-in-time inclusion exact ("this
      // checkpoint's data is part of the state as of ts").
      for (const auto& wal : view_->WalObjects()) {  // ascending ts
        if (wal.max_lsn >= job->wal_frontier) {
          job->ts = wal.ts;
          break;
        }
      }
    }
    // Delta-dump representation (dedup_dumps): the dump becomes CHUNK/
    // objects plus one manifest instead of monolithic parts. Incremental
    // checkpoints keep the part path — their payload is already the delta.
    if (config_.dedup_dumps && job->type == DbObjectType::kDump) {
      ProcessDeltaDump(*job);
      continue;
    }
    // Split the entries into parts at the object-size limit; large single
    // entries (e.g. a dumped multi-GB table file) are chunked. Parts hold
    // subspan refs into job->entries — no data is copied; the job outlives
    // every upload below.
    std::vector<std::vector<FileEntryRef>> parts;
    std::vector<FileEntryRef> current;
    std::size_t bytes = 0;
    auto flush_part = [&] {
      if (!current.empty()) {
        parts.push_back(std::move(current));
        current.clear();
        bytes = 0;
      }
    };
    for (const auto& entry : job->entries) {
      std::size_t pos = 0;
      do {
        const std::size_t chunk =
            std::min(config_.max_object_bytes, entry.data.size() - pos);
        if (bytes + chunk > config_.max_object_bytes) flush_part();
        current.push_back(
            {entry.path, entry.offset + pos, View(entry.data).subspan(pos, chunk)});
        bytes += chunk;
        pos += chunk;
      } while (pos < entry.data.size());
    }
    flush_part();
    if (parts.empty()) parts.push_back({});  // degenerate empty checkpoint

    const std::uint64_t seq = view_->NextCheckpointSeq();
    bool all_uploaded = true;
    std::vector<DbObjectId> ids;
    Bytes framing;  // reused per part; EncodeEntriesView keeps its capacity

    // Parts upload concurrently through the TransferManager: envelope
    // encoding stays on this thread (the enveloped buffer is moved into
    // the op, so `framing` can be reused immediately), while up to
    // `transfer_concurrency` PUTs are in flight. The object is acked into
    // the view only when *every* part has landed — a partial upload is
    // invisible to recovery (total_parts mismatch) and harmless.
    struct InflightPart {
      std::future<Status> status;
      std::size_t size = 0;
      std::uint64_t submit_us = 0;  // kCheckpointPart span start
      std::uint64_t trace_id = 0;
    };
    std::deque<InflightPart> inflight;
    const std::size_t window =
        static_cast<std::size_t>(std::max(1, config_.transfer_concurrency));
    auto reap_one = [&] {
      InflightPart p = std::move(inflight.front());
      inflight.pop_front();
      const Status st = p.status.get();
      if (st.ok()) {
        stats_.db_objects_uploaded.Add();
        stats_.bytes_uploaded.Add(p.size);
        if (Tracing()) {
          const std::uint64_t now = clock_->NowMicros();
          tracer_->Record(TraceStage::kCheckpointPart, p.trace_id, p.submit_us,
                          now >= p.submit_us ? now - p.submit_us : 0);
        }
      } else {
        all_uploaded = false;
        if (st.code() != ErrorCode::kAborted) {
          Log(LogLevel::kWarn, "checkpoint", "part upload failed",
              {{"status", st.ToString()}});
        }
      }
    };
    for (std::uint32_t part = 0; part < parts.size() && all_uploaded;
         ++part) {
      const PayloadView payload = EncodeEntriesView(parts[part], framing);
      DbObjectId id;
      id.ts = job->ts;
      id.type = job->type;
      id.size = payload.size();
      id.seq = seq;
      id.redo_lsn = job->redo_lsn;
      id.part = part;
      id.total_parts = static_cast<std::uint32_t>(parts.size());
      // Nonce: unique per DB object part (seq/part disjoint from WAL ts
      // space by the high bit).
      const std::uint64_t nonce = (1ull << 63) | (seq << 16) | part;
      Bytes enveloped;
      envelope_->EncodeInto(payload, nonce, enveloped);
      const std::size_t enveloped_size = enveloped.size();
      while (inflight.size() >= window && all_uploaded) reap_one();
      if (!all_uploaded) break;
      InflightPart p;
      p.size = enveloped_size;
      p.submit_us = Tracing() ? clock_->NowMicros() : 0;
      p.trace_id = (seq << 16) | part;
      p.status = transfer_->PutAsync(Route(), id.Encode(), std::move(enveloped));
      inflight.push_back(std::move(p));
      ids.push_back(id);
    }
    while (!inflight.empty()) reap_one();
    if (!all_uploaded) {
      bool killed;
      {
        std::lock_guard<std::mutex> lock(mu_);
        killed = killed_;
      }
      // The object stays invisible to recovery (total_parts mismatch); the
      // next checkpoint retries naturally — but the skip must not be silent
      // (a kill abandons it on purpose, no record needed).
      if (!killed) {
        Log(LogLevel::kWarn, "checkpoint", "incomplete upload, object skipped",
            {{"seq", seq},
             {"parts", static_cast<std::uint64_t>(parts.size())}});
      }
      continue;  // leave old state; retry naturally later
    }

    for (const auto& id : ids) view_->AddDb(id);
    if (job->type == DbObjectType::kDump) {
      stats_.dumps_uploaded.Add();
    } else {
      stats_.checkpoints_uploaded.Add();
    }

    if (!config_.keep_history) GarbageCollect(*job, seq);
  }
}

void CheckpointPipeline::ProcessDeltaDump(const DbObjectJob& job) {
  const std::uint64_t seq = view_->NextCheckpointSeq();

  // Chunk + hash the image, fanned across the shared codec pool (the
  // SHA-NI path per worker where the CPU has it).
  const std::uint64_t t_hash = Tracing() ? clock_->NowMicros() : 0;
  const std::vector<ChunkRef> refs = ChunkDumpEntries(
      job.entries, config_.dedup_chunk_bytes, envelope_->codec_pool().get());
  if (Tracing()) {
    const std::uint64_t now = clock_->NowMicros();
    tracer_->Record(TraceStage::kChunkHash, seq, t_hash,
                    now >= t_hash ? now - t_hash : 0);
  }

  // Dedup pass: the first occurrence of a digest the cloud lacks uploads;
  // every other ref — already present, or repeated within this dump — is a
  // hit. Orphans from a previously torn upload count as hits here, which
  // is what makes torn delta dumps resumable.
  std::map<std::string, const FileEntry*> by_path;
  for (const auto& entry : job.entries) by_path[entry.path] = &entry;
  std::vector<std::size_t> missing;
  std::set<Sha1::Digest> scheduled;
  std::uint64_t logical_bytes = 0;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    logical_bytes += refs[i].length;
    if (chunk_index_->Contains(refs[i].digest) ||
        scheduled.count(refs[i].digest) > 0) {
      stats_.dedup_hit_bytes.Add(refs[i].length);
    } else {
      scheduled.insert(refs[i].digest);
      missing.push_back(i);
      stats_.dedup_miss_bytes.Add(refs[i].length);
    }
  }

  // Missing chunks PUT through the same window as monolithic parts. Each
  // landed chunk is durable whether or not this dump's manifest ever
  // lands, so it is marked present immediately — a torn upload resumes.
  bool all_uploaded = true;
  struct InflightChunk {
    std::future<Status> status;
    std::size_t size = 0;      // enveloped
    std::size_t ref = 0;       // index into refs
    std::uint64_t submit_us = 0;
  };
  std::deque<InflightChunk> inflight;
  const std::size_t window =
      static_cast<std::size_t>(std::max(1, config_.transfer_concurrency));
  auto reap_one = [&] {
    InflightChunk p = std::move(inflight.front());
    inflight.pop_front();
    const Status st = p.status.get();
    if (st.ok()) {
      stats_.chunks_uploaded.Add();
      stats_.bytes_uploaded.Add(p.size);
      chunk_index_->MarkPresent(refs[p.ref].digest, refs[p.ref].length);
      if (Tracing()) {
        const std::uint64_t now = clock_->NowMicros();
        tracer_->Record(TraceStage::kCheckpointPart, (seq << 16) | p.ref,
                        p.submit_us,
                        now >= p.submit_us ? now - p.submit_us : 0);
      }
    } else {
      all_uploaded = false;
      if (st.code() != ErrorCode::kAborted) {
        Log(LogLevel::kWarn, "checkpoint", "chunk upload failed",
            {{"status", st.ToString()}});
      }
    }
  };
  for (std::size_t k = 0; k < missing.size() && all_uploaded; ++k) {
    const ChunkRef& ref = refs[missing[k]];
    const FileEntry& entry = *by_path.at(ref.path);
    const ByteView slice = View(entry.data)
        .subspan(static_cast<std::size_t>(ref.offset - entry.offset),
                 ref.length);
    // Convergent derived-key envelope: key and nonce depend only on the
    // content digest, so identical plaintext chunks envelope to identical
    // ciphertext (deduplicable CHUNK/ names) while the per-chunk AES key
    // — derived from the full 160-bit digest — keeps a truncated-nonce
    // collision from ever reusing keystream across distinct chunks.
    Bytes enveloped = envelope_->EncodeDerived(
        slice, ChunkNonce(ref.digest),
        ByteView(ref.digest.data(), ref.digest.size()));
    const std::size_t enveloped_size = enveloped.size();
    while (inflight.size() >= window && all_uploaded) reap_one();
    if (!all_uploaded) break;
    InflightChunk p;
    p.size = enveloped_size;
    p.ref = missing[k];
    p.submit_us = Tracing() ? clock_->NowMicros() : 0;
    p.status = transfer_->PutAsync(
        Route(), ChunkObjectId{ref.digest, ref.length}.Encode(),
        std::move(enveloped));
    inflight.push_back(std::move(p));
  }
  while (!inflight.empty()) reap_one();
  if (!all_uploaded) {
    bool killed;
    {
      std::lock_guard<std::mutex> lock(mu_);
      killed = killed_;
    }
    // No manifest was PUT, so the dump is invisible to recovery; the
    // chunks that did land resume the next attempt.
    if (!killed) {
      Log(LogLevel::kWarn, "checkpoint",
          "incomplete delta dump, manifest withheld",
          {{"seq", seq},
           {"chunks", static_cast<std::uint64_t>(missing.size())}});
    }
    return;
  }

  // Manifest strictly last — the delta-dump analogue of the all-parts-or-
  // invisible rule: recovery only trusts a dump whose manifest is visible,
  // and a visible manifest implies every chunk above was durable first.
  DbObjectId id;
  id.ts = job.ts;
  id.type = DbObjectType::kManifest;
  id.size = logical_bytes;  // logical DB bytes: keeps the 150% rule exact
  id.seq = seq;
  id.redo_lsn = job.redo_lsn;
  id.part = 0;
  id.total_parts = 1;
  const Bytes payload = EncodeManifest(refs);
  const std::uint64_t nonce = (1ull << 63) | (seq << 16);
  Bytes enveloped = envelope_->Encode(View(payload), nonce);
  const std::size_t enveloped_size = enveloped.size();
  const Status st =
      transfer_->PutAsync(Route(), id.Encode(), std::move(enveloped)).get();
  if (!st.ok()) {
    if (st.code() != ErrorCode::kAborted) {
      Log(LogLevel::kWarn, "checkpoint", "manifest upload failed",
          {{"seq", seq}, {"status", st.ToString()}});
    }
    // The PUT ack may have been lost after the object landed. A one-part
    // manifest has no multi-part invisibility, so such a ghost would be
    // visible to recovery while unknown to the ChunkIndex — a later dump's
    // zero-ref sweep could then delete chunks only the ghost references,
    // leaving a visible-but-broken dump. Confirm its absence with a
    // DELETE; if even that fails, assume the worst and pin its chunks
    // until a reboot rebuild reconciles against the bucket.
    const Status confirmed_absent =
        transfer_->DeleteAll(Route(), {id.Encode()}).front();
    if (!confirmed_absent.ok()) chunk_index_->RegisterManifest(seq, refs);
    return;
  }
  stats_.db_objects_uploaded.Add();
  stats_.bytes_uploaded.Add(enveloped_size);
  stats_.dumps_uploaded.Add();
  view_->AddDb(id);
  // Ref-before-release ordering: this manifest's chunks are pinned before
  // GC below can release any older manifest, so a chunk shared by
  // consecutive dumps never transiently reaches refcount zero.
  chunk_index_->RegisterManifest(seq, refs);

  if (!config_.keep_history) GarbageCollect(job, seq);
}

void CheckpointPipeline::GarbageCollect(const DbObjectJob& job,
                                        std::uint64_t uploaded_seq) {
  // Point-in-time retention (§5.4): objects a protected snapshot still
  // needs are exempt from deletion.
  std::set<std::string> keep;
  if (retention_ != nullptr && !retention_->Empty()) {
    keep = retention_->KeepSet(view_->WalObjects(), view_->DbObjects());
  }

  // WAL objects fully below the checkpoint's redo point are unreachable by
  // any future (non-PITR) recovery (Alg. 3 lines 23–25, LSN-safe variant).
  // A dump also supersedes every older DB object (Alg. 3 lines 26–29).
  // All victims are collected first and the DELETEs fanned out through the
  // TransferManager in one wave; the view drops only the objects whose
  // DELETE succeeded, so a failed delete is retried by the next GC pass.
  std::vector<WalObjectId> wal_victims;
  std::vector<TailObjectId> tail_victims;
  std::vector<DbObjectId> db_victims;
  std::vector<std::string> names;
  for (const auto& wal : view_->WalObjectsCoveredBy(job.redo_lsn)) {
    if (keep.count(wal.Encode()) > 0) continue;
    wal_victims.push_back(wal);
    names.push_back(wal.Encode());
  }
  // Early-ack tails (streaming commit) die when the checkpoint covers
  // their cumulative range or their object's fold landed. Because the
  // cumulative max_lsn is monotone in seg, this always deletes a
  // seg-prefix per ts — the invariant recovery's dense-suffix rule needs.
  for (const auto& tail : view_->TailGarbage(job.redo_lsn)) {
    tail_victims.push_back(tail);
    names.push_back(tail.Encode());
  }
  if (job.type == DbObjectType::kDump) {
    for (const auto& db : view_->DbObjects()) {
      if (db.seq >= uploaded_seq) continue;
      if (keep.count(db.Encode()) > 0) continue;
      db_victims.push_back(db);
      names.push_back(db.Encode());
    }
  }
  const std::vector<Status> statuses =
      names.empty() ? std::vector<Status>{}
                    : transfer_->DeleteAll(Route(), names);
  std::size_t i = 0;
  std::size_t failed = 0;
  for (const auto& wal : wal_victims) {
    if (statuses[i++].ok()) {
      view_->RemoveWal(wal.ts);
      stats_.wal_objects_deleted.Add();
    } else {
      ++failed;
    }
  }
  for (const auto& tail : tail_victims) {
    if (statuses[i++].ok()) {
      view_->RemoveTail(tail);
      stats_.wal_tails_deleted.Add();
    } else {
      ++failed;
    }
  }
  for (const auto& db : db_victims) {
    if (statuses[i++].ok()) {
      view_->RemoveDb(db);
      stats_.db_objects_deleted.Add();
      // A deleted manifest drops its chunk references; the chunks
      // themselves go in the second wave below, only once *no* surviving
      // manifest needs them. Manifests in the retention keep-set were
      // never victims, so their chunks keep their references.
      if (db.type == DbObjectType::kManifest) {
        chunk_index_->ReleaseManifest(db.seq);
      }
    } else {
      ++failed;
    }
  }
  // Failed deletes stay in the view and are retried by the next GC pass —
  // they cost storage dollars in the meantime, so leave a trace.
  if (failed > 0 && !Cancelled()) {
    Log(LogLevel::kWarn, "checkpoint", "garbage collection incomplete",
        {{"failed_deletes", static_cast<std::uint64_t>(failed)},
         {"victims", static_cast<std::uint64_t>(names.size())}});
  }

  // Second wave: chunks no manifest references any more — superseded dump
  // content whose manifest DELETE was just confirmed, plus orphans from
  // torn uploads that nothing resumed. Runs strictly after the manifest
  // statuses above, so a chunk is only deleted when every manifest that
  // could reach it is provably gone (a failed manifest DELETE keeps its
  // references, keeping its chunks alive for the retry).
  if (config_.dedup_dumps) {
    const std::vector<ChunkObjectId> dead = chunk_index_->ZeroRefChunks();
    if (dead.empty()) return;
    std::vector<std::string> chunk_names;
    chunk_names.reserve(dead.size());
    for (const auto& chunk : dead) chunk_names.push_back(chunk.Encode());
    const std::vector<Status> chunk_statuses =
        transfer_->DeleteAll(Route(), chunk_names);
    std::size_t chunk_failed = 0;
    for (std::size_t k = 0; k < dead.size(); ++k) {
      if (chunk_statuses[k].ok()) {
        chunk_index_->RemoveChunk(dead[k].digest);
        stats_.chunks_deleted.Add();
      } else {
        ++chunk_failed;  // still indexed as zero-ref: next pass retries
      }
    }
    if (chunk_failed > 0 && !Cancelled()) {
      Log(LogLevel::kWarn, "checkpoint", "chunk garbage collection incomplete",
          {{"failed_deletes", static_cast<std::uint64_t>(chunk_failed)},
           {"victims", static_cast<std::uint64_t>(dead.size())}});
    }
  }
}

}  // namespace ginja
