#include "ginja/payload.h"

namespace ginja {

Bytes EncodeEntries(const std::vector<FileEntry>& entries) {
  Bytes out;
  PutVarint(out, entries.size());
  for (const auto& e : entries) {
    PutVarint(out, e.path.size());
    Append(out, View(ToBytes(e.path)));
    PutVarint(out, e.offset);
    PutVarint(out, e.data.size());
    Append(out, View(e.data));
  }
  return out;
}

Result<std::vector<FileEntry>> DecodeEntries(ByteView payload) {
  std::size_t pos = 0;
  const auto count = GetVarint(payload, pos);
  if (!count) return Status::Corruption("entry count truncated");
  std::vector<FileEntry> out;
  out.reserve(*count);
  for (std::uint64_t i = 0; i < *count; ++i) {
    FileEntry e;
    const auto path_len = GetVarint(payload, pos);
    if (!path_len || pos + *path_len > payload.size()) {
      return Status::Corruption("entry path truncated");
    }
    e.path.assign(reinterpret_cast<const char*>(payload.data() + pos), *path_len);
    pos += *path_len;
    const auto offset = GetVarint(payload, pos);
    if (!offset && !(pos <= payload.size())) {
      return Status::Corruption("entry offset truncated");
    }
    if (!offset) return Status::Corruption("entry offset truncated");
    e.offset = *offset;
    const auto data_len = GetVarint(payload, pos);
    if (!data_len || pos + *data_len > payload.size()) {
      return Status::Corruption("entry data truncated");
    }
    e.data.assign(payload.begin() + static_cast<long>(pos),
                  payload.begin() + static_cast<long>(pos + *data_len));
    pos += *data_len;
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace ginja
