#include "ginja/payload.h"

namespace ginja {

std::vector<FileEntryRef> MakeEntryRefs(const std::vector<FileEntry>& entries) {
  std::vector<FileEntryRef> refs;
  refs.reserve(entries.size());
  for (const auto& e : entries) {
    refs.push_back({e.path, e.offset, View(e.data)});
  }
  return refs;
}

Bytes EncodeEntries(const std::vector<FileEntry>& entries) {
  Bytes out;
  PutVarint(out, entries.size());
  for (const auto& e : entries) {
    PutVarint(out, e.path.size());
    Append(out, View(ToBytes(e.path)));
    PutVarint(out, e.offset);
    PutVarint(out, e.data.size());
    Append(out, View(e.data));
  }
  return out;
}

PayloadView EncodeEntriesView(const std::vector<FileEntryRef>& entries,
                              Bytes& framing) {
  // Pass 1: write every framing run (count, then per entry: path_len, path,
  // offset, data_len) into one buffer, remembering where each run ends.
  // Views are built afterwards so buffer reallocation can't invalidate them.
  framing.clear();
  std::vector<std::size_t> marks;
  marks.reserve(entries.size());
  PutVarint(framing, entries.size());
  for (const auto& e : entries) {
    PutVarint(framing, e.path.size());
    Append(framing, ByteView(reinterpret_cast<const std::uint8_t*>(e.path.data()),
                             e.path.size()));
    PutVarint(framing, e.offset);
    PutVarint(framing, e.data.size());
    marks.push_back(framing.size());
  }

  // Pass 2: interleave framing slices with the borrowed data buffers.
  PayloadView view;
  view.pieces.reserve(entries.size() * 2 + 1);
  const ByteView f = View(framing);
  std::size_t prev = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    view.Add(f.subspan(prev, marks[i] - prev));
    view.Add(entries[i].data);
    prev = marks[i];
  }
  if (prev < f.size()) view.Add(f.subspan(prev));  // empty list: just count
  return view;
}

Result<std::vector<FileEntry>> DecodeEntries(ByteView payload) {
  std::size_t pos = 0;
  std::vector<FileEntry> out;
  // A streamed object's payload is several count-prefixed lists back to
  // back (one per segment); keep parsing until the buffer is exhausted.
  // At least one run is required — an empty payload is corrupt.
  do {
    const auto count = GetVarint(payload, pos);
    if (!count) return Status::Corruption("entry count truncated");
    out.reserve(out.size() + *count);
    for (std::uint64_t i = 0; i < *count; ++i) {
      FileEntry e;
      const auto path_len = GetVarint(payload, pos);
      if (!path_len || pos + *path_len > payload.size()) {
        return Status::Corruption("entry path truncated");
      }
      e.path.assign(reinterpret_cast<const char*>(payload.data() + pos), *path_len);
      pos += *path_len;
      const auto offset = GetVarint(payload, pos);
      if (!offset) return Status::Corruption("entry offset truncated");
      e.offset = *offset;
      const auto data_len = GetVarint(payload, pos);
      if (!data_len || pos + *data_len > payload.size()) {
        return Status::Corruption("entry data truncated");
      }
      e.data.assign(payload.begin() + static_cast<long>(pos),
                    payload.begin() + static_cast<long>(pos + *data_len));
      pos += *data_len;
      out.push_back(std::move(e));
    }
  } while (pos < payload.size());
  return out;
}

}  // namespace ginja
