// CloudView — Ginja's in-memory index of the objects it keeps in the cloud
// (paper Alg. 1 line 1). Rebuilt by LIST on reboot/recovery; updated by the
// commit and checkpoint pipelines during operation. Thread-safe: the
// Aggregator, Uploaders, Checkpointer, and processor all consult it.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "ginja/object_id.h"

namespace ginja {

class CloudView {
 public:
  // -- WAL objects -----------------------------------------------------------

  // Reserves the next WAL timestamp (Alg. 2 line 14).
  std::uint64_t NextWalTs();
  // Last timestamp handed out, or nullopt before any (Alg. 3 line 5 reads
  // this at checkpoint begin).
  std::optional<std::uint64_t> LastAssignedWalTs() const;

  void AddWal(const WalObjectId& id);
  void RemoveWal(std::uint64_t ts);
  std::vector<WalObjectId> WalObjects() const;  // ascending ts
  // WAL objects whose covered stream range ends at or before `lsn` — the
  // prefix that a checkpoint with redo LSN `lsn` makes garbage.
  std::vector<WalObjectId> WalObjectsCoveredBy(std::uint64_t lsn) const;

  // -- WAL tail objects (streaming early acks) ---------------------------------

  void AddTail(const TailObjectId& id);
  void RemoveTail(const TailObjectId& id);
  std::vector<TailObjectId> TailObjects() const;  // ascending (ts, seg, replica)
  std::vector<TailObjectId> TailsForTs(std::uint64_t ts) const;
  // Tails that are safe to delete given a checkpoint redo LSN: those whose
  // cumulative max_lsn is covered, plus every tail of a ts whose full WAL
  // object has landed (the fold supersedes them regardless of lsn).
  std::vector<TailObjectId> TailGarbage(std::uint64_t redo_lsn) const;
  std::size_t TailCount() const;

  // -- DB objects --------------------------------------------------------------

  std::uint64_t NextCheckpointSeq();

  void AddDb(const DbObjectId& id);
  void RemoveDb(const DbObjectId& id);
  std::vector<DbObjectId> DbObjects() const;  // ascending (seq, part)
  // Sum of the logical sizes of all DB objects (the 150% dump rule input).
  std::uint64_t TotalDbBytes() const;

  // -- bulk --------------------------------------------------------------------

  // Parses an object name (from LIST) and indexes it; unknown names are
  // ignored and reported false.
  bool AddFromName(const std::string& name);
  void Clear();
  std::size_t WalCount() const;
  std::size_t DbCount() const;

 private:
  mutable std::mutex mu_;
  std::map<std::uint64_t, WalObjectId> wal_;     // by ts
  // by (ts, seg, replica)
  std::map<std::tuple<std::uint64_t, std::uint32_t, std::uint32_t>,
           TailObjectId>
      tails_;
  std::map<std::pair<std::uint64_t, std::uint32_t>, DbObjectId> db_;  // by (seq, part)
  std::uint64_t next_wal_ts_ = 0;
  std::uint64_t next_seq_ = 0;
  bool any_wal_ts_ = false;
};

}  // namespace ginja
