#include "ginja/standby.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/codec/codec_pool.h"
#include "ginja/failover.h"
#include "ginja/fleet_runtime.h"
#include "ginja/object_id.h"
#include "obs/log.h"

namespace ginja {

namespace {

void MergeReport(RecoveryReport* into, const RecoveryReport& r) {
  into->objects_downloaded += r.objects_downloaded;
  into->bytes_downloaded += r.bytes_downloaded;
  into->wal_objects_applied += r.wal_objects_applied;
  into->tail_segments_applied += r.tail_segments_applied;
  into->db_objects_applied += r.db_objects_applied;
  into->files_written += r.files_written;
  into->chunks_downloaded += r.chunks_downloaded;
  into->chunks_reused += r.chunks_reused;
  into->recovered_to_ts = std::max(into->recovered_to_ts, r.recovered_to_ts);
  into->found_dump = into->found_dump || r.found_dump;
}

}  // namespace

StandbyReplica::StandbyReplica(ObjectStorePtr store, GinjaConfig config,
                               std::shared_ptr<Clock> clock,
                               StandbyOptions options)
    : store_(std::move(store)),
      config_(std::move(config)),
      clock_(std::move(clock)),
      options_(std::move(options)),
      envelope_(config_.envelope),
      image_(std::make_shared<MemFs>()) {
  obs_ = config_.obs ? config_.obs
         : config_.runtime
             ? config_.runtime->obs()
             : std::make_shared<Observability>(config_.trace);
  config_.obs = obs_;
  if (config_.runtime && config_.runtime->codec_pool()) {
    codec_pool_ = config_.runtime->codec_pool();
    envelope_.SetCodecPool(codec_pool_);
  } else if (config_.codec_threads > 1) {
    codec_pool_ = std::make_shared<CodecPool>(config_.codec_threads);
    envelope_.SetCodecPool(codec_pool_);
  }
  if (config_.runtime) {
    // A fleet standby rides the shared worker pool: its GETs route to the
    // tenant's namespaced stack and bill a per-standby account.
    route_.store = store_;
    route_.account = std::make_shared<TransferAccount>(
        config_.tenant_id.empty() ? options_.component : config_.tenant_id);
    transfers_ = config_.runtime->transfers().get();
  } else {
    owned_transfers_ = std::make_shared<TransferManager>(
        store_, MakeTransferOptions(config_, config_.recovery_prefetch),
        clock_);
    owned_transfers_->RegisterMetrics(&obs_->registry, options_.component);
    transfers_ = owned_transfers_.get();
  }

  MetricLabels labels;
  if (!config_.tenant_id.empty()) labels = {{"tenant", config_.tenant_id}};
  obs_->registry.RegisterGauge(
      this, "ginja_standby_lag_objects", labels,
      [this] { return static_cast<double>(lag_objects()); });
  obs_->registry.RegisterGauge(
      this, "ginja_standby_lag_micros", labels,
      [this] { return static_cast<double>(lag_micros()); });
  obs_->registry.RegisterCounter(this, "ginja_standby_objects_applied_total",
                                 labels, &objects_applied_);
  obs_->registry.RegisterCounter(this, "ginja_standby_resyncs_total",
                                 std::move(labels), &resyncs_);
}

StandbyReplica::~StandbyReplica() {
  Stop();
  obs_->registry.Unregister(this);
}

std::shared_ptr<MemFs> StandbyReplica::image() const {
  std::lock_guard<std::mutex> lock(mu_);
  return image_;
}

RecoveryReport StandbyReplica::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  return report_;
}

std::uint64_t StandbyReplica::lag_objects() const {
  // newest_seen_ holds ts+1 (0 = nothing seen); next_ts_ is the frontier.
  // Caught up when every seen object is below the frontier.
  const std::uint64_t newest_plus1 =
      newest_seen_.load(std::memory_order_acquire);
  const std::uint64_t next = next_ts_.load(std::memory_order_acquire);
  return newest_plus1 > next ? newest_plus1 - next : 0;
}

std::uint64_t StandbyReplica::lag_micros() const {
  const std::uint64_t since = behind_since_us_.load(std::memory_order_acquire);
  if (since == 0 || lag_objects() == 0) return 0;
  const std::uint64_t now = clock_->NowMicros();
  return now > since ? now - since : 0;
}

void StandbyReplica::UpdateLag() {
  const std::uint64_t lag = lag_objects();
  std::uint64_t peak = peak_lag_objects_.load(std::memory_order_relaxed);
  while (lag > peak && !peak_lag_objects_.compare_exchange_weak(
                           peak, lag, std::memory_order_relaxed)) {
  }
  if (lag == 0) {
    behind_since_us_.store(0, std::memory_order_release);
  } else if (behind_since_us_.load(std::memory_order_acquire) == 0) {
    behind_since_us_.store(clock_->NowMicros(), std::memory_order_release);
  }
}

TailApplyContext StandbyReplica::MakeContext(
    const std::shared_ptr<MemFs>& target, std::size_t items) {
  TailApplyContext ctx;
  ctx.transfers = transfers_;
  ctx.route = route_;
  ctx.envelope = &envelope_;
  ctx.target = target;
  ctx.clock = clock_;
  ctx.tracer = &obs_->tracer;
  ctx.window =
      static_cast<std::size_t>(std::max(1, config_.recovery_prefetch));
  ctx.fetch_stage = TraceStage::kTailFetch;
  ctx.apply_stage = TraceStage::kTailApply;
  ctx.trace_id_base = trace_seq_;
  trace_seq_ += items;
  return ctx;
}

Status StandbyReplica::Start() {
  GINJA_RETURN_IF_ERROR(Rebuild(/*bootstrap=*/true));
  stop_.store(false);
  running_.store(true);
  thread_ = std::thread([this] { TailLoop(); });
  return Status::Ok();
}

void StandbyReplica::Stop() {
  if (!running_.exchange(false)) return;
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
}

void StandbyReplica::TailLoop() {
  while (!stop_.load()) {
    std::size_t progressed = 0;
    Status st = resync_needed_ ? Rebuild(/*bootstrap=*/false)
                               : PollOnce(&progressed);
    if (!st.ok()) {
      // Transient cloud trouble: the next poll retries; a resync request
      // raised mid-poll is honoured on the next pass.
      Log(LogLevel::kWarn, "standby", "tail poll failed",
          {{"status", st.ToString()}});
    }
    if (progressed > 0) {
      gap_polls_ = 0;
    } else if (!resync_needed_ && lag_objects() > 0) {
      // Objects are visible past the frontier but the frontier object is
      // not: usually an upload landing out of order, permanently a GC'd
      // frontier (the standby fell behind retention).
      if (++gap_polls_ >= std::max(1, options_.resync_after_gap_polls)) {
        resync_needed_ = true;
        gap_polls_ = 0;
      }
    } else {
      gap_polls_ = 0;
    }
    // Sleep in small slices so Stop() is responsive under scaled clocks.
    std::uint64_t remaining = options_.poll_interval_us;
    while (remaining > 0 && !stop_.load()) {
      const std::uint64_t slice = std::min<std::uint64_t>(remaining, 20'000);
      clock_->SleepMicros(slice);
      remaining -= slice;
    }
  }
}

Status StandbyReplica::ApplyItems(const std::vector<TailPlanItem>& items,
                                  std::size_t* progressed) {
  if (items.empty()) return Status::Ok();
  std::shared_ptr<MemFs> target;
  {
    std::lock_guard<std::mutex> lock(mu_);
    target = image_;
  }
  TailApplyContext ctx = MakeContext(target, items.size());
  RecoveryReport r;
  TailApplyResult applied = ApplyTailPlan(items, ctx, &r);
  {
    std::lock_guard<std::mutex> lock(mu_);
    MergeReport(&report_, r);
  }
  objects_applied_.Add(applied.items_applied);
  *progressed += applied.items_applied;
  // Advance the frontier over the applied prefix.
  for (std::size_t i = 0; i < applied.items_applied; ++i) {
    const TailPlanItem& item = items[i];
    if (item.is_tail) {
      if (auto id = TailObjectId::Decode(item.name)) {
        tail_seg_cursor_ = id->seg + 1;
      }
      next_ts_.store(item.wal_ts, std::memory_order_release);
    } else {
      next_ts_.store(item.wal_ts + 1, std::memory_order_release);
      tail_seg_cursor_ = 0;
    }
  }
  if (!applied.db_failure.ok()) return applied.db_failure;
  if (applied.wal_truncated && applied.items_applied < items.size()) {
    const TailPlanItem& failed = items[applied.items_applied];
    if (!failed.is_tail &&
        applied.wal_failure.code() == ErrorCode::kNotFound) {
      // The frontier WAL object vanished between LIST and GET: garbage
      // collection raced past the tail. Only a full re-list (which picks
      // up the covering checkpoint) can move forward.
      resync_needed_ = true;
    }
    // A vanished *tail* object is the stream-close fold: the finished WAL
    // object supersedes it and the next poll applies that instead. Other
    // failures are transient; the next poll retries from the frontier.
  }
  return Status::Ok();
}

Status StandbyReplica::PollOnce(std::size_t* progressed) {
  ++polls_;
  const std::uint64_t next = next_ts_.load(std::memory_order_acquire);
  // Cursor derived from the next *expected* ts — see the header caveat on
  // unpadded timestamps. Periodically fall back to the full prefix so a
  // digit rollover with a GC'd boundary object cannot stall the tail.
  const bool full_scan =
      options_.full_list_every_polls > 0 &&
      polls_ % static_cast<std::uint64_t>(options_.full_list_every_polls) == 0;
  auto listing = full_scan
                     ? store_->List("WAL/")
                     : store_->List("WAL/", "WAL/" + std::to_string(next));
  if (!listing.ok()) return listing.status();
  std::optional<std::uint64_t> newest;
  std::vector<TailPlanItem> items =
      ContinueWalPlan(*listing, next, options_.open_at_ts, &newest);
  if (newest && options_.open_at_ts && *newest > *options_.open_at_ts) {
    // A time-travel standby ignores objects past its cap: they are not
    // lag, they are the future it was asked not to have.
    newest = *options_.open_at_ts;
  }
  if (newest && *newest + 1 > newest_seen_.load(std::memory_order_acquire)) {
    newest_seen_.store(*newest + 1, std::memory_order_release);
  }
  GINJA_RETURN_IF_ERROR(ApplyItems(items, progressed));

  // Early-ack streaming: the acked segment prefix of the (unfinished)
  // frontier object is applied as it grows, keeping lag sub-batch.
  const std::uint64_t frontier = next_ts_.load(std::memory_order_acquire);
  if (config_.early_ack && !resync_needed_ &&
      (!options_.open_at_ts || frontier <= *options_.open_at_ts)) {
    auto tails =
        store_->List("WALTAIL/" + std::to_string(frontier) + "_");
    if (!tails.ok()) return tails.status();
    std::map<std::uint32_t, std::vector<TailObjectId>> segs;
    for (const auto& meta : *tails) {
      auto id = TailObjectId::Decode(meta.name);
      if (id && id->ts == frontier) segs[id->seg].push_back(*id);
    }
    GINJA_RETURN_IF_ERROR(ApplyItems(
        BuildTailSegmentItems(segs, frontier, tail_seg_cursor_), progressed));
  }
  // On the periodic full scan, an idle pass also probes DB/ for a
  // checkpoint that folded timestamps past the frontier — the only way
  // the bucket gets ahead of the image with no WAL visible (the primary
  // checkpointed while we lagged and GC deleted the evidence).
  if (full_scan && *progressed == 0 && !resync_needed_ &&
      CheckpointAheadOfFrontier()) {
    resync_needed_ = true;
  }
  UpdateLag();
  return Status::Ok();
}

bool StandbyReplica::CheckpointAheadOfFrontier() {
  auto objects = store_->List("DB/");
  if (!objects.ok()) return false;
  const std::uint64_t next = next_ts_.load(std::memory_order_acquire);
  // Distinct parts per upload (keyed by sequence number); only a complete
  // set counts — a torn upload is invisible, exactly as in BuildTailPlan.
  std::map<std::uint64_t, std::pair<std::uint32_t, std::set<std::uint32_t>>>
      groups;
  for (const auto& meta : *objects) {
    auto id = DbObjectId::Decode(meta.name);
    // ts 0 is ambiguous: a DB object uploaded before any WAL existed also
    // encodes 0 (see BuildTailPlan); never treat it as "ahead".
    if (!id || id->ts == 0 || id->ts < next) continue;
    if (options_.open_at_ts && id->ts > *options_.open_at_ts) continue;
    auto& group = groups[id->seq];
    group.first = id->total_parts;
    group.second.insert(id->part);
  }
  for (const auto& [seq, group] : groups) {
    if (group.first > 0 && group.second.size() == group.first) return true;
  }
  return false;
}

Status StandbyReplica::Rebuild(bool bootstrap) {
  auto objects = store_->List("");
  if (!objects.ok()) return objects.status();
  TailPlan plan = BuildTailPlan(*objects, options_.open_at_ts);
  if (plan.newest_wal_ts &&
      *plan.newest_wal_ts + 1 > newest_seen_.load(std::memory_order_acquire)) {
    newest_seen_.store(*plan.newest_wal_ts + 1, std::memory_order_release);
  }

  auto fresh = std::make_shared<MemFs>();
  TailApplyContext ctx = MakeContext(fresh, plan.items.size());
  // Warm resync against delta dumps: the outgoing image donates chunks
  // whose bytes still hash to the manifest's digest, so only the chunks
  // that actually changed are downloaded. Bootstrap passes an empty image
  // (nothing matches — a plain full recovery).
  {
    std::lock_guard<std::mutex> lock(mu_);
    ctx.chunk_source = image_;
  }
  RecoveryReport r;
  TailApplyResult applied = ApplyTailPlan(plan.items, ctx, &r);
  if (!applied.db_failure.ok()) return applied.db_failure;

  // The frontier the plan would leave us at — or, if the apply truncated
  // early (an object vanished mid-build), the truncation point itself, so
  // tailing re-fetches from there instead of skipping past it.
  std::uint64_t resume_ts = plan.resume_ts;
  std::uint32_t resume_segs = plan.resume_tail_segs;
  if (applied.wal_truncated && applied.items_applied < plan.items.size()) {
    const TailPlanItem& failed = plan.items[applied.items_applied];
    resume_ts = failed.wal_ts;
    resume_segs = 0;
    if (failed.is_tail) {
      if (auto id = TailObjectId::Decode(failed.name)) resume_segs = id->seg;
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    image_ = std::move(fresh);
    MergeReport(&report_, r);
    report_.found_dump = report_.found_dump || plan.found_dump;
  }
  objects_applied_.Add(applied.items_applied);
  next_ts_.store(resume_ts, std::memory_order_release);
  tail_seg_cursor_ = resume_segs;
  resync_needed_ = false;
  gap_polls_ = 0;
  if (!bootstrap) {
    resyncs_.Add();
    Log(LogLevel::kWarn, "standby", "full resync",
        {{"resume_ts", resume_ts}, {"objects", applied.items_applied}});
  }
  UpdateLag();
  return Status::Ok();
}

Result<PromotionReport> StandbyReplica::Promote() {
  const std::uint64_t t0 = clock_->NowMicros();
  Stop();
  PromotionReport pr;
  // Fence first (paper-style takeover order): the epoch bump reaches the
  // bucket before any drained byte is trusted, so an old primary can no
  // longer publish behind our back. `ginja::` qualifies the free function
  // past this member's own name.
  auto epoch = ginja::Promote(*store_, envelope_);
  if (!epoch.ok()) return epoch.status();
  pr.epoch = *epoch;
  // The local token closes the heartbeat window: a FencedStore sharing it
  // rejects the zombie's already-in-flight AppendPart/Finish immediately.
  if (options_.fence) options_.fence->Raise(*epoch);

  const RecoveryReport before = report();
  const std::uint64_t resyncs_before = resyncs();
  // Drain the residual tail: everything the fenced primary managed to
  // publish. Two consecutive empty passes make the drain race-free against
  // PUTs that passed the fence check just before the epoch bump.
  int empty_passes = 0;
  int failures = 0;
  bool tried_resync = false;
  while (empty_passes < 2) {
    std::size_t progressed = 0;
    Status st;
    if (resync_needed_) {
      st = Rebuild(/*bootstrap=*/false);
      if (st.ok()) progressed = 1;  // fresh image — re-poll from its frontier
    } else {
      st = PollOnce(&progressed);
    }
    if (!st.ok()) {
      if (++failures > 5) return st;
      continue;
    }
    failures = 0;
    if (progressed > 0) {
      empty_passes = 0;
      continue;
    }
    ++empty_passes;
    if (empty_passes >= 2 && !tried_resync &&
        (lag_objects() > 0 || CheckpointAheadOfFrontier())) {
      // The bucket is ahead of an unreachable frontier: either WAL is
      // visible past a GC'd frontier object, or — with no WAL visible at
      // all — a checkpoint folded timestamps we never applied (promotion
      // raced the checkpointer + GC). One full resync picks up the
      // covering checkpoint; a hole that survives the resync is a
      // never-acknowledged upload and the drain stops at it.
      resync_needed_ = true;
      tried_resync = true;
      empty_passes = 0;
    }
  }

  const RecoveryReport after = report();
  pr.residual_wal_objects =
      after.wal_objects_applied - before.wal_objects_applied;
  pr.residual_tail_segments =
      after.tail_segments_applied - before.tail_segments_applied;
  pr.resynced = resyncs() > resyncs_before;
  pr.recovered_to_ts = after.recovered_to_ts;
  // Objects remain visible past the drained frontier: the tail is truncated
  // at a hole (a never-acknowledged upload) — the bounded S-write loss.
  pr.gap_detected = lag_objects() > 0;
  pr.rto_micros = clock_->NowMicros() - t0;
  promoted_.store(true, std::memory_order_release);
  Log(LogLevel::kInfo, "standby", "promoted",
      {{"epoch", pr.epoch},
       {"rto_us", pr.rto_micros},
       {"residual_wal", pr.residual_wal_objects},
       {"residual_tails", pr.residual_tail_segments},
       {"recovered_to_ts", pr.recovered_to_ts}});
  return pr;
}

}  // namespace ginja
