#include "ginja/object_id.h"

#include <charconv>
#include <vector>

namespace ginja {

namespace {

std::optional<std::uint64_t> ParseU64(std::string_view s) {
  std::uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

// Splits on '_' from the right into exactly `n` trailing fields; the
// remainder (which may itself contain '_' from escaped file names... it
// cannot: we escape '/' only, but table names could contain '_') is
// returned as the head. To be unambiguous, numeric fields are parsed from
// fixed positions right-to-left.
std::vector<std::string_view> RSplit(std::string_view s, char sep, int n) {
  std::vector<std::string_view> fields;
  for (int i = 0; i < n; ++i) {
    const auto pos = s.rfind(sep);
    if (pos == std::string_view::npos) return {};
    fields.push_back(s.substr(pos + 1));
    s = s.substr(0, pos);
  }
  fields.push_back(s);  // head
  return fields;        // [field_n, ..., field_1, head]
}

}  // namespace

std::string EscapePath(std::string_view path) {
  std::string out(path);
  for (char& c : out) {
    if (c == '/') c = '|';
  }
  return out;
}

std::string UnescapePath(std::string_view escaped) {
  std::string out(escaped);
  for (char& c : out) {
    if (c == '|') c = '/';
  }
  return out;
}

std::string WalObjectId::Encode() const {
  return "WAL/" + std::to_string(ts) + "_" + EscapePath(filename) + "_" +
         std::to_string(offset) + "_" + std::to_string(max_lsn);
}

std::optional<WalObjectId> WalObjectId::Decode(std::string_view name) {
  if (!name.starts_with("WAL/")) return std::nullopt;
  name.remove_prefix(4);
  // Layout: <ts>_<escaped>_<offset>_<maxlsn>; escaped may contain '_'.
  const auto fields = RSplit(name, '_', 2);  // [maxlsn, offset, ts_escaped]
  if (fields.size() != 3) return std::nullopt;
  const auto max_lsn = ParseU64(fields[0]);
  const auto offset = ParseU64(fields[1]);
  if (!max_lsn || !offset) return std::nullopt;
  const std::string_view head = fields[2];
  const auto us = head.find('_');
  if (us == std::string_view::npos) return std::nullopt;
  const auto ts = ParseU64(head.substr(0, us));
  if (!ts && head.substr(0, us) != "0") return std::nullopt;

  WalObjectId out;
  out.ts = ts.value_or(0);
  out.filename = UnescapePath(head.substr(us + 1));
  out.offset = *offset;
  out.max_lsn = *max_lsn;
  return out;
}

std::string TailObjectId::Encode() const {
  return "WALTAIL/" + std::to_string(ts) + "_" + std::to_string(seg) + "_" +
         std::to_string(replica) + "_" + std::to_string(max_lsn);
}

std::optional<TailObjectId> TailObjectId::Decode(std::string_view name) {
  if (!name.starts_with("WALTAIL/")) return std::nullopt;
  name.remove_prefix(8);
  const auto fields = RSplit(name, '_', 3);  // [maxlsn, replica, seg, ts]
  if (fields.size() != 4) return std::nullopt;
  const auto max_lsn = ParseU64(fields[0]);
  const auto replica = ParseU64(fields[1]);
  const auto seg = ParseU64(fields[2]);
  const auto ts = ParseU64(fields[3]);
  if (!max_lsn || !replica || !seg || !ts) return std::nullopt;
  TailObjectId out;
  out.ts = *ts;
  out.seg = static_cast<std::uint32_t>(*seg);
  out.replica = static_cast<std::uint32_t>(*replica);
  out.max_lsn = *max_lsn;
  return out;
}

std::string DbObjectId::Encode() const {
  return "DB/" + std::to_string(ts) + "_" +
         std::string(type == DbObjectType::kDump       ? "dump"
                     : type == DbObjectType::kManifest ? "manifest"
                                                       : "checkpoint") +
         "_" + std::to_string(size) + "_s" + std::to_string(seq) + "_l" +
         std::to_string(redo_lsn) + "_p" + std::to_string(part) + "of" +
         std::to_string(total_parts);
}

std::optional<DbObjectId> DbObjectId::Decode(std::string_view name) {
  if (!name.starts_with("DB/")) return std::nullopt;
  name.remove_prefix(3);
  // [pXofY, lN, sN, size, ts_type...]
  const auto fields = RSplit(name, '_', 4);
  if (fields.size() != 5) return std::nullopt;

  DbObjectId out;
  // part field: "p<part>of<total>"
  std::string_view part_field = fields[0];
  if (!part_field.starts_with('p')) return std::nullopt;
  part_field.remove_prefix(1);
  const auto of = part_field.find("of");
  if (of == std::string_view::npos) return std::nullopt;
  const auto part = ParseU64(part_field.substr(0, of));
  const auto total = ParseU64(part_field.substr(of + 2));
  if (!part || !total || *total == 0 || *part >= *total) return std::nullopt;
  out.part = static_cast<std::uint32_t>(*part);
  out.total_parts = static_cast<std::uint32_t>(*total);

  std::string_view lsn_field = fields[1];
  if (!lsn_field.starts_with('l')) return std::nullopt;
  const auto redo_lsn = ParseU64(lsn_field.substr(1));
  if (!redo_lsn) return std::nullopt;
  out.redo_lsn = *redo_lsn;

  std::string_view seq_field = fields[2];
  if (!seq_field.starts_with('s')) return std::nullopt;
  const auto seq = ParseU64(seq_field.substr(1));
  if (!seq && seq_field.substr(1) != "0") return std::nullopt;
  out.seq = seq.value_or(0);

  const auto size = ParseU64(fields[3]);
  if (!size && fields[3] != "0") return std::nullopt;
  out.size = size.value_or(0);

  const std::string_view head = fields[4];  // "<ts>_<type>"
  const auto us = head.find('_');
  if (us == std::string_view::npos) return std::nullopt;
  const auto ts = ParseU64(head.substr(0, us));
  if (!ts && head.substr(0, us) != "0") return std::nullopt;
  out.ts = ts.value_or(0);
  const std::string_view type = head.substr(us + 1);
  if (type == "dump") {
    out.type = DbObjectType::kDump;
  } else if (type == "checkpoint") {
    out.type = DbObjectType::kCheckpoint;
  } else if (type == "manifest") {
    out.type = DbObjectType::kManifest;
  } else {
    return std::nullopt;
  }
  return out;
}

}  // namespace ginja
