// Point-in-time recovery retention (paper §5.4).
//
// The paper's garbage collector deletes everything a new checkpoint
// supersedes. To keep the database restorable to earlier moments, §5.4
// modifies it: for a protected point T, keep (1) the most recent dump d
// written before T, (2) the incremental checkpoints between d and T, and
// (3) the WAL objects between the last kept checkpoint and T.
//
// This implementation computes that keep-set purely from object *names*
// (every DB object carries its redo LSN, every WAL object its max LSN), so
// retention survives reboots, and prunes precisely *between* snapshots —
// the storage-cost trade-off the paper calls out is exactly the size of
// these keep-sets (approximately one dump + checkpoint chain per point).
#pragma once

#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "ginja/cloud_view.h"

namespace ginja {

// A restore point the cloud can currently serve: the database state as of
// WAL-object timestamp `ts`.
struct RestorePoint {
  std::uint64_t ts = 0;
  bool is_snapshot = false;  // true when explicitly protected
};

// Thread-safe set of protected timestamps, shared between the operator
// (who calls Protect when taking a snapshot) and the checkpoint pipeline's
// garbage collector.
class RetentionPolicy {
 public:
  // Protects the state as of WAL timestamp `ts` ("keep the database state
  // on date-time T" — timestamps are Ginja's time axis).
  void Protect(std::uint64_t ts);
  void Release(std::uint64_t ts);
  std::vector<std::uint64_t> ProtectedTs() const;
  bool Empty() const;

  // Object names that garbage collection must NOT delete, given the
  // current cloud contents: the union over protected points of
  // {latest dump <= T} ∪ {checkpoints in between} ∪ {WAL objects with
  // ts <= T still needed past the last kept checkpoint's redo LSN}.
  std::set<std::string> KeepSet(const std::vector<WalObjectId>& wal_objects,
                                const std::vector<DbObjectId>& db_objects) const;

 private:
  mutable std::mutex mu_;
  std::set<std::uint64_t> protected_ts_;
};

// Enumerates the moments a recovery can currently target: every WAL-object
// timestamp present in the cloud, with protected snapshots flagged.
std::vector<RestorePoint> ListRestorePoints(const CloudView& view,
                                            const RetentionPolicy* policy);

}  // namespace ginja
