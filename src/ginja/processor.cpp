#include "ginja/processor.h"

#include <charconv>

#include "obs/log.h"

namespace ginja {

namespace {

// Parses the segment index back out of a PostgreSQL segment name
// ("pg_xlog/<timeline:8hex><hi:8hex><lo:8hex>", lo is 1-based).
std::optional<std::uint64_t> PostgresSegmentIndex(std::string_view path) {
  constexpr std::string_view kPrefix = "pg_xlog/";
  if (!path.starts_with(kPrefix) || path.size() != kPrefix.size() + 24) {
    return std::nullopt;
  }
  auto hex = [&](std::size_t pos) -> std::optional<std::uint64_t> {
    std::uint64_t v = 0;
    const char* begin = path.data() + kPrefix.size() + pos;
    auto [p, ec] = std::from_chars(begin, begin + 8, v, 16);
    if (ec != std::errc() || p != begin + 8) return std::nullopt;
    return v;
  };
  const auto hi = hex(8);
  const auto lo = hex(16);
  if (!hi || !lo || *lo == 0) return std::nullopt;
  return *hi * 256 + (*lo - 1);
}

}  // namespace

DbIoProcessor::DbIoProcessor(DbLayout layout, CommitPipeline* commits,
                             CheckpointPipeline* checkpoints)
    : layout_(layout), commits_(commits), checkpoints_(checkpoints) {}

std::uint64_t DbIoProcessor::LogicalWalPage(const std::string& path,
                                            std::uint64_t offset) {
  if (!layout_.circular_wal) {
    const auto segment = PostgresSegmentIndex(path).value_or(0);
    return segment * layout_.PagesPerSegment() + offset / layout_.wal_page_size;
  }
  // Circular log: recover the slot index, then count wrap epochs — the log
  // only ever moves forward, so a slot smaller than the last one seen means
  // the writer wrapped.
  std::uint64_t file_index = 0;
  constexpr std::string_view kPrefix = "ib_logfile";
  if (path.size() > kPrefix.size()) {
    file_index = std::strtoull(path.c_str() + kPrefix.size(), nullptr, 10);
  }
  std::uint64_t slot;
  if (file_index == 0) {
    slot = offset / layout_.wal_page_size - layout_.wal_header_pages;
  } else {
    slot = (layout_.PagesPerSegment() - layout_.wal_header_pages) +
           (file_index - 1) * layout_.PagesPerSegment() +
           offset / layout_.wal_page_size;
  }
  std::lock_guard<std::mutex> lock(wrap_mu_);
  if (any_wal_write_ && slot < last_slot_) ++epoch_;
  last_slot_ = slot;
  any_wal_write_ = true;
  return epoch_ * layout_.CircularSlots() + slot;
}

void DbIoProcessor::OnWalWrite(const FileEvent& event) {
  const std::uint64_t page = LogicalWalPage(event.path, event.offset);
  // The page header's used-count bounds the stream content this write
  // carries; max_lsn is the exclusive end of that range.
  std::uint64_t used = layout_.WalPayloadSize();
  if (event.data.size() >= 6) {
    used = GetU16(event.data.data() + 4);
  }
  WalWrite write;
  write.file = event.path;
  write.offset = event.offset;
  write.data = event.data;
  write.max_lsn = page * layout_.WalPayloadSize() + used;
  // Lock-free CAS-max keeps the hot WAL path free of the processor mutex;
  // a lost race means the other writer's larger value already landed.
  Lsn prev = last_wal_frontier_.load(std::memory_order_relaxed);
  while (prev < write.max_lsn &&
         !last_wal_frontier_.compare_exchange_weak(
             prev, write.max_lsn, std::memory_order_release,
             std::memory_order_relaxed)) {
  }
  commits_->Submit(std::move(write));
}

void DbIoProcessor::OnDataWrite(const FileEvent& event) {
  // Table 1: the first data-file write is the checkpoint-begin event
  // (pg_clog for PostgreSQL, any ibdata/.ibd/.frm write for MySQL).
  if (!checkpoints_->InCheckpoint()) checkpoints_->OnCheckpointBegin();
  checkpoints_->AddWrite({event.path, event.offset, event.data});
}

void DbIoProcessor::OnControlWrite(const FileEvent& event) {
  if (!checkpoints_->InCheckpoint()) checkpoints_->OnCheckpointBegin();
  checkpoints_->AddWrite({event.path, event.offset, event.data});
  // The control block carries the redo LSN; it drives LSN-safe WAL GC.
  ControlBlock block;
  Lsn redo_lsn = 0;
  if (ControlBlock::Decode(event.data.data(), event.data.size(), &block)) {
    redo_lsn = block.checkpoint_lsn;
  }
  checkpoints_->OnCheckpointEnd(
      redo_lsn, last_wal_frontier_.load(std::memory_order_acquire));
}

void DbIoProcessor::OnFileEvent(const FileEvent& event) {
  if (event.kind != FileEvent::Kind::kWrite) {
    // GC handles removals; but a removal or truncation shrinks the local
    // database, so the cached 150%-rule size must be re-walked. (Writes
    // keep the cache exact incrementally — see AddWrite.)
    checkpoints_->InvalidateLocalDbSizeCache();
    return;
  }
  switch (layout_.Classify(event.path, event.offset)) {
    case FileKind::kWalSegment:
      OnWalWrite(event);
      break;
    case FileKind::kClog:
    case FileKind::kTableData:
    case FileKind::kCatalog:
      OnDataWrite(event);
      break;
    case FileKind::kControl:
      OnControlWrite(event);
      break;
    case FileKind::kOther:
      unclassified_.Add();
      // Enabled() gate keeps the field construction off the hot path; an
      // unclassified write is unprotected data, worth knowing when tuning
      // a layout, but routine for scratch/temp files.
      if (GlobalLog().Enabled(LogLevel::kDebug)) {
        Log(LogLevel::kDebug, "processor", "unclassified file event",
            {{"path", event.path}});
      }
      break;
  }
}

std::unique_ptr<DbIoProcessor> MakePostgresProcessor(
    CommitPipeline* commits, CheckpointPipeline* checkpoints) {
  return std::make_unique<DbIoProcessor>(DbLayout::Postgres(), commits,
                                         checkpoints);
}

std::unique_ptr<DbIoProcessor> MakeMySqlProcessor(
    CommitPipeline* commits, CheckpointPipeline* checkpoints) {
  return std::make_unique<DbIoProcessor>(DbLayout::MySql(), commits,
                                         checkpoints);
}

}  // namespace ginja
