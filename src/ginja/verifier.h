// Backup verification (paper §5.4): prove the DR plan works without
// touching the production system. Three validations, exactly as the paper
// lists them:
//   1. every object downloaded from the cloud passes its MAC check
//      (performed inside Envelope::Decode during Recover);
//   2. the DBMS itself verifies the rebuilt tables and WAL segments by
//      running its crash recovery (Database::Open);
//   3. a service-specific check script runs queries against the recovered
//      database.
#pragma once

#include <functional>
#include <string>

#include "cloud/object_store.h"
#include "db/database.h"
#include "ginja/config.h"
#include "ginja/ginja.h"

namespace ginja {

struct VerificationReport {
  bool objects_valid = false;   // step 1: MACs + envelopes decoded
  bool dbms_recovered = false;  // step 2: engine crash recovery succeeded
  bool checks_passed = false;   // step 3: service-specific queries
  RecoveryReport recovery;
  std::string detail;           // first failure, for the administrator

  bool Ok() const { return objects_valid && dbms_recovered && checks_passed; }
};

// Recovers the backup into a scratch in-memory file system, restarts the
// database engine on it, and runs `service_checks` (may be null: step 3
// then trivially passes). Cheap: the production DBMS is never touched.
VerificationReport VerifyBackup(
    ObjectStorePtr store, const GinjaConfig& config, const DbLayout& layout,
    const std::function<bool(Database&)>& service_checks = nullptr);

}  // namespace ginja
