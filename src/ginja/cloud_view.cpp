#include "ginja/cloud_view.h"

#include <algorithm>

namespace ginja {

std::uint64_t CloudView::NextWalTs() {
  std::lock_guard<std::mutex> lock(mu_);
  any_wal_ts_ = true;
  return next_wal_ts_++;
}

std::optional<std::uint64_t> CloudView::LastAssignedWalTs() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!any_wal_ts_ || next_wal_ts_ == 0) return std::nullopt;
  return next_wal_ts_ - 1;
}

void CloudView::AddWal(const WalObjectId& id) {
  std::lock_guard<std::mutex> lock(mu_);
  wal_[id.ts] = id;
  if (id.ts >= next_wal_ts_) {
    next_wal_ts_ = id.ts + 1;
    any_wal_ts_ = true;
  }
}

void CloudView::RemoveWal(std::uint64_t ts) {
  std::lock_guard<std::mutex> lock(mu_);
  wal_.erase(ts);
}

std::vector<WalObjectId> CloudView::WalObjects() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WalObjectId> out;
  out.reserve(wal_.size());
  for (const auto& [ts, id] : wal_) out.push_back(id);
  return out;
}

std::vector<WalObjectId> CloudView::WalObjectsCoveredBy(std::uint64_t lsn) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WalObjectId> out;
  for (const auto& [ts, id] : wal_) {
    if (id.max_lsn <= lsn) out.push_back(id);
  }
  return out;
}

void CloudView::AddTail(const TailObjectId& id) {
  std::lock_guard<std::mutex> lock(mu_);
  tails_[{id.ts, id.seg, id.replica}] = id;
  // A tail proves its ts was handed out; a reboot's LIST must never
  // reissue it for a new batch.
  if (id.ts >= next_wal_ts_) {
    next_wal_ts_ = id.ts + 1;
    any_wal_ts_ = true;
  }
}

void CloudView::RemoveTail(const TailObjectId& id) {
  std::lock_guard<std::mutex> lock(mu_);
  tails_.erase({id.ts, id.seg, id.replica});
}

std::vector<TailObjectId> CloudView::TailObjects() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TailObjectId> out;
  out.reserve(tails_.size());
  for (const auto& [key, id] : tails_) out.push_back(id);
  return out;
}

std::vector<TailObjectId> CloudView::TailsForTs(std::uint64_t ts) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TailObjectId> out;
  for (auto it = tails_.lower_bound({ts, 0, 0}); it != tails_.end(); ++it) {
    if (std::get<0>(it->first) != ts) break;
    out.push_back(it->second);
  }
  return out;
}

std::vector<TailObjectId> CloudView::TailGarbage(std::uint64_t redo_lsn) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TailObjectId> out;
  for (const auto& [key, id] : tails_) {
    if (id.max_lsn <= redo_lsn || wal_.count(id.ts) > 0) out.push_back(id);
  }
  return out;
}

std::size_t CloudView::TailCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tails_.size();
}

std::uint64_t CloudView::NextCheckpointSeq() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_++;
}

void CloudView::AddDb(const DbObjectId& id) {
  std::lock_guard<std::mutex> lock(mu_);
  db_[{id.seq, id.part}] = id;
  if (id.seq >= next_seq_) next_seq_ = id.seq + 1;
}

void CloudView::RemoveDb(const DbObjectId& id) {
  std::lock_guard<std::mutex> lock(mu_);
  db_.erase({id.seq, id.part});
}

std::vector<DbObjectId> CloudView::DbObjects() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DbObjectId> out;
  out.reserve(db_.size());
  for (const auto& [key, id] : db_) out.push_back(id);
  return out;
}

std::uint64_t CloudView::TotalDbBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [key, id] : db_) total += id.size;
  return total;
}

bool CloudView::AddFromName(const std::string& name) {
  if (auto wal = WalObjectId::Decode(name)) {
    AddWal(*wal);
    return true;
  }
  if (auto tail = TailObjectId::Decode(name)) {
    AddTail(*tail);
    return true;
  }
  if (auto db = DbObjectId::Decode(name)) {
    AddDb(*db);
    return true;
  }
  return false;
}

void CloudView::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  wal_.clear();
  tails_.clear();
  db_.clear();
  next_wal_ts_ = 0;
  next_seq_ = 0;
  any_wal_ts_ = false;
}

std::size_t CloudView::WalCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_.size();
}

std::size_t CloudView::DbCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return db_.size();
}

}  // namespace ginja
