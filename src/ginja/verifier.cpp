#include "ginja/verifier.h"

#include "fs/mem_fs.h"

namespace ginja {

VerificationReport VerifyBackup(
    ObjectStorePtr store, const GinjaConfig& config, const DbLayout& layout,
    const std::function<bool(Database&)>& service_checks) {
  VerificationReport report;

  auto scratch = std::make_shared<MemFs>();
  Status st = Ginja::Recover(store, config, layout, scratch, &report.recovery);
  if (!st.ok()) {
    report.detail = "recovery failed: " + st.ToString();
    return report;
  }
  report.objects_valid = true;  // Decode() verified every MAC on the way

  Database db(scratch, layout);
  st = db.Open();
  if (!st.ok()) {
    report.detail = "DBMS restart failed: " + st.ToString();
    return report;
  }
  report.dbms_recovered = true;

  if (service_checks) {
    report.checks_passed = service_checks(db);
    if (!report.checks_passed) report.detail = "service checks failed";
  } else {
    report.checks_passed = true;
  }
  return report;
}

}  // namespace ginja
