// The checkpoint pipeline — paper Algorithm 3 / the "Checkpointer" of Fig. 3.
//
// The processor feeds it the data-file writes it observes between the
// checkpoint-begin and checkpoint-end events (Table 1). At checkpoint end
// the collected writes are packaged as a DB object — an incremental
// checkpoint, or a full dump when the cloud-side DB volume reaches 150% of
// the local database size — and a background thread uploads it and then
// garbage-collects:
//   * WAL objects whose covered WAL-stream range lies entirely below the
//     checkpoint's redo LSN (a prefix in ts order; see object_id.h for why
//     the LSN rule rather than the paper's ts rule);
//   * on a dump, every older DB object.
// With `keep_history` (point-in-time recovery, §5.4) nothing is deleted.
#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cloud/object_store.h"
#include "cloud/transfer.h"
#include "common/blocking_queue.h"
#include "common/clock.h"
#include "common/codec/envelope.h"
#include "common/stats.h"
#include "db/layout.h"
#include "fs/vfs.h"
#include "ginja/cloud_view.h"
#include "ginja/config.h"
#include "ginja/dedup.h"
#include "ginja/payload.h"
#include "ginja/pitr.h"

namespace ginja {

struct CheckpointPipelineStats {
  Counter checkpoints_uploaded;
  Counter dumps_uploaded;
  Counter db_objects_uploaded;   // parts (incl. manifests)
  Counter bytes_uploaded;        // enveloped
  Counter wal_objects_deleted;
  Counter wal_tails_deleted;   // superseded early-ack tail objects
  Counter db_objects_deleted;
  // Delta-dump dedup (ginja/dedup.h). Hit/miss split the dump's logical
  // bytes: hits were already in the cloud (not re-uploaded), misses were
  // PUT as new CHUNK/ objects.
  Counter dedup_hit_bytes;
  Counter dedup_miss_bytes;
  Counter chunks_uploaded;
  Counter chunks_deleted;        // refcount GC reclamations
};

class CheckpointPipeline {
 public:
  // `local_vfs` is read when building dumps and when sizing the local
  // database for the 150% rule.
  CheckpointPipeline(ObjectStorePtr store, std::shared_ptr<CloudView> view,
                     std::shared_ptr<Clock> clock, const GinjaConfig& config,
                     std::shared_ptr<Envelope> envelope, VfsPtr local_vfs,
                     DbLayout layout);
  ~CheckpointPipeline();

  CheckpointPipeline(const CheckpointPipeline&) = delete;
  CheckpointPipeline& operator=(const CheckpointPipeline&) = delete;

  void Start();
  void Stop();   // drains pending uploads
  void Kill();   // abandons them (crash simulation)

  // -- processor-facing API (called on the DBMS thread) -----------------------

  // First write of a checkpoint: captures the last uploaded-WAL timestamp
  // (Alg. 3 lines 4–5).
  void OnCheckpointBegin();
  bool InCheckpoint() const;
  // Every data-file write between begin and end (Alg. 3 lines 6–7).
  void AddWrite(FileEntry entry);
  // Last write of the checkpoint: packages a DB object and hands it to the
  // upload thread (Alg. 3 lines 8–16). `redo_lsn` is the checkpoint LSN the
  // processor parsed from the control-block write; it drives WAL GC.
  // `wal_frontier` is the highest WAL-stream position the flushed pages can
  // contain; the upload is withheld until the cloud's acknowledged WAL
  // covers it, so recovery always sees a transaction-history prefix.
  void OnCheckpointEnd(Lsn redo_lsn, Lsn wal_frontier = 0);

  // Provider of the commit pipeline's acknowledged WAL frontier.
  void SetWalFrontierFn(std::function<Lsn()> fn) { wal_frontier_fn_ = std::move(fn); }

  // Wakes the checkpointer's WAL-coverage wait. The frontier provider's
  // owner calls this whenever the frontier advances (wired to the commit
  // pipeline's frontier listener), replacing the old 1 ms poll loop.
  void NotifyFrontier();

  void Drain();

  // Selective point-in-time retention (§5.4): garbage collection keeps the
  // objects each protected snapshot needs, pruning everything in between.
  void SetRetentionPolicy(std::shared_ptr<RetentionPolicy> policy) {
    retention_ = std::move(policy);
  }

  // Bytes of all non-WAL database files on local disk (the 150% baseline).
  // Cached between checkpoints: the first call walks the VFS, later calls
  // return the cached total, kept exact by AddWrite (observed data-file
  // writes extend the per-file high-water marks incrementally) and dropped
  // by InvalidateLocalDbSizeCache on removals/truncations.
  std::uint64_t LocalDbSizeBytes() const;
  // Drops the size cache; the next LocalDbSizeBytes re-walks the VFS. The
  // processor calls this on non-write file events (remove/truncate).
  void InvalidateLocalDbSizeCache();

  // Shared chunk inventory for delta dumps (dedup_dumps). Ginja injects
  // one it owns (rebuilt from the bucket on Reboot); a directly-constructed
  // pipeline uses a private index. Call before Start().
  void SetChunkIndex(std::shared_ptr<ChunkIndex> index) {
    chunk_index_ = std::move(index);
  }
  const std::shared_ptr<ChunkIndex>& chunk_index() const { return chunk_index_; }

  const CheckpointPipelineStats& stats() const { return stats_; }

 private:
  struct DbObjectJob {
    DbObjectType type = DbObjectType::kCheckpoint;
    std::uint64_t ts = 0;
    Lsn redo_lsn = 0;
    Lsn wal_frontier = 0;  // upload gate: cloud WAL must reach this first
    std::vector<FileEntry> entries;
  };

  void CheckpointerLoop();
  std::vector<FileEntry> BuildDumpEntries() const;
  // Delta-dump upload (dedup_dumps): chunk + hash the image, PUT only the
  // chunks the cloud lacks, then the manifest strictly last, then GC.
  void ProcessDeltaDump(const DbObjectJob& job);
  void GarbageCollect(const DbObjectJob& job, std::uint64_t uploaded_seq);
  // Whether `path` participates in the 150%-rule size walk (WAL segments
  // and the MySQL redo log do not).
  bool CountsTowardDbSize(const std::string& path) const;
  void RegisterMetrics();
  // {tenant=<id>} for a fleet member, empty standalone (see CommitPipeline).
  MetricLabels Labels() const {
    return config_.tenant_id.empty()
               ? MetricLabels{}
               : MetricLabels{{"tenant", config_.tenant_id}};
  }
  // Route for transfer operations: this pipeline's store, billed to the
  // tenant's account in fleet mode.
  TransferRoute Route() const { return {store_, account_}; }
  // "Transfers were aborted": the whole manager standalone, just this
  // tenant's account on a shared fleet manager.
  bool Cancelled() const {
    return account_ ? account_->cancelled() : transfer_->cancelled();
  }
  bool Tracing() const { return tracer_ != nullptr && tracer_->enabled(); }

  ObjectStorePtr store_;
  std::shared_ptr<CloudView> view_;
  std::shared_ptr<Clock> clock_;
  GinjaConfig config_;
  std::shared_ptr<Envelope> envelope_;
  VfsPtr local_vfs_;
  DbLayout layout_;
  // Concurrent part PUTs and GC DELETE fan-out; shared retry policy
  // (jittered exponential backoff) instead of the old fixed-delay loop.
  // Privately owned standalone; aliases the fleet runtime's shared manager
  // when config_.runtime is set (ops then carry Route()).
  std::shared_ptr<TransferManager> transfer_;
  // Fleet mode only: scopes Kill() cancellation and destructor quiescence
  // to this tenant's operations on the shared manager.
  TransferAccountPtr account_;
  std::shared_ptr<RetentionPolicy> retention_;
  std::shared_ptr<ChunkIndex> chunk_index_;
  std::function<Lsn()> wal_frontier_fn_;

  // LocalDbSizeBytes cache (separate lock: AddWrite touches it outside
  // mu_, and the walk must not block checkpoint begin/end).
  mutable std::mutex size_mu_;
  mutable bool size_valid_ = false;
  mutable std::uint64_t size_cached_ = 0;
  // Observed end-of-file per counted path; lets in-place page rewrites
  // (the common case) keep the cache valid and extending writes adjust the
  // total exactly instead of invalidating.
  mutable std::map<std::string, std::uint64_t> size_file_end_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::condition_variable frontier_cv_;  // WAL-coverage gate (CheckpointerLoop)
  bool in_checkpoint_ = false;
  std::uint64_t checkpoint_ts_ = 0;
  std::vector<FileEntry> collected_;
  bool killed_ = false;
  std::uint64_t inflight_jobs_ = 0;  // enqueued or currently processing

  BlockingQueue<DbObjectJob> queue_;
  std::thread thread_;
  CheckpointPipelineStats stats_;
  WriteTracer* tracer_ = nullptr;  // borrowed from config_.obs; may be null
};

}  // namespace ginja
