// Scheduled backup verification — §5.4 promises "the verification
// procedure can be fully automated"; this is that automation. A background
// thread periodically restores the backup into a scratch environment, runs
// the DBMS's own recovery plus the operator's service checks, and keeps a
// history of outcomes ("the result of the script can be sent to an
// administrator") — here delivered through a callback and an inspectable
// log.
#pragma once

#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "ginja/verifier.h"

namespace ginja {

struct VerificationOutcome {
  std::uint64_t at_micros = 0;  // model time of completion
  bool ok = false;
  std::string detail;
};

class VerificationScheduler {
 public:
  // Runs VerifyBackup against `store` every `interval_us` of model time.
  // `on_result` (optional) fires after each run — e.g. to page an
  // administrator on failure. `service_checks` as in VerifyBackup.
  VerificationScheduler(
      ObjectStorePtr store, GinjaConfig config, DbLayout layout,
      std::shared_ptr<Clock> clock, std::uint64_t interval_us,
      std::function<bool(Database&)> service_checks = nullptr,
      std::function<void(const VerificationOutcome&)> on_result = nullptr);
  ~VerificationScheduler();

  void Start();
  void Stop();

  // Runs one verification immediately (also used by the periodic thread).
  VerificationOutcome RunOnce();

  std::vector<VerificationOutcome> History() const;
  std::uint64_t runs() const { return runs_.Get(); }
  std::uint64_t failures() const { return failures_.Get(); }

 private:
  void Loop();

  ObjectStorePtr store_;
  GinjaConfig config_;
  DbLayout layout_;
  std::shared_ptr<Clock> clock_;
  std::uint64_t interval_us_;
  std::function<bool(Database&)> service_checks_;
  std::function<void(const VerificationOutcome&)> on_result_;

  std::thread thread_;
  std::atomic<bool> stop_{true};
  mutable std::mutex mu_;
  std::vector<VerificationOutcome> history_;
  Counter runs_;
  Counter failures_;
};

}  // namespace ginja
