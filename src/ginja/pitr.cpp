#include "ginja/pitr.h"

#include <algorithm>
#include <map>

namespace ginja {

void RetentionPolicy::Protect(std::uint64_t ts) {
  std::lock_guard<std::mutex> lock(mu_);
  protected_ts_.insert(ts);
}

void RetentionPolicy::Release(std::uint64_t ts) {
  std::lock_guard<std::mutex> lock(mu_);
  protected_ts_.erase(ts);
}

std::vector<std::uint64_t> RetentionPolicy::ProtectedTs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<std::uint64_t>(protected_ts_.begin(), protected_ts_.end());
}

bool RetentionPolicy::Empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return protected_ts_.empty();
}

std::set<std::string> RetentionPolicy::KeepSet(
    const std::vector<WalObjectId>& wal_objects,
    const std::vector<DbObjectId>& db_objects) const {
  std::vector<std::uint64_t> points;
  {
    std::lock_guard<std::mutex> lock(mu_);
    points.assign(protected_ts_.begin(), protected_ts_.end());
  }
  std::set<std::string> keep;
  if (points.empty()) return keep;

  // Group DB objects by checkpoint sequence for whole-object decisions.
  std::map<std::uint64_t, std::vector<DbObjectId>> by_seq;
  for (const auto& db : db_objects) by_seq[db.seq].push_back(db);

  for (const std::uint64_t point : points) {
    // (1) The most recent dump with ts <= point. A delta-dump manifest
    // (dedup_dumps) IS the dump: keeping it keeps its chunk references,
    // which is what exempts the chunks from the refcount GC's second wave.
    const std::vector<DbObjectId>* dump = nullptr;
    for (const auto& [seq, parts] : by_seq) {
      if (parts.empty() || parts[0].ts > point) continue;
      if (parts[0].type == DbObjectType::kDump ||
          parts[0].type == DbObjectType::kManifest) {
        dump = &parts;
      }
    }
    std::uint64_t dump_seq = 0;
    std::uint64_t last_redo_lsn = 0;
    if (dump != nullptr) {
      dump_seq = (*dump)[0].seq;
      last_redo_lsn = (*dump)[0].redo_lsn;
      for (const auto& part : *dump) keep.insert(part.Encode());
    }

    // (2) Incremental checkpoints between the dump and the point.
    for (const auto& [seq, parts] : by_seq) {
      if (parts.empty() || parts[0].ts > point) continue;
      if (dump != nullptr && seq <= dump_seq) continue;
      if (parts[0].type != DbObjectType::kCheckpoint) continue;
      last_redo_lsn = std::max(last_redo_lsn, parts[0].redo_lsn);
      for (const auto& part : parts) keep.insert(part.Encode());
    }

    // (3) WAL objects up to the point that redo from the last kept
    // checkpoint still needs (their stream range reaches past its redo
    // LSN). Everything earlier is already reflected in the kept pages.
    for (const auto& wal : wal_objects) {
      if (wal.ts > point) continue;
      if (wal.max_lsn <= last_redo_lsn) continue;
      keep.insert(wal.Encode());
    }
  }
  return keep;
}

std::vector<RestorePoint> ListRestorePoints(const CloudView& view,
                                            const RetentionPolicy* policy) {
  std::set<std::uint64_t> snapshots;
  if (policy != nullptr) {
    for (const auto ts : policy->ProtectedTs()) snapshots.insert(ts);
  }
  std::vector<RestorePoint> out;
  for (const auto& wal : view.WalObjects()) {
    out.push_back({wal.ts, snapshots.count(wal.ts) > 0});
  }
  // Snapshots whose WAL objects were already pruned by a later checkpoint
  // are still restorable via their kept DB objects.
  for (const auto ts : snapshots) {
    const bool listed = std::any_of(out.begin(), out.end(),
                                    [&](const RestorePoint& p) { return p.ts == ts; });
    if (!listed) out.push_back({ts, true});
  }
  std::sort(out.begin(), out.end(),
            [](const RestorePoint& a, const RestorePoint& b) { return a.ts < b.ts; });
  return out;
}

}  // namespace ginja
