// TPC-C workload (paper §8: BenchmarkSQL for PostgreSQL, jTPCC for MySQL).
//
// Implements the five TPC-C transaction types with the standard mix
// (NewOrder 45%, Payment 43%, OrderStatus 4%, Delivery 4%, StockLevel 4%),
// the 9-table schema with spec-shaped row sizes, and NURand key skew.
// The paper uses TPC-C as an update-heavy commit generator (~90% of
// transactions write); cardinalities are scaled down by `scale` so the
// simulation populates in milliseconds, preserving the I/O shape.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "db/database.h"

namespace ginja {

struct TpccConfig {
  int warehouses = 1;
  // Scale divisor applied to the spec cardinalities (spec: 100k items,
  // 3k customers/district, 10 districts). scale=100 -> 1k items, 30 cust.
  int scale = 100;
  std::uint64_t seed = 2017;

  int Items() const { return std::max(100, 100'000 / scale); }
  int Districts() const { return 10; }
  int CustomersPerDistrict() const { return std::max(30, 3'000 / scale); }
};

class TpccWorkload {
 public:
  TpccWorkload(Database* db, TpccConfig config);

  // Creates the nine tables and loads the initial population.
  Status Populate();

  enum class TxnType { kNewOrder, kPayment, kOrderStatus, kDelivery, kStockLevel };

  // Picks a type per the standard mix.
  TxnType PickType(SplitMix64& rng) const;

  // Executes one transaction of the given type with terminal-local RNG.
  // Returns kAborted for the spec's intentional 1% NewOrder rollback.
  Status Execute(TxnType type, SplitMix64& rng);

  // Approximate populated data volume (for sizing experiments).
  std::uint64_t ApproxBytes() const { return db_->ApproxDataBytes(); }

  static const char* TypeName(TxnType type);

 private:
  Status NewOrder(SplitMix64& rng);
  Status Payment(SplitMix64& rng);
  Status OrderStatus(SplitMix64& rng);
  Status Delivery(SplitMix64& rng);
  Status StockLevel(SplitMix64& rng);

  int PickWarehouse(SplitMix64& rng) const;

  Database* db_;
  TpccConfig config_;
  // Client-side district locks substitute for engine-level concurrency
  // control on the district next-order-id counters.
  std::vector<std::unique_ptr<std::mutex>> district_locks_;
  std::mutex delivery_mu_;
};

}  // namespace ginja
