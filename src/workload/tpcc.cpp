#include "workload/tpcc.h"

#include <algorithm>
#include <cstdio>

namespace ginja {

namespace {

// Spec-shaped row sizes (bytes) — close to the TPC-C field widths so WAL
// records and page fill match what the paper's DBMSs wrote.
constexpr std::size_t kWarehouseRow = 80;
constexpr std::size_t kDistrictRow = 90;
constexpr std::size_t kCustomerRow = 500;
constexpr std::size_t kItemRow = 80;
constexpr std::size_t kStockRow = 250;
constexpr std::size_t kOrderRow = 40;
constexpr std::size_t kOrderLineRow = 60;
constexpr std::size_t kHistoryRow = 46;

// NURand C constants (any value in range is spec-conformant).
constexpr std::int64_t kCLast = 123;
constexpr std::int64_t kCId = 259;
constexpr std::int64_t kOlIId = 4091;

// Rows encode a leading numeric field followed by TPC-C-shaped filler:
// "<num>|name=KXQZW|street=83jd0s|...". The numeric prefix carries whatever
// counter the transaction logic reads back (next_o_id, ytd, quantity,
// balance...); the filler mixes structured field names with random values
// so the rows compress at roughly the paper's CR of ~1.4 — important for
// the compression experiments (Fig. 6, Table 3).
Bytes MakeRow(std::int64_t num, std::size_t size) {
  char head[32];
  const int n = std::snprintf(head, sizeof head, "%lld|", static_cast<long long>(num));
  Bytes out(head, head + n);
  out.reserve(size + 24);
  static constexpr const char* kFields[] = {"name=",  "street=", "city=",
                                            "state=", "zip=",    "phone=",
                                            "credit=", "data="};
  SplitMix64 rng(static_cast<std::uint64_t>(num) * 2654435761ull + size);
  std::size_t field = 0;
  while (out.size() < size) {
    const char* name = kFields[field++ % (sizeof kFields / sizeof *kFields)];
    Append(out, View(ToBytes(name)));
    const int value_len = static_cast<int>(rng.NextInRange(6, 12));
    for (int i = 0; i < value_len; ++i) {
      out.push_back(static_cast<std::uint8_t>('a' + rng.NextBelow(26)));
    }
    out.push_back('|');
  }
  out.resize(size);
  return out;
}

std::int64_t ParseNum(const Bytes& row) {
  std::int64_t v = 0;
  bool negative = false;
  std::size_t i = 0;
  if (!row.empty() && row[0] == '-') {
    negative = true;
    i = 1;
  }
  for (; i < row.size() && row[i] >= '0' && row[i] <= '9'; ++i) {
    v = v * 10 + (row[i] - '0');
  }
  return negative ? -v : v;
}

std::string Key(const char* prefix, std::initializer_list<std::int64_t> ids) {
  std::string out = prefix;
  for (auto id : ids) {
    out += ':';
    out += std::to_string(id);
  }
  return out;
}

}  // namespace

TpccWorkload::TpccWorkload(Database* db, TpccConfig config)
    : db_(db), config_(config) {
  const int locks = config_.warehouses * config_.Districts();
  district_locks_.reserve(locks);
  for (int i = 0; i < locks; ++i) {
    district_locks_.push_back(std::make_unique<std::mutex>());
  }
}

Status TpccWorkload::Populate() {
  for (const char* table :
       {"warehouse", "district", "customer", "history", "neworder", "orders",
        "orderline", "item", "stock"}) {
    Status st = db_->CreateTable(table);
    if (!st.ok() && st.code() != ErrorCode::kAlreadyExists) return st;
  }

  SplitMix64 rng(config_.seed);

  // Items are shared across warehouses.
  {
    auto txn = db_->Begin();
    for (int i = 1; i <= config_.Items(); ++i) {
      GINJA_RETURN_IF_ERROR(db_->Put(txn, "item", Key("i", {i}),
                                     MakeRow(rng.NextInRange(100, 10000), kItemRow)));
      if (i % 500 == 0) {
        GINJA_RETURN_IF_ERROR(db_->Commit(txn));
        txn = db_->Begin();
      }
    }
    GINJA_RETURN_IF_ERROR(db_->Commit(txn));
  }

  for (int w = 1; w <= config_.warehouses; ++w) {
    auto txn = db_->Begin();
    GINJA_RETURN_IF_ERROR(
        db_->Put(txn, "warehouse", Key("w", {w}), MakeRow(0, kWarehouseRow)));
    for (int d = 1; d <= config_.Districts(); ++d) {
      // next_o_id starts at 1; "dlv" tracks the delivery frontier.
      GINJA_RETURN_IF_ERROR(
          db_->Put(txn, "district", Key("d", {w, d}), MakeRow(1, kDistrictRow)));
      GINJA_RETURN_IF_ERROR(
          db_->Put(txn, "district", Key("dlv", {w, d}), MakeRow(0, 16)));
      for (int c = 1; c <= config_.CustomersPerDistrict(); ++c) {
        GINJA_RETURN_IF_ERROR(db_->Put(txn, "customer", Key("c", {w, d, c}),
                                       MakeRow(-10, kCustomerRow)));
        if (c % 200 == 0) {
          GINJA_RETURN_IF_ERROR(db_->Commit(txn));
          txn = db_->Begin();
        }
      }
    }
    GINJA_RETURN_IF_ERROR(db_->Commit(txn));

    txn = db_->Begin();
    for (int i = 1; i <= config_.Items(); ++i) {
      GINJA_RETURN_IF_ERROR(db_->Put(txn, "stock", Key("s", {w, i}),
                                     MakeRow(rng.NextInRange(10, 100), kStockRow)));
      if (i % 300 == 0) {
        GINJA_RETURN_IF_ERROR(db_->Commit(txn));
        txn = db_->Begin();
      }
    }
    GINJA_RETURN_IF_ERROR(db_->Commit(txn));
  }
  return Status::Ok();
}

TpccWorkload::TxnType TpccWorkload::PickType(SplitMix64& rng) const {
  const auto roll = rng.NextBelow(100);
  if (roll < 45) return TxnType::kNewOrder;
  if (roll < 88) return TxnType::kPayment;
  if (roll < 92) return TxnType::kOrderStatus;
  if (roll < 96) return TxnType::kDelivery;
  return TxnType::kStockLevel;
}

const char* TpccWorkload::TypeName(TxnType type) {
  switch (type) {
    case TxnType::kNewOrder: return "NewOrder";
    case TxnType::kPayment: return "Payment";
    case TxnType::kOrderStatus: return "OrderStatus";
    case TxnType::kDelivery: return "Delivery";
    case TxnType::kStockLevel: return "StockLevel";
  }
  return "?";
}

Status TpccWorkload::Execute(TxnType type, SplitMix64& rng) {
  switch (type) {
    case TxnType::kNewOrder: return NewOrder(rng);
    case TxnType::kPayment: return Payment(rng);
    case TxnType::kOrderStatus: return OrderStatus(rng);
    case TxnType::kDelivery: return Delivery(rng);
    case TxnType::kStockLevel: return StockLevel(rng);
  }
  return Status::InvalidArgument("unknown txn type");
}

int TpccWorkload::PickWarehouse(SplitMix64& rng) const {
  return static_cast<int>(rng.NextInRange(1, config_.warehouses));
}

Status TpccWorkload::NewOrder(SplitMix64& rng) {
  const int w = PickWarehouse(rng);
  const int d = static_cast<int>(rng.NextInRange(1, config_.Districts()));
  const int c = static_cast<int>(
      NuRand(rng, 1023, 1, config_.CustomersPerDistrict(), kCId));
  (void)c;
  const int ol_cnt = static_cast<int>(rng.NextInRange(5, 15));

  // Spec clause 2.4.1.4: 1% of NewOrders roll back (invalid item).
  const bool rollback = rng.NextBelow(100) == 0;

  std::lock_guard<std::mutex> district_lock(
      *district_locks_[(w - 1) * config_.Districts() + (d - 1)]);

  auto district = db_->Get("district", Key("d", {w, d}));
  if (!district) return Status::NotFound("district");
  const std::int64_t o_id = ParseNum(*district);

  auto txn = db_->Begin();
  GINJA_RETURN_IF_ERROR(
      db_->Put(txn, "district", Key("d", {w, d}), MakeRow(o_id + 1, kDistrictRow)));
  GINJA_RETURN_IF_ERROR(
      db_->Put(txn, "orders", Key("o", {w, d, o_id}), MakeRow(c, kOrderRow)));
  GINJA_RETURN_IF_ERROR(
      db_->Put(txn, "neworder", Key("no", {w, d, o_id}), MakeRow(1, 8)));

  for (int line = 1; line <= ol_cnt; ++line) {
    const int item = static_cast<int>(
        NuRand(rng, 8191, 1, config_.Items(), kOlIId));
    auto stock = db_->Get("stock", Key("s", {w, item}));
    std::int64_t quantity = stock ? ParseNum(*stock) : 50;
    const int take = static_cast<int>(rng.NextInRange(1, 10));
    quantity = quantity >= take + 10 ? quantity - take : quantity - take + 91;
    GINJA_RETURN_IF_ERROR(
        db_->Put(txn, "stock", Key("s", {w, item}), MakeRow(quantity, kStockRow)));
    GINJA_RETURN_IF_ERROR(db_->Put(txn, "orderline",
                                   Key("ol", {w, d, o_id, line}),
                                   MakeRow(item, kOrderLineRow)));
  }

  if (rollback) return Status::Aborted("NewOrder 1% rollback");
  return db_->Commit(txn);
}

Status TpccWorkload::Payment(SplitMix64& rng) {
  const int w = PickWarehouse(rng);
  const int d = static_cast<int>(rng.NextInRange(1, config_.Districts()));
  const int c = static_cast<int>(
      NuRand(rng, 1023, 1, config_.CustomersPerDistrict(), kCId));
  const std::int64_t amount = rng.NextInRange(1, 5000);

  auto warehouse = db_->Get("warehouse", Key("w", {w}));
  auto customer = db_->Get("customer", Key("c", {w, d, c}));
  const std::int64_t w_ytd = warehouse ? ParseNum(*warehouse) : 0;
  const std::int64_t balance = customer ? ParseNum(*customer) : 0;

  auto txn = db_->Begin();
  GINJA_RETURN_IF_ERROR(db_->Put(txn, "warehouse", Key("w", {w}),
                                 MakeRow(w_ytd + amount, kWarehouseRow)));
  GINJA_RETURN_IF_ERROR(db_->Put(txn, "customer", Key("c", {w, d, c}),
                                 MakeRow(balance - amount, kCustomerRow)));
  GINJA_RETURN_IF_ERROR(
      db_->Put(txn, "history",
               Key("h", {w, d, c, static_cast<std::int64_t>(rng.Next() >> 16)}),
               MakeRow(amount, kHistoryRow)));
  return db_->Commit(txn);
}

Status TpccWorkload::OrderStatus(SplitMix64& rng) {
  const int w = PickWarehouse(rng);
  const int d = static_cast<int>(rng.NextInRange(1, config_.Districts()));
  const int c = static_cast<int>(
      NuRand(rng, 1023, 1, config_.CustomersPerDistrict(), kCId));

  (void)db_->Get("customer", Key("c", {w, d, c}));
  auto district = db_->Get("district", Key("d", {w, d}));
  const std::int64_t next_o = district ? ParseNum(*district) : 1;
  if (next_o > 1) {
    const std::int64_t o = 1 + static_cast<std::int64_t>(rng.NextBelow(
                                   static_cast<std::uint64_t>(next_o - 1))) ;
    (void)db_->Get("orders", Key("o", {w, d, o}));
    for (int line = 1; line <= 5; ++line) {
      (void)db_->Get("orderline", Key("ol", {w, d, o, line}));
    }
  }
  return Status::Ok();  // read-only
}

Status TpccWorkload::Delivery(SplitMix64& rng) {
  const int w = PickWarehouse(rng);
  std::lock_guard<std::mutex> delivery_lock(delivery_mu_);

  auto txn = db_->Begin();
  bool delivered_any = false;
  for (int d = 1; d <= config_.Districts(); ++d) {
    auto frontier = db_->Get("district", Key("dlv", {w, d}));
    auto district = db_->Get("district", Key("d", {w, d}));
    if (!frontier || !district) continue;
    const std::int64_t delivered = ParseNum(*frontier);
    const std::int64_t next_o = ParseNum(*district);
    if (delivered + 1 >= next_o) continue;  // nothing undelivered

    const std::int64_t o = delivered + 1;
    auto order = db_->Get("orders", Key("o", {w, d, o}));
    const std::int64_t c = order ? ParseNum(*order) : 1;
    auto customer = db_->Get("customer", Key("c", {w, d, c}));
    const std::int64_t balance = customer ? ParseNum(*customer) : 0;

    GINJA_RETURN_IF_ERROR(db_->Delete(txn, "neworder", Key("no", {w, d, o})));
    GINJA_RETURN_IF_ERROR(db_->Put(txn, "orders", Key("o", {w, d, o}),
                                   MakeRow(c, kOrderRow)));
    GINJA_RETURN_IF_ERROR(db_->Put(txn, "customer", Key("c", {w, d, c}),
                                   MakeRow(balance + rng.NextInRange(1, 100),
                                           kCustomerRow)));
    GINJA_RETURN_IF_ERROR(
        db_->Put(txn, "district", Key("dlv", {w, d}), MakeRow(o, 16)));
    delivered_any = true;
  }
  if (!delivered_any) return Status::Ok();  // nothing to do: free
  return db_->Commit(txn);
}

Status TpccWorkload::StockLevel(SplitMix64& rng) {
  const int w = PickWarehouse(rng);
  const int d = static_cast<int>(rng.NextInRange(1, config_.Districts()));
  auto district = db_->Get("district", Key("d", {w, d}));
  const std::int64_t next_o = district ? ParseNum(*district) : 1;
  const std::int64_t from = std::max<std::int64_t>(1, next_o - 20);
  int low_stock = 0;
  for (std::int64_t o = from; o < next_o; ++o) {
    for (int line = 1; line <= 5; ++line) {
      auto ol = db_->Get("orderline", Key("ol", {w, d, o, line}));
      if (!ol) continue;
      const std::int64_t item = ParseNum(*ol);
      auto stock = db_->Get("stock", Key("s", {w, item}));
      if (stock && ParseNum(*stock) < 15) ++low_stock;
    }
  }
  (void)low_stock;
  (void)rng;
  return Status::Ok();  // read-only
}

}  // namespace ginja
