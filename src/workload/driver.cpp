#include "workload/driver.h"

#include <chrono>
#include <thread>
#include <vector>

namespace ginja {

TpccRunResult RunTpcc(TpccWorkload& workload, const TpccRunOptions& options) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total{0}, neworder{0}, aborted{0};

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> terminals;
  terminals.reserve(options.terminals);
  for (int t = 0; t < options.terminals; ++t) {
    terminals.emplace_back([&, t] {
      SplitMix64 rng(options.seed + static_cast<std::uint64_t>(t) * 7919);
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto type = workload.PickType(rng);
        Status st = workload.Execute(type, rng);
        if (st.ok()) {
          total.fetch_add(1, std::memory_order_relaxed);
          if (type == TpccWorkload::TxnType::kNewOrder) {
            neworder.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (st.code() == ErrorCode::kAborted) {
          aborted.fetch_add(1, std::memory_order_relaxed);
        }
        ++local;
        if (t == 0 && options.tick && options.tick_every_txns > 0 &&
            local % options.tick_every_txns == 0) {
          options.tick();
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::duration<double>(options.wall_seconds));
  stop.store(true);
  for (auto& t : terminals) t.join();
  const auto end = std::chrono::steady_clock::now();

  TpccRunResult result;
  result.total_txns = total.load();
  result.neworder_txns = neworder.load();
  result.aborted_txns = aborted.load();
  result.wall_seconds = std::chrono::duration<double>(end - start).count();
  return result;
}

IngestResult RunWalIngest(CommitPipeline& pipeline,
                          const IngestOptions& options) {
  const int threads = options.threads < 1 ? 1 : options.threads;
  std::atomic<std::uint64_t> next_lsn{1};
  // Each client pre-materializes its writes before a start barrier: a real
  // DBMS hands Submit an already-built WAL buffer (the FS layer fills
  // WalWrite.data before the pipeline ever sees it), so payload
  // construction belongs outside the timed region.
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      SplitMix64 rng(options.seed + static_cast<std::uint64_t>(t) * 7919);
      const std::string file = "pg_xlog/ingest" + std::to_string(t);
      Bytes payload(options.write_bytes);
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng.Next());
      const std::uint64_t pages =
          options.pages_per_thread < 1 ? 1 : options.pages_per_thread;
      std::vector<WalWrite> writes(options.writes_per_thread);
      for (std::uint64_t i = 0; i < options.writes_per_thread; ++i) {
        writes[i].file = file;
        writes[i].offset = (i % pages) * 8192;
        writes[i].data = payload;
        writes[i].max_lsn = next_lsn.fetch_add(1, std::memory_order_relaxed);
      }
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (auto& write : writes) pipeline.Submit(std::move(write));
    });
  }
  while (ready.load(std::memory_order_acquire) < threads) {
    std::this_thread::yield();
  }
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& c : clients) c.join();
  const auto submitted = std::chrono::steady_clock::now();
  pipeline.Drain();
  const auto end = std::chrono::steady_clock::now();

  IngestResult result;
  result.writes = static_cast<std::uint64_t>(threads) *
                  options.writes_per_thread;
  result.submit_seconds =
      std::chrono::duration<double>(submitted - start).count();
  result.total_seconds = std::chrono::duration<double>(end - start).count();
  return result;
}

Status RunSimpleUpdates(Database& db, const std::string& table,
                        std::uint64_t count, std::size_t payload_bytes,
                        std::uint64_t seed) {
  SplitMix64 rng(seed);
  for (std::uint64_t i = 0; i < count; ++i) {
    auto txn = db.Begin();
    Bytes value(payload_bytes);
    for (auto& b : value) b = static_cast<std::uint8_t>(rng.Next());
    GINJA_RETURN_IF_ERROR(
        db.Put(txn, table, "k" + std::to_string(rng.NextBelow(1000)),
               std::move(value)));
    GINJA_RETURN_IF_ERROR(db.Commit(txn));
  }
  return Status::Ok();
}

}  // namespace ginja
