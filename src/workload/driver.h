// Benchmark driver: runs TPC-C terminals against the engine and reports the
// paper's two metrics — Tpm-Total (all transactions per minute) and Tpm-C
// (NewOrder transactions per minute while the rest of the mix runs).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "workload/tpcc.h"

namespace ginja {

struct TpccRunResult {
  std::uint64_t total_txns = 0;
  std::uint64_t neworder_txns = 0;
  std::uint64_t aborted_txns = 0;
  double wall_seconds = 0;

  double TpmTotal() const {
    return wall_seconds <= 0 ? 0 : static_cast<double>(total_txns) / wall_seconds * 60.0;
  }
  double TpmC() const {
    return wall_seconds <= 0 ? 0 : static_cast<double>(neworder_txns) / wall_seconds * 60.0;
  }
};

struct TpccRunOptions {
  int terminals = 5;
  double wall_seconds = 2.0;
  std::uint64_t seed = 99;
  // Invoked periodically by terminal 0 (e.g. to trigger checkpoints when
  // the engine is configured for manual checkpointing). May be null.
  std::function<void()> tick;
  std::uint64_t tick_every_txns = 0;  // 0 = never
};

TpccRunResult RunTpcc(TpccWorkload& workload, const TpccRunOptions& options);

// A simple update-only workload: `count` single-row update transactions of
// `payload_bytes` each against one table — the "W updates/minute" shape of
// the paper's cost analysis (§7.2).
Status RunSimpleUpdates(Database& db, const std::string& table,
                        std::uint64_t count, std::size_t payload_bytes,
                        std::uint64_t seed = 7);

}  // namespace ginja
