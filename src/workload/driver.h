// Benchmark driver: runs TPC-C terminals against the engine and reports the
// paper's two metrics — Tpm-Total (all transactions per minute) and Tpm-C
// (NewOrder transactions per minute while the rest of the mix runs).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "ginja/commit_pipeline.h"
#include "workload/tpcc.h"

namespace ginja {

struct TpccRunResult {
  std::uint64_t total_txns = 0;
  std::uint64_t neworder_txns = 0;
  std::uint64_t aborted_txns = 0;
  double wall_seconds = 0;

  double TpmTotal() const {
    return wall_seconds <= 0 ? 0 : static_cast<double>(total_txns) / wall_seconds * 60.0;
  }
  double TpmC() const {
    return wall_seconds <= 0 ? 0 : static_cast<double>(neworder_txns) / wall_seconds * 60.0;
  }
};

struct TpccRunOptions {
  int terminals = 5;
  double wall_seconds = 2.0;
  std::uint64_t seed = 99;
  // Invoked periodically by terminal 0 (e.g. to trigger checkpoints when
  // the engine is configured for manual checkpointing). May be null.
  std::function<void()> tick;
  std::uint64_t tick_every_txns = 0;  // 0 = never
};

TpccRunResult RunTpcc(TpccWorkload& workload, const TpccRunOptions& options);

// A simple update-only workload: `count` single-row update transactions of
// `payload_bytes` each against one table — the "W updates/minute" shape of
// the paper's cost analysis (§7.2).
Status RunSimpleUpdates(Database& db, const std::string& table,
                        std::uint64_t count, std::size_t payload_bytes,
                        std::uint64_t seed = 7);

// Multi-threaded WAL-ingestion driver: hammers CommitPipeline::Submit from
// `threads` concurrent clients, isolating the ingestion front end from the
// rest of the engine (no SQL, no interception). Each thread writes its own
// WAL segment, round-robining over `pages_per_thread` page offsets so the
// aggregator's coalescing stays hot, with a globally increasing max_lsn.
struct IngestOptions {
  int threads = 1;
  std::uint64_t writes_per_thread = 100'000;
  std::size_t write_bytes = 256;
  std::uint64_t pages_per_thread = 8;
  std::uint64_t seed = 7;
};

struct IngestResult {
  std::uint64_t writes = 0;
  // Submit phase only: all client threads joined (every Submit returned).
  // This is the ingestion front end's throughput — what sharding targets.
  double submit_seconds = 0;
  // Submit phase plus Drain(): includes aggregation and uploads, which are
  // shared machinery across shard configurations.
  double total_seconds = 0;

  double SubmittedWritesPerSec() const {
    return submit_seconds <= 0 ? 0
                               : static_cast<double>(writes) / submit_seconds;
  }
  double EndToEndWritesPerSec() const {
    return total_seconds <= 0 ? 0
                              : static_cast<double>(writes) / total_seconds;
  }
};

IngestResult RunWalIngest(CommitPipeline& pipeline,
                          const IngestOptions& options);

}  // namespace ginja
