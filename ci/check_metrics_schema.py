#!/usr/bin/env python3
"""Validate an OBS_SNAPSHOT metrics snapshot against ci/metrics_schema.json.

Usage: check_metrics_schema.py <schema.json> <snapshot.json> [fleet]

With the optional third argument 'fleet', additionally enforces the
schema's fleet_required_labelled section: each listed metric must appear
as multiple series distinguished by the given label (e.g. 'tenant'),
with at least min_distinct distinct label values. Used against the
OBS_SNAPSHOT line from bench_fleet.

Standard library only (CI runners and dev machines both have python3; the
schema is deliberately simple enough not to need the jsonschema package).
Exit status is non-zero when the snapshot violates the schema, with one
line per violation on stderr.
"""
import json
import re
import sys


def fail(errors):
    for err in errors:
        print("metrics-schema: " + err, file=sys.stderr)
    print(f"metrics-schema: FAILED with {len(errors)} violation(s)",
          file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) not in (3, 4):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    fleet_mode = len(sys.argv) == 4
    if fleet_mode and sys.argv[3] != "fleet":
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    with open(sys.argv[1]) as f:
        schema = json.load(f)
    with open(sys.argv[2]) as f:
        snapshot = json.load(f)

    errors = []

    for key in schema["required_top_level"]:
        if key not in snapshot:
            errors.append(f"missing top-level key '{key}'")
    metrics = snapshot.get("metrics")
    if not isinstance(metrics, list) or not metrics:
        fail(errors + ["'metrics' must be a non-empty array"])

    name_re = re.compile(schema["name_pattern"])
    sample_keys = schema["sample_keys"]
    seen = set()  # (name, kind)
    label_values = {}  # (name, kind, label) -> set of values
    populated_stages = set()
    stage_series = set()  # every registered ginja_stage_latency_us label
    for i, sample in enumerate(metrics):
        where = f"metrics[{i}]"
        for key in sample_keys["all"]:
            if key not in sample:
                errors.append(f"{where}: missing key '{key}'")
        name = sample.get("name", "")
        kind = sample.get("kind", "")
        where = f"metrics[{i}] ({name})"
        if not name_re.match(name):
            errors.append(f"{where}: name does not match "
                          f"{schema['name_pattern']}")
        if not isinstance(sample.get("labels"), dict):
            errors.append(f"{where}: 'labels' must be an object")
        if kind not in sample_keys or kind == "all":
            errors.append(f"{where}: unknown kind '{kind}'")
            continue
        for key in sample_keys[kind]:
            if key not in sample:
                errors.append(f"{where}: {kind} sample missing '{key}'")
            elif not isinstance(sample[key], (int, float)):
                errors.append(f"{where}: '{key}' must be numeric")
        seen.add((name, kind))
        labels = sample.get("labels")
        if isinstance(labels, dict):
            for lk, lv in labels.items():
                label_values.setdefault((name, kind, lk), set()).add(str(lv))
        if name == "ginja_stage_latency_us":
            stage_series.add(sample["labels"].get("stage", f"#{i}"))
            if sample.get("count", 0) > 0:
                populated_stages.add(sample["labels"].get("stage", f"#{i}"))

    for want in schema["required_metrics"]:
        # bench_fleet has no standby attached; series that only a replica
        # registers are checked in the plain snapshot only.
        if fleet_mode and want.get("optional_in_fleet"):
            continue
        if (want["name"], want["kind"]) not in seen:
            errors.append(f"required metric missing: {want['name']} "
                          f"({want['kind']})")

    for stage in schema.get("required_stage_series", []):
        if stage not in stage_series:
            errors.append(
                f"required ginja_stage_latency_us series missing: "
                f"stage='{stage}' (streaming trace stages must stay "
                f"registered even when the feature is off)")

    fleet_tenants = set()
    if fleet_mode:
        for want in schema.get("fleet_required_labelled", []):
            values = label_values.get(
                (want["name"], want["kind"], want["label"]), set())
            if len(values) < want["min_distinct"]:
                errors.append(
                    f"fleet: {want['name']} ({want['kind']}) has "
                    f"{len(values)} distinct '{want['label']}' label "
                    f"value(s), need >= {want['min_distinct']} — per-tenant "
                    f"series must not collapse into one fleet-wide series")
            if want["label"] == "tenant":
                fleet_tenants |= values

    min_stages = schema["min_populated_stage_series"]
    if len(populated_stages) < min_stages:
        errors.append(
            f"latency decomposition too thin: {len(populated_stages)} "
            f"populated ginja_stage_latency_us series "
            f"({sorted(populated_stages)}), need >= {min_stages}")

    if errors:
        fail(errors)
    suffix = f", {len(fleet_tenants)} tenants" if fleet_mode else ""
    print(f"metrics-schema: OK — {len(metrics)} series, "
          f"{len(populated_stages)} populated trace stages "
          f"({', '.join(sorted(populated_stages))}){suffix}")


if __name__ == "__main__":
    main()
