#include <gtest/gtest.h>

#include "db/streaming.h"
#include "fs/intercept_fs.h"

namespace ginja {
namespace {

struct StreamingHarness {
  std::shared_ptr<RealClock> clock = std::make_shared<RealClock>();
  std::shared_ptr<MemFs> primary_fs = std::make_shared<MemFs>();
  std::shared_ptr<InterceptFs> intercept;
  std::unique_ptr<Database> db;
  std::shared_ptr<StandbyServer> standby;
  std::unique_ptr<StreamingPrimary> primary;
  DbLayout layout;

  explicit StreamingHarness(DbFlavor flavor, ReplicationConfig config)
      : layout(flavor == DbFlavor::kPostgres ? DbLayout::Postgres()
                                             : DbLayout::MySql()) {
    intercept = std::make_shared<InterceptFs>(primary_fs, clock);
    db = std::make_unique<Database>(intercept, layout);
    EXPECT_TRUE(db->Create().ok());
    EXPECT_TRUE(db->CreateTable("t").ok());
    // Base backup: a copy of the primary's files before the workload.
    standby = std::make_shared<StandbyServer>(primary_fs->Clone(), layout);
    primary = std::make_unique<StreamingPrimary>(standby, layout, clock, config);
    intercept->SetListener(primary.get());
  }

  Status PutOne(int i) {
    auto txn = db->Begin();
    GINJA_RETURN_IF_ERROR(
        db->Put(txn, "t", "k" + std::to_string(i), ToBytes("v" + std::to_string(i))));
    return db->Commit(txn);
  }
};

class StreamingTest : public ::testing::TestWithParam<DbFlavor> {};

TEST_P(StreamingTest, AsyncReplicationFailsOverWarm) {
  ReplicationConfig config;
  config.synchronous = false;
  config.link_latency_us = 100;  // fast link for the test
  StreamingHarness h(GetParam(), config);
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(h.PutOne(i).ok());
  h.primary->Drain();

  auto standby_db = h.standby->Failover();
  ASSERT_TRUE(standby_db.ok()) << standby_db.status().ToString();
  EXPECT_EQ((*standby_db)->RowCount("t"), 50u);
}

TEST_P(StreamingTest, SyncReplicationHasZeroRpo) {
  ReplicationConfig config;
  config.synchronous = true;
  config.link_latency_us = 100;
  StreamingHarness h(GetParam(), config);
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(h.PutOne(i).ok());
  // No drain: sync mode means every acknowledged commit is already there.
  h.primary->Kill();
  auto standby_db = h.standby->Failover();
  ASSERT_TRUE(standby_db.ok());
  EXPECT_EQ((*standby_db)->RowCount("t"), 20u);
}

TEST_P(StreamingTest, AsyncLagIsTheRpo) {
  ReplicationConfig config;
  config.synchronous = false;
  config.link_latency_us = 20'000;  // slow link: lag builds up
  StreamingHarness h(GetParam(), config);
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(h.PutOne(i).ok());
  // Disaster before the link drains: the in-flight tail is lost.
  h.primary->Kill();
  EXPECT_GT(h.primary->writes_dropped(), 0u);

  auto standby_db = h.standby->Failover();
  ASSERT_TRUE(standby_db.ok());
  const std::uint64_t rows = (*standby_db)->RowCount("t");
  EXPECT_LT(rows, 40u);  // some updates lost...
  // ...and what survived is a prefix.
  for (std::uint64_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(
        (*standby_db)->Get("t", "k" + std::to_string(i)).has_value());
  }
}

TEST_P(StreamingTest, SyncIsSlowerThanAsync) {
  ReplicationConfig sync_config;
  sync_config.synchronous = true;
  sync_config.link_latency_us = 3'000;
  ReplicationConfig async_config = sync_config;
  async_config.synchronous = false;

  auto run = [&](ReplicationConfig config) {
    StreamingHarness h(GetParam(), config);
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 15; ++i) EXPECT_TRUE(h.PutOne(i).ok());
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  const double sync_time = run(sync_config);
  const double async_time = run(async_config);
  EXPECT_GT(sync_time, 2.0 * async_time);  // each sync commit eats an RTT
}

TEST_P(StreamingTest, StandbyServesUpdatesAfterFailover) {
  ReplicationConfig config;
  config.link_latency_us = 50;
  StreamingHarness h(GetParam(), config);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(h.PutOne(i).ok());
  h.primary->Drain();
  auto standby_db = h.standby->Failover();
  ASSERT_TRUE(standby_db.ok());
  // The promoted standby is a normal primary now.
  auto txn = (*standby_db)->Begin();
  ASSERT_TRUE((*standby_db)->Put(txn, "t", "post-failover", ToBytes("x")).ok());
  ASSERT_TRUE((*standby_db)->Commit(txn).ok());
  EXPECT_EQ((*standby_db)->RowCount("t"), 11u);
}

INSTANTIATE_TEST_SUITE_P(Flavors, StreamingTest,
                         ::testing::Values(DbFlavor::kPostgres, DbFlavor::kMySql),
                         [](const auto& info) {
                           return info.param == DbFlavor::kPostgres ? "postgres"
                                                                    : "mysql";
                         });

}  // namespace
}  // namespace ginja
