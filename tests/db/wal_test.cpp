#include <gtest/gtest.h>

#include "db/wal.h"
#include "fs/mem_fs.h"

namespace ginja {
namespace {

WalRecord Put(std::uint64_t txn, const std::string& key, const std::string& val) {
  WalRecord r;
  r.type = WalRecordType::kPut;
  r.txn_id = txn;
  r.table = "t";
  r.key = key;
  r.value = ToBytes(val);
  return r;
}

WalRecord Commit(std::uint64_t txn) {
  WalRecord r;
  r.type = WalRecordType::kCommit;
  r.txn_id = txn;
  return r;
}

class WalRoundTrip : public ::testing::TestWithParam<DbFlavor> {
 protected:
  DbLayout Layout() const {
    return GetParam() == DbFlavor::kPostgres ? DbLayout::Postgres()
                                             : DbLayout::MySql();
  }
};

TEST_P(WalRoundTrip, SingleTxnReplay) {
  auto fs = std::make_shared<MemFs>();
  WalWriter writer(fs, Layout(), 0);
  ASSERT_TRUE(writer.AppendAndSync({Put(1, "k", "v"), Commit(1)}).ok());

  WalReader reader(fs, Layout());
  std::vector<WalRecord> replayed;
  auto end = reader.Replay(0, [&](const WalRecord& r) { replayed.push_back(r); });
  ASSERT_TRUE(end.ok());
  EXPECT_EQ(*end, writer.EndLsn());
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].key, "k");
  EXPECT_EQ(ToString(View(replayed[0].value)), "v");
}

TEST_P(WalRoundTrip, UncommittedTxnIsDiscarded) {
  auto fs = std::make_shared<MemFs>();
  WalWriter writer(fs, Layout(), 0);
  ASSERT_TRUE(writer.AppendAndSync({Put(1, "a", "1"), Commit(1)}).ok());
  // Transaction 2 never commits (crash before the commit record).
  ASSERT_TRUE(writer.AppendAndSync({Put(2, "b", "2")}).ok());

  WalReader reader(fs, Layout());
  std::vector<std::string> keys;
  ASSERT_TRUE(
      reader.Replay(0, [&](const WalRecord& r) { keys.push_back(r.key); }).ok());
  EXPECT_EQ(keys, std::vector<std::string>{"a"});
}

TEST_P(WalRoundTrip, ManyTxnsAcrossPages) {
  auto fs = std::make_shared<MemFs>();
  WalWriter writer(fs, Layout(), 0);
  for (std::uint64_t i = 0; i < 200; ++i) {
    // Values sized to force page spans for both 512 B and 8 kB pages.
    ASSERT_TRUE(writer
                    .AppendAndSync({Put(i, "key" + std::to_string(i),
                                        std::string(300, 'v')),
                                    Commit(i)})
                    .ok());
  }
  WalReader reader(fs, Layout());
  int count = 0;
  auto end = reader.Replay(0, [&](const WalRecord&) { ++count; });
  ASSERT_TRUE(end.ok());
  EXPECT_EQ(count, 200);
  EXPECT_EQ(*end, writer.EndLsn());
}

TEST_P(WalRoundTrip, ReplayFromMidStream) {
  auto fs = std::make_shared<MemFs>();
  WalWriter writer(fs, Layout(), 0);
  ASSERT_TRUE(writer.AppendAndSync({Put(1, "a", "1"), Commit(1)}).ok());
  const Lsn mid = writer.EndLsn();
  ASSERT_TRUE(writer.AppendAndSync({Put(2, "b", "2"), Commit(2)}).ok());

  WalReader reader(fs, Layout());
  std::vector<std::string> keys;
  ASSERT_TRUE(
      reader.Replay(mid, [&](const WalRecord& r) { keys.push_back(r.key); }).ok());
  EXPECT_EQ(keys, std::vector<std::string>{"b"});
}

TEST_P(WalRoundTrip, WriterRestartsFromEndLsn) {
  auto fs = std::make_shared<MemFs>();
  Lsn end1;
  {
    WalWriter writer(fs, Layout(), 0);
    ASSERT_TRUE(writer.AppendAndSync({Put(1, "a", "1"), Commit(1)}).ok());
    end1 = writer.EndLsn();
  }
  {
    WalWriter writer(fs, Layout(), end1);  // reboot
    ASSERT_TRUE(writer.AppendAndSync({Put(2, "b", "2"), Commit(2)}).ok());
  }
  WalReader reader(fs, Layout());
  int count = 0;
  ASSERT_TRUE(reader.Replay(0, [&](const WalRecord&) { ++count; }).ok());
  EXPECT_EQ(count, 2);
}

TEST_P(WalRoundTrip, CorruptTailStopsReplayCleanly) {
  auto fs = std::make_shared<MemFs>();
  DbLayout layout = Layout();
  WalWriter writer(fs, layout, 0);
  ASSERT_TRUE(writer.AppendAndSync({Put(1, "a", "1"), Commit(1)}).ok());
  ASSERT_TRUE(writer.AppendAndSync({Put(2, "b", "2"), Commit(2)}).ok());

  // Corrupt the page containing the tail (simulates a torn write).
  const auto loc = layout.LocateWalPage(0);
  auto page = fs->ReadAll(loc.file);
  ASSERT_TRUE(page.ok());
  (*page)[loc.offset + 20] ^= 0xFF;
  ASSERT_TRUE(fs->Write(loc.file, 0, View(*page), false).ok());

  WalReader reader(fs, layout);
  int count = 0;
  auto end = reader.Replay(0, [&](const WalRecord&) { ++count; });
  ASSERT_TRUE(end.ok());
  EXPECT_EQ(count, 0);  // first page corrupt: nothing replayable
  EXPECT_EQ(*end, 0u);
}

INSTANTIATE_TEST_SUITE_P(Flavors, WalRoundTrip,
                         ::testing::Values(DbFlavor::kPostgres, DbFlavor::kMySql),
                         [](const auto& info) {
                           return info.param == DbFlavor::kPostgres ? "postgres"
                                                                    : "mysql";
                         });

TEST(WalPostgres, SegmentsRollOver) {
  // Shrink the segment so the test crosses a boundary quickly.
  DbLayout layout = DbLayout::Postgres();
  layout.wal_segment_size = 4 * layout.wal_page_size;
  auto fs = std::make_shared<MemFs>();
  WalWriter writer(fs, layout, 0);
  for (std::uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        writer.AppendAndSync({Put(i, "k", std::string(4000, 'x')), Commit(i)}).ok());
  }
  auto files = fs->ListFiles("pg_xlog/");
  ASSERT_TRUE(files.ok());
  EXPECT_GT(files->size(), 1u);

  WalReader reader(fs, layout);
  int count = 0;
  ASSERT_TRUE(reader.Replay(0, [&](const WalRecord&) { ++count; }).ok());
  EXPECT_EQ(count, 20);
}

TEST(WalPostgres, RemoveSegmentsBelowCheckpoint) {
  DbLayout layout = DbLayout::Postgres();
  layout.wal_segment_size = 2 * layout.wal_page_size;
  auto fs = std::make_shared<MemFs>();
  WalWriter writer(fs, layout, 0);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        writer.AppendAndSync({Put(i, "k", std::string(6000, 'x')), Commit(i)}).ok());
  }
  const std::size_t before = fs->ListFiles("pg_xlog/")->size();
  const auto removed = writer.RemoveSegmentsBelow(writer.EndLsn());
  EXPECT_GT(removed.size(), 0u);
  EXPECT_LT(fs->ListFiles("pg_xlog/")->size(), before);

  // Replaying from the checkpoint still works: earlier segments are gone
  // but nothing after the checkpoint needed them.
  WalReader reader(fs, layout);
  int count = 0;
  ASSERT_TRUE(
      reader.Replay(writer.EndLsn(), [&](const WalRecord&) { ++count; }).ok());
  EXPECT_EQ(count, 0);
}

TEST(WalMySql, CircularLogWrapsWithForcedCheckpoint) {
  DbLayout layout = DbLayout::MySql();
  layout.wal_segment_size = 8 * layout.wal_page_size;  // tiny circular log
  auto fs = std::make_shared<MemFs>();

  // The wrap callback runs while the writer's lock is held, so it must not
  // call back into locking methods (the engine uses its own LSN tracking;
  // the test does the same with `last_end`).
  int forced = 0;
  Lsn last_end = 0;
  WalWriter* writer_ptr = nullptr;
  WalWriter writer(fs, layout, 0, [&] {
    ++forced;
    writer_ptr->SetCheckpointLsn(last_end);
  });
  writer_ptr = &writer;
  writer.SetCheckpointLsn(0);

  for (std::uint64_t i = 0; i < 50; ++i) {
    auto end = writer.AppendAndSync({Put(i, "k", std::string(200, 'x')), Commit(i)});
    ASSERT_TRUE(end.ok());
    last_end = *end;
  }
  EXPECT_GT(forced, 0);

  // Only ib_logfile0/1 exist — the log recycled in place.
  auto files = fs->ListFiles("ib_logfile");
  ASSERT_TRUE(files.ok());
  EXPECT_LE(files->size(), 2u);

  // Replay from the last checkpoint works despite the wraps.
  WalReader reader(fs, layout);
  int count = 0;
  auto end = reader.Replay(writer.EndLsn(), [&](const WalRecord&) { ++count; });
  ASSERT_TRUE(end.ok());
  EXPECT_EQ(count, 0);
}

TEST(WalMySql, HeaderPagesAreReserved) {
  const DbLayout layout = DbLayout::MySql();
  const auto loc0 = layout.LocateWalPage(0);
  EXPECT_EQ(loc0.file, "ib_logfile0");
  EXPECT_EQ(loc0.offset, 4u * 512u);  // first data page after the header
}

TEST(WalRecord, SerializeParseCrcProtected) {
  const WalRecord r = Put(7, "key", "value");
  Bytes wire = r.Serialize();
  EXPECT_EQ(wire[0], 0xA7);  // record magic
  // Flipping a body byte must be detected (record treated as end of log).
  wire[wire.size() - 1] ^= 1;
  auto fs = std::make_shared<MemFs>();
  const DbLayout layout = DbLayout::Postgres();
  // Write the corrupted record as a page by hand is overkill; the CRC path
  // is covered by CorruptTailStopsReplayCleanly above. Here we just check
  // the serialized layout prefix.
  EXPECT_EQ(wire[1], static_cast<std::uint8_t>(WalRecordType::kPut));
  (void)fs;
  (void)layout;
}

}  // namespace
}  // namespace ginja
