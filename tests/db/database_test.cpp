#include <gtest/gtest.h>

#include "db/database.h"
#include "fs/mem_fs.h"

namespace ginja {
namespace {

class DatabaseTest : public ::testing::TestWithParam<DbFlavor> {
 protected:
  DbLayout Layout() const {
    return GetParam() == DbFlavor::kPostgres ? DbLayout::Postgres()
                                             : DbLayout::MySql();
  }

  std::unique_ptr<Database> Fresh(std::shared_ptr<MemFs> fs,
                                  DbOptions options = {}) {
    auto db = std::make_unique<Database>(fs, Layout(), options);
    EXPECT_TRUE(db->Create().ok());
    EXPECT_TRUE(db->CreateTable("t").ok());
    return db;
  }

  Status PutOne(Database& db, const std::string& key, const std::string& val) {
    auto txn = db.Begin();
    GINJA_RETURN_IF_ERROR(db.Put(txn, "t", key, ToBytes(val)));
    return db.Commit(txn);
  }
};

TEST_P(DatabaseTest, CommitAndGet) {
  auto fs = std::make_shared<MemFs>();
  auto db = Fresh(fs);
  ASSERT_TRUE(PutOne(*db, "k", "v").ok());
  ASSERT_TRUE(db->Get("t", "k").has_value());
  EXPECT_EQ(ToString(View(*db->Get("t", "k"))), "v");
  EXPECT_EQ(db->CommittedTxns(), 1u);
}

TEST_P(DatabaseTest, ReadOnlyTxnIsFree) {
  auto fs = std::make_shared<MemFs>();
  auto db = Fresh(fs);
  const Lsn before = db->WalEndLsn();
  auto txn = db->Begin();
  ASSERT_TRUE(db->Commit(txn).ok());
  EXPECT_EQ(db->WalEndLsn(), before);
}

TEST_P(DatabaseTest, CrashRecoveryWithoutCheckpoint) {
  auto fs = std::make_shared<MemFs>();
  {
    auto db = Fresh(fs);
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(PutOne(*db, "k" + std::to_string(i), "v" + std::to_string(i)).ok());
    }
    // Crash: no clean shutdown, just drop the engine.
  }
  Database recovered(fs, Layout());
  ASSERT_TRUE(recovered.Open().ok());
  for (int i = 0; i < 50; ++i) {
    auto v = recovered.Get("t", "k" + std::to_string(i));
    ASSERT_TRUE(v.has_value()) << i;
    EXPECT_EQ(ToString(View(*v)), "v" + std::to_string(i));
  }
}

TEST_P(DatabaseTest, CrashRecoveryAfterCheckpoint) {
  auto fs = std::make_shared<MemFs>();
  {
    auto db = Fresh(fs);
    for (int i = 0; i < 30; ++i) ASSERT_TRUE(PutOne(*db, "a" + std::to_string(i), "1").ok());
    ASSERT_TRUE(db->Checkpoint().ok());
    for (int i = 0; i < 30; ++i) ASSERT_TRUE(PutOne(*db, "b" + std::to_string(i), "2").ok());
  }
  Database recovered(fs, Layout());
  ASSERT_TRUE(recovered.Open().ok());
  for (int i = 0; i < 30; ++i) {
    EXPECT_TRUE(recovered.Get("t", "a" + std::to_string(i)).has_value());
    EXPECT_TRUE(recovered.Get("t", "b" + std::to_string(i)).has_value());
  }
  EXPECT_GT(recovered.CheckpointLsn(), 0u);
}

TEST_P(DatabaseTest, MultiOpTransactionIsAtomicOnRecovery) {
  auto fs = std::make_shared<MemFs>();
  {
    auto db = Fresh(fs);
    auto txn = db->Begin();
    ASSERT_TRUE(db->Put(txn, "t", "x", ToBytes("1")).ok());
    ASSERT_TRUE(db->Put(txn, "t", "y", ToBytes("2")).ok());
    ASSERT_TRUE(db->Put(txn, "t", "z", ToBytes("3")).ok());
    ASSERT_TRUE(db->Commit(txn).ok());
  }
  Database recovered(fs, Layout());
  ASSERT_TRUE(recovered.Open().ok());
  const bool x = recovered.Get("t", "x").has_value();
  const bool y = recovered.Get("t", "y").has_value();
  const bool z = recovered.Get("t", "z").has_value();
  EXPECT_TRUE(x && y && z);  // all-or-nothing, and it committed
}

TEST_P(DatabaseTest, DeletesSurviveRecovery) {
  auto fs = std::make_shared<MemFs>();
  {
    auto db = Fresh(fs);
    ASSERT_TRUE(PutOne(*db, "gone", "x").ok());
    ASSERT_TRUE(db->Checkpoint().ok());  // row reaches the table file
    auto txn = db->Begin();
    ASSERT_TRUE(db->Delete(txn, "t", "gone").ok());
    ASSERT_TRUE(db->Commit(txn).ok());
  }
  Database recovered(fs, Layout());
  ASSERT_TRUE(recovered.Open().ok());
  EXPECT_FALSE(recovered.Get("t", "gone").has_value());
}

TEST_P(DatabaseTest, CleanShutdownAndReopen) {
  auto fs = std::make_shared<MemFs>();
  {
    auto db = Fresh(fs);
    for (int i = 0; i < 20; ++i) ASSERT_TRUE(PutOne(*db, "k" + std::to_string(i), "v").ok());
    ASSERT_TRUE(db->CleanShutdown().ok());
  }
  Database reopened(fs, Layout());
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.RowCount("t"), 20u);
  // A clean shutdown leaves nothing to redo: checkpoint == WAL end.
  EXPECT_EQ(reopened.CheckpointLsn(), reopened.WalEndLsn());
}

TEST_P(DatabaseTest, AutoCheckpointByWalVolume) {
  auto fs = std::make_shared<MemFs>();
  DbOptions options;
  options.auto_checkpoint_wal_bytes = 4096;
  auto db = Fresh(fs, options);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(PutOne(*db, "k" + std::to_string(i), std::string(100, 'x')).ok());
  }
  EXPECT_GT(db->CheckpointLsn(), 0u);
}

TEST_P(DatabaseTest, RecoveryIsIdempotentAcrossRestarts) {
  auto fs = std::make_shared<MemFs>();
  {
    auto db = Fresh(fs);
    for (int i = 0; i < 10; ++i) ASSERT_TRUE(PutOne(*db, "k" + std::to_string(i), "v").ok());
  }
  for (int round = 0; round < 3; ++round) {
    Database db(fs, Layout());
    ASSERT_TRUE(db.Open().ok()) << "round " << round;
    EXPECT_EQ(db.RowCount("t"), 10u) << "round " << round;
  }
}

TEST_P(DatabaseTest, WritesAfterRecoveryAreDurable) {
  auto fs = std::make_shared<MemFs>();
  {
    auto db = Fresh(fs);
    ASSERT_TRUE(PutOne(*db, "pre", "1").ok());
  }
  {
    Database db(fs, Layout());
    ASSERT_TRUE(db.Open().ok());
    auto txn = db.Begin();
    ASSERT_TRUE(db.Put(txn, "t", "post", ToBytes("2")).ok());
    ASSERT_TRUE(db.Commit(txn).ok());
  }
  Database db(fs, Layout());
  ASSERT_TRUE(db.Open().ok());
  EXPECT_TRUE(db.Get("t", "pre").has_value());
  EXPECT_TRUE(db.Get("t", "post").has_value());
}

TEST_P(DatabaseTest, MissingTableIsError) {
  auto fs = std::make_shared<MemFs>();
  auto db = Fresh(fs);
  auto txn = db->Begin();
  ASSERT_TRUE(db->Put(txn, "nope", "k", ToBytes("v")).ok());
  EXPECT_EQ(db->Commit(txn).code(), ErrorCode::kNotFound);
}

TEST_P(DatabaseTest, OversizedRowRejected) {
  auto fs = std::make_shared<MemFs>();
  auto db = Fresh(fs);
  auto txn = db->Begin();
  // Larger than any data page: rejected up front, not at checkpoint time.
  Status st = db->Put(txn, "t", "big", Bytes(64 * 1024, 'x'));
  EXPECT_EQ(st.code(), ErrorCode::kInvalidArgument);
  // A row that fits is still fine in the same transaction.
  ASSERT_TRUE(db->Put(txn, "t", "ok", Bytes(512, 'y')).ok());
  EXPECT_TRUE(db->Commit(txn).ok());
}

TEST_P(DatabaseTest, OpenWithoutCreateFails) {
  auto fs = std::make_shared<MemFs>();
  Database db(fs, Layout());
  EXPECT_FALSE(db.Open().ok());
}

INSTANTIATE_TEST_SUITE_P(Flavors, DatabaseTest,
                         ::testing::Values(DbFlavor::kPostgres, DbFlavor::kMySql),
                         [](const auto& info) {
                           return info.param == DbFlavor::kPostgres ? "postgres"
                                                                    : "mysql";
                         });

TEST(DatabaseMySql, FuzzyFlushAdvancesCheckpointIncrementally) {
  auto fs = std::make_shared<MemFs>();
  DbOptions options;
  options.fuzzy_batch_pages = 2;
  Database db(fs, DbLayout::MySql(), options);
  ASSERT_TRUE(db.Create().ok());
  ASSERT_TRUE(db.CreateTable("t", 16).ok());
  for (int i = 0; i < 64; ++i) {
    auto txn = db.Begin();
    ASSERT_TRUE(db.Put(txn, "t", "k" + std::to_string(i), Bytes(50, 'x')).ok());
    ASSERT_TRUE(db.Commit(txn).ok());
  }
  const Lsn c0 = db.CheckpointLsn();
  ASSERT_TRUE(db.FuzzyFlush().ok());
  const Lsn c1 = db.CheckpointLsn();
  EXPECT_GE(c1, c0);
  // Keep flushing: the checkpoint frontier reaches the WAL end.
  for (int i = 0; i < 64; ++i) ASSERT_TRUE(db.FuzzyFlush().ok());
  EXPECT_EQ(db.CheckpointLsn(), db.WalEndLsn());

  // Crash + recover mid-stream state is consistent.
  Database recovered(fs, DbLayout::MySql());
  ASSERT_TRUE(recovered.Open().ok());
  EXPECT_EQ(recovered.RowCount("t"), 64u);
}

TEST(DatabaseMySql, CircularWalForcesFlushInsteadOfOverflow) {
  DbLayout layout = DbLayout::MySql();
  layout.wal_segment_size = 64 * layout.wal_page_size;  // 32 kB of log
  auto fs = std::make_shared<MemFs>();
  Database db(fs, layout);
  ASSERT_TRUE(db.Create().ok());
  ASSERT_TRUE(db.CreateTable("t").ok());
  // Write far more WAL than the circular capacity: the engine must force
  // checkpoints rather than corrupt the log.
  for (int i = 0; i < 300; ++i) {
    auto txn = db.Begin();
    ASSERT_TRUE(db.Put(txn, "t", "k" + std::to_string(i % 40), Bytes(200, 'z')).ok());
    ASSERT_TRUE(db.Commit(txn).ok());
  }
  Database recovered(fs, layout);
  ASSERT_TRUE(recovered.Open().ok());
  EXPECT_EQ(recovered.RowCount("t"), 40u);
}

TEST(DatabasePostgres, CheckpointRemovesOldWalSegments) {
  DbLayout layout = DbLayout::Postgres();
  layout.wal_segment_size = 4 * layout.wal_page_size;
  auto fs = std::make_shared<MemFs>();
  Database db(fs, layout);
  ASSERT_TRUE(db.Create().ok());
  ASSERT_TRUE(db.CreateTable("t").ok());
  for (int i = 0; i < 40; ++i) {
    auto txn = db.Begin();
    ASSERT_TRUE(db.Put(txn, "t", "k" + std::to_string(i), Bytes(4000, 'w')).ok());
    ASSERT_TRUE(db.Commit(txn).ok());
  }
  const std::size_t segments_before = fs->ListFiles("pg_xlog/")->size();
  ASSERT_TRUE(db.Checkpoint().ok());
  EXPECT_LT(fs->ListFiles("pg_xlog/")->size(), segments_before);

  Database recovered(fs, layout);
  ASSERT_TRUE(recovered.Open().ok());
  EXPECT_EQ(recovered.RowCount("t"), 40u);
}

}  // namespace
}  // namespace ginja
