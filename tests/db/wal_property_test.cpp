// Property tests for the WAL: random interleavings of appends, writer
// restarts, and checkpoint-driven truncation must always replay exactly
// the committed-transaction sequence.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/wal.h"
#include "fs/mem_fs.h"

namespace ginja {
namespace {

WalRecord Put(std::uint64_t txn, const std::string& key, const Bytes& value) {
  WalRecord r;
  r.type = WalRecordType::kPut;
  r.txn_id = txn;
  r.table = "t";
  r.key = key;
  r.value = value;
  return r;
}

WalRecord Commit(std::uint64_t txn) {
  WalRecord r;
  r.type = WalRecordType::kCommit;
  r.txn_id = txn;
  return r;
}

struct WalPropertyParam {
  std::uint64_t seed;
  DbFlavor flavor;
};

class WalProperty : public ::testing::TestWithParam<WalPropertyParam> {};

TEST_P(WalProperty, AppendsRestartsReplayExactly) {
  SplitMix64 rng(GetParam().seed);
  DbLayout layout = GetParam().flavor == DbFlavor::kPostgres
                        ? DbLayout::Postgres()
                        : DbLayout::MySql();
  if (layout.flavor == DbFlavor::kPostgres) {
    // Small segments so restarts land near boundaries too.
    layout.wal_segment_size = 8 * layout.wal_page_size;
  }
  auto fs = std::make_shared<MemFs>();

  std::vector<std::pair<std::string, std::size_t>> committed;  // key, size
  Lsn end_lsn = 0;
  std::uint64_t txn_id = 0;

  // Several writer "sessions", each appending a random mix of transaction
  // sizes, separated by restarts (writer reconstructed from end_lsn).
  for (int session = 0; session < 5; ++session) {
    WalWriter writer(fs, layout, end_lsn);
    if (layout.circular_wal) {
      // Keep the tiny circular log from wrapping over live data.
      writer.SetCheckpointLsn(end_lsn);
    }
    const int txns = static_cast<int>(rng.NextInRange(1, 25));
    for (int t = 0; t < txns; ++t) {
      std::vector<WalRecord> records;
      const int ops = static_cast<int>(rng.NextInRange(1, 4));
      const std::uint64_t id = ++txn_id;
      for (int op = 0; op < ops; ++op) {
        const std::size_t size =
            static_cast<std::size_t>(rng.NextInRange(0, 700));
        const std::string key =
            "s" + std::to_string(session) + "t" + std::to_string(t) + "o" +
            std::to_string(op);
        records.push_back(Put(id, key, Bytes(size, 'r')));
        committed.emplace_back(key, size);
      }
      records.push_back(Commit(id));
      auto end = writer.AppendAndSync(records);
      ASSERT_TRUE(end.ok());
      end_lsn = *end;
    }
  }

  WalReader reader(fs, layout);
  std::vector<std::pair<std::string, std::size_t>> replayed;
  auto end = reader.Replay(0, [&](const WalRecord& r) {
    replayed.emplace_back(r.key, r.value.size());
  });
  ASSERT_TRUE(end.ok());
  EXPECT_EQ(*end, end_lsn);
  ASSERT_EQ(replayed.size(), committed.size());
  for (std::size_t i = 0; i < committed.size(); ++i) {
    EXPECT_EQ(replayed[i], committed[i]) << "record " << i;
  }
}

TEST_P(WalProperty, MidStreamReplayMatchesSuffix) {
  SplitMix64 rng(GetParam().seed * 131);
  const DbLayout layout = GetParam().flavor == DbFlavor::kPostgres
                              ? DbLayout::Postgres()
                              : DbLayout::MySql();
  auto fs = std::make_shared<MemFs>();
  WalWriter writer(fs, layout, 0);

  std::vector<Lsn> boundaries = {0};
  std::vector<std::string> keys;
  for (int t = 0; t < 40; ++t) {
    const std::string key = "k" + std::to_string(t);
    auto end = writer.AppendAndSync(
        {Put(static_cast<std::uint64_t>(t + 1), key,
             Bytes(rng.NextInRange(10, 400), 'x')),
         Commit(static_cast<std::uint64_t>(t + 1))});
    ASSERT_TRUE(end.ok());
    boundaries.push_back(*end);
    keys.push_back(key);
  }

  // Replaying from any transaction boundary yields exactly the suffix.
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t from =
        static_cast<std::size_t>(rng.NextBelow(boundaries.size()));
    std::vector<std::string> replayed;
    auto end = WalReader(fs, layout).Replay(boundaries[from], [&](const WalRecord& r) {
      replayed.push_back(r.key);
    });
    ASSERT_TRUE(end.ok());
    const std::vector<std::string> expected(keys.begin() + static_cast<long>(from),
                                            keys.end());
    EXPECT_EQ(replayed, expected) << "from boundary " << from;
  }
}

std::vector<WalPropertyParam> WalParams() {
  std::vector<WalPropertyParam> params;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    params.push_back({seed, DbFlavor::kPostgres});
    params.push_back({seed, DbFlavor::kMySql});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalProperty, ::testing::ValuesIn(WalParams()),
                         [](const auto& info) {
                           return std::string(info.param.flavor ==
                                                      DbFlavor::kPostgres
                                                  ? "pg"
                                                  : "my") +
                                  "_seed" + std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace ginja
