#include <gtest/gtest.h>

#include "db/table.h"

namespace ginja {
namespace {

TEST(Table, PutGetDelete) {
  Table t("t", 8, 8192);
  t.Put("k1", ToBytes("v1"), 10);
  t.Put("k2", ToBytes("v2"), 11);
  EXPECT_EQ(t.row_count(), 2u);
  ASSERT_TRUE(t.Get("k1").has_value());
  EXPECT_EQ(ToString(View(*t.Get("k1"))), "v1");
  EXPECT_FALSE(t.Get("k3").has_value());
  EXPECT_TRUE(t.Delete("k1", 12));
  EXPECT_FALSE(t.Delete("k1", 13));
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_FALSE(t.Get("k1").has_value());
}

TEST(Table, OverwriteKeepsRowCount) {
  Table t("t", 8, 8192);
  t.Put("k", ToBytes("v1"), 1);
  t.Put("k", ToBytes("v2-longer"), 2);
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_EQ(ToString(View(*t.Get("k"))), "v2-longer");
}

TEST(Table, DirtyTrackingRecordsFirstLsn) {
  Table t("t", 4, 8192);
  EXPECT_FALSE(t.IsDirty());
  t.Put("a", ToBytes("1"), 100);
  t.Put("a", ToBytes("2"), 200);  // same bucket: first-dirty stays 100
  ASSERT_TRUE(t.IsDirty());
  const auto dirty = t.DirtyPages();
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0].first_dirty_lsn, 100u);
  EXPECT_EQ(t.OldestDirtyLsn(), 100u);
}

TEST(Table, MarkCleanClearsDirty) {
  Table t("t", 4, 8192);
  t.Put("a", ToBytes("1"), 1);
  const auto dirty = t.DirtyPages();
  ASSERT_EQ(dirty.size(), 1u);
  t.MarkClean(dirty[0].bucket);
  EXPECT_FALSE(t.IsDirty());
  EXPECT_FALSE(t.OldestDirtyLsn().has_value());
}

TEST(Table, SerializeAndParseRoundTrip) {
  const std::size_t page_size = 8192;
  Table t("t", 2, page_size);
  for (int i = 0; i < 50; ++i) {
    t.Put("key" + std::to_string(i), ToBytes("value" + std::to_string(i)), 5);
  }
  // Build a file image: every bucket's page at bucket*page_size.
  Bytes file(t.bucket_count() * page_size, 0);
  for (std::uint32_t b = 0; b < t.bucket_count(); ++b) {
    const Bytes page = t.SerializeBucket(b, /*flush_lsn=*/42);
    std::copy(page.begin(), page.end(),
              file.begin() + static_cast<long>(t.PageOffset(b)));
  }
  auto rows = Table::ParseFile(View(file), page_size);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 50u);
  for (const auto& row : *rows) {
    EXPECT_EQ(row.src_lsn, 42u);
    Table fresh("t2", 2, page_size);
    fresh.InstallLoaded(row.key, row.value);
    EXPECT_TRUE(fresh.Get(row.key).has_value());
  }
}

TEST(Table, ParseSkipsNeverWrittenPages) {
  const std::size_t page_size = 8192;
  Table t("t", 4, page_size);
  t.Put("only", ToBytes("row"), 1);
  Bytes file(4 * page_size, 0);  // three pages remain all-zero
  const auto dirty = t.DirtyPages();
  ASSERT_EQ(dirty.size(), 1u);
  const Bytes page = t.SerializeBucket(dirty[0].bucket, 7);
  std::copy(page.begin(), page.end(),
            file.begin() + static_cast<long>(t.PageOffset(dirty[0].bucket)));
  auto rows = Table::ParseFile(View(file), page_size);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST(Table, ParseRejectsCorruptPage) {
  const std::size_t page_size = 8192;
  Table t("t", 1, page_size);
  t.Put("k", ToBytes("v"), 1);
  Bytes file = t.SerializeBucket(0, 1);
  file[100] ^= 0xFF;
  EXPECT_FALSE(Table::ParseFile(View(file), page_size).ok());
}

TEST(Table, DuplicateKeysResolvedByFlushLsn) {
  // Simulates the file state after a crash mid-redistribution: the same key
  // appears in two pages; the one with the larger flush LSN must win.
  const std::size_t page_size = 8192;
  Table old_location("t", 1, page_size);
  old_location.Put("k", ToBytes("stale"), 1);
  Table new_location("t", 1, page_size);
  new_location.Put("k", ToBytes("fresh"), 2);

  Bytes file(2 * page_size, 0);
  const Bytes stale_page = old_location.SerializeBucket(0, /*flush_lsn=*/10);
  const Bytes fresh_page = new_location.SerializeBucket(0, /*flush_lsn=*/20);
  std::copy(stale_page.begin(), stale_page.end(), file.begin());
  std::copy(fresh_page.begin(), fresh_page.end(),
            file.begin() + static_cast<long>(page_size));

  auto rows = Table::ParseFile(View(file), page_size);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(ToString(View((*rows)[0].value)), "fresh");
  EXPECT_EQ((*rows)[0].src_lsn, 20u);

  // And in the reverse page order too.
  Bytes reversed(2 * page_size, 0);
  std::copy(fresh_page.begin(), fresh_page.end(), reversed.begin());
  std::copy(stale_page.begin(), stale_page.end(),
            reversed.begin() + static_cast<long>(page_size));
  rows = Table::ParseFile(View(reversed), page_size);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(ToString(View((*rows)[0].value)), "fresh");
}

TEST(Table, SplitsWhenBucketsFill) {
  Table t("t", 2, 1024);  // tiny pages force splits
  const std::uint32_t before = t.bucket_count();
  for (int i = 0; i < 200; ++i) {
    t.Put("key-" + std::to_string(i), Bytes(40, 'x'), 1);
  }
  EXPECT_GT(t.bucket_count(), before);
  EXPECT_EQ(t.row_count(), 200u);
  // Every row survives the redistribution.
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(t.Get("key-" + std::to_string(i)).has_value()) << i;
  }
  // Everything is dirty (the whole file must be rewritten).
  EXPECT_EQ(t.DirtyPages().size(), t.bucket_count());
}

TEST(Table, SerializeAllBucketsAfterSplitFits) {
  Table t("t", 2, 1024);
  for (int i = 0; i < 500; ++i) {
    t.Put("k" + std::to_string(i), Bytes(30, 'y'), 1);
  }
  for (std::uint32_t b = 0; b < t.bucket_count(); ++b) {
    const Bytes page = t.SerializeBucket(b, 1);
    EXPECT_EQ(page.size(), 1024u);
  }
}

TEST(Table, ApproxBytesTracksData) {
  Table t("t", 8, 8192);
  EXPECT_EQ(t.ApproxDataBytes(), 0u);
  t.Put("abc", Bytes(100, 'x'), 1);
  EXPECT_EQ(t.ApproxDataBytes(), 103u);
  t.Put("abc", Bytes(50, 'x'), 2);
  EXPECT_EQ(t.ApproxDataBytes(), 53u);
  t.Delete("abc", 3);
  EXPECT_EQ(t.ApproxDataBytes(), 0u);
}

}  // namespace
}  // namespace ginja
