// Concurrency stress: many writer threads plus a checkpointer hammering
// the engine, then crash recovery — every acknowledged commit must survive.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.h"
#include "db/database.h"
#include "fs/mem_fs.h"

namespace ginja {
namespace {

class EngineStress : public ::testing::TestWithParam<DbFlavor> {
 protected:
  DbLayout Layout() const {
    return GetParam() == DbFlavor::kPostgres ? DbLayout::Postgres()
                                             : DbLayout::MySql();
  }
};

TEST_P(EngineStress, ConcurrentWritersWithCheckpoints) {
  auto fs = std::make_shared<MemFs>();
  Database db(fs, Layout());
  ASSERT_TRUE(db.Create().ok());
  ASSERT_TRUE(db.CreateTable("t").ok());

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 150;
  std::atomic<bool> stop_checkpoints{false};
  std::vector<std::thread> writers;
  std::array<std::atomic<int>, kWriters> acked{};

  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        auto txn = db.Begin();
        const std::string key = "w" + std::to_string(w) + "-" + std::to_string(i);
        if (!db.Put(txn, "t", key, ToBytes("v" + std::to_string(i))).ok()) return;
        if (!db.Commit(txn).ok()) return;
        acked[static_cast<std::size_t>(w)].store(i + 1);
      }
    });
  }
  std::thread checkpointer([&] {
    while (!stop_checkpoints.load()) {
      if (Layout().flavor == DbFlavor::kMySql) {
        (void)db.FuzzyFlush();
      } else {
        (void)db.Checkpoint();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  for (auto& t : writers) t.join();
  stop_checkpoints.store(true);
  checkpointer.join();

  EXPECT_EQ(db.CommittedTxns(), kWriters * kPerWriter);
  EXPECT_EQ(db.RowCount("t"),
            static_cast<std::uint64_t>(kWriters) * kPerWriter);

  // Crash (no clean shutdown) and recover: every acknowledged commit is
  // there with its exact value.
  Database recovered(fs, Layout());
  ASSERT_TRUE(recovered.Open().ok());
  for (int w = 0; w < kWriters; ++w) {
    const int n = acked[static_cast<std::size_t>(w)].load();
    EXPECT_EQ(n, kPerWriter);
    for (int i = 0; i < n; ++i) {
      const std::string key = "w" + std::to_string(w) + "-" + std::to_string(i);
      auto v = recovered.Get("t", key);
      ASSERT_TRUE(v.has_value()) << key;
      EXPECT_EQ(ToString(View(*v)), "v" + std::to_string(i)) << key;
    }
  }
}

TEST_P(EngineStress, ReadersRunConcurrentlyWithWriters) {
  auto fs = std::make_shared<MemFs>();
  Database db(fs, Layout());
  ASSERT_TRUE(db.Create().ok());
  ASSERT_TRUE(db.CreateTable("t").ok());

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::thread reader([&] {
    SplitMix64 rng(1);
    while (!stop.load()) {
      // Reads must always see either nothing or a complete value.
      auto v = db.Get("t", "k" + std::to_string(rng.NextBelow(50)));
      if (v) {
        EXPECT_EQ(v->size(), 64u);
      }
      reads.fetch_add(1);
    }
  });
  for (int i = 0; i < 300; ++i) {
    auto txn = db.Begin();
    ASSERT_TRUE(db.Put(txn, "t", "k" + std::to_string(i % 50), Bytes(64, 'x')).ok());
    ASSERT_TRUE(db.Commit(txn).ok());
  }
  // Let the reader observe the final state too (it may have started after
  // the burst finished — commits are fast on the in-memory substrate).
  while (reads.load() == 0) std::this_thread::yield();
  stop.store(true);
  reader.join();
  EXPECT_GT(reads.load(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Flavors, EngineStress,
                         ::testing::Values(DbFlavor::kPostgres, DbFlavor::kMySql),
                         [](const auto& info) {
                           return info.param == DbFlavor::kPostgres ? "postgres"
                                                                    : "mysql";
                         });

}  // namespace
}  // namespace ginja
