#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "fs/intercept_fs.h"
#include "fs/local_fs.h"
#include "fs/mem_fs.h"

namespace ginja {
namespace {

Bytes B(const char* s) { return ToBytes(s); }

class VfsConformance : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    if (std::string(GetParam()) == "mem") {
      vfs_ = std::make_shared<MemFs>();
    } else {
      dir_ = std::filesystem::temp_directory_path() /
             ("ginja_vfs_test_" + std::to_string(::getpid()));
      std::filesystem::remove_all(dir_);
      vfs_ = std::make_shared<LocalFs>(dir_);
    }
  }
  void TearDown() override {
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }
  VfsPtr vfs_;
  std::filesystem::path dir_;
};

TEST_P(VfsConformance, WriteReadAtOffset) {
  ASSERT_TRUE(vfs_->Write("dir/file", 0, View(B("hello world")), true).ok());
  auto got = vfs_->Read("dir/file", 6, 5);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToString(View(*got)), "world");
}

TEST_P(VfsConformance, WriteBeyondEofZeroFills) {
  ASSERT_TRUE(vfs_->Write("f", 10, View(B("x")), false).ok());
  auto size = vfs_->FileSize("f");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 11u);
  auto hole = vfs_->Read("f", 0, 10);
  ASSERT_TRUE(hole.ok());
  EXPECT_EQ(*hole, Bytes(10, 0));
}

TEST_P(VfsConformance, OverwriteInPlace) {
  ASSERT_TRUE(vfs_->Write("f", 0, View(B("aaaa")), false).ok());
  ASSERT_TRUE(vfs_->Write("f", 1, View(B("bb")), false).ok());
  auto all = vfs_->ReadAll("f");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(ToString(View(*all)), "abba");
}

TEST_P(VfsConformance, ReadPastEofIsShort) {
  ASSERT_TRUE(vfs_->Write("f", 0, View(B("abc")), false).ok());
  auto got = vfs_->Read("f", 2, 100);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToString(View(*got)), "c");
}

TEST_P(VfsConformance, MissingFileErrors) {
  EXPECT_FALSE(vfs_->ReadAll("missing").ok());
  EXPECT_FALSE(vfs_->FileSize("missing").ok());
  EXPECT_FALSE(vfs_->Exists("missing"));
}

TEST_P(VfsConformance, RemoveAndList) {
  ASSERT_TRUE(vfs_->Write("pg_xlog/0001", 0, View(B("w")), false).ok());
  ASSERT_TRUE(vfs_->Write("pg_xlog/0002", 0, View(B("w")), false).ok());
  ASSERT_TRUE(vfs_->Write("base/t1", 0, View(B("d")), false).ok());
  auto wal = vfs_->ListFiles("pg_xlog/");
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(wal->size(), 2u);
  ASSERT_TRUE(vfs_->Remove("pg_xlog/0001").ok());
  EXPECT_FALSE(vfs_->Exists("pg_xlog/0001"));
  auto all = vfs_->ListFiles("");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 2u);
}

TEST_P(VfsConformance, Truncate) {
  ASSERT_TRUE(vfs_->Write("f", 0, View(B("abcdef")), false).ok());
  ASSERT_TRUE(vfs_->Truncate("f", 3).ok());
  auto all = vfs_->ReadAll("f");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(ToString(View(*all)), "abc");
}

INSTANTIATE_TEST_SUITE_P(Backends, VfsConformance,
                         ::testing::Values("mem", "local"));

TEST(MemFs, CloneIsDeepCopy) {
  auto fs = std::make_shared<MemFs>();
  ASSERT_TRUE(fs->Write("f", 0, View(B("v1")), false).ok());
  auto clone = fs->Clone();
  ASSERT_TRUE(fs->Write("f", 0, View(B("v2")), false).ok());
  EXPECT_EQ(ToString(View(*clone->ReadAll("f"))), "v1");
}

// -- InterceptFs -----------------------------------------------------------------

class RecordingListener : public FileEventListener {
 public:
  void OnFileEvent(const FileEvent& event) override {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(event);
  }
  std::vector<FileEvent> Events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<FileEvent> events_;
};

TEST(InterceptFs, DeliversWriteEventsAfterLocalWrite) {
  auto inner = std::make_shared<MemFs>();
  auto clock = std::make_shared<RealClock>();
  InterceptFs fs(inner, clock);
  RecordingListener listener;
  fs.SetListener(&listener);

  ASSERT_TRUE(fs.Write("pg_xlog/0001", 8192, View(B("page")), true).ok());
  auto events = listener.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].path, "pg_xlog/0001");
  EXPECT_EQ(events[0].offset, 8192u);
  EXPECT_TRUE(events[0].sync);
  EXPECT_EQ(events[0].data, B("page"));
  // The local write happened before the event fired.
  EXPECT_TRUE(inner->Exists("pg_xlog/0001"));
}

TEST(InterceptFs, NoListenerNoCrash) {
  auto clock = std::make_shared<RealClock>();
  InterceptFs fs(std::make_shared<MemFs>(), clock);
  EXPECT_TRUE(fs.Write("f", 0, View(B("x")), false).ok());
  EXPECT_EQ(fs.intercepted_writes().Get(), 1u);
}

TEST(InterceptFs, RemoveAndTruncateEvents) {
  auto clock = std::make_shared<RealClock>();
  InterceptFs fs(std::make_shared<MemFs>(), clock);
  RecordingListener listener;
  fs.SetListener(&listener);
  ASSERT_TRUE(fs.Write("f", 0, View(B("abc")), false).ok());
  ASSERT_TRUE(fs.Truncate("f", 1).ok());
  ASSERT_TRUE(fs.Remove("f").ok());
  auto events = listener.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].kind, FileEvent::Kind::kTruncate);
  EXPECT_EQ(events[1].size, 1u);
  EXPECT_EQ(events[2].kind, FileEvent::Kind::kRemove);
}

TEST(InterceptFs, ListenerBlockStallsWriter) {
  // The Safety mechanism: a blocking listener keeps the DBMS inside its
  // write call.
  class BlockingListener : public FileEventListener {
   public:
    void OnFileEvent(const FileEvent&) override {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return released_; });
    }
    void Release() {
      {
        std::lock_guard<std::mutex> lock(mu_);
        released_ = true;
      }
      cv_.notify_all();
    }

   private:
    std::mutex mu_;
    std::condition_variable cv_;
    bool released_ = false;
  };

  auto clock = std::make_shared<RealClock>();
  InterceptFs fs(std::make_shared<MemFs>(), clock);
  BlockingListener listener;
  fs.SetListener(&listener);

  std::atomic<bool> write_returned{false};
  std::thread writer([&] {
    ASSERT_TRUE(fs.Write("f", 0, View(B("x")), true).ok());
    write_returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(write_returned.load());
  listener.Release();
  writer.join();
  EXPECT_TRUE(write_returned.load());
}

TEST(InterceptFs, PerOpOverheadSleeps) {
  auto clock = std::make_shared<RealClock>();
  InterceptFs fs(std::make_shared<MemFs>(), clock, /*per_op_overhead_us=*/3000);
  const auto start = clock->NowMicros();
  ASSERT_TRUE(fs.Write("f", 0, View(B("x")), false).ok());
  EXPECT_GE(clock->NowMicros() - start, 2000u);
}

}  // namespace
}  // namespace ginja
