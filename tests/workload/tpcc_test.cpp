#include <gtest/gtest.h>

#include "fs/mem_fs.h"
#include "workload/driver.h"
#include "workload/tpcc.h"

namespace ginja {
namespace {

struct TpccFixture {
  std::shared_ptr<MemFs> fs = std::make_shared<MemFs>();
  std::unique_ptr<Database> db;
  std::unique_ptr<TpccWorkload> workload;

  explicit TpccFixture(TpccConfig config = {}) {
    db = std::make_unique<Database>(fs, DbLayout::Postgres());
    EXPECT_TRUE(db->Create().ok());
    workload = std::make_unique<TpccWorkload>(db.get(), config);
    EXPECT_TRUE(workload->Populate().ok());
  }
};

TEST(Tpcc, PopulateCreatesSchemaAndRows) {
  TpccConfig config;
  config.warehouses = 2;
  TpccFixture fx(config);
  for (const char* table : {"warehouse", "district", "customer", "item", "stock"}) {
    EXPECT_TRUE(fx.db->HasTable(table)) << table;
  }
  EXPECT_EQ(fx.db->RowCount("warehouse"), 2u);
  // Districts plus the delivery-frontier rows.
  EXPECT_EQ(fx.db->RowCount("district"), 2u * 10u * 2u);
  EXPECT_EQ(fx.db->RowCount("item"), static_cast<std::uint64_t>(config.Items()));
  EXPECT_EQ(fx.db->RowCount("stock"), 2u * config.Items());
  EXPECT_EQ(fx.db->RowCount("customer"),
            2u * 10u * config.CustomersPerDistrict());
}

TEST(Tpcc, MixMatchesSpec) {
  TpccFixture fx;
  SplitMix64 rng(1);
  int counts[5] = {};
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    counts[static_cast<int>(fx.workload->PickType(rng))]++;
  }
  EXPECT_NEAR(counts[0] / double(n), 0.45, 0.02);  // NewOrder
  EXPECT_NEAR(counts[1] / double(n), 0.43, 0.02);  // Payment
  EXPECT_NEAR(counts[2] / double(n), 0.04, 0.01);  // OrderStatus
  EXPECT_NEAR(counts[3] / double(n), 0.04, 0.01);  // Delivery
  EXPECT_NEAR(counts[4] / double(n), 0.04, 0.01);  // StockLevel
}

TEST(Tpcc, NewOrderAdvancesDistrictCounter) {
  TpccFixture fx;
  SplitMix64 rng(2);
  std::uint64_t executed = 0;
  for (int i = 0; i < 50; ++i) {
    Status st = fx.workload->Execute(TpccWorkload::TxnType::kNewOrder, rng);
    if (st.ok()) ++executed;
    else EXPECT_EQ(st.code(), ErrorCode::kAborted);  // the 1% rollback
  }
  EXPECT_GT(executed, 40u);
  EXPECT_GT(fx.db->RowCount("orders"), 0u);
  EXPECT_GT(fx.db->RowCount("orderline"), 0u);
  EXPECT_EQ(fx.db->RowCount("orders"), fx.db->RowCount("neworder"));
}

TEST(Tpcc, PaymentWritesHistory) {
  TpccFixture fx;
  SplitMix64 rng(3);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(fx.workload->Execute(TpccWorkload::TxnType::kPayment, rng).ok());
  }
  EXPECT_EQ(fx.db->RowCount("history"), 20u);
}

TEST(Tpcc, DeliveryConsumesNewOrders) {
  TpccFixture fx;
  SplitMix64 rng(4);
  for (int i = 0; i < 40; ++i) {
    (void)fx.workload->Execute(TpccWorkload::TxnType::kNewOrder, rng);
  }
  const std::uint64_t pending_before = fx.db->RowCount("neworder");
  ASSERT_GT(pending_before, 0u);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fx.workload->Execute(TpccWorkload::TxnType::kDelivery, rng).ok());
  }
  EXPECT_LT(fx.db->RowCount("neworder"), pending_before);
}

TEST(Tpcc, ReadOnlyTypesDontGrowState) {
  TpccFixture fx;
  SplitMix64 rng(5);
  for (int i = 0; i < 20; ++i) {
    (void)fx.workload->Execute(TpccWorkload::TxnType::kNewOrder, rng);
  }
  const Lsn wal_before = fx.db->WalEndLsn();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        fx.workload->Execute(TpccWorkload::TxnType::kOrderStatus, rng).ok());
    ASSERT_TRUE(
        fx.workload->Execute(TpccWorkload::TxnType::kStockLevel, rng).ok());
  }
  EXPECT_EQ(fx.db->WalEndLsn(), wal_before);
}

TEST(Tpcc, WorkloadIsUpdateHeavy) {
  // The paper picked TPC-C for its ~90% update transactions; verify the mix
  // actually commits WAL bytes for the vast majority of transactions.
  TpccFixture fx;
  TpccRunOptions options;
  options.terminals = 2;
  options.wall_seconds = 0.3;
  const auto result = RunTpcc(*fx.workload, options);
  EXPECT_GT(result.total_txns, 50u);
  EXPECT_GT(result.TpmC(), 0.0);
  EXPECT_GT(result.TpmTotal(), result.TpmC());
}

TEST(Tpcc, SurvivesCrashRecovery) {
  TpccFixture fx;
  SplitMix64 rng(6);
  for (int i = 0; i < 60; ++i) {
    (void)fx.workload->Execute(fx.workload->PickType(rng), rng);
  }
  const std::uint64_t orders = fx.db->RowCount("orders");
  const std::uint64_t history = fx.db->RowCount("history");
  fx.db.reset();  // crash

  Database recovered(fx.fs, DbLayout::Postgres());
  ASSERT_TRUE(recovered.Open().ok());
  EXPECT_EQ(recovered.RowCount("orders"), orders);
  EXPECT_EQ(recovered.RowCount("history"), history);
}

TEST(SimpleUpdates, GeneratesExactCount) {
  auto fs = std::make_shared<MemFs>();
  Database db(fs, DbLayout::Postgres());
  ASSERT_TRUE(db.Create().ok());
  ASSERT_TRUE(db.CreateTable("updates").ok());
  ASSERT_TRUE(RunSimpleUpdates(db, "updates", 100, 200).ok());
  EXPECT_EQ(db.CommittedTxns(), 100u);
}

}  // namespace
}  // namespace ginja
