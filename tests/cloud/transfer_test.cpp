// TransferManager: bounded concurrency, retry/backoff on injected faults,
// fan-out deletes, and cancellation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "cloud/faulty_store.h"
#include "cloud/memory_store.h"
#include "cloud/transfer.h"

namespace ginja {
namespace {

Bytes B(const char* s) { return ToBytes(s); }

TransferOptions FastOptions(int concurrency = 4) {
  TransferOptions o;
  o.concurrency = concurrency;
  o.max_attempts = 10;
  o.backoff_initial_us = 200;  // real microseconds: tests use RealClock
  o.backoff_max_us = 2'000;
  return o;
}

// Forwards to an inner store while recording how many Gets overlap.
class TrackingStore : public ObjectStore {
 public:
  explicit TrackingStore(ObjectStorePtr inner) : inner_(std::move(inner)) {}

  Result<Bytes> Get(std::string_view name) override {
    const int now = concurrent_.fetch_add(1) + 1;
    int peak = peak_.load();
    while (peak < now && !peak_.compare_exchange_weak(peak, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    auto result = inner_->Get(name);
    concurrent_.fetch_sub(1);
    return result;
  }
  Status Put(std::string_view name, ByteView data) override {
    return inner_->Put(name, data);
  }
  Status Delete(std::string_view name) override { return inner_->Delete(name); }
  Result<std::vector<ObjectMeta>> List(std::string_view prefix) override {
    return inner_->List(prefix);
  }

  int peak() const { return peak_.load(); }

 private:
  ObjectStorePtr inner_;
  std::atomic<int> concurrent_{0};
  std::atomic<int> peak_{0};
};

TEST(TransferManagerTest, PutGetDeleteRoundtrip) {
  auto store = std::make_shared<MemoryStore>();
  TransferManager manager(store, FastOptions());

  ASSERT_TRUE(manager.Put("a", B("alpha")).ok());
  auto got = manager.Get("a");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, B("alpha"));

  ASSERT_TRUE(manager.DeleteAsync("a").get().ok());
  EXPECT_FALSE(store->Get("a").ok());

  EXPECT_EQ(manager.stats().gets.Get(), 1u);
  EXPECT_EQ(manager.stats().puts.Get(), 1u);
  EXPECT_EQ(manager.stats().deletes.Get(), 1u);
  EXPECT_EQ(manager.stats().bytes_uploaded.Get(), 5u);
  EXPECT_EQ(manager.stats().bytes_downloaded.Get(), 5u);
  EXPECT_EQ(manager.stats().failed_ops.Get(), 0u);
}

TEST(TransferManagerTest, RetriesInjectedTransientFailures) {
  auto memory = std::make_shared<MemoryStore>();
  ASSERT_TRUE(memory->Put("k", View(B("v"))).ok());
  auto faulty = std::make_shared<FaultyStore>(memory);
  TransferManager manager(faulty, FastOptions());

  faulty->FailNextOps(3);
  auto got = manager.Get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, B("v"));
  EXPECT_EQ(faulty->injected_failures(), 3u);
  EXPECT_EQ(manager.stats().retries.Get(), 3u);
  EXPECT_EQ(manager.stats().failed_ops.Get(), 0u);
}

TEST(TransferManagerTest, ExhaustedRetriesReturnLastError) {
  auto faulty =
      std::make_shared<FaultyStore>(std::make_shared<MemoryStore>());
  TransferOptions options = FastOptions();
  options.max_attempts = 3;
  TransferManager manager(faulty, options);

  faulty->SetAvailable(false);
  Status st = manager.Put("k", B("v"));
  EXPECT_EQ(st.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(manager.stats().retries.Get(), 2u);  // attempts - 1
  EXPECT_EQ(manager.stats().failed_ops.Get(), 1u);
  EXPECT_EQ(manager.stats().puts.Get(), 0u);
}

TEST(TransferManagerTest, NotFoundIsAnAnswerNotRetried) {
  auto store = std::make_shared<MemoryStore>();
  TransferManager manager(store, FastOptions());

  auto got = manager.Get("missing");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(manager.stats().retries.Get(), 0u);
  EXPECT_EQ(manager.stats().failed_ops.Get(), 1u);
}

TEST(TransferManagerTest, BackoffGrowsExponentially) {
  auto memory = std::make_shared<MemoryStore>();
  ASSERT_TRUE(memory->Put("k", View(B("v"))).ok());
  auto faulty = std::make_shared<FaultyStore>(memory);
  TransferOptions options = FastOptions();
  options.backoff_initial_us = 10'000;
  options.backoff_max_us = 1'000'000;
  options.backoff_jitter = 0.0;
  TransferManager manager(faulty, options);

  faulty->FailNextOps(3);  // sleeps: 10ms + 20ms + 40ms = 70ms
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(manager.Get("k").ok());
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 60);
}

TEST(TransferManagerTest, ConcurrencyIsBounded) {
  auto memory = std::make_shared<MemoryStore>();
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(memory->Put("obj" + std::to_string(i), View(B("x"))).ok());
  }
  auto tracking = std::make_shared<TrackingStore>(memory);
  TransferManager manager(tracking, FastOptions(/*concurrency=*/4));

  std::vector<std::future<Result<Bytes>>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(manager.GetAsync("obj" + std::to_string(i)));
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());

  EXPECT_LE(tracking->peak(), 4);
  EXPECT_GE(tracking->peak(), 2);  // the window genuinely overlapped
  EXPECT_LE(manager.stats().peak_inflight.load(), 4);
  EXPECT_EQ(manager.stats().gets.Get(), 16u);
}

TEST(TransferManagerTest, DeleteAllReportsPerName) {
  auto store = std::make_shared<MemoryStore>();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(store->Put("gc" + std::to_string(i), View(B("x"))).ok());
  }
  TransferManager manager(store, FastOptions());

  std::vector<std::string> names;
  for (int i = 0; i < 8; ++i) names.push_back("gc" + std::to_string(i));
  auto statuses = manager.DeleteAll(names);
  ASSERT_EQ(statuses.size(), names.size());
  for (const auto& st : statuses) EXPECT_TRUE(st.ok());
  for (const auto& name : names) EXPECT_FALSE(store->Get(name).ok());
  EXPECT_EQ(manager.stats().deletes.Get(), 8u);
}

TEST(TransferManagerTest, CancelAbortsQueuedAndFutureOps) {
  auto memory = std::make_shared<MemoryStore>();
  ASSERT_TRUE(memory->Put("k", View(B("v"))).ok());
  auto tracking = std::make_shared<TrackingStore>(memory);
  TransferManager manager(tracking, FastOptions(/*concurrency=*/1));

  std::vector<std::future<Result<Bytes>>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(manager.GetAsync("k"));
  manager.Cancel();
  EXPECT_TRUE(manager.cancelled());

  int aborted = 0;
  for (auto& f : futures) {
    auto result = f.get();  // must not hang
    if (!result.ok() && result.status().code() == ErrorCode::kAborted) {
      ++aborted;
    }
  }
  EXPECT_GE(aborted, 2);  // at most the in-flight ops could still land

  auto late = manager.GetAsync("k").get();
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), ErrorCode::kAborted);
}

TEST(TransferManagerTest, CancelInterruptsBackoffSleep) {
  auto faulty =
      std::make_shared<FaultyStore>(std::make_shared<MemoryStore>());
  TransferOptions options = FastOptions(1);
  options.backoff_initial_us = 60'000'000;  // would sleep a minute
  options.max_attempts = 5;
  TransferManager manager(faulty, options);

  faulty->SetAvailable(false);
  auto future = manager.PutAsync("k", B("v"));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto start = std::chrono::steady_clock::now();
  manager.Cancel();
  Status st = future.get();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_FALSE(st.ok());
  EXPECT_LT(elapsed.count(), 10'000);  // not the full backoff
}

// -- StreamSession ----------------------------------------------------------

TEST(TransferStream, PartsUploadAndFinishPublishes) {
  auto store = std::make_shared<MemoryStore>();
  TransferManager manager(store, FastOptions());
  auto session = manager.BeginStream("stage/s1");

  std::atomic<int> parts_done{0};
  session->AppendPart(0, B("one "), [&](Status st) {
    EXPECT_TRUE(st.ok());
    parts_done.fetch_add(1);
  });
  session->AppendPart(1, B("two "), [&](Status st) {
    EXPECT_TRUE(st.ok());
    parts_done.fetch_add(1);
  });
  session->AppendPart(2, B("three"), [&](Status st) {
    EXPECT_TRUE(st.ok());
    parts_done.fetch_add(1);
  });
  Status st = session->Finish(3, "published").get();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(parts_done.load(), 3);
  EXPECT_EQ(session->BacklogParts(), 0u);
  auto got = store->Get("published");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, B("one two three"));
}

TEST(TransferStream, FinishRetriesTransientFailures) {
  auto faulty = std::make_shared<FaultyStore>(std::make_shared<MemoryStore>());
  TransferManager manager(faulty, FastOptions());
  auto session = manager.BeginStream("stage/s2");
  session->AppendPart(0, B("payload"));
  faulty->FailNextOps(3);  // within max_attempts=10
  Status st = session->Finish(1, "retried").get();
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(manager.Get("retried").ok());
}

TEST(TransferStream, AbortDiscardsWithoutPublishing) {
  auto store = std::make_shared<MemoryStore>();
  {
    TransferManager manager(store, FastOptions());
    auto session = manager.BeginStream("stage/s3");
    std::atomic<bool> part_failed{false};
    session->AppendPart(0, B("doomed"),
                        [&](Status st) { part_failed.store(!st.ok()); });
    session->Abort();
    // The manager's destructor drains the pool; the backend abort reaps
    // the staged upload when the session is dropped.
  }
  EXPECT_FALSE(store->Get("never").ok());
  auto all = store->List("");
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(all->empty());
}

TEST(TransferStream, PermanentFailureFailsFinish) {
  auto faulty = std::make_shared<FaultyStore>(std::make_shared<MemoryStore>());
  TransferOptions options = FastOptions();
  options.max_attempts = 3;
  TransferManager manager(faulty, options);
  faulty->SetAvailable(false);  // never recovers: the part fails for good
  auto session = manager.BeginStream("stage/s4");
  session->AppendPart(0, B("lost"));
  Status st = session->Finish(1, "unreachable").get();
  EXPECT_FALSE(st.ok());
  faulty->SetAvailable(true);
  EXPECT_FALSE(manager.Get("unreachable").ok());
}

}  // namespace
}  // namespace ginja
