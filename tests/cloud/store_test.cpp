#include <gtest/gtest.h>

#include <filesystem>

#include "cloud/disk_store.h"
#include "cloud/faulty_store.h"
#include "cloud/latency_model.h"
#include "cloud/memory_store.h"
#include "cloud/metered_store.h"
#include "cloud/replicated_store.h"
#include "cloud/s3/s3_client.h"
#include "cloud/s3/s3_server.h"

namespace ginja {
namespace {

Bytes B(const char* s) { return ToBytes(s); }

// Shared conformance suite run against both concrete backends.
class StoreConformance : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    if (std::string(GetParam()) == "memory") {
      store_ = std::make_shared<MemoryStore>();
    } else if (std::string(GetParam()) == "s3") {
      // Full wire path: SigV4-signed REST against the in-process server.
      auto server = std::make_shared<S3Server>(std::make_shared<MemoryStore>(),
                                               "conformance-bucket");
      store_ = std::make_shared<S3Client>(server, "conformance-bucket");
    } else {
      dir_ = std::filesystem::temp_directory_path() /
             ("ginja_store_test_" + std::to_string(::getpid()));
      std::filesystem::remove_all(dir_);
      store_ = std::make_shared<DiskStore>(dir_);
    }
  }
  void TearDown() override {
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }
  ObjectStorePtr store_;
  std::filesystem::path dir_;
};

TEST_P(StoreConformance, PutGetRoundTrip) {
  ASSERT_TRUE(store_->Put("WAL/1_x_0", View(B("hello"))).ok());
  auto got = store_->Get("WAL/1_x_0");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, B("hello"));
}

TEST_P(StoreConformance, PutOverwrites) {
  ASSERT_TRUE(store_->Put("k", View(B("v1"))).ok());
  ASSERT_TRUE(store_->Put("k", View(B("v2"))).ok());
  EXPECT_EQ(*store_->Get("k"), B("v2"));
}

TEST_P(StoreConformance, GetMissingIsNotFound) {
  auto got = store_->Get("nope");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), ErrorCode::kNotFound);
}

TEST_P(StoreConformance, DeleteMissingSucceeds) {
  EXPECT_TRUE(store_->Delete("nope").ok());
}

TEST_P(StoreConformance, DeleteRemoves) {
  ASSERT_TRUE(store_->Put("k", View(B("v"))).ok());
  ASSERT_TRUE(store_->Delete("k").ok());
  EXPECT_FALSE(store_->Get("k").ok());
}

TEST_P(StoreConformance, ListPrefixSorted) {
  ASSERT_TRUE(store_->Put("DB/2_dump", View(B("d"))).ok());
  ASSERT_TRUE(store_->Put("WAL/10_a", View(B("aa"))).ok());
  ASSERT_TRUE(store_->Put("WAL/2_b", View(B("b"))).ok());
  auto list = store_->List("WAL/");
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 2u);
  EXPECT_EQ((*list)[0].name, "WAL/10_a");  // lexicographic
  EXPECT_EQ((*list)[0].size, 2u);
  EXPECT_EQ((*list)[1].name, "WAL/2_b");
  auto all = store_->List("");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);
}

TEST_P(StoreConformance, EmptyObjectAllowed) {
  ASSERT_TRUE(store_->Put("empty", {}).ok());
  auto got = store_->Get("empty");
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
}

TEST_P(StoreConformance, StreamedPutRoundTrip) {
  auto writer = store_->BeginStreaming("stage/alpha");
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendPart(0, View(B("part-0|"))).ok());
  ASSERT_TRUE((*writer)->AppendPart(1, View(B("part-1|"))).ok());
  // Re-appending a part at or below the frontier is an idempotent Ok (a
  // retried part RPC must not corrupt the stream).
  ASSERT_TRUE((*writer)->AppendPart(1, View(B("part-1|"))).ok());
  ASSERT_TRUE((*writer)->AppendPart(2, View(B("part-2"))).ok());
  // Nothing is visible before Finish.
  EXPECT_FALSE(store_->Get("streamed").ok());
  auto all = store_->List("");
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(all->empty());

  ASSERT_TRUE((*writer)->Finish("streamed").ok());
  auto got = store_->Get("streamed");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, B("part-0|part-1|part-2"));
  // Finish after success is an idempotent no-op.
  EXPECT_TRUE((*writer)->Finish("streamed").ok());
}

TEST_P(StoreConformance, StreamedAbortLeavesNoTrace) {
  auto writer = store_->BeginStreaming("stage/beta");
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendPart(0, View(B("doomed"))).ok());
  (*writer)->Abort();
  EXPECT_EQ((*writer)->Finish("never").code(), ErrorCode::kInvalidArgument);
  EXPECT_FALSE(store_->Get("never").ok());
  auto all = store_->List("");
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(all->empty());
}

TEST_P(StoreConformance, StreamedOutOfOrderPartRejected) {
  auto writer = store_->BeginStreaming("stage/gamma");
  ASSERT_TRUE(writer.ok());
  EXPECT_EQ((*writer)->AppendPart(1, View(B("skipped 0"))).code(),
            ErrorCode::kInvalidArgument);
}

TEST_P(StoreConformance, ListStartAfterCursor) {
  ASSERT_TRUE(store_->Put("WAL/0_a", View(B("a"))).ok());
  ASSERT_TRUE(store_->Put("WAL/1_b", View(B("b"))).ok());
  ASSERT_TRUE(store_->Put("WAL/2_c", View(B("c"))).ok());
  ASSERT_TRUE(store_->Put("DB/1_x", View(B("d"))).ok());

  // Strictly after: the cursor key itself is excluded.
  auto after = store_->List("WAL/", "WAL/1_b");
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->size(), 1u);
  EXPECT_EQ((*after)[0].name, "WAL/2_c");

  // The standby's derived cursor — the next expected key, not a seen one —
  // keeps every name at or past that ts (they all sort after the bare
  // "WAL/<ts>" because of the following '_').
  auto derived = store_->List("WAL/", "WAL/1");
  ASSERT_TRUE(derived.ok());
  ASSERT_EQ(derived->size(), 2u);
  EXPECT_EQ((*derived)[0].name, "WAL/1_b");
  EXPECT_EQ((*derived)[1].name, "WAL/2_c");

  // Empty cursor == plain prefix listing; a cursor below the prefix too.
  auto all = store_->List("WAL/", "");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);
  auto early = store_->List("WAL/", "A");
  ASSERT_TRUE(early.ok());
  EXPECT_EQ(early->size(), 3u);

  // A cursor past every key returns nothing.
  auto none = store_->List("WAL/", "WAL/9");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

// The documented hazard: unpadded timestamps make lexicographic and numeric
// order diverge across a digit-length change, so "the last key I saw" is
// NOT a safe cursor — it would skip the rollover object.
TEST_P(StoreConformance, ListStartAfterUnpaddedTsHazard) {
  ASSERT_TRUE(store_->Put("WAL/9_a", View(B("a"))).ok());
  ASSERT_TRUE(store_->Put("WAL/10_b", View(B("b"))).ok());
  auto after_seen = store_->List("WAL/", "WAL/9_a");
  ASSERT_TRUE(after_seen.ok());
  EXPECT_TRUE(after_seen->empty());  // "WAL/10_b" < "WAL/9_a": skipped!
  // The next-expected-ts cursor ("WAL/10") does reach it — along with the
  // already-seen "WAL/9_a", which also sorts after "WAL/10". The cursor
  // guarantees nothing needed is *skipped*; consumers still re-filter
  // trailing old names by decoded ts (ContinueWalPlan's ts < next_ts).
  auto after_expected = store_->List("WAL/", "WAL/10");
  ASSERT_TRUE(after_expected.ok());
  ASSERT_EQ(after_expected->size(), 2u);
  EXPECT_EQ((*after_expected)[0].name, "WAL/10_b");
  EXPECT_EQ((*after_expected)[1].name, "WAL/9_a");
}

INSTANTIATE_TEST_SUITE_P(Backends, StoreConformance,
                         ::testing::Values("memory", "disk", "s3"));

// -- MeteredStore -----------------------------------------------------------------

TEST(MeteredStore, CountsOpsAndBytes) {
  auto clock = std::make_shared<RealClock>();
  MeteredStore store(std::make_shared<MemoryStore>(), clock);
  ASSERT_TRUE(store.Put("a", View(B("12345"))).ok());
  ASSERT_TRUE(store.Put("b", View(B("xy"))).ok());
  (void)store.Get("a");
  (void)store.Get("missing");
  (void)store.List("");
  ASSERT_TRUE(store.Delete("b").ok());

  const UsageReport usage = store.Usage();
  EXPECT_EQ(usage.puts, 2u);
  EXPECT_EQ(usage.gets, 2u);
  EXPECT_EQ(usage.lists, 1u);
  EXPECT_EQ(usage.deletes, 1u);
  EXPECT_EQ(usage.bytes_uploaded, 7u);
  EXPECT_EQ(usage.bytes_downloaded, 5u);
  EXPECT_EQ(usage.current_storage_bytes, 5u);  // only "a" remains
}

TEST(MeteredStore, OverwriteAdjustsStorage) {
  auto clock = std::make_shared<RealClock>();
  MeteredStore store(std::make_shared<MemoryStore>(), clock);
  ASSERT_TRUE(store.Put("k", View(B("1234567890"))).ok());
  ASSERT_TRUE(store.Put("k", View(B("12"))).ok());
  EXPECT_EQ(store.Usage().current_storage_bytes, 2u);
}

TEST(MeteredStore, MonthlyCostChargesPutsAndStorage) {
  auto clock = std::make_shared<RealClock>();
  MeteredStore store(std::make_shared<MemoryStore>(), clock);
  const Bytes gb_ish(1024 * 1024, 0);  // 1 MB stand-in
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(store.Put("o" + std::to_string(i), View(gb_ish)).ok());
  }
  const auto prices = PriceBook::AmazonS3May2017();
  // Normalize to a 1-month observation window: 1000 PUTs -> $0.005.
  const double month_us = 30.0 * 24 * 60 * 60 * 1e6;
  const double cost = store.MonthlyCost(prices, month_us);
  EXPECT_NEAR(cost, 0.005 + (1000.0 / 1024.0) * 0.023 * 0 /*avg over month ~0*/,
              0.02);
  EXPECT_GT(cost, 0.004);
}

TEST(MeteredStore, LatencyModelSleepsAndRecords) {
  auto clock = std::make_shared<RealClock>();
  LatencyParams params = LatencyParams::Instant();
  params.put_base_us = 2'000;
  auto latency = std::make_shared<LatencyModel>(params, clock);
  MeteredStore store(std::make_shared<MemoryStore>(), clock, latency);
  const auto start = clock->NowMicros();
  ASSERT_TRUE(store.Put("k", View(B("v"))).ok());
  EXPECT_GE(clock->NowMicros() - start, 900u);
  EXPECT_EQ(store.put_latency().Count(), 1u);
  EXPECT_GT(store.put_latency().Mean(), 500.0);
}

TEST(MeteredStore, StreamedPutBillsOncePerObjectAtFinish) {
  auto clock = std::make_shared<RealClock>();
  MeteredStore store(std::make_shared<MemoryStore>(), clock);
  auto writer = store.BeginStreaming("stage/metered");
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendPart(0, View(B("12345"))).ok());
  ASSERT_TRUE((*writer)->AppendPart(1, View(B("678"))).ok());
  // Billing happens at Finish: until then the object is neither a PUT nor
  // uploaded bytes (matches S3 multipart billing of the completed object).
  EXPECT_EQ(store.Usage().puts, 0u);
  EXPECT_EQ(store.Usage().bytes_uploaded, 0u);

  ASSERT_TRUE((*writer)->Finish("streamed").ok());
  const UsageReport usage = store.Usage();
  EXPECT_EQ(usage.puts, 1u);
  EXPECT_EQ(usage.bytes_uploaded, 8u);
  EXPECT_EQ(usage.current_storage_bytes, 8u);
  // A retried Finish must not double-bill.
  ASSERT_TRUE((*writer)->Finish("streamed").ok());
  EXPECT_EQ(store.Usage().puts, 1u);
}

// -- LatencyModel ---------------------------------------------------------------

TEST(LatencyModel, FitsTable3Shape) {
  // The WAN model should land near the paper's Table 3 PUT latencies.
  auto clock = std::make_shared<RealClock>();
  LatencyParams params = LatencyParams::WanS3();
  params.jitter_stddev = 0.0;
  LatencyModel model(params, clock);
  const double l386k = static_cast<double>(model.PutLatencyMicros(386 * 1024)) / 1000.0;
  const double l10m = static_cast<double>(model.PutLatencyMicros(10081 * 1024)) / 1000.0;
  EXPECT_NEAR(l386k, 692.0, 692.0 * 0.25);   // paper: 692 ms
  EXPECT_NEAR(l10m, 7707.0, 7707.0 * 0.25);  // paper: 7707 ms
}

TEST(LatencyModel, ColocatedIsMuchFaster) {
  auto clock = std::make_shared<RealClock>();
  LatencyModel wan(LatencyParams::WanS3(), clock);
  LatencyModel ec2(LatencyParams::Ec2Colocated(), clock);
  EXPECT_GT(wan.GetLatencyMicros(1024 * 1024),
            3 * ec2.GetLatencyMicros(1024 * 1024));
  EXPECT_GT(wan.PutLatencyMicros(1024 * 1024),
            10 * ec2.PutLatencyMicros(1024 * 1024));
}

// -- FaultyStore -------------------------------------------------------------------

TEST(FaultyStore, OutageFailsEverything) {
  FaultyStore store(std::make_shared<MemoryStore>());
  store.SetAvailable(false);
  EXPECT_EQ(store.Put("k", View(B("v"))).code(), ErrorCode::kUnavailable);
  EXPECT_FALSE(store.Get("k").ok());
  EXPECT_FALSE(store.List("").ok());
  store.SetAvailable(true);
  EXPECT_TRUE(store.Put("k", View(B("v"))).ok());
  EXPECT_GE(store.injected_failures(), 3u);
}

TEST(FaultyStore, FailNextOpsIsExact) {
  FaultyStore store(std::make_shared<MemoryStore>());
  store.FailNextOps(2);
  EXPECT_FALSE(store.Put("k", View(B("v"))).ok());
  EXPECT_FALSE(store.Put("k", View(B("v"))).ok());
  EXPECT_TRUE(store.Put("k", View(B("v"))).ok());
}

TEST(FaultyStore, ProbabilityRoughlyHolds) {
  FaultyStore store(std::make_shared<MemoryStore>(), /*seed=*/3);
  store.SetFailureProbability(0.5);
  int failures = 0;
  for (int i = 0; i < 1000; ++i) {
    if (!store.Put("k", View(B("v"))).ok()) ++failures;
  }
  EXPECT_GT(failures, 350);
  EXPECT_LT(failures, 650);
}

// -- ReplicatedStore ----------------------------------------------------------------

TEST(ReplicatedStore, WritesToAllReadsFromAny) {
  auto a = std::make_shared<MemoryStore>();
  auto b = std::make_shared<MemoryStore>();
  ReplicatedStore store({a, b});
  ASSERT_TRUE(store.Put("k", View(B("v"))).ok());
  EXPECT_EQ(a->ObjectCount(), 1u);
  EXPECT_EQ(b->ObjectCount(), 1u);
  a->Clear();  // first replica loses data
  auto got = store.Get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, B("v"));
}

TEST(ReplicatedStore, SurvivesOneProviderOutageWithQuorum) {
  auto a = std::make_shared<MemoryStore>();
  auto faulty_inner = std::make_shared<MemoryStore>();
  auto faulty = std::make_shared<FaultyStore>(faulty_inner);
  faulty->SetAvailable(false);
  ReplicatedStore store({a, faulty}, /*quorum=*/1);
  EXPECT_TRUE(store.Put("k", View(B("v"))).ok());
  EXPECT_TRUE(store.Get("k").ok());
}

TEST(ReplicatedStore, StreamedPutReachesQuorumPastOneOutage) {
  auto a = std::make_shared<MemoryStore>();
  auto b = std::make_shared<MemoryStore>();
  auto faulty = std::make_shared<FaultyStore>(std::make_shared<MemoryStore>());
  faulty->SetAvailable(false);
  ReplicatedStore store({a, b, faulty}, /*quorum=*/2);
  auto writer = store.BeginStreaming("stage/replicated");
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendPart(0, View(B("hello "))).ok());
  ASSERT_TRUE((*writer)->AppendPart(1, View(B("world"))).ok());
  ASSERT_TRUE((*writer)->Finish("streamed").ok());
  EXPECT_EQ(*a->Get("streamed"), B("hello world"));
  EXPECT_EQ(*b->Get("streamed"), B("hello world"));
  auto got = store.Get("streamed");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, B("hello world"));
}

// A replica that fails in the middle of a streamed write — after staging
// some parts — must not poison the stream: Finish still reaches quorum on
// the healthy replicas, and the lagging replica is aborted, leaving no
// half-published object a recovery could trip over.
TEST(ReplicatedStore, ReplicaFailingMidStreamIsAbortedNeverHalfPublished) {
  auto a = std::make_shared<MemoryStore>();
  auto b = std::make_shared<MemoryStore>();
  auto lagging_inner = std::make_shared<MemoryStore>();
  auto lagging = std::make_shared<FaultyStore>(lagging_inner);
  ReplicatedStore store({a, b, lagging}, /*quorum=*/2);

  auto writer = store.BeginStreaming("stage/mid-fail");
  ASSERT_TRUE(writer.ok());
  // The lagging replica stages the first part fine, then dies mid-stream.
  ASSERT_TRUE((*writer)->AppendPart(0, View(B("part0 "))).ok());
  lagging->FailNextOps(1);
  ASSERT_TRUE((*writer)->AppendPart(1, View(B("part1 "))).ok());
  ASSERT_TRUE((*writer)->AppendPart(2, View(B("part2"))).ok());
  ASSERT_TRUE((*writer)->Finish("streamed").ok());

  // Quorum replicas published the complete object.
  EXPECT_EQ(*a->Get("streamed"), B("part0 part1 part2"));
  EXPECT_EQ(*b->Get("streamed"), B("part0 part1 part2"));
  auto got = store.Get("streamed");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, B("part0 part1 part2"));

  // The failed replica was aborted: no published object, no staged
  // residue — nothing visible at all.
  EXPECT_FALSE(lagging_inner->Get("streamed").ok());
  auto leftovers = lagging_inner->List("");
  ASSERT_TRUE(leftovers.ok());
  EXPECT_TRUE(leftovers->empty());
}

TEST(ReplicatedStore, FullQuorumFailsOnOutage) {
  auto a = std::make_shared<MemoryStore>();
  auto faulty = std::make_shared<FaultyStore>(std::make_shared<MemoryStore>());
  faulty->SetAvailable(false);
  ReplicatedStore store({a, faulty});  // quorum = all
  EXPECT_FALSE(store.Put("k", View(B("v"))).ok());
}

TEST(ReplicatedStore, ListIsUnion) {
  auto a = std::make_shared<MemoryStore>();
  auto b = std::make_shared<MemoryStore>();
  ASSERT_TRUE(a->Put("only-a", View(B("1"))).ok());
  ASSERT_TRUE(b->Put("only-b", View(B("2"))).ok());
  ReplicatedStore store({a, b}, 1);
  auto list = store.List("");
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->size(), 2u);
}

}  // namespace
}  // namespace ginja
