// Real-TCP tests: the S3 stack over an actual localhost socket, plus the
// HTTP/1.1 (de)serialization round trips.
#include <gtest/gtest.h>

#include "cloud/memory_store.h"
#include "cloud/s3/http_socket.h"
#include "cloud/s3/s3_client.h"
#include "cloud/s3/s3_server.h"

namespace ginja {
namespace {

TEST(HttpWire, RequestRoundTrip) {
  HttpRequest request;
  request.method = "PUT";
  request.path = "/bucket/WAL%2F1_x";
  request.query["list-type"] = "2";
  request.query["prefix"] = "WAL/";
  request.headers["host"] = "localhost";
  request.headers["x-amz-date"] = "20170515T000000Z";
  request.body = ToBytes("payload bytes");

  auto back = ParseHttpRequest(SerializeHttpRequest(request));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->method, "PUT");
  EXPECT_EQ(back->path, "/bucket/WAL%2F1_x");
  EXPECT_EQ(back->query.at("list-type"), "2");
  EXPECT_EQ(back->query.at("prefix"), "WAL/");
  EXPECT_EQ(back->headers.at("host"), "localhost");
  EXPECT_EQ(back->body, request.body);
  // Transport framing headers are stripped (not part of the signed set).
  EXPECT_EQ(back->headers.count("content-length"), 0u);
}

TEST(HttpWire, ResponseRoundTrip) {
  HttpResponse response;
  response.status = 404;
  response.headers["content-type"] = "application/xml";
  response.body = ToBytes("<Error><Code>NoSuchKey</Code></Error>");
  auto back = ParseHttpResponse(SerializeHttpResponse(response));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->status, 404);
  EXPECT_EQ(back->headers.at("content-type"), "application/xml");
  EXPECT_EQ(back->body, response.body);
}

TEST(HttpWire, RejectsGarbage) {
  EXPECT_FALSE(ParseHttpRequest("not http").ok());
  EXPECT_FALSE(ParseHttpResponse("HTTP/1.1\r\n\r\n").ok());
}

TEST(HttpWire, BinaryBodySurvives) {
  HttpRequest request;
  request.method = "PUT";
  request.path = "/b/k";
  request.body.resize(1024);
  for (std::size_t i = 0; i < request.body.size(); ++i) {
    request.body[i] = static_cast<std::uint8_t>(i * 7);
  }
  auto back = ParseHttpRequest(SerializeHttpRequest(request));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->body, request.body);
}

class SocketFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    backend_ = std::make_shared<MemoryStore>();
    s3_ = std::make_shared<S3Server>(backend_, "tcp-bucket");
    server_ = std::make_unique<HttpSocketServer>(s3_, /*port=*/0);
    ASSERT_TRUE(server_->status().ok()) << server_->status().ToString();
    transport_ = std::make_shared<HttpSocketClient>("127.0.0.1", server_->port());
    client_ = std::make_unique<S3Client>(transport_, "tcp-bucket");
  }

  std::shared_ptr<MemoryStore> backend_;
  std::shared_ptr<S3Server> s3_;
  std::unique_ptr<HttpSocketServer> server_;
  std::shared_ptr<HttpSocketClient> transport_;
  std::unique_ptr<S3Client> client_;
};

TEST_F(SocketFixture, PutGetListDeleteOverTcp) {
  ASSERT_TRUE(client_->Put("WAL/1_seg_0_100", View(ToBytes("over tcp"))).ok());
  ASSERT_TRUE(client_->Put("WAL/2_seg_0_200", View(Bytes(3000, 0xAB))).ok());

  auto got = client_->Get("WAL/1_seg_0_100");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToString(View(*got)), "over tcp");

  auto list = client_->List("WAL/");
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->size(), 2u);

  ASSERT_TRUE(client_->Delete("WAL/1_seg_0_100").ok());
  EXPECT_FALSE(client_->Get("WAL/1_seg_0_100").ok());
  EXPECT_GE(server_->requests_served(), 5u);
}

TEST_F(SocketFixture, SignatureVerifiedAcrossTheWire) {
  // The signature is computed over the exact bytes that cross the socket:
  // a client with wrong credentials is rejected by the remote end.
  AwsCredentials wrong;
  wrong.secret_access_key = "bad";
  S3Client bad_client(transport_, "tcp-bucket", wrong);
  EXPECT_FALSE(bad_client.Put("k", View(ToBytes("v"))).ok());
  EXPECT_GE(s3_->rejected_requests(), 1u);
  EXPECT_EQ(backend_->ObjectCount(), 0u);
}

TEST_F(SocketFixture, ConnectionToClosedPortFailsCleanly) {
  const int dead_port = server_->port();
  server_.reset();  // stop the server
  HttpSocketClient client("127.0.0.1", dead_port);
  HttpRequest request;
  request.method = "GET";
  request.path = "/tcp-bucket/k";
  auto response = client.RoundTrip(request);
  EXPECT_FALSE(response.ok());
}

TEST_F(SocketFixture, ConcurrentClients) {
  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      S3Client my_client(transport_, "tcp-bucket");
      for (int i = 0; i < 10; ++i) {
        const std::string key = "c" + std::to_string(t) + "/" + std::to_string(i);
        if (my_client.Put(key, View(ToBytes("v"))).ok()) ok.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), 40);
  EXPECT_EQ(backend_->ObjectCount(), 40u);
}

}  // namespace
}  // namespace ginja
