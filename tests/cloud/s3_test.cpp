// Wire-level S3 tests: SHA-256/HMAC vectors, SigV4 signing, the XML layer,
// and client↔server conformance including authentication failures.
#include <gtest/gtest.h>

#include "cloud/memory_store.h"
#include "cloud/s3/s3_client.h"
#include "cloud/s3/s3_server.h"
#include "cloud/s3/xml.h"
#include "common/codec/sha256.h"

namespace ginja {
namespace {

// -- SHA-256: FIPS 180-4 vectors ----------------------------------------------

TEST(Sha256, Abc) {
  const Bytes abc = ToBytes("abc");
  EXPECT_EQ(ToHex(ByteView(Sha256::Hash(View(abc)).data(), 32)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, Empty) {
  EXPECT_EQ(ToHex(ByteView(Sha256::Hash({}).data(), 32)),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, TwoBlockMessage) {
  const Bytes msg =
      ToBytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  EXPECT_EQ(ToHex(ByteView(Sha256::Hash(View(msg)).data(), 32)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes msg = ToBytes("streaming sha256 across many small updates!!");
  Sha256 h;
  for (std::size_t i = 0; i < msg.size(); ++i) h.Update(ByteView(&msg[i], 1));
  EXPECT_EQ(h.Finish(), Sha256::Hash(View(msg)));
}

// -- HMAC-SHA256: RFC 4231 vectors ----------------------------------------------

TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Bytes data = ToBytes("Hi There");
  EXPECT_EQ(ToHex(ByteView(HmacSha256(View(key), View(data)).data(), 32)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const Bytes key = ToBytes("Jefe");
  const Bytes data = ToBytes("what do ya want for nothing?");
  EXPECT_EQ(ToHex(ByteView(HmacSha256(View(key), View(data)).data(), 32)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// -- XML --------------------------------------------------------------------------

TEST(Xml, EscapeRoundTrip) {
  const std::string nasty = "a<b>&\"c";
  EXPECT_EQ(XmlUnescape(XmlEscape(nasty)), nasty);
}

TEST(Xml, ExtractNestedAndRepeated) {
  const std::string doc =
      "<R><C><K>one</K><S>1</S></C><C><K>two&amp;half</K><S>2</S></C></R>";
  const auto fragments = XmlExtractAll(doc, "C");
  ASSERT_EQ(fragments.size(), 2u);
  EXPECT_EQ(XmlExtract(fragments[1], "K"), "two&half");
  EXPECT_FALSE(XmlExtract(doc, "Missing").has_value());
}

// -- SigV4 ------------------------------------------------------------------------

TEST(SigV4, SigningIsDeterministic) {
  AwsCredentials credentials;
  SigV4Signer signer(credentials);
  HttpRequest a, b;
  a.method = b.method = "PUT";
  a.path = b.path = "/bucket/WAL/1_x_0_0";
  a.body = b.body = ToBytes("payload");
  signer.Sign(a, "20170515T000000Z");
  signer.Sign(b, "20170515T000000Z");
  EXPECT_EQ(a.headers["authorization"], b.headers["authorization"]);
  EXPECT_TRUE(a.headers["authorization"].starts_with(
      "AWS4-HMAC-SHA256 Credential=GINJAACCESSKEY/20170515/us-east-1/s3/"
      "aws4_request"));
}

TEST(SigV4, SignatureDependsOnSecretDateAndBody) {
  HttpRequest base;
  base.method = "GET";
  base.path = "/bucket/key";
  AwsCredentials credentials;
  SigV4Signer signer(credentials);
  HttpRequest a = base;
  signer.Sign(a, "20170515T000000Z");

  HttpRequest b = base;
  signer.Sign(b, "20170516T000000Z");  // different date
  EXPECT_NE(a.headers["authorization"], b.headers["authorization"]);

  AwsCredentials other = credentials;
  other.secret_access_key = "different";
  HttpRequest c = base;
  SigV4Signer(other).Sign(c, "20170515T000000Z");
  EXPECT_NE(a.headers["authorization"], c.headers["authorization"]);

  HttpRequest d = base;
  d.body = ToBytes("x");
  signer.Sign(d, "20170515T000000Z");
  EXPECT_NE(a.headers["authorization"], d.headers["authorization"]);
}

TEST(SigV4, VerifyAcceptsOwnSignatures) {
  SigV4Signer signer(AwsCredentials{});
  HttpRequest request;
  request.method = "PUT";
  request.path = "/bucket/some/key";
  request.body = ToBytes("data");
  signer.Sign(request, "20170515T000000Z");
  EXPECT_TRUE(signer.Verify(request));
}

TEST(SigV4, VerifyRejectsTamperedBody) {
  SigV4Signer signer(AwsCredentials{});
  HttpRequest request;
  request.method = "PUT";
  request.path = "/bucket/key";
  request.body = ToBytes("data");
  signer.Sign(request, "20170515T000000Z");
  request.body = ToBytes("DATA");  // tampered in flight
  EXPECT_FALSE(signer.Verify(request));
}

TEST(SigV4, VerifyRejectsWrongSecret) {
  AwsCredentials attacker;
  attacker.secret_access_key = "guessed";
  SigV4Signer attacker_signer(attacker);
  HttpRequest request;
  request.method = "DELETE";
  request.path = "/bucket/key";
  attacker_signer.Sign(request, "20170515T000000Z");
  EXPECT_FALSE(SigV4Signer(AwsCredentials{}).Verify(request));
}

TEST(SigV4, CanonicalRequestShape) {
  SigV4Signer signer(AwsCredentials{});
  HttpRequest request;
  request.method = "GET";
  request.path = "/bucket";
  request.query["list-type"] = "2";
  request.query["prefix"] = "WAL/";
  request.headers["host"] = "s3.us-east-1.amazonaws.com";
  request.headers["x-amz-date"] = "20170515T000000Z";
  request.headers["x-amz-content-sha256"] =
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855";
  const std::string canonical = signer.CanonicalRequest(request);
  // Method, path, sorted+encoded query, sorted headers, signed list, hash.
  EXPECT_TRUE(canonical.starts_with("GET\n/bucket\nlist-type=2&prefix=WAL%2F\n"));
  EXPECT_NE(canonical.find("host:s3.us-east-1.amazonaws.com\n"), std::string::npos);
  EXPECT_NE(canonical.find("\nhost;x-amz-content-sha256;x-amz-date\n"),
            std::string::npos);
}

TEST(UriEncode, AwsRules) {
  EXPECT_EQ(UriEncode("a b/c~d"), "a%20b%2Fc~d");
  EXPECT_EQ(UriEncode("a b/c~d", /*encode_slash=*/false), "a%20b/c~d");
}

// -- client <-> server -----------------------------------------------------------

struct S3Fixture {
  std::shared_ptr<MemoryStore> backend = std::make_shared<MemoryStore>();
  std::shared_ptr<S3Server> server;
  std::unique_ptr<S3Client> client;

  explicit S3Fixture(std::size_t max_keys = 1000) {
    server = std::make_shared<S3Server>(backend, "ginja-bucket",
                                        AwsCredentials{}, max_keys);
    client = std::make_unique<S3Client>(server, "ginja-bucket");
  }
};

TEST(S3ClientServer, PutGetDeleteRoundTrip) {
  S3Fixture fx;
  ASSERT_TRUE(fx.client->Put("WAL/1_pg|0001_0_100", View(ToBytes("hello"))).ok());
  auto got = fx.client->Get("WAL/1_pg|0001_0_100");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToString(View(*got)), "hello");
  ASSERT_TRUE(fx.client->Delete("WAL/1_pg|0001_0_100").ok());
  auto missing = fx.client->Get("WAL/1_pg|0001_0_100");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), ErrorCode::kNotFound);
}

TEST(S3ClientServer, DeleteMissingSucceeds) {
  S3Fixture fx;
  EXPECT_TRUE(fx.client->Delete("never-existed").ok());
}

TEST(S3ClientServer, BinaryBodySurvives) {
  S3Fixture fx;
  Bytes binary(4096);
  for (std::size_t i = 0; i < binary.size(); ++i) {
    binary[i] = static_cast<std::uint8_t>(i * 31);
  }
  ASSERT_TRUE(fx.client->Put("DB/0_dump_4096_s0_l0_p0of1", View(binary)).ok());
  auto got = fx.client->Get("DB/0_dump_4096_s0_l0_p0of1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, binary);
}

TEST(S3ClientServer, ListWithPrefixAndSpecialChars) {
  S3Fixture fx;
  ASSERT_TRUE(fx.client->Put("WAL/1_a&b<c_0_5", View(ToBytes("x"))).ok());
  ASSERT_TRUE(fx.client->Put("WAL/2_plain_0_9", View(ToBytes("yy"))).ok());
  ASSERT_TRUE(fx.client->Put("DB/0_dump_2_s0_l0_p0of1", View(ToBytes("zz"))).ok());
  auto list = fx.client->List("WAL/");
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 2u);
  EXPECT_EQ((*list)[0].name, "WAL/1_a&b<c_0_5");
  EXPECT_EQ((*list)[0].size, 1u);
  EXPECT_EQ((*list)[1].size, 2u);
}

TEST(S3ClientServer, ListPaginatesWithContinuationTokens) {
  S3Fixture fx(/*max_keys=*/7);  // force several pages
  for (int i = 0; i < 23; ++i) {
    char key[32];
    std::snprintf(key, sizeof key, "obj/%04d", i);
    ASSERT_TRUE(fx.client->Put(key, View(ToBytes("v"))).ok());
  }
  auto list = fx.client->List("obj/");
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->size(), 23u);
  for (int i = 0; i < 23; ++i) {
    char key[32];
    std::snprintf(key, sizeof key, "obj/%04d", i);
    EXPECT_EQ((*list)[static_cast<std::size_t>(i)].name, key);
  }
}

TEST(S3ClientServer, WrongCredentialsRejected403) {
  S3Fixture fx;
  AwsCredentials wrong;
  wrong.secret_access_key = "not-the-secret";
  S3Client bad_client(fx.server, "ginja-bucket", wrong);
  Status st = bad_client.Put("key", View(ToBytes("v")));
  EXPECT_FALSE(st.ok());
  EXPECT_GE(fx.server->rejected_requests(), 1u);
  EXPECT_EQ(fx.backend->ObjectCount(), 0u);  // nothing got through
}

TEST(S3ClientServer, WrongBucketIs404) {
  S3Fixture fx;
  S3Client other(fx.server, "other-bucket");
  EXPECT_FALSE(other.Put("key", View(ToBytes("v"))).ok());
}

TEST(S3ClientServer, EmptyObjectOk) {
  S3Fixture fx;
  ASSERT_TRUE(fx.client->Put("empty", {}).ok());
  auto got = fx.client->Get("empty");
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
}

}  // namespace
}  // namespace ginja
