#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "obs/metrics.h"

namespace ginja {
namespace {

// -- MetricsRegistry ------------------------------------------------------------

TEST(MetricsRegistryTest, RoundTrip) {
  MetricsRegistry registry;
  Counter counter;
  Histogram hist;
  Meter meter;
  double gauge_value = 42.5;
  registry.RegisterCounter(&counter, "ops_total", {{"kind", "put"}}, &counter);
  registry.RegisterGauge(&gauge_value, "pressure", {},
                         [&] { return gauge_value; });
  registry.RegisterHistogram(&hist, "latency_us", {}, &hist);
  registry.RegisterMeter(&meter, "object_bytes", {}, &meter);

  counter.Add(3);
  for (int i = 1; i <= 100; ++i) hist.Record(static_cast<double>(i));
  meter.Record(10);
  meter.Record(30);

  const MetricsSnapshot snap = registry.Snapshot(/*now_us=*/777);
  EXPECT_EQ(snap.time_us, 777u);
  EXPECT_EQ(snap.samples.size(), 4u);

  const MetricSample* ops = snap.Find("ops_total", {{"kind", "put"}});
  ASSERT_NE(ops, nullptr);
  EXPECT_EQ(ops->kind, MetricKind::kCounter);
  EXPECT_EQ(ops->counter, 3u);

  const MetricSample* pressure = snap.Find("pressure");
  ASSERT_NE(pressure, nullptr);
  EXPECT_DOUBLE_EQ(pressure->gauge, 42.5);

  const MetricSample* latency = snap.Find("latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->hist.count, 100u);
  EXPECT_GT(latency->hist.p99, latency->hist.p50);

  const MetricSample* bytes = snap.Find("object_bytes");
  ASSERT_NE(bytes, nullptr);
  EXPECT_EQ(bytes->meter.count, 2u);
  EXPECT_DOUBLE_EQ(bytes->meter.sum, 40.0);
  EXPECT_DOUBLE_EQ(bytes->meter.min, 10.0);
  EXPECT_DOUBLE_EQ(bytes->meter.max, 30.0);

  EXPECT_EQ(snap.Find("missing"), nullptr);
  EXPECT_EQ(snap.Find("ops_total", {{"kind", "get"}}), nullptr);
}

TEST(MetricsRegistryTest, JsonGolden) {
  MetricsRegistry registry;
  Counter counter;
  counter.Add(7);
  double g = 1.5;
  registry.RegisterCounter(&counter, "b_counter", {{"x", "y"}}, &counter);
  registry.RegisterGauge(&g, "a_gauge", {}, [&] { return g; });

  const std::string json = registry.Snapshot(12).ToJson();
  // Samples are sorted by name, so the serialization is fully deterministic.
  EXPECT_EQ(json,
            "{\"generation\":0,\"time_us\":12,\"metrics\":["
            "{\"name\":\"a_gauge\",\"labels\":{},\"kind\":\"gauge\","
            "\"value\":1.5},"
            "{\"name\":\"b_counter\",\"labels\":{\"x\":\"y\"},"
            "\"kind\":\"counter\",\"value\":7}]}");
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusGolden) {
  MetricsRegistry registry;
  Counter counter;
  counter.Add(7);
  double g = 2.0;
  registry.RegisterCounter(&counter, "b_counter", {{"x", "y"}}, &counter);
  registry.RegisterGauge(&g, "a_gauge", {}, [&] { return g; });

  const std::string text = registry.Snapshot().ToPrometheus();
  EXPECT_NE(text.find("# TYPE a_gauge gauge\n"), std::string::npos);
  EXPECT_NE(text.find("a_gauge 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE b_counter counter\n"), std::string::npos);
  EXPECT_NE(text.find("b_counter{x=\"y\"} 7\n"), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusHistogramSummary) {
  MetricsRegistry registry;
  Histogram hist;
  for (int i = 1; i <= 1000; ++i) hist.Record(static_cast<double>(i));
  registry.RegisterHistogram(&hist, "lat", {{"stage", "put"}}, &hist);
  const std::string text = registry.Snapshot().ToPrometheus();
  EXPECT_NE(text.find("lat{stage=\"put\",quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("lat{stage=\"put\",quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("lat_count{stage=\"put\"} 1000\n"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetAllBumpsGeneration) {
  MetricsRegistry registry;
  Counter counter;
  Histogram hist;
  Meter meter;
  registry.RegisterCounter(&counter, "c", {}, &counter);
  registry.RegisterHistogram(&hist, "h", {}, &hist);
  registry.RegisterMeter(&meter, "m", {}, &meter);
  counter.Add(5);
  hist.Record(1.0);
  meter.Record(2.0);

  EXPECT_EQ(registry.generation(), 0u);
  EXPECT_EQ(registry.ResetAll(), 1u);
  EXPECT_EQ(registry.generation(), 1u);

  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.generation, 1u);
  EXPECT_EQ(snap.Find("c")->counter, 0u);
  EXPECT_EQ(snap.Find("h")->hist.count, 0u);
  EXPECT_EQ(snap.Find("m")->meter.count, 0u);
}

TEST(MetricsRegistryTest, UnregisterRemovesOwnerMetrics) {
  MetricsRegistry registry;
  Counter a;
  Counter b;
  registry.RegisterCounter(&a, "a1", {}, &a);
  registry.RegisterCounter(&a, "a2", {}, &a);
  registry.RegisterCounter(&b, "b1", {}, &b);
  EXPECT_EQ(registry.size(), 3u);
  registry.Unregister(&a);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.Snapshot().Find("a1"), nullptr);
  EXPECT_NE(registry.Snapshot().Find("b1"), nullptr);
}

// -- Lock-free stats under concurrency (TSAN coverage) --------------------------

TEST(StatsConcurrency, HistogramAndMeterConcurrentRecord) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50'000;
  Histogram hist;
  Meter meter;
  Counter counter;
  MetricsRegistry registry;
  registry.RegisterHistogram(&hist, "h", {}, &hist);
  registry.RegisterMeter(&meter, "m", {}, &meter);
  registry.RegisterCounter(&counter, "c", {}, &counter);

  std::atomic<bool> stop{false};
  // A snapshotter races the recorders the whole time: every intermediate
  // snapshot must be internally sane even while buckets are moving.
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const MetricsSnapshot snap = registry.Snapshot();
      const MetricSample* h = snap.Find("h");
      ASSERT_NE(h, nullptr);
      EXPECT_LE(h->hist.p50, h->hist.p99 + 1e-9);
      EXPECT_LE(h->hist.count,
                static_cast<std::uint64_t>(kThreads) * kPerThread);
      const MetricSample* m = snap.Find("m");
      EXPECT_GE(m->meter.sum, 0.0);
    }
  });

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const double v = static_cast<double>((t * kPerThread + i) % 1000 + 1);
        hist.Record(v);
        meter.Record(v);
        counter.Add();
      }
    });
  }
  for (auto& t : threads) t.join();
  stop.store(true);
  snapshotter.join();

  const std::uint64_t expected =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(hist.Count(), expected);
  EXPECT_EQ(meter.Count(), expected);
  EXPECT_EQ(counter.Get(), expected);
  EXPECT_DOUBLE_EQ(meter.Min(), 1.0);
  EXPECT_DOUBLE_EQ(meter.Max(), 1000.0);
  EXPECT_GT(hist.Quantile(0.5), 0.0);
}

TEST(StatsConcurrency, ResetAllRacesRecorders) {
  Histogram hist;
  Counter counter;
  MetricsRegistry registry;
  registry.RegisterHistogram(&hist, "h", {}, &hist);
  registry.RegisterCounter(&counter, "c", {}, &counter);

  std::atomic<bool> stop{false};
  std::vector<std::thread> recorders;
  for (int t = 0; t < 2; ++t) {
    recorders.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        hist.Record(5.0);
        counter.Add();
      }
    });
  }
  // Resets route through the registry (serialized, generation-stamped);
  // TSAN checks the recorder/reset interleavings are race-free.
  for (int i = 0; i < 50; ++i) {
    registry.ResetAll();
    const MetricsSnapshot snap = registry.Snapshot();
    EXPECT_EQ(snap.generation, static_cast<std::uint64_t>(i + 1));
  }
  stop.store(true);
  for (auto& t : recorders) t.join();
  EXPECT_EQ(registry.generation(), 50u);
}

}  // namespace
}  // namespace ginja
