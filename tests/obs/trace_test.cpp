#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ginja {
namespace {

TraceOptions SmallRing() {
  TraceOptions options;
  options.enabled = true;
  options.sample_period = 1;
  options.ring_size = 8;
  options.shards = 1;
  return options;
}

TEST(TracerTest, SamplingIsDeterministicInSeedAndId) {
  TraceOptions options;
  options.enabled = true;
  options.sample_period = 64;
  WriteTracer a(options);
  WriteTracer b(options);

  std::set<std::uint64_t> picked_a;
  std::set<std::uint64_t> picked_b;
  for (std::uint64_t id = 0; id < 10'000; ++id) {
    if (a.Sampled(id)) picked_a.insert(id);
    if (b.Sampled(id)) picked_b.insert(id);
  }
  // Same (seed, id) stream -> the exact same sample set, run after run.
  EXPECT_EQ(picked_a, picked_b);
  // Roughly 1/64 of 10k ids; the mixer keeps it near the mean.
  EXPECT_GT(picked_a.size(), 60u);
  EXPECT_LT(picked_a.size(), 320u);

  options.seed ^= 0xdeadbeefull;
  WriteTracer c(options);
  std::set<std::uint64_t> picked_c;
  for (std::uint64_t id = 0; id < 10'000; ++id) {
    if (c.Sampled(id)) picked_c.insert(id);
  }
  EXPECT_NE(picked_a, picked_c);
}

TEST(TracerTest, SamplePeriodOneTracesEveryWrite) {
  WriteTracer tracer(SmallRing());
  for (std::uint64_t id = 0; id < 100; ++id) EXPECT_TRUE(tracer.Sampled(id));
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  TraceOptions options = SmallRing();
  options.enabled = false;
  WriteTracer tracer(options);
  EXPECT_FALSE(tracer.Sampled(0));
  tracer.Record(TraceStage::kPut, 1, 100, 50);
  EXPECT_EQ(tracer.events_recorded(), 0u);
  EXPECT_TRUE(tracer.RecentSpans(16).empty());
  EXPECT_EQ(tracer.stage_histogram(TraceStage::kPut).Count(), 0u);

  tracer.SetEnabled(true);
  tracer.Record(TraceStage::kPut, 1, 100, 50);
  EXPECT_EQ(tracer.events_recorded(), 1u);
}

TEST(TracerTest, RingWrapsKeepingTheMostRecentSpans) {
  WriteTracer tracer(SmallRing());  // capacity 8, one shard
  for (std::uint64_t i = 0; i < 20; ++i) {
    tracer.Record(TraceStage::kEncode, i, /*start_us=*/1000 + i, /*dur=*/1);
  }
  const std::vector<SpanEvent> spans = tracer.RecentSpans(100);
  ASSERT_EQ(spans.size(), 8u);  // ring capacity, not total recorded
  // Oldest surviving span first; ids 12..19 survive the wrap.
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].trace_id, 12 + i);
    EXPECT_EQ(spans[i].start_us, 1012 + i);
  }
  // A tighter cap keeps the *newest* spans.
  const std::vector<SpanEvent> tail = tracer.RecentSpans(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].trace_id, 17u);
  EXPECT_EQ(tail[2].trace_id, 19u);
  EXPECT_EQ(tracer.events_recorded(), 20u);
}

TEST(TracerTest, StageHistogramsFeedFromRecordExceptMarkers) {
  WriteTracer tracer(SmallRing());
  tracer.Record(TraceStage::kSubmit, 1, 10, 0);    // marker: no histogram
  tracer.Record(TraceStage::kFrontier, 1, 40, 0);  // marker: no histogram
  tracer.Record(TraceStage::kStaged, 1, 10, 0);    // 0 us still counts
  tracer.Record(TraceStage::kPut, 1, 20, 500);
  tracer.Record(TraceStage::kPut, 2, 30, 700);

  EXPECT_EQ(tracer.stage_histogram(TraceStage::kSubmit).Count(), 0u);
  EXPECT_EQ(tracer.stage_histogram(TraceStage::kFrontier).Count(), 0u);
  EXPECT_EQ(tracer.stage_histogram(TraceStage::kStaged).Count(), 1u);
  EXPECT_EQ(tracer.stage_histogram(TraceStage::kPut).Count(), 2u);
  EXPECT_GE(tracer.stage_histogram(TraceStage::kPut).Max(), 700.0);
  EXPECT_EQ(tracer.events_recorded(), 5u);  // markers still land in the ring
}

TEST(TracerTest, FlightRecorderDumpNamesTheStages) {
  WriteTracer tracer(SmallRing());
  tracer.Record(TraceStage::kPut, 7, 100, 42);
  tracer.Record(TraceStage::kAck, 7, 150, 5);
  const std::string dump = tracer.FlightRecorderDump();
  EXPECT_NE(dump.find("2 spans"), std::string::npos);
  EXPECT_NE(dump.find("stage=put"), std::string::npos);
  EXPECT_NE(dump.find("stage=ack"), std::string::npos);
  EXPECT_NE(dump.find("id=7"), std::string::npos);
  EXPECT_NE(dump.find("dur_us=42"), std::string::npos);
}

TEST(TracerTest, RegisterMetricsExposesPerStageLatency) {
  WriteTracer tracer(SmallRing());
  MetricsRegistry registry;
  tracer.RegisterMetrics(registry, &tracer);
  tracer.Record(TraceStage::kEncode, 1, 0, 30);

  const MetricsSnapshot snap = registry.Snapshot();
  const MetricSample* encode =
      snap.Find("ginja_stage_latency_us", {{"stage", "encode"}});
  ASSERT_NE(encode, nullptr);
  EXPECT_EQ(encode->hist.count, 1u);
  const MetricSample* events = snap.Find("ginja_trace_events_total");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->counter, 1u);
  // One series per stage plus the event counter.
  EXPECT_EQ(registry.size(), static_cast<std::size_t>(kTraceStageCount) + 1);

  registry.Unregister(&tracer);
  EXPECT_EQ(registry.size(), 0u);
}

}  // namespace
}  // namespace ginja
