#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cloud/s3/http_socket.h"
#include "common/stats.h"
#include "obs/exporter.h"
#include "obs/http_endpoint.h"
#include "obs/obs.h"

namespace ginja {
namespace {

std::string BodyText(const HttpResponse& response) {
  return std::string(reinterpret_cast<const char*>(response.body.data()),
                     response.body.size());
}

TEST(ExporterTest, FlushOnceDeliversAnImmediateSnapshot) {
  MetricsRegistry registry;
  Counter counter;
  counter.Add(9);
  registry.RegisterCounter(&counter, "flushed_total", {}, &counter);

  std::vector<MetricsSnapshot> seen;
  SnapshotFlusher flusher(&registry, /*interval_ms=*/1000,
                          [&](const MetricsSnapshot& snap) {
                            seen.push_back(snap);
                          });
  flusher.FlushOnce();
  ASSERT_EQ(seen.size(), 1u);
  ASSERT_NE(seen[0].Find("flushed_total"), nullptr);
  EXPECT_EQ(seen[0].Find("flushed_total")->counter, 9u);
  EXPECT_EQ(flusher.flushes(), 1u);
}

TEST(ExporterTest, PeriodicFlushesAndAFinalOneOnStop) {
  MetricsRegistry registry;
  Counter counter;
  registry.RegisterCounter(&counter, "c", {}, &counter);

  std::mutex mu;
  std::vector<std::uint64_t> observed;
  SnapshotFlusher flusher(&registry, /*interval_ms=*/5,
                          [&](const MetricsSnapshot& snap) {
                            std::lock_guard<std::mutex> lock(mu);
                            observed.push_back(snap.Find("c")->counter);
                          });
  flusher.Start();
  counter.Add(3);
  // Give the loop a few intervals; wall-clock based, so only lower-bound it.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  flusher.Stop();

  const std::uint64_t total = flusher.flushes();
  EXPECT_GE(total, 2u);  // at least one periodic + the final flush on Stop
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(observed.size(), total);
  // Stop()'s final flush sees the latest state; nothing is lost at the end.
  EXPECT_EQ(observed.back(), 3u);
  // Stop is idempotent and does not double-flush.
  flusher.Stop();
  EXPECT_EQ(flusher.flushes(), total);
}

class ObsHttpTest : public ::testing::Test {
 protected:
  ObsHttpTest()
      : obs_(std::make_shared<Observability>()), server_(obs_) {
    obs_->registry.RegisterCounter(this, "ginja_demo_total", {{"kind", "put"}},
                                   &demo_);
    demo_.Add(5);
  }

  HttpResponse Get(const std::string& path,
                   std::map<std::string, std::string> query = {}) {
    HttpSocketClient client("127.0.0.1", server_.port());
    HttpRequest request;
    request.method = "GET";
    request.path = path;
    request.query = std::move(query);
    auto response = client.RoundTrip(request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return response.ok() ? *response : HttpResponse{};
  }

  ObservabilityPtr obs_;
  ObsHttpServer server_;
  Counter demo_;
};

TEST_F(ObsHttpTest, ServesPrometheusText) {
  ASSERT_TRUE(server_.status().ok()) << server_.status().ToString();
  const HttpResponse response = Get("/metrics");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.headers.at("content-type"), "text/plain; version=0.0.4");
  const std::string body = BodyText(response);
  EXPECT_NE(body.find("# TYPE ginja_demo_total counter"), std::string::npos);
  EXPECT_NE(body.find("ginja_demo_total{kind=\"put\"} 5"), std::string::npos);
  // The tracer's own series ride along in the same bundle.
  EXPECT_NE(body.find("ginja_trace_events_total"), std::string::npos);
}

TEST_F(ObsHttpTest, ServesJsonSnapshot) {
  const HttpResponse response = Get("/metrics.json");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.headers.at("content-type"), "application/json");
  const std::string body = BodyText(response);
  EXPECT_NE(body.find("\"generation\":"), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"ginja_demo_total\""), std::string::npos);
  EXPECT_EQ(body.back(), '\n');
}

TEST_F(ObsHttpTest, ServesTraceFlightRecorder) {
  obs_->tracer.SetEnabled(true);
  obs_->tracer.Record(TraceStage::kPut, 3, 100, 25);
  const HttpResponse response = Get("/trace", {{"n", "16"}});
  EXPECT_EQ(response.status, 200);
  const std::string body = BodyText(response);
  EXPECT_NE(body.find("trace flight recorder"), std::string::npos);
  EXPECT_NE(body.find("stage=put"), std::string::npos);
}

TEST_F(ObsHttpTest, HealthzAndErrorPaths) {
  EXPECT_EQ(BodyText(Get("/healthz")), "ok\n");
  EXPECT_EQ(Get("/nope").status, 404);

  HttpSocketClient client("127.0.0.1", server_.port());
  HttpRequest post;
  post.method = "POST";
  post.path = "/metrics";
  auto response = client.RoundTrip(post);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 405);
}

}  // namespace
}  // namespace ginja
