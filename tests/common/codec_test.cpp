#include <gtest/gtest.h>

#include "common/codec/aes128.h"
#include "common/codec/crc32.h"
#include "common/codec/envelope.h"
#include "common/codec/hmac.h"
#include "common/codec/lzss.h"
#include "common/codec/sha1.h"
#include "common/rng.h"

namespace ginja {
namespace {

// -- SHA-1: FIPS 180 / RFC 3174 test vectors ---------------------------------

TEST(Sha1, EmptyString) {
  EXPECT_EQ(ToHex(ByteView(Sha1::Hash({}).data(), 20)),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  const Bytes abc = ToBytes("abc");
  EXPECT_EQ(ToHex(ByteView(Sha1::Hash(View(abc)).data(), 20)),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  const Bytes msg =
      ToBytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  EXPECT_EQ(ToHex(ByteView(Sha1::Hash(View(msg)).data(), 20)),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(View(chunk));
  EXPECT_EQ(ToHex(ByteView(h.Finish().data(), 20)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  const Bytes msg = ToBytes("the quick brown fox jumps over the lazy dog!!");
  Sha1 h;
  for (std::size_t i = 0; i < msg.size(); ++i) h.Update(ByteView(&msg[i], 1));
  EXPECT_EQ(h.Finish(), Sha1::Hash(View(msg)));
}

// -- HMAC-SHA1: RFC 2202 test vectors -----------------------------------------

TEST(Hmac, Rfc2202Case1) {
  const Bytes key(20, 0x0b);
  const Bytes data = ToBytes("Hi There");
  EXPECT_EQ(ToHex(ByteView(HmacSha1(View(key), View(data)).data(), 20)),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(Hmac, Rfc2202Case2) {
  const Bytes key = ToBytes("Jefe");
  const Bytes data = ToBytes("what do ya want for nothing?");
  EXPECT_EQ(ToHex(ByteView(HmacSha1(View(key), View(data)).data(), 20)),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  const Bytes key(80, 0xaa);  // longer than the 64-byte block
  const Bytes data = ToBytes("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(ToHex(ByteView(HmacSha1(View(key), View(data)).data(), 20)),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

TEST(Hmac, MacEqualConstantTime) {
  MacTag a{}, b{};
  EXPECT_TRUE(MacEqual(a, b));
  b[19] = 1;
  EXPECT_FALSE(MacEqual(a, b));
}

TEST(Hmac, DeriveKeyDeterministicAndSaltSensitive) {
  const auto k1 = DeriveKey("password", "salt", 16);
  const auto k2 = DeriveKey("password", "salt", 16);
  const auto k3 = DeriveKey("password", "pepper", 16);
  EXPECT_EQ(k1, k2);
  EXPECT_NE(k1, k3);
}

// -- CRC32 --------------------------------------------------------------------

TEST(Crc32, CheckValue) {
  const Bytes data = ToBytes("123456789");
  EXPECT_EQ(Crc32(View(data)), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(Crc32({}), 0u); }

TEST(Crc32, DetectsSingleBitFlip) {
  Bytes data = ToBytes("some wal page content");
  const std::uint32_t before = Crc32(View(data));
  data[3] ^= 0x01;
  EXPECT_NE(before, Crc32(View(data)));
}

// -- AES-128: FIPS-197 Appendix C vector --------------------------------------

TEST(Aes128, Fips197Vector) {
  Aes128::Key key{};
  std::uint8_t block[16];
  for (int i = 0; i < 16; ++i) {
    key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
    block[i] = static_cast<std::uint8_t>(i * 0x11);
  }
  Aes128 aes(key);
  aes.EncryptBlock(block);
  EXPECT_EQ(ToHex(ByteView(block, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, CtrRoundTrip) {
  Aes128::Key key{};
  key[0] = 0x42;
  Aes128 aes(key);
  SplitMix64 rng(5);
  Bytes plain(1000);
  for (auto& b : plain) b = static_cast<std::uint8_t>(rng.Next());
  const Bytes cipher = aes.Ctr(View(plain), /*nonce=*/77);
  EXPECT_NE(cipher, plain);
  EXPECT_EQ(aes.Ctr(View(cipher), 77), plain);
}

TEST(Aes128, CtrNonceChangesKeystream) {
  Aes128 aes(Aes128::Key{});
  const Bytes plain(64, 0);
  EXPECT_NE(aes.Ctr(View(plain), 1), aes.Ctr(View(plain), 2));
}

TEST(Aes128, CtrHandlesNonBlockSizes) {
  Aes128 aes(Aes128::Key{});
  for (std::size_t n : {0u, 1u, 15u, 16u, 17u, 31u, 33u}) {
    const Bytes plain(n, 0xAB);
    EXPECT_EQ(aes.Ctr(View(aes.Ctr(View(plain), 9)), 9), plain) << n;
  }
}

// -- LZSS ----------------------------------------------------------------------

class LzssRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LzssRoundTrip, RandomData) {
  SplitMix64 rng(GetParam());
  Bytes data(GetParam());
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.Next());
  const Bytes compressed = Lzss::Compress(View(data));
  auto back = Lzss::Decompress(View(compressed));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST_P(LzssRoundTrip, RepetitiveData) {
  Bytes data;
  const Bytes pattern = ToBytes("tpcc-row-payload|12345|");
  while (data.size() < GetParam()) Append(data, View(pattern));
  const Bytes compressed = Lzss::Compress(View(data));
  auto back = Lzss::Decompress(View(compressed));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
  if (data.size() > 200) {
    EXPECT_LT(compressed.size(), data.size() / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LzssRoundTrip,
                         ::testing::Values(0, 1, 3, 100, 1000, 8192, 65537));

TEST(Lzss, AchievesPaperLikeRatioOnWalPages) {
  // WAL pages full of TPC-C-style rows should compress at roughly the
  // paper's CR of 1.43 (§7.2) or better.
  Bytes page;
  SplitMix64 rng(3);
  while (page.size() < 8192) {
    std::string row = std::to_string(rng.NextBelow(100000)) + "|customer-name-" +
                      std::to_string(rng.NextBelow(1000));
    row.resize(100, 'x');
    Append(page, View(ToBytes(row)));
  }
  page.resize(8192);
  const Bytes compressed = Lzss::Compress(View(page));
  const double ratio = static_cast<double>(page.size()) /
                       static_cast<double>(compressed.size());
  EXPECT_GT(ratio, 1.43);
}

TEST(Lzss, RejectsTruncatedStream) {
  const Bytes data(500, 7);
  Bytes compressed = Lzss::Compress(View(data));
  compressed.resize(compressed.size() / 2);
  EXPECT_FALSE(Lzss::Decompress(View(compressed)).has_value());
}

TEST(Lzss, RejectsBadBackReference) {
  // Hand-craft a stream whose match distance points before the start.
  Bytes bad;
  PutVarint(bad, 10);        // original size
  bad.push_back(0x01);       // first token is a match
  PutVarint(bad, 5);         // distance 5 with empty output
  PutVarint(bad, 0);         // length 4
  EXPECT_FALSE(Lzss::Decompress(View(bad)).has_value());
}

// -- Envelope -------------------------------------------------------------------

class EnvelopeRoundTrip
    : public ::testing::TestWithParam<std::pair<bool, bool>> {};

TEST_P(EnvelopeRoundTrip, EncodesAndDecodes) {
  EnvelopeOptions options;
  options.compress = GetParam().first;
  options.encrypt = GetParam().second;
  options.password = "hunter2";
  Envelope envelope(options);

  Bytes payload;
  for (int i = 0; i < 3000; ++i) payload.push_back(static_cast<std::uint8_t>(i % 37));
  const Bytes enveloped = envelope.Encode(View(payload), /*nonce=*/123);
  auto back = envelope.Decode(View(enveloped));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, payload);
}

INSTANTIATE_TEST_SUITE_P(Modes, EnvelopeRoundTrip,
                         ::testing::Values(std::pair{false, false},
                                           std::pair{true, false},
                                           std::pair{false, true},
                                           std::pair{true, true}));

TEST(Envelope, DetectsTampering) {
  Envelope envelope({});
  const Bytes payload = ToBytes("important database state");
  Bytes enveloped = envelope.Encode(View(payload), 1);
  enveloped[enveloped.size() - 1] ^= 0xFF;
  auto result = envelope.Decode(View(enveloped));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kCorruption);
}

TEST(Envelope, WrongPasswordFailsMac) {
  EnvelopeOptions a;
  a.password = "alpha";
  EnvelopeOptions b;
  b.password = "beta";
  const Bytes payload = ToBytes("secret");
  const Bytes enveloped = Envelope(a).Encode(View(payload), 1);
  EXPECT_FALSE(Envelope(b).Decode(View(enveloped)).ok());
}

TEST(Envelope, EncryptionHidesPlaintext) {
  EnvelopeOptions options;
  options.encrypt = true;
  options.password = "key";
  Envelope envelope(options);
  const Bytes payload = ToBytes("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA");
  const Bytes enveloped = envelope.Encode(View(payload), 42);
  const std::string hay(enveloped.begin(), enveloped.end());
  EXPECT_EQ(hay.find("AAAAAAAA"), std::string::npos);
}

TEST(Envelope, IncompressiblePayloadIsStoredRaw) {
  EnvelopeOptions options;
  options.compress = true;
  Envelope envelope(options);
  SplitMix64 rng(11);
  Bytes payload(4096);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.Next());
  const Bytes enveloped = envelope.Encode(View(payload), 1);
  // Never more than header overhead above the raw payload.
  EXPECT_LE(enveloped.size(), payload.size() + Envelope::kHeaderSize);
  auto back = envelope.Decode(View(enveloped));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, payload);
}

TEST(Envelope, RejectsTruncatedHeader) {
  Envelope envelope({});
  const Bytes enveloped = envelope.Encode(View(ToBytes("x")), 1);
  EXPECT_FALSE(envelope.Decode(ByteView(enveloped.data(), 10)).ok());
}

}  // namespace
}  // namespace ginja
