// Tests for the zero-copy / chunk-parallel envelope encoder: v1↔v2
// cross-version compatibility, serial-vs-parallel byte identity, CTR
// seekability, corruption rejection inside v2 chunks, and the copy-counting
// hook that guards the zero-copy property.
#include <gtest/gtest.h>

#include <cstring>

#include "common/codec/aes128.h"
#include "common/codec/codec_pool.h"
#include "common/codec/envelope.h"
#include "common/codec/hmac.h"
#include "common/codec/lzss.h"
#include "common/rng.h"

namespace ginja {
namespace {

Bytes CompressiblePayload(std::size_t size, std::uint64_t seed) {
  // Page-like data: repeated 64-byte records with a few random fields, so
  // LZSS finds matches but the payload is not trivially constant.
  SplitMix64 rng(seed);
  Bytes out;
  out.reserve(size);
  while (out.size() < size) {
    const std::uint64_t key = rng.Next();
    for (int i = 0; i < 8; ++i) {
      out.push_back(static_cast<std::uint8_t>(key >> (8 * i)));
    }
    for (int i = 0; i < 56 && out.size() < size; ++i) {
      out.push_back(static_cast<std::uint8_t>(i));
    }
  }
  out.resize(size);
  return out;
}

Bytes RandomPayload(std::size_t size, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Bytes out;
  out.reserve(size);
  while (out.size() < size) {
    const std::uint64_t v = rng.Next();
    for (int i = 0; i < 8 && out.size() < size; ++i) {
      out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  return out;
}

EnvelopeOptions AllOn(std::size_t threshold = 256 * 1024,
                      std::size_t chunk = 64 * 1024) {
  EnvelopeOptions o;
  o.compress = true;
  o.encrypt = true;
  o.password = "v2-test-password";
  o.parallel_encode_threshold = threshold;
  o.encode_chunk_bytes = chunk;
  return o;
}

// -- format selection ---------------------------------------------------------

TEST(EnvelopeV2, SmallPayloadsStayV1) {
  Envelope env(AllOn(/*threshold=*/1024));
  const Bytes payload = CompressiblePayload(1024, 1);  // == threshold: v1
  const Bytes enveloped = env.Encode(View(payload), 7);
  EXPECT_EQ(GetU32(enveloped.data()), 0x314A4E47u);  // 'GNJ1'
  auto decoded = env.Decode(View(enveloped));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, payload);
}

TEST(EnvelopeV2, LargePayloadsBecomeV2) {
  Envelope env(AllOn(/*threshold=*/1024, /*chunk=*/512));
  const Bytes payload = CompressiblePayload(5000, 2);
  const Bytes enveloped = env.Encode(View(payload), 7);
  EXPECT_EQ(GetU32(enveloped.data()), 0x324A4E47u);  // 'GNJ2'
  auto decoded = env.Decode(View(enveloped));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, payload);
}

// The legacy v1 byte layout must be stable: a v1 object written by the old
// single-buffer encoder and one written by EncodeInto are interchangeable,
// which the verifier/failover/PITR paths rely on. Reproduce the old
// encoder's output by hand and compare.
TEST(EnvelopeV2, V1LayoutMatchesLegacyEncoder) {
  EnvelopeOptions o = AllOn();
  Envelope env(o);
  const Bytes payload = CompressiblePayload(4096, 3);
  const std::uint64_t nonce = 99;

  Bytes processed = Lzss::Compress(View(payload));
  ASSERT_LT(processed.size(), payload.size());
  Aes128 aes(DeriveKey(o.password, "ginja-enc"));
  processed = aes.Ctr(View(processed), nonce);
  const auto mac_key = DeriveKey(o.password, "ginja-mac");
  const MacTag mac =
      HmacSha1(ByteView(mac_key.data(), mac_key.size()), View(processed));
  Bytes legacy;
  PutU32(legacy, 0x314A4E47u);
  legacy.push_back(0x03);  // compressed | encrypted
  PutU64(legacy, nonce);
  Append(legacy, ByteView(mac.data(), mac.size()));
  Append(legacy, View(processed));

  EXPECT_EQ(env.Encode(View(payload), nonce), legacy);
}

// -- cross-version round trips ------------------------------------------------

TEST(EnvelopeV2, CrossVersionRoundTrip) {
  // The same logical payload written under both thresholds decodes through
  // one Envelope regardless of which version produced it.
  const Bytes payload = CompressiblePayload(96 * 1024, 4);
  Envelope v1_writer(AllOn(/*threshold=*/1 << 20));        // always v1
  Envelope v2_writer(AllOn(/*threshold=*/1, /*chunk=*/8 * 1024));  // always v2
  Envelope reader(AllOn());

  const Bytes as_v1 = v1_writer.Encode(View(payload), 11);
  const Bytes as_v2 = v2_writer.Encode(View(payload), 11);
  EXPECT_EQ(GetU32(as_v1.data()), 0x314A4E47u);
  EXPECT_EQ(GetU32(as_v2.data()), 0x324A4E47u);

  auto from_v1 = reader.Decode(View(as_v1));
  auto from_v2 = reader.Decode(View(as_v2));
  ASSERT_TRUE(from_v1.ok());
  ASSERT_TRUE(from_v2.ok());
  EXPECT_EQ(*from_v1, payload);
  EXPECT_EQ(*from_v2, payload);
}

TEST(EnvelopeV2, PlaintextAndEncryptOnlyAndCompressOnlyModes) {
  for (int mode = 0; mode < 4; ++mode) {
    EnvelopeOptions o = AllOn(/*threshold=*/4096, /*chunk=*/4096);
    o.compress = (mode & 1) != 0;
    o.encrypt = (mode & 2) != 0;
    Envelope env(o);
    for (const std::size_t size : {std::size_t{100}, std::size_t{40000}}) {
      const Bytes payload = CompressiblePayload(size, 5 + mode);
      auto decoded = env.Decode(View(env.Encode(View(payload), 3)));
      ASSERT_TRUE(decoded.ok()) << "mode=" << mode << " size=" << size;
      EXPECT_EQ(*decoded, payload);
    }
  }
}

TEST(EnvelopeV2, IncompressibleChunksStoreRaw) {
  Envelope env(AllOn(/*threshold=*/1024, /*chunk=*/1024));
  const Bytes payload = RandomPayload(10 * 1024, 6);
  const Bytes enveloped = env.Encode(View(payload), 21);
  // Raw storage bounds expansion to the per-chunk token overhead.
  EXPECT_LE(enveloped.size(),
            Envelope::kHeaderSize + 24 + payload.size() + 10 * 4);
  auto decoded = env.Decode(View(enveloped));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, payload);
}

// -- serial vs parallel byte identity ----------------------------------------

TEST(EnvelopeV2, ParallelEncodeMatchesSerialByteForByte) {
  const Bytes payload = CompressiblePayload(300 * 1024, 7);
  Envelope serial(AllOn(/*threshold=*/16 * 1024, /*chunk=*/16 * 1024));
  Envelope parallel(AllOn(/*threshold=*/16 * 1024, /*chunk=*/16 * 1024));
  parallel.SetCodecPool(std::make_shared<CodecPool>(4));

  const Bytes a = serial.Encode(View(payload), 1234);
  const Bytes b = parallel.Encode(View(payload), 1234);
  EXPECT_EQ(a, b);

  auto decoded = serial.Decode(View(b));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, payload);
}

// -- CTR seekability ----------------------------------------------------------

TEST(EnvelopeV2, CtrInPlaceWithOffsetMatchesStream) {
  Aes128::Key key{};
  for (int i = 0; i < 16; ++i) key[i] = static_cast<std::uint8_t>(i * 7);
  Aes128 aes(key);
  const Bytes payload = RandomPayload(1000, 8);

  Bytes whole = aes.Ctr(View(payload), 42);

  // Encrypting the two halves independently with a block-aligned counter
  // offset must produce the same keystream as one pass.
  Bytes split = payload;
  const std::size_t cut = 512;  // block-aligned
  aes.CtrInPlace(split.data(), cut, 42, 0);
  aes.CtrInPlace(split.data() + cut, split.size() - cut, 42, cut / 16);
  EXPECT_EQ(split, whole);
}

// -- corruption ---------------------------------------------------------------

TEST(EnvelopeV2, FlippedBytesInsideOneChunkAreRejected) {
  Envelope env(AllOn(/*threshold=*/8 * 1024, /*chunk=*/8 * 1024));
  const Bytes payload = CompressiblePayload(64 * 1024, 9);
  const Bytes enveloped = env.Encode(View(payload), 77);
  ASSERT_EQ(GetU32(enveloped.data()), 0x324A4E47u);

  SplitMix64 rng(10);
  for (int trial = 0; trial < 32; ++trial) {
    Bytes corrupt = enveloped;
    // Flip 1–3 bytes somewhere in the chunk stream (past header+varints).
    const int flips = 1 + static_cast<int>(rng.NextBelow(3));
    for (int f = 0; f < flips; ++f) {
      const std::size_t at =
          Envelope::kHeaderSize + 8 +
          rng.NextBelow(corrupt.size() - Envelope::kHeaderSize - 8);
      corrupt[at] ^= static_cast<std::uint8_t>(1 + rng.NextBelow(255));
    }
    auto decoded = env.Decode(View(corrupt));
    EXPECT_FALSE(decoded.ok()) << "trial " << trial;
  }
}

TEST(EnvelopeV2, ChunkCorruptionCaughtEvenWithValidMac) {
  // Re-seal the MAC after corrupting the chunk stream, so rejection must
  // come from the structural layer (token bounds, LZSS validation, chunk
  // size accounting) rather than the MAC.
  EnvelopeOptions o = AllOn(/*threshold=*/8 * 1024, /*chunk=*/8 * 1024);
  Envelope env(o);
  const Bytes payload = CompressiblePayload(64 * 1024, 16);
  const Bytes enveloped = env.Encode(View(payload), 31);
  const auto mac_key = DeriveKey(o.password, "ginja-mac");

  SplitMix64 rng(17);
  for (int trial = 0; trial < 32; ++trial) {
    Bytes corrupt = enveloped;
    const std::size_t at =
        Envelope::kHeaderSize +
        rng.NextBelow(corrupt.size() - Envelope::kHeaderSize);
    corrupt[at] ^= static_cast<std::uint8_t>(1 + rng.NextBelow(255));
    const MacTag mac =
        HmacSha1(ByteView(mac_key.data(), mac_key.size()),
                 ByteView(corrupt).subspan(Envelope::kHeaderSize));
    std::memcpy(corrupt.data() + 13, mac.data(), mac.size());

    auto decoded = env.Decode(View(corrupt));
    // Either the structure is rejected, or (rarely) the flip decodes to a
    // same-sized but different payload; it must never round-trip as the
    // original.
    if (decoded.ok()) {
      EXPECT_NE(*decoded, payload) << "trial " << trial;
    }
  }
}

TEST(EnvelopeV2, TruncatedV2ObjectIsRejected) {
  Envelope env(AllOn(/*threshold=*/1024, /*chunk=*/1024));
  const Bytes enveloped = env.Encode(View(CompressiblePayload(8 * 1024, 11)), 5);
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{10}, Envelope::kHeaderSize,
        Envelope::kHeaderSize + 3, enveloped.size() - 1}) {
    auto decoded = env.Decode(ByteView(enveloped.data(), keep));
    EXPECT_FALSE(decoded.ok()) << "keep=" << keep;
  }
}

// -- zero-copy accounting -----------------------------------------------------

TEST(EnvelopeV2, SinglePieceEncodeCopiesNothing) {
  // A contiguous payload never needs gathering: bytes_copied stays 0 for
  // both v1 and v2 encodes.
  Envelope env(AllOn(/*threshold=*/64 * 1024, /*chunk=*/64 * 1024));
  const Bytes small = CompressiblePayload(32 * 1024, 12);
  const Bytes large = CompressiblePayload(256 * 1024, 13);
  env.Encode(View(small), 1);
  env.Encode(View(large), 2);
  EXPECT_EQ(env.stats().bytes_copied.Get(), 0u);
}

TEST(EnvelopeV2, ScatteredPiecesGatherAtMostOnce) {
  // A scatter-gather payload is gathered at most once per encode (v1) or
  // once per boundary-crossing chunk (v2) — never proportional to the old
  // 4-copies-per-object pipeline.
  Envelope env(AllOn(/*threshold=*/1 << 20));  // force v1
  const Bytes a = CompressiblePayload(10 * 1024, 14);
  const Bytes b = CompressiblePayload(10 * 1024, 15);
  PayloadView payload;
  payload.Add(View(a));
  payload.Add(View(b));
  Bytes out;
  env.EncodeInto(payload, 3, out);
  EXPECT_EQ(env.stats().bytes_copied.Get(), payload.size());

  auto decoded = env.Decode(View(out));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, payload.Flatten());
}

// -- derived-key (convergent chunk) envelopes ---------------------------------

TEST(EnvelopeDerived, RoundTripsAndIsDeterministic) {
  Envelope env(AllOn());
  const Bytes payload = CompressiblePayload(8 * 1024, 42);
  const Bytes tweak = RandomPayload(20, 7);
  const Bytes a = env.EncodeDerived(View(payload), 0x51ull << 56, View(tweak));
  const Bytes b = env.EncodeDerived(View(payload), 0x51ull << 56, View(tweak));
  EXPECT_EQ(a, b);  // deterministic in (payload, tweak, nonce): dedup needs it
  auto decoded = env.DecodeDerived(View(a), View(tweak));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, payload);
}

TEST(EnvelopeDerived, DistinctTweaksUseDistinctKeystream) {
  // Same nonce, same payload, different tweaks — the shape of a
  // truncated-nonce collision between two distinct chunks. Identical
  // ciphertext bodies here would mean reused keystream (a two-time pad
  // under CTR); the per-tweak derived key must prevent that.
  EnvelopeOptions o;  // encryption only, so ciphertext positions line up
  o.encrypt = true;
  o.password = "derived-key-test";
  Envelope env(o);
  const Bytes payload = RandomPayload(4096, 3);
  const std::uint64_t nonce = 0x51ull << 56;
  const Bytes t1 = RandomPayload(20, 1);
  const Bytes t2 = RandomPayload(20, 2);
  const Bytes c1 = env.EncodeDerived(View(payload), nonce, View(t1));
  const Bytes c2 = env.EncodeDerived(View(payload), nonce, View(t2));
  ASSERT_EQ(c1.size(), c2.size());
  EXPECT_NE(Bytes(c1.begin() + Envelope::kHeaderSize, c1.end()),
            Bytes(c2.begin() + Envelope::kHeaderSize, c2.end()));

  // The wrong tweak still MAC-verifies (the MAC key is shared) but decodes
  // to wrong bytes — content-addressed callers catch that by digest check.
  auto wrong = env.DecodeDerived(View(c1), View(t2));
  if (wrong.ok()) {
    EXPECT_NE(*wrong, payload);
  }
  auto right = env.DecodeDerived(View(c1), View(t1));
  ASSERT_TRUE(right.ok());
  EXPECT_EQ(*right, payload);
}

TEST(EnvelopeDerived, MatchesPlainEnvelopeWhenEncryptionOff) {
  EnvelopeOptions o;
  o.compress = true;
  Envelope env(o);
  const Bytes payload = CompressiblePayload(2048, 5);
  const Bytes tweak = RandomPayload(20, 9);
  EXPECT_EQ(env.EncodeDerived(View(payload), 7, View(tweak)),
            env.Encode(View(payload), 7));
  auto decoded =
      env.DecodeDerived(View(env.Encode(View(payload), 7)), View(tweak));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, payload);
}

}  // namespace
}  // namespace ginja
