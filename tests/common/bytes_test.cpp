#include "common/bytes.h"

#include <gtest/gtest.h>

namespace ginja {
namespace {

TEST(Bytes, FixedWidthRoundTrip) {
  Bytes buf;
  PutU16(buf, 0xBEEF);
  PutU32(buf, 0xDEADBEEF);
  PutU64(buf, 0x0123456789ABCDEFull);
  ASSERT_EQ(buf.size(), 14u);
  EXPECT_EQ(GetU16(buf.data()), 0xBEEF);
  EXPECT_EQ(GetU32(buf.data() + 2), 0xDEADBEEFu);
  EXPECT_EQ(GetU64(buf.data() + 6), 0x0123456789ABCDEFull);
}

TEST(Bytes, FixedWidthIsLittleEndian) {
  Bytes buf;
  PutU32(buf, 0x04030201);
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(buf[1], 2);
  EXPECT_EQ(buf[2], 3);
  EXPECT_EQ(buf[3], 4);
}

class VarintRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundTrip, EncodesAndDecodes) {
  Bytes buf;
  PutVarint(buf, GetParam());
  std::size_t pos = 0;
  auto decoded = GetVarint(View(buf), pos);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, GetParam());
  EXPECT_EQ(pos, buf.size());
}

INSTANTIATE_TEST_SUITE_P(
    Values, VarintRoundTrip,
    ::testing::Values(0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull,
                      0xFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull));

TEST(Varint, TruncatedReturnsNullopt) {
  Bytes buf;
  PutVarint(buf, 0xFFFFFFFFull);
  buf.pop_back();
  std::size_t pos = 0;
  EXPECT_FALSE(GetVarint(View(buf), pos).has_value());
}

TEST(Varint, SequentialDecoding) {
  Bytes buf;
  for (std::uint64_t v : {5ull, 1000ull, 0ull, 999999ull}) PutVarint(buf, v);
  std::size_t pos = 0;
  EXPECT_EQ(GetVarint(View(buf), pos), 5ull);
  EXPECT_EQ(GetVarint(View(buf), pos), 1000ull);
  EXPECT_EQ(GetVarint(View(buf), pos), 0ull);
  EXPECT_EQ(GetVarint(View(buf), pos), 999999ull);
  EXPECT_EQ(pos, buf.size());
}

TEST(Hex, RoundTrip) {
  const Bytes data = {0x00, 0x01, 0xAB, 0xFF, 0x7F};
  const std::string hex = ToHex(View(data));
  EXPECT_EQ(hex, "0001abff7f");
  auto back = FromHex(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(Hex, RejectsOddLengthAndBadChars) {
  EXPECT_FALSE(FromHex("abc").has_value());
  EXPECT_FALSE(FromHex("zz").has_value());
  EXPECT_TRUE(FromHex("").has_value());
}

TEST(Bytes, StringConversion) {
  const std::string s = "ginja";
  EXPECT_EQ(ToString(View(ToBytes(s))), s);
}

}  // namespace
}  // namespace ginja
