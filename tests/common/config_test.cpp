#include <gtest/gtest.h>

#include "common/config.h"

namespace ginja {
namespace {

constexpr const char* kSample = R"ini(
# deployment configuration
top_level = hello

[Ginja]
batch = 100
safety = 1000
compress = true
encrypt = off
password = s3 cr3t with spaces

[cost]
db_size_gb = 10.5
updates_per_minute = 6
)ini";

TEST(ConfigFile, ParsesSectionsAndTypes) {
  auto config = ConfigFile::Parse(kSample);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->GetString("top_level"), "hello");
  EXPECT_EQ(config->GetInt("ginja.batch"), 100);
  EXPECT_EQ(config->GetInt("ginja.safety"), 1000);
  EXPECT_EQ(config->GetBool("ginja.compress"), true);
  EXPECT_EQ(config->GetBool("ginja.encrypt"), false);
  EXPECT_EQ(config->GetString("ginja.password"), "s3 cr3t with spaces");
  EXPECT_EQ(config->GetDouble("cost.db_size_gb"), 10.5);
}

TEST(ConfigFile, KeysAreCaseInsensitive) {
  auto config = ConfigFile::Parse("[A]\nKey = V\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->GetString("a.key"), "V");
  EXPECT_EQ(config->GetString("A.KEY"), "V");
}

TEST(ConfigFile, MissingKeysAndFallbacks) {
  auto config = ConfigFile::Parse(kSample);
  ASSERT_TRUE(config.ok());
  EXPECT_FALSE(config->GetString("nope").has_value());
  EXPECT_FALSE(config->GetInt("ginja.password").has_value());  // not a number
  EXPECT_EQ(config->GetIntOr("nope", 42), 42);
  EXPECT_EQ(config->GetBoolOr("nope", true), true);
  EXPECT_EQ(config->GetStringOr("nope", "d"), "d");
  EXPECT_EQ(config->GetDoubleOr("nope", 1.5), 1.5);
}

TEST(ConfigFile, BoolSpellings) {
  auto config = ConfigFile::Parse(
      "a = true\nb = YES\nc = on\nd = 1\ne = False\nf = no\ng = OFF\nh = 0\n"
      "bad = maybe\n");
  ASSERT_TRUE(config.ok());
  for (const char* key : {"a", "b", "c", "d"}) {
    EXPECT_EQ(config->GetBool(key), true) << key;
  }
  for (const char* key : {"e", "f", "g", "h"}) {
    EXPECT_EQ(config->GetBool(key), false) << key;
  }
  EXPECT_FALSE(config->GetBool("bad").has_value());
}

TEST(ConfigFile, CommentsAndBlankLines) {
  auto config = ConfigFile::Parse("# c1\n\n; c2\nk = v\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->size(), 1u);
}

TEST(ConfigFile, ErrorsCarryLineNumbers) {
  auto bad_section = ConfigFile::Parse("[unterminated\n");
  ASSERT_FALSE(bad_section.ok());
  EXPECT_NE(bad_section.status().message().find("line 1"), std::string::npos);

  auto bad_pair = ConfigFile::Parse("k = v\njust words\n");
  ASSERT_FALSE(bad_pair.ok());
  EXPECT_NE(bad_pair.status().message().find("line 2"), std::string::npos);
}

TEST(ConfigFile, LoadMissingFileIsNotFound) {
  auto config = ConfigFile::Load("/nonexistent/ginja.ini");
  ASSERT_FALSE(config.ok());
  EXPECT_EQ(config.status().code(), ErrorCode::kNotFound);
}

TEST(ConfigFile, LastValueWinsOnDuplicate) {
  auto config = ConfigFile::Parse("k = 1\nk = 2\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->GetInt("k"), 2);
}

}  // namespace
}  // namespace ginja
