#include <gtest/gtest.h>

#include <thread>

#include "common/blocking_queue.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/stats.h"

namespace ginja {
namespace {

// -- BlockingQueue --------------------------------------------------------------

TEST(BlockingQueue, PutTakeFifo) {
  BlockingQueue<int> q;
  q.Put(1);
  q.Put(2);
  q.Put(3);
  EXPECT_EQ(q.Take(), 1);
  EXPECT_EQ(q.Take(), 2);
  EXPECT_EQ(q.Take(), 3);
}

TEST(BlockingQueue, CapacityBlocksPut) {
  BlockingQueue<int> q(2);
  q.Put(1);
  q.Put(2);
  std::atomic<bool> third_done{false};
  std::thread producer([&] {
    q.Put(3);
    third_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_done.load());
  EXPECT_EQ(q.Take(), 1);
  producer.join();
  EXPECT_TRUE(third_done.load());
}

TEST(BlockingQueue, CloseUnblocksTakers) {
  BlockingQueue<int> q;
  std::optional<int> got = std::nullopt;
  std::thread consumer([&] { got = q.Take(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  consumer.join();
  EXPECT_FALSE(got.has_value());
}

TEST(BlockingQueue, CloseDrainsRemainingItems) {
  BlockingQueue<int> q;
  q.Put(7);
  q.Close();
  EXPECT_EQ(q.Take(), 7);
  EXPECT_FALSE(q.Take().has_value());
  EXPECT_FALSE(q.Put(8));
}

TEST(BlockingQueue, PeekBatchDoesNotRemove) {
  BlockingQueue<int> q;
  for (int i = 0; i < 5; ++i) q.Put(i);
  auto batch = q.PeekBatch(3);
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.Size(), 5u);
  q.PopN(3);
  EXPECT_EQ(q.Size(), 2u);
  EXPECT_EQ(q.Take(), 3);
}

TEST(BlockingQueue, TakeForTimesOut) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.TakeFor(5'000).has_value());
  q.Put(9);
  EXPECT_EQ(q.TakeFor(5'000), 9);
}

TEST(BlockingQueue, ForcePutIgnoresCapacity) {
  BlockingQueue<int> q(1);
  q.Put(1);
  EXPECT_TRUE(q.ForcePut(2));
  EXPECT_EQ(q.Size(), 2u);
}

// -- Clock ------------------------------------------------------------------------

TEST(ManualClock, AdvanceWakesSleepers) {
  ManualClock clock;
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    clock.SleepMicros(100);
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(woke.load());
  clock.Advance(99);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(woke.load());
  clock.Advance(1);
  sleeper.join();
  EXPECT_TRUE(woke.load());
}

TEST(ScaledClock, ScaleShortensWallSleep) {
  ScaledClock clock(1000.0);  // 1000 model-us per wall-us
  const auto start = std::chrono::steady_clock::now();
  clock.SleepMicros(100'000);  // 100 model-ms -> 100 wall-us
  const auto wall = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  EXPECT_LT(wall, 50'000);
}

TEST(RealClock, MonotoneNow) {
  RealClock clock;
  const auto a = clock.NowMicros();
  const auto b = clock.NowMicros();
  EXPECT_LE(a, b);
}

// -- RNG ----------------------------------------------------------------------------

TEST(Rng, DeterministicFromSeed) {
  SplitMix64 a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Rng, RangeBounds) {
  SplitMix64 rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.NextInRange(5, 15);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 15);
  }
}

TEST(Rng, NuRandInRange) {
  SplitMix64 rng(2);
  for (int i = 0; i < 1000; ++i) {
    const auto v = NuRand(rng, 1023, 1, 3000, 259);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3000);
  }
}

TEST(Rng, GaussianRoughMoments) {
  SplitMix64 rng(3);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

// -- Stats ------------------------------------------------------------------------

TEST(Stats, MeterBasics) {
  Meter m;
  m.Record(1);
  m.Record(3);
  m.Record(5);
  EXPECT_EQ(m.Count(), 3u);
  EXPECT_DOUBLE_EQ(m.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(m.Min(), 1.0);
  EXPECT_DOUBLE_EQ(m.Max(), 5.0);
  m.Reset();
  EXPECT_EQ(m.Count(), 0u);
}

TEST(Stats, HistogramQuantiles) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(i);
  EXPECT_EQ(h.Count(), 1000u);
  EXPECT_NEAR(h.Mean(), 500.5, 0.01);
  // Geometric buckets: quantiles are approximate, within a bucket factor.
  EXPECT_GT(h.Quantile(0.5), 300);
  EXPECT_LT(h.Quantile(0.5), 900);
  EXPECT_GE(h.Quantile(0.99), 900);
}

TEST(Stats, CounterConcurrent) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) c.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Get(), 40000u);
}

TEST(Stats, HumanFormatting) {
  EXPECT_EQ(HumanCount(1500), "1.50k");
  EXPECT_EQ(HumanCount(2'500'000), "2.50M");
  EXPECT_EQ(HumanBytes(1024), "1.0kB");
  EXPECT_EQ(HumanBytes(10.5 * 1024 * 1024), "10.50MB");
}

}  // namespace
}  // namespace ginja
