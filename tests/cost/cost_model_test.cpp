// Validates the §7 cost model against the numbers printed in the paper.
#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "cost/scenarios.h"

namespace ginja {
namespace {

CostModelParams Fig4Params(double batch, double updates_per_minute) {
  // Figure 4 setup: 10 GB database, 8 kB pages with 75 records, checkpoint
  // every 60 min lasting 20 min, CR = 1.43.
  CostModelParams p;
  p.db_size_gb = 10.0;
  p.wal_page_bytes = 8192.0;
  p.records_per_page = 75.0;
  p.checkpoint_period_min = 60.0;
  p.checkpoint_duration_min = 20.0;
  p.compression_rate = 1.43;
  p.batch = batch;
  p.updates_per_minute = updates_per_minute;
  return p;
}

TEST(CostModel, DbStorageMatchesPaperFixedCost) {
  // §7.2: "the size of our database (10GB) implies in a fixed CDB_Storage
  // of $0.20" (with CR 1.43: 10 × 1.25 / 1.43 × 0.023 = 0.201).
  const CostModel model(Fig4Params(100, 100));
  EXPECT_NEAR(model.Monthly().db_storage, 0.20, 0.01);
}

TEST(CostModel, TenTimesBiggerDatabaseCostsTenTimesMore) {
  // §7.2: "a 10× bigger database, this cost will be $2".
  CostModelParams p = Fig4Params(100, 100);
  p.db_size_gb = 100.0;
  EXPECT_NEAR(CostModel(p).Monthly().db_storage, 2.0, 0.1);
}

TEST(CostModel, WalPutDominatesAtSmallBatch) {
  // Fig. 4 shape: W=1000 up/min at B=10 → WAL PUTs alone:
  // 1000 × 43200 / 10 × $5e-6 = $21.6/month.
  const CostModel model(Fig4Params(10, 1000));
  EXPECT_NEAR(model.Monthly().wal_put, 21.6, 0.1);
  // B=1000 cuts it 100×.
  EXPECT_NEAR(CostModel(Fig4Params(1000, 1000)).Monthly().wal_put, 0.216, 0.01);
}

TEST(CostModel, BatchReducesCostMonotonically) {
  double previous = 1e9;
  for (double batch : {10.0, 100.0, 1000.0}) {
    const double total = CostModel(Fig4Params(batch, 500)).Monthly().Total();
    EXPECT_LT(total, previous);
    previous = total;
  }
}

TEST(CostModel, CostGrowsWithWorkload) {
  double previous = 0;
  for (double w : {10.0, 100.0, 1000.0}) {
    const double total = CostModel(Fig4Params(100, w)).Monthly().Total();
    EXPECT_GT(total, previous);
    previous = total;
  }
}

TEST(CostModel, ManyConfigurationsUnderOneDollar) {
  // §7.2: "there are plenty of possible configurations that cost less than
  // $1 per month".
  int under_a_dollar = 0;
  for (double batch : {10.0, 100.0, 1000.0}) {
    for (double w : {10.0, 30.0, 100.0}) {
      if (CostModel(Fig4Params(batch, w)).Monthly().Total() < 1.0) {
        ++under_a_dollar;
      }
    }
  }
  EXPECT_GE(under_a_dollar, 6);
}

TEST(CostModel, Table2LaboratoryScenario) {
  // Paper Table 2: laboratory $0.42 (1 sync/min) and $1.50 (6 sync/min),
  // versus a $93.4/month EC2 Pilot Light — 62× to 222× cheaper.
  const Scenario one_sync = LaboratoryScenario(1);
  const Scenario six_sync = LaboratoryScenario(6);
  const double cost1 = CostModel(one_sync.params).Monthly().Total();
  const double cost6 = CostModel(six_sync.params).Monthly().Total();
  EXPECT_NEAR(cost1, 0.42, 0.25);
  EXPECT_NEAR(cost6, 1.50, 0.45);
  const double ratio1 = one_sync.vm_baseline.monthly_cost / cost1;
  const double ratio6 = six_sync.vm_baseline.monthly_cost / cost6;
  EXPECT_GT(ratio1, 100.0);  // paper: 222×
  EXPECT_GT(ratio6, 40.0);   // paper: 62×
}

TEST(CostModel, Table2HospitalScenario) {
  // Paper Table 2: hospital $20.3–$21.4 vs $291.5 (≈14× cheaper); the cost
  // is dominated by storing the 1 TB database.
  const Scenario s = HospitalScenario(1);
  const auto breakdown = CostModel(s.params).Monthly();
  EXPECT_NEAR(breakdown.Total(), 20.3, 3.0);
  EXPECT_GT(breakdown.db_storage / breakdown.Total(), 0.8);
  const double ratio = s.vm_baseline.monthly_cost / breakdown.Total();
  EXPECT_NEAR(ratio, 14.0, 4.0);
}

TEST(CostModel, RecoveryCostApproximation) {
  // §7.3: recovery ≈ 4 × (DB storage + WAL storage); hospital ≈ $112.5,
  // laboratory ≈ $1.125; colocated EC2 recovery is free.
  // The paper's $112.5 estimate ignores compression; our model prices the
  // compressed objects actually stored, hence the wider tolerance.
  const CostModel hospital(HospitalScenario(1).params);
  EXPECT_NEAR(hospital.RecoveryCost(), 112.5, 35.0);
  const CostModel lab(LaboratoryScenario(1).params);
  EXPECT_NEAR(lab.RecoveryCost(), 1.125, 0.5);
  EXPECT_EQ(lab.RecoveryCost(/*colocated_vm=*/true), 0.0);
}

// -- Figure 1: the $1/month capacity frontier -----------------------------------

TEST(BudgetPlanner, Figure1SetupsAreAffordable) {
  const auto prices = PriceBook::AmazonS3May2017();
  // Setup A: 35 GB, one sync every 72 s = 50/h.
  EXPECT_GE(MaxSyncsPerHourForBudget(35.0, 1.0, prices), 50.0 * 0.8);
  // Setup B: 20 GB at 120 syncs/h (2/min).
  EXPECT_GE(MaxSyncsPerHourForBudget(20.0, 1.0, prices), 120.0 * 0.8);
  // Setup C: 4.3 GB at 240 syncs/h (4/min).
  EXPECT_GE(MaxSyncsPerHourForBudget(4.3, 1.0, prices), 240.0 * 0.8);
}

TEST(BudgetPlanner, FrontierIsMonotone) {
  const auto prices = PriceBook::AmazonS3May2017();
  double previous = 1e18;
  for (double gb : {1.0, 10.0, 20.0, 30.0, 40.0}) {
    const double syncs = MaxSyncsPerHourForBudget(gb, 1.0, prices);
    EXPECT_LE(syncs, previous);
    previous = syncs;
  }
  // Storage alone above the budget: zero syncs affordable.
  EXPECT_EQ(MaxSyncsPerHourForBudget(50.0, 1.0, prices), 0.0);
}

TEST(BudgetPlanner, InverseIsConsistent) {
  const auto prices = PriceBook::AmazonS3May2017();
  const double syncs = MaxSyncsPerHourForBudget(20.0, 1.0, prices);
  const double size = MaxDbSizeForBudget(syncs, 1.0, prices);
  EXPECT_NEAR(size, 20.0, 0.5);
}

TEST(PriceBook, S3May2017Values) {
  const auto s3 = PriceBook::AmazonS3May2017();
  EXPECT_DOUBLE_EQ(s3.storage_gb_month, 0.023);  // §3
  EXPECT_DOUBLE_EQ(s3.per_put * 1000, 0.005);    // $0.005 per 1000 uploads
  EXPECT_DOUBLE_EQ(s3.per_delete, 0.0);          // deletes are free
  EXPECT_DOUBLE_EQ(s3.ingress_gb, 0.0);          // upload bandwidth is free
  // §7.3: downloading 1 GB costs ~4× storing it for a month.
  EXPECT_NEAR(s3.egress_gb / s3.storage_gb_month, 4.0, 0.2);
}

TEST(VmBaseline, Table2Baselines) {
  EXPECT_DOUBLE_EQ(VmBaseline::M3MediumPilotLight().monthly_cost, 93.4);
  EXPECT_DOUBLE_EQ(VmBaseline::M3LargePilotLight().monthly_cost, 291.5);
  EXPECT_DOUBLE_EQ(VmBaseline::M3MediumBare().monthly_cost, 48.24);
}

TEST(DumpCost, DeltaDumpScalesWithChurnNotDbSize) {
  const auto prices = PriceBook::AmazonS3May2017();
  const double chunk = 256.0 * 1024.0;
  const auto mono = MonolithicDumpCost(10.0, 20.0, prices);
  const auto delta = DeltaDumpCost(10.0, 0.10, chunk, prices);
  // 10% churn re-uploads ~10% of the bytes (plus ~44 B/chunk of manifest).
  EXPECT_NEAR(delta.bytes_uploaded / mono.bytes_uploaded, 0.10, 0.01);
  // Full churn converges on the monolithic bytes plus the manifest.
  const auto worst = DeltaDumpCost(10.0, 1.0, chunk, prices);
  EXPECT_GE(worst.bytes_uploaded, mono.bytes_uploaded);
  EXPECT_LT(worst.bytes_uploaded, mono.bytes_uploaded * 1.001);
  // The request-count trade: many small chunk PUTs vs few large parts.
  // At 10% churn a 10 GB DB needs ceil(40960 * 0.1) + 1 manifest PUTs.
  EXPECT_DOUBLE_EQ(delta.put_requests, 4097.0);
  EXPECT_DOUBLE_EQ(mono.put_requests, 512.0);
  EXPECT_DOUBLE_EQ(delta.dollars, delta.put_requests * prices.per_put);
  // Even with the extra PUTs, the re-dump is cheaper in requests than
  // re-uploading everything once churn is low enough relative to the
  // chunk/object size ratio; the bytes saving is the headline either way.
  EXPECT_LT(delta.bytes_uploaded, 0.11 * mono.bytes_uploaded);
}

}  // namespace
}  // namespace ginja
